// Ads click-through-rate scenario (the paper's RMC2/Criteo-Kaggle use
// case): an advertising platform trains a DLRM on click logs and wants to
// know how FAE changes the training-cluster picture as GPUs are added.
//
// Demonstrates: FAE-format caching (the static pass runs once and is
// reloaded afterwards), multi-GPU weak scaling, per-phase breakdowns.
//
// Build & run:  ./build/examples/ads_ctr [--inputs=N]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "data/synthetic.h"
#include "engine/trainer.h"
#include "models/factory.h"
#include "util/file_io.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  using namespace fae;

  size_t num_inputs = 30000;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--inputs=", 0) == 0) num_inputs = std::atol(arg.c_str() + 9);
  }

  DatasetSchema schema = MakeKaggleLikeSchema(DatasetScale::kTiny);
  SyntheticGenerator generator(schema, {.seed = 1234});
  Dataset dataset = generator.Generate(num_inputs);
  Dataset::Split split = dataset.MakeSplit(0.1);

  FaeConfig config;
  config.sample_rate = 0.25;
  config.gpu_memory_budget = 384 << 10;
  config.large_table_bytes = 4 << 10;

  // The static pass persists its output in the FAE format; rerunning this
  // binary reuses the cache (delete the file to recalibrate).
  const std::string cache = "/tmp/ads_ctr.faef";
  FaePipeline pipeline(config);
  auto plan = pipeline.PrepareCached(dataset, split.train, cache);
  if (!plan.ok()) {
    std::printf("preprocessing failed: %s\n", plan.status().ToString().c_str());
    return 1;
  }
  std::printf("plan %s: hot inputs %.1f%%, hot slice %s\n",
              plan->from_cache ? "(from cache)" : "(fresh)",
              100 * plan->inputs.HotFraction(),
              HumanBytes(plan->hot_bytes).c_str());

  std::printf("\n%5s %14s %14s %9s %18s\n", "gpus", "baseline", "fae",
              "speedup", "fae sync share");
  for (int gpus : {1, 2, 4}) {
    TrainOptions options;
    options.per_gpu_batch = 1024;
    options.epochs = 1;
    options.run_math = false;  // capacity-planning study: cost model only

    SystemSpec server = MakePaperServer(gpus);
    server.hot_embedding_budget = config.gpu_memory_budget;

    auto base_model = MakeModel(schema, /*full_size=*/true, 7);
    Trainer baseline(base_model.get(), server, options);
    TrainReport base = baseline.TrainBaseline(dataset, split);

    auto fae_model = MakeModel(schema, /*full_size=*/true, 7);
    Trainer fae_trainer(fae_model.get(), server, options);
    auto fae = fae_trainer.TrainFaeWithPlan(dataset, split, config, *plan);
    if (!fae.ok()) {
      std::printf("fae failed: %s\n", fae.status().ToString().c_str());
      return 1;
    }
    const double sync_share =
        fae->timeline.seconds(Phase::kEmbeddingSync) /
        fae->modeled_seconds;
    std::printf("%5d %14s %14s %8.2fx %17.1f%%\n", gpus,
                HumanSeconds(base.modeled_seconds).c_str(),
                HumanSeconds(fae->modeled_seconds).c_str(),
                base.modeled_seconds / fae->modeled_seconds,
                100 * sync_share);
  }

  std::printf("\nbaseline breakdown at 4 GPUs (why the CPU hurts):\n");
  {
    TrainOptions options;
    options.per_gpu_batch = 1024;
    options.epochs = 1;
    options.run_math = false;
    auto model = MakeModel(schema, true, 7);
    Trainer baseline(model.get(), MakePaperServer(4), options);
    TrainReport base = baseline.TrainBaseline(dataset, split);
    std::printf("%s", base.timeline.Report().c_str());
  }
  return 0;
}
