// Session-based recommendation scenario (the paper's RMC1/Taobao use
// case): a marketplace trains a TBSM over user browse sessions — each
// input carries a history of up to 21 items plus a target item — and
// tracks how the Shuffle Scheduler adapts its hot/cold interleave rate.
//
// Build & run:  ./build/examples/session_recommendation

#include <cstdio>

#include "core/shuffle_scheduler.h"
#include "data/synthetic.h"
#include "engine/trainer.h"
#include "models/factory.h"
#include "util/string_util.h"

int main() {
  using namespace fae;

  DatasetSchema schema = MakeTaobaoLikeSchema(DatasetScale::kTiny);
  SyntheticGenerator generator(schema, {.seed = 99});
  Dataset dataset = generator.Generate(8000);
  Dataset::Split split = dataset.MakeSplit(0.15);

  double mean_history = 0;
  for (size_t i = 0; i < dataset.size(); ++i) {
    mean_history += static_cast<double>(dataset.sample(i).indices[0].size());
  }
  std::printf("sessions: %zu, mean history length %.1f (max %zu)\n",
              dataset.size(), mean_history / dataset.size(),
              schema.max_history);

  FaeConfig config;
  config.sample_rate = 0.25;
  config.gpu_memory_budget = 384 << 10;
  config.large_table_bytes = 4 << 10;

  TrainOptions options;
  options.per_gpu_batch = 64;
  options.epochs = 2;
  options.eval_samples = 512;

  SystemSpec server = MakePaperServer(2);
  server.hot_embedding_budget = config.gpu_memory_budget;

  auto baseline_model = MakeModel(schema, /*full_size=*/false, 11);
  Trainer baseline(baseline_model.get(), server, options);
  TrainReport base = baseline.TrainBaseline(dataset, split);

  auto fae_model = MakeModel(schema, /*full_size=*/false, 11);
  Trainer fae_trainer(fae_model.get(), server, options);
  auto fae = fae_trainer.TrainFae(dataset, split, config);
  if (!fae.ok()) {
    std::printf("fae failed: %s\n", fae.status().ToString().c_str());
    return 1;
  }

  std::printf("\naccuracy: baseline test %.2f%%  |  fae test %.2f%%\n",
              100 * base.final_test_acc, 100 * fae->final_test_acc);
  std::printf("time:     baseline %s  |  fae %s (%.2fx)\n",
              HumanSeconds(base.modeled_seconds).c_str(),
              HumanSeconds(fae->modeled_seconds).c_str(),
              base.modeled_seconds / fae->modeled_seconds);
  std::printf(
      "schedule: %zu hot / %zu cold batches, %zu transitions, final rate "
      "R(%.0f)\n",
      fae->hot_batches, fae->cold_batches, fae->transitions,
      fae->final_rate);

  std::printf("\ntest-loss trajectory at each schedule chunk:\n");
  for (const CurvePoint& p : fae->curve) {
    std::printf("  iter %4zu: test loss %.4f, test acc %.2f%%\n",
                p.iteration, p.test_loss, 100 * p.test_acc);
  }
  return 0;
}
