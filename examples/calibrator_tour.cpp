// A guided tour of the Calibrator's internals (paper §III-A): how the
// Sparse Input Sampler, Embedding Logger, Rand-Em Box, and Statistical
// Optimizer cooperate to pick the access threshold without scanning the
// whole dataset or the whole tables.
//
// Build & run:  ./build/examples/calibrator_tour

#include <cstdio>

#include "core/calibrator.h"
#include "core/embedding_classifier.h"
#include "core/embedding_logger.h"
#include "core/rand_em_box.h"
#include "data/synthetic.h"
#include "stats/sampling.h"
#include "util/random.h"
#include "util/string_util.h"

int main() {
  using namespace fae;

  DatasetSchema schema = MakeKaggleLikeSchema(DatasetScale::kTiny);
  SyntheticGenerator generator(schema, {.seed = 5});
  Dataset dataset = generator.Generate(30000);

  std::printf("== Step 1: Sparse Input Sampler (x = 5%%)\n");
  Xoshiro256 rng(17);
  std::vector<uint64_t> sample_ids =
      BernoulliSampleIndices(dataset.size(), 0.05, rng);
  std::printf("   sampled %zu of %zu inputs\n", sample_ids.size(),
              dataset.size());

  std::printf("\n== Step 2: Embedding Logger (per-entry access counts)\n");
  EmbeddingLogger::Result logged = EmbeddingLogger::Profile(dataset, sample_ids);
  std::printf("   replayed %llu lookups in %s\n",
              static_cast<unsigned long long>(logged.num_lookups),
              HumanSeconds(logged.seconds).c_str());
  std::printf("   largest table: top 5%% of entries hold %.1f%% of accesses\n",
              100 * logged.profile.TopShare(0, 0.05));

  std::printf("\n== Step 3: Rand-Em Box (CLT size estimates, n=35, m=1024)\n");
  const RandEmBox box(35, 1024, 0.999, 3);
  for (uint64_t h_zt : {2ull, 8ull, 32ull}) {
    const auto est = box.EstimateTable(logged.profile.counts(0), h_zt);
    const uint64_t exact = RandEmBox::ExactCount(logged.profile.counts(0), h_zt);
    std::printf(
        "   H_zt=%2llu: estimate %.0f entries (CI upper %.0f), exact %llu%s\n",
        static_cast<unsigned long long>(h_zt), est.mean_hot_entries,
        est.upper_hot_entries, static_cast<unsigned long long>(exact),
        est.exact ? " [small table: full scan]" : "");
  }

  std::printf("\n== Step 4: Statistical Optimizer (threshold sweep vs L)\n");
  FaeConfig config;
  config.sample_rate = 0.05;
  config.gpu_memory_budget = 384 << 10;
  config.large_table_bytes = 4 << 10;
  Calibrator calibrator(config);
  auto result = calibrator.Calibrate(dataset);
  if (!result.ok()) {
    std::printf("   calibration failed: %s\n",
                result.status().ToString().c_str());
    return 1;
  }
  std::printf("   budget L = %s\n",
              HumanBytes(config.gpu_memory_budget).c_str());
  for (const ThresholdPoint& p : result->sweep) {
    std::printf("   t=%-8.0e H_zt=%-6llu est %-12s %s\n", p.threshold,
                static_cast<unsigned long long>(p.h_zt),
                HumanBytes(p.estimated_hot_bytes).c_str(),
                p.fits ? "fits" : "over budget");
  }
  std::printf("   -> final threshold t = %.1e (H_zt = %llu)\n",
              result->threshold,
              static_cast<unsigned long long>(result->h_zt));

  std::printf("\n== Step 5: Embedding Classifier (hot bags)\n");
  HotSet hot = EmbeddingClassifier::Classify(
      result->profile, schema, result->h_zt, config.large_table_bytes);
  uint64_t hot_rows = 0;
  uint64_t total_rows = 0;
  for (size_t t = 0; t < schema.num_tables(); ++t) {
    hot_rows += hot.HotCount(t);
    total_rows += schema.table_rows[t];
  }
  std::printf(
      "   %llu of %llu rows hot (%.2f%%) -> %s replicated per GPU,\n"
      "   capturing %.1f%% of all embedding accesses\n",
      static_cast<unsigned long long>(hot_rows),
      static_cast<unsigned long long>(total_rows),
      100.0 * static_cast<double>(hot_rows) / static_cast<double>(total_rows),
      HumanBytes(hot.HotBytes(schema.embedding_dim)).c_str(),
      100 * hot.HotAccessShare(result->profile));
  return 0;
}
