// Serving: train a session-recommendation model with FAE, checkpoint it,
// reload the checkpoint (as an inference process would), and rank
// candidate items for live user sessions — top-K retrieval over the
// model's click-probability scores.
//
// Build & run:  ./build/examples/serving

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "data/synthetic.h"
#include "engine/trainer.h"
#include "models/factory.h"
#include "models/model_io.h"
#include "tensor/ops.h"
#include "util/file_io.h"
#include "util/string_util.h"

namespace {

// Scores every candidate as the target item appended to the session's
// history and returns the top-k item ids.
std::vector<std::pair<float, uint32_t>> RankCandidates(
    const fae::RecModel& model, const fae::DatasetSchema& schema,
    const fae::SparseInput& session,
    const std::vector<uint32_t>& candidates, size_t k) {
  fae::MiniBatch batch;
  const size_t b = candidates.size();
  batch.dense = fae::Tensor(b, schema.num_dense);
  batch.indices.resize(schema.num_tables());
  batch.offsets.assign(schema.num_tables(), std::vector<uint32_t>(1, 0));
  batch.labels.assign(b, 0.0f);
  for (size_t i = 0; i < b; ++i) {
    for (size_t d = 0; d < schema.num_dense; ++d) {
      batch.dense(i, d) = session.dense[d];
    }
    // Item table: history then the candidate as the target (TBSM's input
    // convention); other tables: the session's own context.
    auto& item_idx = batch.indices[0];
    item_idx.insert(item_idx.end(), session.indices[0].begin(),
                    session.indices[0].end());
    item_idx.push_back(candidates[i]);
    batch.offsets[0].push_back(static_cast<uint32_t>(item_idx.size()));
    for (size_t t = 1; t < schema.num_tables(); ++t) {
      batch.indices[t].push_back(session.indices[t][0]);
      batch.offsets[t].push_back(
          static_cast<uint32_t>(batch.indices[t].size()));
    }
  }
  fae::Tensor logits = model.EvalLogits(batch);
  std::vector<std::pair<float, uint32_t>> scored;
  scored.reserve(b);
  for (size_t i = 0; i < b; ++i) {
    scored.push_back({logits(i, 0), candidates[i]});
  }
  std::partial_sort(scored.begin(), scored.begin() + std::min(k, b),
                    scored.end(), std::greater<>());
  scored.resize(std::min(k, b));
  return scored;
}

}  // namespace

int main() {
  using namespace fae;

  // --- Training side ---
  DatasetSchema schema = MakeTaobaoLikeSchema(DatasetScale::kTiny);
  SyntheticGenerator generator(schema, {.seed = 123});
  Dataset dataset = generator.Generate(6000);
  Dataset::Split split = dataset.MakeSplit(0.1);

  FaeConfig config;
  config.sample_rate = 0.25;
  config.gpu_memory_budget = 768 << 10;
  config.large_table_bytes = 4 << 10;

  TrainOptions options;
  options.per_gpu_batch = 64;
  options.epochs = 2;

  auto trained = MakeModel(schema, /*full_size=*/false, 7);
  Trainer trainer(trained.get(), MakePaperServer(2), options);
  auto report = trainer.TrainFae(dataset, split, config);
  if (!report.ok()) {
    std::printf("training failed: %s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("trained with FAE: test acc %.2f%%, test AUC %.3f (%s modeled)\n",
              100 * report->final_test_acc, report->final_test_auc,
              HumanSeconds(report->modeled_seconds).c_str());

  const std::string checkpoint = "/tmp/fae_serving.faem";
  if (Status s = ModelIo::Save(checkpoint, *trained); !s.ok()) {
    std::printf("checkpoint failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("checkpointed to %s\n\n", checkpoint.c_str());

  // --- Serving side: a fresh process would do exactly this ---
  auto server_model = MakeModel(schema, /*full_size=*/false, 999);
  if (Status s = ModelIo::Load(checkpoint, *server_model); !s.ok()) {
    std::printf("restore failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // Candidate pool: the 200 globally most popular items (a production
  // system would use a retrieval stage here).
  AccessProfile profile = dataset.ProfileAllAccesses();
  std::vector<std::pair<uint64_t, uint32_t>> by_count;
  for (uint32_t r = 0; r < schema.table_rows[0]; ++r) {
    by_count.push_back({profile.counts(0)[r], r});
  }
  std::partial_sort(by_count.begin(), by_count.begin() + 200, by_count.end(),
                    std::greater<>());
  std::vector<uint32_t> candidates;
  for (int i = 0; i < 200; ++i) candidates.push_back(by_count[i].second);

  // Serve three sessions from the held-out split.
  for (int q = 0; q < 3; ++q) {
    const SparseInput& session = dataset.sample(split.test[q * 7]);
    auto top = RankCandidates(*server_model, schema, session, candidates, 5);
    std::printf("session with %zu history items -> top-5 recommendations:\n",
                session.indices[0].size());
    for (const auto& [score, item] : top) {
      const double p = 1.0 / (1.0 + std::exp(-score));
      std::printf("  item %-8u p(click)=%.3f\n", item, p);
    }
  }
  (void)RemoveFile(checkpoint);
  return 0;
}
