// Quickstart: the whole FAE workflow in ~60 lines.
//
//   1. Build (or load) a recommendation dataset.
//   2. Run the static FAE pipeline: calibrate a hot threshold, classify
//      embeddings and inputs, pack pure hot/cold mini-batches.
//   3. Train with the FAE schedule and compare against the hybrid
//      CPU-GPU baseline: same accuracy, less (modeled) time.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "data/synthetic.h"
#include "engine/trainer.h"
#include "models/factory.h"
#include "util/string_util.h"

int main() {
  using namespace fae;

  // 1) A Criteo-Kaggle-like synthetic dataset: 13 dense features, 26
  //    Zipf-skewed categorical tables (see data/schema.h for presets).
  DatasetSchema schema = MakeKaggleLikeSchema(DatasetScale::kTiny);
  SyntheticGenerator generator(schema, {.seed = 42});
  Dataset dataset = generator.Generate(8000);
  Dataset::Split split = dataset.MakeSplit(/*test_fraction=*/0.15);
  std::printf("dataset: %zu inputs, %zu tables, %s of embeddings\n",
              dataset.size(), schema.num_tables(),
              HumanBytes(schema.TotalEmbeddingBytes()).c_str());

  // 2) FAE static pipeline. The knobs mirror the paper: sample 5-25% of
  //    inputs, fit the hot slice into a per-GPU budget L.
  FaeConfig config;
  config.sample_rate = 0.25;
  config.gpu_memory_budget = 384 << 10;  // L
  config.large_table_bytes = 4 << 10;    // scaled-down "large" cutoff
  FaePipeline pipeline(config);
  auto plan = pipeline.Prepare(dataset, split.train);
  if (!plan.ok()) {
    std::printf("FAE preprocessing failed: %s\n",
                plan.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "FAE plan: threshold t=%.1e, hot slice %s, hot inputs %.1f%%, hot "
      "accesses %.1f%%\n",
      plan->threshold, HumanBytes(plan->hot_bytes).c_str(),
      100 * plan->inputs.HotFraction(), 100 * plan->hot_access_share);

  // 3) Train twice on the simulated 4-GPU server: baseline placement vs
  //    FAE's hot/cold schedule. Math is real; time is modeled.
  TrainOptions options;
  options.per_gpu_batch = 64;
  options.epochs = 2;

  SystemSpec server = MakePaperServer(/*num_gpus=*/4);
  server.hot_embedding_budget = config.gpu_memory_budget;

  auto baseline_model = MakeModel(schema, /*full_size=*/false, /*seed=*/7);
  Trainer baseline(baseline_model.get(), server, options);
  TrainReport base = baseline.TrainBaseline(dataset, split);

  auto fae_model = MakeModel(schema, /*full_size=*/false, /*seed=*/7);
  Trainer fae_trainer(fae_model.get(), server, options);
  auto fae = fae_trainer.TrainFaeWithPlan(dataset, split, config, *plan);
  if (!fae.ok()) {
    std::printf("FAE training failed: %s\n", fae.status().ToString().c_str());
    return 1;
  }

  std::printf("\n%-10s %12s %12s %12s\n", "mode", "test-acc", "time(model)",
              "gpu-power");
  std::printf("%-10s %11.2f%% %12s %10.1fW\n", "baseline",
              100 * base.final_test_acc,
              HumanSeconds(base.modeled_seconds).c_str(),
              base.avg_gpu_watts);
  std::printf("%-10s %11.2f%% %12s %10.1fW\n", "fae",
              100 * fae->final_test_acc,
              HumanSeconds(fae->modeled_seconds).c_str(),
              fae->avg_gpu_watts);
  std::printf("\nspeedup: %.2fx at matched accuracy\n",
              base.modeled_seconds / fae->modeled_seconds);
  return 0;
}
