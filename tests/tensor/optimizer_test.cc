#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "embedding/rowwise_adagrad.h"
#include "embedding/sparse_sgd.h"
#include "tensor/loss.h"
#include "tensor/mlp.h"
#include "tensor/momentum_sgd.h"
#include "tensor/sgd.h"

namespace fae {
namespace {

void SetRow(SparseGrad& g, uint64_t id, const std::vector<float>& values) {
  g.dim = values.size();
  float* row = g.Upsert(id);
  std::copy(values.begin(), values.end(), row);
}

Parameter MakeParam(std::vector<float> values) {
  // Take the size before the move: argument evaluation order is
  // unspecified, so Tensor(1, values.size(), std::move(values)) could read
  // a moved-from vector.
  const size_t n = values.size();
  Parameter p;
  p.name = "p";
  p.value = Tensor(1, n, std::move(values));
  p.grad = Tensor(1, n);
  return p;
}

TEST(MomentumSgdTest, ZeroMomentumMatchesPlainSgd) {
  Parameter a = MakeParam({1.0f, 2.0f});
  Parameter b = MakeParam({1.0f, 2.0f});
  a.grad = Tensor(1, 2, {0.5f, -0.5f});
  b.grad = Tensor(1, 2, {0.5f, -0.5f});

  Sgd plain(0.1f);
  plain.Step({&a});
  MomentumSgd momentum({&b}, 0.1f, 0.0f);
  momentum.Step();
  EXPECT_LT(MaxAbsDiff(a.value, b.value), 1e-7f);
}

TEST(MomentumSgdTest, VelocityAccumulatesKnownValues) {
  Parameter p = MakeParam({0.0f});
  MomentumSgd opt({&p}, /*lr=*/1.0f, /*momentum=*/0.5f);
  // Constant gradient 1: v_1 = 1, v_2 = 1.5, v_3 = 1.75.
  p.grad(0, 0) = 1.0f;
  opt.Step();
  EXPECT_FLOAT_EQ(p.value(0, 0), -1.0f);
  p.grad(0, 0) = 1.0f;
  opt.Step();
  EXPECT_FLOAT_EQ(p.value(0, 0), -2.5f);
  p.grad(0, 0) = 1.0f;
  opt.Step();
  EXPECT_FLOAT_EQ(p.value(0, 0), -4.25f);
}

TEST(MomentumSgdTest, StepClearsGradient) {
  Parameter p = MakeParam({1.0f});
  MomentumSgd opt({&p}, 0.1f, 0.9f);
  p.grad(0, 0) = 3.0f;
  opt.Step();
  EXPECT_EQ(p.grad(0, 0), 0.0f);
}

TEST(MomentumSgdTest, ResetVelocityStopsCoasting) {
  Parameter p = MakeParam({0.0f});
  MomentumSgd opt({&p}, 1.0f, 0.9f);
  p.grad(0, 0) = 1.0f;
  opt.Step();
  opt.ResetVelocity();
  // No gradient: with zero velocity the value must not move.
  const float before = p.value(0, 0);
  opt.Step();
  EXPECT_EQ(p.value(0, 0), before);
}

TEST(MomentumSgdTest, AcceleratesOnIllConditionedQuadratic) {
  // f(w) = 0.5 * (100 w0^2 + w1^2): momentum reaches the optimum faster
  // than plain SGD at the same (stable) learning rate.
  auto run = [](bool use_momentum) {
    Parameter p = MakeParam({1.0f, 1.0f});
    Sgd plain(0.009f);
    MomentumSgd momentum({&p}, 0.009f, 0.9f);
    int iters = 0;
    for (; iters < 4000; ++iters) {
      p.grad(0, 0) = 100.0f * p.value(0, 0);
      p.grad(0, 1) = p.value(0, 1);
      if (std::fabs(p.value(0, 0)) < 1e-3f &&
          std::fabs(p.value(0, 1)) < 1e-3f) {
        break;
      }
      if (use_momentum) {
        momentum.Step();
      } else {
        plain.Step({&p});
      }
    }
    return iters;
  };
  EXPECT_LT(run(true), run(false));
}

TEST(MomentumSgdDeathTest, RejectsInvalidMomentum) {
  Parameter p = MakeParam({0.0f});
  EXPECT_DEATH(MomentumSgd({&p}, 0.1f, 1.0f), "Check failed");
  EXPECT_DEATH(MomentumSgd({&p}, 0.1f, -0.1f), "Check failed");
}

TEST(RowwiseAdagradTest, KnownFirstStep) {
  EmbeddingTable table(4, 2);
  RowwiseAdagrad opt(4, /*lr=*/1.0f, /*eps=*/0.0f);
  SparseGrad g;
  SetRow(g, 1, {3.0f, 4.0f});  // mean square = (9+16)/2 = 12.5
  opt.Step(table, g);
  const float scale = 1.0f / std::sqrt(12.5f);
  EXPECT_NEAR(table.row(1)[0], -3.0f * scale, 1e-5f);
  EXPECT_NEAR(table.row(1)[1], -4.0f * scale, 1e-5f);
  EXPECT_NEAR(opt.accumulator(1), 12.5f, 1e-5f);
  EXPECT_EQ(opt.accumulator(0), 0.0f);
}

TEST(RowwiseAdagradTest, EffectiveStepShrinksOverTime) {
  EmbeddingTable table(1, 1);
  RowwiseAdagrad opt(1, 1.0f);
  float prev_delta = 1e9f;
  float prev_value = 0.0f;
  for (int i = 0; i < 5; ++i) {
    SparseGrad g;
    SetRow(g, 0, {1.0f});
    opt.Step(table, g);
    const float delta = prev_value - table.row(0)[0];
    EXPECT_LT(delta, prev_delta);
    prev_delta = delta;
    prev_value = table.row(0)[0];
  }
}

TEST(RowwiseAdagradTest, UntouchedRowsKeepStateAndValues) {
  Xoshiro256 rng(2);
  EmbeddingTable table(8, 4, rng);
  const float before = table.row(5)[0];
  RowwiseAdagrad opt(8, 0.1f);
  SparseGrad g;
  SetRow(g, 2, {1, 1, 1, 1});
  opt.Step(table, g);
  EXPECT_EQ(table.row(5)[0], before);
  EXPECT_EQ(opt.accumulator(5), 0.0f);
}

TEST(RowwiseAdagradTest, StateBytesIsOneFloatPerRow) {
  RowwiseAdagrad opt(1000, 0.1f);
  EXPECT_EQ(opt.StateBytes(), 4000u);
}

TEST(RowwiseAdagradTest, AdaptsBetterThanSgdOnSkewedFrequencies) {
  // A frequently-updated row and a rare row with equal gradient scales:
  // Adagrad automatically damps the frequent row and keeps the rare row
  // learning, giving lower overall error than plain sparse SGD tuned to
  // be stable on the frequent row.
  auto final_error = [](bool adagrad) {
    EmbeddingTable table(2, 1);
    table.row(0)[0] = 1.0f;  // target 0, updated every step
    table.row(1)[0] = 1.0f;  // target 0, updated every 10th step
    RowwiseAdagrad ada(2, 0.5f);
    SparseSgd sgd(0.05f);
    for (int i = 0; i < 200; ++i) {
      SparseGrad g;
      SetRow(g, 0, {2.0f * table.row(0)[0]});
      if (i % 10 == 0) SetRow(g, 1, {2.0f * table.row(1)[0]});
      if (adagrad) {
        ada.Step(table, g);
      } else {
        sgd.Step(table, g);
      }
    }
    return std::fabs(table.row(0)[0]) + std::fabs(table.row(1)[0]);
  };
  EXPECT_LT(final_error(true), final_error(false));
}

TEST(RowwiseAdagradDeathTest, RejectsMismatchedTable) {
  EmbeddingTable table(4, 2);
  RowwiseAdagrad opt(8, 0.1f);
  SparseGrad g;
  SetRow(g, 0, {1, 1});
  EXPECT_DEATH(opt.Step(table, g), "Check failed");
}

}  // namespace
}  // namespace fae
