#include "tensor/ops.h"

#include <cmath>

#include <gtest/gtest.h>

namespace fae {
namespace {

TEST(OpsTest, MatMulSmallKnown) {
  Tensor a(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor b(3, 2, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.rows(), 2u);
  EXPECT_EQ(c.cols(), 2u);
  EXPECT_FLOAT_EQ(c(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c(1, 1), 154.0f);
}

TEST(OpsTest, MatMulIdentity) {
  Xoshiro256 rng(1);
  Tensor a = Tensor::Randn(4, 4, 1.0f, rng);
  Tensor eye(4, 4);
  for (int i = 0; i < 4; ++i) eye(i, i) = 1.0f;
  EXPECT_LT(MaxAbsDiff(MatMul(a, eye), a), 1e-6f);
  EXPECT_LT(MaxAbsDiff(MatMul(eye, a), a), 1e-6f);
}

TEST(OpsTest, TransposedVariantsAgreeWithExplicitTranspose) {
  Xoshiro256 rng(2);
  Tensor a = Tensor::Randn(5, 3, 1.0f, rng);
  Tensor b = Tensor::Randn(5, 4, 1.0f, rng);
  // a^T * b via MatMulTransA.
  Tensor at(3, 5);
  for (size_t i = 0; i < 5; ++i) {
    for (size_t j = 0; j < 3; ++j) at(j, i) = a(i, j);
  }
  EXPECT_LT(MaxAbsDiff(MatMulTransA(a, b), MatMul(at, b)), 1e-5f);

  Tensor c = Tensor::Randn(4, 3, 1.0f, rng);
  Tensor d = Tensor::Randn(6, 3, 1.0f, rng);
  Tensor dt(3, 6);
  for (size_t i = 0; i < 6; ++i) {
    for (size_t j = 0; j < 3; ++j) dt(j, i) = d(i, j);
  }
  EXPECT_LT(MaxAbsDiff(MatMulTransB(c, d), MatMul(c, dt)), 1e-5f);
}

TEST(OpsTest, AddBiasRowwise) {
  Tensor x(2, 3, {0, 0, 0, 1, 1, 1});
  Tensor bias(1, 3, {10, 20, 30});
  AddBiasRowwise(x, bias);
  EXPECT_FLOAT_EQ(x(0, 2), 30.0f);
  EXPECT_FLOAT_EQ(x(1, 0), 11.0f);
}

TEST(OpsTest, ColumnSums) {
  Tensor x(3, 2, {1, 10, 2, 20, 3, 30});
  Tensor s = ColumnSums(x);
  EXPECT_FLOAT_EQ(s(0, 0), 6.0f);
  EXPECT_FLOAT_EQ(s(0, 1), 60.0f);
}

TEST(OpsTest, ReluForwardAndBackward) {
  Tensor x(1, 4, {-2, -0.5, 0.5, 2});
  Tensor y = ReluForward(x);
  EXPECT_FLOAT_EQ(y(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(y(0, 2), 0.5f);
  Tensor g(1, 4, {1, 1, 1, 1});
  Tensor dx = ReluBackward(g, x);
  EXPECT_FLOAT_EQ(dx(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(dx(0, 1), 0.0f);
  EXPECT_FLOAT_EQ(dx(0, 2), 1.0f);
  EXPECT_FLOAT_EQ(dx(0, 3), 1.0f);
}

TEST(OpsTest, SigmoidKnownValues) {
  Tensor x(1, 3, {0, 100, -100});
  Tensor y = SigmoidForward(x);
  EXPECT_FLOAT_EQ(y(0, 0), 0.5f);
  EXPECT_NEAR(y(0, 1), 1.0f, 1e-6f);
  EXPECT_NEAR(y(0, 2), 0.0f, 1e-6f);
}

TEST(OpsTest, ConcatAndSplitRoundTrip) {
  Xoshiro256 rng(3);
  Tensor a = Tensor::Randn(3, 2, 1.0f, rng);
  Tensor b = Tensor::Randn(3, 5, 1.0f, rng);
  Tensor c = Tensor::Randn(3, 1, 1.0f, rng);
  Tensor cat = ConcatCols({&a, &b, &c});
  EXPECT_EQ(cat.cols(), 8u);
  auto parts = SplitCols(cat, {2, 5, 1});
  EXPECT_LT(MaxAbsDiff(parts[0], a), 1e-7f);
  EXPECT_LT(MaxAbsDiff(parts[1], b), 1e-7f);
  EXPECT_LT(MaxAbsDiff(parts[2], c), 1e-7f);
}

TEST(OpsTest, SoftmaxRowsSumToOne) {
  Xoshiro256 rng(4);
  Tensor x = Tensor::Randn(5, 7, 3.0f, rng);
  Tensor y = SoftmaxRows(x);
  for (size_t r = 0; r < y.rows(); ++r) {
    double sum = 0;
    for (size_t c = 0; c < y.cols(); ++c) {
      EXPECT_GT(y(r, c), 0.0f);
      sum += y(r, c);
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(OpsTest, SoftmaxStableForLargeInputs) {
  Tensor x(1, 3, {1000, 1001, 1002});
  Tensor y = SoftmaxRows(x);
  EXPECT_FALSE(std::isnan(y(0, 0)));
  EXPECT_GT(y(0, 2), y(0, 0));
}

TEST(OpsTest, PairwiseDotKnownValues) {
  // Two features of dim 2, batch 1: dot(f0, f1).
  Tensor f0(1, 2, {1, 2});
  Tensor f1(1, 2, {3, 4});
  Tensor out = PairwiseDotInteraction({&f0, &f1});
  EXPECT_EQ(out.cols(), 1u);
  EXPECT_FLOAT_EQ(out(0, 0), 11.0f);
}

TEST(OpsTest, PairwiseDotCountsPairs) {
  Xoshiro256 rng(5);
  std::vector<Tensor> feats;
  std::vector<const Tensor*> ptrs;
  for (int i = 0; i < 5; ++i) feats.push_back(Tensor::Randn(3, 4, 1.0f, rng));
  for (auto& f : feats) ptrs.push_back(&f);
  Tensor out = PairwiseDotInteraction(ptrs);
  EXPECT_EQ(out.cols(), 10u);  // C(5,2)
  EXPECT_EQ(out.rows(), 3u);
}

TEST(OpsTest, PairwiseDotBackwardMatchesNumericalGradient) {
  Xoshiro256 rng(6);
  std::vector<Tensor> feats;
  for (int i = 0; i < 3; ++i) feats.push_back(Tensor::Randn(2, 4, 1.0f, rng));
  std::vector<const Tensor*> ptrs;
  for (auto& f : feats) ptrs.push_back(&f);
  Tensor grad_out = Tensor::Randn(2, 3, 1.0f, rng);

  auto loss = [&]() {
    Tensor out = PairwiseDotInteraction(ptrs);
    double l = 0;
    for (size_t i = 0; i < out.numel(); ++i) {
      l += out.data()[i] * grad_out.data()[i];
    }
    return l;
  };

  std::vector<Tensor> analytic =
      PairwiseDotInteractionBackward(grad_out, ptrs);
  const float eps = 1e-3f;
  for (size_t f = 0; f < feats.size(); ++f) {
    for (size_t i = 0; i < feats[f].numel(); ++i) {
      const float orig = feats[f].data()[i];
      feats[f].data()[i] = orig + eps;
      const double lp = loss();
      feats[f].data()[i] = orig - eps;
      const double lm = loss();
      feats[f].data()[i] = orig;
      const double numeric = (lp - lm) / (2 * eps);
      EXPECT_NEAR(analytic[f].data()[i], numeric, 2e-2)
          << "feature " << f << " elem " << i;
    }
  }
}

TEST(OpsTest, BlockedMatMulMatchesNaive) {
  Xoshiro256 rng(7);
  for (auto [m, k, n] : {std::tuple<size_t, size_t, size_t>{3, 5, 7},
                         {64, 128, 96},
                         {257, 300, 129},
                         {1, 400, 1}}) {
    Tensor a = Tensor::Randn(m, k, 1.0f, rng);
    Tensor b = Tensor::Randn(k, n, 1.0f, rng);
    EXPECT_LT(MaxAbsDiff(MatMulBlocked(a, b), MatMulNaive(a, b)), 1e-4f)
        << m << "x" << k << "x" << n;
  }
}

TEST(OpsTest, MatMulDispatchMatchesNaiveOnLargeShapes) {
  Xoshiro256 rng(8);
  Tensor a = Tensor::Randn(300, 400, 1.0f, rng);
  Tensor b = Tensor::Randn(400, 350, 1.0f, rng);
  EXPECT_LT(MaxAbsDiff(MatMul(a, b), MatMulNaive(a, b)), 1e-4f);
}

TEST(OpsDeathTest, MatMulShapeMismatchAborts) {
  Tensor a(2, 3);
  Tensor b(4, 2);
  EXPECT_DEATH(MatMul(a, b), "Check failed");
}

}  // namespace
}  // namespace fae
