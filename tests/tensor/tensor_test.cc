#include "tensor/tensor.h"

#include <cmath>

#include <gtest/gtest.h>

namespace fae {
namespace {

TEST(TensorTest, DefaultIsEmpty) {
  Tensor t;
  EXPECT_EQ(t.rows(), 0u);
  EXPECT_EQ(t.cols(), 0u);
  EXPECT_TRUE(t.empty());
}

TEST(TensorTest, ZeroInitialized) {
  Tensor t(3, 4);
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 4u);
  EXPECT_EQ(t.numel(), 12u);
  for (size_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t.data()[i], 0.0f);
}

TEST(TensorTest, ConstructFromBuffer) {
  Tensor t(2, 2, {1, 2, 3, 4});
  EXPECT_EQ(t(0, 0), 1.0f);
  EXPECT_EQ(t(0, 1), 2.0f);
  EXPECT_EQ(t(1, 0), 3.0f);
  EXPECT_EQ(t(1, 1), 4.0f);
}

TEST(TensorTest, RowPointerMatchesIndexing) {
  Tensor t(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(t.row(1)[0], 4.0f);
  EXPECT_EQ(t.row(1)[2], 6.0f);
}

TEST(TensorTest, FullFillsValue) {
  Tensor t = Tensor::Full(2, 2, 7.5f);
  for (size_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t.data()[i], 7.5f);
}

TEST(TensorTest, RandnHasRequestedMoments) {
  Xoshiro256 rng(5);
  Tensor t = Tensor::Randn(200, 200, 2.0f, rng);
  const double mean = t.Sum() / t.numel();
  EXPECT_NEAR(mean, 0.0, 0.05);
  double var = 0;
  for (size_t i = 0; i < t.numel(); ++i) {
    var += (t.data()[i] - mean) * (t.data()[i] - mean);
  }
  var /= t.numel();
  EXPECT_NEAR(var, 4.0, 0.2);
}

TEST(TensorTest, RandUniformWithinBound) {
  Xoshiro256 rng(6);
  Tensor t = Tensor::RandUniform(100, 10, 0.25f, rng);
  for (size_t i = 0; i < t.numel(); ++i) {
    EXPECT_GE(t.data()[i], -0.25f);
    EXPECT_LE(t.data()[i], 0.25f);
  }
}

TEST(TensorTest, ArithmeticHelpers) {
  Tensor a(1, 3, {1, 2, 3});
  Tensor b(1, 3, {10, 20, 30});
  a.Add(b);
  EXPECT_EQ(a(0, 1), 22.0f);
  a.Axpy(0.5f, b);
  EXPECT_EQ(a(0, 0), 16.0f);
  a.Scale(2.0f);
  EXPECT_EQ(a(0, 0), 32.0f);
  a.SetZero();
  EXPECT_EQ(a.Sum(), 0.0);
}

TEST(TensorTest, SumAndNorm) {
  Tensor t(1, 4, {3, 4, 0, 0});
  EXPECT_EQ(t.Sum(), 7.0);
  EXPECT_DOUBLE_EQ(t.Norm(), 5.0);
}

TEST(TensorTest, MaxAbsDiff) {
  Tensor a(1, 3, {1, 2, 3});
  Tensor b(1, 3, {1, 2.5, 3});
  EXPECT_FLOAT_EQ(MaxAbsDiff(a, b), 0.5f);
  Tensor c(2, 3);
  EXPECT_TRUE(std::isinf(MaxAbsDiff(a, c)));
}

TEST(TensorTest, DebugStringShowsShape) {
  Tensor t(3, 4);
  EXPECT_NE(t.DebugString().find("Tensor[3x4]"), std::string::npos);
}

TEST(TensorDeathTest, ShapeMismatchAborts) {
  Tensor a(2, 2);
  Tensor b(2, 3);
  EXPECT_DEATH(a.Add(b), "Check failed");
}

}  // namespace
}  // namespace fae
