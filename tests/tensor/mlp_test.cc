#include "tensor/mlp.h"

#include <gtest/gtest.h>

#include "tensor/linear.h"
#include "tensor/loss.h"
#include "tensor/ops.h"
#include "tensor/sgd.h"

namespace fae {
namespace {

TEST(LinearTest, ForwardShape) {
  Xoshiro256 rng(1);
  Linear layer(4, 3, rng);
  Tensor x = Tensor::Randn(5, 4, 1.0f, rng);
  Tensor y = layer.Forward(x);
  EXPECT_EQ(y.rows(), 5u);
  EXPECT_EQ(y.cols(), 3u);
}

TEST(LinearTest, ForwardMatchesManualComputation) {
  Xoshiro256 rng(2);
  Linear layer(2, 1, rng);
  layer.weight().value = Tensor(2, 1, {2, 3});
  layer.bias().value = Tensor(1, 1, {1});
  Tensor x(1, 2, {4, 5});
  Tensor y = layer.Forward(x);
  EXPECT_FLOAT_EQ(y(0, 0), 2 * 4 + 3 * 5 + 1);
}

TEST(LinearTest, InferenceMatchesForward) {
  Xoshiro256 rng(3);
  Linear layer(6, 4, rng);
  Tensor x = Tensor::Randn(3, 6, 1.0f, rng);
  EXPECT_LT(MaxAbsDiff(layer.Forward(x), layer.ForwardInference(x)), 1e-7f);
}

TEST(LinearTest, GradientCheck) {
  Xoshiro256 rng(4);
  Linear layer(3, 2, rng);
  Tensor x = Tensor::Randn(4, 3, 1.0f, rng);
  Tensor grad_out = Tensor::Randn(4, 2, 1.0f, rng);

  auto loss = [&]() {
    Tensor y = layer.ForwardInference(x);
    double l = 0;
    for (size_t i = 0; i < y.numel(); ++i) {
      l += y.data()[i] * grad_out.data()[i];
    }
    return l;
  };

  layer.Forward(x);
  Tensor grad_x = layer.Backward(grad_out);

  const float eps = 1e-3f;
  // Weight gradient.
  for (size_t i = 0; i < layer.weight().value.numel(); ++i) {
    float& w = layer.weight().value.data()[i];
    const float orig = w;
    w = orig + eps;
    const double lp = loss();
    w = orig - eps;
    const double lm = loss();
    w = orig;
    EXPECT_NEAR(layer.weight().grad.data()[i], (lp - lm) / (2 * eps), 2e-2);
  }
  // Bias gradient.
  for (size_t i = 0; i < layer.bias().value.numel(); ++i) {
    float& b = layer.bias().value.data()[i];
    const float orig = b;
    b = orig + eps;
    const double lp = loss();
    b = orig - eps;
    const double lm = loss();
    b = orig;
    EXPECT_NEAR(layer.bias().grad.data()[i], (lp - lm) / (2 * eps), 2e-2);
  }
  // Input gradient.
  for (size_t i = 0; i < x.numel(); ++i) {
    const float orig = x.data()[i];
    x.data()[i] = orig + eps;
    const double lp = loss();
    x.data()[i] = orig - eps;
    const double lm = loss();
    x.data()[i] = orig;
    EXPECT_NEAR(grad_x.data()[i], (lp - lm) / (2 * eps), 2e-2);
  }
}

TEST(MlpTest, RespectsArchitecture) {
  Xoshiro256 rng(5);
  Mlp mlp({13, 512, 256, 64, 16}, rng);
  EXPECT_EQ(mlp.in_features(), 13u);
  EXPECT_EQ(mlp.out_features(), 16u);
  EXPECT_EQ(mlp.NumParams(),
            13u * 512 + 512 + 512u * 256 + 256 + 256u * 64 + 64 + 64u * 16 + 16);
}

TEST(MlpTest, ForwardFlopsFormula) {
  Xoshiro256 rng(6);
  Mlp mlp({4, 8, 2}, rng);
  EXPECT_EQ(mlp.ForwardFlops(10), 2ull * 10 * 4 * 8 + 2ull * 10 * 8 * 2);
}

TEST(MlpTest, GradientCheckThroughRelu) {
  Xoshiro256 rng(7);
  Mlp mlp({3, 5, 2}, rng);
  Tensor x = Tensor::Randn(4, 3, 1.0f, rng);
  Tensor grad_out = Tensor::Randn(4, 2, 1.0f, rng);

  auto loss = [&]() {
    Tensor y = mlp.ForwardInference(x);
    double l = 0;
    for (size_t i = 0; i < y.numel(); ++i) {
      l += y.data()[i] * grad_out.data()[i];
    }
    return l;
  };

  mlp.Forward(x);
  Tensor grad_x = mlp.Backward(grad_out);

  const float eps = 1e-3f;
  for (Parameter* p : mlp.Params()) {
    for (size_t i = 0; i < p->value.numel(); ++i) {
      const float orig = p->value.data()[i];
      p->value.data()[i] = orig + eps;
      const double lp = loss();
      p->value.data()[i] = orig - eps;
      const double lm = loss();
      p->value.data()[i] = orig;
      EXPECT_NEAR(p->grad.data()[i], (lp - lm) / (2 * eps), 3e-2)
          << p->name << " elem " << i;
    }
  }
  for (size_t i = 0; i < x.numel(); ++i) {
    const float orig = x.data()[i];
    x.data()[i] = orig + eps;
    const double lp = loss();
    x.data()[i] = orig - eps;
    const double lm = loss();
    x.data()[i] = orig;
    EXPECT_NEAR(grad_x.data()[i], (lp - lm) / (2 * eps), 3e-2);
  }
}

TEST(MlpTest, LearnsXorLikeTask) {
  // A 2-layer MLP with BCE should fit a small nonlinear dataset.
  Xoshiro256 rng(8);
  Mlp mlp({2, 16, 1}, rng);
  Sgd sgd(0.5f);
  Tensor x(4, 2, {0, 0, 0, 1, 1, 0, 1, 1});
  std::vector<float> labels = {0, 1, 1, 0};
  double final_loss = 1e9;
  for (int iter = 0; iter < 2000; ++iter) {
    Tensor logits = mlp.Forward(x);
    BceResult r = BceWithLogits(logits, labels);
    mlp.Backward(r.grad_logits);
    sgd.Step(mlp.Params());
    final_loss = r.mean_loss;
  }
  EXPECT_LT(final_loss, 0.1);
}

TEST(MlpDeathTest, SingleDimRejected) {
  Xoshiro256 rng(9);
  EXPECT_DEATH(Mlp({5}, rng), "at least one layer");
}

}  // namespace
}  // namespace fae
