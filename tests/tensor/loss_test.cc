#include "tensor/loss.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace fae {
namespace {

TEST(LossTest, KnownValueAtZeroLogit) {
  Tensor logits(2, 1, {0, 0});
  const std::vector<float> labels = {1, 0};
  BceResult r = BceWithLogits(logits, labels);
  // -log(0.5) for both samples.
  EXPECT_NEAR(r.mean_loss, std::log(2.0), 1e-6);
}

TEST(LossTest, ConfidentCorrectPredictionsHaveLowLoss) {
  Tensor logits(2, 1, {10, -10});
  const std::vector<float> labels = {1, 0};
  BceResult r = BceWithLogits(logits, labels);
  EXPECT_LT(r.mean_loss, 1e-3);
  EXPECT_EQ(r.correct, 2u);
}

TEST(LossTest, ConfidentWrongPredictionsHaveHighLoss) {
  Tensor logits(2, 1, {10, -10});
  const std::vector<float> labels = {0, 1};
  BceResult r = BceWithLogits(logits, labels);
  EXPECT_GT(r.mean_loss, 5.0);
  EXPECT_EQ(r.correct, 0u);
}

TEST(LossTest, GradientIsSigmoidMinusLabelOverBatch) {
  Tensor logits(2, 1, {0, 2});
  const std::vector<float> labels = {1, 0};
  BceResult r = BceWithLogits(logits, labels);
  EXPECT_NEAR(r.grad_logits(0, 0), (0.5 - 1.0) / 2.0, 1e-6);
  const double p1 = 1.0 / (1.0 + std::exp(-2.0));
  EXPECT_NEAR(r.grad_logits(1, 0), (p1 - 0.0) / 2.0, 1e-6);
}

TEST(LossTest, GradientMatchesNumericalDerivative) {
  Tensor logits(3, 1, {0.3f, -1.2f, 2.4f});
  std::vector<float> labels = {1, 0, 1};
  BceResult r = BceWithLogits(logits, labels);
  const float eps = 1e-3f;
  for (size_t i = 0; i < 3; ++i) {
    Tensor lp = logits;
    Tensor lm = logits;
    lp(i, 0) += eps;
    lm(i, 0) -= eps;
    const double numeric =
        (BceLossOnly(lp, labels) - BceLossOnly(lm, labels)) / (2 * eps);
    EXPECT_NEAR(r.grad_logits(i, 0), numeric, 1e-4);
  }
}

TEST(LossTest, NumericallyStableForExtremeLogits) {
  Tensor logits(2, 1, {500, -500});
  const std::vector<float> labels = {0, 1};
  BceResult r = BceWithLogits(logits, labels);
  EXPECT_TRUE(std::isfinite(r.mean_loss));
  EXPECT_NEAR(r.mean_loss, 500.0, 1e-6);
}

TEST(LossTest, LossOnlyAgreesWithFull) {
  Tensor logits(3, 1, {0.5f, -0.25f, 1.0f});
  std::vector<float> labels = {0, 1, 1};
  EXPECT_NEAR(BceLossOnly(logits, labels),
              BceWithLogits(logits, labels).mean_loss, 1e-12);
}

TEST(LossTest, EmptyBatch) {
  Tensor logits(0, 1);
  const std::vector<float> labels;
  BceResult r = BceWithLogits(logits, labels);
  EXPECT_EQ(r.mean_loss, 0.0);
  EXPECT_EQ(r.correct, 0u);
}

}  // namespace
}  // namespace fae
