#include "tensor/attention.h"

#include <gtest/gtest.h>

namespace fae {
namespace {

TEST(AttentionTest, WeightsSumToOne) {
  Xoshiro256 rng(1);
  std::vector<Tensor> history = {Tensor::Randn(5, 4, 1.0f, rng),
                                 Tensor::Randn(3, 4, 1.0f, rng)};
  Tensor query = Tensor::Randn(2, 4, 1.0f, rng);
  DotAttention attn;
  Tensor ctx = attn.Forward(history, query);
  EXPECT_EQ(ctx.rows(), 2u);
  EXPECT_EQ(ctx.cols(), 4u);
  for (const auto& w : attn.last_weights()) {
    double sum = 0;
    for (float v : w) {
      EXPECT_GE(v, 0.0f);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(AttentionTest, SingleElementHistoryReturnsThatElement) {
  Xoshiro256 rng(2);
  Tensor z = Tensor::Randn(1, 4, 1.0f, rng);
  Tensor query = Tensor::Randn(1, 4, 1.0f, rng);
  DotAttention attn;
  Tensor ctx = attn.Forward({z}, query);
  EXPECT_LT(MaxAbsDiff(ctx, z), 1e-6f);
}

TEST(AttentionTest, AttendsToMostSimilarItem) {
  // Query aligned with history item 1; with a strong scale the context
  // should be close to that item.
  const size_t d = 4;
  Tensor z(2, d);
  for (size_t k = 0; k < d; ++k) {
    z(0, k) = -5.0f;
    z(1, k) = 5.0f;
  }
  Tensor query(1, d);
  for (size_t k = 0; k < d; ++k) query(0, k) = 5.0f;
  DotAttention attn;
  Tensor ctx = attn.Forward({z}, query);
  for (size_t k = 0; k < d; ++k) EXPECT_NEAR(ctx(0, k), 5.0f, 1e-3f);
}

TEST(AttentionTest, GradientCheck) {
  Xoshiro256 rng(3);
  std::vector<Tensor> history = {Tensor::Randn(3, 4, 0.8f, rng),
                                 Tensor::Randn(2, 4, 0.8f, rng)};
  Tensor query = Tensor::Randn(2, 4, 0.8f, rng);
  Tensor grad_ctx = Tensor::Randn(2, 4, 1.0f, rng);

  auto loss = [&]() {
    DotAttention a;
    Tensor ctx = a.Forward(history, query);
    double l = 0;
    for (size_t i = 0; i < ctx.numel(); ++i) {
      l += ctx.data()[i] * grad_ctx.data()[i];
    }
    return l;
  };

  DotAttention attn;
  attn.Forward(history, query);
  DotAttention::BackwardResult back = attn.Backward(grad_ctx);

  const float eps = 1e-3f;
  for (size_t s = 0; s < history.size(); ++s) {
    for (size_t i = 0; i < history[s].numel(); ++i) {
      const float orig = history[s].data()[i];
      history[s].data()[i] = orig + eps;
      const double lp = loss();
      history[s].data()[i] = orig - eps;
      const double lm = loss();
      history[s].data()[i] = orig;
      EXPECT_NEAR(back.grad_history[s].data()[i], (lp - lm) / (2 * eps),
                  2e-2)
          << "sample " << s << " elem " << i;
    }
  }
  for (size_t i = 0; i < query.numel(); ++i) {
    const float orig = query.data()[i];
    query.data()[i] = orig + eps;
    const double lp = loss();
    query.data()[i] = orig - eps;
    const double lm = loss();
    query.data()[i] = orig;
    EXPECT_NEAR(back.grad_query.data()[i], (lp - lm) / (2 * eps), 2e-2);
  }
}

TEST(AttentionDeathTest, MismatchedBatchAborts) {
  Xoshiro256 rng(4);
  std::vector<Tensor> history = {Tensor::Randn(2, 4, 1.0f, rng)};
  Tensor query = Tensor::Randn(3, 4, 1.0f, rng);
  DotAttention attn;
  EXPECT_DEATH(attn.Forward(history, query), "Check failed");
}

}  // namespace
}  // namespace fae
