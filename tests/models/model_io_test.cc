#include "models/model_io.h"

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "data/minibatch.h"
#include "data/synthetic.h"
#include "models/factory.h"
#include "util/file_io.h"

namespace fae {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

struct Fixture {
  Fixture()
      : schema(MakeKaggleLikeSchema(DatasetScale::kTiny)),
        dataset(SyntheticGenerator(schema, {.seed = 23}).Generate(64)) {}

  MiniBatch Batch() const {
    std::vector<uint64_t> ids(16);
    for (size_t i = 0; i < ids.size(); ++i) ids[i] = i;
    return AssembleBatch(dataset, ids);
  }

  DatasetSchema schema;
  Dataset dataset;
};

TEST(ModelIoTest, RoundTripReproducesLogitsExactly) {
  Fixture f;
  auto original = MakeModel(f.schema, false, 5);
  // Perturb from initialization with one training step so the checkpoint
  // carries non-trivial state.
  original->ForwardBackward(f.Batch());
  const std::string path = TempPath("fae_ckpt.faem");
  ASSERT_TRUE(ModelIo::Save(path, *original).ok());

  auto restored = MakeModel(f.schema, false, 999);  // different init seed
  ASSERT_TRUE(ModelIo::Load(path, *restored).ok());
  MiniBatch batch = f.Batch();
  EXPECT_EQ(MaxAbsDiff(original->EvalLogits(batch),
                       restored->EvalLogits(batch)),
            0.0f);
  (void)RemoveFile(path);
}

TEST(ModelIoTest, RoundTripTbsm) {
  DatasetSchema schema = MakeTaobaoLikeSchema(DatasetScale::kTiny);
  Dataset d = SyntheticGenerator(schema, {.seed = 29}).Generate(64);
  auto original = MakeModel(schema, false, 5);
  const std::string path = TempPath("fae_ckpt_tbsm.faem");
  ASSERT_TRUE(ModelIo::Save(path, *original).ok());
  auto restored = MakeModel(schema, false, 999);
  ASSERT_TRUE(ModelIo::Load(path, *restored).ok());
  std::vector<uint64_t> ids = {0, 1, 2, 3};
  MiniBatch batch = AssembleBatch(d, ids);
  EXPECT_EQ(MaxAbsDiff(original->EvalLogits(batch),
                       restored->EvalLogits(batch)),
            0.0f);
  (void)RemoveFile(path);
}

TEST(ModelIoTest, RejectsArchitectureMismatch) {
  Fixture f;
  auto dlrm = MakeModel(f.schema, false, 5);
  const std::string path = TempPath("fae_ckpt_mismatch.faem");
  ASSERT_TRUE(ModelIo::Save(path, *dlrm).ok());

  // A full-size model has different layer shapes.
  auto other = MakeModel(f.schema, /*full_size=*/true, 5);
  const Status status = ModelIo::Load(path, *other);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  (void)RemoveFile(path);
}

TEST(ModelIoTest, RejectsGarbageAndTruncation) {
  Fixture f;
  auto model = MakeModel(f.schema, false, 5);
  const std::string garbage = TempPath("fae_ckpt_garbage.faem");
  {
    std::ofstream out(garbage, std::ios::binary);
    out << "not a checkpoint";
  }
  EXPECT_EQ(ModelIo::Load(garbage, *model).code(), StatusCode::kDataLoss);
  (void)RemoveFile(garbage);

  const std::string truncated = TempPath("fae_ckpt_trunc.faem");
  ASSERT_TRUE(ModelIo::Save(truncated, *model).ok());
  std::filesystem::resize_file(truncated,
                               std::filesystem::file_size(truncated) - 5);
  EXPECT_EQ(ModelIo::Load(truncated, *model).code(), StatusCode::kDataLoss);
  (void)RemoveFile(truncated);
}

TEST(ModelIoTest, SingleBitFlipsAnywhereAreRejected) {
  // Fuzz-style corruption sweep: whatever byte a crash or bad disk flips,
  // Load must report DataLoss (the whole-file CRC front-runs all parsing)
  // and never touch the destination model.
  Fixture f;
  auto model = MakeModel(f.schema, false, 5);
  const std::string path = TempPath("fae_ckpt_bitflip.faem");
  ASSERT_TRUE(ModelIo::Save(path, *model).ok());
  const auto size = std::filesystem::file_size(path);
  ASSERT_GT(size, 16u);

  auto victim = MakeModel(f.schema, false, 999);
  for (const double frac : {0.0, 0.1, 0.33, 0.5, 0.77, 0.999}) {
    const auto offset = static_cast<std::streamoff>(
        frac * static_cast<double>(size - 1));
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    char byte = 0;
    file.seekg(offset);
    file.read(&byte, 1);
    const char flipped = static_cast<char>(byte ^ 0x40);
    file.seekp(offset);
    file.write(&flipped, 1);
    file.close();

    const Status status = ModelIo::Load(path, *victim);
    ASSERT_FALSE(status.ok()) << "byte " << offset << " of " << size;
    EXPECT_EQ(status.code(), StatusCode::kDataLoss) << status.ToString();

    // Restore the byte so each iteration tests exactly one flip.
    std::fstream undo(path, std::ios::in | std::ios::out | std::ios::binary);
    undo.seekp(offset);
    undo.write(&byte, 1);
  }
  ASSERT_TRUE(ModelIo::Load(path, *victim).ok());  // pristine again
  (void)RemoveFile(path);
}

TEST(ModelIoTest, MissingFileIsNotFound) {
  Fixture f;
  auto model = MakeModel(f.schema, false, 5);
  EXPECT_EQ(ModelIo::Load(TempPath("fae_ckpt_missing.faem"), *model).code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace fae
