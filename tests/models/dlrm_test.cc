#include "models/dlrm.h"

#include <gtest/gtest.h>

#include "data/minibatch.h"
#include "data/synthetic.h"
#include "models/factory.h"
#include "tensor/loss.h"
#include "tensor/sgd.h"
#include "embedding/sparse_sgd.h"

namespace fae {
namespace {

struct Fixture {
  Fixture()
      : schema(MakeKaggleLikeSchema(DatasetScale::kTiny)),
        config(MakeDlrmConfig(schema, /*full_size=*/false)),
        model(schema, config, /*seed=*/42),
        dataset(SyntheticGenerator(schema, {.seed = 7}).Generate(256)) {}

  DatasetSchema schema;
  ModelConfig config;
  Dlrm model;
  Dataset dataset;
};

std::vector<uint64_t> Iota(size_t n, uint64_t start = 0) {
  std::vector<uint64_t> ids(n);
  for (size_t i = 0; i < n; ++i) ids[i] = start + i;
  return ids;
}

TEST(DlrmTest, ConfigWidthsLineUp) {
  DatasetSchema schema = MakeKaggleLikeSchema(DatasetScale::kTiny);
  ModelConfig full = MakeDlrmConfig(schema, true);
  EXPECT_EQ(full.bottom_mlp.front(), 13u);
  EXPECT_EQ(full.bottom_mlp.back(), 16u);
  EXPECT_EQ(full.top_mlp.front(), DlrmTopInputWidth(schema));
  // 27 features -> 351 pairs + 16 = 367 (paper's RMC2 interaction width).
  EXPECT_EQ(DlrmTopInputWidth(schema), 27u * 26 / 2 + 16);
}

TEST(DlrmTest, EvalLogitsShape) {
  Fixture f;
  MiniBatch batch = AssembleBatch(f.dataset, Iota(8));
  Tensor logits = f.model.EvalLogits(batch);
  EXPECT_EQ(logits.rows(), 8u);
  EXPECT_EQ(logits.cols(), 1u);
}

TEST(DlrmTest, ForwardBackwardReturnsPerTableGrads) {
  Fixture f;
  MiniBatch batch = AssembleBatch(f.dataset, Iota(4));
  StepResult step = f.model.ForwardBackward(batch);
  EXPECT_EQ(step.batch_size, 4u);
  ASSERT_EQ(step.table_grads.size(), f.schema.num_tables());
  for (size_t t = 0; t < f.schema.num_tables(); ++t) {
    EXPECT_GE(step.table_grads[t].num_rows(), 1u);
    EXPECT_LE(step.table_grads[t].num_rows(), 4u);
    EXPECT_EQ(step.table_grads[t].dim, f.schema.embedding_dim);
  }
}

TEST(DlrmTest, DenseGradsAccumulate) {
  Fixture f;
  MiniBatch batch = AssembleBatch(f.dataset, Iota(4));
  for (Parameter* p : f.model.DenseParams()) {
    EXPECT_EQ(p->grad.Norm(), 0.0);
  }
  f.model.ForwardBackward(batch);
  double total = 0;
  for (Parameter* p : f.model.DenseParams()) total += p->grad.Norm();
  EXPECT_GT(total, 0.0);
}

TEST(DlrmTest, EmbeddingGradientMatchesNumerical) {
  Fixture f;
  MiniBatch batch = AssembleBatch(f.dataset, Iota(2));
  StepResult step = f.model.ForwardBackward(batch);
  Sgd zero(0.0f);
  zero.ZeroGrad(f.model.DenseParams());

  auto loss = [&]() {
    Tensor logits = f.model.EvalLogits(batch);
    return BceLossOnly(logits, batch.labels);
  };

  // Check a handful of touched rows in the largest table.
  const size_t t = 0;
  size_t checked = 0;
  const float eps = 1e-2f;
  for (size_t s = 0; s < step.table_grads[t].num_rows(); ++s) {
    const uint64_t row = step.table_grads[t].row_id(s);
    for (size_t k = 0; k < 3; ++k) {
      float* cell = f.model.tables()[t].row(row) + k;
      const float orig = *cell;
      *cell = orig + eps;
      const double lp = loss();
      *cell = orig - eps;
      const double lm = loss();
      *cell = orig;
      EXPECT_NEAR(step.table_grads[t].row(s)[k], (lp - lm) / (2 * eps),
                  5e-2);
    }
    if (++checked >= 2) break;
  }
}

TEST(DlrmTest, TrainingReducesLoss) {
  Fixture f;
  Sgd dense(0.1f);
  SparseSgd sparse(0.1f);
  std::vector<EmbeddingTable*> tables;
  for (auto& t : f.model.tables()) tables.push_back(&t);

  double first_loss = 0;
  double last_loss = 0;
  const size_t batch_size = 32;
  for (int epoch = 0; epoch < 30; ++epoch) {
    double epoch_loss = 0;
    size_t batches = 0;
    for (size_t begin = 0; begin + batch_size <= f.dataset.size();
         begin += batch_size) {
      MiniBatch batch = AssembleBatch(f.dataset, Iota(batch_size, begin));
      StepResult step = f.model.ForwardBackward(batch);
      dense.Step(f.model.DenseParams());
      for (size_t t = 0; t < tables.size(); ++t) {
        sparse.Step(*tables[t], step.table_grads[t]);
      }
      epoch_loss += step.loss;
      ++batches;
    }
    epoch_loss /= batches;
    if (epoch == 0) first_loss = epoch_loss;
    last_loss = epoch_loss;
  }
  EXPECT_LT(last_loss, first_loss * 0.9);
}

TEST(DlrmTest, ForwardBackwardOnAlternativeTablesMatches) {
  // Running against a bitwise copy of the tables must give identical
  // results — the property the FAE replica path relies on.
  Fixture f;
  MiniBatch batch = AssembleBatch(f.dataset, Iota(4));
  std::vector<EmbeddingTable> copies = f.model.tables();
  std::vector<EmbeddingTable*> copy_ptrs;
  for (auto& t : copies) copy_ptrs.push_back(&t);

  StepResult on_copy = f.model.ForwardBackwardOn(batch, copy_ptrs);
  Sgd zero(0.0f);
  zero.ZeroGrad(f.model.DenseParams());
  StepResult on_master = f.model.ForwardBackward(batch);
  EXPECT_DOUBLE_EQ(on_copy.loss, on_master.loss);
  EXPECT_EQ(on_copy.correct, on_master.correct);
}

TEST(DlrmTest, WorkCountsAreConsistent) {
  Fixture f;
  MiniBatch batch = AssembleBatch(f.dataset, Iota(16));
  BatchWork w = f.model.Work(batch);
  EXPECT_EQ(w.embedding_read_bytes,
            batch.TotalLookups() * f.schema.embedding_dim * 4);
  EXPECT_EQ(w.per_table_lookups.size(), f.schema.num_tables());
  EXPECT_GT(w.forward_flops, 0u);
  EXPECT_GT(w.dense_param_count, 0u);
  EXPECT_LE(w.touched_rows, batch.TotalLookups());
  EXPECT_EQ(w.touched_bytes, w.touched_rows * f.schema.embedding_dim * 4);
  uint64_t per_table_sum = 0;
  for (uint64_t v : w.per_table_touched) per_table_sum += v;
  EXPECT_EQ(per_table_sum, w.touched_rows);
}

TEST(DlrmTest, FactoryBuildsDlrmForNonSequential) {
  DatasetSchema schema = MakeKaggleLikeSchema(DatasetScale::kTiny);
  auto model = MakeModel(schema, /*full_size=*/false, 1);
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(model->tables().size(), schema.num_tables());
  EXPECT_EQ(model->embedding_dim(), schema.embedding_dim);
}

}  // namespace
}  // namespace fae
