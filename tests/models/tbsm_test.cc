#include "models/tbsm.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "data/minibatch.h"
#include "data/synthetic.h"
#include "models/factory.h"
#include "tensor/loss.h"
#include "tensor/sgd.h"
#include "embedding/sparse_sgd.h"

namespace fae {
namespace {

struct Fixture {
  Fixture()
      : schema(MakeTaobaoLikeSchema(DatasetScale::kTiny)),
        config(MakeTbsmConfig(schema, /*full_size=*/false)),
        model(schema, config, /*seed=*/42),
        dataset(SyntheticGenerator(schema, {.seed = 7}).Generate(256)) {}

  DatasetSchema schema;
  ModelConfig config;
  Tbsm model;
  Dataset dataset;
};

std::vector<uint64_t> Iota(size_t n, uint64_t start = 0) {
  std::vector<uint64_t> ids(n);
  for (size_t i = 0; i < n; ++i) ids[i] = start + i;
  return ids;
}

TEST(TbsmTest, EvalLogitsShape) {
  Fixture f;
  MiniBatch batch = AssembleBatch(f.dataset, Iota(8));
  Tensor logits = f.model.EvalLogits(batch);
  EXPECT_EQ(logits.rows(), 8u);
  EXPECT_EQ(logits.cols(), 1u);
}

TEST(TbsmTest, EvalIsDeterministicAndMatchesTraining) {
  Fixture f;
  MiniBatch batch = AssembleBatch(f.dataset, Iota(4));
  Tensor a = f.model.EvalLogits(batch);
  StepResult step = f.model.ForwardBackward(batch);
  Tensor b = f.model.EvalLogits(batch);
  // No optimizer ran, so logits must be unchanged by the backward pass.
  EXPECT_LT(MaxAbsDiff(a, b), 1e-6f);
  EXPECT_NEAR(step.loss, BceLossOnly(a, batch.labels), 1e-6);
  Sgd zero(0.0f);
  zero.ZeroGrad(f.model.DenseParams());
}

TEST(TbsmTest, ItemTableGetsHistoryAndTargetGrads) {
  Fixture f;
  MiniBatch batch = AssembleBatch(f.dataset, Iota(8));
  StepResult step = f.model.ForwardBackward(batch);
  ASSERT_EQ(step.table_grads.size(), 3u);
  // The item table accumulates gradients from histories and targets; there
  // must be at least one row per sample's target.
  EXPECT_GE(step.table_grads[0].num_rows(), 1u);
  EXPECT_EQ(step.table_grads[0].dim, f.schema.embedding_dim);
}

TEST(TbsmTest, EmbeddingGradientMatchesNumerical) {
  Fixture f;
  MiniBatch batch = AssembleBatch(f.dataset, Iota(3));
  StepResult step = f.model.ForwardBackward(batch);
  Sgd zero(0.0f);
  zero.ZeroGrad(f.model.DenseParams());

  auto loss = [&]() {
    Tensor logits = f.model.EvalLogits(batch);
    return BceLossOnly(logits, batch.labels);
  };

  const float eps = 1e-2f;
  for (size_t t = 0; t < 3; ++t) {
    const SparseGrad& grad = step.table_grads[t];
    const size_t checked = std::min<size_t>(2, grad.num_rows());
    for (size_t s = 0; s < checked; ++s) {
      const uint64_t row = grad.row_id(s);
      for (size_t k = 0; k < 2; ++k) {
        float* cell = f.model.tables()[t].row(row) + k;
        const float orig = *cell;
        *cell = orig + eps;
        const double lp = loss();
        *cell = orig - eps;
        const double lm = loss();
        *cell = orig;
        EXPECT_NEAR(grad.row(s)[k], (lp - lm) / (2 * eps), 5e-2)
            << "table " << t << " row " << row;
      }
    }
  }
}

TEST(TbsmTest, TrainingReducesLoss) {
  Fixture f;
  Sgd dense(0.05f);
  SparseSgd sparse(0.05f);
  std::vector<EmbeddingTable*> tables;
  for (auto& t : f.model.tables()) tables.push_back(&t);

  double first_loss = 0;
  double last_loss = 0;
  const size_t batch_size = 32;
  for (int epoch = 0; epoch < 30; ++epoch) {
    double epoch_loss = 0;
    size_t batches = 0;
    for (size_t begin = 0; begin + batch_size <= f.dataset.size();
         begin += batch_size) {
      MiniBatch batch = AssembleBatch(f.dataset, Iota(batch_size, begin));
      StepResult step = f.model.ForwardBackward(batch);
      dense.Step(f.model.DenseParams());
      for (size_t t = 0; t < tables.size(); ++t) {
        sparse.Step(*tables[t], step.table_grads[t]);
      }
      epoch_loss += step.loss;
      ++batches;
    }
    epoch_loss /= batches;
    if (epoch == 0) first_loss = epoch_loss;
    last_loss = epoch_loss;
  }
  EXPECT_LT(last_loss, first_loss * 0.95);
}

TEST(TbsmTest, FullSizeModelGradientCheck) {
  // The full Table I configuration routes history embeddings through the
  // deep per-timestep MLP; verify gradients flow through it correctly.
  DatasetSchema schema = MakeTaobaoLikeSchema(DatasetScale::kTiny);
  ModelConfig config = MakeTbsmConfig(schema, /*full_size=*/true);
  ASSERT_GE(config.step_mlp.size(), 3u);
  Tbsm model(schema, config, 42);
  Dataset dataset = SyntheticGenerator(schema, {.seed = 77}).Generate(16);
  MiniBatch batch = AssembleBatch(dataset, {0, 1, 2});

  StepResult step = model.ForwardBackward(batch);
  Sgd zero(0.0f);
  zero.ZeroGrad(model.DenseParams());

  auto loss = [&]() {
    Tensor logits = model.EvalLogits(batch);
    return BceLossOnly(logits, batch.labels);
  };

  const float eps = 1e-2f;
  const SparseGrad& grad = step.table_grads[0];
  const size_t checked = std::min<size_t>(3, grad.num_rows());
  for (size_t s = 0; s < checked; ++s) {
    const uint64_t row = grad.row_id(s);
    for (size_t k = 0; k < 2; ++k) {
      float* cell = model.tables()[0].row(row) + k;
      const float orig = *cell;
      *cell = orig + eps;
      const double lp = loss();
      *cell = orig - eps;
      const double lm = loss();
      *cell = orig;
      EXPECT_NEAR(grad.row(s)[k], (lp - lm) / (2 * eps), 5e-2)
          << "row " << row;
    }
  }
}

TEST(TbsmTest, WorkAccountsSequenceLookups) {
  Fixture f;
  MiniBatch batch = AssembleBatch(f.dataset, Iota(16));
  BatchWork w = f.model.Work(batch);
  EXPECT_EQ(w.embedding_read_bytes,
            batch.TotalLookups() * f.schema.embedding_dim * 4);
  // Sequences make item-table lookups dominate.
  EXPECT_GT(w.per_table_lookups[0], w.per_table_lookups[1]);
}

TEST(TbsmTest, FactoryBuildsTbsmForSequentialSchema) {
  DatasetSchema schema = MakeTaobaoLikeSchema(DatasetScale::kTiny);
  auto model = MakeModel(schema, /*full_size=*/false, 3);
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(model->tables().size(), 3u);
}

TEST(TbsmDeathTest, RejectsNonSequentialSchema) {
  DatasetSchema schema = MakeKaggleLikeSchema(DatasetScale::kTiny);
  ModelConfig config = MakeTbsmConfig(schema, false);
  EXPECT_DEATH(Tbsm(schema, config, 1), "sequential");
}

}  // namespace
}  // namespace fae
