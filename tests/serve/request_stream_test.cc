#include "serve/request_stream.h"

#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace fae {
namespace {

Dataset MakeTinyDataset(size_t n) {
  DatasetSchema schema = MakeKaggleLikeSchema(DatasetScale::kTiny);
  return SyntheticGenerator(schema, {.seed = 5}).Generate(n);
}

TEST(RequestStreamTest, ReplaysInTemporalOrder) {
  Dataset dataset = MakeTinyDataset(10);
  RequestStream stream(&dataset, 4);

  auto b0 = stream.Next();
  ASSERT_EQ(b0.size(), 4u);
  EXPECT_EQ(b0[0], 0u);
  EXPECT_EQ(b0[3], 3u);

  auto b1 = stream.Next();
  EXPECT_EQ(b1[0], 4u);

  // The final batch before the wrap is short — batches never straddle it.
  auto b2 = stream.Next();
  ASSERT_EQ(b2.size(), 2u);
  EXPECT_EQ(b2[0], 8u);
  EXPECT_EQ(b2[1], 9u);

  // Wrap: the drift phase restarts at the beginning.
  auto b3 = stream.Next();
  EXPECT_EQ(b3[0], 0u);

  EXPECT_EQ(stream.served(), 14u);
  EXPECT_EQ(stream.batches(), 4u);
}

TEST(RequestStreamTest, PhaseTracksCursor) {
  Dataset dataset = MakeTinyDataset(10);
  RequestStream stream(&dataset, 5);
  EXPECT_DOUBLE_EQ(stream.phase(), 0.0);
  stream.Next();
  EXPECT_DOUBLE_EQ(stream.phase(), 0.5);
  stream.Next();
  EXPECT_DOUBLE_EQ(stream.phase(), 0.0);  // wrapped
}

TEST(RequestStreamTest, RecentWindowIsOldestFirst) {
  Dataset dataset = MakeTinyDataset(20);
  RequestStream stream(&dataset, 6);
  stream.Next();  // 0..5
  stream.Next();  // 6..11

  const std::vector<uint64_t> window = stream.RecentWindow(4);
  ASSERT_EQ(window.size(), 4u);
  EXPECT_EQ(window.front(), 8u);
  EXPECT_EQ(window.back(), 11u);
}

TEST(RequestStreamTest, RecentWindowCappedByServed) {
  Dataset dataset = MakeTinyDataset(20);
  RequestStream stream(&dataset, 6);
  EXPECT_TRUE(stream.RecentWindow(4).empty());  // nothing served yet
  stream.Next();
  const std::vector<uint64_t> window = stream.RecentWindow(100);
  ASSERT_EQ(window.size(), 6u);  // only 6 requests exist so far
  EXPECT_EQ(window.front(), 0u);
  EXPECT_EQ(window.back(), 5u);
}

TEST(RequestStreamTest, RecentWindowWrapsAcrossTheEnd) {
  Dataset dataset = MakeTinyDataset(10);
  RequestStream stream(&dataset, 4);
  stream.Next();  // 0..3
  stream.Next();  // 4..7
  stream.Next();  // 8..9, wraps cursor to 0
  stream.Next();  // 0..3 again

  const std::vector<uint64_t> window = stream.RecentWindow(6);
  const std::vector<uint64_t> expected = {8, 9, 0, 1, 2, 3};
  EXPECT_EQ(window, expected);
}

TEST(RequestStreamTest, RecentWindowCappedAtOneDatasetLength) {
  Dataset dataset = MakeTinyDataset(8);
  RequestStream stream(&dataset, 8);
  stream.Next();
  stream.Next();  // full second pass
  const std::vector<uint64_t> window = stream.RecentWindow(100);
  std::vector<uint64_t> expected(8);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(window, expected);
}

TEST(RequestStreamTest, DeterministicAcrossInstances) {
  Dataset dataset = MakeTinyDataset(30);
  RequestStream a(&dataset, 7);
  RequestStream b(&dataset, 7);
  for (int i = 0; i < 12; ++i) {
    auto ba = a.Next();
    auto bb = b.Next();
    ASSERT_EQ(std::vector<uint64_t>(ba.begin(), ba.end()),
              std::vector<uint64_t>(bb.begin(), bb.end()));
  }
  EXPECT_EQ(a.RecentWindow(9), b.RecentWindow(9));
}

}  // namespace
}  // namespace fae
