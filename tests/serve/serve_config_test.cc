#include "serve/serve_config.h"

#include <gtest/gtest.h>

#include "util/status.h"

namespace fae {
namespace {

TEST(ServeConfigTest, DefaultsValidate) {
  EXPECT_TRUE(ServeOptions().Validate().ok());
}

TEST(ServeConfigTest, SerializeParseRoundTrips) {
  ServeOptions opts;
  opts.batch_size = 96;
  opts.num_batches = 7;
  opts.slo_hit_rate = 0.83;
  opts.ema_alpha = 0.125;
  opts.recal_window = 1234;
  opts.recal_cooldown = 9;
  opts.watchdog_deadline_seconds = 0.375;
  opts.max_recal_retries = 5;
  opts.retry_backoff_seconds = 0.015625;
  opts.continuous_training = false;
  opts.dense_lr = 0.25f;
  opts.sparse_lr = 0.5f;
  opts.num_threads = 3;
  opts.seed = 99;

  auto parsed = ServeOptions::Parse(opts.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->batch_size, opts.batch_size);
  EXPECT_EQ(parsed->num_batches, opts.num_batches);
  EXPECT_EQ(parsed->slo_hit_rate, opts.slo_hit_rate);
  EXPECT_EQ(parsed->ema_alpha, opts.ema_alpha);
  EXPECT_EQ(parsed->recal_window, opts.recal_window);
  EXPECT_EQ(parsed->recal_cooldown, opts.recal_cooldown);
  EXPECT_EQ(parsed->watchdog_deadline_seconds,
            opts.watchdog_deadline_seconds);
  EXPECT_EQ(parsed->max_recal_retries, opts.max_recal_retries);
  EXPECT_EQ(parsed->retry_backoff_seconds, opts.retry_backoff_seconds);
  EXPECT_EQ(parsed->continuous_training, opts.continuous_training);
  EXPECT_EQ(parsed->dense_lr, opts.dense_lr);
  EXPECT_EQ(parsed->sparse_lr, opts.sparse_lr);
  EXPECT_EQ(parsed->num_threads, opts.num_threads);
  EXPECT_EQ(parsed->seed, opts.seed);
  // Second generation is byte-stable (doubles print at full precision).
  EXPECT_EQ(parsed->Serialize(), opts.Serialize());
}

TEST(ServeConfigTest, RuntimeWiringStaysOutOfSerializedForm) {
  ServeOptions opts;
  opts.swap_path = "/tmp/somewhere.faef";
  const std::string text = opts.Serialize();
  EXPECT_EQ(text.find("swap_path"), std::string::npos);
  EXPECT_EQ(text.find("fault_injector"), std::string::npos);
}

TEST(ServeConfigTest, ParseRejectsMissingHeader) {
  auto parsed = ServeOptions::Parse("batch_size=1\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
}

TEST(ServeConfigTest, ParseRejectsWrongHeaderVersion) {
  EXPECT_FALSE(ServeOptions::Parse("FAESERVE v2\n").ok());
}

TEST(ServeConfigTest, ParseRejectsUnknownKey) {
  auto parsed = ServeOptions::Parse("FAESERVE v1\nbogus_key=3\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().ToString().find("bogus_key"), std::string::npos);
}

TEST(ServeConfigTest, ParseRejectsDuplicateKey) {
  EXPECT_FALSE(
      ServeOptions::Parse("FAESERVE v1\nbatch_size=2\nbatch_size=3\n").ok());
}

TEST(ServeConfigTest, ParseRejectsNonNumericValues) {
  EXPECT_FALSE(ServeOptions::Parse("FAESERVE v1\nbatch_size=abc\n").ok());
  EXPECT_FALSE(ServeOptions::Parse("FAESERVE v1\nbatch_size=-3\n").ok());
  EXPECT_FALSE(ServeOptions::Parse("FAESERVE v1\nbatch_size=\n").ok());
  EXPECT_FALSE(ServeOptions::Parse("FAESERVE v1\nslo_hit_rate=0.5x\n").ok());
  EXPECT_FALSE(ServeOptions::Parse("FAESERVE v1\ncontinuous_training=maybe\n")
                   .ok());
}

TEST(ServeConfigTest, ParseRejectsIntegerOverflow) {
  EXPECT_FALSE(
      ServeOptions::Parse("FAESERVE v1\nbatch_size=99999999999999999999999\n")
          .ok());
}

TEST(ServeConfigTest, ParseRejectsLinesWithoutEquals) {
  EXPECT_FALSE(ServeOptions::Parse("FAESERVE v1\nbatch_size\n").ok());
}

TEST(ServeConfigTest, ParseAppliesValidate) {
  // Well-formed text whose values fail range checks is still rejected.
  EXPECT_FALSE(ServeOptions::Parse("FAESERVE v1\nbatch_size=0\n").ok());
  EXPECT_FALSE(ServeOptions::Parse("FAESERVE v1\nslo_hit_rate=1.5\n").ok());
  EXPECT_FALSE(ServeOptions::Parse("FAESERVE v1\nema_alpha=0\n").ok());
  EXPECT_FALSE(
      ServeOptions::Parse("FAESERVE v1\nwatchdog_deadline_seconds=-1\n").ok());
  EXPECT_FALSE(ServeOptions::Parse("FAESERVE v1\nmax_recal_retries=0\n").ok());
  EXPECT_FALSE(ServeOptions::Parse("FAESERVE v1\ndense_lr=0\n").ok());
  EXPECT_FALSE(ServeOptions::Parse("FAESERVE v1\nnum_threads=0\n").ok());
}

TEST(ServeConfigTest, ValidateNamesTheBadField) {
  ServeOptions opts;
  opts.recal_cooldown = 0;
  const Status status = opts.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("recal_cooldown"), std::string::npos);
}

TEST(ServeConfigTest, ParseToleratesBlankLines) {
  auto parsed = ServeOptions::Parse("FAESERVE v1\n\nbatch_size=8\n\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->batch_size, 8u);
}

}  // namespace
}  // namespace fae
