// Behavioral suite for the online serving loop: healthy serving, drift
// detection + recalibration + hot-swap, the watchdog, and every injected
// serving fault's degrade/recover path. All time is the cost model's, so
// every expectation here is exact run to run.

#include "serve/serving_loop.h"

#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/fae_pipeline.h"
#include "data/synthetic.h"
#include "models/factory.h"
#include "sim/fault_injector.h"
#include "util/file_io.h"

namespace fae {
namespace {

std::string TempSwapPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

Dataset MakeTraffic(size_t n, double drift) {
  DatasetSchema schema = MakeKaggleLikeSchema(DatasetScale::kTiny);
  SyntheticOptions opt;
  opt.seed = 11;
  opt.popularity_drift = drift;
  return SyntheticGenerator(schema, opt).Generate(n);
}

FaeConfig MakeConfig() {
  FaeConfig cfg;
  cfg.sample_rate = 0.25;
  cfg.large_table_bytes = 1ULL << 12;
  // Selective hot set: drift must be able to evict coverage (see
  // bench/ext_serving.cc).
  cfg.gpu_memory_budget = 128ULL << 10;
  return cfg;
}

// The deployment shape: calibrate on the head of the log, then serve the
// whole stream (under drift, the tail has moved on).
FaePlan MakeHeadPlan(const Dataset& dataset) {
  std::vector<uint64_t> head(dataset.size() / 4);
  for (size_t i = 0; i < head.size(); ++i) head[i] = i;
  auto plan = FaePipeline(MakeConfig()).Prepare(dataset, head);
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  return std::move(plan).value();
}

const Dataset& SteadyDataset() {
  static const Dataset* d = new Dataset(MakeTraffic(6000, 0.0));
  return *d;
}
const Dataset& DriftDataset() {
  static const Dataset* d = new Dataset(MakeTraffic(6000, 0.6));
  return *d;
}
const FaePlan& SteadyPlan() {
  static const FaePlan* p = new FaePlan(MakeHeadPlan(SteadyDataset()));
  return *p;
}
const FaePlan& DriftPlan() {
  static const FaePlan* p = new FaePlan(MakeHeadPlan(DriftDataset()));
  return *p;
}

ServeOptions BaseOptions() {
  ServeOptions opt;
  opt.batch_size = 64;
  opt.slo_hit_rate = 0.5;  // far below coverage: recal stays off by default
  opt.ema_alpha = 0.3;
  opt.recal_window = 1024;
  opt.recal_cooldown = 8;
  opt.continuous_training = false;  // serving behavior only; math has its
                                    // own test below
  return opt;
}

ServeReport ServeRun(const Dataset& dataset, const FaePlan& plan,
                const ServeOptions& opts) {
  auto model = MakeModel(dataset.schema(), /*full_size=*/false, /*seed=*/7);
  ServingLoop loop(model.get(), MakePaperServer(2), MakeConfig(), opts);
  auto report = loop.Serve(dataset, plan);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return std::move(report).value();
}

// Every lookup is answered exactly once, whatever the serving health.
void ExpectNoOutage(const ServeReport& r) {
  EXPECT_EQ(r.hot_hits + r.stale_hits + r.master_fallbacks + r.misses,
            r.lookups);
  EXPECT_GT(r.lookups, 0u);
}

TEST(ServingLoopTest, HealthyServingHitsHotSliceAndAccountsEverything) {
  const ServeReport r = ServeRun(SteadyDataset(), SteadyPlan(), BaseOptions());
  ExpectNoOutage(r);
  EXPECT_EQ(r.requests, SteadyDataset().size());
  EXPECT_EQ(r.batches, (SteadyDataset().size() + 63) / 64);
  EXPECT_GT(r.hit_rate, 0.8);
  EXPECT_EQ(r.stale_hits, 0u);
  EXPECT_EQ(r.master_fallbacks, 0u);
  EXPECT_EQ(r.recal_attempts, 0u);
  EXPECT_EQ(r.swaps, 0u);
  EXPECT_EQ(r.degraded_batches, 0u);
  EXPECT_FALSE(r.degraded_at_exit);
  EXPECT_FALSE(r.interrupted);
  EXPECT_GE(r.p99_latency_ns, r.p50_latency_ns);
  EXPECT_GT(r.modeled_seconds, 0.0);
}

TEST(ServingLoopTest, InvalidOptionsAreRejected) {
  ServeOptions opts = BaseOptions();
  opts.batch_size = 0;
  auto model =
      MakeModel(SteadyDataset().schema(), /*full_size=*/false, /*seed=*/7);
  ServingLoop loop(model.get(), MakePaperServer(2), MakeConfig(), opts);
  auto report = loop.Serve(SteadyDataset(), SteadyPlan());
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

TEST(ServingLoopTest, RecalibrationStaysOffWithoutSwapPath) {
  ServeOptions opts = BaseOptions();
  opts.slo_hit_rate = 0.9;  // drift pulls the EMA below this
  const ServeReport r = ServeRun(DriftDataset(), DriftPlan(), opts);
  EXPECT_EQ(r.recal_attempts, 0u);
  EXPECT_EQ(r.swaps, 0u);
}

TEST(ServingLoopTest, DriftTriggersRecalibrationAndRecoversCoverage) {
  ServeOptions stale = BaseOptions();
  stale.slo_hit_rate = 0.9;
  const ServeReport without = ServeRun(DriftDataset(), DriftPlan(), stale);

  ServeOptions recal = stale;
  recal.swap_path = TempSwapPath("serving_loop_recal.faef");
  const ServeReport with = ServeRun(DriftDataset(), DriftPlan(), recal);
  (void)RemoveFile(recal.swap_path);

  ExpectNoOutage(with);
  EXPECT_GT(with.recal_attempts, 0u);
  EXPECT_GT(with.swaps, 0u);
  EXPECT_EQ(with.swap_rejects, 0u);
  // The swapped-in window set tracks the drifted traffic better than the
  // stale offline plan. The comparison is on the exit-time coverage EMA —
  // the recovered steady state — not the run-average hit rate, which mixes
  // in the pre-detection decay and the window's mid-run lag at this drift
  // rate (bench/ext_serving.cc gates the same way).
  EXPECT_GT(with.coverage_ema, without.coverage_ema);
}

TEST(ServingLoopTest, WatchdogExhaustionDegradesToStaleServing) {
  ServeOptions opts = BaseOptions();
  opts.slo_hit_rate = 0.9;
  opts.swap_path = TempSwapPath("serving_loop_exhaust.faef");
  opts.watchdog_deadline_seconds = 1e-12;  // every pass blows the deadline
  opts.max_recal_retries = 2;
  const ServeReport r = ServeRun(DriftDataset(), DriftPlan(), opts);
  (void)RemoveFile(opts.swap_path);

  ExpectNoOutage(r);
  EXPECT_GT(r.recal_failures, 0u);
  EXPECT_EQ(r.deadline_misses, r.recal_attempts * opts.max_recal_retries);
  EXPECT_EQ(r.swaps, 0u);
  EXPECT_GT(r.degraded_batches, 0u);
  EXPECT_GT(r.stale_hits, 0u);  // honest accounting: degraded hits are stale
  EXPECT_TRUE(r.degraded_at_exit);
  EXPECT_FALSE(r.interrupted);  // never an outage
}

TEST(ServingLoopTest, RecalStallIsAbortedByWatchdogAndRetried) {
  auto injector = FaultInjector::Parse("recal-stall@1:9.0");
  ASSERT_TRUE(injector.ok());
  FaultInjector faults = std::move(injector).value();

  ServeOptions opts = BaseOptions();
  opts.slo_hit_rate = 0.9;
  opts.swap_path = TempSwapPath("serving_loop_stall.faef");
  opts.fault_injector = &faults;
  const ServeReport r = ServeRun(DriftDataset(), DriftPlan(), opts);
  (void)RemoveFile(opts.swap_path);

  ExpectNoOutage(r);
  EXPECT_EQ(r.faults.recal_stalls, 1u);
  EXPECT_GE(r.deadline_misses, 1u);  // the stalled pass missed its deadline
  EXPECT_GT(r.swaps, 0u);            // the retry (stall consumed) succeeded
  EXPECT_FALSE(r.degraded_at_exit);
}

TEST(ServingLoopTest, TornSwapIsRejectedAndLaterSwapRecovers) {
  auto injector = FaultInjector::Parse("swap-crash@0");
  ASSERT_TRUE(injector.ok());
  FaultInjector faults = std::move(injector).value();

  ServeOptions opts = BaseOptions();
  opts.slo_hit_rate = 0.9;
  opts.swap_path = TempSwapPath("serving_loop_torn.faef");
  opts.fault_injector = &faults;
  const ServeReport r = ServeRun(DriftDataset(), DriftPlan(), opts);
  (void)RemoveFile(opts.swap_path);

  ExpectNoOutage(r);
  EXPECT_EQ(r.faults.swap_crashes, 1u);
  EXPECT_EQ(r.swap_rejects, 1u);     // the all-or-nothing load said no
  EXPECT_GT(r.degraded_batches, 0u); // previous set served meanwhile
  EXPECT_GT(r.stale_hits, 0u);
  EXPECT_GT(r.swaps, 0u);            // a later recalibration went through
  EXPECT_GE(r.faults.recoveries, 1u);
  EXPECT_FALSE(r.degraded_at_exit);
}

TEST(ServingLoopTest, LookupLossFallsBackToMasterAndReReplicates) {
  auto injector = FaultInjector::Parse("lookup-loss@3x2");
  ASSERT_TRUE(injector.ok());
  FaultInjector faults = std::move(injector).value();

  ServeOptions opts = BaseOptions();
  opts.fault_injector = &faults;
  const ServeReport healthy = ServeRun(SteadyDataset(), SteadyPlan(), BaseOptions());
  const ServeReport r = ServeRun(SteadyDataset(), SteadyPlan(), opts);

  ExpectNoOutage(r);
  EXPECT_EQ(r.faults.lookup_losses, 1u);
  EXPECT_GT(r.master_fallbacks, 0u);  // hot lookups answered from the CPU
  EXPECT_GE(r.faults.recoveries, 1u); // slice re-replicated afterwards
  EXPECT_EQ(r.stale_hits, 0u);        // fallback is not staleness
  // Master fallback is strictly slower than GPU service: the tail moves.
  EXPECT_GE(r.p99_latency_ns, healthy.p99_latency_ns);
}

TEST(ServingLoopTest, DeviceFaultBeyondRetryCapBecomesLookupLoss) {
  auto injector = FaultInjector::Parse("device@2x7");
  ASSERT_TRUE(injector.ok());
  FaultInjector faults = std::move(injector).value();

  ServeOptions opts = BaseOptions();
  opts.fault_injector = &faults;
  const ServeReport r = ServeRun(SteadyDataset(), SteadyPlan(), opts);

  ExpectNoOutage(r);
  EXPECT_EQ(r.faults.device_faults, 1u);
  EXPECT_EQ(r.faults.retries, 5u);    // serving's bounded retry budget
  EXPECT_GT(r.master_fallbacks, 0u);  // the 2 attempts past the cap
  EXPECT_GE(r.faults.recoveries, 1u);
  EXPECT_FALSE(r.interrupted);        // serving never escalates to failure
}

TEST(ServingLoopTest, CrashReturnsPartialReport) {
  auto injector = FaultInjector::Parse("crash@5");
  ASSERT_TRUE(injector.ok());
  FaultInjector faults = std::move(injector).value();

  ServeOptions opts = BaseOptions();
  opts.fault_injector = &faults;
  const ServeReport r = ServeRun(SteadyDataset(), SteadyPlan(), opts);

  EXPECT_TRUE(r.interrupted);
  EXPECT_EQ(r.batches, 5u);
  EXPECT_EQ(r.faults.crashes, 1u);
  ExpectNoOutage(r);  // everything served before the crash is accounted
}

TEST(ServingLoopTest, ContinuousTrainingStepsEveryBatchEvenWhileDegraded) {
  ServeOptions opts = BaseOptions();
  // With only a few batches the drift hasn't bitten yet; an unreachable SLO
  // makes the (deliberately failing) recalibration fire immediately.
  opts.slo_hit_rate = 0.99;
  opts.swap_path = TempSwapPath("serving_loop_train.faef");
  opts.watchdog_deadline_seconds = 1e-12;  // permanently degraded
  opts.continuous_training = true;
  opts.num_batches = 24;  // keep the math cheap
  const ServeReport r = ServeRun(DriftDataset(), DriftPlan(), opts);
  (void)RemoveFile(opts.swap_path);

  EXPECT_EQ(r.train_steps, r.batches);  // training never paused
  EXPECT_GT(r.degraded_batches, 0u);
  EXPECT_GT(r.train_loss, 0.0);
}

TEST(ServingLoopTest, ReportsAreDeterministic) {
  ServeOptions opts = BaseOptions();
  opts.slo_hit_rate = 0.9;
  opts.swap_path = TempSwapPath("serving_loop_det.faef");
  const ServeReport a = ServeRun(DriftDataset(), DriftPlan(), opts);
  const ServeReport b = ServeRun(DriftDataset(), DriftPlan(), opts);
  (void)RemoveFile(opts.swap_path);

  EXPECT_EQ(a.hot_hits, b.hot_hits);
  EXPECT_EQ(a.stale_hits, b.stale_hits);
  EXPECT_EQ(a.misses, b.misses);
  EXPECT_EQ(a.swaps, b.swaps);
  EXPECT_EQ(a.recal_attempts, b.recal_attempts);
  EXPECT_EQ(a.p50_latency_ns, b.p50_latency_ns);
  EXPECT_EQ(a.p99_latency_ns, b.p99_latency_ns);
  EXPECT_EQ(a.modeled_seconds, b.modeled_seconds);
  EXPECT_EQ(a.coverage_ema, b.coverage_ema);
}

}  // namespace
}  // namespace fae
