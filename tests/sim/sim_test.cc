#include <set>
#include <string_view>

#include <gtest/gtest.h>

#include "sim/cost_model.h"
#include "sim/device.h"
#include "sim/timeline.h"

namespace fae {
namespace {

TEST(DeviceTest, PaperServerMatchesTableII) {
  SystemSpec sys = MakePaperServer(4);
  EXPECT_EQ(sys.num_gpus, 4);
  EXPECT_EQ(sys.gpu.mem_capacity, 16ULL << 30);
  EXPECT_EQ(sys.cpu.mem_capacity, 768ULL << 30);
  EXPECT_EQ(sys.gpu.kind, DeviceSpec::Kind::kGpu);
  EXPECT_EQ(sys.cpu.kind, DeviceSpec::Kind::kCpu);
  EXPECT_EQ(sys.hot_embedding_budget, 256ULL << 20);
}

TEST(DeviceTest, GpuOutclassesCpu) {
  SystemSpec sys = MakePaperServer(1);
  EXPECT_GT(sys.gpu.peak_flops, 10 * sys.cpu.peak_flops);
  EXPECT_GT(sys.gpu.mem_bandwidth, 5 * sys.cpu.mem_bandwidth);
  EXPECT_GT(sys.nvlink.bandwidth, 5 * sys.pcie.bandwidth);
}

TEST(CostModelTest, ComputeTimeScalesWithFlops) {
  CostModel cm(MakePaperServer(1));
  const auto& gpu = cm.system().gpu;
  EXPECT_DOUBLE_EQ(cm.DenseComputeSeconds(2'000'000, gpu),
                   2 * cm.DenseComputeSeconds(1'000'000, gpu));
}

TEST(CostModelTest, CpuSlowerThanGpuForSameWork) {
  CostModel cm(MakePaperServer(1));
  EXPECT_GT(cm.DenseComputeSeconds(1'000'000'000, cm.system().cpu),
            cm.DenseComputeSeconds(1'000'000'000, cm.system().gpu));
  EXPECT_GT(cm.GatherSeconds(1 << 30, cm.system().cpu),
            cm.GatherSeconds(1 << 30, cm.system().gpu));
}

TEST(CostModelTest, GatherSlowerThanStream) {
  CostModel cm(MakePaperServer(1));
  EXPECT_GT(cm.GatherSeconds(1 << 20, cm.system().cpu),
            cm.StreamSeconds(1 << 20, cm.system().cpu));
}

TEST(CostModelTest, PcieTransferIncludesLatency) {
  CostModel cm(MakePaperServer(1));
  EXPECT_DOUBLE_EQ(cm.PcieTransferSeconds(0), 0.0);
  const double small = cm.PcieTransferSeconds(1);
  EXPECT_GE(small, cm.system().pcie.latency);
  const double big = cm.PcieTransferSeconds(1 << 30);
  EXPECT_GT(big, (1 << 30) / cm.system().pcie.bandwidth);
}

TEST(CostModelTest, AllReduceZeroForSingleGpu) {
  CostModel cm(MakePaperServer(1));
  EXPECT_EQ(cm.AllReduceSeconds(1 << 20), 0.0);
}

TEST(CostModelTest, AllReduceGrowsWithGpuCount) {
  CostModel cm2(MakePaperServer(2));
  CostModel cm4(MakePaperServer(4));
  EXPECT_GT(cm4.AllReduceSeconds(64 << 20), cm2.AllReduceSeconds(64 << 20));
}

TEST(CostModelTest, AverageGpuWattsBetweenIdleAndBusy) {
  CostModel cm(MakePaperServer(1));
  const double idle = cm.AverageGpuWatts(10.0, 0.0, 0.0);
  const double busy = cm.AverageGpuWatts(10.0, 10.0, 0.0);
  EXPECT_DOUBLE_EQ(idle, cm.system().gpu.idle_watts);
  EXPECT_DOUBLE_EQ(busy, cm.system().gpu.busy_watts);
  const double half = cm.AverageGpuWatts(10.0, 5.0, 0.0);
  EXPECT_GT(half, idle);
  EXPECT_LT(half, busy);
}

TEST(CostModelTest, CommunicationTimeAddsPower) {
  CostModel cm(MakePaperServer(1));
  EXPECT_GT(cm.AverageGpuWatts(10.0, 5.0, 2.0),
            cm.AverageGpuWatts(10.0, 5.0, 0.0));
}

TEST(TimelineTest, ChargeAccumulates) {
  Timeline tl;
  tl.Charge(Phase::kMlpForward, 1.5);
  tl.Charge(Phase::kMlpForward, 0.5);
  tl.ChargeCpu(Phase::kOptimizerSparse, 2.0);
  tl.ChargeGpu(Phase::kMlpBackward, 3.0);
  EXPECT_DOUBLE_EQ(tl.seconds(Phase::kMlpForward), 2.0);
  EXPECT_DOUBLE_EQ(tl.TotalSeconds(), 7.0);
  EXPECT_DOUBLE_EQ(tl.cpu_busy_seconds(), 2.0);
  EXPECT_DOUBLE_EQ(tl.gpu_busy_seconds(), 3.0);
}

TEST(TimelineTest, MergeSumsEverything) {
  Timeline a;
  Timeline b;
  a.Charge(Phase::kAllReduce, 1.0);
  a.AddPcieBytes(100);
  b.Charge(Phase::kAllReduce, 2.0);
  b.AddNvlinkBytes(50);
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.seconds(Phase::kAllReduce), 3.0);
  EXPECT_EQ(a.pcie_bytes(), 100u);
  EXPECT_EQ(a.nvlink_bytes(), 50u);
}

TEST(TimelineTest, ReportMentionsPhases) {
  Timeline tl;
  tl.Charge(Phase::kEmbeddingSync, 1.0);
  const std::string report = tl.Report();
  EXPECT_NE(report.find("embedding_sync"), std::string::npos);
}

TEST(TimelineTest, PhaseNamesUnique) {
  std::set<std::string_view> names;
  for (int i = 0; i < static_cast<int>(Phase::kNumPhases); ++i) {
    names.insert(PhaseName(static_cast<Phase>(i)));
  }
  EXPECT_EQ(names.size(), static_cast<size_t>(Phase::kNumPhases));
}

}  // namespace
}  // namespace fae
