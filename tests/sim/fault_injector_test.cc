#include "sim/fault_injector.h"

#include <gtest/gtest.h>

namespace fae {
namespace {

TEST(FaultInjectorTest, ParsesFullGrammar) {
  auto inj = FaultInjector::Parse(
      "device@30,stall@50:0.2,corrupt@75,crash@120,device@200x7");
  ASSERT_TRUE(inj.ok()) << inj.status().ToString();
  const std::vector<FaultEvent>& events = inj->events();
  ASSERT_EQ(events.size(), 5u);

  EXPECT_EQ(events[0].kind, FaultKind::kDeviceTransient);
  EXPECT_EQ(events[0].step, 30u);
  EXPECT_EQ(events[0].times, 1u);

  EXPECT_EQ(events[1].kind, FaultKind::kLinkStall);
  EXPECT_EQ(events[1].step, 50u);
  EXPECT_DOUBLE_EQ(events[1].stall_seconds, 0.2);

  EXPECT_EQ(events[2].kind, FaultKind::kCorruptSync);
  EXPECT_EQ(events[2].step, 75u);

  EXPECT_EQ(events[3].kind, FaultKind::kCrash);
  EXPECT_EQ(events[3].step, 120u);

  EXPECT_EQ(events[4].kind, FaultKind::kDeviceTransient);
  EXPECT_EQ(events[4].step, 200u);
  EXPECT_EQ(events[4].times, 7u);
}

TEST(FaultInjectorTest, StallGetsDefaultDuration) {
  auto inj = FaultInjector::Parse("stall@9");
  ASSERT_TRUE(inj.ok());
  ASSERT_EQ(inj->events().size(), 1u);
  EXPECT_GT(inj->events()[0].stall_seconds, 0.0);
}

TEST(FaultInjectorTest, EmptyPlanIsEmpty) {
  auto inj = FaultInjector::Parse("");
  ASSERT_TRUE(inj.ok());
  EXPECT_TRUE(inj->empty());
  EXPECT_TRUE(inj->Drain(0).empty());
}

TEST(FaultInjectorTest, DrainDeliversAtMostOnce) {
  auto inj = FaultInjector::Parse("device@3,corrupt@3,crash@8");
  ASSERT_TRUE(inj.ok());
  EXPECT_TRUE(inj->Drain(2).empty());
  std::vector<FaultEvent> due = inj->Drain(3);
  ASSERT_EQ(due.size(), 2u);
  EXPECT_EQ(due[0].kind, FaultKind::kDeviceTransient);
  EXPECT_EQ(due[1].kind, FaultKind::kCorruptSync);
  EXPECT_TRUE(inj->Drain(3).empty());  // already delivered
  EXPECT_EQ(inj->Drain(8).size(), 1u);
}

TEST(FaultInjectorTest, SkipUntilSuppressesEarlierEvents) {
  auto inj = FaultInjector::Parse("device@3,stall@10:0.1,crash@10");
  ASSERT_TRUE(inj.ok());
  inj->SkipUntil(10);
  EXPECT_TRUE(inj->Drain(3).empty());
  EXPECT_EQ(inj->Drain(10).size(), 2u);  // events at the step still fire
}

TEST(FaultInjectorTest, RejectsMalformedSpecs) {
  for (const char* bad : {
           "device",          // missing @step
           "meteor@5",        // unknown kind
           "device@",         // empty step
           "device@abc",      // non-numeric step
           "device@5x0",      // zero repeat
           "device@5xq",      // non-numeric repeat
           "crash@5x3",       // repeat on a non-device fault
           "device@5:0.2",    // stall duration on a non-stall fault
           "stall@5:-1",      // negative duration
           "stall@5:oops",    // non-numeric duration
       }) {
    auto inj = FaultInjector::Parse(bad);
    ASSERT_FALSE(inj.ok()) << "accepted: " << bad;
    EXPECT_EQ(inj.status().code(), StatusCode::kInvalidArgument) << bad;
  }
}

TEST(FaultInjectorTest, KindNamesAreStable) {
  EXPECT_EQ(FaultKindName(FaultKind::kDeviceTransient), "device");
  EXPECT_EQ(FaultKindName(FaultKind::kLinkStall), "stall");
  EXPECT_EQ(FaultKindName(FaultKind::kCorruptSync), "corrupt");
  EXPECT_EQ(FaultKindName(FaultKind::kCrash), "crash");
}

}  // namespace
}  // namespace fae
