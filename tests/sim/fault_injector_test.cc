#include "sim/fault_injector.h"

#include <gtest/gtest.h>

namespace fae {
namespace {

TEST(FaultInjectorTest, ParsesFullGrammar) {
  auto inj = FaultInjector::Parse(
      "device@30,stall@50:0.2,corrupt@75,crash@120,device@200x7");
  ASSERT_TRUE(inj.ok()) << inj.status().ToString();
  const std::vector<FaultEvent>& events = inj->events();
  ASSERT_EQ(events.size(), 5u);

  EXPECT_EQ(events[0].kind, FaultKind::kDeviceTransient);
  EXPECT_EQ(events[0].step, 30u);
  EXPECT_EQ(events[0].times, 1u);

  EXPECT_EQ(events[1].kind, FaultKind::kLinkStall);
  EXPECT_EQ(events[1].step, 50u);
  EXPECT_DOUBLE_EQ(events[1].stall_seconds, 0.2);

  EXPECT_EQ(events[2].kind, FaultKind::kCorruptSync);
  EXPECT_EQ(events[2].step, 75u);

  EXPECT_EQ(events[3].kind, FaultKind::kCrash);
  EXPECT_EQ(events[3].step, 120u);

  EXPECT_EQ(events[4].kind, FaultKind::kDeviceTransient);
  EXPECT_EQ(events[4].step, 200u);
  EXPECT_EQ(events[4].times, 7u);
}

TEST(FaultInjectorTest, ParsesServingKinds) {
  auto inj = FaultInjector::Parse(
      "recal-stall@40:3.5,swap-crash@60,lookup-loss@80x2,recal-stall@90");
  ASSERT_TRUE(inj.ok()) << inj.status().ToString();
  const std::vector<FaultEvent>& events = inj->events();
  ASSERT_EQ(events.size(), 4u);

  EXPECT_EQ(events[0].kind, FaultKind::kRecalStall);
  EXPECT_EQ(events[0].step, 40u);
  EXPECT_DOUBLE_EQ(events[0].stall_seconds, 3.5);

  EXPECT_EQ(events[1].kind, FaultKind::kSwapCrash);
  EXPECT_EQ(events[1].step, 60u);

  EXPECT_EQ(events[2].kind, FaultKind::kLookupLoss);
  EXPECT_EQ(events[2].step, 80u);
  EXPECT_EQ(events[2].times, 2u);

  // recal-stall without ':seconds' gets a deadline-blowing default.
  EXPECT_EQ(events[3].kind, FaultKind::kRecalStall);
  EXPECT_GT(events[3].stall_seconds, 0.0);
}

TEST(FaultInjectorTest, StallGetsDefaultDuration) {
  auto inj = FaultInjector::Parse("stall@9");
  ASSERT_TRUE(inj.ok());
  ASSERT_EQ(inj->events().size(), 1u);
  EXPECT_GT(inj->events()[0].stall_seconds, 0.0);
}

TEST(FaultInjectorTest, EmptyPlanIsRejected) {
  // An empty plan is an error, not a silent no-op: a caller that wants no
  // faults omits the plan; an empty string usually means a flag-plumbing
  // bug swallowed the schedule.
  auto inj = FaultInjector::Parse("");
  ASSERT_FALSE(inj.ok());
  EXPECT_EQ(inj.status().code(), StatusCode::kInvalidArgument);

  // The default-constructed injector stays the explicit "no faults" spelling.
  FaultInjector none;
  EXPECT_TRUE(none.empty());
  EXPECT_TRUE(none.Drain(0).empty());
}

TEST(FaultInjectorTest, TrailingAndDoubledCommasAreRejected) {
  for (const char* bad : {"device@3,", ",device@3", "device@3,,crash@9"}) {
    auto inj = FaultInjector::Parse(bad);
    ASSERT_FALSE(inj.ok()) << "accepted: " << bad;
    EXPECT_EQ(inj.status().code(), StatusCode::kInvalidArgument) << bad;
  }
}

TEST(FaultInjectorTest, DuplicateKindAndStepIsRejected) {
  auto inj = FaultInjector::Parse("device@3,device@3");
  ASSERT_FALSE(inj.ok());
  EXPECT_EQ(inj.status().code(), StatusCode::kInvalidArgument);
  // Same step with different kinds stays legal (compound failures).
  EXPECT_TRUE(FaultInjector::Parse("device@3,corrupt@3").ok());
  // Same kind at different steps stays legal too.
  EXPECT_TRUE(FaultInjector::Parse("device@3,device@4").ok());
}

TEST(FaultInjectorTest, NumericOverflowIsRejected) {
  for (const char* bad : {
           // step > 2^64-1 must not silently wrap.
           "device@18446744073709551616",
           // repeat count > 2^32-1 must not silently truncate.
           "device@5x4294967296",
           // repeat count > 2^64-1 must not silently wrap either.
           "device@5x18446744073709551616",
       }) {
    auto inj = FaultInjector::Parse(bad);
    ASSERT_FALSE(inj.ok()) << "accepted: " << bad;
    EXPECT_EQ(inj.status().code(), StatusCode::kInvalidArgument) << bad;
  }
  // The extremes of both ranges still parse.
  auto max_ok =
      FaultInjector::Parse("device@18446744073709551615x4294967295");
  ASSERT_TRUE(max_ok.ok()) << max_ok.status().ToString();
  EXPECT_EQ(max_ok->events()[0].step, 18446744073709551615ull);
  EXPECT_EQ(max_ok->events()[0].times, 4294967295u);
}

TEST(FaultInjectorTest, DrainDeliversAtMostOnce) {
  auto inj = FaultInjector::Parse("device@3,corrupt@3,crash@8");
  ASSERT_TRUE(inj.ok());
  EXPECT_TRUE(inj->Drain(2).empty());
  std::vector<FaultEvent> due = inj->Drain(3);
  ASSERT_EQ(due.size(), 2u);
  EXPECT_EQ(due[0].kind, FaultKind::kDeviceTransient);
  EXPECT_EQ(due[1].kind, FaultKind::kCorruptSync);
  EXPECT_TRUE(inj->Drain(3).empty());  // already delivered
  EXPECT_EQ(inj->Drain(8).size(), 1u);
}

TEST(FaultInjectorTest, SkipUntilSuppressesEarlierEvents) {
  auto inj = FaultInjector::Parse("device@3,stall@10:0.1,crash@10");
  ASSERT_TRUE(inj.ok());
  inj->SkipUntil(10);
  EXPECT_TRUE(inj->Drain(3).empty());
  EXPECT_EQ(inj->Drain(10).size(), 2u);  // events at the step still fire
}

TEST(FaultInjectorTest, RejectsMalformedSpecs) {
  for (const char* bad : {
           "device",          // missing @step
           "meteor@5",        // unknown kind
           "recal@5",         // prefix of a known kind is still unknown
           "device@",         // empty step
           "device@abc",      // non-numeric step
           "device@5x0",      // zero repeat
           "device@5xq",      // non-numeric repeat
           "crash@5x3",       // repeat on a non-repeatable fault
           "recal-stall@5x2", // ditto for the serving stall
           "device@5:0.2",    // stall duration on a non-stall fault
           "swap-crash@5:1",  // ditto for the serving crash
           "stall@5:-1",      // negative duration
           "stall@5:oops",    // non-numeric duration
       }) {
    auto inj = FaultInjector::Parse(bad);
    ASSERT_FALSE(inj.ok()) << "accepted: " << bad;
    EXPECT_EQ(inj.status().code(), StatusCode::kInvalidArgument) << bad;
  }
}

TEST(FaultInjectorTest, KindNamesAreStable) {
  EXPECT_EQ(FaultKindName(FaultKind::kDeviceTransient), "device");
  EXPECT_EQ(FaultKindName(FaultKind::kLinkStall), "stall");
  EXPECT_EQ(FaultKindName(FaultKind::kCorruptSync), "corrupt");
  EXPECT_EQ(FaultKindName(FaultKind::kCrash), "crash");
  EXPECT_EQ(FaultKindName(FaultKind::kRecalStall), "recal-stall");
  EXPECT_EQ(FaultKindName(FaultKind::kSwapCrash), "swap-crash");
  EXPECT_EQ(FaultKindName(FaultKind::kLookupLoss), "lookup-loss");
}

}  // namespace
}  // namespace fae
