#include "sim/partition.h"

#include <numeric>

#include <gtest/gtest.h>

#include "data/schema.h"
#include "util/random.h"

namespace fae {
namespace {

TEST(PartitionTest, SingleBinTakesEverything) {
  Partition p = PartitionLpt({5, 3, 9}, 1);
  EXPECT_EQ(p.bin_of, (std::vector<int>{0, 0, 0}));
  EXPECT_EQ(p.bin_weight, (std::vector<uint64_t>{17}));
  EXPECT_DOUBLE_EQ(p.Imbalance(), 1.0);
}

TEST(PartitionTest, CoversEveryItemExactlyOnce) {
  Xoshiro256 rng(3);
  std::vector<uint64_t> weights(40);
  for (auto& w : weights) w = rng.NextBounded(1000) + 1;
  Partition p = PartitionLpt(weights, 4);
  ASSERT_EQ(p.bin_of.size(), weights.size());
  std::vector<uint64_t> recomputed(4, 0);
  for (size_t i = 0; i < weights.size(); ++i) {
    ASSERT_GE(p.bin_of[i], 0);
    ASSERT_LT(p.bin_of[i], 4);
    recomputed[p.bin_of[i]] += weights[i];
  }
  EXPECT_EQ(recomputed, p.bin_weight);
}

TEST(PartitionTest, KnownLptResult) {
  // {7, 6, 5, 4, 3} over 2 bins: LPT places 7|6, 5->bin1 (11), 4->bin0
  // (11), 3->bin0 (tie, lower index) = 14 vs 11. (Optimal is 13/12 — LPT
  // is a heuristic, within its 4/3 guarantee: 14 <= 4/3 * 12.5 + ...)
  Partition p = PartitionLpt({7, 6, 5, 4, 3}, 2);
  EXPECT_EQ(p.MaxWeight(), 14u);
  EXPECT_EQ(p.bin_weight[0] + p.bin_weight[1], 25u);
}

TEST(PartitionTest, EqualItemsBalancePerfectly) {
  Partition p = PartitionLpt(std::vector<uint64_t>(12, 10), 4);
  for (uint64_t w : p.bin_weight) EXPECT_EQ(w, 30u);
  EXPECT_DOUBLE_EQ(p.Imbalance(), 1.0);
}

TEST(PartitionTest, WithinLptGuarantee) {
  // LPT is at most 4/3 - 1/(3m) of the optimal makespan; optimal is at
  // least total/m, so MaxWeight <= (4/3) * max(total/m, largest item).
  Xoshiro256 rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<uint64_t> weights(1 + rng.NextBounded(50));
    for (auto& w : weights) w = rng.NextBounded(5000) + 1;
    const int bins = 1 + static_cast<int>(rng.NextBounded(8));
    Partition p = PartitionLpt(weights, bins);
    const uint64_t total =
        std::accumulate(weights.begin(), weights.end(), uint64_t{0});
    const uint64_t largest = *std::max_element(weights.begin(), weights.end());
    const double lower_bound = std::max<double>(
        static_cast<double>(total) / bins, static_cast<double>(largest));
    EXPECT_LE(static_cast<double>(p.MaxWeight()), 4.0 / 3.0 * lower_bound);
  }
}

TEST(PartitionTest, IsDeterministic) {
  std::vector<uint64_t> weights = {9, 9, 4, 4, 4, 1};
  Partition a = PartitionLpt(weights, 3);
  Partition b = PartitionLpt(weights, 3);
  EXPECT_EQ(a.bin_of, b.bin_of);
}

TEST(PartitionTest, SkewedTablesAreDominatedByTheLargest) {
  // The Kaggle-like log-spread: one table dominates, so the max shard is
  // pinned to it no matter how many devices exist — the reason the paper
  // calls GPU-capacity sharding ineffective.
  DatasetSchema schema = MakeKaggleLikeSchema(DatasetScale::kSmall);
  std::vector<uint64_t> bytes(schema.num_tables());
  for (size_t t = 0; t < schema.num_tables(); ++t) {
    bytes[t] = schema.TableBytes(t);
  }
  Partition p2 = PartitionLpt(bytes, 2);
  Partition p8 = PartitionLpt(bytes, 8);
  EXPECT_EQ(p8.MaxWeight(), bytes[0]);  // largest table alone
  EXPECT_LE(p8.MaxWeight(), p2.MaxWeight());
  EXPECT_GT(p8.Imbalance(), 2.0);  // more devices cannot balance it
}

TEST(PartitionTest, EmptyInput) {
  Partition p = PartitionLpt({}, 3);
  EXPECT_TRUE(p.bin_of.empty());
  EXPECT_EQ(p.MaxWeight(), 0u);
  EXPECT_DOUBLE_EQ(p.Imbalance(), 1.0);
}

TEST(PartitionTest, ImbalanceNeverBelowOneFuzzed) {
  // max/mean >= 1 by construction; a value below 1 would mean the mean
  // was computed over the wrong device count.
  Xoshiro256 rng(41);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint64_t> weights(1 + rng.NextBounded(64));
    for (auto& w : weights) w = rng.NextBounded(10000);
    const int bins = 1 + static_cast<int>(rng.NextBounded(12));
    EXPECT_GE(PartitionLpt(weights, bins).Imbalance(), 1.0);
  }
}

// Exhaustive optimal makespan for small inputs: every assignment of
// `weights` to `bins` enumerated as a base-`bins` counter.
uint64_t BruteForceOptimal(const std::vector<uint64_t>& weights, int bins) {
  const size_t n = weights.size();
  uint64_t best = ~uint64_t{0};
  size_t combos = 1;
  for (size_t i = 0; i < n; ++i) combos *= bins;
  std::vector<uint64_t> load(bins);
  for (size_t a = 0; a < combos; ++a) {
    std::fill(load.begin(), load.end(), 0);
    size_t code = a;
    for (size_t i = 0; i < n; ++i) {
      load[code % bins] += weights[i];
      code /= bins;
    }
    best = std::min(best, *std::max_element(load.begin(), load.end()));
  }
  return best;
}

TEST(PartitionTest, WithinFourThirdsOfBruteForceOptimal) {
  // Graham's bound against the *true* optimum, not just the total/m lower
  // bound: LPT makespan <= (4/3 - 1/(3m)) * OPT.
  Xoshiro256 rng(17);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<uint64_t> weights(2 + rng.NextBounded(7));  // <= 8 items
    for (auto& w : weights) w = 1 + rng.NextBounded(100);
    const int bins = 2 + static_cast<int>(rng.NextBounded(2));  // 2 or 3
    const uint64_t opt = BruteForceOptimal(weights, bins);
    const uint64_t lpt = PartitionLpt(weights, bins).MaxWeight();
    EXPECT_GE(lpt, opt);
    EXPECT_LE(static_cast<double>(lpt),
              (4.0 / 3.0 - 1.0 / (3.0 * bins)) * static_cast<double>(opt) +
                  1e-9)
        << "trial " << trial;
  }
}

TEST(ShardingModeTest, NamesRoundTrip) {
  for (ShardingMode mode : {ShardingMode::kReplicate, ShardingMode::kLpt,
                            ShardingMode::kStatistical}) {
    ShardingMode parsed;
    ASSERT_TRUE(ParseShardingMode(ShardingModeName(mode), &parsed));
    EXPECT_EQ(parsed, mode);
  }
  ShardingMode parsed;
  EXPECT_FALSE(ParseShardingMode("hash", &parsed));
  EXPECT_FALSE(ParseShardingMode("", &parsed));
}

TEST(ShardedPlacementTest, DeviceOfFollowsCuts) {
  ShardedPlacement p;
  p.mode = ShardingMode::kStatistical;
  p.num_devices = 3;
  p.cuts = {{0, 4, 10, 20}};
  p.replicated = {{}};
  p.all_replicated = {0};
  EXPECT_EQ(p.DeviceOf(0, 0), 0);
  EXPECT_EQ(p.DeviceOf(0, 3), 0);
  EXPECT_EQ(p.DeviceOf(0, 4), 1);
  EXPECT_EQ(p.DeviceOf(0, 9), 1);
  EXPECT_EQ(p.DeviceOf(0, 10), 2);
  EXPECT_EQ(p.DeviceOf(0, 19), 2);
}

TEST(ShardedPlacementTest, ImbalanceCountsReplicatedShare) {
  ShardedPlacement p;
  p.num_devices = 2;
  p.device_mass = {30, 10};
  p.replicated_mass = 0;
  EXPECT_DOUBLE_EQ(p.Imbalance(), 1.5);  // 30 / 20
  // A large replicated mass is served 1/N per device, evening things out.
  p.replicated_mass = 120;
  EXPECT_DOUBLE_EQ(p.Imbalance(), 90.0 / 80.0);  // (30+60) / (20+60)
}

TEST(ShardedPlacementTest, EmptyPlacementIsBalanced) {
  ShardedPlacement p;
  p.num_devices = 4;
  p.device_mass = {0, 0, 0, 0};
  EXPECT_DOUBLE_EQ(p.Imbalance(), 1.0);
}

}  // namespace
}  // namespace fae
