// End-to-end integration: the full production workflow the CLI exposes —
// generate -> persist dataset -> reload -> preprocess (cached FAE plan) ->
// train with FAE -> checkpoint -> restore -> serve — with cross-stage
// consistency checks at every hand-off.

#include <filesystem>

#include <gtest/gtest.h>

#include "fae.h"  // umbrella header must stay self-contained

#include "core/fae_pipeline.h"
#include "data/dataset_io.h"
#include "data/synthetic.h"
#include "engine/trainer.h"
#include "models/factory.h"
#include "models/model_io.h"
#include "util/file_io.h"

namespace fae {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(IntegrationTest, FullWorkflowEndToEnd) {
  const std::string data_path = TempPath("fae_e2e.faed");
  const std::string plan_path = TempPath("fae_e2e.faef");
  const std::string ckpt_path = TempPath("fae_e2e.faem");
  for (const auto& p : {data_path, plan_path, ckpt_path}) {
    (void)RemoveFile(p);
  }

  // 1) Generate and persist a dataset.
  DatasetSchema schema = MakeKaggleLikeSchema(DatasetScale::kTiny);
  Dataset generated =
      SyntheticGenerator(schema, {.seed = 2024}).Generate(5000);
  ASSERT_TRUE(DatasetIo::Save(data_path, generated).ok());

  // 2) Reload it (a separate process would start here).
  auto loaded = DatasetIo::Load(data_path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  Dataset::Split split = loaded->MakeSplit(0.15);

  // 3) Static FAE pass, cached to disk.
  FaeConfig config;
  config.sample_rate = 0.25;
  config.gpu_memory_budget = 384ULL << 10;
  config.large_table_bytes = 1ULL << 12;
  config.num_threads = 2;
  FaePipeline pipeline(config);
  auto plan = pipeline.PrepareCached(*loaded, split.train, plan_path);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_FALSE(plan->from_cache);
  EXPECT_GT(plan->inputs.HotFraction(), 0.2);

  // 3b) Reloading the plan must reproduce it exactly.
  auto cached = pipeline.PrepareCached(*loaded, split.train, plan_path);
  ASSERT_TRUE(cached.ok());
  EXPECT_TRUE(cached->from_cache);
  EXPECT_EQ(cached->inputs.hot_ids, plan->inputs.hot_ids);

  // 4) Train with FAE (real math, dirty sync, 2 simulated GPUs).
  TrainOptions options;
  options.per_gpu_batch = 64;
  options.epochs = 1;
  options.eval_samples = 512;
  options.sync_strategy = SyncStrategy::kDirty;
  auto model = MakeModel(schema, false, 7);
  Trainer trainer(model.get(), MakePaperServer(2), options);
  auto report = trainer.TrainFaeWithPlan(*loaded, split, config, *cached);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->final_test_acc, 0.45);
  EXPECT_GT(report->num_batches, 0u);

  // 5) Checkpoint and restore into a differently-initialized model.
  ASSERT_TRUE(ModelIo::Save(ckpt_path, *model).ok());
  auto served = MakeModel(schema, false, 31337);
  ASSERT_TRUE(ModelIo::Load(ckpt_path, *served).ok());

  // 6) The restored model must score identically to the trained one.
  std::vector<uint64_t> probe_ids(split.test.begin(),
                                  split.test.begin() + 64);
  MiniBatch probe = AssembleBatch(*loaded, probe_ids);
  EXPECT_EQ(MaxAbsDiff(model->EvalLogits(probe), served->EvalLogits(probe)),
            0.0f);

  // 7) And its evaluation metrics must match the training-side report.
  auto batches = AssembleBatches(*loaded, split.test, 128, false);
  EvalResult eval = Evaluate(*served, batches);
  EXPECT_GT(eval.auc, 0.5);  // learned something

  for (const auto& p : {data_path, plan_path, ckpt_path}) {
    (void)RemoveFile(p);
  }
}

TEST(IntegrationTest, PlanCacheSurvivesDatasetReload) {
  // Fingerprint stability: a dataset saved and reloaded must accept the
  // plan cached against the original.
  const std::string data_path = TempPath("fae_e2e_fp.faed");
  const std::string plan_path = TempPath("fae_e2e_fp.faef");
  DatasetSchema schema = MakeTaobaoLikeSchema(DatasetScale::kTiny);
  Dataset original = SyntheticGenerator(schema, {.seed = 11}).Generate(2000);
  Dataset::Split split = original.MakeSplit(0.1);

  FaeConfig config;
  config.sample_rate = 0.3;
  config.gpu_memory_budget = 768ULL << 10;
  config.large_table_bytes = 1ULL << 12;
  FaePipeline pipeline(config);
  auto fresh = pipeline.PrepareCached(original, split.train, plan_path);
  ASSERT_TRUE(fresh.ok());

  ASSERT_TRUE(DatasetIo::Save(data_path, original).ok());
  auto reloaded = DatasetIo::Load(data_path);
  ASSERT_TRUE(reloaded.ok());
  auto cached = pipeline.PrepareCached(*reloaded, split.train, plan_path);
  ASSERT_TRUE(cached.ok());
  EXPECT_TRUE(cached->from_cache);

  (void)RemoveFile(data_path);
  (void)RemoveFile(plan_path);
}

}  // namespace
}  // namespace fae
