// Unit + property tests of the lookahead oracle cache (DESIGN.md §13).
// The load-bearing guarantee is the Belady invariant: the cache never
// evicts a row that any batch still in the oracle window references, and
// the budget is a hard cap. The fuzz test drives random request streams
// through random budget/window shapes and checks both after every step,
// alongside the byte-conservation identity that keeps the cost charges
// honest.

#include <algorithm>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "core/fae_pipeline.h"
#include "data/synthetic.h"
#include "engine/lookahead_cache.h"

namespace fae {
namespace {

struct CacheFixture {
  CacheFixture()
      : schema(MakeKaggleLikeSchema(DatasetScale::kTiny)),
        dataset(SyntheticGenerator(schema, {.seed = 47}).Generate(1024)) {}

  /// A random contiguous-id request batch (the serving stream's shape).
  std::vector<uint64_t> RandomBatch(std::mt19937& rng, size_t count) {
    std::uniform_int_distribution<uint64_t> pick(0, dataset.size() - count);
    const uint64_t begin = pick(rng);
    std::vector<uint64_t> ids(count);
    for (size_t i = 0; i < count; ++i) ids[i] = begin + i;
    return ids;
  }

  HotSet PreparedHotSet() {
    FaeConfig cfg;
    cfg.sample_rate = 0.25;
    cfg.gpu_memory_budget = 64ULL << 10;
    cfg.large_table_bytes = 1ULL << 12;
    std::vector<uint64_t> train(dataset.size());
    for (size_t i = 0; i < train.size(); ++i) train[i] = i;
    auto plan = FaePipeline(cfg).Prepare(dataset, train);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    return std::move(plan->hot_set);
  }

  LookaheadCache::Options Opts(size_t budget, size_t lookahead,
                               bool track_dirty = true) {
    LookaheadCache::Options o;
    o.budget_rows = budget;
    o.lookahead = lookahead;
    o.row_bytes = schema.embedding_dim * sizeof(float) + sizeof(uint32_t);
    o.track_dirty = track_dirty;
    return o;
  }

  DatasetSchema schema;
  Dataset dataset;
};

/// Byte-conservation identity: every resident row was fetched exactly once
/// since its last eviction, so inserts (prefetched rows minus stale
/// refreshes, which refetch in place) split exactly into the still-resident
/// and the evicted.
void ExpectConservation(const LookaheadCache& cache) {
  const LookaheadCache::Stats& s = cache.stats();
  const uint64_t row_bytes = cache.options().row_bytes;
  ASSERT_EQ(s.prefetch_bytes % row_bytes, 0u);
  const uint64_t inserts = s.prefetch_bytes / row_bytes - s.stale_refreshes;
  EXPECT_EQ(inserts, s.evictions + cache.resident_rows());
  EXPECT_LE(cache.resident_rows(), cache.options().budget_rows);
  EXPECT_LE(s.peak_resident_rows, cache.options().budget_rows);
}

TEST(LookaheadCacheTest, OracleNeverEvictsAWindowedRowOrExceedsBudget) {
  CacheFixture f;
  const FlatDataset& flat = f.dataset.flat();
  const std::vector<uint64_t>& rows = f.schema.table_rows;
  for (uint64_t seed : {1u, 2u, 3u}) {
    for (size_t budget : {size_t{16}, size_t{200}, size_t{5000}}) {
      for (size_t lookahead : {size_t{1}, size_t{3}, size_t{7}}) {
        std::mt19937 rng(seed);
        LookaheadCache cache;
        cache.Init(rows, f.Opts(budget, lookahead));
        cache.BeginSegment();

        std::vector<std::vector<char>> was_resident(rows.size());
        for (size_t t = 0; t < rows.size(); ++t) {
          was_resident[t].assign(rows[t], 0);
        }

        const size_t steps = 24;
        std::vector<std::vector<uint64_t>> stream;
        for (size_t i = 0; i < steps; ++i) {
          stream.push_back(f.RandomBatch(rng, 32));
        }
        size_t pushed = 0;
        for (; pushed < std::min(lookahead, steps); ++pushed) {
          cache.PushBatch(flat, stream[pushed]);
        }
        for (size_t i = 0; i < steps; ++i) {
          cache.OnStep();
          // Belady check, before the window moves again: a row that left
          // residency during this step must have had no reference left in
          // the window (refs only ever decrease inside OnStep).
          for (size_t t = 0; t < rows.size(); ++t) {
            for (uint32_t r = 0; r < rows[t]; ++r) {
              if (was_resident[t][r] && !cache.IsResident(t, r)) {
                EXPECT_EQ(cache.WindowRefs(t, r), 0u)
                    << "evicted a windowed row: table " << t << " row " << r;
              }
              was_resident[t][r] = cache.IsResident(t, r) ? 1 : 0;
            }
          }
          ExpectConservation(cache);
          if (pushed < steps) cache.PushBatch(flat, stream[pushed++]);
        }
        EXPECT_EQ(cache.window_batches(), 0u);
      }
    }
  }
}

TEST(LookaheadCacheTest, AmpleBudgetNeverMisses) {
  // With room for every row, first occurrences late-fetch (still hits) and
  // everything after is resident: zero misses, ever.
  CacheFixture f;
  const FlatDataset& flat = f.dataset.flat();
  uint64_t total_rows = 0;
  for (uint64_t r : f.schema.table_rows) total_rows += r;
  std::mt19937 rng(9);
  LookaheadCache cache;
  cache.Init(f.schema.table_rows, f.Opts(total_rows, 4));
  cache.BeginSegment();
  std::vector<std::vector<uint64_t>> stream;
  for (size_t i = 0; i < 16; ++i) stream.push_back(f.RandomBatch(rng, 64));
  for (size_t i = 0; i < 4; ++i) cache.PushBatch(flat, stream[i]);
  for (size_t i = 0; i < 16; ++i) {
    const LookaheadCache::StepCharge c = cache.OnStep();
    EXPECT_EQ(c.miss_lookups, 0u);
    EXPECT_EQ(c.miss_rows, 0u);
    if (i + 4 < 16) cache.PushBatch(flat, stream[i + 4]);
  }
  EXPECT_EQ(cache.stats().misses, 0u);
  EXPECT_GT(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(LookaheadCacheTest, IdenticalStreamsProduceIdenticalStats) {
  CacheFixture f;
  const FlatDataset& flat = f.dataset.flat();
  auto run = [&]() {
    std::mt19937 rng(13);
    LookaheadCache cache;
    cache.Init(f.schema.table_rows, f.Opts(300, 5));
    cache.BeginSegment();
    std::vector<std::vector<uint64_t>> stream;
    for (size_t i = 0; i < 20; ++i) stream.push_back(f.RandomBatch(rng, 48));
    for (size_t i = 0; i < 5; ++i) cache.PushBatch(flat, stream[i]);
    for (size_t i = 0; i < 20; ++i) {
      cache.OnStep();
      if (i + 5 < 20) cache.PushBatch(flat, stream[i + 5]);
    }
    return cache.stats();
  };
  const LookaheadCache::Stats a = run();
  const LookaheadCache::Stats b = run();
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_EQ(a.misses, b.misses);
  EXPECT_EQ(a.stale_refreshes, b.stale_refreshes);
  EXPECT_EQ(a.prefetch_bytes, b.prefetch_bytes);
  EXPECT_EQ(a.writeback_bytes, b.writeback_bytes);
  EXPECT_EQ(a.evictions, b.evictions);
  EXPECT_EQ(a.peak_resident_rows, b.peak_resident_rows);
}

TEST(LookaheadCacheTest, PinnedRowsNeverEnterTheCache) {
  CacheFixture f;
  const FlatDataset& flat = f.dataset.flat();
  const HotSet hot = f.PreparedHotSet();
  std::mt19937 rng(21);
  LookaheadCache cache;
  cache.Init(f.schema.table_rows, f.Opts(5000, 4, /*track_dirty=*/false));
  cache.SetPinned(&hot);
  cache.BeginSegment();
  std::vector<std::vector<uint64_t>> stream;
  for (size_t i = 0; i < 12; ++i) stream.push_back(f.RandomBatch(rng, 64));
  for (size_t i = 0; i < 4; ++i) cache.PushBatch(flat, stream[i]);
  for (size_t i = 0; i < 12; ++i) {
    cache.OnStep();
    for (size_t t = 0; t < f.schema.table_rows.size(); ++t) {
      for (uint32_t r = 0; r < f.schema.table_rows[t]; ++r) {
        if (hot.IsHot(t, r)) {
          EXPECT_FALSE(cache.IsResident(t, r))
              << "pinned row cached: table " << t << " row " << r;
        }
      }
    }
    if (i + 4 < 12) cache.PushBatch(flat, stream[i + 4]);
  }
  EXPECT_GT(cache.resident_rows(), 0u);  // cold rows still cache
  // A clean (serving) cache drops re-tiered rows without writeback.
  EXPECT_EQ(cache.DropPinned(hot), 0u);
}

TEST(LookaheadCacheTest, InvalidateHotForcesAChargedRefresh) {
  CacheFixture f;
  const FlatDataset& flat = f.dataset.flat();
  const HotSet hot = f.PreparedHotSet();
  // No pinned tier here: the cache may hold hot rows (the training cold
  // chunks do exactly that), so a hot chunk's master push must stale them.
  LookaheadCache cache;
  cache.Init(f.schema.table_rows, f.Opts(100000, 2, /*track_dirty=*/false));
  cache.BeginSegment();
  std::vector<uint64_t> ids(64);
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = i;
  cache.PushBatch(flat, ids);
  cache.PushBatch(flat, ids);
  cache.OnStep();  // caches the batch's rows
  cache.InvalidateHot(hot);
  const LookaheadCache::StepCharge c = cache.OnStep();  // same rows again
  EXPECT_GT(c.stale_refreshes, 0u);
  EXPECT_EQ(c.miss_lookups, 0u);  // refreshed, not evicted
  EXPECT_EQ(cache.stats().stale_refreshes, c.stale_refreshes);
}

TEST(LookaheadCacheTest, DirtyRowsWriteBackExactlyOnce) {
  CacheFixture f;
  const FlatDataset& flat = f.dataset.flat();
  LookaheadCache cache;
  const LookaheadCache::Options opts = f.Opts(100000, 1);
  cache.Init(f.schema.table_rows, opts);
  cache.BeginSegment();
  std::vector<uint64_t> ids(32);
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = i;
  cache.PushBatch(flat, ids);
  cache.OnStep();  // every touched row is now resident + dirty
  const size_t resident = cache.resident_rows();
  ASSERT_GT(resident, 0u);
  const uint64_t flushed = cache.FlushAllDirty();
  EXPECT_EQ(flushed, resident * opts.row_bytes);
  EXPECT_EQ(cache.FlushAllDirty(), 0u);  // second flush finds nothing
  EXPECT_EQ(cache.stats().writeback_bytes, flushed);
  EXPECT_EQ(cache.resident_rows(), resident);  // flushing never evicts
}

TEST(LookaheadCacheTest, RefreshUpdatedTouchesOnlyResidentRows) {
  CacheFixture f;
  const FlatDataset& flat = f.dataset.flat();
  LookaheadCache cache;
  const LookaheadCache::Options opts = f.Opts(100000, 1, false);
  cache.Init(f.schema.table_rows, opts);
  cache.BeginSegment();
  std::vector<uint64_t> ids(32);
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = i;
  // Nothing resident yet: a master update refreshes nothing.
  EXPECT_EQ(cache.RefreshUpdated(flat, ids), 0u);
  cache.PushBatch(flat, ids);
  cache.OnStep();
  const uint64_t refreshed = cache.RefreshUpdated(flat, ids);
  EXPECT_EQ(refreshed, cache.resident_rows() * opts.row_bytes);
  std::vector<uint64_t> other(32);
  for (size_t i = 0; i < other.size(); ++i) other[i] = 512 + i;
  const uint64_t foreign = cache.RefreshUpdated(flat, other);
  EXPECT_LE(foreign, refreshed);  // only the overlap is resident
}

TEST(LookaheadCacheTest, BeginSegmentDrainsAnAbandonedWindow) {
  // A crash unwind abandons in-flight batches; the next segment must start
  // from quiescent reference counts or the Belady guarantee rots.
  CacheFixture f;
  const FlatDataset& flat = f.dataset.flat();
  LookaheadCache cache;
  cache.Init(f.schema.table_rows, f.Opts(64, 4));
  cache.BeginSegment();
  std::mt19937 rng(33);
  for (size_t i = 0; i < 4; ++i) {
    cache.PushBatch(flat, f.RandomBatch(rng, 32));
  }
  cache.OnStep();  // leaves 3 batches in flight
  cache.BeginSegment();
  EXPECT_EQ(cache.window_batches(), 0u);
  for (size_t t = 0; t < f.schema.table_rows.size(); ++t) {
    for (uint32_t r = 0; r < f.schema.table_rows[t]; ++r) {
      EXPECT_EQ(cache.WindowRefs(t, r), 0u);
    }
  }
  // The drained window's rows are all evictable: a full 64-row budget
  // turns over for the next segment instead of deadlocking on leaked refs.
  ASSERT_EQ(cache.resident_rows(), cache.options().budget_rows);
  std::vector<uint64_t> ids(64);
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = 900 + i;
  cache.PushBatch(flat, ids);
  cache.OnStep();
  EXPECT_GT(cache.stats().evictions, 0u) << "stale refs blocked eviction";
  ExpectConservation(cache);
}

}  // namespace
}  // namespace fae
