// Steady-state allocation freedom of the fused training step: after a few
// warm-up steps have sized every workspace, a DLRM training step (forward,
// backward, dense SGD, fused sparse scatter+update) must perform zero heap
// allocations. Enforced with a global operator new hook, which is why this
// test lives in its own binary (fae_zero_alloc_test) — the hook is
// process-wide.

#include <atomic>
#include <execinfo.h>
#include <unistd.h>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include <gtest/gtest.h>

#include "data/batch_view.h"
#include "data/synthetic.h"
#include "embedding/sparse_sgd.h"
#include "engine/staleness_tracker.h"
#include "models/factory.h"
#include "tensor/sgd.h"

namespace {
std::atomic<bool> g_track{false};
std::atomic<uint64_t> g_allocs{0};

void* TrackedAlloc(std::size_t n) {
  if (g_track.load(std::memory_order_relaxed)) {
    uint64_t c = g_allocs.fetch_add(1, std::memory_order_relaxed);
#ifdef FAE_ZERO_ALLOC_TRACE
    if (c < 16) {
      void* frames[16];
      int depth = backtrace(frames, 16);
      backtrace_symbols_fd(frames, depth, 2);
      const char nl[] = "----\n";
      (void)!write(2, nl, sizeof(nl) - 1);
    }
#endif
  }
  if (void* p = std::malloc(n == 0 ? 1 : n)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t n) { return TrackedAlloc(n); }
void* operator new[](std::size_t n) { return TrackedAlloc(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace fae {
namespace {

TEST(ZeroAllocTest, FusedDlrmStepIsAllocationFreeAfterWarmup) {
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  GTEST_SKIP() << "sanitizer runtimes allocate behind the hook";
#endif
  const DatasetSchema schema =
      MakeSchema(WorkloadKind::kKaggleDlrm, DatasetScale::kTiny);
  const Dataset dataset = SyntheticGenerator(schema, {.seed = 41}).Generate(64);
  std::vector<uint64_t> ids(64);
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = i;
  const FlatDataset gathered = dataset.flat().Gather(ids);
  // 64 samples in batches of 16: every batch has the same size, so the
  // workspaces sized by the warm-up fit every later step exactly.
  const std::vector<BatchView> views = MakeBatchViews(gathered, 16, false);

  std::unique_ptr<RecModel> model =
      MakeModel(schema, /*full_size=*/false, /*seed=*/1);
  std::vector<EmbeddingTable*> tables;
  for (EmbeddingTable& t : model->tables()) tables.push_back(&t);
  const std::vector<Parameter*> dense_params = model->DenseParams();

  Sgd dense_sgd(0.1f);
  SparseSgd sparse_sgd(0.1f);
  // Mirror of the trainer's prebuilt apply functor: one pointer capture,
  // held in std::function's small buffer.
  struct Ctx {
    SparseSgd* sgd;
    std::vector<EmbeddingTable*>* tables;
  } ctx{&sparse_sgd, &tables};
  const SparseApplyFn apply = [c = &ctx](size_t t, const Tensor& grad_out,
                                         std::span<const uint32_t> indices,
                                         std::span<const uint32_t> offsets) {
    c->sgd->FusedBackwardStep(*(*c->tables)[t], grad_out, indices, offsets,
                              nullptr);
  };

  auto step = [&](const BatchView& view) {
    StepResult r = model->ForwardBackwardFusedOn(view, tables, apply);
    dense_sgd.Step(dense_params);
    ASSERT_TRUE(r.table_grads.empty());  // DLRM fuses every table
  };

  // Warm-up: size every workspace.
  for (int rep = 0; rep < 2; ++rep) {
    for (const BatchView& view : views) step(view);
  }

  g_allocs.store(0);
  g_track.store(true);
  for (int rep = 0; rep < 3; ++rep) {
    for (const BatchView& view : views) step(view);
  }
  g_track.store(false);
  EXPECT_EQ(g_allocs.load(), 0u)
      << "the fused steady-state step touched the heap";
}

// Same property with quantized cold storage: once a full sync interval has
// staged the touched cold rows and FlushStaged has sized the staging
// buffers, the dequantize-gather / stage / update / requantize cycle must
// not touch the heap either (the --cold-precision path rides the same
// fused step).
TEST(ZeroAllocTest, QuantizedFusedStepIsAllocationFreeAfterWarmup) {
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  GTEST_SKIP() << "sanitizer runtimes allocate behind the hook";
#endif
  const DatasetSchema schema =
      MakeSchema(WorkloadKind::kKaggleDlrm, DatasetScale::kTiny);
  const Dataset dataset = SyntheticGenerator(schema, {.seed = 43}).Generate(64);
  std::vector<uint64_t> ids(64);
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = i;
  const FlatDataset gathered = dataset.flat().Gather(ids);
  const std::vector<BatchView> views = MakeBatchViews(gathered, 16, false);

  std::unique_ptr<RecModel> model =
      MakeModel(schema, /*full_size=*/false, /*seed=*/2);
  std::vector<EmbeddingTable*> tables;
  for (EmbeddingTable& t : model->tables()) {
    // Every 4th row hot, the rest int8-quantized — each step then gathers
    // and updates a real mix of resident and cold rows.
    std::vector<uint8_t> mask(t.rows(), 0);
    for (uint64_t r = 0; r < t.rows(); r += 4) mask[r] = 1;
    t.CompressCold(mask, ColdPrecision::kInt8);
    tables.push_back(&t);
  }
  const std::vector<Parameter*> dense_params = model->DenseParams();

  Sgd dense_sgd(0.1f);
  SparseSgd sparse_sgd(0.1f);
  struct Ctx {
    SparseSgd* sgd;
    std::vector<EmbeddingTable*>* tables;
  } ctx{&sparse_sgd, &tables};
  const SparseApplyFn apply = [c = &ctx](size_t t, const Tensor& grad_out,
                                         std::span<const uint32_t> indices,
                                         std::span<const uint32_t> offsets) {
    c->sgd->FusedBackwardStep(*(*c->tables)[t], grad_out, indices, offsets,
                              nullptr);
  };

  // One "sync interval" = the four batches, then the cold-row writeback.
  auto interval = [&] {
    for (const BatchView& view : views) {
      StepResult r = model->ForwardBackwardFusedOn(view, tables, apply);
      dense_sgd.Step(dense_params);
      ASSERT_TRUE(r.table_grads.empty());
    }
    for (EmbeddingTable* t : tables) t->FlushStaged();
  };

  // Warm-up: sizes the step workspaces and grows every staging buffer to
  // the interval's full staged set.
  for (int rep = 0; rep < 2; ++rep) interval();

  g_allocs.store(0);
  g_track.store(true);
  for (int rep = 0; rep < 3; ++rep) interval();
  g_track.store(false);
  EXPECT_EQ(g_allocs.load(), 0u)
      << "the quantized steady-state step touched the heap";
}

// Same property with the staleness tracker riding the fused step: Init
// preallocates all per-row state, BeginVisit/RecordUpdate are plain array
// walks, and the skip-verdict scratch inside SparseSgd is sized by the
// warm-up — so stale-update skipping adds zero steady-state allocations.
TEST(ZeroAllocTest, StaleSkipFusedStepIsAllocationFreeAfterWarmup) {
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  GTEST_SKIP() << "sanitizer runtimes allocate behind the hook";
#endif
  const DatasetSchema schema =
      MakeSchema(WorkloadKind::kKaggleDlrm, DatasetScale::kTiny);
  const Dataset dataset = SyntheticGenerator(schema, {.seed = 47}).Generate(64);
  std::vector<uint64_t> ids(64);
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = i;
  const FlatDataset gathered = dataset.flat().Gather(ids);
  const std::vector<BatchView> views = MakeBatchViews(gathered, 16, false);

  std::unique_ptr<RecModel> model =
      MakeModel(schema, /*full_size=*/false, /*seed=*/3);
  std::vector<EmbeddingTable*> tables;
  std::vector<uint64_t> table_rows;
  for (EmbeddingTable& t : model->tables()) {
    tables.push_back(&t);
    table_rows.push_back(t.rows());
  }
  const std::vector<Parameter*> dense_params = model->DenseParams();

  StalenessTracker tracker;
  // An aggressive threshold with min_visits 1: rows start freezing during
  // the warm-up, so the tracked reps exercise both the skip and the
  // measure paths of BeginVisit/RecordUpdate.
  tracker.Init(table_rows, {.threshold = 0.5, .min_visits = 1});

  Sgd dense_sgd(0.1f);
  SparseSgd sparse_sgd(0.1f);
  struct Ctx {
    SparseSgd* sgd;
    std::vector<EmbeddingTable*>* tables;
    StalenessTracker* tracker;
  } ctx{&sparse_sgd, &tables, &tracker};
  const SparseApplyFn apply = [c = &ctx](size_t t, const Tensor& grad_out,
                                         std::span<const uint32_t> indices,
                                         std::span<const uint32_t> offsets) {
    c->sgd->FusedBackwardStep(*(*c->tables)[t], grad_out, indices, offsets,
                              nullptr, c->tracker->filter(t));
  };

  auto step = [&](const BatchView& view) {
    tracker.BeginStep();
    StepResult r = model->ForwardBackwardFusedOn(view, tables, apply);
    dense_sgd.Step(dense_params);
    ASSERT_TRUE(r.table_grads.empty());
  };

  for (int rep = 0; rep < 2; ++rep) {
    for (const BatchView& view : views) step(view);
  }
  ASSERT_GT(tracker.total_skipped_rows(), 0u)
      << "warm-up froze no rows; the tracked reps would not cover the "
         "skip path";

  g_allocs.store(0);
  g_track.store(true);
  for (int rep = 0; rep < 3; ++rep) {
    for (const BatchView& view : views) step(view);
  }
  g_track.store(false);
  EXPECT_EQ(g_allocs.load(), 0u)
      << "the stale-skip steady-state step touched the heap";
}

}  // namespace
}  // namespace fae
