#include "engine/metrics.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "models/factory.h"

namespace fae {
namespace {

TEST(RocAucTest, PerfectRankingIsOne) {
  EXPECT_DOUBLE_EQ(RocAuc({0.1f, 0.2f, 0.8f, 0.9f}, {0, 0, 1, 1}), 1.0);
}

TEST(RocAucTest, InvertedRankingIsZero) {
  EXPECT_DOUBLE_EQ(RocAuc({0.9f, 0.8f, 0.2f, 0.1f}, {0, 0, 1, 1}), 0.0);
}

TEST(RocAucTest, AllTiedScoresIsHalf) {
  EXPECT_DOUBLE_EQ(RocAuc({0.5f, 0.5f, 0.5f, 0.5f}, {0, 1, 0, 1}), 0.5);
}

TEST(RocAucTest, KnownMixedCase) {
  // scores: 1,2,3,4 with labels 0,1,0,1 -> pairs won: (2>1),(4>1),(4>3);
  // pair lost: (2<3). AUC = 3/4.
  EXPECT_DOUBLE_EQ(RocAuc({1, 2, 3, 4}, {0, 1, 0, 1}), 0.75);
}

TEST(RocAucTest, TiesCountHalf) {
  // positive tied with a negative: 0.5 credit over 1 pair.
  EXPECT_DOUBLE_EQ(RocAuc({0.3f, 0.3f}, {0, 1}), 0.5);
}

TEST(RocAucTest, DegenerateInputs) {
  EXPECT_EQ(RocAuc({}, {}), 0.0);
  EXPECT_EQ(RocAuc({0.5f, 0.6f}, {1, 1}), 0.0);  // no negatives
  EXPECT_EQ(RocAuc({0.5f, 0.6f}, {0, 0}), 0.0);  // no positives
  EXPECT_EQ(RocAuc({0.5f}, {1, 0}), 0.0);        // size mismatch
}

TEST(RocAucTest, InvariantToMonotoneTransform) {
  std::vector<float> scores = {-2.0f, -0.5f, 0.3f, 1.7f, 2.2f};
  std::vector<float> labels = {0, 1, 0, 1, 1};
  std::vector<float> scaled;
  for (float s : scores) scaled.push_back(10.0f * s + 3.0f);
  EXPECT_DOUBLE_EQ(RocAuc(scores, labels), RocAuc(scaled, labels));
}

TEST(RocAucTest, RandomScoresNearHalf) {
  Xoshiro256 rng(3);
  std::vector<float> scores;
  std::vector<float> labels;
  for (int i = 0; i < 20000; ++i) {
    scores.push_back(rng.NextFloat());
    labels.push_back(rng.NextBernoulli(0.4) ? 1.0f : 0.0f);
  }
  EXPECT_NEAR(RocAuc(scores, labels), 0.5, 0.02);
}

TEST(EvaluateTest, ReportsAucAboveChanceAfterConstruction) {
  // An untrained model gives ~0.5; this only checks the field is wired and
  // in range.
  DatasetSchema schema = MakeKaggleLikeSchema(DatasetScale::kTiny);
  Dataset d = SyntheticGenerator(schema, {.seed = 3}).Generate(600);
  auto model = MakeModel(schema, false, 1);
  std::vector<uint64_t> ids(512);
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = i;
  auto batches = AssembleBatches(d, ids, 128, false);
  EvalResult r = Evaluate(*model, batches);
  EXPECT_GT(r.auc, 0.0);
  EXPECT_LT(r.auc, 1.0);
  EXPECT_EQ(r.samples, 512u);
}

}  // namespace
}  // namespace fae
