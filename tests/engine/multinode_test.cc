#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "engine/trainer.h"
#include "models/factory.h"
#include "sim/cost_model.h"

namespace fae {
namespace {

TEST(MultiNodeTest, WorldSizeMultiplies) {
  EXPECT_EQ(MakePaperServer(4).WorldSize(), 4);
  EXPECT_EQ(MakeMultiNodeCluster(2, 4).WorldSize(), 8);
  EXPECT_EQ(MakeMultiNodeCluster(4, 4).WorldSize(), 16);
}

TEST(MultiNodeTest, NetworkIsSlowerThanNvlink) {
  SystemSpec sys = MakeMultiNodeCluster(2, 4);
  EXPECT_LT(sys.network.bandwidth, sys.nvlink.bandwidth);
}

TEST(MultiNodeTest, HierarchicalAllReduceCostsMoreThanLocal) {
  CostModel local(MakePaperServer(4));
  CostModel cluster(MakeMultiNodeCluster(4, 4));
  const uint64_t bytes = 64 << 20;
  EXPECT_GT(cluster.AllReduceSeconds(bytes), local.AllReduceSeconds(bytes));
}

TEST(MultiNodeTest, AllReduceGrowsWithNodes) {
  const uint64_t bytes = 64 << 20;
  double prev = 0.0;
  for (int nodes : {1, 2, 4}) {
    CostModel cm(MakeMultiNodeCluster(nodes, 4));
    const double t = cm.AllReduceSeconds(bytes);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(MultiNodeTest, NetworkTransferIncludesLatency) {
  CostModel cm(MakeMultiNodeCluster(2, 2));
  EXPECT_EQ(cm.NetworkTransferSeconds(0), 0.0);
  EXPECT_GE(cm.NetworkTransferSeconds(1), cm.system().network.latency);
}

struct Fixture {
  Fixture()
      : schema(MakeKaggleLikeSchema(DatasetScale::kTiny)),
        dataset(SyntheticGenerator(schema, {.seed = 19}).Generate(12000)),
        split(dataset.MakeSplit(0.1)) {}

  static TrainOptions Options() {
    TrainOptions opt;
    opt.per_gpu_batch = 128;
    opt.epochs = 1;
    opt.run_math = false;
    return opt;
  }

  static FaeConfig Config() {
    FaeConfig cfg;
    cfg.sample_rate = 0.25;
    cfg.gpu_memory_budget = 384ULL << 10;
    cfg.large_table_bytes = 1ULL << 12;
    cfg.num_threads = 2;
    return cfg;
  }

  DatasetSchema schema;
  Dataset dataset;
  Dataset::Split split;
};

TEST(MultiNodeTest, BaselinePaysInterNodeTraffic) {
  Fixture f;
  auto model = MakeModel(f.schema, false, 5);
  Trainer trainer(model.get(), MakeMultiNodeCluster(2, 2),
                  Fixture::Options());
  TrainReport report = trainer.TrainBaseline(f.dataset, f.split);
  EXPECT_GT(report.timeline.seconds(Phase::kNetwork), 0.0);
  EXPECT_GT(report.timeline.network_bytes(), 0u);
}

TEST(MultiNodeTest, SingleNodeHasNoNetworkPhase) {
  Fixture f;
  auto model = MakeModel(f.schema, false, 5);
  Trainer trainer(model.get(), MakePaperServer(4), Fixture::Options());
  TrainReport report = trainer.TrainBaseline(f.dataset, f.split);
  EXPECT_EQ(report.timeline.seconds(Phase::kNetwork), 0.0);
  EXPECT_EQ(report.timeline.network_bytes(), 0u);
}

TEST(MultiNodeTest, FaeStillBeatsBaselineAcrossNodes) {
  // The paper's §IV-A3 expectation: "even in a multi-server scenario, we
  // expect our insights to hold".
  Fixture f;
  for (int nodes : {1, 2, 4}) {
    SystemSpec sys = MakeMultiNodeCluster(nodes, 2);
    sys.hot_embedding_budget = Fixture::Config().gpu_memory_budget;
    auto bm = MakeModel(f.schema, false, 5);
    Trainer bt(bm.get(), sys, Fixture::Options());
    TrainReport base = bt.TrainBaseline(f.dataset, f.split);
    auto fm = MakeModel(f.schema, false, 5);
    Trainer ft(fm.get(), sys, Fixture::Options());
    auto fae = ft.TrainFae(f.dataset, f.split, Fixture::Config());
    ASSERT_TRUE(fae.ok()) << fae.status().ToString();
    EXPECT_GT(base.modeled_seconds / fae->modeled_seconds, 1.1)
        << nodes << " nodes";
  }
}

TEST(MultiNodeTest, FaeHotBatchesAvoidEmbeddingNetworkTraffic) {
  // Baseline moves pooled embeddings across the network every batch; FAE
  // only pays network for syncs and gradient all-reduce.
  Fixture f;
  SystemSpec sys = MakeMultiNodeCluster(2, 2);
  sys.hot_embedding_budget = Fixture::Config().gpu_memory_budget;
  auto bm = MakeModel(f.schema, false, 5);
  Trainer bt(bm.get(), sys, Fixture::Options());
  TrainReport base = bt.TrainBaseline(f.dataset, f.split);
  auto fm = MakeModel(f.schema, false, 5);
  Trainer ft(fm.get(), sys, Fixture::Options());
  auto fae = ft.TrainFae(f.dataset, f.split, Fixture::Config());
  ASSERT_TRUE(fae.ok());
  EXPECT_LT(fae->timeline.seconds(Phase::kNetwork),
            base.timeline.seconds(Phase::kNetwork));
}

TEST(MultiNodeTest, GlobalBatchScalesWithWorld) {
  Fixture f;
  auto model = MakeModel(f.schema, false, 5);
  TrainOptions opt = Fixture::Options();
  opt.per_gpu_batch = 64;
  Trainer trainer(model.get(), MakeMultiNodeCluster(2, 4), opt);
  EXPECT_EQ(trainer.GlobalBatchSize(), 64u * 8);
}

TEST(MultiNodeDeathTest, ComparatorsAreSingleNode) {
  Fixture f;
  auto model = MakeModel(f.schema, false, 5);
  Trainer trainer(model.get(), MakeMultiNodeCluster(2, 2),
                  Fixture::Options());
  EXPECT_DEATH((void)trainer.TrainNvOpt(f.dataset, f.split), "single node");
  EXPECT_DEATH((void)trainer.TrainModelParallel(f.dataset, f.split),
               "single node");
}

}  // namespace
}  // namespace fae
