#include <filesystem>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "engine/trainer.h"
#include "models/factory.h"
#include "util/file_io.h"

namespace fae {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

struct Fixture {
  Fixture()
      : schema(MakeKaggleLikeSchema(DatasetScale::kTiny)),
        dataset(SyntheticGenerator(schema, {.seed = 13}).Generate(3000)),
        split(dataset.MakeSplit(0.1)) {}

  static TrainOptions Options() {
    TrainOptions opt;
    opt.per_gpu_batch = 64;
    opt.epochs = 1;
    opt.run_math = true;
    opt.eval_samples = 256;
    return opt;
  }

  static FaeConfig Config() {
    FaeConfig cfg;
    cfg.sample_rate = 0.25;
    cfg.gpu_memory_budget = 384ULL << 10;
    cfg.large_table_bytes = 1ULL << 12;
    cfg.num_threads = 2;
    return cfg;
  }

  DatasetSchema schema;
  Dataset dataset;
  Dataset::Split split;
};

// The overlay contract: sharding only reprices the timeline. Losses, the
// whole curve, every embedding table value, and the real phase charges are
// bit-identical across the three modes.
TEST(ShardingTest, MathIsBitIdenticalAcrossModes) {
  Fixture f;
  SystemSpec sys = MakeMultiNodeCluster(2, 2);
  sys.hot_embedding_budget = Fixture::Config().gpu_memory_budget;
  std::vector<TrainReport> reports;
  std::vector<std::vector<std::vector<float>>> tables;
  for (ShardingMode mode : {ShardingMode::kReplicate, ShardingMode::kLpt,
                            ShardingMode::kStatistical}) {
    TrainOptions opt = Fixture::Options();
    opt.sharding = mode;
    auto model = MakeModel(f.schema, false, 5);
    Trainer trainer(model.get(), sys, opt);
    auto report = trainer.TrainFae(f.dataset, f.split, Fixture::Config());
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    reports.push_back(std::move(report).value());
    tables.emplace_back();
    for (const EmbeddingTable& t : model->tables()) {
      tables.back().push_back(t.raw());
    }
  }
  const TrainReport& rep = reports[0];
  for (size_t i = 1; i < reports.size(); ++i) {
    const TrainReport& other = reports[i];
    EXPECT_EQ(other.final_train_loss, rep.final_train_loss);
    EXPECT_EQ(other.final_test_loss, rep.final_test_loss);
    EXPECT_EQ(other.final_test_auc, rep.final_test_auc);
    EXPECT_EQ(other.num_batches, rep.num_batches);
    EXPECT_EQ(other.sync_bytes, rep.sync_bytes);
    ASSERT_EQ(other.curve.size(), rep.curve.size());
    for (size_t c = 0; c < rep.curve.size(); ++c) {
      EXPECT_EQ(other.curve[c].train_loss, rep.curve[c].train_loss);
      EXPECT_EQ(other.curve[c].test_loss, rep.curve[c].test_loss);
    }
    // Real charges are mode-independent; only the saved-seconds credit
    // (excluded from the per-phase ledger) differs.
    for (size_t ph = 0; ph < static_cast<size_t>(Phase::kNumPhases); ++ph) {
      EXPECT_EQ(other.timeline.seconds(static_cast<Phase>(ph)),
                rep.timeline.seconds(static_cast<Phase>(ph)))
          << "phase " << ph << " mode " << i;
    }
    EXPECT_EQ(other.timeline.pcie_bytes(), rep.timeline.pcie_bytes());
    ASSERT_EQ(tables[i].size(), tables[0].size());
    for (size_t t = 0; t < tables[0].size(); ++t) {
      EXPECT_EQ(tables[i][t], tables[0][t]) << "table " << t;
    }
  }
  // Replicate carries no placement; the sharded modes report one.
  EXPECT_EQ(rep.sharding_imbalance, 0.0);
  EXPECT_GE(reports[1].sharding_imbalance, 1.0);
  EXPECT_GE(reports[2].sharding_imbalance, 1.0);
}

TEST(ShardingTest, StatisticalBeatsLptAtFourNodes) {
  // The bench gate's conditions (ext_multinode shard sweep): a skewed
  // zipf-1.8 workload at large per-GPU batches, where LPT's whole-table
  // bottleneck device dwarfs the row-level placement's.
  DatasetSchema schema = MakeKaggleLikeSchema(DatasetScale::kTiny);
  SyntheticOptions gen_opt;
  gen_opt.seed = 19;
  gen_opt.zipf_exponent = 1.8;
  Dataset dataset = SyntheticGenerator(schema, gen_opt).Generate(12000);
  Dataset::Split split = dataset.MakeSplit(0.1);
  FaeConfig cfg = Fixture::Config();
  cfg.gpu_memory_budget = 1024ULL << 10;
  SystemSpec sys = MakeMultiNodeCluster(4, 2);
  sys.hot_embedding_budget = cfg.gpu_memory_budget;
  FaePipeline pipeline(cfg);
  auto plan = pipeline.Prepare(dataset, split.train);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  TrainOptions opt = Fixture::Options();
  opt.per_gpu_batch = 1024;
  opt.run_math = false;  // cost-only: the comparison is pure timeline
  std::vector<TrainReport> by_mode;
  for (ShardingMode mode : {ShardingMode::kLpt, ShardingMode::kStatistical}) {
    opt.sharding = mode;
    auto model = MakeModel(schema, false, 5);
    Trainer trainer(model.get(), sys, opt);
    auto report = trainer.TrainFaeWithPlan(dataset, split, cfg, *plan);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    by_mode.push_back(std::move(report).value());
  }
  const TrainReport& lpt = by_mode[0];
  const TrainReport& stat = by_mode[1];
  EXPECT_LT(stat.modeled_seconds, lpt.modeled_seconds);
  EXPECT_GT(stat.sharding_saved_seconds, lpt.sharding_saved_seconds);
  EXPECT_LE(stat.sharding_imbalance, 1.15);
  EXPECT_LE(stat.sharding_imbalance, lpt.sharding_imbalance);
  EXPECT_GT(stat.sharding_replicated_rows, 0u);
  EXPECT_GT(stat.sharding_max_shard_bytes, 0u);
}

TEST(ShardingTest, BaselineRejectsSharding) {
  Fixture f;
  TrainOptions opt = Fixture::Options();
  opt.sharding = ShardingMode::kStatistical;
  auto model = MakeModel(f.schema, false, 5);
  Trainer trainer(model.get(), MakePaperServer(2), opt);
  auto report = trainer.TrainBaselineResumable(f.dataset, f.split);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

TEST(ShardingTest, CachedPlanWithoutProfileIsRejected) {
  // Plans loaded from the FAE-format cache carry no per-row access
  // profile; the trainer must refuse to shard from one instead of
  // planning blind.
  Fixture f;
  const FaeConfig cfg = Fixture::Config();
  FaePipeline pipeline(cfg);
  auto plan = pipeline.Prepare(f.dataset, f.split.train);
  ASSERT_TRUE(plan.ok());
  plan->calibration.profile = AccessProfile(std::vector<uint64_t>{});

  TrainOptions opt = Fixture::Options();
  opt.sharding = ShardingMode::kStatistical;
  auto model = MakeModel(f.schema, false, 5);
  Trainer trainer(model.get(), MakePaperServer(2), opt);
  auto report = trainer.TrainFaeWithPlan(f.dataset, f.split, cfg, *plan);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

TEST(ShardingTest, ResumeMaySwitchShardingMode) {
  // --sharding is fingerprint-exempt: a checkpoint written under replicate
  // resumes under statistical, and because the overlay never touches the
  // math, the resumed curve still matches the uninterrupted replicate run
  // bit for bit.
  DatasetSchema schema = MakeKaggleLikeSchema(DatasetScale::kTiny);
  Dataset dataset = SyntheticGenerator(schema, {.seed = 71}).Generate(2400);
  Dataset::Split split = dataset.MakeSplit(0.15);
  const std::string path = TempPath("fae_resume_sharding.faec");
  FaeConfig cfg = Fixture::Config();
  cfg.gpu_memory_budget = 8ULL << 20;
  FaePipeline pipeline(cfg);
  auto plan = pipeline.Prepare(dataset, split.train);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  TrainOptions base_opt = Fixture::Options();
  base_opt.epochs = 2;

  auto model_a = MakeModel(schema, false, 5);
  Trainer uninterrupted(model_a.get(), MakePaperServer(1), base_opt);
  auto a = uninterrupted.TrainFaeWithPlan(dataset, split, cfg, *plan);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_GT(a->num_batches, 45u);

  TrainOptions opt = base_opt;
  opt.checkpoint.path = path;
  opt.checkpoint.every_steps = 1;
  auto crash_plan = FaultInjector::Parse("crash@45");
  ASSERT_TRUE(crash_plan.ok());
  opt.fault_injector = &*crash_plan;
  auto model_b = MakeModel(schema, false, 5);
  Trainer crashing(model_b.get(), MakePaperServer(1), opt);
  auto b = crashing.TrainFaeWithPlan(dataset, split, cfg, *plan);
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_TRUE(b->interrupted);

  TrainOptions resume_opt = base_opt;
  resume_opt.checkpoint.path = path;
  resume_opt.checkpoint.resume = true;
  resume_opt.sharding = ShardingMode::kStatistical;
  auto model_c = MakeModel(schema, false, 999);
  Trainer resumed(model_c.get(), MakePaperServer(1), resume_opt);
  auto c = resumed.TrainFaeWithPlan(dataset, split, cfg, *plan);
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  EXPECT_TRUE(c->resumed);
  EXPECT_EQ(c->num_batches, a->num_batches);
  ASSERT_EQ(c->curve.size(), a->curve.size());
  for (size_t i = 0; i < a->curve.size(); ++i) {
    EXPECT_EQ(c->curve[i].train_loss, a->curve[i].train_loss);
    EXPECT_EQ(c->curve[i].test_loss, a->curve[i].test_loss);
  }
  EXPECT_DOUBLE_EQ(c->final_test_loss, a->final_test_loss);
  EXPECT_GE(c->sharding_imbalance, 1.0);  // the resumed run did shard
  (void)RemoveFile(path);
}

}  // namespace
}  // namespace fae
