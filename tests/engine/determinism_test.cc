#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "engine/trainer.h"
#include "models/factory.h"

namespace fae {
namespace {

struct Fixture {
  Fixture()
      : schema(MakeKaggleLikeSchema(DatasetScale::kTiny)),
        dataset(SyntheticGenerator(schema, {.seed = 13}).Generate(3000)),
        split(dataset.MakeSplit(0.1)) {}

  static TrainOptions Options() {
    TrainOptions opt;
    opt.per_gpu_batch = 64;
    opt.epochs = 1;
    opt.run_math = true;
    opt.eval_samples = 256;
    return opt;
  }

  static FaeConfig Config() {
    FaeConfig cfg;
    cfg.sample_rate = 0.25;
    cfg.gpu_memory_budget = 384ULL << 10;
    cfg.large_table_bytes = 1ULL << 12;
    cfg.num_threads = 2;
    return cfg;
  }

  DatasetSchema schema;
  Dataset dataset;
  Dataset::Split split;
};

TEST(DeterminismTest, BaselineIsBitReproducible) {
  Fixture f;
  TrainReport a;
  TrainReport b;
  for (TrainReport* out : {&a, &b}) {
    auto model = MakeModel(f.schema, false, 5);
    Trainer trainer(model.get(), MakePaperServer(2), Fixture::Options());
    *out = trainer.TrainBaseline(f.dataset, f.split);
  }
  EXPECT_EQ(a.final_test_loss, b.final_test_loss);
  EXPECT_EQ(a.final_train_loss, b.final_train_loss);
  EXPECT_EQ(a.modeled_seconds, b.modeled_seconds);
  ASSERT_EQ(a.curve.size(), b.curve.size());
  for (size_t i = 0; i < a.curve.size(); ++i) {
    EXPECT_EQ(a.curve[i].train_loss, b.curve[i].train_loss);
    EXPECT_EQ(a.curve[i].test_loss, b.curve[i].test_loss);
  }
}

TEST(DeterminismTest, FaeIsBitReproducible) {
  Fixture f;
  TrainReport a;
  TrainReport b;
  for (TrainReport* out : {&a, &b}) {
    auto model = MakeModel(f.schema, false, 5);
    Trainer trainer(model.get(), MakePaperServer(2), Fixture::Options());
    auto report = trainer.TrainFae(f.dataset, f.split, Fixture::Config());
    ASSERT_TRUE(report.ok());
    *out = std::move(report).value();
  }
  EXPECT_EQ(a.final_test_loss, b.final_test_loss);
  EXPECT_EQ(a.threshold, b.threshold);
  EXPECT_EQ(a.hot_fraction, b.hot_fraction);
  EXPECT_EQ(a.transitions, b.transitions);
  EXPECT_EQ(a.modeled_seconds, b.modeled_seconds);
}

TEST(DeterminismTest, ThreadCountDoesNotChangeResults) {
  // The kernel layer's determinism contract: every kernel partitions work
  // write-disjointly and keeps per-element summation order fixed, so a run
  // with 4 worker threads is bit-identical to a serial run — final losses,
  // the whole learning curve, and every embedding table value.
  Fixture f;
  TrainReport a;
  TrainReport b;
  std::vector<std::vector<float>> tables_a;
  std::vector<std::vector<float>> tables_b;
  TrainOptions opt = Fixture::Options();
  opt.epochs = 2;
  for (size_t threads : {size_t{1}, size_t{4}}) {
    opt.num_threads = threads;
    auto model = MakeModel(f.schema, false, 5);
    Trainer trainer(model.get(), MakePaperServer(2), opt);
    TrainReport& out = threads == 1 ? a : b;
    auto& tables = threads == 1 ? tables_a : tables_b;
    out = trainer.TrainBaseline(f.dataset, f.split);
    for (const EmbeddingTable& t : model->tables()) {
      tables.push_back(t.raw());
    }
  }
  EXPECT_EQ(a.final_train_loss, b.final_train_loss);
  EXPECT_EQ(a.final_test_loss, b.final_test_loss);
  EXPECT_EQ(a.final_test_auc, b.final_test_auc);
  ASSERT_EQ(a.curve.size(), b.curve.size());
  for (size_t i = 0; i < a.curve.size(); ++i) {
    EXPECT_EQ(a.curve[i].train_loss, b.curve[i].train_loss);
    EXPECT_EQ(a.curve[i].test_loss, b.curve[i].test_loss);
  }
  ASSERT_EQ(tables_a.size(), tables_b.size());
  for (size_t t = 0; t < tables_a.size(); ++t) {
    // Exact float equality, element by element: the contract is bit-level.
    EXPECT_EQ(tables_a[t], tables_b[t]) << "table " << t;
  }
}

TEST(DeterminismTest, FaeThreadCountDoesNotChangeResults) {
  Fixture f;
  TrainReport a;
  TrainReport b;
  TrainOptions opt = Fixture::Options();
  for (size_t threads : {size_t{1}, size_t{4}}) {
    opt.num_threads = threads;
    auto model = MakeModel(f.schema, false, 5);
    Trainer trainer(model.get(), MakePaperServer(2), opt);
    auto report = trainer.TrainFae(f.dataset, f.split, Fixture::Config());
    ASSERT_TRUE(report.ok());
    (threads == 1 ? a : b) = std::move(report).value();
  }
  EXPECT_EQ(a.final_train_loss, b.final_train_loss);
  EXPECT_EQ(a.final_test_loss, b.final_test_loss);
  EXPECT_EQ(a.transitions, b.transitions);
}

TEST(DeterminismTest, DifferentSeedsGiveDifferentTrajectories) {
  Fixture f;
  TrainOptions opt1 = Fixture::Options();
  TrainOptions opt2 = Fixture::Options();
  opt2.seed = opt1.seed + 1;  // different batch order
  auto m1 = MakeModel(f.schema, false, 5);
  Trainer t1(m1.get(), MakePaperServer(1), opt1);
  TrainReport a = t1.TrainBaseline(f.dataset, f.split);
  auto m2 = MakeModel(f.schema, false, 5);
  Trainer t2(m2.get(), MakePaperServer(1), opt2);
  TrainReport b = t2.TrainBaseline(f.dataset, f.split);
  EXPECT_NE(a.final_train_loss, b.final_train_loss);
}

TEST(DeterminismTest, DifferentModelSeedsGiveDifferentModels) {
  Fixture f;
  auto m1 = MakeModel(f.schema, false, 5);
  auto m2 = MakeModel(f.schema, false, 6);
  MiniBatch batch = AssembleBatch(f.dataset, {0, 1, 2, 3});
  Tensor l1 = m1->EvalLogits(batch);
  Tensor l2 = m2->EvalLogits(batch);
  EXPECT_GT(MaxAbsDiff(l1, l2), 0.0f);
}

TEST(DeterminismTest, CostOnlyTimelineIndependentOfMathMode) {
  // The modeled time must not depend on whether math ran (work units are
  // derived from batch contents alone).
  Fixture f;
  TrainOptions with_math = Fixture::Options();
  TrainOptions without_math = Fixture::Options();
  without_math.run_math = false;
  auto m1 = MakeModel(f.schema, false, 5);
  Trainer t1(m1.get(), MakePaperServer(2), with_math);
  TrainReport a = t1.TrainBaseline(f.dataset, f.split);
  auto m2 = MakeModel(f.schema, false, 5);
  Trainer t2(m2.get(), MakePaperServer(2), without_math);
  TrainReport b = t2.TrainBaseline(f.dataset, f.split);
  EXPECT_EQ(a.modeled_seconds, b.modeled_seconds);
  EXPECT_EQ(a.timeline.pcie_bytes(), b.timeline.pcie_bytes());
}

}  // namespace
}  // namespace fae
