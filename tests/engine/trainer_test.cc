#include "engine/trainer.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "models/factory.h"

namespace fae {
namespace {

struct Fixture {
  explicit Fixture(WorkloadKind kind = WorkloadKind::kKaggleDlrm)
      : schema(MakeSchema(kind, DatasetScale::kTiny)),
        dataset(SyntheticGenerator(schema, {.seed = 71}).Generate(2400)),
        split(dataset.MakeSplit(0.15)) {}

  std::unique_ptr<RecModel> NewModel(uint64_t seed = 5) const {
    return MakeModel(schema, /*full_size=*/false, seed);
  }

  static TrainOptions Options(bool run_math = true) {
    TrainOptions opt;
    opt.per_gpu_batch = 64;
    opt.epochs = 1;
    opt.run_math = run_math;
    opt.eval_samples = 256;
    opt.eval_batch = 128;
    opt.evals_per_epoch = 5;
    return opt;
  }

  static FaeConfig Config() {
    FaeConfig cfg;
    cfg.sample_rate = 0.3;
    cfg.gpu_memory_budget = 8ULL << 20;
    cfg.large_table_bytes = 1ULL << 12;  // tiny scale: keep hot/cold real
    cfg.num_threads = 2;
    return cfg;
  }

  DatasetSchema schema;
  Dataset dataset;
  Dataset::Split split;
};

TEST(TrainerTest, BaselineLearns) {
  Fixture f;
  auto model = f.NewModel();
  TrainOptions opt = Fixture::Options();
  opt.epochs = 2;
  Trainer trainer(model.get(), MakePaperServer(1), opt);
  TrainReport report = trainer.TrainBaseline(f.dataset, f.split);
  EXPECT_GT(report.num_batches, 0u);
  ASSERT_GE(report.curve.size(), 2u);
  EXPECT_LT(report.curve.back().train_loss, report.curve.front().train_loss);
  EXPECT_GT(report.final_test_acc, 0.5);
  EXPECT_GT(report.modeled_seconds, 0.0);
}

TEST(TrainerTest, BaselineTimelineHasExpectedPhases) {
  Fixture f;
  auto model = f.NewModel();
  Trainer trainer(model.get(), MakePaperServer(2), Fixture::Options(false));
  TrainReport report = trainer.TrainBaseline(f.dataset, f.split);
  const Timeline& tl = report.timeline;
  EXPECT_GT(tl.seconds(Phase::kEmbeddingForward), 0.0);
  EXPECT_GT(tl.seconds(Phase::kCpuGpuTransfer), 0.0);
  EXPECT_GT(tl.seconds(Phase::kOptimizerSparse), 0.0);
  EXPECT_GT(tl.seconds(Phase::kAllReduce), 0.0);
  EXPECT_EQ(tl.seconds(Phase::kEmbeddingSync), 0.0);
  EXPECT_GT(tl.pcie_bytes(), 0u);
}

TEST(TrainerTest, FaeRunsAndIsFasterThanBaseline) {
  Fixture f;
  auto baseline_model = f.NewModel();
  Trainer baseline(baseline_model.get(), MakePaperServer(4),
                   Fixture::Options(false));
  TrainReport base = baseline.TrainBaseline(f.dataset, f.split);

  auto fae_model = f.NewModel();
  Trainer fae(fae_model.get(), MakePaperServer(4), Fixture::Options(false));
  auto report = fae.TrainFae(f.dataset, f.split, Fixture::Config());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->hot_fraction, 0.2);
  EXPECT_GT(report->hot_batches, 0u);
  EXPECT_GT(report->transitions, 0u);
  EXPECT_GT(report->timeline.seconds(Phase::kEmbeddingSync), 0.0);
  // The headline claim: FAE beats the hybrid baseline.
  EXPECT_LT(report->modeled_seconds, base.modeled_seconds);
}

TEST(TrainerTest, FaeMatchesBaselineAccuracy) {
  // Paper Fig 12 / Table III: FAE reaches baseline accuracy.
  Fixture f;
  TrainOptions opt = Fixture::Options();
  opt.epochs = 2;

  auto baseline_model = f.NewModel(5);
  Trainer baseline(baseline_model.get(), MakePaperServer(1), opt);
  TrainReport base = baseline.TrainBaseline(f.dataset, f.split);

  auto fae_model = f.NewModel(5);
  Trainer fae(fae_model.get(), MakePaperServer(1), opt);
  auto report = fae.TrainFae(f.dataset, f.split, Fixture::Config());
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  EXPECT_GT(report->final_test_acc, 0.5);
  EXPECT_NEAR(report->final_test_acc, base.final_test_acc, 0.06);
}

TEST(TrainerTest, FaeOnTbsmWorkload) {
  Fixture f(WorkloadKind::kTaobaoTbsm);
  auto model = f.NewModel();
  Trainer trainer(model.get(), MakePaperServer(2), Fixture::Options());
  auto report = trainer.TrainFae(f.dataset, f.split, Fixture::Config());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->num_batches, 0u);
  EXPECT_GT(report->final_test_acc, 0.4);
}

TEST(TrainerTest, WeakScalingReducesModeledTime) {
  // Paper Fig 13: with weak scaling, more GPUs lower the per-epoch time
  // (same total inputs, bigger global batches).
  Fixture f;
  double prev = 1e18;
  for (int gpus : {1, 2, 4}) {
    auto model = f.NewModel();
    Trainer trainer(model.get(), MakePaperServer(gpus),
                    Fixture::Options(false));
    TrainReport report = trainer.TrainBaseline(f.dataset, f.split);
    EXPECT_LT(report.modeled_seconds, prev) << gpus << " GPUs";
    prev = report.modeled_seconds;
  }
}

TEST(TrainerTest, FaeBeatsBaselineAtEveryGpuCount) {
  // Paper Fig 13 / Table IV: FAE wins at 1, 2, and 4 GPUs. (Per-dataset
  // speedup is not monotone in GPU count even in the paper — Kaggle's
  // Table IV row gives 2.0x, 1.68x, 1.92x — so only the win is asserted.)
  Fixture f;
  for (int gpus : {1, 2, 4}) {
    auto bm = f.NewModel();
    Trainer bt(bm.get(), MakePaperServer(gpus), Fixture::Options(false));
    const double base = bt.TrainBaseline(f.dataset, f.split).modeled_seconds;
    auto fm = f.NewModel();
    Trainer ft(fm.get(), MakePaperServer(gpus), Fixture::Options(false));
    auto fr = ft.TrainFae(f.dataset, f.split, Fixture::Config());
    ASSERT_TRUE(fr.ok());
    EXPECT_GT(base / fr->modeled_seconds, 1.1) << gpus << " GPUs";
  }
}

TEST(TrainerTest, FaeReducesPcieTrafficAndPower) {
  // Paper Table VI: 5-9% lower per-GPU power, attributed to reduced
  // CPU-GPU communication. The effect needs enough mini-batches per
  // schedule chunk to amortize the hot-slice syncs (as in the paper's
  // multi-million-input runs), so this test uses a larger input count
  // than the other fixtures.
  DatasetSchema schema = MakeSchema(WorkloadKind::kKaggleDlrm,
                                    DatasetScale::kTiny);
  Dataset dataset =
      SyntheticGenerator(schema, {.seed = 77}).Generate(20000);
  Dataset::Split split = dataset.MakeSplit(0.1);
  TrainOptions opt = Fixture::Options(false);
  opt.per_gpu_batch = 32;

  auto bm = MakeModel(schema, false, 5);
  Trainer bt(bm.get(), MakePaperServer(4), opt);
  TrainReport base = bt.TrainBaseline(dataset, split);
  auto fm = MakeModel(schema, false, 5);
  Trainer ft(fm.get(), MakePaperServer(4), opt);
  auto fae = ft.TrainFae(dataset, split, Fixture::Config());
  ASSERT_TRUE(fae.ok());
  EXPECT_GT(fae->hot_fraction, 0.5);
  EXPECT_LT(fae->timeline.pcie_bytes(), base.timeline.pcie_bytes());
  EXPECT_LT(fae->avg_gpu_watts, base.avg_gpu_watts);
}

TEST(TrainerTest, NvOptRunsAndBeatsBaselineWhenTablesFit) {
  Fixture f;
  auto bm = f.NewModel();
  Trainer bt(bm.get(), MakePaperServer(1), Fixture::Options(false));
  TrainReport base = bt.TrainBaseline(f.dataset, f.split);
  auto nm = f.NewModel();
  Trainer nt(nm.get(), MakePaperServer(1), Fixture::Options(false));
  TrainReport nv = nt.TrainNvOpt(f.dataset, f.split);
  EXPECT_GT(nv.modeled_seconds, 0.0);
  EXPECT_LT(nv.modeled_seconds, base.modeled_seconds);
}

TEST(TrainerTest, CostOnlyModeSkipsMath) {
  Fixture f;
  auto model = f.NewModel();
  Trainer trainer(model.get(), MakePaperServer(1), Fixture::Options(false));
  TrainReport report = trainer.TrainBaseline(f.dataset, f.split);
  EXPECT_TRUE(report.curve.empty());
  EXPECT_EQ(report.final_test_acc, 0.0);
  EXPECT_GT(report.modeled_seconds, 0.0);
}

TEST(TrainerTest, FaePlanOverBudgetRejected) {
  Fixture f;
  FaeConfig cfg = Fixture::Config();
  FaePipeline pipeline(cfg);
  auto plan = pipeline.Prepare(f.dataset, f.split.train);
  ASSERT_TRUE(plan.ok());
  auto model = f.NewModel();
  SystemSpec sys = MakePaperServer(1);
  sys.hot_embedding_budget = 1;  // nothing fits
  TrainOptions opts = Fixture::Options(false);
  opts.degrade_on_overflow = false;  // opt into hard failure
  Trainer trainer(model.get(), sys, opts);
  auto report = trainer.TrainFaeWithPlan(f.dataset, f.split, cfg, *plan);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kResourceExhausted);
}

TEST(TrainerTest, MetricsEvaluateCountsCorrectly) {
  Fixture f;
  auto model = f.NewModel();
  std::vector<uint64_t> ids = {0, 1, 2, 3, 4, 5, 6, 7};
  auto batches = AssembleBatches(f.dataset, ids, 3, false);
  EvalResult r = Evaluate(*model, batches);
  EXPECT_EQ(r.samples, 8u);
  EXPECT_GE(r.accuracy, 0.0);
  EXPECT_LE(r.accuracy, 1.0);
  EXPECT_GT(r.loss, 0.0);
}

TEST(TrainerTest, RunningMetricFlushes) {
  RunningMetric m;
  m.Observe(1.0, 5, 10);
  m.Observe(3.0, 5, 10);
  EXPECT_DOUBLE_EQ(m.mean_loss(), 2.0);
  EXPECT_DOUBLE_EQ(m.accuracy(), 0.5);
  CurvePoint p = m.Flush(42);
  EXPECT_EQ(p.iteration, 42u);
  EXPECT_DOUBLE_EQ(p.train_loss, 2.0);
  EXPECT_EQ(m.samples(), 0u);
}

}  // namespace
}  // namespace fae
