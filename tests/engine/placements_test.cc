#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "engine/trainer.h"
#include "models/factory.h"
#include "util/half.h"

namespace fae {
namespace {

struct Fixture {
  Fixture()
      : schema(MakeKaggleLikeSchema(DatasetScale::kTiny)),
        dataset(SyntheticGenerator(schema, {.seed = 81}).Generate(6000)),
        split(dataset.MakeSplit(0.1)) {}

  std::unique_ptr<RecModel> NewModel(uint64_t seed = 5) const {
    return MakeModel(schema, /*full_size=*/false, seed);
  }

  static TrainOptions Options(bool run_math) {
    TrainOptions opt;
    opt.per_gpu_batch = 64;
    opt.epochs = 1;
    opt.run_math = run_math;
    opt.eval_samples = 256;
    return opt;
  }

  static FaeConfig Config() {
    FaeConfig cfg;
    cfg.sample_rate = 0.25;
    cfg.gpu_memory_budget = 384ULL << 10;
    cfg.large_table_bytes = 1ULL << 12;
    cfg.num_threads = 2;
    return cfg;
  }

  FaePlan Plan() const {
    FaePipeline pipeline(Config());
    auto plan = pipeline.Prepare(dataset, split.train);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    return std::move(plan).value();
  }

  DatasetSchema schema;
  Dataset dataset;
  Dataset::Split split;
};

TEST(DirtySyncTest, NumericallyIdenticalToFullSync) {
  // Dirty-row sync ships a subset of rows, but the subset is exactly the
  // rows that changed — training must be bit-identical.
  Fixture f;
  FaePlan plan = f.Plan();

  TrainOptions full_opt = Fixture::Options(true);
  full_opt.sync_strategy = SyncStrategy::kFull;
  auto full_model = f.NewModel(9);
  Trainer full_trainer(full_model.get(), MakePaperServer(2), full_opt);
  auto full = full_trainer.TrainFaeWithPlan(f.dataset, f.split,
                                            Fixture::Config(), plan);
  ASSERT_TRUE(full.ok());

  TrainOptions dirty_opt = Fixture::Options(true);
  dirty_opt.sync_strategy = SyncStrategy::kDirty;
  auto dirty_model = f.NewModel(9);
  Trainer dirty_trainer(dirty_model.get(), MakePaperServer(2), dirty_opt);
  auto dirty = dirty_trainer.TrainFaeWithPlan(f.dataset, f.split,
                                              Fixture::Config(), plan);
  ASSERT_TRUE(dirty.ok());

  EXPECT_DOUBLE_EQ(full->final_test_loss, dirty->final_test_loss);
  EXPECT_DOUBLE_EQ(full->final_test_acc, dirty->final_test_acc);
  ASSERT_EQ(full->curve.size(), dirty->curve.size());
  for (size_t i = 0; i < full->curve.size(); ++i) {
    EXPECT_DOUBLE_EQ(full->curve[i].train_loss, dirty->curve[i].train_loss);
    EXPECT_DOUBLE_EQ(full->curve[i].test_loss, dirty->curve[i].test_loss);
  }
}

TEST(DirtySyncTest, ShipsFewerBytesAndLessSyncTime) {
  Fixture f;
  FaePlan plan = f.Plan();

  TrainOptions full_opt = Fixture::Options(false);
  full_opt.sync_strategy = SyncStrategy::kFull;
  auto m1 = f.NewModel();
  Trainer t1(m1.get(), MakePaperServer(2), full_opt);
  auto full = t1.TrainFaeWithPlan(f.dataset, f.split, Fixture::Config(), plan);
  ASSERT_TRUE(full.ok());

  TrainOptions dirty_opt = Fixture::Options(false);
  dirty_opt.sync_strategy = SyncStrategy::kDirty;
  auto m2 = f.NewModel();
  Trainer t2(m2.get(), MakePaperServer(2), dirty_opt);
  auto dirty =
      t2.TrainFaeWithPlan(f.dataset, f.split, Fixture::Config(), plan);
  ASSERT_TRUE(dirty.ok());

  EXPECT_LT(dirty->sync_bytes, full->sync_bytes);
  EXPECT_LE(dirty->timeline.seconds(Phase::kEmbeddingSync),
            full->timeline.seconds(Phase::kEmbeddingSync));
  EXPECT_LE(dirty->modeled_seconds, full->modeled_seconds);
}

TEST(DirtySyncTest, FirstReplicationIsAlwaysFull) {
  Fixture f;
  FaePlan plan = f.Plan();
  TrainOptions opt = Fixture::Options(false);
  opt.sync_strategy = SyncStrategy::kDirty;
  auto model = f.NewModel();
  Trainer trainer(model.get(), MakePaperServer(1), opt);
  auto report = trainer.TrainFaeWithPlan(f.dataset, f.split,
                                         Fixture::Config(), plan);
  ASSERT_TRUE(report.ok());
  // The zero-filled replicas must receive the whole slice once.
  EXPECT_GE(report->sync_bytes, plan.hot_bytes);
}

TEST(ModelParallelTest, RunsAndChargesNvlinkNotPcie) {
  Fixture f;
  auto model = f.NewModel();
  Trainer trainer(model.get(), MakePaperServer(4), Fixture::Options(false));
  auto report = trainer.TrainModelParallel(f.dataset, f.split);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->mode, TrainMode::kModelParallel);
  EXPECT_EQ(report->timeline.pcie_bytes(), 0u);
  EXPECT_GT(report->timeline.nvlink_bytes(), 0u);
  EXPECT_EQ(report->timeline.cpu_busy_seconds(), 0.0);
}

TEST(ModelParallelTest, RejectsOversizedShards) {
  Fixture f;
  auto model = f.NewModel();
  SystemSpec sys = MakePaperServer(2);
  sys.gpu.mem_capacity = 1 << 10;  // 1 KB GPU: nothing fits
  Trainer trainer(model.get(), sys, Fixture::Options(false));
  auto report = trainer.TrainModelParallel(f.dataset, f.split);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kResourceExhausted);
}

TEST(ModelParallelTest, MathMatchesBaseline) {
  // Placement does not change the math: identical final metrics for the
  // same seed and batch order.
  Fixture f;
  auto m1 = f.NewModel(3);
  Trainer t1(m1.get(), MakePaperServer(2), Fixture::Options(true));
  TrainReport base = t1.TrainBaseline(f.dataset, f.split);
  auto m2 = f.NewModel(3);
  Trainer t2(m2.get(), MakePaperServer(2), Fixture::Options(true));
  auto mp = t2.TrainModelParallel(f.dataset, f.split);
  ASSERT_TRUE(mp.ok());
  EXPECT_DOUBLE_EQ(base.final_test_loss, mp->final_test_loss);
  EXPECT_DOUBLE_EQ(base.final_test_acc, mp->final_test_acc);
}

TEST(GpuCacheTest, BeatsBaselineAndStaysStalledByMisses) {
  // Same cache budget as FAE's hot slice, but unorganized batches. The
  // cache beats the baseline (most traffic served on-GPU) yet keeps
  // paying a host round trip on nearly every batch (the paper's Fig 4:
  // P(all-hot batch) ~ 0), visible as per-batch PCIe transfer time that
  // FAE's hot batches avoid entirely. Which of FAE/cache wins overall
  // depends on the hot-input fraction — bench/abl_placements.cc maps the
  // crossover; here we assert the structural properties only.
  Fixture f;
  FaePlan plan = f.Plan();

  auto bm = f.NewModel();
  Trainer bt(bm.get(), MakePaperServer(4), Fixture::Options(false));
  TrainReport base = bt.TrainBaseline(f.dataset, f.split);

  auto cm = f.NewModel();
  Trainer ct(cm.get(), MakePaperServer(4), Fixture::Options(false));
  TrainReport cache = ct.TrainGpuCache(f.dataset, f.split, plan);
  EXPECT_EQ(cache.mode, TrainMode::kGpuCache);

  auto fm = f.NewModel();
  Trainer ft(fm.get(), MakePaperServer(4), Fixture::Options(false));
  auto fae = ft.TrainFaeWithPlan(f.dataset, f.split, Fixture::Config(), plan);
  ASSERT_TRUE(fae.ok());

  EXPECT_LT(cache.modeled_seconds, base.modeled_seconds);
  // Every cache batch carries misses -> host transfers on the critical
  // path; FAE confines transfers to cold batches and syncs.
  EXPECT_GT(cache.timeline.seconds(Phase::kCpuGpuTransfer), 0.0);
  EXPECT_LT(fae->timeline.pcie_bytes(), cache.timeline.pcie_bytes() +
                                            base.timeline.pcie_bytes());
}

TEST(GpuCacheTest, MathMatchesBaseline) {
  Fixture f;
  FaePlan plan = f.Plan();
  auto m1 = f.NewModel(3);
  Trainer t1(m1.get(), MakePaperServer(1), Fixture::Options(true));
  TrainReport base = t1.TrainBaseline(f.dataset, f.split);
  auto m2 = f.NewModel(3);
  Trainer t2(m2.get(), MakePaperServer(1), Fixture::Options(true));
  TrainReport cache = t2.TrainGpuCache(f.dataset, f.split, plan);
  EXPECT_DOUBLE_EQ(base.final_test_loss, cache.final_test_loss);
  EXPECT_DOUBLE_EQ(base.final_test_acc, cache.final_test_acc);
}

TEST(PipelinedTest, FaeStillWinsAgainstPipelinedBaseline) {
  Fixture f;
  TrainOptions opt = Fixture::Options(false);
  opt.pipelined_baseline = true;
  FaePlan plan = f.Plan();

  auto bm = f.NewModel();
  Trainer bt(bm.get(), MakePaperServer(4), opt);
  TrainReport piped = bt.TrainBaseline(f.dataset, f.split);

  auto sm = f.NewModel();
  Trainer st(sm.get(), MakePaperServer(4), Fixture::Options(false));
  TrainReport serial = st.TrainBaseline(f.dataset, f.split);
  EXPECT_LT(piped.modeled_seconds, serial.modeled_seconds);

  auto fm = f.NewModel();
  Trainer ft(fm.get(), MakePaperServer(4), opt);
  auto fae = ft.TrainFaeWithPlan(f.dataset, f.split, Fixture::Config(), plan);
  ASSERT_TRUE(fae.ok());
  EXPECT_LT(fae->modeled_seconds, piped.modeled_seconds);
}

TEST(Fp16EmbeddingsTest, QuantizesTouchedRowsAndKeepsAccuracy) {
  Fixture f;
  TrainOptions opt = Fixture::Options(true);
  opt.fp16_embeddings = true;
  auto fp16_model = f.NewModel(5);
  Trainer fp16_trainer(fp16_model.get(), MakePaperServer(1), opt);
  TrainReport fp16 = fp16_trainer.TrainBaseline(f.dataset, f.split);

  auto fp32_model = f.NewModel(5);
  Trainer fp32_trainer(fp32_model.get(), MakePaperServer(1),
                       Fixture::Options(true));
  TrainReport fp32 = fp32_trainer.TrainBaseline(f.dataset, f.split);

  // Every trained table value must be exactly representable in binary16.
  for (const EmbeddingTable& table : fp16_model->tables()) {
    for (size_t i = 0; i < std::min<size_t>(table.raw().size(), 4096); ++i) {
      const float v = table.raw()[i];
      EXPECT_EQ(v, QuantizeToHalf(v));
    }
  }
  // And the paper's revalidation: accuracy within noise of fp32.
  EXPECT_NEAR(fp16.final_test_acc, fp32.final_test_acc, 0.05);
}

TEST(TrainModeTest, NamesAreStable) {
  EXPECT_EQ(TrainModeName(TrainMode::kModelParallel), "model-parallel");
  EXPECT_EQ(TrainModeName(TrainMode::kGpuCache), "gpu-cache");
}

}  // namespace
}  // namespace fae
