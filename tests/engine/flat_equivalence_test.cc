// Bit-exactness of the flat SoA data path against the legacy copying
// assembly: stepping a model with zero-copy BatchViews into a gathered
// FlatDataset must produce exactly the losses, table values, and eval
// metrics the AssembleBatches MiniBatch path produces — and crash-safe
// resume must stay exact on the sequential (TBSM) workload too.

#include <filesystem>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "data/batch_view.h"
#include "data/minibatch.h"
#include "data/synthetic.h"
#include "engine/metrics.h"
#include "engine/trainer.h"
#include "models/factory.h"
#include "tensor/sgd.h"
#include "embedding/sparse_sgd.h"

namespace fae {
namespace {

std::vector<uint64_t> Iota(size_t n) {
  std::vector<uint64_t> ids(n);
  for (size_t i = 0; i < n; ++i) ids[i] = i;
  return ids;
}

void ExpectSameTables(const RecModel& a, const RecModel& b) {
  ASSERT_EQ(a.tables().size(), b.tables().size());
  for (size_t t = 0; t < a.tables().size(); ++t) {
    const std::vector<float>& ra = a.tables()[t].raw();
    const std::vector<float>& rb = b.tables()[t].raw();
    ASSERT_EQ(ra.size(), rb.size());
    for (size_t k = 0; k < ra.size(); ++k) {
      ASSERT_EQ(ra[k], rb[k]) << "table " << t << " element " << k;
    }
  }
}

/// Trains one model through legacy MiniBatches and a twin through flat
/// views of the same sample order; every per-step loss and the final table
/// contents must agree bit for bit.
void RunEquivalence(WorkloadKind kind) {
  const DatasetSchema schema = MakeSchema(kind, DatasetScale::kTiny);
  const Dataset dataset = SyntheticGenerator(schema, {.seed = 23}).Generate(96);
  const std::vector<uint64_t> ids = Iota(96);

  std::unique_ptr<RecModel> legacy =
      MakeModel(schema, /*full_size=*/false, /*seed=*/9);
  std::unique_ptr<RecModel> flat =
      MakeModel(schema, /*full_size=*/false, /*seed=*/9);

  const std::vector<MiniBatch> batches =
      AssembleBatches(dataset, ids, /*batch_size=*/16, /*hot=*/false);
  const FlatDataset gathered = dataset.flat().Gather(ids);
  const std::vector<BatchView> views =
      MakeBatchViews(gathered, /*batch_size=*/16, /*hot=*/false);
  ASSERT_EQ(batches.size(), views.size());

  Sgd legacy_dense(0.1f), flat_dense(0.1f);
  SparseSgd legacy_sparse(0.1f), flat_sparse(0.1f);
  for (size_t b = 0; b < batches.size(); ++b) {
    StepResult sl = legacy->ForwardBackward(batches[b]);
    legacy_dense.Step(legacy->DenseParams());
    for (size_t t = 0; t < sl.table_grads.size(); ++t) {
      if (!sl.table_grads[t].empty()) {
        legacy_sparse.Step(legacy->tables()[t], sl.table_grads[t]);
      }
    }
    StepResult sf = flat->ForwardBackward(views[b]);
    flat_dense.Step(flat->DenseParams());
    for (size_t t = 0; t < sf.table_grads.size(); ++t) {
      if (!sf.table_grads[t].empty()) {
        flat_sparse.Step(flat->tables()[t], sf.table_grads[t]);
      }
    }
    ASSERT_EQ(sl.loss, sf.loss) << "batch " << b;
    ASSERT_EQ(sl.correct, sf.correct) << "batch " << b;
  }
  ExpectSameTables(*legacy, *flat);

  // Eval: the BatchView overload must agree with the MiniBatch one.
  const EvalResult el = Evaluate(*legacy, batches);
  const EvalResult ef = Evaluate(*flat, views);
  EXPECT_EQ(el.loss, ef.loss);
  EXPECT_EQ(el.accuracy, ef.accuracy);
  EXPECT_EQ(el.auc, ef.auc);
}

TEST(FlatEquivalenceTest, DlrmLegacyAndFlatPathsBitExact) {
  RunEquivalence(WorkloadKind::kKaggleDlrm);
}

TEST(FlatEquivalenceTest, TbsmLegacyAndFlatPathsBitExact) {
  RunEquivalence(WorkloadKind::kTaobaoTbsm);
}

/// The fused step (what the trainer actually runs) must match the
/// materialized two-pass step bit for bit on flat views.
TEST(FlatEquivalenceTest, FusedStepMatchesMaterializedOnViews) {
  const DatasetSchema schema =
      MakeSchema(WorkloadKind::kKaggleDlrm, DatasetScale::kTiny);
  const Dataset dataset = SyntheticGenerator(schema, {.seed = 29}).Generate(64);
  const FlatDataset gathered = dataset.flat().Gather(Iota(64));
  const std::vector<BatchView> views =
      MakeBatchViews(gathered, /*batch_size=*/16, /*hot=*/false);

  std::unique_ptr<RecModel> fused =
      MakeModel(schema, /*full_size=*/false, /*seed=*/3);
  std::unique_ptr<RecModel> materialized =
      MakeModel(schema, /*full_size=*/false, /*seed=*/3);

  Sgd dense_a(0.1f), dense_b(0.1f);
  SparseSgd sparse_a(0.1f), sparse_b(0.1f);
  for (const BatchView& view : views) {
    std::vector<EmbeddingTable*> ta, tb;
    for (EmbeddingTable& t : fused->tables()) ta.push_back(&t);
    for (EmbeddingTable& t : materialized->tables()) tb.push_back(&t);

    const SparseApplyFn apply = [&](size_t t, const Tensor& grad_out,
                                    std::span<const uint32_t> indices,
                                    std::span<const uint32_t> offsets) {
      sparse_a.FusedBackwardStep(*ta[t], grad_out, indices, offsets, nullptr);
    };
    StepResult sa = fused->ForwardBackwardFusedOn(view, ta, apply);
    dense_a.Step(fused->DenseParams());
    for (size_t t = 0; t < sa.table_grads.size(); ++t) {
      if (!sa.table_grads[t].empty()) {
        sparse_a.Step(*ta[t], sa.table_grads[t]);
      }
    }

    StepResult sb = materialized->ForwardBackwardOn(view, tb);
    dense_b.Step(materialized->DenseParams());
    for (size_t t = 0; t < sb.table_grads.size(); ++t) {
      if (!sb.table_grads[t].empty()) {
        sparse_b.Step(*tb[t], sb.table_grads[t]);
      }
    }
    ASSERT_EQ(sa.loss, sb.loss);
  }
  ExpectSameTables(*fused, *materialized);
}

/// Crash-safe resume on the sequential workload: a run checkpointed and
/// resumed mid-epoch matches the uninterrupted run exactly (the DLRM
/// variant lives in checkpoint_test.cc; this pins the TBSM item-table
/// scatter path on the flat layout).
TEST(FlatEquivalenceTest, TbsmResumeReproducesRunExactly) {
  const DatasetSchema schema =
      MakeSchema(WorkloadKind::kTaobaoTbsm, DatasetScale::kTiny);
  const Dataset dataset =
      SyntheticGenerator(schema, {.seed = 31}).Generate(600);
  const Dataset::Split split = dataset.MakeSplit(0.2);
  const std::string path =
      (std::filesystem::temp_directory_path() / "fae_tbsm_flat_resume.ckpt")
          .string();

  TrainOptions opt;
  opt.per_gpu_batch = 32;
  opt.epochs = 2;
  opt.eval_samples = 64;
  opt.eval_batch = 32;
  opt.evals_per_epoch = 3;

  std::unique_ptr<RecModel> uninterrupted =
      MakeModel(schema, /*full_size=*/false, /*seed=*/5);
  Trainer full(uninterrupted.get(), MakePaperServer(1), opt);
  const TrainReport want = full.TrainBaseline(dataset, split);

  TrainOptions save_opt = opt;
  save_opt.checkpoint.path = path;
  save_opt.checkpoint.every_steps = 7;
  std::unique_ptr<RecModel> saver =
      MakeModel(schema, /*full_size=*/false, /*seed=*/5);
  Trainer save_run(saver.get(), MakePaperServer(1), save_opt);
  ASSERT_TRUE(save_run.TrainBaselineResumable(dataset, split).ok());

  TrainOptions resume_opt = opt;
  resume_opt.checkpoint.path = path;
  resume_opt.checkpoint.resume = true;
  std::unique_ptr<RecModel> resumer =
      MakeModel(schema, /*full_size=*/false, /*seed=*/99);  // overwritten
  Trainer resume_run(resumer.get(), MakePaperServer(1), resume_opt);
  StatusOr<TrainReport> got = resume_run.TrainBaselineResumable(dataset, split);
  ASSERT_TRUE(got.ok()) << got.status().ToString();

  EXPECT_EQ(got->final_train_loss, want.final_train_loss);
  EXPECT_EQ(got->final_test_loss, want.final_test_loss);
  EXPECT_EQ(got->final_test_auc, want.final_test_auc);
  ExpectSameTables(*uninterrupted, *resumer);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace fae
