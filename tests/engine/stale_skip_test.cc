#include "engine/staleness_tracker.h"

#include <cmath>
#include <cstring>
#include <filesystem>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "embedding/embedding_table.h"
#include "embedding/sparse_sgd.h"
#include "engine/checkpoint.h"
#include "engine/trainer.h"
#include "models/factory.h"
#include "tensor/tensor.h"
#include "util/file_io.h"
#include "util/random.h"

namespace fae {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

struct Fixture {
  Fixture()
      : schema(MakeSchema(WorkloadKind::kKaggleDlrm, DatasetScale::kTiny)),
        dataset(SyntheticGenerator(schema, {.seed = 71}).Generate(2400)),
        split(dataset.MakeSplit(0.15)) {}

  std::unique_ptr<RecModel> NewModel(uint64_t seed = 5) const {
    return MakeModel(schema, /*full_size=*/false, seed);
  }

  static TrainOptions Options() {
    TrainOptions opt;
    opt.per_gpu_batch = 64;
    opt.epochs = 2;
    opt.eval_samples = 256;
    opt.eval_batch = 128;
    opt.evals_per_epoch = 5;
    return opt;
  }

  /// The skip-active configuration the trainer tests share: aggressive
  /// enough to freeze rows in the tiny fixture, with the guard live.
  static TrainOptions StaleOptions(StaleSkipMode mode) {
    TrainOptions opt = Options();
    opt.stale_skip = mode;
    opt.stale_threshold = 0.5;
    opt.stale_min_visits = 2;
    return opt;
  }

  static FaeConfig Config() {
    FaeConfig cfg;
    cfg.sample_rate = 0.3;
    cfg.gpu_memory_budget = 8ULL << 20;
    cfg.large_table_bytes = 1ULL << 12;
    cfg.num_threads = 2;
    return cfg;
  }

  DatasetSchema schema;
  Dataset dataset;
  Dataset::Split split;
};

void ExpectSameCurve(const std::vector<CurvePoint>& a,
                     const std::vector<CurvePoint>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].iteration, b[i].iteration) << "point " << i;
    EXPECT_EQ(a[i].train_loss, b[i].train_loss) << "point " << i;
    EXPECT_EQ(a[i].train_acc, b[i].train_acc) << "point " << i;
    EXPECT_EQ(a[i].test_loss, b[i].test_loss) << "point " << i;
    EXPECT_EQ(a[i].test_acc, b[i].test_acc) << "point " << i;
  }
}

StalenessTracker::Options UnitOptions() {
  StalenessTracker::Options opt;
  opt.threshold = 0.5;
  opt.min_visits = 2;
  return opt;
}

/// One measured update with relative magnitude 1e-4 (far below 0.5).
void RecordTinyUpdate(StalenessTracker& t, uint64_t row) {
  t.RecordUpdate(0, row, /*lookups=*/1, /*update_sq=*/1e-8, /*row_sq=*/1.0);
}

// -- Tracker unit tests -------------------------------------------------------

TEST(StaleSkipTest, TrackerFreezesAfterMinVisitsAndForcesRevisits) {
  StalenessTracker t;
  t.Init({100}, UnitOptions());

  // Below min_visits every visit updates, however small the EMA.
  EXPECT_FALSE(t.BeginVisit(0, 7, 1));
  RecordTinyUpdate(t, 7);
  EXPECT_FALSE(t.IsFrozen(0, 7));
  EXPECT_FALSE(t.BeginVisit(0, 7, 1));
  RecordTinyUpdate(t, 7);

  // Two measured tiny updates at threshold 0.5: frozen from here on.
  EXPECT_TRUE(t.IsFrozen(0, 7));
  // 15 consecutive skips, then the revisit_period-th (16) visit is forced
  // to re-measure, then skipping resumes.
  for (int i = 0; i < 15; ++i) {
    EXPECT_TRUE(t.BeginVisit(0, 7, 1)) << "skip " << i;
  }
  EXPECT_FALSE(t.BeginVisit(0, 7, 1)) << "16th consecutive visit re-measures";
  RecordTinyUpdate(t, 7);
  EXPECT_TRUE(t.BeginVisit(0, 7, 1));

  // A row whose gradients resume moving thaws by itself: each forced
  // re-measure folds rel ~ 1.0 into the EMA (alpha per visit), and after a
  // few revisit periods the EMA climbs back over the threshold.
  for (int i = 0; i < 2; ++i) {
    EXPECT_FALSE(t.BeginVisit(0, 9, 1));
    RecordTinyUpdate(t, 9);
  }
  ASSERT_TRUE(t.IsFrozen(0, 9));
  int forced = 0;
  for (int visit = 0; visit < 200 && t.IsFrozen(0, 9); ++visit) {
    if (!t.BeginVisit(0, 9, 1)) {
      t.RecordUpdate(0, 9, 1, /*update_sq=*/1.0, /*row_sq=*/1.0);
      ++forced;
    }
  }
  EXPECT_FALSE(t.IsFrozen(0, 9));
  EXPECT_GE(forced, 2);  // thawing took more than one re-measure
  EXPECT_FALSE(t.BeginVisit(0, 9, 1));
  EXPECT_GT(t.total_reactivated_rows(), 0u);

  EXPECT_GT(t.total_skipped_rows(), 0u);
  EXPECT_GT(t.total_updated_rows(), 0u);
}

TEST(StaleSkipTest, TrackerStepCountersSplitLookups) {
  StalenessTracker t;
  t.Init({100}, UnitOptions());
  // Freeze row 1; row 2 stays live.
  for (int i = 0; i < 2; ++i) {
    EXPECT_FALSE(t.BeginVisit(0, 1, 1));
    RecordTinyUpdate(t, 1);
  }
  t.BeginStep();
  EXPECT_TRUE(t.BeginVisit(0, 1, 3));   // 3 pooled lookups, skipped
  EXPECT_FALSE(t.BeginVisit(0, 2, 5));  // 5 pooled lookups, live
  t.RecordUpdate(0, 2, /*lookups=*/5, 1e-8, 1.0);
  EXPECT_EQ(t.step_skipped_rows(), 1u);
  EXPECT_EQ(t.step_updated_rows(), 1u);
  EXPECT_EQ(t.step_skipped_lookups(), 3u);
  EXPECT_EQ(t.step_live_lookups(), 5u);
  t.BeginStep();
  EXPECT_EQ(t.step_skipped_rows(), 0u);
  EXPECT_EQ(t.step_live_lookups(), 0u);
}

TEST(StaleSkipTest, TrackerGuardTightensAndReactivatesOnLossRise) {
  StalenessTracker t;
  t.Init({100}, UnitOptions());
  for (int i = 0; i < 2; ++i) {
    EXPECT_FALSE(t.BeginVisit(0, 3, 1));
    RecordTinyUpdate(t, 3);
  }
  ASSERT_TRUE(t.IsFrozen(0, 3));

  t.OnTestLoss(1.0);  // first observation just seeds prev_loss
  EXPECT_EQ(t.guard_tightens(), 0u);
  t.OnTestLoss(1.5);  // regression: halve the threshold, thaw frozen rows
  EXPECT_EQ(t.guard_tightens(), 1u);
  EXPECT_DOUBLE_EQ(t.threshold(), 0.25);
  EXPECT_GT(t.total_reactivated_rows(), 0u);
  EXPECT_FALSE(t.IsFrozen(0, 3));
  // Re-activation resets the visit count: the row must re-earn min_visits
  // measured updates before it may freeze again.
  EXPECT_FALSE(t.BeginVisit(0, 3, 1));
  RecordTinyUpdate(t, 3);
  EXPECT_FALSE(t.BeginVisit(0, 3, 1));
}

TEST(StaleSkipTest, TrackerGuardWidensWithPatienceAndCaps) {
  StalenessTracker t;
  t.Init({100}, UnitOptions());
  t.OnTestLoss(1.0);
  // patience = 4 consecutive decreases double the threshold once.
  t.OnTestLoss(0.9);
  t.OnTestLoss(0.8);
  t.OnTestLoss(0.7);
  EXPECT_DOUBLE_EQ(t.threshold(), 0.5);
  t.OnTestLoss(0.6);
  EXPECT_EQ(t.guard_widens(), 1u);
  EXPECT_DOUBLE_EQ(t.threshold(), 1.0);
  // Keep decreasing: widening saturates at 8x the configured threshold.
  double loss = 0.6;
  for (int i = 0; i < 40; ++i) {
    loss *= 0.99;
    t.OnTestLoss(loss);
  }
  EXPECT_DOUBLE_EQ(t.threshold(), 4.0);
  EXPECT_EQ(t.guard_tightens(), 0u);
}

TEST(StaleSkipTest, TrackerZeroThresholdIsAGuardFixedPoint) {
  StalenessTracker::Options opt = UnitOptions();
  opt.threshold = 0.0;
  StalenessTracker t;
  t.Init({100}, opt);
  for (int i = 0; i < 8; ++i) {
    EXPECT_FALSE(t.BeginVisit(0, 4, 1));
    RecordTinyUpdate(t, 4);
  }
  EXPECT_FALSE(t.IsFrozen(0, 4));
  // The guard multiplies the threshold, so zero never grows.
  t.OnTestLoss(1.0);
  for (double loss = 0.9; loss > 0.5; loss -= 0.1) t.OnTestLoss(loss);
  EXPECT_DOUBLE_EQ(t.threshold(), 0.0);
  EXPECT_FALSE(t.BeginVisit(0, 4, 1));
}

TEST(StaleSkipTest, TrackerAlwaysUpdateRowsNeverFreeze) {
  StalenessTracker t;
  t.Init({100}, UnitOptions());
  const std::vector<uint32_t> hot = {11, 12};
  t.SetAlwaysUpdate(0, hot);
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(t.BeginVisit(0, 11, 1)) << "visit " << i;
    RecordTinyUpdate(t, 11);
  }
  EXPECT_FALSE(t.IsFrozen(0, 11));
  // A plain row with the same history is frozen — the pin is the only
  // difference.
  for (int i = 0; i < 2; ++i) {
    EXPECT_FALSE(t.BeginVisit(0, 20, 1));
    RecordTinyUpdate(t, 20);
  }
  EXPECT_TRUE(t.IsFrozen(0, 20));
}

TEST(StaleSkipTest, TrackerStateRoundTripContinuesDecisions) {
  StalenessTracker a;
  a.Init({64, 32}, UnitOptions());
  for (int i = 0; i < 2; ++i) {
    EXPECT_FALSE(a.BeginVisit(0, 5, 1));
    a.RecordUpdate(0, 5, 1, 1e-8, 1.0);
    EXPECT_FALSE(a.BeginVisit(1, 9, 2));
    a.RecordUpdate(1, 9, 2, 0.25, 1.0);  // rel 0.5: stays live
  }
  a.OnTestLoss(0.8);
  a.OnTestLoss(0.7);
  const StalenessTracker::State s = a.state();
  ASSERT_EQ(s.tables.size(), 2u);
  EXPECT_DOUBLE_EQ(s.threshold, 0.5);
  EXPECT_TRUE(s.has_prev_loss);
  EXPECT_DOUBLE_EQ(s.prev_loss, 0.7);
  EXPECT_EQ(s.consecutive_decreases, 1);
  EXPECT_EQ(s.tables[0].ema.size(), 64u);
  EXPECT_EQ(s.tables[1].visits.size(), 32u);

  StalenessTracker b;
  b.Init({64, 32}, UnitOptions());
  b.Restore(s);
  EXPECT_TRUE(b.IsFrozen(0, 5));
  EXPECT_FALSE(b.IsFrozen(1, 9));
  EXPECT_TRUE(b.BeginVisit(0, 5, 1));
  const StalenessTracker::State s2 = b.state();
  EXPECT_EQ(s2.tables[0].ema, s.tables[0].ema);
  EXPECT_EQ(s2.tables[0].visits, s.tables[0].visits);
  EXPECT_EQ(s2.tables[1].ema, s.tables[1].ema);
  EXPECT_DOUBLE_EQ(s2.threshold, s.threshold);
  // Run counters are reporting-only and restart from zero on Restore.
  EXPECT_EQ(b.total_updated_rows(), 0u);
}

// -- Embedding-layer bit-identity --------------------------------------------

struct VetoBelow : RowUpdateFilter {
  explicit VetoBelow(uint64_t limit) : limit(limit) {}
  bool BeginVisit(uint64_t row, uint32_t) override { return row < limit; }
  void RecordUpdate(uint64_t, uint32_t, double update_sq,
                    double row_sq) override {
    ++updates;
    EXPECT_GE(update_sq, 0.0);
    EXPECT_GE(row_sq, 0.0);
  }
  uint64_t limit;
  int updates = 0;
};

TEST(StaleSkipTest, FusedStepFreezesVetoedRowsVerbatim) {
  constexpr uint64_t kRows = 64;
  constexpr size_t kDim = 8;
  auto make_table = [] {
    Xoshiro256 rng(42);
    return EmbeddingTable(kRows, kDim, rng);
  };
  EmbeddingTable original = make_table();
  EmbeddingTable frozen_all = make_table();
  EmbeddingTable frozen_low = make_table();
  EmbeddingTable plain = make_table();

  const std::vector<uint32_t> indices = {1, 5, 1, 9, 33, 5, 60, 1};
  const std::vector<uint32_t> offsets = {0, 2, 4, 6, 8};
  Tensor grad(4, kDim);
  for (size_t i = 0; i < grad.numel(); ++i) {
    grad.row(0)[i] = 0.01f * static_cast<float>(i + 1);
  }

  // Veto everything: the table must stay bit-identical to untouched.
  VetoBelow veto_all(kRows);
  SparseSgd sgd_all(0.1f);
  sgd_all.FusedBackwardStep(frozen_all, grad, indices, offsets, nullptr,
                            &veto_all);
  EXPECT_EQ(veto_all.updates, 0);
  EXPECT_EQ(frozen_all.raw(), original.raw());

  // No filter: every touched row moves.
  SparseSgd sgd_plain(0.1f);
  sgd_plain.FusedBackwardStep(plain, grad, indices, offsets);
  for (uint32_t r : {1u, 5u, 9u, 33u, 60u}) {
    EXPECT_NE(std::memcmp(plain.row(r), original.row(r),
                          kDim * sizeof(float)),
              0)
        << "row " << r;
  }

  // Selective veto (rows < 32): frozen rows match the untouched table bit
  // for bit, live rows match the filterless run bit for bit.
  VetoBelow veto_low(32);
  SparseSgd sgd_low(0.1f);
  sgd_low.FusedBackwardStep(frozen_low, grad, indices, offsets, nullptr,
                            &veto_low);
  EXPECT_EQ(veto_low.updates, 2);  // rows 33 and 60
  for (uint32_t r : {1u, 5u, 9u}) {
    EXPECT_EQ(std::memcmp(frozen_low.row(r), original.row(r),
                          kDim * sizeof(float)),
              0)
        << "frozen row " << r;
  }
  for (uint32_t r : {33u, 60u}) {
    EXPECT_EQ(std::memcmp(frozen_low.row(r), plain.row(r),
                          kDim * sizeof(float)),
              0)
        << "live row " << r;
  }
}

// -- Trainer integration ------------------------------------------------------

TEST(StaleSkipTest, ThresholdZeroBitIdenticalToOff) {
  Fixture f;
  auto model_off = f.NewModel(5);
  Trainer off(model_off.get(), MakePaperServer(1), Fixture::Options());
  auto a = off.TrainBaselineResumable(f.dataset, f.split);
  ASSERT_TRUE(a.ok()) << a.status().ToString();

  TrainOptions opt = Fixture::StaleOptions(StaleSkipMode::kAll);
  opt.stale_threshold = 0.0;
  auto model_zero = f.NewModel(5);
  Trainer zero(model_zero.get(), MakePaperServer(1), opt);
  auto b = zero.TrainBaselineResumable(f.dataset, f.split);
  ASSERT_TRUE(b.ok()) << b.status().ToString();

  ExpectSameCurve(a->curve, b->curve);
  EXPECT_DOUBLE_EQ(b->final_test_loss, a->final_test_loss);
  EXPECT_DOUBLE_EQ(b->modeled_seconds, a->modeled_seconds);
  EXPECT_EQ(b->stale_skipped_rows, 0u);
  EXPECT_DOUBLE_EQ(b->stale_skip_saved_seconds, 0.0);
  EXPECT_DOUBLE_EQ(b->stale_final_threshold, 0.0);
}

TEST(StaleSkipTest, SkippingSavesModeledTimeWithinLossBand) {
  Fixture f;
  auto model_off = f.NewModel(5);
  Trainer off(model_off.get(), MakePaperServer(1), Fixture::Options());
  auto a = off.TrainBaselineResumable(f.dataset, f.split);
  ASSERT_TRUE(a.ok()) << a.status().ToString();

  auto model_on = f.NewModel(5);
  Trainer on(model_on.get(), MakePaperServer(1),
             Fixture::StaleOptions(StaleSkipMode::kAll));
  auto b = on.TrainBaselineResumable(f.dataset, f.split);
  ASSERT_TRUE(b.ok()) << b.status().ToString();

  EXPECT_GT(b->stale_skipped_rows, 0u);
  EXPECT_GT(b->stale_updated_rows, 0u);
  EXPECT_GT(b->stale_skip_saved_seconds, 0.0);
  EXPECT_LT(b->modeled_seconds, a->modeled_seconds);
  // The real timeline's charges never change with the knob — only the
  // overlay credit moves the modeled wall.
  EXPECT_DOUBLE_EQ(b->timeline.TotalSeconds(), a->timeline.TotalSeconds());
  // Guarded skipping stays within a narrow band of the exact run.
  EXPECT_NEAR(b->final_test_loss, a->final_test_loss,
              0.02 * a->final_test_loss);
}

TEST(StaleSkipTest, DeterministicAcrossThreadCounts) {
  Fixture f;
  TrainOptions one = Fixture::StaleOptions(StaleSkipMode::kAll);
  one.num_threads = 1;
  auto model_one = f.NewModel(5);
  Trainer t_one(model_one.get(), MakePaperServer(1), one);
  auto a = t_one.TrainBaselineResumable(f.dataset, f.split);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_GT(a->stale_skipped_rows, 0u);

  TrainOptions four = one;
  four.num_threads = 4;
  auto model_four = f.NewModel(5);
  Trainer t_four(model_four.get(), MakePaperServer(1), four);
  auto b = t_four.TrainBaselineResumable(f.dataset, f.split);
  ASSERT_TRUE(b.ok()) << b.status().ToString();

  ExpectSameCurve(a->curve, b->curve);
  EXPECT_EQ(b->stale_skipped_rows, a->stale_skipped_rows);
  EXPECT_EQ(b->stale_updated_rows, a->stale_updated_rows);
  EXPECT_EQ(b->stale_reactivated_rows, a->stale_reactivated_rows);
  EXPECT_DOUBLE_EQ(b->stale_final_threshold, a->stale_final_threshold);
  EXPECT_DOUBLE_EQ(b->stale_skip_saved_seconds, a->stale_skip_saved_seconds);
  EXPECT_DOUBLE_EQ(b->modeled_seconds, a->modeled_seconds);
}

TEST(StaleSkipTest, DeterministicAcrossPipelineModes) {
  Fixture f;
  TrainReport base;
  bool have_base = false;
  for (PipelineMode mode :
       {PipelineMode::kOff, PipelineMode::kPrefetch, PipelineMode::kOverlap}) {
    TrainOptions opt = Fixture::StaleOptions(StaleSkipMode::kAll);
    opt.pipeline = mode;
    opt.num_threads = 2;
    auto model = f.NewModel(5);
    Trainer trainer(model.get(), MakePaperServer(1), opt);
    auto r = trainer.TrainBaselineResumable(f.dataset, f.split);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_GT(r->stale_skipped_rows, 0u);
    if (!have_base) {
      base = *std::move(r);
      have_base = true;
      continue;
    }
    ExpectSameCurve(base.curve, r->curve);
    EXPECT_EQ(r->stale_skipped_rows, base.stale_skipped_rows);
    EXPECT_EQ(r->stale_updated_rows, base.stale_updated_rows);
    EXPECT_DOUBLE_EQ(r->stale_final_threshold, base.stale_final_threshold);
    // The skipped work itself is priced identically; what differs across
    // pipeline modes is only how much of it the lanes would have hidden.
    EXPECT_DOUBLE_EQ(r->timeline.TotalSeconds(),
                     base.timeline.TotalSeconds());
  }
}

TEST(StaleSkipTest, FaeColdModeSkipsAndReportsSavings) {
  Fixture f;
  auto model = f.NewModel(5);
  Trainer trainer(model.get(), MakePaperServer(1),
                  Fixture::StaleOptions(StaleSkipMode::kCold));
  auto r = trainer.TrainFae(f.dataset, f.split, Fixture::Config());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->cold_batches, 0u);
  EXPECT_GT(r->stale_skipped_rows, 0u);
  EXPECT_GT(r->stale_skip_saved_seconds, 0.0);
  EXPECT_GT(r->stale_final_threshold, 0.0);
  EXPECT_GT(r->final_test_acc, 0.4);
}

// -- Crash-resume golden curves with skipping active --------------------------

TEST(StaleSkipTest, BaselineResumeGoldenWithSkippingActive) {
  Fixture f;
  const std::string path = TempPath("fae_stale_resume_baseline.faec");
  const TrainOptions base_opt = Fixture::StaleOptions(StaleSkipMode::kAll);

  auto model_a = f.NewModel(5);
  Trainer uninterrupted(model_a.get(), MakePaperServer(1), base_opt);
  auto a = uninterrupted.TrainBaselineResumable(f.dataset, f.split);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_GT(a->stale_skipped_rows, 0u);

  TrainOptions opt = base_opt;
  opt.checkpoint.path = path;
  opt.checkpoint.every_steps = 5;
  auto crash_plan = FaultInjector::Parse("crash@13");
  ASSERT_TRUE(crash_plan.ok());
  opt.fault_injector = &*crash_plan;
  auto model_b = f.NewModel(5);
  Trainer crashing(model_b.get(), MakePaperServer(1), opt);
  auto b = crashing.TrainBaselineResumable(f.dataset, f.split);
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_TRUE(b->interrupted);

  TrainOptions resume_opt = base_opt;
  resume_opt.checkpoint.path = path;
  resume_opt.checkpoint.resume = true;
  auto model_c = f.NewModel(999);
  Trainer resumed(model_c.get(), MakePaperServer(1), resume_opt);
  auto c = resumed.TrainBaselineResumable(f.dataset, f.split);
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  EXPECT_TRUE(c->resumed);
  EXPECT_EQ(c->num_batches, a->num_batches);
  ExpectSameCurve(a->curve, c->curve);
  EXPECT_DOUBLE_EQ(c->final_test_loss, a->final_test_loss);
  // The adapted threshold travels inside the checkpoint, so the guard ends
  // exactly where the uninterrupted run's did.
  EXPECT_DOUBLE_EQ(c->stale_final_threshold, a->stale_final_threshold);
  // Savings are reporting-only overlay state (not checkpointed): the
  // resumed run only credits skips after the restore point.
  EXPECT_LE(c->stale_skipped_rows, a->stale_skipped_rows);
  EXPECT_GE(c->modeled_seconds, a->modeled_seconds - 1e-9);
  (void)RemoveFile(path);
}

TEST(StaleSkipTest, FaeResumeGoldenWithColdSkippingActive) {
  Fixture f;
  const std::string path = TempPath("fae_stale_resume_fae.faec");
  const FaeConfig cfg = Fixture::Config();
  FaePipeline pipeline(cfg);
  auto plan = pipeline.Prepare(f.dataset, f.split.train);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const TrainOptions base_opt = Fixture::StaleOptions(StaleSkipMode::kCold);

  auto model_a = f.NewModel(5);
  Trainer uninterrupted(model_a.get(), MakePaperServer(1), base_opt);
  auto a = uninterrupted.TrainFaeWithPlan(f.dataset, f.split, cfg, *plan);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_GT(a->num_batches, 45u);
  ASSERT_GT(a->stale_skipped_rows, 0u);

  TrainOptions opt = base_opt;
  opt.checkpoint.path = path;
  opt.checkpoint.every_steps = 1;  // save at every chunk boundary
  auto crash_plan = FaultInjector::Parse("crash@45");
  ASSERT_TRUE(crash_plan.ok());
  opt.fault_injector = &*crash_plan;
  auto model_b = f.NewModel(5);
  Trainer crashing(model_b.get(), MakePaperServer(1), opt);
  auto b = crashing.TrainFaeWithPlan(f.dataset, f.split, cfg, *plan);
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_TRUE(b->interrupted);

  TrainOptions resume_opt = base_opt;
  resume_opt.checkpoint.path = path;
  resume_opt.checkpoint.resume = true;
  auto model_c = f.NewModel(999);
  Trainer resumed(model_c.get(), MakePaperServer(1), resume_opt);
  auto c = resumed.TrainFaeWithPlan(f.dataset, f.split, cfg, *plan);
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  EXPECT_TRUE(c->resumed);
  EXPECT_EQ(c->num_batches, a->num_batches);
  ExpectSameCurve(a->curve, c->curve);
  EXPECT_DOUBLE_EQ(c->final_test_loss, a->final_test_loss);
  EXPECT_DOUBLE_EQ(c->stale_final_threshold, a->stale_final_threshold);
  EXPECT_EQ(c->sync_bytes, a->sync_bytes);
  (void)RemoveFile(path);
}

TEST(StaleSkipTest, ResumeMayToggleStaleMode) {
  Fixture f;
  const std::string path = TempPath("fae_stale_resume_toggle.faec");
  // Crash with skipping ON...
  TrainOptions opt = Fixture::StaleOptions(StaleSkipMode::kAll);
  opt.checkpoint.path = path;
  opt.checkpoint.every_steps = 5;
  auto crash_plan = FaultInjector::Parse("crash@13");
  ASSERT_TRUE(crash_plan.ok());
  opt.fault_injector = &*crash_plan;
  auto model_a = f.NewModel(5);
  Trainer crashing(model_a.get(), MakePaperServer(1), opt);
  ASSERT_TRUE(crashing.TrainBaselineResumable(f.dataset, f.split).ok());

  // ...and resume with it OFF: the knob is fingerprint-exempt.
  TrainOptions off_opt = Fixture::Options();
  off_opt.checkpoint.path = path;
  off_opt.checkpoint.resume = true;
  auto model_b = f.NewModel(999);
  Trainer resumed_off(model_b.get(), MakePaperServer(1), off_opt);
  auto r_off = resumed_off.TrainBaselineResumable(f.dataset, f.split);
  ASSERT_TRUE(r_off.ok()) << r_off.status().ToString();
  EXPECT_TRUE(r_off->resumed);
  EXPECT_EQ(r_off->stale_skipped_rows, 0u);

  // The reverse toggle: crash with skipping off, resume with it on (a
  // fresh tracker starts at the restore point).
  TrainOptions plain_opt = Fixture::Options();
  plain_opt.checkpoint.path = path;
  plain_opt.checkpoint.every_steps = 5;
  auto crash_plan2 = FaultInjector::Parse("crash@13");
  ASSERT_TRUE(crash_plan2.ok());
  plain_opt.fault_injector = &*crash_plan2;
  auto model_c = f.NewModel(5);
  Trainer crashing2(model_c.get(), MakePaperServer(1), plain_opt);
  ASSERT_TRUE(crashing2.TrainBaselineResumable(f.dataset, f.split).ok());

  TrainOptions on_opt = Fixture::StaleOptions(StaleSkipMode::kAll);
  on_opt.checkpoint.path = path;
  on_opt.checkpoint.resume = true;
  auto model_d = f.NewModel(999);
  Trainer resumed_on(model_d.get(), MakePaperServer(1), on_opt);
  auto r_on = resumed_on.TrainBaselineResumable(f.dataset, f.split);
  ASSERT_TRUE(r_on.ok()) << r_on.status().ToString();
  EXPECT_TRUE(r_on->resumed);
  (void)RemoveFile(path);
}

// -- Validation ---------------------------------------------------------------

void ExpectInvalidBaseline(const Fixture& f, const TrainOptions& opt) {
  auto model = f.NewModel(5);
  Trainer t(model.get(), MakePaperServer(1), opt);
  auto r = t.TrainBaselineResumable(f.dataset, f.split);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(StaleSkipTest, RejectsIllegalCombinations) {
  Fixture f;
  {
    TrainOptions opt = Fixture::StaleOptions(StaleSkipMode::kAll);
    opt.run_math = false;  // skip decisions need measured magnitudes
    ExpectInvalidBaseline(f, opt);
  }
  {
    TrainOptions opt = Fixture::StaleOptions(StaleSkipMode::kAll);
    opt.fp16_embeddings = true;  // needs the fused fp32 path
    ExpectInvalidBaseline(f, opt);
  }
  {
    TrainOptions opt = Fixture::StaleOptions(StaleSkipMode::kAll);
    opt.pipelined_baseline = true;  // legacy wall has no BaselineParts
    ExpectInvalidBaseline(f, opt);
  }
  {
    TrainOptions opt = Fixture::StaleOptions(StaleSkipMode::kAll);
    opt.pipeline = PipelineMode::kPrefetch;
    opt.cache = CacheMode::kOracle;  // both reprice the same cold step
    ExpectInvalidBaseline(f, opt);
  }
  {
    TrainOptions opt = Fixture::StaleOptions(StaleSkipMode::kCold);
    // kCold needs the FAE hot/cold partition; the baseline has none.
    ExpectInvalidBaseline(f, opt);
  }
  {
    TrainOptions opt = Fixture::StaleOptions(StaleSkipMode::kAll);
    opt.stale_threshold = -0.1;
    ExpectInvalidBaseline(f, opt);
  }
  {
    TrainOptions opt = Fixture::StaleOptions(StaleSkipMode::kAll);
    opt.stale_min_visits = 0;
    ExpectInvalidBaseline(f, opt);
  }
  {
    // FAE rejects the same invalid tuning.
    TrainOptions opt = Fixture::StaleOptions(StaleSkipMode::kCold);
    opt.stale_threshold = -1.0;
    auto model = f.NewModel(5);
    Trainer t(model.get(), MakePaperServer(1), opt);
    auto r = t.TrainFae(f.dataset, f.split, Fixture::Config());
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
}

// -- Checkpoint serialization -------------------------------------------------

TEST(StaleSkipTest, CheckpointRoundTripRestoresStalenessSection) {
  Fixture f;
  auto model = f.NewModel(5);
  const std::string path = TempPath("fae_stale_ckpt_roundtrip.faec");

  TrainerCheckpoint ck;
  ck.iteration = 77;
  ck.has_staleness = true;
  ck.staleness.threshold = 0.125;
  ck.staleness.has_prev_loss = true;
  ck.staleness.prev_loss = 0.37;
  ck.staleness.consecutive_decreases = 2;
  ck.staleness.tables.resize(2);
  ck.staleness.tables[0].ema = {0.5f, 0.0f, 0.25f};
  ck.staleness.tables[0].visits = {3, 0, 9};
  ck.staleness.tables[0].streak = {0, 0, 7};
  ck.staleness.tables[1].ema = {1.5f};
  ck.staleness.tables[1].visits = {12};
  ck.staleness.tables[1].streak = {4};
  ASSERT_TRUE(CheckpointIo::Save(path, ck, *model).ok());

  auto restored_model = f.NewModel(999);
  auto loaded = CheckpointIo::Load(path, *restored_model);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_TRUE(loaded->has_staleness);
  EXPECT_DOUBLE_EQ(loaded->staleness.threshold, 0.125);
  EXPECT_TRUE(loaded->staleness.has_prev_loss);
  EXPECT_DOUBLE_EQ(loaded->staleness.prev_loss, 0.37);
  EXPECT_EQ(loaded->staleness.consecutive_decreases, 2);
  ASSERT_EQ(loaded->staleness.tables.size(), 2u);
  EXPECT_EQ(loaded->staleness.tables[0].ema, ck.staleness.tables[0].ema);
  EXPECT_EQ(loaded->staleness.tables[0].visits, ck.staleness.tables[0].visits);
  EXPECT_EQ(loaded->staleness.tables[0].streak, ck.staleness.tables[0].streak);
  EXPECT_EQ(loaded->staleness.tables[1].ema, ck.staleness.tables[1].ema);

  // A checkpoint without the section reads back has_staleness = false.
  TrainerCheckpoint plain;
  plain.iteration = 5;
  ASSERT_TRUE(CheckpointIo::Save(path, plain, *model).ok());
  auto loaded2 = CheckpointIo::Load(path, *restored_model);
  ASSERT_TRUE(loaded2.ok()) << loaded2.status().ToString();
  EXPECT_FALSE(loaded2->has_staleness);
  EXPECT_TRUE(loaded2->staleness.tables.empty());
  (void)RemoveFile(path);
}

}  // namespace
}  // namespace fae
