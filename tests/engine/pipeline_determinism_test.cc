// Locks down the pipelined trainer's determinism contract (DESIGN.md §11):
// every --pipeline mode, at every staging depth and kernel thread count,
// produces bit-identical training results — final embedding tables, every
// loss on the learning curve, and the exact bytes of periodic checkpoints.
// The pipeline may only change the modeled wall-clock (overlap savings),
// never what is computed or what a resume sees. The lookahead oracle cache
// (DESIGN.md §13) extends the same contract: cache on/off, at any budget
// and window, is a pure cost-model overlay.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/fae_pipeline.h"
#include "data/synthetic.h"
#include "engine/trainer.h"
#include "models/factory.h"

namespace fae {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

struct RunResult {
  TrainReport report;
  std::vector<std::vector<float>> tables;
  std::string checkpoint_bytes;
};

struct Fixture {
  Fixture()
      : schema(MakeKaggleLikeSchema(DatasetScale::kTiny)),
        dataset(SyntheticGenerator(schema, {.seed = 29}).Generate(2600)),
        split(dataset.MakeSplit(0.1)) {}

  static TrainOptions Options(PipelineMode mode, size_t depth,
                              size_t threads, const std::string& ckpt) {
    TrainOptions opt;
    opt.per_gpu_batch = 64;
    opt.epochs = 2;
    opt.eval_samples = 256;
    opt.evals_per_epoch = 4;
    opt.pipeline = mode;
    opt.pipeline_depth = depth;
    opt.num_threads = threads;
    opt.checkpoint.path = ckpt;
    opt.checkpoint.every_steps = 7;
    return opt;
  }

  static FaeConfig Config() {
    FaeConfig cfg;
    cfg.sample_rate = 0.25;
    cfg.gpu_memory_budget = 384ULL << 10;
    cfg.large_table_bytes = 1ULL << 12;
    cfg.num_threads = 2;
    return cfg;
  }

  /// Cache knobs applied on top of Options; budget 0 leaves the cache off.
  static TrainOptions WithCache(TrainOptions opt, size_t budget,
                                size_t lookahead) {
    if (budget > 0) {
      opt.cache = CacheMode::kOracle;
      opt.cache_budget_rows = budget;
      opt.cache_lookahead = lookahead;
    }
    return opt;
  }

  RunResult RunBaseline(PipelineMode mode, size_t depth, size_t threads,
                        size_t cache_budget = 0, size_t cache_lookahead = 4) {
    const std::string ckpt = TempPath("pipe_det_base.faec");
    std::filesystem::remove(ckpt);
    auto model = MakeModel(schema, false, 5);
    Trainer trainer(model.get(), MakePaperServer(2),
                    WithCache(Options(mode, depth, threads, ckpt),
                              cache_budget, cache_lookahead));
    RunResult r;
    r.report = trainer.TrainBaseline(dataset, split);
    for (const EmbeddingTable& t : model->tables()) {
      r.tables.push_back(t.raw());
    }
    r.checkpoint_bytes = Slurp(ckpt);
    std::filesystem::remove(ckpt);
    return r;
  }

  RunResult RunFae(const FaePlan& plan, PipelineMode mode, size_t depth,
                   size_t threads, size_t cache_budget = 0,
                   size_t cache_lookahead = 4) {
    const std::string ckpt = TempPath("pipe_det_fae.faec");
    std::filesystem::remove(ckpt);
    auto model = MakeModel(schema, false, 5);
    Trainer trainer(model.get(), MakePaperServer(2),
                    WithCache(Options(mode, depth, threads, ckpt),
                              cache_budget, cache_lookahead));
    auto report = trainer.TrainFaeWithPlan(dataset, split, Config(), plan);
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    RunResult r;
    r.report = std::move(report).value();
    for (const EmbeddingTable& t : model->tables()) {
      r.tables.push_back(t.raw());
    }
    r.checkpoint_bytes = Slurp(ckpt);
    std::filesystem::remove(ckpt);
    return r;
  }

  DatasetSchema schema;
  Dataset dataset;
  Dataset::Split split;
};

void ExpectBitIdentical(const RunResult& ref, const RunResult& got,
                        const std::string& label) {
  EXPECT_EQ(ref.report.final_train_loss, got.report.final_train_loss)
      << label;
  EXPECT_EQ(ref.report.final_test_loss, got.report.final_test_loss) << label;
  EXPECT_EQ(ref.report.final_test_auc, got.report.final_test_auc) << label;
  EXPECT_EQ(ref.report.num_batches, got.report.num_batches) << label;
  ASSERT_EQ(ref.report.curve.size(), got.report.curve.size()) << label;
  for (size_t i = 0; i < ref.report.curve.size(); ++i) {
    EXPECT_EQ(ref.report.curve[i].train_loss, got.report.curve[i].train_loss)
        << label << " curve point " << i;
    EXPECT_EQ(ref.report.curve[i].test_loss, got.report.curve[i].test_loss)
        << label << " curve point " << i;
  }
  ASSERT_EQ(ref.tables.size(), got.tables.size()) << label;
  for (size_t t = 0; t < ref.tables.size(); ++t) {
    // Exact float equality, element by element: the contract is bit-level.
    EXPECT_EQ(ref.tables[t], got.tables[t]) << label << " table " << t;
  }
  // Phase charges are identical in every mode and the overlap accumulator
  // lives outside Timeline::State, so periodic checkpoints must be
  // byte-for-byte identical files.
  ASSERT_FALSE(ref.checkpoint_bytes.empty());
  EXPECT_EQ(ref.checkpoint_bytes, got.checkpoint_bytes) << label;
}

std::string Label(PipelineMode mode, size_t depth, size_t threads) {
  std::ostringstream s;
  s << "pipeline=" << PipelineModeName(mode) << " depth=" << depth
    << " threads=" << threads;
  return s.str();
}

TEST(PipelineDeterminismTest, BaselineBitExactAcrossModesDepthsAndThreads) {
  Fixture f;
  const RunResult ref = f.RunBaseline(PipelineMode::kOff, 1, 1);
  ASSERT_FALSE(ref.checkpoint_bytes.empty());
  for (PipelineMode mode : {PipelineMode::kOff, PipelineMode::kPrefetch,
                            PipelineMode::kOverlap}) {
    for (size_t depth : {size_t{1}, size_t{2}, size_t{4}}) {
      for (size_t threads : {size_t{1}, size_t{4}}) {
        if (mode == PipelineMode::kOff && depth == 1 && threads == 1) {
          continue;  // the reference itself
        }
        const RunResult got = f.RunBaseline(mode, depth, threads);
        ExpectBitIdentical(ref, got, Label(mode, depth, threads));
      }
    }
  }
}

TEST(PipelineDeterminismTest, FaeBitExactAcrossModesDepthsAndThreads) {
  Fixture f;
  FaePipeline pipeline(Fixture::Config());
  auto plan = pipeline.Prepare(f.dataset, f.split.train);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  const RunResult ref = f.RunFae(*plan, PipelineMode::kOff, 1, 1);
  ASSERT_FALSE(ref.checkpoint_bytes.empty());
  for (PipelineMode mode : {PipelineMode::kOff, PipelineMode::kPrefetch,
                            PipelineMode::kOverlap}) {
    for (size_t depth : {size_t{1}, size_t{2}, size_t{4}}) {
      for (size_t threads : {size_t{1}, size_t{4}}) {
        if (mode == PipelineMode::kOff && depth == 1 && threads == 1) {
          continue;
        }
        const RunResult got = f.RunFae(*plan, mode, depth, threads);
        ExpectBitIdentical(ref, got, Label(mode, depth, threads));
        EXPECT_EQ(ref.report.transitions, got.report.transitions);
        EXPECT_EQ(ref.report.sync_bytes, got.report.sync_bytes);
      }
    }
  }
}

TEST(PipelineDeterminismTest, OverlapOnlyShrinksTheModeledWall) {
  // The pipelined wall is the serial wall minus the (non-negative) overlap
  // savings; phase totals do not move.
  Fixture f;
  const RunResult off = f.RunBaseline(PipelineMode::kOff, 1, 1);
  const RunResult overlap = f.RunBaseline(PipelineMode::kOverlap, 2, 1);
  EXPECT_EQ(off.report.timeline.PhaseSumSeconds(),
            overlap.report.timeline.PhaseSumSeconds());
  EXPECT_EQ(off.report.overlap_saved_seconds, 0.0);
  EXPECT_GT(overlap.report.overlap_saved_seconds, 0.0);
  EXPECT_EQ(overlap.report.modeled_seconds,
            off.report.modeled_seconds -
                overlap.report.overlap_saved_seconds);
  EXPECT_GT(overlap.report.prep_seconds, 0.0);
  EXPECT_EQ(overlap.report.prep_seconds, off.report.prep_seconds);
}

TEST(PipelineDeterminismTest, DepthOneHidesNothing) {
  // A one-slot ring cannot stage ahead of the consumer: the producer
  // thread still runs, but no prep is hidden under compute.
  Fixture f;
  const RunResult d1 = f.RunBaseline(PipelineMode::kPrefetch, 1, 1);
  const RunResult d2 = f.RunBaseline(PipelineMode::kPrefetch, 2, 1);
  EXPECT_EQ(d1.report.overlap_saved_seconds, 0.0);
  EXPECT_GT(d2.report.overlap_saved_seconds, 0.0);
}

TEST(PipelineDeterminismTest, ResumeMaySwitchPipelineModes) {
  // pipeline/pipeline_depth are excluded from the options fingerprint:
  // a run checkpointed under the serial trainer resumes under the
  // pipelined one (and vice versa) with bit-identical results.
  Fixture f;
  const RunResult uninterrupted = f.RunBaseline(PipelineMode::kOff, 1, 1);

  const std::string ckpt = TempPath("pipe_det_switch.faec");
  std::filesystem::remove(ckpt);
  auto crash_plan = FaultInjector::Parse("crash@15");
  ASSERT_TRUE(crash_plan.ok());
  FaultInjector injector = std::move(crash_plan).value();
  {
    auto model = MakeModel(f.schema, false, 5);
    TrainOptions opt = Fixture::Options(PipelineMode::kOff, 1, 1, ckpt);
    opt.fault_injector = &injector;
    Trainer trainer(model.get(), MakePaperServer(2), opt);
    auto partial = trainer.TrainBaselineResumable(f.dataset, f.split);
    ASSERT_TRUE(partial.ok()) << partial.status().ToString();
    ASSERT_TRUE(partial->interrupted);
  }
  auto model = MakeModel(f.schema, false, 5);
  TrainOptions opt = Fixture::Options(PipelineMode::kOverlap, 4, 4, ckpt);
  opt.checkpoint.resume = true;
  Trainer trainer(model.get(), MakePaperServer(2), opt);
  auto resumed = trainer.TrainBaselineResumable(f.dataset, f.split);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_TRUE(resumed->resumed);
  EXPECT_EQ(resumed->final_train_loss,
            uninterrupted.report.final_train_loss);
  EXPECT_EQ(resumed->final_test_loss, uninterrupted.report.final_test_loss);
  std::vector<std::vector<float>> tables;
  for (const EmbeddingTable& t : model->tables()) tables.push_back(t.raw());
  ASSERT_EQ(tables.size(), uninterrupted.tables.size());
  for (size_t t = 0; t < tables.size(); ++t) {
    EXPECT_EQ(tables[t], uninterrupted.tables[t]) << "table " << t;
  }
  std::filesystem::remove(ckpt);
}

TEST(PipelineDeterminismTest, FaeCrashMidChunkWhilePipelined) {
  // Regression: an injected crash returns out of TrainFaeWithPlan in the
  // middle of a schedule chunk, while the prefetch producer may still be
  // staging the abandoned segment. Everything the producer's Specs
  // reference (the stage-id pool) must outlive ~BatchPipeline, so the
  // early return must not destroy it first. Run pipelined at depth 4 so
  // the producer has lookahead in flight, crash, resume pipelined, and
  // match the uninterrupted serial run bit-for-bit. The sanitizer configs
  // (ASan/TSan) are what give this test its teeth.
  Fixture f;
  FaePipeline pipeline(Fixture::Config());
  auto plan = pipeline.Prepare(f.dataset, f.split.train);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const RunResult uninterrupted = f.RunFae(*plan, PipelineMode::kOff, 1, 1);

  const std::string ckpt = TempPath("pipe_det_fae_crash.faec");
  std::filesystem::remove(ckpt);
  auto crash_plan = FaultInjector::Parse("crash@15");
  ASSERT_TRUE(crash_plan.ok());
  FaultInjector injector = std::move(crash_plan).value();
  {
    auto model = MakeModel(f.schema, false, 5);
    TrainOptions opt = Fixture::Options(PipelineMode::kOverlap, 4, 1, ckpt);
    opt.checkpoint.every_steps = 1;  // save at every chunk boundary
    opt.fault_injector = &injector;
    Trainer trainer(model.get(), MakePaperServer(2), opt);
    auto partial =
        trainer.TrainFaeWithPlan(f.dataset, f.split, Fixture::Config(), *plan);
    ASSERT_TRUE(partial.ok()) << partial.status().ToString();
    ASSERT_TRUE(partial->interrupted);
    ASSERT_LT(partial->num_batches, uninterrupted.report.num_batches);
  }
  auto model = MakeModel(f.schema, false, 5);
  TrainOptions opt = Fixture::Options(PipelineMode::kOverlap, 4, 1, ckpt);
  opt.checkpoint.resume = true;
  Trainer trainer(model.get(), MakePaperServer(2), opt);
  auto resumed =
      trainer.TrainFaeWithPlan(f.dataset, f.split, Fixture::Config(), *plan);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_TRUE(resumed->resumed);
  EXPECT_EQ(resumed->num_batches, uninterrupted.report.num_batches);
  EXPECT_EQ(resumed->final_train_loss,
            uninterrupted.report.final_train_loss);
  EXPECT_EQ(resumed->final_test_loss, uninterrupted.report.final_test_loss);
  std::vector<std::vector<float>> tables;
  for (const EmbeddingTable& t : model->tables()) tables.push_back(t.raw());
  ASSERT_EQ(tables.size(), uninterrupted.tables.size());
  for (size_t t = 0; t < tables.size(); ++t) {
    EXPECT_EQ(tables[t], uninterrupted.tables[t]) << "table " << t;
  }
  std::filesystem::remove(ckpt);
}

TEST(PipelineDeterminismTest, FaeCrashMidGatherTearsDownSafely) {
  // Companion to FaeCrashMidChunkWhilePipelined, tuned to open the race
  // window the other test cannot: the producer reads its Spec::ids span
  // unlocked only while inside GatherInto, so the stage-id pool must
  // outlive ~BatchPipeline *during an active gather*. Crash on the very
  // first batch with large batches and a deep ring — the producer is
  // still staging the opening slots when the early return unwinds the
  // trainer's locals. The sanitizer configs flag any ordering regression.
  DatasetSchema schema = MakeKaggleLikeSchema(DatasetScale::kTiny);
  Dataset dataset = SyntheticGenerator(schema, {.seed = 31}).Generate(40000);
  Dataset::Split split = dataset.MakeSplit(0.1);
  const FaeConfig cfg = Fixture::Config();
  FaePipeline pipeline(cfg);
  auto plan = pipeline.Prepare(dataset, split.train);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  auto crash_plan = FaultInjector::Parse("crash@0");
  ASSERT_TRUE(crash_plan.ok());
  FaultInjector injector = std::move(crash_plan).value();
  auto model = MakeModel(schema, false, 5);
  TrainOptions opt = Fixture::Options(PipelineMode::kPrefetch, 8, 1, "");
  opt.per_gpu_batch = 1024;
  opt.eval_samples = 64;
  opt.fault_injector = &injector;
  Trainer trainer(model.get(), MakePaperServer(2), opt);
  auto partial = trainer.TrainFaeWithPlan(dataset, split, cfg, *plan);
  ASSERT_TRUE(partial.ok()) << partial.status().ToString();
  EXPECT_TRUE(partial->interrupted);
  EXPECT_EQ(partial->num_batches, 0u);
  EXPECT_EQ(partial->faults.crashes, 1u);
}

TEST(PipelineDeterminismTest, CacheBitExactAcrossDepthsThreadsAndBudgets) {
  // The oracle cache is a cost-model overlay: any budget/window, under any
  // pipeline depth and thread count, leaves losses, tables, and checkpoint
  // bytes bit-identical to the serial cache-off reference. A 48-row budget
  // forces constant eviction pressure and misses; 100k rows caches
  // everything — both must be invisible to the math.
  Fixture f;
  const RunResult ref = f.RunBaseline(PipelineMode::kOff, 1, 1);
  for (PipelineMode mode :
       {PipelineMode::kPrefetch, PipelineMode::kOverlap}) {
    for (size_t depth : {size_t{1}, size_t{4}}) {
      for (size_t threads : {size_t{1}, size_t{4}}) {
        for (size_t budget : {size_t{48}, size_t{100000}}) {
          const RunResult got =
              f.RunBaseline(mode, depth, threads, budget, depth);
          ExpectBitIdentical(
              ref, got,
              Label(mode, depth, threads) + " cache_budget=" +
                  std::to_string(budget));
          EXPECT_GT(got.report.cache_hits + got.report.cache_misses, 0u);
        }
      }
    }
  }
}

TEST(PipelineDeterminismTest, FaeCacheBitExactAndCoherentAcrossChunks) {
  // FAE interleaves hot chunks (which rewrite the masters) with cached
  // cold chunks, so this exercises the stale-invalidation and dirty-flush
  // boundaries on top of the bit-identity contract.
  Fixture f;
  FaePipeline pipeline(Fixture::Config());
  auto plan = pipeline.Prepare(f.dataset, f.split.train);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const RunResult ref = f.RunFae(*plan, PipelineMode::kOff, 1, 1);
  for (size_t budget : {size_t{128}, size_t{100000}}) {
    for (size_t lookahead : {size_t{1}, size_t{8}}) {
      const RunResult got =
          f.RunFae(*plan, PipelineMode::kOverlap, 4, 4, budget, lookahead);
      const std::string label = "fae cache budget=" +
                                std::to_string(budget) +
                                " lookahead=" + std::to_string(lookahead);
      ExpectBitIdentical(ref, got, label);
      EXPECT_EQ(ref.report.transitions, got.report.transitions) << label;
      EXPECT_EQ(ref.report.sync_bytes, got.report.sync_bytes) << label;
      EXPECT_GT(got.report.cache_hits, 0u) << label;
    }
  }
}

TEST(PipelineDeterminismTest, CacheOnlyShrinksTheModeledWall) {
  // Phase totals never move with the cache; the modeled wall drops by
  // exactly the accumulated cache saving (on top of any overlap saving),
  // and the effective transfer bytes drop below the plain 2x round trip.
  Fixture f;
  const RunResult off = f.RunBaseline(PipelineMode::kPrefetch, 2, 1);
  const RunResult on = f.RunBaseline(PipelineMode::kPrefetch, 2, 1, 100000, 8);
  EXPECT_EQ(off.report.timeline.PhaseSumSeconds(),
            on.report.timeline.PhaseSumSeconds());
  EXPECT_EQ(off.report.overlap_saved_seconds, on.report.overlap_saved_seconds);
  EXPECT_EQ(off.report.cache_saved_seconds, 0.0);
  EXPECT_GT(on.report.cache_saved_seconds, 0.0);
  EXPECT_NEAR(on.report.modeled_seconds,
              off.report.modeled_seconds - on.report.cache_saved_seconds,
              1e-12 * off.report.modeled_seconds);
  EXPECT_GT(on.report.cache_plain_transfer_bytes, 0u);
  EXPECT_LT(on.report.cache_effective_transfer_bytes,
            on.report.cache_plain_transfer_bytes);
}

TEST(PipelineDeterminismTest, ResumeMaySwitchCacheModes) {
  // The cache knobs are excluded from the options fingerprint on the same
  // contract as the pipeline knobs: a run checkpointed with the cache off
  // resumes with it on (different budget, different window) bit-exactly.
  Fixture f;
  const RunResult uninterrupted = f.RunBaseline(PipelineMode::kOff, 1, 1);

  const std::string ckpt = TempPath("pipe_det_cache_switch.faec");
  std::filesystem::remove(ckpt);
  auto crash_plan = FaultInjector::Parse("crash@15");
  ASSERT_TRUE(crash_plan.ok());
  FaultInjector injector = std::move(crash_plan).value();
  {
    auto model = MakeModel(f.schema, false, 5);
    TrainOptions opt = Fixture::Options(PipelineMode::kOff, 1, 1, ckpt);
    opt.fault_injector = &injector;
    Trainer trainer(model.get(), MakePaperServer(2), opt);
    auto partial = trainer.TrainBaselineResumable(f.dataset, f.split);
    ASSERT_TRUE(partial.ok()) << partial.status().ToString();
    ASSERT_TRUE(partial->interrupted);
  }
  auto model = MakeModel(f.schema, false, 5);
  TrainOptions opt = Fixture::WithCache(
      Fixture::Options(PipelineMode::kOverlap, 4, 4, ckpt), 512, 4);
  opt.checkpoint.resume = true;
  Trainer trainer(model.get(), MakePaperServer(2), opt);
  auto resumed = trainer.TrainBaselineResumable(f.dataset, f.split);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_TRUE(resumed->resumed);
  EXPECT_EQ(resumed->final_train_loss, uninterrupted.report.final_train_loss);
  EXPECT_EQ(resumed->final_test_loss, uninterrupted.report.final_test_loss);
  std::vector<std::vector<float>> tables;
  for (const EmbeddingTable& t : model->tables()) tables.push_back(t.raw());
  ASSERT_EQ(tables.size(), uninterrupted.tables.size());
  for (size_t t = 0; t < tables.size(); ++t) {
    EXPECT_EQ(tables[t], uninterrupted.tables[t]) << "table " << t;
  }
  std::filesystem::remove(ckpt);
}

TEST(PipelineDeterminismTest, CacheRequiresAPipelinedRun) {
  // Without the staging ring there is no oracle window to scan, so
  // --cache=oracle with --pipeline=off is a configuration error, not a
  // silent no-op — in both trainers.
  Fixture f;
  {
    auto model = MakeModel(f.schema, false, 5);
    TrainOptions opt = Fixture::WithCache(
        Fixture::Options(PipelineMode::kOff, 1, 1, ""), 512, 4);
    Trainer trainer(model.get(), MakePaperServer(2), opt);
    auto report = trainer.TrainBaselineResumable(f.dataset, f.split);
    EXPECT_FALSE(report.ok());
  }
  {
    FaePipeline pipeline(Fixture::Config());
    auto plan = pipeline.Prepare(f.dataset, f.split.train);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    auto model = MakeModel(f.schema, false, 5);
    TrainOptions opt = Fixture::WithCache(
        Fixture::Options(PipelineMode::kOff, 1, 1, ""), 512, 4);
    Trainer trainer(model.get(), MakePaperServer(2), opt);
    auto report =
        trainer.TrainFaeWithPlan(f.dataset, f.split, Fixture::Config(), *plan);
    EXPECT_FALSE(report.ok());
  }
}

TEST(PipelineDeterminismTest, PipelineRejectsLegacyPipelinedBaseline) {
  Fixture f;
  auto model = MakeModel(f.schema, false, 5);
  TrainOptions opt = Fixture::Options(PipelineMode::kPrefetch, 2, 1, "");
  opt.pipelined_baseline = true;
  Trainer trainer(model.get(), MakePaperServer(2), opt);
  auto report = trainer.TrainBaselineResumable(f.dataset, f.split);
  EXPECT_FALSE(report.ok());
}

}  // namespace
}  // namespace fae
