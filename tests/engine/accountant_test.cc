#include "engine/step_accountant.h"

#include <gtest/gtest.h>

#include "sim/cost_model.h"

namespace fae {
namespace {

BatchWork MakeWork(size_t tables = 4) {
  BatchWork w;
  w.batch_size = 1024;
  w.forward_flops = 100'000'000;
  w.embedding_read_bytes = 4 << 20;
  w.embedding_activation_bytes = 1 << 20;
  w.touched_rows = 10'000;
  w.touched_bytes = w.touched_rows * 64;
  w.dense_param_count = 500'000;
  for (size_t t = 0; t < tables; ++t) {
    w.per_table_lookups.push_back(1024);
    w.per_table_touched.push_back(700);
  }
  return w;
}

class AccountantTest : public ::testing::Test {
 protected:
  AccountantTest() : cost_(MakePaperServer(4)), accountant_(&cost_) {}
  CostModel cost_;
  StepAccountant accountant_;
};

TEST_F(AccountantTest, BaselinePlacesPhasesOnExpectedDevices) {
  Timeline tl;
  accountant_.ChargeBaselineStep(MakeWork(), tl);
  // CPU: embedding fwd/bwd + sparse optimizer.
  EXPECT_GT(tl.seconds(Phase::kEmbeddingForward), 0.0);
  EXPECT_GT(tl.seconds(Phase::kOptimizerSparse), 0.0);
  EXPECT_GT(tl.cpu_busy_seconds(), 0.0);
  // GPU: MLPs + dense optimizer.
  EXPECT_GT(tl.seconds(Phase::kMlpForward), 0.0);
  EXPECT_GT(tl.gpu_busy_seconds(), 0.0);
  // Two PCIe crossings.
  EXPECT_EQ(tl.pcie_bytes(), 2u * (1 << 20));
  // No sync phase in the baseline.
  EXPECT_EQ(tl.seconds(Phase::kEmbeddingSync), 0.0);
}

TEST_F(AccountantTest, BaselineBackwardIsTwiceForward) {
  Timeline tl;
  accountant_.ChargeBaselineStep(MakeWork(), tl);
  EXPECT_NEAR(tl.seconds(Phase::kMlpBackward),
              2 * tl.seconds(Phase::kMlpForward), 1e-12);
}

TEST_F(AccountantTest, HotStepUsesNoPcieAndNoCpu) {
  Timeline tl;
  accountant_.ChargeHotStep(MakeWork(), tl);
  EXPECT_EQ(tl.pcie_bytes(), 0u);
  EXPECT_EQ(tl.cpu_busy_seconds(), 0.0);
  EXPECT_EQ(tl.seconds(Phase::kCpuGpuTransfer), 0.0);
  EXPECT_GT(tl.gpu_busy_seconds(), 0.0);
  EXPECT_GT(tl.nvlink_bytes(), 0u);  // gradient all-reduce
}

TEST_F(AccountantTest, HotStepFasterThanBaseline) {
  Timeline base;
  Timeline hot;
  accountant_.ChargeBaselineStep(MakeWork(), base);
  accountant_.ChargeHotStep(MakeWork(), hot);
  EXPECT_LT(hot.TotalSeconds(), base.TotalSeconds());
}

TEST_F(AccountantTest, HotAllReduceCoversEmbeddingGradients) {
  // With embedding gradients folded into the hot all-reduce, its payload
  // exceeds the baseline's dense-only all-reduce.
  Timeline base;
  Timeline hot;
  accountant_.ChargeBaselineStep(MakeWork(), base);
  accountant_.ChargeHotStep(MakeWork(), hot);
  EXPECT_GT(hot.nvlink_bytes(), base.nvlink_bytes());
}

TEST_F(AccountantTest, SyncChargesScaleWithBytes) {
  Timeline small;
  Timeline big;
  accountant_.ChargeSyncToGpus(1 << 20, small);
  accountant_.ChargeSyncToGpus(64 << 20, big);
  EXPECT_GT(big.seconds(Phase::kEmbeddingSync),
            small.seconds(Phase::kEmbeddingSync));
  // Broadcast counts bytes once per GPU (4 here).
  EXPECT_EQ(small.pcie_bytes(), 4ull << 20);

  Timeline back;
  accountant_.ChargeSyncToCpu(1 << 20, back);
  EXPECT_EQ(back.pcie_bytes(), 1ull << 20);
}

TEST_F(AccountantTest, CacheStepAllHitsAvoidsCpu) {
  Timeline tl;
  BatchWork w = MakeWork();
  accountant_.ChargeCacheStep(w, w.embedding_read_bytes, 0, 0, tl);
  EXPECT_EQ(tl.cpu_busy_seconds(), 0.0);
  EXPECT_EQ(tl.pcie_bytes(), 0u);
}

TEST_F(AccountantTest, CacheStepMissesPayHostRoundTrip) {
  Timeline tl;
  BatchWork w = MakeWork();
  const uint64_t miss = w.embedding_read_bytes / 10;
  accountant_.ChargeCacheStep(w, w.embedding_read_bytes - miss, miss,
                              w.touched_bytes / 10, tl);
  EXPECT_GT(tl.cpu_busy_seconds(), 0.0);
  EXPECT_EQ(tl.pcie_bytes(), 2 * miss);
  // Even a small miss payload costs at least two host interventions.
  EXPECT_GE(tl.seconds(Phase::kCpuGpuTransfer),
            2 * cost_.system().pcie.host_sync_seconds);
}

TEST_F(AccountantTest, CacheMoreMissesCostsMore) {
  BatchWork w = MakeWork();
  Timeline few;
  Timeline many;
  accountant_.ChargeCacheStep(w, w.embedding_read_bytes - 1024, 1024, 512,
                              few);
  accountant_.ChargeCacheStep(w, w.embedding_read_bytes / 2,
                              w.embedding_read_bytes / 2,
                              w.touched_bytes / 2, many);
  EXPECT_GT(many.TotalSeconds(), few.TotalSeconds());
}

TEST_F(AccountantTest, ModelParallelUsesNvlinkOnly) {
  Timeline tl;
  accountant_.ChargeModelParallelStep(MakeWork(), tl);
  EXPECT_EQ(tl.pcie_bytes(), 0u);
  EXPECT_GT(tl.nvlink_bytes(), 0u);
  EXPECT_EQ(tl.cpu_busy_seconds(), 0.0);
}

TEST_F(AccountantTest, ModelParallelSingleGpuHasNoExchange) {
  CostModel cost(MakePaperServer(1));
  StepAccountant accountant(&cost);
  Timeline tl;
  accountant.ChargeModelParallelStep(MakeWork(), tl);
  EXPECT_EQ(tl.nvlink_bytes(), 0u);
}

TEST_F(AccountantTest, NvOptAllTablesOnGpuAvoidsCpu) {
  Timeline tl;
  BatchWork w = MakeWork(4);
  accountant_.ChargeNvOptStep(w, {true, true, true, true}, 16, 1024, tl);
  EXPECT_EQ(tl.cpu_busy_seconds(), 0.0);
  EXPECT_EQ(tl.pcie_bytes(), 0u);
}

TEST_F(AccountantTest, NvOptSpilledTablesPayBaselinePath) {
  Timeline tl;
  BatchWork w = MakeWork(4);
  accountant_.ChargeNvOptStep(w, {true, true, false, false}, 16, 1024, tl);
  EXPECT_GT(tl.cpu_busy_seconds(), 0.0);
  EXPECT_GT(tl.pcie_bytes(), 0u);
}

TEST_F(AccountantTest, MoreGpusShrinkGpuPhases) {
  CostModel cost1(MakePaperServer(1));
  StepAccountant acc1(&cost1);
  Timeline one;
  acc1.ChargeHotStep(MakeWork(), one);
  Timeline four;
  accountant_.ChargeHotStep(MakeWork(), four);
  EXPECT_LT(four.seconds(Phase::kEmbeddingForward),
            one.seconds(Phase::kEmbeddingForward));
}

TEST_F(AccountantTest, PipelinedBaselineShortensWall) {
  BatchWork w = MakeWork();
  Timeline serial;
  Timeline piped;
  accountant_.ChargeBaselineStep(w, serial);
  accountant_.ChargeBaselineStepPipelined(w, piped);
  // Identical device work and traffic...
  EXPECT_DOUBLE_EQ(piped.PhaseSumSeconds(), serial.PhaseSumSeconds());
  EXPECT_EQ(piped.pcie_bytes(), serial.pcie_bytes());
  EXPECT_DOUBLE_EQ(piped.cpu_busy_seconds(), serial.cpu_busy_seconds());
  // ...but a shorter wall: overlap hides the smaller device path.
  EXPECT_LT(piped.TotalSeconds(), serial.TotalSeconds());
  // The wall can never drop below either device path or the serial part.
  EXPECT_GE(piped.TotalSeconds(), piped.cpu_busy_seconds());
  EXPECT_GE(piped.TotalSeconds(), piped.gpu_busy_seconds());
}

TEST_F(AccountantTest, PipelinedWallAtLeastSerialSegments) {
  BatchWork w = MakeWork();
  Timeline piped;
  accountant_.ChargeBaselineStepPipelined(w, piped);
  const double serial_segments = piped.seconds(Phase::kCpuGpuTransfer) +
                                 piped.seconds(Phase::kAllReduce);
  EXPECT_GE(piped.TotalSeconds(), serial_segments);
}

TEST_F(AccountantTest, SmallBatchesUnderutilizeGpus) {
  BatchWork big = MakeWork();
  BatchWork small = MakeWork();
  small.batch_size = 64;  // same flops, worse occupancy
  Timeline tl_big;
  Timeline tl_small;
  accountant_.ChargeHotStep(big, tl_big);
  accountant_.ChargeHotStep(small, tl_small);
  EXPECT_GT(tl_small.seconds(Phase::kMlpForward),
            tl_big.seconds(Phase::kMlpForward));
}

}  // namespace
}  // namespace fae
