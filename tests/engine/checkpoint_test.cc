#include "engine/checkpoint.h"

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "engine/trainer.h"
#include "models/factory.h"
#include "util/file_io.h"

namespace fae {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

struct Fixture {
  Fixture()
      : schema(MakeSchema(WorkloadKind::kKaggleDlrm, DatasetScale::kTiny)),
        dataset(SyntheticGenerator(schema, {.seed = 71}).Generate(2400)),
        split(dataset.MakeSplit(0.15)) {}

  std::unique_ptr<RecModel> NewModel(uint64_t seed = 5) const {
    return MakeModel(schema, /*full_size=*/false, seed);
  }

  static TrainOptions Options() {
    TrainOptions opt;
    opt.per_gpu_batch = 64;
    opt.epochs = 2;
    opt.eval_samples = 256;
    opt.eval_batch = 128;
    opt.evals_per_epoch = 5;
    return opt;
  }

  static FaeConfig Config() {
    FaeConfig cfg;
    cfg.sample_rate = 0.3;
    cfg.gpu_memory_budget = 8ULL << 20;
    cfg.large_table_bytes = 1ULL << 12;
    cfg.num_threads = 2;
    return cfg;
  }

  DatasetSchema schema;
  Dataset dataset;
  Dataset::Split split;
};

void ExpectSameCurve(const std::vector<CurvePoint>& a,
                     const std::vector<CurvePoint>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].iteration, b[i].iteration) << "point " << i;
    EXPECT_EQ(a[i].train_loss, b[i].train_loss) << "point " << i;
    EXPECT_EQ(a[i].train_acc, b[i].train_acc) << "point " << i;
    EXPECT_EQ(a[i].test_loss, b[i].test_loss) << "point " << i;
    EXPECT_EQ(a[i].test_acc, b[i].test_acc) << "point " << i;
  }
}

// The golden resume property: crash mid-run, resume from the periodic
// checkpoint, and the loss curve (and modeled time) match an uninterrupted
// run bit for bit.
TEST(CheckpointTest, BaselineResumeReproducesRunExactly) {
  Fixture f;
  const std::string path = TempPath("fae_resume_baseline.faec");

  auto model_a = f.NewModel(5);
  Trainer uninterrupted(model_a.get(), MakePaperServer(1), Fixture::Options());
  auto a = uninterrupted.TrainBaselineResumable(f.dataset, f.split);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_FALSE(a->interrupted);

  TrainOptions opt = Fixture::Options();
  opt.checkpoint.path = path;
  opt.checkpoint.every_steps = 5;
  auto crash_plan = FaultInjector::Parse("crash@13");
  ASSERT_TRUE(crash_plan.ok());
  opt.fault_injector = &*crash_plan;
  auto model_b = f.NewModel(5);
  Trainer crashing(model_b.get(), MakePaperServer(1), opt);
  auto b = crashing.TrainBaselineResumable(f.dataset, f.split);
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_TRUE(b->interrupted);
  EXPECT_EQ(b->num_batches, 13u);
  EXPECT_EQ(b->faults.crashes, 1u);

  // Resume into a model with a *different* init seed: every weight must
  // come from the checkpoint for the curves to match.
  TrainOptions resume_opt = Fixture::Options();
  resume_opt.checkpoint.path = path;
  resume_opt.checkpoint.every_steps = 5;
  resume_opt.checkpoint.resume = true;
  auto model_c = f.NewModel(999);
  Trainer resumed(model_c.get(), MakePaperServer(1), resume_opt);
  auto c = resumed.TrainBaselineResumable(f.dataset, f.split);
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  EXPECT_TRUE(c->resumed);
  EXPECT_EQ(c->resumed_at, 10u);  // last multiple of every_steps before 13
  EXPECT_EQ(c->num_batches, a->num_batches);
  ExpectSameCurve(a->curve, c->curve);
  EXPECT_DOUBLE_EQ(c->final_test_loss, a->final_test_loss);
  EXPECT_DOUBLE_EQ(c->final_test_acc, a->final_test_acc);
  EXPECT_DOUBLE_EQ(c->modeled_seconds, a->modeled_seconds);
  (void)RemoveFile(path);
}

// Same golden property for FAE, whose checkpoints land at schedule-chunk
// boundaries (master authoritative, replicas re-pulled on resume). Under
// kFull the modeled sync traffic is also identical; under kDirty the resume
// costs at most one extra full-slice pull while the math stays identical.
void RunFaeResumeGolden(SyncStrategy strategy) {
  Fixture f;
  // Unique per strategy: the two instantiations run concurrently under
  // a parallel ctest.
  const std::string path = TempPath(
      strategy == SyncStrategy::kFull ? "fae_resume_fae_full.faec"
                                      : "fae_resume_fae_dirty.faec");
  const FaeConfig cfg = Fixture::Config();
  FaePipeline pipeline(cfg);
  auto plan = pipeline.Prepare(f.dataset, f.split.train);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  TrainOptions base_opt = Fixture::Options();
  base_opt.sync_strategy = strategy;

  auto model_a = f.NewModel(5);
  Trainer uninterrupted(model_a.get(), MakePaperServer(1), base_opt);
  auto a = uninterrupted.TrainFaeWithPlan(f.dataset, f.split, cfg, *plan);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_GT(a->num_batches, 45u);  // the crash step must fall inside the run

  TrainOptions opt = base_opt;
  opt.checkpoint.path = path;
  opt.checkpoint.every_steps = 1;  // save at every chunk boundary
  auto crash_plan = FaultInjector::Parse("crash@45");
  ASSERT_TRUE(crash_plan.ok());
  opt.fault_injector = &*crash_plan;
  auto model_b = f.NewModel(5);
  Trainer crashing(model_b.get(), MakePaperServer(1), opt);
  auto b = crashing.TrainFaeWithPlan(f.dataset, f.split, cfg, *plan);
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_TRUE(b->interrupted);
  EXPECT_EQ(b->faults.crashes, 1u);

  TrainOptions resume_opt = base_opt;
  resume_opt.checkpoint.path = path;
  resume_opt.checkpoint.resume = true;
  auto model_c = f.NewModel(999);
  Trainer resumed(model_c.get(), MakePaperServer(1), resume_opt);
  auto c = resumed.TrainFaeWithPlan(f.dataset, f.split, cfg, *plan);
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  EXPECT_TRUE(c->resumed);
  EXPECT_LE(c->resumed_at, 45u);
  EXPECT_EQ(c->num_batches, a->num_batches);
  ExpectSameCurve(a->curve, c->curve);
  EXPECT_DOUBLE_EQ(c->final_test_loss, a->final_test_loss);
  if (strategy == SyncStrategy::kFull) {
    EXPECT_EQ(c->sync_bytes, a->sync_bytes);
    EXPECT_DOUBLE_EQ(c->modeled_seconds, a->modeled_seconds);
  } else {
    // The first hot chunk after a resume re-pulls the full slice instead
    // of only the dirty rows.
    EXPECT_GE(c->sync_bytes, a->sync_bytes);
    EXPECT_LE(c->sync_bytes, a->sync_bytes + a->hot_bytes);
  }
  (void)RemoveFile(path);
}

TEST(CheckpointTest, FaeResumeReproducesRunExactlyFullSync) {
  RunFaeResumeGolden(SyncStrategy::kFull);
}

TEST(CheckpointTest, FaeResumeReproducesRunExactlyDirtySync) {
  RunFaeResumeGolden(SyncStrategy::kDirty);
}

TEST(CheckpointTest, FaultSuiteCompletesWithStats) {
  Fixture f;
  TrainOptions opt = Fixture::Options();
  opt.epochs = 1;
  auto plan = FaultInjector::Parse("device@3,stall@5:0.05,corrupt@8,device@10x3");
  ASSERT_TRUE(plan.ok());
  opt.fault_injector = &*plan;
  auto model = f.NewModel();
  Trainer trainer(model.get(), MakePaperServer(2), opt);
  auto report = trainer.TrainFae(f.dataset, f.split, Fixture::Config());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->interrupted);
  EXPECT_EQ(report->faults.device_faults, 2u);
  EXPECT_EQ(report->faults.retries, 4u);  // 1 + 3 attempts
  EXPECT_EQ(report->faults.link_stalls, 1u);
  EXPECT_EQ(report->faults.corrupt_syncs, 1u);
  EXPECT_EQ(report->faults.crashes, 0u);
  EXPECT_GT(report->timeline.seconds(Phase::kFaultRecovery), 0.0);
  // The corrupt-sync recovery re-pulled the whole hot slice.
  EXPECT_GT(report->sync_bytes, 0u);
  EXPECT_GT(report->final_test_acc, 0.4);
}

TEST(CheckpointTest, PermanentDeviceFaultExhaustsRetryBudget) {
  Fixture f;
  TrainOptions opt = Fixture::Options();
  opt.epochs = 1;
  auto plan = FaultInjector::Parse("device@5x7");  // beyond kMaxFaultRetries
  ASSERT_TRUE(plan.ok());
  opt.fault_injector = &*plan;
  auto model = f.NewModel();
  Trainer trainer(model.get(), MakePaperServer(1), opt);
  auto report = trainer.TrainBaselineResumable(f.dataset, f.split);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kResourceExhausted);
}

TEST(CheckpointTest, ResumeRejectsMismatchedRun) {
  Fixture f;
  const std::string path = TempPath("fae_resume_mismatch.faec");

  TrainOptions opt = Fixture::Options();
  opt.epochs = 1;
  opt.checkpoint.path = path;
  opt.checkpoint.every_steps = 5;
  auto model = f.NewModel(5);
  Trainer writer(model.get(), MakePaperServer(1), opt);
  ASSERT_TRUE(writer.TrainBaselineResumable(f.dataset, f.split).ok());

  // Different numerics (learning rate) => different options fingerprint.
  {
    TrainOptions other = opt;
    other.checkpoint.resume = true;
    other.dense_lr = 0.05f;
    auto m = f.NewModel(5);
    Trainer t(m.get(), MakePaperServer(1), other);
    auto r = t.TrainBaselineResumable(f.dataset, f.split);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  }
  // A baseline checkpoint cannot resume an FAE run.
  {
    TrainOptions other = opt;
    other.checkpoint.resume = true;
    auto m = f.NewModel(5);
    Trainer t(m.get(), MakePaperServer(1), other);
    auto r = t.TrainFae(f.dataset, f.split, Fixture::Config());
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  }
  // Missing checkpoint file.
  {
    TrainOptions other = opt;
    other.checkpoint.path = TempPath("fae_resume_missing.faec");
    other.checkpoint.resume = true;
    auto m = f.NewModel(5);
    Trainer t(m.get(), MakePaperServer(1), other);
    auto r = t.TrainBaselineResumable(f.dataset, f.split);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  }
  // Resume without a path.
  {
    TrainOptions other = opt;
    other.checkpoint.path.clear();
    other.checkpoint.resume = true;
    auto m = f.NewModel(5);
    Trainer t(m.get(), MakePaperServer(1), other);
    auto r = t.TrainBaselineResumable(f.dataset, f.split);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
  (void)RemoveFile(path);
}

TEST(CheckpointTest, IoRoundTripRestoresEveryField) {
  Fixture f;
  auto model = f.NewModel(5);
  const std::string path = TempPath("fae_ckpt_roundtrip.faec");

  TrainerCheckpoint ck;
  ck.mode = 1;
  ck.dataset_fingerprint = 0xfeedfacecafef00dULL;
  ck.options_fingerprint = 0x123456789abcdef0ULL;
  ck.epoch = 3;
  ck.iteration = 1234;
  ck.batch_in_epoch = 17;
  ck.hot_batches = 40;
  ck.cold_batches = 21;
  ck.sync_bytes = 1 << 20;
  Xoshiro256 rng(123);
  rng.NextGaussian();  // populate the cached-gaussian half of the state
  ck.rng = rng.state();
  RunningMetric metric;
  metric.Observe(1.5, 3, 10);
  metric.Observe(0.5, 7, 10);
  ck.metric = metric.state();
  ck.window.loss_sum = 2.5;
  ck.window.samples = 4;
  ck.scheduler.rate = 37.5;
  ck.scheduler.issued_hot = 9;
  ck.scheduler.transitions = 4;
  ck.scheduler.has_prev_loss = true;
  ck.scheduler.prev_loss = 0.61;
  Timeline tl;
  tl.Charge(Phase::kEmbeddingSync, 1.25);
  tl.Charge(Phase::kFaultRecovery, 0.75);
  tl.AddPcieBytes(4096);
  ck.timeline = tl.state();
  ck.curve = {{10, 0.9, 0.5, 0.8, 0.55}, {20, 0.7, 0.6, 0.65, 0.62}};

  ASSERT_TRUE(CheckpointIo::Save(path, ck, *model).ok());

  auto restored_model = f.NewModel(999);
  auto loaded = CheckpointIo::Load(path, *restored_model);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->mode, ck.mode);
  EXPECT_EQ(loaded->dataset_fingerprint, ck.dataset_fingerprint);
  EXPECT_EQ(loaded->options_fingerprint, ck.options_fingerprint);
  EXPECT_EQ(loaded->epoch, 3u);
  EXPECT_EQ(loaded->iteration, 1234u);
  EXPECT_EQ(loaded->batch_in_epoch, 17u);
  EXPECT_EQ(loaded->hot_batches, 40u);
  EXPECT_EQ(loaded->cold_batches, 21u);
  EXPECT_EQ(loaded->sync_bytes, 1u << 20);
  EXPECT_TRUE(loaded->rng == ck.rng);
  EXPECT_DOUBLE_EQ(loaded->metric.loss_sum, ck.metric.loss_sum);
  EXPECT_EQ(loaded->metric.correct, ck.metric.correct);
  EXPECT_EQ(loaded->metric.samples, ck.metric.samples);
  EXPECT_DOUBLE_EQ(loaded->window.loss_sum, 2.5);
  EXPECT_DOUBLE_EQ(loaded->scheduler.rate, 37.5);
  EXPECT_EQ(loaded->scheduler.issued_hot, 9u);
  EXPECT_EQ(loaded->scheduler.transitions, 4u);
  EXPECT_TRUE(loaded->scheduler.has_prev_loss);
  EXPECT_DOUBLE_EQ(loaded->scheduler.prev_loss, 0.61);
  EXPECT_DOUBLE_EQ(loaded->timeline.seconds[static_cast<size_t>(
                       Phase::kEmbeddingSync)],
                   1.25);
  EXPECT_DOUBLE_EQ(loaded->timeline.seconds[static_cast<size_t>(
                       Phase::kFaultRecovery)],
                   0.75);
  EXPECT_EQ(loaded->timeline.pcie_bytes, 4096u);
  ASSERT_EQ(loaded->curve.size(), 2u);
  EXPECT_EQ(loaded->curve[1].iteration, 20u);
  EXPECT_DOUBLE_EQ(loaded->curve[1].test_loss, 0.65);
  (void)RemoveFile(path);
}

TEST(CheckpointTest, IoRejectsCorruptionAndTruncation) {
  Fixture f;
  auto model = f.NewModel(5);
  const std::string path = TempPath("fae_ckpt_corrupt.faec");
  TrainerCheckpoint ck;
  ck.iteration = 99;
  ASSERT_TRUE(CheckpointIo::Save(path, ck, *model).ok());
  const auto size = std::filesystem::file_size(path);

  // Flip one byte in the middle: the whole-file CRC must catch it before
  // anything (model weights included) is restored.
  {
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    file.seekg(static_cast<std::streamoff>(size / 2));
    char byte = 0;
    file.read(&byte, 1);
    byte ^= 0x20;
    file.seekp(static_cast<std::streamoff>(size / 2));
    file.write(&byte, 1);
  }
  auto m = f.NewModel(999);
  auto corrupt = CheckpointIo::Load(path, *m);
  ASSERT_FALSE(corrupt.ok());
  EXPECT_EQ(corrupt.status().code(), StatusCode::kDataLoss);

  ASSERT_TRUE(CheckpointIo::Save(path, ck, *model).ok());
  std::filesystem::resize_file(path, size - 7);
  auto truncated = CheckpointIo::Load(path, *m);
  ASSERT_FALSE(truncated.ok());
  EXPECT_EQ(truncated.status().code(), StatusCode::kDataLoss);

  (void)RemoveFile(path);
  EXPECT_EQ(CheckpointIo::Load(TempPath("fae_ckpt_gone.faec"), *m)
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST(CheckpointTest, OverBudgetPlanDegradesGracefully) {
  Fixture f;
  const FaeConfig cfg = Fixture::Config();
  FaePipeline pipeline(cfg);
  auto plan = pipeline.Prepare(f.dataset, f.split.train);
  ASSERT_TRUE(plan.ok());
  ASSERT_GT(plan->hot_bytes, 0u);

  TrainOptions opt = Fixture::Options();
  opt.epochs = 1;
  opt.run_math = false;
  SystemSpec sys = MakePaperServer(1);
  sys.hot_embedding_budget = plan->hot_bytes / 2;
  auto model = f.NewModel();
  Trainer trainer(model.get(), sys, opt);
  auto report = trainer.TrainFaeWithPlan(f.dataset, f.split, cfg, *plan);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->degraded);
  EXPECT_GT(report->demoted_rows, 0u);
  EXPECT_GT(report->fallback_inputs, 0u);
  EXPECT_LE(report->hot_bytes, sys.hot_embedding_budget);
  EXPECT_LT(report->hot_fraction, plan->inputs.HotFraction());
  EXPECT_GT(report->num_batches, 0u);
}

}  // namespace
}  // namespace fae
