// --cold-precision through the real engine (DESIGN.md §14): quantized FAE
// runs, the hot path's bit-identity when nothing is cold, the golden
// crash-resume property in quantized mode, the legal cross-precision
// resume directions, and the option-combination rejections.

#include <cmath>
#include <cstring>
#include <filesystem>

#include <gtest/gtest.h>

#include "core/fae_pipeline.h"
#include "data/synthetic.h"
#include "engine/trainer.h"
#include "models/factory.h"

namespace fae {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

struct Fixture {
  Fixture()
      : schema(MakeSchema(WorkloadKind::kKaggleDlrm, DatasetScale::kTiny)),
        dataset(SyntheticGenerator(schema, {.seed = 71}).Generate(2400)),
        split(dataset.MakeSplit(0.15)) {}

  std::unique_ptr<RecModel> NewModel(uint64_t seed = 5) const {
    return MakeModel(schema, /*full_size=*/false, seed);
  }

  static TrainOptions Options(ColdPrecision p) {
    TrainOptions opt;
    opt.per_gpu_batch = 64;
    opt.epochs = 2;
    opt.eval_samples = 256;
    opt.eval_batch = 128;
    opt.evals_per_epoch = 5;
    opt.cold_precision = p;
    return opt;
  }

  // Tight enough that the plan leaves real cold rows on the large tables.
  static FaeConfig Config(ColdPrecision p) {
    FaeConfig cfg;
    cfg.sample_rate = 0.3;
    cfg.gpu_memory_budget = 512ULL << 10;
    cfg.large_table_bytes = 1ULL << 12;
    cfg.num_threads = 2;
    cfg.cold_precision = p;
    return cfg;
  }

  DatasetSchema schema;
  Dataset dataset;
  Dataset::Split split;
};

void ExpectSameCurve(const std::vector<CurvePoint>& a,
                     const std::vector<CurvePoint>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].iteration, b[i].iteration) << "point " << i;
    EXPECT_EQ(a[i].train_loss, b[i].train_loss) << "point " << i;
    EXPECT_EQ(a[i].test_loss, b[i].test_loss) << "point " << i;
  }
}

TEST(ColdPrecisionTest, QuantizedFaeRunReportsColdStore) {
  Fixture f;
  for (ColdPrecision p : {ColdPrecision::kFp16, ColdPrecision::kInt8}) {
    const FaeConfig cfg = Fixture::Config(p);
    FaePipeline pipeline(cfg);
    auto plan = pipeline.Prepare(f.dataset, f.split.train);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    auto model = f.NewModel(5);
    Trainer trainer(model.get(), MakePaperServer(1), Fixture::Options(p));
    auto report = trainer.TrainFaeWithPlan(f.dataset, f.split, cfg, *plan);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_GT(report->cold_rows, 0u);
    EXPECT_GT(report->cold_store_bytes, 0u);
    // The store is smaller than the same rows at fp32, and the trainer's
    // effective budget credits at least that difference.
    const uint64_t fp32_bytes =
        report->cold_rows * f.schema.embedding_dim * sizeof(float);
    EXPECT_LT(report->cold_store_bytes, fp32_bytes);
    EXPECT_GT(report->effective_hot_budget,
              MakePaperServer(1).hot_embedding_budget);
    // The masters really are compressed at the end of the run.
    uint64_t cold = 0;
    for (const EmbeddingTable& t : model->tables()) cold += t.cold_rows();
    EXPECT_EQ(cold, report->cold_rows);
    EXPECT_TRUE(std::isfinite(report->final_test_loss));
  }
}

// With a cutoff above every table the plan is all-hot, compression never
// engages, and all three modes must produce bit-identical master tables —
// the quantizer is demonstrably outside the hot path.
TEST(ColdPrecisionTest, HotPathBitIdenticalWhenEverythingHot) {
  Fixture f;
  std::vector<std::vector<float>> baseline;
  for (ColdPrecision p : {ColdPrecision::kFp32, ColdPrecision::kFp16,
                          ColdPrecision::kInt8}) {
    FaeConfig cfg = Fixture::Config(p);
    cfg.large_table_bytes = 1ULL << 40;
    cfg.gpu_memory_budget = 1ULL << 40;
    FaePipeline pipeline(cfg);
    auto plan = pipeline.Prepare(f.dataset, f.split.train);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    auto model = f.NewModel(5);
    Trainer trainer(model.get(), MakePaperServer(1), Fixture::Options(p));
    auto report = trainer.TrainFaeWithPlan(f.dataset, f.split, cfg, *plan);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report->cold_rows, 0u);
    if (baseline.empty()) {
      for (const EmbeddingTable& t : model->tables())
        baseline.push_back(t.raw());
    } else {
      size_t i = 0;
      for (const EmbeddingTable& t : model->tables()) {
        ASSERT_EQ(t.raw().size(), baseline[i].size());
        EXPECT_EQ(std::memcmp(t.raw().data(), baseline[i].data(),
                              baseline[i].size() * sizeof(float)),
                  0)
            << "table " << i;
        ++i;
      }
    }
  }
}

// The golden resume property holds in quantized mode: crash mid-run,
// resume from the periodic checkpoint (whose model section carries the
// compressed tables verbatim), and the curve matches an uninterrupted
// quantized run bit for bit.
TEST(ColdPrecisionTest, QuantizedResumeReproducesRunExactly) {
  Fixture f;
  const std::string path = TempPath("fae_resume_quant_int8.faec");
  const FaeConfig cfg = Fixture::Config(ColdPrecision::kInt8);
  FaePipeline pipeline(cfg);
  auto plan = pipeline.Prepare(f.dataset, f.split.train);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const TrainOptions base_opt = Fixture::Options(ColdPrecision::kInt8);

  auto model_a = f.NewModel(5);
  Trainer uninterrupted(model_a.get(), MakePaperServer(1), base_opt);
  auto a = uninterrupted.TrainFaeWithPlan(f.dataset, f.split, cfg, *plan);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_GT(a->num_batches, 45u);

  TrainOptions opt = base_opt;
  opt.checkpoint.path = path;
  opt.checkpoint.every_steps = 1;
  auto crash_plan = FaultInjector::Parse("crash@45");
  ASSERT_TRUE(crash_plan.ok());
  opt.fault_injector = &*crash_plan;
  auto model_b = f.NewModel(5);
  Trainer crashing(model_b.get(), MakePaperServer(1), opt);
  auto b = crashing.TrainFaeWithPlan(f.dataset, f.split, cfg, *plan);
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_TRUE(b->interrupted);

  TrainOptions resume_opt = base_opt;
  resume_opt.checkpoint.path = path;
  resume_opt.checkpoint.resume = true;
  auto model_c = f.NewModel(999);
  Trainer resumed(model_c.get(), MakePaperServer(1), resume_opt);
  auto c = resumed.TrainFaeWithPlan(f.dataset, f.split, cfg, *plan);
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  EXPECT_TRUE(c->resumed);
  EXPECT_EQ(c->num_batches, a->num_batches);
  ExpectSameCurve(a->curve, c->curve);
  EXPECT_DOUBLE_EQ(c->final_test_loss, a->final_test_loss);
  EXPECT_EQ(c->cold_rows, a->cold_rows);
  std::filesystem::remove(path);
}

// The legal widening direction: an int8 checkpoint resumes at fp32 (cold
// rows dequantized once, exactly); the narrowing and cross-quantized
// directions are refused.
TEST(ColdPrecisionTest, ResumePrecisionDirections) {
  Fixture f;
  const std::string path = TempPath("fae_resume_quant_cross.faec");
  const FaeConfig cfg8 = Fixture::Config(ColdPrecision::kInt8);
  FaePipeline pipeline(cfg8);
  auto plan = pipeline.Prepare(f.dataset, f.split.train);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  TrainOptions opt = Fixture::Options(ColdPrecision::kInt8);
  opt.checkpoint.path = path;
  opt.checkpoint.every_steps = 1;
  auto crash_plan = FaultInjector::Parse("crash@45");
  ASSERT_TRUE(crash_plan.ok());
  opt.fault_injector = &*crash_plan;
  auto model = f.NewModel(5);
  Trainer crashing(model.get(), MakePaperServer(1), opt);
  auto b = crashing.TrainFaeWithPlan(f.dataset, f.split, cfg8, *plan);
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  ASSERT_TRUE(b->interrupted);

  {
    // Widen to fp32: allowed; the run finishes with plain tables.
    TrainOptions widen = Fixture::Options(ColdPrecision::kFp32);
    widen.checkpoint.path = path;
    widen.checkpoint.resume = true;
    FaeConfig cfg32 = cfg8;
    cfg32.cold_precision = ColdPrecision::kFp32;
    auto model_w = f.NewModel(999);
    Trainer resumed(model_w.get(), MakePaperServer(1), widen);
    auto c = resumed.TrainFaeWithPlan(f.dataset, f.split, cfg32, *plan);
    ASSERT_TRUE(c.ok()) << c.status().ToString();
    EXPECT_TRUE(c->resumed);
    EXPECT_EQ(c->cold_rows, 0u);
    for (const EmbeddingTable& t : model_w->tables()) {
      EXPECT_FALSE(t.compressed());
    }
  }
  {
    // int8 -> fp16 would re-round every cold row: refused.
    TrainOptions cross = Fixture::Options(ColdPrecision::kFp16);
    cross.checkpoint.path = path;
    cross.checkpoint.resume = true;
    FaeConfig cfg16 = cfg8;
    cfg16.cold_precision = ColdPrecision::kFp16;
    auto model_x = f.NewModel(999);
    Trainer resumed(model_x.get(), MakePaperServer(1), cross);
    auto c = resumed.TrainFaeWithPlan(f.dataset, f.split, cfg16, *plan);
    ASSERT_FALSE(c.ok());
    EXPECT_EQ(c.status().code(), StatusCode::kFailedPrecondition)
        << c.status().ToString();
  }
  std::filesystem::remove(path);
}

TEST(ColdPrecisionTest, RejectsIllegalCombinations) {
  Fixture f;
  const FaeConfig cfg = Fixture::Config(ColdPrecision::kInt8);
  FaePipeline pipeline(cfg);
  auto plan = pipeline.Prepare(f.dataset, f.split.train);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  {
    // fp16 whole-table emulation and the quantized cold store both change
    // the representation; stacking them is refused.
    TrainOptions opt = Fixture::Options(ColdPrecision::kInt8);
    opt.fp16_embeddings = true;
    auto model = f.NewModel(5);
    Trainer t(model.get(), MakePaperServer(1), opt);
    auto r = t.TrainFaeWithPlan(f.dataset, f.split, cfg, *plan);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
  {
    // The oracle cache's budget accounting assumes fp32 cold rows.
    TrainOptions opt = Fixture::Options(ColdPrecision::kInt8);
    opt.cache = CacheMode::kOracle;
    auto model = f.NewModel(5);
    Trainer t(model.get(), MakePaperServer(1), opt);
    auto r = t.TrainFaeWithPlan(f.dataset, f.split, cfg, *plan);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
  {
    // The options and the plan's config must agree on the precision.
    TrainOptions opt = Fixture::Options(ColdPrecision::kFp16);
    auto model = f.NewModel(5);
    Trainer t(model.get(), MakePaperServer(1), opt);
    auto r = t.TrainFaeWithPlan(f.dataset, f.split, cfg, *plan);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
  {
    // Baseline has no hot/cold partition to quantize.
    TrainOptions opt = Fixture::Options(ColdPrecision::kInt8);
    auto model = f.NewModel(5);
    Trainer t(model.get(), MakePaperServer(1), opt);
    auto r = t.TrainBaselineResumable(f.dataset, f.split);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
  {
    // Model-parallel placement keeps every table sharded at fp32.
    TrainOptions opt = Fixture::Options(ColdPrecision::kInt8);
    auto model = f.NewModel(5);
    Trainer t(model.get(), MakePaperServer(1), opt);
    auto r = t.TrainModelParallel(f.dataset, f.split);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
}

}  // namespace
}  // namespace fae
