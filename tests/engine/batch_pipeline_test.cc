// Unit tests for the double-buffered batch prefetcher (DESIGN.md §11).
// These exercise the producer/consumer handshake directly — in-order
// staging, ring reuse across segments, every practical depth, and dirty
// shutdown with unconsumed work — and are the prime target for the TSan
// build (-DFAE_SANITIZE_THREAD=ON), which checks the slot-ownership
// argument that lets the gather run outside the lock.

#include <cstdint>
#include <numeric>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "data/batch_view.h"
#include "data/flat_dataset.h"
#include "data/schema.h"
#include "engine/batch_pipeline.h"

namespace fae {
namespace {

DatasetSchema TestSchema() {
  DatasetSchema schema;
  schema.name = "pipeline-unit";
  schema.num_dense = 3;
  schema.table_rows = {50, 200, 7};
  schema.embedding_dim = 4;
  return schema;
}

/// Deterministic source dataset with a recognizable per-sample signature:
/// dense values and labels encode the sample id, lookup counts vary per
/// table (including zero-lookup samples in table 2).
FlatDataset MakeSource(size_t n) {
  DatasetSchema schema = TestSchema();
  FlatDataset flat(schema);
  std::mt19937_64 rng(17);
  for (size_t i = 0; i < n; ++i) {
    for (size_t d = 0; d < schema.num_dense; ++d) {
      flat.AppendDense(static_cast<float>(i * 10 + d));
    }
    for (size_t t = 0; t < schema.num_tables(); ++t) {
      const size_t lookups = (t == 2) ? i % 3 : 1 + rng() % 4;
      for (size_t k = 0; k < lookups; ++k) {
        flat.AppendLookup(
            t, static_cast<uint32_t>(rng() % schema.table_rows[t]));
      }
    }
    flat.FinishSample(static_cast<float>(i % 2));
  }
  return flat;
}

/// Asserts the staged view is a sample-for-sample copy of gathering `ids`
/// from `src` directly (the serial trainer's data).
void ExpectStagedEquals(const FlatDataset& src,
                        std::span<const uint64_t> ids, const BatchView& got,
                        bool hot) {
  const FlatDataset want = src.Gather(ids);
  const BatchView ref = MakeBatchView(want, 0, want.size(), hot);
  ASSERT_EQ(got.batch_size(), ref.batch_size());
  EXPECT_EQ(got.hot, hot);
  EXPECT_EQ(got.TotalLookups(), ref.TotalLookups());
  const size_t dense_n = got.batch_size() * src.schema().num_dense;
  for (size_t i = 0; i < dense_n; ++i) {
    EXPECT_EQ(got.dense.data[i], ref.dense.data[i]) << "dense " << i;
  }
  for (size_t i = 0; i < got.batch_size(); ++i) {
    EXPECT_EQ(got.labels[i], ref.labels[i]) << "label " << i;
  }
  ASSERT_EQ(got.num_tables(), ref.num_tables());
  for (size_t t = 0; t < got.num_tables(); ++t) {
    const auto go = got.offsets(t);
    const auto ro = ref.offsets(t);
    ASSERT_EQ(go.size(), ro.size()) << "table " << t;
    // Both are freshly gathered workspaces, so offsets are zero-based and
    // comparable directly; this also pins the rebase contract (front == 0).
    EXPECT_EQ(go.front(), 0u) << "table " << t;
    for (size_t i = 0; i < go.size(); ++i) {
      EXPECT_EQ(go[i], ro[i]) << "table " << t << " offset " << i;
    }
    const auto gi = got.indices(t);
    const auto ri = ref.indices(t);
    ASSERT_EQ(gi.size(), ri.size()) << "table " << t;
    for (size_t i = 0; i < gi.size(); ++i) {
      EXPECT_EQ(gi[i], ri[i]) << "table " << t << " index " << i;
    }
  }
}

std::vector<uint64_t> Iota(size_t n) {
  std::vector<uint64_t> ids(n);
  std::iota(ids.begin(), ids.end(), 0);
  return ids;
}

TEST(BatchPipelineTest, StagesBatchesInBeginOrder) {
  const FlatDataset src = MakeSource(64);
  // Shuffled, overlapping, differently sized id sets — Acquire must hand
  // them back in exactly this order.
  const std::vector<std::vector<uint64_t>> batches = {
      {5, 3, 61, 0},
      {10, 10, 10},  // duplicates are legal: a gather, not a partition
      {63},
      {7, 2, 40, 41, 42, 1, 0, 63},
  };
  BatchPipeline pipeline(2);
  std::vector<BatchPipeline::Spec> specs;
  for (const auto& ids : batches) {
    specs.push_back({&src, std::span<const uint64_t>(ids), false});
  }
  pipeline.Begin(std::move(specs));
  for (const auto& ids : batches) {
    const BatchView& view = pipeline.Acquire();
    ExpectStagedEquals(src, ids, view, false);
    pipeline.Release();
  }
}

TEST(BatchPipelineTest, AllDepthsStageIdentically) {
  const FlatDataset src = MakeSource(48);
  const std::vector<uint64_t> ids = Iota(48);
  for (size_t depth : {size_t{1}, size_t{2}, size_t{3}, size_t{4}}) {
    BatchPipeline pipeline(depth);
    ASSERT_EQ(pipeline.depth(), depth);
    std::vector<BatchPipeline::Spec> specs;
    for (size_t b = 0; b < 48; b += 8) {
      specs.push_back(
          {&src, std::span<const uint64_t>(ids).subspan(b, 8), b % 16 == 0});
    }
    pipeline.Begin(std::move(specs));
    for (size_t b = 0; b < 48; b += 8) {
      const BatchView& view = pipeline.Acquire();
      ExpectStagedEquals(src, std::span<const uint64_t>(ids).subspan(b, 8),
                         view, b % 16 == 0);
      pipeline.Release();
    }
  }
}

TEST(BatchPipelineTest, DepthZeroClampsToOne) {
  BatchPipeline pipeline(0);
  EXPECT_EQ(pipeline.depth(), 1u);
  const FlatDataset src = MakeSource(4);
  const std::vector<uint64_t> ids = Iota(4);
  pipeline.Begin({{&src, std::span<const uint64_t>(ids), false}});
  const BatchView& view = pipeline.Acquire();
  ExpectStagedEquals(src, ids, view, false);
  pipeline.Release();
}

TEST(BatchPipelineTest, SegmentsReuseTheRingWithoutStaleData) {
  // Many segments of different shapes and sources through one pipeline:
  // slot workspaces are recycled, so any stale-tail bug from a previous
  // fill shows up as a mismatch here.
  const FlatDataset big = MakeSource(100);
  const FlatDataset small = MakeSource(9);
  BatchPipeline pipeline(2);
  std::mt19937_64 rng(23);
  for (int segment = 0; segment < 12; ++segment) {
    const FlatDataset& src = (segment % 3 == 0) ? small : big;
    std::vector<std::vector<uint64_t>> batches(1 + rng() % 5);
    for (auto& ids : batches) {
      ids.resize(1 + rng() % 17);
      for (auto& id : ids) id = rng() % src.size();
    }
    std::vector<BatchPipeline::Spec> specs;
    for (const auto& ids : batches) {
      specs.push_back({&src, std::span<const uint64_t>(ids), false});
    }
    pipeline.Begin(std::move(specs));
    for (const auto& ids : batches) {
      const BatchView& view = pipeline.Acquire();
      ExpectStagedEquals(src, ids, view, false);
      pipeline.Release();
    }
  }
}

TEST(BatchPipelineTest, DestructorDrainsAbandonedSegment) {
  // A crash-style exit leaves specs unconsumed (and possibly a fill in
  // flight); the destructor must stop the producer and join cleanly.
  const FlatDataset src = MakeSource(40);
  const std::vector<uint64_t> ids = Iota(40);
  for (size_t consumed : {size_t{0}, size_t{1}, size_t{3}}) {
    BatchPipeline pipeline(2);
    std::vector<BatchPipeline::Spec> specs;
    for (size_t b = 0; b < 40; b += 8) {
      specs.push_back({&src, std::span<const uint64_t>(ids).subspan(b, 8),
                       false});
    }
    pipeline.Begin(std::move(specs));
    for (size_t i = 0; i < consumed; ++i) {
      pipeline.Acquire();
      pipeline.Release();
    }
    // Destructor runs here with 5 - consumed specs still pending.
  }
}

TEST(BatchPipelineTest, DestructorBeforeAnySegment) {
  BatchPipeline pipeline(4);  // idle producer, never given work
}

TEST(BatchPipelineTest, StressManySmallSegments) {
  // Tight producer/consumer ping-pong at full depth; mainly here to give
  // TSan a dense interleaving to chew on.
  const FlatDataset src = MakeSource(32);
  const std::vector<uint64_t> ids = Iota(32);
  BatchPipeline pipeline(4);
  for (int round = 0; round < 200; ++round) {
    std::vector<BatchPipeline::Spec> specs;
    for (size_t b = 0; b < 32; b += 4) {
      specs.push_back(
          {&src, std::span<const uint64_t>(ids).subspan(b, 4), false});
    }
    pipeline.Begin(std::move(specs));
    uint64_t checksum = 0;
    for (size_t b = 0; b < 32; b += 4) {
      const BatchView& view = pipeline.Acquire();
      ASSERT_EQ(view.batch_size(), 4u);
      checksum += view.TotalLookups();
      pipeline.Release();
    }
    EXPECT_EQ(checksum, src.total_lookups());
  }
}

}  // namespace
}  // namespace fae
