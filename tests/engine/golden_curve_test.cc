#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "engine/trainer.h"
#include "models/factory.h"
#include "util/string_util.h"

// Golden-curve regression fixtures: the committed files under
// tests/engine/golden/ pin the exact learning curve (and modeled wall) of
// one tiny baseline run and one tiny FAE run at a fixed seed. Every value
// is printed with %.17g, so the round trip through text is bit-exact and
// any numeric drift — an optimizer tweak, a reordered reduction, a changed
// default — fails loudly here instead of shifting results silently.
//
// To regenerate after an *intentional* numeric change:
//   FAE_UPDATE_GOLDEN=1 ./fae_tests --gtest_filter='GoldenCurveTest.*'
// and commit the rewritten fixtures with the change that caused them.

#ifndef FAE_GOLDEN_DIR
#error "FAE_GOLDEN_DIR must point at tests/engine/golden"
#endif

namespace fae {
namespace {

struct GoldenRun {
  std::vector<CurvePoint> curve;
  double final_test_loss = 0.0;
  double final_test_acc = 0.0;
  double modeled_seconds = 0.0;
};

std::string Render(const GoldenRun& run) {
  std::string out =
      "# fae golden curve v1: iteration train_loss train_acc test_loss "
      "test_acc\n";
  char line[256];
  for (const CurvePoint& p : run.curve) {
    std::snprintf(line, sizeof(line), "%zu %.17g %.17g %.17g %.17g\n",
                  p.iteration, p.train_loss, p.train_acc, p.test_loss,
                  p.test_acc);
    out += line;
  }
  std::snprintf(line, sizeof(line), "final %.17g %.17g %.17g\n",
                run.final_test_loss, run.final_test_acc,
                run.modeled_seconds);
  out += line;
  return out;
}

void CheckAgainstGolden(const GoldenRun& run, const std::string& name) {
  const std::string path = std::string(FAE_GOLDEN_DIR) + "/" + name;
  const std::string rendered = Render(run);
  if (std::getenv("FAE_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << rendered;
    ASSERT_TRUE(out.good());
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden fixture " << path
                         << " — regenerate with FAE_UPDATE_GOLDEN=1";
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string golden = buf.str();
  // The fixtures are written by this test, so byte equality is the whole
  // check; on mismatch, report the first differing line for diagnosis.
  if (rendered == golden) return;
  const auto got_lines = Split(rendered, '\n');
  const auto want_lines = Split(golden, '\n');
  EXPECT_EQ(got_lines.size(), want_lines.size()) << "curve shape changed";
  const size_t n = std::min(got_lines.size(), want_lines.size());
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(got_lines[i], want_lines[i]) << path << " line " << (i + 1);
  }
}

struct Fixture {
  Fixture()
      : schema(MakeSchema(WorkloadKind::kKaggleDlrm, DatasetScale::kTiny)),
        dataset(SyntheticGenerator(schema, {.seed = 71}).Generate(2400)),
        split(dataset.MakeSplit(0.15)) {}

  static TrainOptions Options() {
    TrainOptions opt;
    opt.per_gpu_batch = 64;
    opt.epochs = 2;
    opt.eval_samples = 256;
    opt.eval_batch = 128;
    opt.evals_per_epoch = 5;
    return opt;
  }

  static FaeConfig Config() {
    FaeConfig cfg;
    cfg.sample_rate = 0.3;
    cfg.gpu_memory_budget = 8ULL << 20;
    cfg.large_table_bytes = 1ULL << 12;
    cfg.num_threads = 2;
    return cfg;
  }

  DatasetSchema schema;
  Dataset dataset;
  Dataset::Split split;
};

GoldenRun ToGolden(const TrainReport& r) {
  GoldenRun g;
  g.curve = r.curve;
  g.final_test_loss = r.final_test_loss;
  g.final_test_acc = r.final_test_acc;
  g.modeled_seconds = r.modeled_seconds;
  return g;
}

TEST(GoldenCurveTest, BaselineCurveMatchesFixture) {
  Fixture f;
  auto model = MakeModel(f.schema, /*full_size=*/false, /*seed=*/5);
  Trainer trainer(model.get(), MakePaperServer(1), Fixture::Options());
  auto r = trainer.TrainBaselineResumable(f.dataset, f.split);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_FALSE(r->curve.empty());
  CheckAgainstGolden(ToGolden(*r), "baseline_curve.txt");
}

TEST(GoldenCurveTest, FaeCurveMatchesFixture) {
  Fixture f;
  auto model = MakeModel(f.schema, /*full_size=*/false, /*seed=*/5);
  Trainer trainer(model.get(), MakePaperServer(1), Fixture::Options());
  auto r = trainer.TrainFae(f.dataset, f.split, Fixture::Config());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_FALSE(r->curve.empty());
  CheckAgainstGolden(ToGolden(*r), "fae_curve.txt");
}

// Stale-update skipping rides the same fixture: its guarded curve is just
// as deterministic as the exact one, so it gets its own golden file and
// drift in the skip heuristics (EMA, guard, revisit cadence) fails here.
TEST(GoldenCurveTest, StaleSkipCurveMatchesFixture) {
  Fixture f;
  auto model = MakeModel(f.schema, /*full_size=*/false, /*seed=*/5);
  TrainOptions opt = Fixture::Options();
  opt.stale_skip = StaleSkipMode::kAll;
  opt.stale_threshold = 0.5;
  opt.stale_min_visits = 2;
  Trainer trainer(model.get(), MakePaperServer(1), opt);
  auto r = trainer.TrainBaselineResumable(f.dataset, f.split);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_FALSE(r->curve.empty());
  CheckAgainstGolden(ToGolden(*r), "stale_skip_curve.txt");
}

}  // namespace
}  // namespace fae
