#include "engine/dirty_rows.h"

#include <vector>

#include <gtest/gtest.h>

namespace fae {
namespace {

TEST(DirtyRowsTest, MarkRecordsEachRowOnce) {
  DirtyRows dirty({100, 200});
  dirty.Mark(0, 5);
  dirty.Mark(0, 5);
  dirty.Mark(0, 64);  // different bitmap word
  dirty.Mark(1, 199);
  EXPECT_TRUE(dirty.IsDirty(0, 5));
  EXPECT_TRUE(dirty.IsDirty(0, 64));
  EXPECT_FALSE(dirty.IsDirty(0, 6));
  EXPECT_TRUE(dirty.IsDirty(1, 199));
  EXPECT_FALSE(dirty.IsDirty(1, 0));
  EXPECT_EQ(dirty.TotalTouched(), 3u);
  EXPECT_EQ(dirty.touched()[0], (std::vector<uint32_t>{5, 64}));
  EXPECT_EQ(dirty.touched()[1], (std::vector<uint32_t>{199}));
}

TEST(DirtyRowsTest, MarkAllDeduplicatesInFirstTouchOrder) {
  DirtyRows dirty({64});
  const std::vector<uint32_t> rows = {9, 3, 9, 1, 3};
  dirty.MarkAll(0, rows);
  EXPECT_EQ(dirty.touched()[0], (std::vector<uint32_t>{9, 3, 1}));
}

TEST(DirtyRowsTest, ClearResetsEverythingSparsely) {
  DirtyRows dirty({1000});
  for (uint32_t r = 0; r < 1000; r += 37) dirty.Mark(0, r);
  ASSERT_GT(dirty.TotalTouched(), 0u);
  dirty.Clear();
  EXPECT_EQ(dirty.TotalTouched(), 0u);
  for (uint32_t r = 0; r < 1000; ++r) {
    EXPECT_FALSE(dirty.IsDirty(0, r)) << r;
  }
  // Marking works again after a clear.
  dirty.Mark(0, 37);
  EXPECT_TRUE(dirty.IsDirty(0, 37));
  EXPECT_EQ(dirty.TotalTouched(), 1u);
}

TEST(DirtyRowsTest, InitResizesAndResets) {
  DirtyRows dirty;
  dirty.Init({10});
  dirty.Mark(0, 9);
  dirty.Init({10, 20});
  EXPECT_EQ(dirty.num_tables(), 2u);
  EXPECT_EQ(dirty.TotalTouched(), 0u);
  EXPECT_FALSE(dirty.IsDirty(0, 9));
}

}  // namespace
}  // namespace fae
