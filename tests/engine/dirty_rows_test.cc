#include "engine/dirty_rows.h"

#include <vector>

#include <gtest/gtest.h>

namespace fae {
namespace {

TEST(DirtyRowsTest, MarkRecordsEachRowOnce) {
  DirtyRows dirty({100, 200});
  dirty.Mark(0, 5);
  dirty.Mark(0, 5);
  dirty.Mark(0, 64);  // different bitmap word
  dirty.Mark(1, 199);
  EXPECT_TRUE(dirty.IsDirty(0, 5));
  EXPECT_TRUE(dirty.IsDirty(0, 64));
  EXPECT_FALSE(dirty.IsDirty(0, 6));
  EXPECT_TRUE(dirty.IsDirty(1, 199));
  EXPECT_FALSE(dirty.IsDirty(1, 0));
  EXPECT_EQ(dirty.TotalTouched(), 3u);
  EXPECT_EQ(dirty.touched()[0], (std::vector<uint32_t>{5, 64}));
  EXPECT_EQ(dirty.touched()[1], (std::vector<uint32_t>{199}));
}

TEST(DirtyRowsTest, MarkAllDeduplicatesInFirstTouchOrder) {
  DirtyRows dirty({64});
  const std::vector<uint32_t> rows = {9, 3, 9, 1, 3};
  dirty.MarkAll(0, rows);
  EXPECT_EQ(dirty.touched()[0], (std::vector<uint32_t>{9, 3, 1}));
}

TEST(DirtyRowsTest, ClearResetsEverythingSparsely) {
  DirtyRows dirty({1000});
  for (uint32_t r = 0; r < 1000; r += 37) dirty.Mark(0, r);
  ASSERT_GT(dirty.TotalTouched(), 0u);
  dirty.Clear();
  EXPECT_EQ(dirty.TotalTouched(), 0u);
  for (uint32_t r = 0; r < 1000; ++r) {
    EXPECT_FALSE(dirty.IsDirty(0, r)) << r;
  }
  // Marking works again after a clear.
  dirty.Mark(0, 37);
  EXPECT_TRUE(dirty.IsDirty(0, 37));
  EXPECT_EQ(dirty.TotalTouched(), 1u);
}

// A delta sync may consume one table's touched list while another table's
// rows stay pending; the Clear that follows must reset both without
// leaving stale bits behind — including bits that shared a bitmap word
// with a cleared neighbor (Clear zeroes whole words, which is only safe
// because every set bit is also in a touched list).
TEST(DirtyRowsTest, ClearAfterPartialFlushLeavesNoStaleBits) {
  DirtyRows dirty({128, 128});
  dirty.MarkAll(0, std::vector<uint32_t>{3, 5, 6});  // one bitmap word
  dirty.Mark(0, 64);
  dirty.Mark(1, 70);
  // "Flush" table 0: the replicator reads its list; table 1 stays pending.
  const std::vector<uint32_t> flushed = dirty.touched()[0];
  EXPECT_EQ(flushed, (std::vector<uint32_t>{3, 5, 6, 64}));
  dirty.Clear();
  EXPECT_EQ(dirty.TotalTouched(), 0u);
  for (size_t t = 0; t < 2; ++t) {
    for (uint32_t r = 0; r < 128; ++r) {
      EXPECT_FALSE(dirty.IsDirty(t, r)) << "table " << t << " row " << r;
    }
  }
  // Re-marking one row of a previously shared word must not resurrect its
  // old neighbors.
  dirty.Mark(0, 5);
  EXPECT_TRUE(dirty.IsDirty(0, 5));
  EXPECT_FALSE(dirty.IsDirty(0, 3));
  EXPECT_FALSE(dirty.IsDirty(0, 6));
  EXPECT_EQ(dirty.touched()[0], (std::vector<uint32_t>{5}));
  EXPECT_EQ(dirty.TotalTouched(), 1u);
}

// Touched lists grow past whatever capacity earlier sync intervals left
// behind, and the grown capacity is then reused allocation-free: marking
// the same working set after a Clear must not reallocate the list.
TEST(DirtyRowsTest, GrowthPastCapacityThenSteadyStateReuse) {
  DirtyRows dirty({10000});
  for (uint32_t r = 0; r < 100; ++r) dirty.Mark(0, r);
  dirty.Clear();
  ASSERT_GE(dirty.touched()[0].capacity(), 100u);

  // A much larger interval: grows far past the 100-row capacity.
  for (uint32_t r = 0; r < 10000; r += 2) dirty.Mark(0, r);
  EXPECT_EQ(dirty.TotalTouched(), 5000u);
  EXPECT_TRUE(dirty.IsDirty(0, 4998));
  EXPECT_FALSE(dirty.IsDirty(0, 4999));
  dirty.Clear();
  EXPECT_EQ(dirty.TotalTouched(), 0u);

  // Steady state: the same working set re-marks into the retained buffer.
  const size_t grown_capacity = dirty.touched()[0].capacity();
  ASSERT_GE(grown_capacity, 5000u);
  const uint32_t* buffer = dirty.touched()[0].data();
  for (uint32_t r = 0; r < 10000; r += 2) dirty.Mark(0, r);
  EXPECT_EQ(dirty.TotalTouched(), 5000u);
  EXPECT_EQ(dirty.touched()[0].capacity(), grown_capacity);
  EXPECT_EQ(dirty.touched()[0].data(), buffer);
}

TEST(DirtyRowsTest, InitResizesAndResets) {
  DirtyRows dirty;
  dirty.Init({10});
  dirty.Mark(0, 9);
  dirty.Init({10, 20});
  EXPECT_EQ(dirty.num_tables(), 2u);
  EXPECT_EQ(dirty.TotalTouched(), 0u);
  EXPECT_FALSE(dirty.IsDirty(0, 9));
}

}  // namespace
}  // namespace fae
