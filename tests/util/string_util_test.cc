#include "util/string_util.h"

#include <gtest/gtest.h>

namespace fae {
namespace {

TEST(StringUtilTest, HumanBytesScales) {
  EXPECT_EQ(HumanBytes(0), "0 B");
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(1024), "1.00 KB");
  EXPECT_EQ(HumanBytes(1536), "1.50 KB");
  EXPECT_EQ(HumanBytes(256ULL * 1024 * 1024), "256.00 MB");
  EXPECT_EQ(HumanBytes(61ULL * 1024 * 1024 * 1024), "61.00 GB");
  EXPECT_EQ(HumanBytes(2ULL * 1024 * 1024 * 1024 * 1024), "2.00 TB");
}

TEST(StringUtilTest, HumanSecondsScales) {
  EXPECT_EQ(HumanSeconds(0.0000005), "0.5 us");
  EXPECT_EQ(HumanSeconds(0.005), "5.0 ms");
  EXPECT_EQ(HumanSeconds(2.5), "2.50 s");
  EXPECT_EQ(HumanSeconds(600.0), "10.00 min");
}

TEST(StringUtilTest, JoinBasics) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"a"}, ","), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StringUtilTest, SplitBasics) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split(",x,", ','), (std::vector<std::string>{"", "x", ""}));
}

TEST(StringUtilTest, SplitJoinRoundTrip) {
  const std::vector<std::string> parts = {"one", "two", "three"};
  EXPECT_EQ(Split(Join(parts, "|"), '|'), parts);
}

TEST(StringUtilTest, StrFormatFormats) {
  EXPECT_EQ(StrFormat("x=%d y=%.2f", 3, 1.5), "x=3 y=1.50");
  EXPECT_EQ(StrFormat("%s", "plain"), "plain");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StringUtilTest, StrFormatLongOutput) {
  std::string long_arg(1000, 'z');
  std::string out = StrFormat("[%s]", long_arg.c_str());
  EXPECT_EQ(out.size(), 1002u);
  EXPECT_EQ(out.front(), '[');
  EXPECT_EQ(out.back(), ']');
}

}  // namespace
}  // namespace fae
