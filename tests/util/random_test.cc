#include "util/random.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace fae {
namespace {

TEST(RandomTest, SplitMix64IsDeterministic) {
  SplitMix64 a(123);
  SplitMix64 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, DifferentSeedsDiverge) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RandomTest, XoshiroIsDeterministicForSeed) {
  Xoshiro256 a(99);
  Xoshiro256 b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, NextFloatInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    float f = rng.NextFloat();
    EXPECT_GE(f, 0.0f);
    EXPECT_LT(f, 1.0f);
  }
}

TEST(RandomTest, NextBoundedStaysInBounds) {
  Xoshiro256 rng(13);
  for (uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RandomTest, NextBoundedIsRoughlyUniform) {
  Xoshiro256 rng(17);
  constexpr uint64_t kBound = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kDraws; ++i) counts[rng.NextBounded(kBound)]++;
  for (uint64_t v = 0; v < kBound; ++v) {
    EXPECT_NEAR(counts[v], kDraws / kBound, 500) << "value " << v;
  }
}

TEST(RandomTest, GaussianMomentsAreStandard) {
  Xoshiro256 rng(23);
  constexpr int kDraws = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / kDraws;
  const double var = sum_sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.01);
  EXPECT_NEAR(var, 1.0, 0.02);
}

TEST(RandomTest, BernoulliMatchesProbability) {
  Xoshiro256 rng(31);
  constexpr int kDraws = 100000;
  int hits = 0;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.NextBernoulli(0.05)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.05, 0.005);
}

TEST(RandomTest, PermutationIsAPermutation) {
  Xoshiro256 rng(41);
  auto perm = RandomPermutation(1000, rng);
  std::set<uint64_t> unique(perm.begin(), perm.end());
  EXPECT_EQ(unique.size(), 1000u);
  EXPECT_EQ(*unique.begin(), 0u);
  EXPECT_EQ(*unique.rbegin(), 999u);
}

TEST(RandomTest, PermutationOfZeroAndOne) {
  Xoshiro256 rng(43);
  EXPECT_TRUE(RandomPermutation(0, rng).empty());
  auto one = RandomPermutation(1, rng);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 0u);
}

TEST(RandomTest, PermutationActuallyShuffles) {
  Xoshiro256 rng(47);
  auto perm = RandomPermutation(1000, rng);
  size_t fixed_points = 0;
  for (size_t i = 0; i < perm.size(); ++i) {
    if (perm[i] == i) ++fixed_points;
  }
  // Expected number of fixed points of a random permutation is 1.
  EXPECT_LT(fixed_points, 10u);
}

}  // namespace
}  // namespace fae
