#include "util/half.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "util/random.h"

namespace fae {
namespace {

TEST(HalfTest, KnownBitPatterns) {
  EXPECT_EQ(FloatToHalf(0.0f), 0x0000);
  EXPECT_EQ(FloatToHalf(-0.0f), 0x8000);
  EXPECT_EQ(FloatToHalf(1.0f), 0x3c00);
  EXPECT_EQ(FloatToHalf(-2.0f), 0xc000);
  EXPECT_EQ(FloatToHalf(0.5f), 0x3800);
  EXPECT_EQ(FloatToHalf(65504.0f), 0x7bff);  // max finite half
  EXPECT_EQ(FloatToHalf(std::numeric_limits<float>::infinity()), 0x7c00);
  EXPECT_EQ(FloatToHalf(-std::numeric_limits<float>::infinity()), 0xfc00);
}

TEST(HalfTest, HalfToFloatKnownValues) {
  EXPECT_EQ(HalfToFloat(0x3c00), 1.0f);
  EXPECT_EQ(HalfToFloat(0xc000), -2.0f);
  EXPECT_EQ(HalfToFloat(0x3800), 0.5f);
  EXPECT_EQ(HalfToFloat(0x7bff), 65504.0f);
  EXPECT_TRUE(std::isinf(HalfToFloat(0x7c00)));
  EXPECT_EQ(HalfToFloat(0x0000), 0.0f);
  EXPECT_TRUE(std::signbit(HalfToFloat(0x8000)));
}

TEST(HalfTest, NanSurvives) {
  const uint16_t h = FloatToHalf(std::nanf(""));
  EXPECT_TRUE(std::isnan(HalfToFloat(h)));
}

TEST(HalfTest, OverflowBecomesInfinity) {
  EXPECT_TRUE(std::isinf(HalfToFloat(FloatToHalf(1e6f))));
  EXPECT_TRUE(std::isinf(HalfToFloat(FloatToHalf(65520.0f))));
  // 65519.996 rounds down to max finite.
  EXPECT_EQ(QuantizeToHalf(65519.0f), 65504.0f);
}

TEST(HalfTest, SubnormalsRoundTrip) {
  // Smallest positive subnormal half: 2^-24.
  const float tiny = std::ldexp(1.0f, -24);
  EXPECT_EQ(FloatToHalf(tiny), 0x0001);
  EXPECT_EQ(HalfToFloat(0x0001), tiny);
  // Below half of the smallest subnormal: flush to zero.
  EXPECT_EQ(QuantizeToHalf(std::ldexp(1.0f, -26)), 0.0f);
}

TEST(HalfTest, EveryHalfRoundTripsExactly) {
  // half -> float -> half must be the identity for all 65536 patterns
  // (modulo NaN payloads, which stay NaN).
  for (uint32_t h = 0; h <= 0xffff; ++h) {
    const uint16_t half = static_cast<uint16_t>(h);
    const float f = HalfToFloat(half);
    if (std::isnan(f)) {
      EXPECT_TRUE(std::isnan(HalfToFloat(FloatToHalf(f))));
      continue;
    }
    EXPECT_EQ(FloatToHalf(f), half) << "pattern 0x" << std::hex << h;
  }
}

TEST(HalfTest, RoundToNearestEven) {
  // 1 + 2^-11 is exactly halfway between 1.0 (0x3c00) and the next half
  // (0x3c01); nearest-even picks 0x3c00. Same distance above 0x3c01 picks
  // 0x3c02.
  EXPECT_EQ(FloatToHalf(1.0f + std::ldexp(1.0f, -11)), 0x3c00);
  const float next = HalfToFloat(0x3c01);
  EXPECT_EQ(FloatToHalf(next + std::ldexp(1.0f, -11)), 0x3c02);
}

TEST(HalfTest, RelativeErrorWithinHalfUlp) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 100000; ++i) {
    const float f = (rng.NextFloat() * 2 - 1) * 100.0f;
    const float q = QuantizeToHalf(f);
    if (f == 0.0f) continue;
    EXPECT_LE(std::fabs(q - f) / std::fabs(f), std::ldexp(1.0f, -11))
        << "value " << f;
  }
}

TEST(HalfTest, QuantizationIsMonotone) {
  Xoshiro256 rng(6);
  for (int i = 0; i < 10000; ++i) {
    const float a = (rng.NextFloat() * 2 - 1) * 50.0f;
    const float b = a + rng.NextFloat();
    EXPECT_LE(QuantizeToHalf(a), QuantizeToHalf(b));
  }
}

}  // namespace
}  // namespace fae
