#include "util/file_io.h"

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace fae {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

class FileIoTest : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const auto& p : cleanup_) (void)RemoveFile(p);
  }
  std::string Track(const std::string& p) {
    cleanup_.push_back(p);
    return p;
  }
  std::vector<std::string> cleanup_;
};

TEST_F(FileIoTest, RoundTripScalars) {
  const std::string path = Track(TempPath("fae_scalars.bin"));
  {
    auto w = BinaryWriter::Open(path);
    ASSERT_TRUE(w.ok()) << w.status().ToString();
    ASSERT_TRUE(w->WriteU32(0xdeadbeef).ok());
    ASSERT_TRUE(w->WriteU64(0x1122334455667788ULL).ok());
    ASSERT_TRUE(w->WriteF32(1.5f).ok());
    ASSERT_TRUE(w->WriteF64(-2.25).ok());
    ASSERT_TRUE(w->WriteString("hello fae").ok());
    ASSERT_TRUE(w->Close().ok());
  }
  auto r = BinaryReader::Open(path);
  ASSERT_TRUE(r.ok());
  auto u32 = r->ReadU32();
  ASSERT_TRUE(u32.ok());
  EXPECT_EQ(*u32, 0xdeadbeef);
  auto u64 = r->ReadU64();
  ASSERT_TRUE(u64.ok());
  EXPECT_EQ(*u64, 0x1122334455667788ULL);
  auto f32 = r->ReadF32();
  ASSERT_TRUE(f32.ok());
  EXPECT_EQ(*f32, 1.5f);
  auto f64 = r->ReadF64();
  ASSERT_TRUE(f64.ok());
  EXPECT_EQ(*f64, -2.25);
  auto s = r->ReadString();
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(*s, "hello fae");
}

TEST_F(FileIoTest, RoundTripVector) {
  const std::string path = Track(TempPath("fae_vec.bin"));
  std::vector<uint64_t> data = {1, 1 << 20, 42, 0};
  {
    auto w = BinaryWriter::Open(path);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(w->WriteVector(data).ok());
    ASSERT_TRUE(w->Close().ok());
  }
  auto r = BinaryReader::Open(path);
  ASSERT_TRUE(r.ok());
  auto v = r->ReadVector<uint64_t>();
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, data);
}

TEST_F(FileIoTest, RoundTripEmptyVectorAndString) {
  const std::string path = Track(TempPath("fae_empty.bin"));
  {
    auto w = BinaryWriter::Open(path);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(w->WriteVector(std::vector<float>{}).ok());
    ASSERT_TRUE(w->WriteString("").ok());
    ASSERT_TRUE(w->Close().ok());
  }
  auto r = BinaryReader::Open(path);
  ASSERT_TRUE(r.ok());
  auto v = r->ReadVector<float>();
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->empty());
  auto s = r->ReadString();
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s->empty());
}

TEST_F(FileIoTest, OpenMissingFileIsNotFound) {
  auto r = BinaryReader::Open(TempPath("fae_does_not_exist.bin"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST_F(FileIoTest, TruncatedReadIsDataLoss) {
  const std::string path = Track(TempPath("fae_trunc.bin"));
  {
    auto w = BinaryWriter::Open(path);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(w->WriteU32(7).ok());
    ASSERT_TRUE(w->Close().ok());
  }
  auto r = BinaryReader::Open(path);
  ASSERT_TRUE(r.ok());
  auto v = r->ReadU64();  // only 4 bytes available
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kDataLoss);
}

TEST_F(FileIoTest, CorruptVectorLengthIsDataLoss) {
  const std::string path = Track(TempPath("fae_badlen.bin"));
  {
    auto w = BinaryWriter::Open(path);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(w->WriteU64(~0ULL).ok());  // absurd element count
    ASSERT_TRUE(w->Close().ok());
  }
  auto r = BinaryReader::Open(path);
  ASSERT_TRUE(r.ok());
  auto v = r->ReadVector<double>();
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kDataLoss);
}

TEST_F(FileIoTest, Crc32MatchesKnownAnswer) {
  // The IEEE CRC-32 check value: crc32("123456789") == 0xCBF43926.
  const char digits[] = "123456789";
  EXPECT_EQ(Crc32(digits, 9), 0xCBF43926u);
  EXPECT_EQ(Crc32(digits, 0), 0u);
}

TEST_F(FileIoTest, Crc32StreamsViaSeedChaining) {
  const char digits[] = "123456789";
  const uint32_t first = Crc32(digits, 4);
  EXPECT_EQ(Crc32(digits + 4, 5, first), Crc32(digits, 9));
}

TEST_F(FileIoTest, WriterCrcMatchesStandaloneCrc) {
  const std::string path = Track(TempPath("fae_wcrc.bin"));
  auto w = BinaryWriter::Open(path);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE(w->WriteU32(0x01020304).ok());
  const uint32_t bytes_le[] = {0x01020304};
  EXPECT_EQ(w->crc(), Crc32(bytes_le, 4));
  ASSERT_TRUE(w->Close().ok());
}

TEST_F(FileIoTest, AtomicWriterCommitsOrLeavesTargetUntouched) {
  const std::string path = Track(TempPath("fae_atomic.bin"));
  // Seed the target with a good file.
  {
    auto w = BinaryWriter::OpenAtomic(path);
    ASSERT_TRUE(w.ok()) << w.status().ToString();
    ASSERT_TRUE(w->WriteU32(1).ok());
    ASSERT_TRUE(w->Commit().ok());
  }
  ASSERT_TRUE(FileExists(path));

  // A save abandoned before Commit() (a crash mid-checkpoint) must leave
  // both the previous file intact and no temp file behind.
  {
    auto w = BinaryWriter::OpenAtomic(path);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(w->WriteU32(0xbad).ok());
    ASSERT_TRUE(w->Close().ok());  // no Commit
  }
  EXPECT_FALSE(FileExists(path + ".tmp"));
  auto r = BinaryReader::Open(path);
  ASSERT_TRUE(r.ok());
  auto v = r->ReadU32();
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 1u);  // old contents survived
}

TEST_F(FileIoTest, VerifyFileIntegrityCatchesCorruption) {
  const std::string path = Track(TempPath("fae_integrity.bin"));
  {
    auto w = BinaryWriter::Open(path);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(w->WriteU64(0xfeedf00d).ok());
    ASSERT_TRUE(w->WriteString("payload").ok());
    ASSERT_TRUE(w->WriteU32(w->crc()).ok());  // the container CRC footer
    ASSERT_TRUE(w->Close().ok());
  }
  EXPECT_TRUE(VerifyFileIntegrity(path).ok());

  // One flipped bit anywhere fails the check.
  {
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    char byte = 0;
    file.seekg(3);
    file.read(&byte, 1);
    byte ^= 0x01;
    file.seekp(3);
    file.write(&byte, 1);
  }
  EXPECT_EQ(VerifyFileIntegrity(path).code(), StatusCode::kDataLoss);

  // Truncation (even into the footer) fails too.
  std::filesystem::resize_file(path, std::filesystem::file_size(path) - 2);
  EXPECT_EQ(VerifyFileIntegrity(path).code(), StatusCode::kDataLoss);

  EXPECT_EQ(VerifyFileIntegrity(TempPath("fae_no_such_file.bin")).code(),
            StatusCode::kNotFound);
}

TEST_F(FileIoTest, FileExistsAndRemove) {
  const std::string path = TempPath("fae_exists.bin");
  EXPECT_FALSE(FileExists(path));
  {
    auto w = BinaryWriter::Open(path);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(w->Close().ok());
  }
  EXPECT_TRUE(FileExists(path));
  EXPECT_TRUE(RemoveFile(path).ok());
  EXPECT_FALSE(FileExists(path));
  EXPECT_TRUE(RemoveFile(path).ok());  // removing absent file is OK
}

}  // namespace
}  // namespace fae
