#include "util/thread_pool.h"

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace fae {
namespace {

TEST(ThreadPoolTest, ExecutesAllScheduledTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Schedule([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.Schedule([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not deadlock
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(1000);
  pool.ParallelFor(1000, [&touched](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) touched[i].fetch_add(1);
  });
  for (auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool pool(4);
  bool called = false;
  pool.ParallelFor(0, [&called](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ParallelForSingleElement) {
  ThreadPool pool(4);
  std::atomic<int> sum{0};
  pool.ParallelFor(1, [&sum](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) sum.fetch_add(static_cast<int>(i) + 5);
  });
  EXPECT_EQ(sum.load(), 5);
}

TEST(ThreadPoolTest, ParallelForComputesCorrectSum) {
  ThreadPool pool(3);
  std::atomic<long long> sum{0};
  constexpr size_t kN = 12345;
  pool.ParallelFor(kN, [&sum](size_t begin, size_t end) {
    long long local = 0;
    for (size_t i = begin; i < end; ++i) local += static_cast<long long>(i);
    sum.fetch_add(local);
  });
  EXPECT_EQ(sum.load(), static_cast<long long>(kN) * (kN - 1) / 2);
}

TEST(ThreadPoolTest, TasksCanScheduleMoreTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Schedule([&pool, &counter] {
    counter.fetch_add(1);
    pool.Schedule([&counter] { counter.fetch_add(1); });
  });
  // Wait drains the initial task; the nested task counts as in-flight from
  // the moment it is scheduled, so one more Wait suffices.
  pool.Wait();
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, DestructionJoinsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 50; ++i) {
      pool.Schedule([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace fae
