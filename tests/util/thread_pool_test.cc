#include "util/thread_pool.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace fae {
namespace {

TEST(ThreadPoolTest, ExecutesAllScheduledTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Schedule([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.Schedule([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not deadlock
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(1000);
  pool.ParallelFor(1000, [&touched](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) touched[i].fetch_add(1);
  });
  for (auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool pool(4);
  bool called = false;
  pool.ParallelFor(0, [&called](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ParallelForSingleElement) {
  ThreadPool pool(4);
  std::atomic<int> sum{0};
  pool.ParallelFor(1, [&sum](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) sum.fetch_add(static_cast<int>(i) + 5);
  });
  EXPECT_EQ(sum.load(), 5);
}

TEST(ThreadPoolTest, ParallelForComputesCorrectSum) {
  ThreadPool pool(3);
  std::atomic<long long> sum{0};
  constexpr size_t kN = 12345;
  pool.ParallelFor(kN, [&sum](size_t begin, size_t end) {
    long long local = 0;
    for (size_t i = begin; i < end; ++i) local += static_cast<long long>(i);
    sum.fetch_add(local);
  });
  EXPECT_EQ(sum.load(), static_cast<long long>(kN) * (kN - 1) / 2);
}

TEST(ThreadPoolTest, TasksCanScheduleMoreTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Schedule([&pool, &counter] {
    counter.fetch_add(1);
    pool.Schedule([&counter] { counter.fetch_add(1); });
  });
  // Wait drains the initial task; the nested task counts as in-flight from
  // the moment it is scheduled, so one more Wait suffices.
  pool.Wait();
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, ConcurrentParallelForCallsDoNotBlockEachOther) {
  // Two threads issue ParallelFor against the same pool; each call tracks
  // its own completion, so neither waits on the other's chunks. Before the
  // per-call fix both callers waited on a pool-global counter and could
  // observe (or deadlock on) each other's work.
  ThreadPool pool(4);
  constexpr size_t kN = 4096;
  constexpr int kRounds = 50;
  std::atomic<long long> sum_a{0};
  std::atomic<long long> sum_b{0};
  auto caller = [&pool](std::atomic<long long>& sum) {
    for (int r = 0; r < kRounds; ++r) {
      pool.ParallelFor(kN, [&sum](size_t begin, size_t end) {
        long long local = 0;
        for (size_t i = begin; i < end; ++i) {
          local += static_cast<long long>(i);
        }
        sum.fetch_add(local);
      });
    }
  };
  std::thread a(caller, std::ref(sum_a));
  std::thread b(caller, std::ref(sum_b));
  a.join();
  b.join();
  const long long expect =
      static_cast<long long>(kRounds) * kN * (kN - 1) / 2;
  EXPECT_EQ(sum_a.load(), expect);
  EXPECT_EQ(sum_b.load(), expect);
}

TEST(ThreadPoolTest, ParallelForRethrowsFirstExceptionOnCaller) {
  ThreadPool pool(4);
  std::atomic<int> chunks_run{0};
  EXPECT_THROW(
      pool.ParallelFor(1000,
                       [&chunks_run](size_t begin, size_t) {
                         chunks_run.fetch_add(1);
                         if (begin == 0) {
                           throw std::runtime_error("chunk failed");
                         }
                       }),
      std::runtime_error);
  // Every chunk still ran (the range is fully attempted before rethrow)
  // and the pool remains usable afterwards.
  EXPECT_EQ(chunks_run.load(), 4);
  std::atomic<int> ok{0};
  pool.ParallelFor(8, [&ok](size_t begin, size_t end) {
    ok.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(ok.load(), 8);
}

TEST(ThreadPoolTest, ParallelForRethrowsExceptionFromWorkerChunk) {
  // The test above throws from the begin == 0 chunk, which ParallelFor
  // runs inline on the caller; this one throws only from the *last* chunk,
  // which runs on a pool worker, so the exception crosses a thread
  // boundary via the captured exception_ptr.
  ThreadPool pool(4);
  std::atomic<int> chunks_run{0};
  EXPECT_THROW(
      pool.ParallelFor(1000,
                       [&chunks_run](size_t begin, size_t) {
                         chunks_run.fetch_add(1);
                         if (begin == 750) {
                           throw std::runtime_error("worker chunk failed");
                         }
                       }),
      std::runtime_error);
  EXPECT_EQ(chunks_run.load(), 4);
  // The pool (and ParallelFor on it) remains usable.
  std::atomic<int> ok{0};
  pool.ParallelFor(16, [&ok](size_t begin, size_t end) {
    ok.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(ok.load(), 16);
}

TEST(ThreadPoolTest, ParallelForAllChunksThrowingStillReturnsOnce) {
  // Every chunk throws; exactly one exception (the first captured) must
  // surface, the rest are swallowed, and nothing leaks or terminates.
  ThreadPool pool(4);
  for (int round = 0; round < 3; ++round) {
    EXPECT_THROW(pool.ParallelFor(100,
                                  [](size_t, size_t) {
                                    throw std::runtime_error("all fail");
                                  }),
                 std::runtime_error);
  }
  std::atomic<int> ok{0};
  pool.Schedule([&ok] { ok.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(ok.load(), 1);
}

TEST(ThreadPoolTest, DestructionJoinsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 50; ++i) {
      pool.Schedule([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace fae
