#include "util/status.h"

#include <gtest/gtest.h>

#include "util/statusor.h"

namespace fae {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad knob");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad knob");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad knob");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::DataLoss("x").code(), StatusCode::kDataLoss);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
}

TEST(StatusTest, CopyPreservesState) {
  Status s = Status::Internal("boom");
  Status t = s;
  EXPECT_EQ(t, s);
  EXPECT_EQ(t.message(), "boom");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, CodeToStringCoversAllCodes) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kIOError), "IOError");
  EXPECT_EQ(StatusCodeToString(StatusCode::kDataLoss), "DataLoss");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chain(int x) {
  FAE_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Chain(1).ok());
  EXPECT_EQ(Chain(-1).code(), StatusCode::kInvalidArgument);
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return Status::OutOfRange("not positive");
  return x * 2;
}

StatusOr<int> UseAssignOrReturn(int x) {
  FAE_ASSIGN_OR_RETURN(int doubled, ParsePositive(x));
  return doubled + 1;
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = ParsePositive(21);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = ParsePositive(0);
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(v.value_or(-7), -7);
}

TEST(StatusOrTest, AssignOrReturnHappyPath) {
  StatusOr<int> v = UseAssignOrReturn(10);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 21);
}

TEST(StatusOrTest, AssignOrReturnPropagatesError) {
  StatusOr<int> v = UseAssignOrReturn(-1);
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kOutOfRange);
}

TEST(StatusOrTest, ConstructingFromOkStatusBecomesInternalError) {
  StatusOr<int> v{Status::OK()};
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInternal);
}

TEST(StatusOrTest, MoveOnlyValueWorks) {
  StatusOr<std::unique_ptr<int>> v(std::make_unique<int>(5));
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> p = std::move(v).value();
  EXPECT_EQ(*p, 5);
}

}  // namespace
}  // namespace fae
