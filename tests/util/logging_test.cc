#include "util/logging.h"

#include <gtest/gtest.h>

namespace fae {
namespace {

TEST(LoggingTest, MinSeverityRoundTrips) {
  const LogSeverity original = MinLogSeverity();
  SetMinLogSeverity(LogSeverity::kError);
  EXPECT_EQ(MinLogSeverity(), LogSeverity::kError);
  SetMinLogSeverity(original);
}

TEST(LoggingTest, LogBelowThresholdDoesNotEvaluateNothingFatal) {
  SetMinLogSeverity(LogSeverity::kError);
  // Should be compiled and run without emitting or aborting.
  FAE_LOG(Info) << "suppressed " << 42;
  FAE_LOG(Warning) << "also suppressed";
  SetMinLogSeverity(LogSeverity::kInfo);
}

TEST(LoggingTest, CheckPassesOnTrueCondition) {
  FAE_CHECK(1 + 1 == 2) << "never shown";
  FAE_CHECK_EQ(4, 4);
  FAE_CHECK_NE(4, 5);
  FAE_CHECK_LT(1, 2);
  FAE_CHECK_LE(2, 2);
  FAE_CHECK_GT(3, 2);
  FAE_CHECK_GE(3, 3);
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH({ FAE_CHECK(false) << "invariant broken"; }, "Check failed");
}

TEST(LoggingDeathTest, FatalLogAborts) {
  EXPECT_DEATH({ FAE_LOG(Fatal) << "fatal path"; }, "fatal path");
}

}  // namespace
}  // namespace fae
