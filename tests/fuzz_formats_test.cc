// Robustness fuzzing for the three on-disk formats: random single-byte
// corruptions must never crash a loader — every outcome is either a clean
// Status error or a successfully-validated load (payload bytes such as
// float values can legitimately survive a flip).

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/fae_format.h"
#include "core/fae_pipeline.h"
#include "data/dataset_io.h"
#include "data/synthetic.h"
#include "embedding/embedding_table.h"
#include "models/factory.h"
#include "models/model_io.h"
#include "serve/serve_config.h"
#include "util/file_io.h"
#include "util/random.h"

namespace fae {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::vector<char> ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// Applies `trials` random single-byte flips to `pristine` and feeds each
// mutant to `load`, which must not crash and must report validity.
template <typename LoadFn>
void FuzzByteFlips(const std::vector<char>& pristine,
                   const std::string& mutant_path, int trials,
                   uint64_t seed, LoadFn load) {
  Xoshiro256 rng(seed);
  for (int trial = 0; trial < trials; ++trial) {
    std::vector<char> mutant = pristine;
    const size_t offset = rng.NextBounded(mutant.size());
    const char flip = static_cast<char>(1 + rng.NextBounded(255));
    mutant[offset] ^= flip;
    WriteAll(mutant_path, mutant);
    load();  // must not crash; return value checked inside
  }
  (void)RemoveFile(mutant_path);
}

TEST(FuzzFormatsTest, DatasetLoaderSurvivesByteFlips) {
  DatasetSchema schema = MakeTaobaoLikeSchema(DatasetScale::kTiny);
  Dataset dataset = SyntheticGenerator(schema, {.seed = 3}).Generate(60);
  const std::string path = TempPath("fuzz_ds.faed");
  ASSERT_TRUE(DatasetIo::Save(path, dataset).ok());
  const std::vector<char> pristine = ReadAll(path);

  FuzzByteFlips(pristine, path, 120, 17, [&] {
    auto loaded = DatasetIo::Load(path);
    if (loaded.ok()) {
      // A survivable flip must still satisfy the format's invariants.
      EXPECT_EQ(loaded->schema().num_tables(),
                loaded->sample(0).indices.size());
      for (size_t i = 0; i < loaded->size(); ++i) {
        for (size_t t = 0; t < loaded->schema().num_tables(); ++t) {
          for (uint32_t row : loaded->sample(i).indices[t]) {
            EXPECT_LT(row, loaded->schema().table_rows[t]);
          }
        }
      }
    }
  });
}

TEST(FuzzFormatsTest, PlanLoaderSurvivesByteFlips) {
  DatasetSchema schema = MakeKaggleLikeSchema(DatasetScale::kTiny);
  Dataset dataset = SyntheticGenerator(schema, {.seed = 5}).Generate(1200);
  std::vector<uint64_t> ids(dataset.size());
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = i;
  FaeConfig config;
  config.sample_rate = 0.3;
  config.gpu_memory_budget = 384ULL << 10;
  config.large_table_bytes = 1ULL << 12;
  FaePipeline pipeline(config);
  const std::string path = TempPath("fuzz_plan.faef");
  auto plan = pipeline.PrepareCached(dataset, ids, path);
  ASSERT_TRUE(plan.ok());
  const std::vector<char> pristine = ReadAll(path);

  FuzzByteFlips(pristine, path, 120, 19, [&] {
    auto loaded = FaeFormat::Load(path, dataset);
    if (loaded.ok()) {
      EXPECT_EQ(loaded->hot_set.num_tables(), dataset.schema().num_tables());
      EXPECT_LE(loaded->hot_ids.size() + loaded->cold_ids.size(),
                dataset.size() + 1);
    }
  });
}

TEST(FuzzFormatsTest, CheckpointLoaderSurvivesByteFlips) {
  DatasetSchema schema = MakeTaobaoLikeSchema(DatasetScale::kTiny);
  auto model = MakeModel(schema, false, 7);
  const std::string path = TempPath("fuzz_ckpt.faem");
  ASSERT_TRUE(ModelIo::Save(path, *model).ok());
  const std::vector<char> pristine = ReadAll(path);

  auto target = MakeModel(schema, false, 8);
  FuzzByteFlips(pristine, path, 120, 23, [&] {
    // Load mutates the target in place before detecting some corruptions;
    // any Status is acceptable, crashing is not.
    (void)ModelIo::Load(path, *target);
  });
}

TEST(FuzzFormatsTest, QuantizedCheckpointRejectsSectionFlips) {
  // A compressed model's quantized sections — slot map, int8 codes, the
  // per-row scale/zero-point arrays — live under the same whole-file CRC
  // as everything else, so any single-byte flip must be rejected up
  // front, never silently dequantized into the target model.
  DatasetSchema schema = MakeKaggleLikeSchema(DatasetScale::kTiny);
  auto model = MakeModel(schema, false, 7);
  EmbeddingTable& big = model->tables().front();
  std::vector<uint8_t> mask(big.rows(), 0);
  for (uint64_t r = 0; r < big.rows(); r += 4) mask[r] = 1;
  big.CompressCold(mask, ColdPrecision::kInt8);
  const std::string path = TempPath("fuzz_quant_ckpt.faem");
  ASSERT_TRUE(ModelIo::Save(path, *model).ok());
  const std::vector<char> pristine = ReadAll(path);

  auto target = MakeModel(schema, false, 8);
  Xoshiro256 rng(37);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<char> mutant = pristine;
    // Half the trials land anywhere; the other half target the back half
    // of the file, where the quantized payloads live.
    const size_t half = mutant.size() / 2;
    const size_t offset = trial % 2 == 0
                              ? rng.NextBounded(mutant.size())
                              : half + rng.NextBounded(mutant.size() - half);
    mutant[offset] ^= static_cast<char>(1 + rng.NextBounded(255));
    WriteAll(path, mutant);
    EXPECT_FALSE(ModelIo::Load(path, *target).ok())
        << "flip at offset " << offset << " accepted";
  }
  (void)RemoveFile(path);
}

TEST(FuzzFormatsTest, ServeConfigParserSurvivesByteFlips) {
  // The serving config is text, so fuzz the text directly: any single-byte
  // corruption must yield either a clean InvalidArgument or an options
  // struct that still passes Validate (Parse runs it, so a parse that
  // "succeeds" into out-of-range values would be a bug).
  const std::string pristine = ServeOptions().Serialize();
  Xoshiro256 rng(31);
  for (int trial = 0; trial < 400; ++trial) {
    std::string mutant = pristine;
    const size_t offset = rng.NextBounded(mutant.size());
    const char flip = static_cast<char>(1 + rng.NextBounded(255));
    mutant[offset] ^= flip;
    auto parsed = ServeOptions::Parse(mutant);
    if (parsed.ok()) {
      EXPECT_TRUE(parsed->Validate().ok());
    }
  }
}

TEST(FuzzFormatsTest, ServeConfigParserSurvivesTruncation) {
  // Prefixes may be valid (keys are optional; defaults fill in) but must
  // never crash, and whatever parses must validate.
  const std::string pristine = ServeOptions().Serialize();
  for (size_t len = 0; len < pristine.size(); ++len) {
    auto parsed = ServeOptions::Parse(pristine.substr(0, len));
    if (parsed.ok()) {
      EXPECT_TRUE(parsed->Validate().ok());
    }
  }
}

TEST(FuzzFormatsTest, LoadersRejectTruncationAtEveryPrefix) {
  // Every strict prefix of a valid file must be rejected cleanly.
  DatasetSchema schema = MakeTaobaoLikeSchema(DatasetScale::kTiny);
  Dataset dataset = SyntheticGenerator(schema, {.seed = 9}).Generate(10);
  const std::string path = TempPath("fuzz_prefix.faed");
  ASSERT_TRUE(DatasetIo::Save(path, dataset).ok());
  const std::vector<char> pristine = ReadAll(path);

  Xoshiro256 rng(29);
  for (int trial = 0; trial < 60; ++trial) {
    const size_t len = rng.NextBounded(pristine.size());  // strict prefix
    WriteAll(path, std::vector<char>(pristine.begin(),
                                     pristine.begin() + len));
    auto loaded = DatasetIo::Load(path);
    EXPECT_FALSE(loaded.ok()) << "prefix of " << len << " bytes accepted";
  }
  (void)RemoveFile(path);
}

}  // namespace
}  // namespace fae
