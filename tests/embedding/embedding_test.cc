#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "embedding/embedding_bag.h"
#include "embedding/embedding_table.h"
#include "embedding/sparse_sgd.h"
#include "util/thread_pool.h"

namespace fae {
namespace {

TEST(EmbeddingTableTest, InitializationBound) {
  Xoshiro256 rng(1);
  EmbeddingTable table(100, 8, rng);
  const float bound = 1.0f / std::sqrt(100.0f);
  for (uint64_t r = 0; r < table.rows(); ++r) {
    for (size_t k = 0; k < table.dim(); ++k) {
      EXPECT_LE(std::fabs(table.row(r)[k]), bound);
    }
  }
}

TEST(EmbeddingTableTest, SizeBytes) {
  Xoshiro256 rng(2);
  EmbeddingTable table(1000, 16, rng);
  EXPECT_EQ(table.SizeBytes(), 1000u * 16 * 4);
}

TEST(EmbeddingTableTest, ZeroInitializedVariant) {
  EmbeddingTable table(10, 4);
  for (uint64_t r = 0; r < 10; ++r) {
    for (size_t k = 0; k < 4; ++k) EXPECT_EQ(table.row(r)[k], 0.0f);
  }
}

TEST(EmbeddingTableTest, CopyRowFrom) {
  Xoshiro256 rng(3);
  EmbeddingTable src(5, 4, rng);
  EmbeddingTable dst(3, 4);
  dst.CopyRowFrom(src, 2, 1);
  for (size_t k = 0; k < 4; ++k) EXPECT_EQ(dst.row(1)[k], src.row(2)[k]);
}

TEST(EmbeddingTableDeathTest, OutOfRangeRowAborts) {
  Xoshiro256 rng(4);
  EmbeddingTable table(5, 4, rng);
  EXPECT_DEATH(table.row(5), "Check failed");
}

TEST(EmbeddingBagTest, SingleLookupReturnsRow) {
  Xoshiro256 rng(5);
  EmbeddingTable table(10, 4, rng);
  const std::vector<uint32_t> idx = {3}, off = {0, 1};
  Tensor out = EmbeddingBag::Forward(table, idx, off);
  for (size_t k = 0; k < 4; ++k) EXPECT_EQ(out(0, k), table.row(3)[k]);
}

TEST(EmbeddingBagTest, SumPoolsMultipleLookups) {
  Xoshiro256 rng(6);
  EmbeddingTable table(10, 4, rng);
  const std::vector<uint32_t> idx = {1, 2, 5}, off = {0, 3};
  Tensor out = EmbeddingBag::Forward(table, idx, off);
  for (size_t k = 0; k < 4; ++k) {
    EXPECT_NEAR(out(0, k),
                table.row(1)[k] + table.row(2)[k] + table.row(5)[k], 1e-6f);
  }
}

TEST(EmbeddingBagTest, EmptyBagYieldsZeros) {
  Xoshiro256 rng(7);
  EmbeddingTable table(10, 4, rng);
  const std::vector<uint32_t> idx, off = {0, 0};
  Tensor out = EmbeddingBag::Forward(table, idx, off);
  for (size_t k = 0; k < 4; ++k) EXPECT_EQ(out(0, k), 0.0f);
}

TEST(EmbeddingBagTest, BatchedOffsets) {
  Xoshiro256 rng(8);
  EmbeddingTable table(10, 2, rng);
  // Sample 0: rows {0,1}; sample 1: row {2}.
  const std::vector<uint32_t> idx = {0, 1, 2}, off = {0, 2, 3};
  Tensor out = EmbeddingBag::Forward(table, idx, off);
  EXPECT_EQ(out.rows(), 2u);
  EXPECT_NEAR(out(0, 0), table.row(0)[0] + table.row(1)[0], 1e-6f);
  EXPECT_NEAR(out(1, 0), table.row(2)[0], 1e-6f);
}

TEST(EmbeddingBagTest, BackwardScattersGradients) {
  Tensor grad(2, 2, {1, 2, 3, 4});
  // Sample 0 -> rows {5, 7}; sample 1 -> row {5} (row 5 accumulates).
  const std::vector<uint32_t> idx = {5, 7, 5}, off = {0, 2, 3};
  SparseGrad g = EmbeddingBag::Backward(grad, idx, off, 2);
  EXPECT_EQ(g.num_rows(), 2u);
  ASSERT_NE(g.Find(5), nullptr);
  ASSERT_NE(g.Find(7), nullptr);
  EXPECT_FLOAT_EQ(g.Find(5)[0], 1 + 3);
  EXPECT_FLOAT_EQ(g.Find(5)[1], 2 + 4);
  EXPECT_FLOAT_EQ(g.Find(7)[0], 1);
  EXPECT_EQ(g.Find(6), nullptr);
  // Bytes covers the value buffer *and* the row-id index.
  EXPECT_EQ(g.Bytes(), 2u * 2 * sizeof(float) + 2u * sizeof(uint64_t));
}

TEST(EmbeddingBagTest, BackwardRowIdsSortedUnique) {
  Tensor grad(3, 2, {1, 1, 2, 2, 3, 3});
  const std::vector<uint32_t> idx = {9, 1, 4, 1, 9}, off = {0, 2, 4, 5};
  SparseGrad g = EmbeddingBag::Backward(grad, idx, off, 2);
  ASSERT_EQ(g.num_rows(), 3u);
  EXPECT_EQ(g.row_id(0), 1u);
  EXPECT_EQ(g.row_id(1), 4u);
  EXPECT_EQ(g.row_id(2), 9u);
  EXPECT_TRUE(std::is_sorted(g.row_ids.begin(), g.row_ids.end()));
}

TEST(EmbeddingBagTest, RepeatedIndexWithinSampleCountsTwice) {
  Tensor grad(1, 2, {1, 1});
  const std::vector<uint32_t> idx = {3, 3}, off = {0, 2};
  SparseGrad g = EmbeddingBag::Backward(grad, idx, off, 2);
  EXPECT_FLOAT_EQ(g.Find(3)[0], 2.0f);
}

TEST(EmbeddingBagTest, ParallelForwardAndBackwardBitExact) {
  Xoshiro256 rng(42);
  EmbeddingTable table(512, 8, rng);
  // Enough samples/rows to cross the parallelization thresholds.
  std::vector<uint32_t> indices;
  std::vector<uint32_t> offsets = {0};
  for (size_t i = 0; i < 300; ++i) {
    for (int j = 0; j < 3; ++j) {
      indices.push_back(static_cast<uint32_t>(rng.NextBounded(512)));
    }
    offsets.push_back(static_cast<uint32_t>(indices.size()));
  }
  Tensor grad_out = Tensor::Randn(300, 8, 1.0f, rng);

  ThreadPool pool(4);
  Tensor fwd_serial = EmbeddingBag::Forward(table, indices, offsets);
  Tensor fwd_parallel =
      EmbeddingBag::Forward(table, indices, offsets, &pool);
  ASSERT_EQ(fwd_serial.numel(), fwd_parallel.numel());
  for (size_t i = 0; i < fwd_serial.numel(); ++i) {
    EXPECT_EQ(fwd_serial.data()[i], fwd_parallel.data()[i]);
  }

  SparseGrad bwd_serial = EmbeddingBag::Backward(grad_out, indices, offsets, 8);
  SparseGrad bwd_parallel =
      EmbeddingBag::Backward(grad_out, indices, offsets, 8, &pool);
  ASSERT_EQ(bwd_serial.row_ids, bwd_parallel.row_ids);
  ASSERT_EQ(bwd_serial.values.size(), bwd_parallel.values.size());
  for (size_t i = 0; i < bwd_serial.values.size(); ++i) {
    EXPECT_EQ(bwd_serial.values[i], bwd_parallel.values[i]);
  }
}

TEST(EmbeddingBagTest, ForwardBackwardGradientCheck) {
  Xoshiro256 rng(9);
  EmbeddingTable table(6, 3, rng);
  const std::vector<uint32_t> indices = {0, 2, 2, 4};
  const std::vector<uint32_t> offsets = {0, 2, 4};
  Tensor grad_out = Tensor::Randn(2, 3, 1.0f, rng);

  auto loss = [&]() {
    Tensor out = EmbeddingBag::Forward(table, indices, offsets);
    double l = 0;
    for (size_t i = 0; i < out.numel(); ++i) {
      l += out.data()[i] * grad_out.data()[i];
    }
    return l;
  };

  SparseGrad g = EmbeddingBag::Backward(grad_out, indices, offsets, 3);
  const float eps = 1e-3f;
  for (size_t s = 0; s < g.num_rows(); ++s) {
    const uint64_t row = g.row_id(s);
    for (size_t k = 0; k < 3; ++k) {
      const float orig = table.row(row)[k];
      table.row(row)[k] = orig + eps;
      const double lp = loss();
      table.row(row)[k] = orig - eps;
      const double lm = loss();
      table.row(row)[k] = orig;
      EXPECT_NEAR(g.row(s)[k], (lp - lm) / (2 * eps), 1e-2);
    }
  }
}

TEST(SparseSgdTest, UpdatesOnlyTouchedRows) {
  Xoshiro256 rng(10);
  EmbeddingTable table(4, 2, rng);
  const float before_r0 = table.row(0)[0];
  const float before_r2 = table.row(2)[0];
  SparseGrad g;
  g.dim = 2;
  float* gr = g.Upsert(2);
  gr[0] = 1.0f;
  gr[1] = 2.0f;
  SparseSgd sgd(0.5f);
  sgd.Step(table, g);
  EXPECT_EQ(table.row(0)[0], before_r0);
  EXPECT_FLOAT_EQ(table.row(2)[0], before_r2 - 0.5f);
}

TEST(SparseSgdTest, AccumulateMergesOverlappingRows) {
  SparseGrad a;
  a.dim = 2;
  float* a1 = a.Upsert(1);
  a1[0] = 1;
  a1[1] = 1;
  SparseGrad b;
  b.dim = 2;
  float* b1 = b.Upsert(1);
  b1[0] = 2;
  b1[1] = 3;
  float* b5 = b.Upsert(5);
  b5[0] = 4;
  b5[1] = 4;
  AccumulateSparseGrad(a, b);
  EXPECT_EQ(a.num_rows(), 2u);
  EXPECT_FLOAT_EQ(a.Find(1)[0], 3);
  EXPECT_FLOAT_EQ(a.Find(1)[1], 4);
  EXPECT_FLOAT_EQ(a.Find(5)[0], 4);
  EXPECT_TRUE(std::is_sorted(a.row_ids.begin(), a.row_ids.end()));
}

TEST(SparseSgdTest, AccumulateIntoEmptyAdoptsDim) {
  SparseGrad a;
  SparseGrad b;
  b.dim = 3;
  float* b0 = b.Upsert(0);
  b0[0] = 1;
  b0[1] = 2;
  b0[2] = 3;
  AccumulateSparseGrad(a, b);
  EXPECT_EQ(a.dim, 3u);
  EXPECT_EQ(a.num_rows(), 1u);
}

}  // namespace
}  // namespace fae
