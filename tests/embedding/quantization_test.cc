// Quantized cold-row storage (DESIGN.md §14): kernel round-trip bounds,
// the mixed hot/cold EmbeddingTable storage modes, and the verbatim
// persistence of compressed sections through the v3 model container.

#include <cmath>
#include <cstring>
#include <filesystem>
#include <vector>

#include <gtest/gtest.h>

#include "data/schema.h"
#include "embedding/embedding_bag.h"
#include "embedding/embedding_table.h"
#include "models/factory.h"
#include "models/model_io.h"
#include "tensor/kernels.h"
#include "util/random.h"

namespace fae {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// Every-4th-row-hot mask, the shape used throughout these tests.
std::vector<uint8_t> QuarterHotMask(uint64_t rows) {
  std::vector<uint8_t> mask(rows, 0);
  for (uint64_t r = 0; r < rows; r += 4) mask[r] = 1;
  return mask;
}

// --- Kernel round-trip properties -----------------------------------------

TEST(QuantKernelTest, Int8ErrorBoundedByHalfScale) {
  Xoshiro256 rng(17);
  const size_t dim = 48;
  std::vector<float> x(dim), back(dim);
  std::vector<uint8_t> q(dim);
  for (double mag : {1e-4, 1e-2, 1.0, 1e2, 1e4}) {
    for (int rep = 0; rep < 32; ++rep) {
      for (size_t i = 0; i < dim; ++i) {
        x[i] = static_cast<float>((2.0 * rng.NextDouble() - 1.0) * mag);
      }
      float scale = 0.0f, zero = 0.0f;
      kernels::QuantizeRowI8(dim, x.data(), q.data(), &scale, &zero);
      kernels::DequantRowI8(dim, q.data(), scale, zero, back.data());
      for (size_t i = 0; i < dim; ++i) {
        // Half a code of rounding, plus ulp slop from the affine float
        // arithmetic around the zero point.
        const double bound =
            0.5 * scale + 4.0 * std::fabs(zero) * 1.2e-7 + 1e-12;
        EXPECT_LE(std::fabs(static_cast<double>(back[i]) - x[i]), bound)
            << "mag " << mag << " elem " << i;
      }
    }
  }
}

TEST(QuantKernelTest, Int8ConstantRowReconstructsExactly) {
  const size_t dim = 16;
  std::vector<float> x(dim, -3.75f), back(dim);
  std::vector<uint8_t> q(dim);
  float scale = 1.0f, zero = 0.0f;
  kernels::QuantizeRowI8(dim, x.data(), q.data(), &scale, &zero);
  EXPECT_EQ(scale, 0.0f);
  kernels::DequantRowI8(dim, q.data(), scale, zero, back.data());
  for (size_t i = 0; i < dim; ++i) EXPECT_EQ(back[i], -3.75f);
}

TEST(QuantKernelTest, Int8EndpointsMapToExtremeCodes) {
  const float x[4] = {-2.0f, 0.0f, 1.0f, 6.0f};
  uint8_t q[4];
  float scale = 0.0f, zero = 0.0f;
  kernels::QuantizeRowI8(4, x, q, &scale, &zero);
  EXPECT_EQ(q[0], 0);    // the min is the zero point
  EXPECT_EQ(q[3], 255);  // the max is the top code
  EXPECT_EQ(zero, -2.0f);
  EXPECT_FLOAT_EQ(scale, 8.0f / 255.0f);
}

TEST(QuantKernelTest, Fp16RelativeErrorBounded) {
  Xoshiro256 rng(18);
  const size_t dim = 48;
  std::vector<float> x(dim), back(dim);
  std::vector<uint16_t> q(dim);
  for (int rep = 0; rep < 64; ++rep) {
    for (size_t i = 0; i < dim; ++i) {
      x[i] = static_cast<float>((2.0 * rng.NextDouble() - 1.0) * 8.0);
    }
    kernels::QuantizeRowF16(dim, x.data(), q.data());
    kernels::DequantRowF16(dim, q.data(), back.data());
    for (size_t i = 0; i < dim; ++i) {
      // binary16 round-to-nearest: half-ulp, 2^-11 relative, for values in
      // the normal range (plus an absolute floor for near-zero inputs).
      EXPECT_LE(std::fabs(static_cast<double>(back[i]) - x[i]),
                std::fabs(x[i]) * 4.9e-4 + 6.2e-5);
    }
  }
}

// --- Mixed-storage EmbeddingTable -----------------------------------------

TEST(CompressedTableTest, HotRowsStayBitExact) {
  for (ColdPrecision p : {ColdPrecision::kInt8, ColdPrecision::kFp16}) {
    Xoshiro256 rng(21);
    EmbeddingTable plain(256, 24, rng);
    EmbeddingTable packed = plain;
    const auto mask = QuarterHotMask(256);
    packed.CompressCold(mask, p);
    ASSERT_TRUE(packed.compressed());
    std::vector<float> a(24), b(24);
    for (uint64_t r = 0; r < 256; ++r) {
      plain.ReadRowInto(r, a.data());
      packed.ReadRowInto(r, b.data());
      if (mask[r]) {
        EXPECT_EQ(std::memcmp(a.data(), b.data(), sizeof(float) * 24), 0)
            << "hot row " << r;
      } else {
        float scale = 0.0f, zero = 0.0f;
        std::vector<uint8_t> q8(24);
        std::vector<uint16_t> q16(24);
        std::vector<float> expect(24);
        if (p == ColdPrecision::kInt8) {
          kernels::QuantizeRowI8(24, a.data(), q8.data(), &scale, &zero);
          kernels::DequantRowI8(24, q8.data(), scale, zero, expect.data());
        } else {
          kernels::QuantizeRowF16(24, a.data(), q16.data());
          kernels::DequantRowF16(24, q16.data(), expect.data());
        }
        // The cold store reconstructs exactly what the kernels reconstruct.
        EXPECT_EQ(std::memcmp(expect.data(), b.data(), sizeof(float) * 24), 0)
            << "cold row " << r;
      }
    }
  }
}

TEST(CompressedTableTest, AddRowToMatchesReadRowInto) {
  Xoshiro256 rng(22);
  EmbeddingTable table(128, 16, rng);
  table.CompressCold(QuarterHotMask(128), ColdPrecision::kInt8);
  std::vector<float> read(16), acc(16);
  for (uint64_t r = 0; r < 128; ++r) {
    table.ReadRowInto(r, read.data());
    std::fill(acc.begin(), acc.end(), 1.5f);
    table.AddRowTo(r, acc.data());
    for (size_t i = 0; i < 16; ++i) EXPECT_EQ(acc[i], 1.5f + read[i]);
  }
}

TEST(CompressedTableTest, DecompressWidensExactly) {
  for (ColdPrecision p : {ColdPrecision::kInt8, ColdPrecision::kFp16}) {
    Xoshiro256 rng(23);
    EmbeddingTable table(96, 12, rng);
    EmbeddingTable packed = table;
    packed.CompressCold(QuarterHotMask(96), p);
    // What the compressed table serves is what Decompress must keep.
    std::vector<std::vector<float>> served(96, std::vector<float>(12));
    for (uint64_t r = 0; r < 96; ++r) packed.ReadRowInto(r, served[r].data());
    packed.Decompress();
    ASSERT_FALSE(packed.compressed());
    EXPECT_EQ(packed.cold_rows(), 0u);
    for (uint64_t r = 0; r < 96; ++r) {
      EXPECT_EQ(std::memcmp(packed.row(r), served[r].data(),
                            sizeof(float) * 12),
                0)
          << "row " << r;
    }
  }
}

TEST(CompressedTableTest, StagedUpdateRequantizesOnFlush) {
  Xoshiro256 rng(24);
  EmbeddingTable table(64, 8, rng);
  table.CompressCold(QuarterHotMask(64), ColdPrecision::kInt8);
  const uint64_t cold_row = 1;  // not a multiple of 4
  ASSERT_FALSE(table.RowResident(cold_row));

  float* row = table.EnsureResidentRow(cold_row);
  ASSERT_TRUE(table.RowResident(cold_row));
  EXPECT_EQ(table.staged_count(), 1u);
  for (size_t i = 0; i < 8; ++i) row[i] = 0.5f * static_cast<float>(i);

  // While staged the fp32 image is served exactly.
  std::vector<float> read(8);
  table.ReadRowInto(cold_row, read.data());
  for (size_t i = 0; i < 8; ++i) EXPECT_EQ(read[i], 0.5f * i);

  table.FlushStaged();
  EXPECT_EQ(table.staged_count(), 0u);
  EXPECT_FALSE(table.RowResident(cold_row));

  // After the flush the row reads back as its own quantization.
  std::vector<uint8_t> q(8);
  std::vector<float> written(8), expect(8);
  for (size_t i = 0; i < 8; ++i) written[i] = 0.5f * static_cast<float>(i);
  float scale = 0.0f, zero = 0.0f;
  kernels::QuantizeRowI8(8, written.data(), q.data(), &scale, &zero);
  kernels::DequantRowI8(8, q.data(), scale, zero, expect.data());
  table.ReadRowInto(cold_row, read.data());
  EXPECT_EQ(std::memcmp(read.data(), expect.data(), sizeof(float) * 8), 0);
}

TEST(CompressedTableTest, PartitionMatchesDetectsDrift) {
  Xoshiro256 rng(25);
  EmbeddingTable table(64, 8, rng);
  const auto mask = QuarterHotMask(64);
  table.CompressCold(mask, ColdPrecision::kFp16);
  EXPECT_TRUE(table.PartitionMatches(mask));

  auto flipped = mask;
  flipped[2] = 1;  // a row the compressed table holds cold
  EXPECT_FALSE(table.PartitionMatches(flipped));

  // A staged row is neither cleanly hot nor cold — refuse the match.
  table.EnsureResidentRow(1);
  EXPECT_FALSE(table.PartitionMatches(mask));
  table.FlushStaged();
  EXPECT_TRUE(table.PartitionMatches(mask));
}

TEST(CompressedTableTest, ColdStoreCompressionRatios) {
  // dim 64: int8 = 64 codes + 8 bytes of scale/zero = 72 vs 256 fp32
  // (3.56x); fp16 = 128 vs 256 (2.0x). dim 16 int8 caps at 64/24 = 2.67x —
  // the reason the bench gate runs on the dim-64 workload.
  for (size_t dim : {16ul, 64ul}) {
    Xoshiro256 rng(26);
    EmbeddingTable t8(256, dim, rng);
    EmbeddingTable t16 = t8;
    const auto mask = QuarterHotMask(256);
    t8.CompressCold(mask, ColdPrecision::kInt8);
    t16.CompressCold(mask, ColdPrecision::kFp16);
    const uint64_t cold = t8.cold_rows();
    ASSERT_GT(cold, 0u);
    EXPECT_EQ(t8.ColdStoreBytes(), cold * (dim + 8));
    EXPECT_EQ(t16.ColdStoreBytes(), cold * dim * 2);
    const double fp32 = static_cast<double>(cold * dim * 4);
    EXPECT_GE(fp32 / static_cast<double>(t8.ColdStoreBytes()),
              dim == 64 ? 3.5 : 2.6);
    EXPECT_DOUBLE_EQ(fp32 / static_cast<double>(t16.ColdStoreBytes()), 2.0);
  }
}

TEST(CompressedTableTest, EmbeddingBagPoolsMixedHotCold) {
  Xoshiro256 rng(27);
  EmbeddingTable table(64, 8, rng);
  table.CompressCold(QuarterHotMask(64), ColdPrecision::kInt8);
  const std::vector<uint32_t> idx = {0, 1, 4, 7};  // hot, cold, hot, cold
  const std::vector<uint32_t> off = {0, 4};
  Tensor out = EmbeddingBag::Forward(table, idx, off);
  std::vector<float> expect(8, 0.0f);
  for (uint32_t r : idx) table.AddRowTo(r, expect.data());
  for (size_t i = 0; i < 8; ++i) EXPECT_EQ(out(0, i), expect[i]);
}

// --- Verbatim persistence through the v3 container -------------------------

TEST(QuantModelIoTest, CompressedTableRoundTripsVerbatim) {
  const DatasetSchema schema =
      MakeSchema(WorkloadKind::kKaggleDlrm, DatasetScale::kTiny);
  auto model = MakeModel(schema, /*full_size=*/false, /*seed=*/9);
  auto& tables = model->tables();
  ASSERT_FALSE(tables.empty());
  EmbeddingTable& big = tables.front();
  big.CompressCold(QuarterHotMask(big.rows()), ColdPrecision::kInt8);

  const std::string path = TempPath("fae_quant_io_verbatim.faem");
  ASSERT_TRUE(ModelIo::Save(path, *model).ok());

  auto fresh = MakeModel(schema, /*full_size=*/false, /*seed=*/10);
  ASSERT_TRUE(ModelIo::Load(path, *fresh).ok());
  const EmbeddingTable& got = fresh->tables().front();
  ASSERT_TRUE(got.compressed());
  EXPECT_EQ(got.cold_precision(), ColdPrecision::kInt8);
  EXPECT_EQ(got.slot_map(), big.slot_map());
  EXPECT_EQ(got.resident_data(), big.resident_data());
  EXPECT_EQ(got.cold_codes_i8(), big.cold_codes_i8());
  EXPECT_EQ(got.cold_scale(), big.cold_scale());
  EXPECT_EQ(got.cold_zero(), big.cold_zero());
  std::filesystem::remove(path);
}

TEST(QuantModelIoTest, SaveRefusesStagedRows) {
  const DatasetSchema schema =
      MakeSchema(WorkloadKind::kKaggleDlrm, DatasetScale::kTiny);
  auto model = MakeModel(schema, /*full_size=*/false, /*seed=*/11);
  EmbeddingTable& big = model->tables().front();
  big.CompressCold(QuarterHotMask(big.rows()), ColdPrecision::kFp16);
  big.EnsureResidentRow(1);

  const std::string path = TempPath("fae_quant_io_staged.faem");
  Status s = ModelIo::Save(path, *model);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition) << s.ToString();
  big.FlushStaged();
  EXPECT_TRUE(ModelIo::Save(path, *model).ok());
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace fae
