#include "core/rand_em_box.h"

#include <gtest/gtest.h>

#include "stats/zipf.h"
#include "util/random.h"

namespace fae {
namespace {

// Zipf access counts with hot entries *scattered* across the table (via a
// random permutation), matching the deployment the Rand-Em Box assumes:
// popularity is not spatially clustered in row-id space (the synthetic
// generator's affine rank->row map guarantees this; real hashed categorical
// ids behave the same way).
std::vector<uint64_t> ZipfCounts(uint64_t rows, uint64_t accesses,
                                 uint64_t seed) {
  Xoshiro256 rng(seed);
  ZipfSampler zipf(rows, 1.1);
  std::vector<uint64_t> counts(rows, 0);
  std::vector<uint64_t> perm = RandomPermutation(rows, rng);
  for (uint64_t i = 0; i < accesses; ++i) counts[perm[zipf.Sample(rng)]]++;
  return counts;
}

TEST(RandEmBoxTest, ExactCountBasics) {
  std::vector<uint64_t> counts = {0, 5, 10, 3, 10};
  EXPECT_EQ(RandEmBox::ExactCount(counts, 1), 4u);
  EXPECT_EQ(RandEmBox::ExactCount(counts, 10), 2u);
  EXPECT_EQ(RandEmBox::ExactCount(counts, 11), 0u);
}

TEST(RandEmBoxTest, SmallTableIsExact) {
  RandEmBox box(35, 1024, 0.999, 1);
  std::vector<uint64_t> counts(500, 0);
  for (size_t i = 0; i < 100; ++i) counts[i] = 7;
  RandEmBox::Estimate est = box.EstimateTable(counts, 5);
  EXPECT_TRUE(est.exact);
  EXPECT_EQ(est.mean_hot_entries, 100.0);
  EXPECT_EQ(est.upper_hot_entries, 100.0);
  EXPECT_EQ(est.scanned_entries, 500u);
}

TEST(RandEmBoxTest, ScansOnlySampledChunks) {
  RandEmBox box(35, 1024, 0.999, 2);
  std::vector<uint64_t> counts = ZipfCounts(500000, 2000000, 3);
  RandEmBox::Estimate est = box.EstimateTable(counts, 10);
  EXPECT_FALSE(est.exact);
  EXPECT_EQ(est.scanned_entries, 35u * 1024u);
  EXPECT_LT(est.scanned_entries, counts.size() / 10);
}

TEST(RandEmBoxTest, EstimateTracksExactWithinPaperTolerance) {
  // Paper Fig 9: "the Rand-Em Box estimation is within 10% (upper bound)
  // of the measured size". With scattered hot entries (Zipf ranks are not
  // spatially clustered here) the CLT estimate lands close.
  RandEmBox box(35, 1024, 0.999, 4);
  std::vector<uint64_t> counts = ZipfCounts(300000, 3000000, 5);
  for (uint64_t h : {5ULL, 20ULL, 100ULL}) {
    const double exact = static_cast<double>(RandEmBox::ExactCount(counts, h));
    if (exact < 100) continue;  // too rare to estimate tightly
    RandEmBox::Estimate est = box.EstimateTable(counts, h);
    EXPECT_NEAR(est.mean_hot_entries, exact, exact * 0.5)
        << "h_zt=" << h;
    EXPECT_GE(est.upper_hot_entries, est.mean_hot_entries);
  }
}

TEST(RandEmBoxTest, UpperBoundCoversTruthMostOfTheTime) {
  // Property: across many seeds the CI upper bound should rarely fall
  // below the exact count (one-sided coverage).
  std::vector<uint64_t> counts = ZipfCounts(200000, 1000000, 6);
  const uint64_t h = 20;
  const double exact = static_cast<double>(RandEmBox::ExactCount(counts, h));
  int covered = 0;
  const int kTrials = 30;
  for (int trial = 0; trial < kTrials; ++trial) {
    RandEmBox box(35, 1024, 0.999, 100 + trial);
    if (box.EstimateTable(counts, h).upper_hot_entries >= exact) ++covered;
  }
  EXPECT_GE(covered, kTrials - 4);
}

TEST(RandEmBoxTest, UpperBoundClampedToTableSize) {
  RandEmBox box(35, 1024, 0.999, 7);
  std::vector<uint64_t> counts(100000, 100);  // everything hot
  RandEmBox::Estimate est = box.EstimateTable(counts, 1);
  EXPECT_LE(est.upper_hot_entries, 100000.0);
  EXPECT_NEAR(est.mean_hot_entries, 100000.0, 1.0);
}

TEST(RandEmBoxTest, ZeroHotWhenThresholdAboveAllCounts) {
  RandEmBox box(35, 1024, 0.999, 8);
  std::vector<uint64_t> counts(100000, 2);
  RandEmBox::Estimate est = box.EstimateTable(counts, 1000);
  EXPECT_EQ(est.mean_hot_entries, 0.0);
  EXPECT_EQ(est.upper_hot_entries, 0.0);
}

TEST(RandEmBoxTest, MonotoneInThreshold) {
  RandEmBox box(35, 1024, 0.999, 9);
  std::vector<uint64_t> counts = ZipfCounts(200000, 2000000, 10);
  double prev = 1e18;
  for (uint64_t h : {2ULL, 8ULL, 32ULL, 128ULL}) {
    const double est = box.EstimateTable(counts, h).mean_hot_entries;
    EXPECT_LE(est, prev);
    prev = est;
  }
}

TEST(RandEmBoxDeathTest, RejectsDegenerateParameters) {
  EXPECT_DEATH(RandEmBox(1, 1024, 0.999, 1), "Check failed");
  EXPECT_DEATH(RandEmBox(35, 0, 0.999, 1), "Check failed");
}

}  // namespace
}  // namespace fae
