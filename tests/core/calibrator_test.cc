#include "core/calibrator.h"

#include <gtest/gtest.h>

#include "core/embedding_logger.h"
#include "data/synthetic.h"

namespace fae {
namespace {

Dataset MakeData(size_t n = 4000) {
  SyntheticGenerator gen(MakeKaggleLikeSchema(DatasetScale::kTiny),
                         {.seed = 21});
  return gen.Generate(n);
}

FaeConfig TestConfig() {
  FaeConfig cfg;
  cfg.sample_rate = 0.25;  // tiny datasets need a bigger sample
  cfg.gpu_memory_budget = 64ULL << 10;  // 64 KB forces a real trade-off
  // Tiny-scale tables are all below the paper's 1 MB cutoff; shrink it so
  // the hot/cold machinery is actually exercised.
  cfg.large_table_bytes = 1ULL << 12;
  cfg.num_threads = 2;
  return cfg;
}

TEST(EmbeddingLoggerTest, ProfilesExactlyTheSampledInputs) {
  Dataset d = MakeData(100);
  std::vector<uint64_t> ids = {1, 3, 5};
  EmbeddingLogger::Result r = EmbeddingLogger::Profile(d, ids);
  EXPECT_EQ(r.num_inputs, 3u);
  uint64_t expected = 0;
  for (uint64_t i : ids) expected += d.sample(i).NumLookups();
  EXPECT_EQ(r.num_lookups, expected);
  EXPECT_EQ(r.profile.grand_total(), expected);
}

TEST(CalibratorTest, FindsAThresholdWithinBudget) {
  Dataset d = MakeData();
  Calibrator calibrator(TestConfig());
  auto result = calibrator.Calibrate(d);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->threshold, 0.0);
  EXPECT_LE(result->estimated_hot_bytes, TestConfig().gpu_memory_budget);
  EXPECT_GT(result->sampled_inputs, 0u);
  EXPECT_FALSE(result->sweep.empty());
}

TEST(CalibratorTest, SweepSizesGrowAsThresholdShrinks) {
  Dataset d = MakeData();
  Calibrator calibrator(TestConfig());
  auto result = calibrator.Calibrate(d);
  ASSERT_TRUE(result.ok());
  for (size_t i = 1; i < result->sweep.size(); ++i) {
    EXPECT_LT(result->sweep[i].threshold, result->sweep[i - 1].threshold);
    // Estimated sizes are statistically monotone; allow tiny jitter.
    EXPECT_GE(result->sweep[i].estimated_hot_bytes * 1.2 + 1024,
              result->sweep[i - 1].estimated_hot_bytes);
  }
}

TEST(CalibratorTest, PicksFinestFittingThreshold) {
  Dataset d = MakeData();
  Calibrator calibrator(TestConfig());
  auto result = calibrator.Calibrate(d);
  ASSERT_TRUE(result.ok());
  // The chosen threshold is the last sweep point that fits.
  double finest_fit = 0.0;
  for (const ThresholdPoint& p : result->sweep) {
    if (p.fits) finest_fit = p.threshold;
  }
  EXPECT_DOUBLE_EQ(result->threshold, finest_fit);
}

TEST(CalibratorTest, LargerBudgetAllowsFinerThreshold) {
  Dataset d = MakeData();
  FaeConfig small_cfg = TestConfig();
  FaeConfig big_cfg = TestConfig();
  big_cfg.gpu_memory_budget = 256ULL << 20;
  auto small = Calibrator(small_cfg).Calibrate(d);
  auto big = Calibrator(big_cfg).Calibrate(d);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(big.ok());
  EXPECT_LE(big->threshold, small->threshold);
}

TEST(CalibratorTest, TinyBudgetFails) {
  Dataset d = MakeData();
  FaeConfig cfg = TestConfig();
  cfg.gpu_memory_budget = 16;  // nothing fits (small tables alone exceed it)
  auto result = Calibrator(cfg).Calibrate(d);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(CalibratorTest, RejectsBadConfigs) {
  Dataset d = MakeData(50);
  FaeConfig cfg = TestConfig();
  cfg.sample_rate = 0.0;
  EXPECT_EQ(Calibrator(cfg).Calibrate(d).status().code(),
            StatusCode::kInvalidArgument);
  cfg = TestConfig();
  cfg.thresholds.clear();
  EXPECT_EQ(Calibrator(cfg).Calibrate(d).status().code(),
            StatusCode::kInvalidArgument);
  cfg = TestConfig();
  cfg.thresholds = {1e-3, 1e-2};  // ascending: invalid
  EXPECT_EQ(Calibrator(cfg).Calibrate(d).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CalibratorTest, EmptyDatasetRejected) {
  DatasetSchema schema = MakeKaggleLikeSchema(DatasetScale::kTiny);
  Dataset d(schema, {});
  EXPECT_EQ(Calibrator(TestConfig()).Calibrate(d).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CalibratorTest, SmallTableBytesCountsOnlySmallTables) {
  DatasetSchema schema = MakeKaggleLikeSchema(DatasetScale::kTiny);
  const uint64_t cutoff = 1 << 12;
  uint64_t expected = 0;
  for (size_t t = 0; t < schema.num_tables(); ++t) {
    if (schema.TableBytes(t) < cutoff) expected += schema.TableBytes(t);
  }
  EXPECT_EQ(SmallTableBytes(schema, cutoff), expected);
}

TEST(CalibratorTest, SampledProfileSharesShapeWithFullProfile) {
  // Paper Fig 7: a 5% sample reproduces the access signature. At tiny
  // scale we use 25%.
  Dataset d = MakeData();
  Calibrator calibrator(TestConfig());
  auto result = calibrator.Calibrate(d);
  ASSERT_TRUE(result.ok());
  AccessProfile full = d.ProfileAllAccesses();
  // Compare hot shares at the chosen cutoff scaled to full size.
  const double sampled_share =
      static_cast<double>(result->profile.TopShare(0, 0.05));
  const double full_share = full.TopShare(0, 0.05);
  EXPECT_NEAR(sampled_share, full_share, 0.1);
}

}  // namespace
}  // namespace fae
