#include "core/embedding_classifier.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace fae {
namespace {

TEST(ClassifierTest, TagsEntriesAtOrAboveThreshold) {
  DatasetSchema schema;
  schema.name = "manual";
  schema.num_dense = 1;
  schema.embedding_dim = 16;
  // One large table (>= 1MB at dim 16 means >= 16384 rows).
  schema.table_rows = {20000};
  AccessProfile profile(schema.table_rows);
  for (int i = 0; i < 10; ++i) profile.Record(0, 7);
  for (int i = 0; i < 5; ++i) profile.Record(0, 9);
  profile.Record(0, 11);

  HotSet hot = EmbeddingClassifier::Classify(profile, schema, 5, 1 << 20);
  EXPECT_FALSE(hot.table_all_hot(0));
  EXPECT_TRUE(hot.IsHot(0, 7));
  EXPECT_TRUE(hot.IsHot(0, 9));
  EXPECT_FALSE(hot.IsHot(0, 11));
  EXPECT_FALSE(hot.IsHot(0, 0));
  EXPECT_EQ(hot.HotCount(0), 2u);
}

TEST(ClassifierTest, SmallTablesAreDeFactoHot) {
  DatasetSchema schema;
  schema.num_dense = 1;
  schema.embedding_dim = 16;
  schema.table_rows = {20000, 64};  // second table is tiny
  AccessProfile profile(schema.table_rows);
  HotSet hot = EmbeddingClassifier::Classify(profile, schema, 5, 1 << 20);
  EXPECT_TRUE(hot.table_all_hot(1));
  EXPECT_EQ(hot.HotCount(1), 64u);
  for (uint64_t r = 0; r < 64; ++r) EXPECT_TRUE(hot.IsHot(1, r));
}

TEST(ClassifierTest, HotRowsMaterializesSorted) {
  DatasetSchema schema;
  schema.num_dense = 1;
  schema.embedding_dim = 16;
  schema.table_rows = {20000};
  AccessProfile profile(schema.table_rows);
  for (uint64_t r : {100u, 5u, 9000u}) {
    for (int i = 0; i < 10; ++i) profile.Record(0, r);
  }
  HotSet hot = EmbeddingClassifier::Classify(profile, schema, 10, 1 << 20);
  EXPECT_EQ(hot.HotRows(0), (std::vector<uint32_t>{5, 100, 9000}));
}

TEST(ClassifierTest, HotBytesMatchesCountTimesDim) {
  DatasetSchema schema;
  schema.num_dense = 1;
  schema.embedding_dim = 8;
  schema.table_rows = {20000, 32};  // table 0: 625 KB at dim 8
  AccessProfile profile(schema.table_rows);
  for (int i = 0; i < 10; ++i) profile.Record(0, 3);
  HotSet hot = EmbeddingClassifier::Classify(profile, schema, 10, 1 << 16);
  // 1 hot row in table 0 + 32 all-hot rows in table 1.
  EXPECT_EQ(hot.HotBytes(8), (1 + 32) * 8 * 4u);
}

TEST(ClassifierTest, HotAccessShareOnSkewedProfile) {
  DatasetSchema schema = MakeKaggleLikeSchema(DatasetScale::kTiny);
  SyntheticGenerator gen(schema, {.seed = 5});
  Dataset d = gen.Generate(4000);
  AccessProfile profile = d.ProfileAllAccesses();
  HotSet hot = EmbeddingClassifier::Classify(profile, schema, 4, 1 << 20);
  const double share = hot.HotAccessShare(profile);
  // Paper §I: hot entries capture 75-92% of accesses; our synthetic skew
  // lands in the same regime for a low threshold.
  EXPECT_GT(share, 0.5);
  EXPECT_LE(share, 1.0);
}

TEST(ClassifierTest, ZeroThresholdMakesEverythingHot) {
  DatasetSchema schema;
  schema.num_dense = 1;
  schema.embedding_dim = 16;
  schema.table_rows = {20000};
  AccessProfile profile(schema.table_rows);
  HotSet hot = EmbeddingClassifier::Classify(profile, schema, 0, 1 << 20);
  EXPECT_EQ(hot.HotCount(0), 20000u);
}

}  // namespace
}  // namespace fae
