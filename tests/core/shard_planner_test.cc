#include "core/shard_planner.h"

#include <cmath>
#include <filesystem>
#include <fstream>
#include <numeric>

#include <gtest/gtest.h>

#include "util/file_io.h"
#include "util/random.h"

namespace fae {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

constexpr uint64_t kHotThreshold = 2;

/// A manual schema in the classifier-test mold: two large masked tables
/// with Zipf-shaped access counts plus one tiny all-hot table.
struct ZipfFixture {
  DatasetSchema schema;
  AccessProfile profile;
  HotSet hot;
};

ZipfFixture MakeZipfFixture(uint64_t seed, double zipf,
                            std::vector<uint64_t> table_rows = {30000, 24000,
                                                                64}) {
  DatasetSchema schema;
  schema.name = "manual";
  schema.num_dense = 1;
  schema.embedding_dim = 16;
  schema.table_rows = std::move(table_rows);
  AccessProfile profile(schema.table_rows);
  Xoshiro256 rng(seed);
  for (size_t t = 0; t < schema.num_tables(); ++t) {
    const uint64_t head = std::min<uint64_t>(schema.table_rows[t], 3000);
    for (uint64_t r = 0; r < head; ++r) {
      const uint64_t count =
          static_cast<uint64_t>(
              2000.0 / std::pow(static_cast<double>(r + 1), zipf)) +
          rng.NextBounded(3);
      for (uint64_t i = 0; i < count; ++i) profile.Record(t, r);
    }
  }
  HotSet hot =
      EmbeddingClassifier::Classify(profile, schema, kHotThreshold, 1 << 20);
  return {std::move(schema), std::move(profile), std::move(hot)};
}

uint64_t TotalHotRows(const AccessProfile& profile, const HotSet& hot) {
  uint64_t rows = 0;
  for (size_t t = 0; t < profile.num_tables(); ++t) {
    if (hot.table_all_hot(t)) {
      rows += profile.table_rows(t);
      continue;
    }
    for (uint8_t m : hot.mask(t)) rows += m ? 1 : 0;
  }
  return rows;
}

uint64_t TotalHotMass(const AccessProfile& profile, const HotSet& hot) {
  uint64_t mass = 0;
  for (size_t t = 0; t < profile.num_tables(); ++t) {
    if (hot.table_all_hot(t)) {
      mass += profile.table_total(t);
      continue;
    }
    const std::vector<uint64_t>& counts = profile.counts(t);
    const auto mask = hot.mask(t);
    for (size_t r = 0; r < mask.size(); ++r) {
      if (mask[r]) mass += counts[r];
    }
  }
  return mass;
}

ShardPlannerOptions Options(int devices, double fraction = 0.85,
                            uint64_t byte_cap = 0) {
  return ShardPlannerOptions{devices, fraction, byte_cap,
                             /*embedding_dim=*/16};
}

TEST(ShardPlannerTest, EveryHotRowIsPlacedExactlyOnce) {
  ZipfFixture f = MakeZipfFixture(11, 1.4);
  const uint64_t hot_rows = TotalHotRows(f.profile, f.hot);
  const uint64_t hot_mass = TotalHotMass(f.profile, f.hot);
  for (int devices : {2, 4, 8}) {
    auto plan = ShardPlanner::PlanStatistical(f.profile, f.hot,
                                              Options(devices));
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    const ShardedPlacement& p = plan.value();
    const uint64_t sharded_rows = std::accumulate(
        p.device_rows.begin(), p.device_rows.end(), uint64_t{0});
    const uint64_t sharded_mass = std::accumulate(
        p.device_mass.begin(), p.device_mass.end(), uint64_t{0});
    EXPECT_EQ(sharded_rows + p.replicated_rows, hot_rows);
    EXPECT_EQ(sharded_mass + p.replicated_mass, hot_mass);
    // Cold rows are never replicated — they stay CPU-resident.
    for (size_t t = 0; t < f.profile.num_tables(); ++t) {
      if (f.hot.table_all_hot(t)) continue;
      const auto mask = f.hot.mask(t);
      for (size_t r = 0; r < mask.size(); ++r) {
        if (!mask[r]) {
          EXPECT_FALSE(p.IsReplicated(t, static_cast<uint32_t>(r)));
        }
      }
    }
  }
}

TEST(ShardPlannerTest, BalancedUnderFuzzedZipfWeights) {
  // The bench gate requires imbalance <= 1.15; the planner should hold
  // that for any plausible skew, not just the benched workload.
  Xoshiro256 rng(23);
  for (int trial = 0; trial < 8; ++trial) {
    const double zipf = 1.1 + 0.1 * static_cast<double>(rng.NextBounded(10));
    std::vector<uint64_t> rows;
    const size_t tables = 2 + rng.NextBounded(3);
    for (size_t t = 0; t < tables; ++t) {
      rows.push_back(20000 + rng.NextBounded(20000));
    }
    ZipfFixture f = MakeZipfFixture(100 + trial, zipf, std::move(rows));
    for (int devices : {2, 4, 8}) {
      auto plan = ShardPlanner::PlanStatistical(f.profile, f.hot,
                                                Options(devices));
      ASSERT_TRUE(plan.ok()) << plan.status().ToString();
      const double imbalance = plan.value().Imbalance();
      EXPECT_GE(imbalance, 1.0);
      EXPECT_LE(imbalance, 1.15)
          << "zipf " << zipf << " devices " << devices << " trial " << trial;
    }
  }
}

TEST(ShardPlannerTest, AllHotTablesAreReplicatedOutright) {
  ZipfFixture f = MakeZipfFixture(11, 1.4);
  ASSERT_TRUE(f.hot.table_all_hot(2));  // the 64-row table
  auto plan = ShardPlanner::PlanStatistical(f.profile, f.hot, Options(4));
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const ShardedPlacement& p = plan.value();
  EXPECT_EQ(p.all_replicated[2], 1);
  EXPECT_TRUE(p.cuts[2].empty());
  for (uint32_t r = 0; r < 64; ++r) EXPECT_TRUE(p.IsReplicated(2, r));
}

TEST(ShardPlannerTest, ReplicatesTheHottestRowsFirst) {
  ZipfFixture f = MakeZipfFixture(11, 1.4);
  auto plan = ShardPlanner::PlanStatistical(f.profile, f.hot,
                                            Options(4, /*fraction=*/0.3));
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const ShardedPlacement& p = plan.value();
  // Row 0 of each masked table carries the most mass — always replicated.
  EXPECT_TRUE(p.IsReplicated(0, 0));
  EXPECT_TRUE(p.IsReplicated(1, 0));
  // A 0.3 fraction must leave warm rows for the shards.
  const uint64_t sharded_rows = std::accumulate(
      p.device_rows.begin(), p.device_rows.end(), uint64_t{0});
  EXPECT_GT(sharded_rows, 0u);
}

TEST(ShardPlannerTest, ReplicateByteCapIsHonored) {
  // A single masked table (no all-hot freebies) and fraction 1.0, so only
  // the cap can stop replication: 64 rows * 64 B/row = 4096 bytes.
  ZipfFixture f = MakeZipfFixture(31, 1.3, {30000});
  const uint64_t cap = 64 * 16 * sizeof(float);
  auto plan = ShardPlanner::PlanStatistical(
      f.profile, f.hot, Options(4, /*fraction=*/1.0, /*byte_cap=*/cap));
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const ShardedPlacement& p = plan.value();
  EXPECT_EQ(p.replicated_rows, 64u);
  EXPECT_LE(p.ReplicatedBytes(16), cap);
}

TEST(ShardPlannerTest, LptShardsWholeTables) {
  ZipfFixture f = MakeZipfFixture(11, 1.4);
  auto plan = ShardPlanner::PlanLpt(f.profile, f.hot, 4);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const ShardedPlacement& p = plan.value();
  EXPECT_EQ(p.mode, ShardingMode::kLpt);
  EXPECT_EQ(p.replicated_rows, 0u);
  EXPECT_EQ(p.replicated_mass, 0u);
  for (size_t t = 0; t < p.num_tables(); ++t) {
    if (p.cuts[t].empty()) continue;
    const uint32_t last =
        static_cast<uint32_t>(f.profile.table_rows(t)) - 1;
    EXPECT_EQ(p.DeviceOf(t, 0), p.DeviceOf(t, last)) << "table " << t;
  }
  const uint64_t sharded_mass = std::accumulate(
      p.device_mass.begin(), p.device_mass.end(), uint64_t{0});
  EXPECT_EQ(sharded_mass, TotalHotMass(f.profile, f.hot));
}

TEST(ShardPlannerTest, StatisticalBeatsLptOnImbalance) {
  ZipfFixture f = MakeZipfFixture(11, 1.4);
  auto stat = ShardPlanner::PlanStatistical(f.profile, f.hot, Options(4));
  auto lpt = ShardPlanner::PlanLpt(f.profile, f.hot, 4);
  ASSERT_TRUE(stat.ok() && lpt.ok());
  // Three tables over four devices leave LPT with an idle device; the
  // row-level planner spreads the same mass nearly evenly.
  EXPECT_LT(stat.value().Imbalance(), lpt.value().Imbalance());
}

TEST(ShardPlannerTest, PlanIsDeterministic) {
  ZipfFixture f = MakeZipfFixture(11, 1.4);
  auto a = ShardPlanner::PlanStatistical(f.profile, f.hot, Options(4));
  auto b = ShardPlanner::PlanStatistical(f.profile, f.hot, Options(4));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value().cuts, b.value().cuts);
  EXPECT_EQ(a.value().replicated, b.value().replicated);
  EXPECT_EQ(a.value().device_mass, b.value().device_mass);
  EXPECT_EQ(a.value().device_rows, b.value().device_rows);
  EXPECT_EQ(a.value().replicated_mass, b.value().replicated_mass);
  EXPECT_EQ(a.value().replicated_rows, b.value().replicated_rows);
}

TEST(ShardPlannerTest, SaveLoadRoundTrip) {
  ZipfFixture f = MakeZipfFixture(11, 1.4);
  auto plan = ShardPlanner::PlanStatistical(f.profile, f.hot, Options(4));
  ASSERT_TRUE(plan.ok());
  const ShardedPlacement& p = plan.value();
  const std::string path = TempPath("fae_placement.faes");
  ASSERT_TRUE(ShardPlanner::Save(path, p).ok());
  auto loaded = ShardPlanner::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const ShardedPlacement& q = loaded.value();
  EXPECT_EQ(q.mode, p.mode);
  EXPECT_EQ(q.num_devices, p.num_devices);
  EXPECT_EQ(q.cuts, p.cuts);
  EXPECT_EQ(q.replicated, p.replicated);
  EXPECT_EQ(q.all_replicated, p.all_replicated);
  EXPECT_EQ(q.device_mass, p.device_mass);
  EXPECT_EQ(q.device_rows, p.device_rows);
  EXPECT_EQ(q.replicated_mass, p.replicated_mass);
  EXPECT_EQ(q.replicated_rows, p.replicated_rows);
  (void)RemoveFile(path);
}

TEST(ShardPlannerTest, SingleBitFlipsAreRejected) {
  // Same sweep as the model checkpoint container: whatever byte flips,
  // the whole-file CRC front-runs parsing and Load reports DataLoss.
  ZipfFixture f = MakeZipfFixture(11, 1.4);
  auto plan = ShardPlanner::PlanStatistical(f.profile, f.hot, Options(2));
  ASSERT_TRUE(plan.ok());
  const std::string path = TempPath("fae_placement_bitflip.faes");
  ASSERT_TRUE(ShardPlanner::Save(path, plan.value()).ok());
  const auto size = std::filesystem::file_size(path);
  ASSERT_GT(size, 16u);

  for (const double frac : {0.0, 0.1, 0.33, 0.5, 0.77, 0.999}) {
    const auto offset =
        static_cast<std::streamoff>(frac * static_cast<double>(size - 1));
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    char byte = 0;
    file.seekg(offset);
    file.read(&byte, 1);
    const char flipped = static_cast<char>(byte ^ 0x40);
    file.seekp(offset);
    file.write(&flipped, 1);
    file.close();

    auto loaded = ShardPlanner::Load(path);
    ASSERT_FALSE(loaded.ok()) << "byte " << offset << " of " << size;
    EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss)
        << loaded.status().ToString();

    std::fstream undo(path, std::ios::in | std::ios::out | std::ios::binary);
    undo.seekp(offset);
    undo.write(&byte, 1);
  }
  EXPECT_TRUE(ShardPlanner::Load(path).ok());  // pristine again
  (void)RemoveFile(path);
}

TEST(ShardPlannerTest, RejectsEmptyProfile) {
  // Plans restored from the calibration cache carry no per-row counts;
  // the planner must refuse them rather than shard blind.
  ZipfFixture f = MakeZipfFixture(11, 1.4);
  AccessProfile empty((std::vector<uint64_t>()));
  auto stat = ShardPlanner::PlanStatistical(empty, f.hot, Options(4));
  ASSERT_FALSE(stat.ok());
  EXPECT_EQ(stat.status().code(), StatusCode::kInvalidArgument);
  auto lpt = ShardPlanner::PlanLpt(empty, f.hot, 4);
  ASSERT_FALSE(lpt.ok());
  EXPECT_EQ(lpt.status().code(), StatusCode::kInvalidArgument);
}

TEST(ShardPlannerTest, RejectsTableCountMismatch) {
  ZipfFixture f = MakeZipfFixture(11, 1.4);
  AccessProfile other(std::vector<uint64_t>{100});
  auto plan = ShardPlanner::PlanStatistical(other, f.hot, Options(4));
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace fae
