// Parameterized property sweeps across the FAE core: invariants that must
// hold for every (skew, budget) operating point and every scheduler rate,
// not just the defaults the other suites pin down.

#include <cmath>

#include <gtest/gtest.h>

#include "core/calibrator.h"
#include "core/embedding_classifier.h"
#include "core/fae_pipeline.h"
#include "core/shuffle_scheduler.h"
#include "data/synthetic.h"
#include "engine/step_accountant.h"
#include "sim/cost_model.h"

namespace fae {
namespace {

// ---------------------------------------------------------------------
// Calibrator: for any skew and any feasible budget, the plan must respect
// the budget and keep the books consistent.

struct CalibratorCase {
  double zipf;
  uint64_t budget;
};

class CalibratorSweep : public ::testing::TestWithParam<CalibratorCase> {};

TEST_P(CalibratorSweep, PlanRespectsBudgetAndPartitionsInputs) {
  const CalibratorCase param = GetParam();
  DatasetSchema schema = MakeKaggleLikeSchema(DatasetScale::kTiny);
  SyntheticGenerator gen(schema, {.seed = 77, .zipf_exponent = param.zipf});
  Dataset dataset = gen.Generate(8000);
  std::vector<uint64_t> ids(dataset.size());
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = i;

  FaeConfig cfg;
  cfg.sample_rate = 0.25;
  cfg.gpu_memory_budget = param.budget;
  cfg.large_table_bytes = 1ULL << 12;
  cfg.num_threads = 2;

  FaePipeline pipeline(cfg);
  auto plan = pipeline.Prepare(dataset, ids);
  if (!plan.ok()) {
    // Tiny budgets may legitimately not fit even the coarsest threshold.
    EXPECT_EQ(plan.status().code(), StatusCode::kResourceExhausted);
    EXPECT_LT(param.budget, 64ULL << 10);
    return;
  }

  // The calibrator's own estimate respected the budget; the realized slice
  // may exceed the CI-upper estimate only by sampling error.
  EXPECT_LE(plan->calibration.estimated_hot_bytes, param.budget);
  EXPECT_LE(plan->hot_bytes,
            static_cast<uint64_t>(1.35 * static_cast<double>(param.budget)));

  // Hot/cold is a partition.
  EXPECT_EQ(plan->inputs.hot_ids.size() + plan->inputs.cold_ids.size(),
            dataset.size());

  // Hot inputs only touch hot entries.
  for (size_t i = 0; i < std::min<size_t>(plan->inputs.hot_ids.size(), 200);
       ++i) {
    const SparseInput& s = dataset.sample(plan->inputs.hot_ids[i]);
    for (size_t t = 0; t < s.indices.size(); ++t) {
      for (uint32_t row : s.indices[t]) {
        EXPECT_TRUE(plan->hot_set.IsHot(t, row));
      }
    }
  }

  // Stronger skew at the same budget must not reduce the hot-access share
  // below a sane floor.
  if (param.zipf >= 1.15 && param.budget >= 256ULL << 10) {
    EXPECT_GT(plan->hot_access_share, 0.8);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SkewAndBudget, CalibratorSweep,
    ::testing::Values(CalibratorCase{0.9, 64ULL << 10},
                      CalibratorCase{0.9, 256ULL << 10},
                      CalibratorCase{1.05, 64ULL << 10},
                      CalibratorCase{1.05, 256ULL << 10},
                      CalibratorCase{1.2, 64ULL << 10},
                      CalibratorCase{1.2, 1ULL << 20},
                      CalibratorCase{1.35, 128ULL << 10},
                      CalibratorCase{1.35, 1ULL << 20}));

// ---------------------------------------------------------------------
// Scheduler: exactly-once issue and bounded transitions at every rate.

struct SchedulerCase {
  size_t cold;
  size_t hot;
  double rate;
};

class SchedulerSweep : public ::testing::TestWithParam<SchedulerCase> {};

TEST_P(SchedulerSweep, ExactlyOnceAndBoundedTransitions) {
  const SchedulerCase param = GetParam();
  FaeConfig cfg;
  cfg.initial_rate = param.rate;
  cfg.min_rate = param.rate;
  cfg.max_rate = param.rate;
  ShuffleScheduler scheduler(param.cold, param.hot, cfg);

  size_t cold_issued = 0;
  size_t hot_issued = 0;
  bool first = true;
  while (auto chunk = scheduler.Next()) {
    EXPECT_GE(chunk->count, 1u);
    if (first) {
      // Always starts with cold when any cold batches exist.
      if (param.cold > 0) {
        EXPECT_FALSE(chunk->hot);
      }
      first = false;
    }
    (chunk->hot ? hot_issued : cold_issued) += chunk->count;
  }
  EXPECT_EQ(cold_issued, param.cold);
  EXPECT_EQ(hot_issued, param.hot);
  // At rate r% each class splits into at most ceil(100/r) chunks, so the
  // alternation can switch at most that many times per class.
  const size_t max_chunks =
      2 * static_cast<size_t>(std::ceil(100.0 / param.rate)) + 2;
  EXPECT_LE(scheduler.transitions(), max_chunks);
}

INSTANTIATE_TEST_SUITE_P(
    RatesAndSizes, SchedulerSweep,
    ::testing::Values(SchedulerCase{0, 17, 50}, SchedulerCase{17, 0, 50},
                      SchedulerCase{1, 1, 1}, SchedulerCase{100, 3, 1},
                      SchedulerCase{3, 100, 10}, SchedulerCase{64, 64, 25},
                      SchedulerCase{999, 37, 33.3},
                      SchedulerCase{37, 999, 100},
                      SchedulerCase{128, 128, 7}));

// ---------------------------------------------------------------------
// Cost model: scaling directions must hold for every GPU count.

class GpuCountSweep : public ::testing::TestWithParam<int> {};

TEST_P(GpuCountSweep, HotStepScalesDownBaselineCpuDoesNot) {
  const int gpus = GetParam();
  BatchWork w;
  w.batch_size = 1024u * gpus;  // weak scaling
  w.forward_flops = 50'000'000ull * gpus;
  w.embedding_read_bytes = (2ull << 20) * gpus;
  w.embedding_activation_bytes = (1ull << 19) * gpus;
  w.touched_rows = 5000ull * gpus;
  w.touched_bytes = w.touched_rows * 64;
  w.dense_param_count = 400'000;

  CostModel cost(MakePaperServer(gpus));
  StepAccountant accountant(&cost);
  Timeline base;
  Timeline hot;
  accountant.ChargeBaselineStep(w, base);
  accountant.ChargeHotStep(w, hot);

  // The baseline's CPU time scales with the global batch (no parallelism);
  // the hot step's GPU time stays per-GPU constant under weak scaling.
  EXPECT_NEAR(base.cpu_busy_seconds() / gpus,
              [&] {
                BatchWork w1 = w;
                w1.batch_size = 1024;
                w1.forward_flops = 50'000'000;
                w1.embedding_read_bytes = 2ull << 20;
                w1.embedding_activation_bytes = 1ull << 19;
                w1.touched_rows = 5000;
                w1.touched_bytes = w1.touched_rows * 64;
                CostModel c1(MakePaperServer(1));
                StepAccountant a1(&c1);
                Timeline t1;
                a1.ChargeBaselineStep(w1, t1);
                return t1.cpu_busy_seconds();
              }(),
              1e-9);
  // Hot step never touches the CPU at any GPU count.
  EXPECT_EQ(hot.cpu_busy_seconds(), 0.0);
  EXPECT_LT(hot.TotalSeconds(), base.TotalSeconds());
}

INSTANTIATE_TEST_SUITE_P(Gpus, GpuCountSweep, ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace fae
