#include "core/input_processor.h"

#include <gtest/gtest.h>

#include "core/calibrator.h"
#include "core/embedding_classifier.h"
#include "data/synthetic.h"

namespace fae {
namespace {

struct Prepared {
  Prepared() : dataset(Generate()), profile(dataset.ProfileAllAccesses()) {}

  static Dataset Generate() {
    SyntheticGenerator gen(MakeKaggleLikeSchema(DatasetScale::kTiny),
                           {.seed = 31});
    return gen.Generate(3000);
  }

  std::vector<uint64_t> AllIds() const {
    std::vector<uint64_t> ids(dataset.size());
    for (size_t i = 0; i < ids.size(); ++i) ids[i] = i;
    return ids;
  }

  Dataset dataset;
  AccessProfile profile;
};

TEST(InputProcessorTest, PartitionCoversEveryInputOnce) {
  Prepared p;
  HotSet hot =
      EmbeddingClassifier::Classify(p.profile, p.dataset.schema(), 5, 1 << 12);
  InputProcessor proc(2);
  ProcessedInputs out = proc.Classify(p.dataset, hot, p.AllIds());
  EXPECT_EQ(out.hot_ids.size() + out.cold_ids.size(), p.dataset.size());
  // Disjoint.
  std::vector<uint8_t> seen(p.dataset.size(), 0);
  for (uint64_t i : out.hot_ids) seen[i]++;
  for (uint64_t i : out.cold_ids) seen[i]++;
  for (uint8_t s : seen) EXPECT_EQ(s, 1);
}

TEST(InputProcessorTest, HotInputsTouchOnlyHotEntries) {
  Prepared p;
  HotSet hot =
      EmbeddingClassifier::Classify(p.profile, p.dataset.schema(), 5, 1 << 12);
  InputProcessor proc(2);
  ProcessedInputs out = proc.Classify(p.dataset, hot, p.AllIds());
  for (uint64_t id : out.hot_ids) {
    const SparseInput& s = p.dataset.sample(id);
    for (size_t t = 0; t < s.indices.size(); ++t) {
      for (uint32_t row : s.indices[t]) {
        EXPECT_TRUE(hot.IsHot(t, row));
      }
    }
  }
  for (uint64_t id : out.cold_ids) {
    const SparseInput& s = p.dataset.sample(id);
    bool any_cold = false;
    for (size_t t = 0; t < s.indices.size() && !any_cold; ++t) {
      for (uint32_t row : s.indices[t]) {
        if (!hot.IsHot(t, row)) {
          any_cold = true;
          break;
        }
      }
    }
    EXPECT_TRUE(any_cold) << "cold input " << id << " has no cold lookup";
  }
}

TEST(InputProcessorTest, SingleAndMultiThreadAgree) {
  Prepared p;
  HotSet hot =
      EmbeddingClassifier::Classify(p.profile, p.dataset.schema(), 5, 1 << 12);
  ProcessedInputs seq = InputProcessor(1).Classify(p.dataset, hot, p.AllIds());
  ProcessedInputs par = InputProcessor(8).Classify(p.dataset, hot, p.AllIds());
  EXPECT_EQ(seq.hot_ids, par.hot_ids);
  EXPECT_EQ(seq.cold_ids, par.cold_ids);
}

// Property sweep: mini-batch purity must hold at every threshold.
class BatchPurityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BatchPurityTest, PackedBatchesArePure) {
  Prepared p;
  const uint64_t h_zt = GetParam();
  HotSet hot = EmbeddingClassifier::Classify(p.profile, p.dataset.schema(),
                                             h_zt, 1 << 12);
  InputProcessor proc(2);
  ProcessedInputs inputs = proc.Classify(p.dataset, hot, p.AllIds());
  auto packed = InputProcessor::Pack(p.dataset, inputs, 64, /*seed=*/9);

  size_t total = 0;
  for (const MiniBatch& b : packed.hot) {
    EXPECT_TRUE(b.hot);
    total += b.batch_size();
    for (size_t t = 0; t < b.indices.size(); ++t) {
      for (uint32_t row : b.indices[t]) EXPECT_TRUE(hot.IsHot(t, row));
    }
  }
  for (const MiniBatch& b : packed.cold) {
    EXPECT_FALSE(b.hot);
    total += b.batch_size();
  }
  EXPECT_EQ(total, p.dataset.size());
}

INSTANTIATE_TEST_SUITE_P(Thresholds, BatchPurityTest,
                         ::testing::Values(1, 2, 4, 8, 16, 64, 256));

TEST(InputProcessorTest, AllHotWhenEverythingIsHot) {
  Prepared p;
  HotSet hot =
      EmbeddingClassifier::Classify(p.profile, p.dataset.schema(), 0, 1 << 12);
  ProcessedInputs out = InputProcessor(2).Classify(p.dataset, hot, p.AllIds());
  EXPECT_EQ(out.cold_ids.size(), 0u);
  EXPECT_DOUBLE_EQ(out.HotFraction(), 1.0);
}

TEST(InputProcessorTest, AllColdUnderImpossibleThreshold) {
  Prepared p;
  HotSet hot = EmbeddingClassifier::Classify(
      p.profile, p.dataset.schema(), 1000000000, 1 << 12);
  ProcessedInputs out = InputProcessor(2).Classify(p.dataset, hot, p.AllIds());
  // Inputs touching only small (all-hot) tables could still be hot, but a
  // Kaggle-like input touches every table including large ones.
  EXPECT_EQ(out.hot_ids.size(), 0u);
  EXPECT_DOUBLE_EQ(out.HotFraction(), 0.0);
}

TEST(InputProcessorTest, PackRespectsBatchSize) {
  Prepared p;
  HotSet hot =
      EmbeddingClassifier::Classify(p.profile, p.dataset.schema(), 3, 1 << 12);
  ProcessedInputs inputs =
      InputProcessor(2).Classify(p.dataset, hot, p.AllIds());
  auto packed = InputProcessor::Pack(p.dataset, inputs, 128, 1);
  for (size_t i = 0; i + 1 < packed.hot.size(); ++i) {
    EXPECT_EQ(packed.hot[i].batch_size(), 128u);
  }
  for (size_t i = 0; i + 1 < packed.cold.size(); ++i) {
    EXPECT_EQ(packed.cold[i].batch_size(), 128u);
  }
}

TEST(InputProcessorTest, EmptyInputListYieldsNothing) {
  Prepared p;
  HotSet hot =
      EmbeddingClassifier::Classify(p.profile, p.dataset.schema(), 3, 1 << 12);
  ProcessedInputs out = InputProcessor(2).Classify(p.dataset, hot, {});
  EXPECT_TRUE(out.hot_ids.empty());
  EXPECT_TRUE(out.cold_ids.empty());
  auto packed = InputProcessor::Pack(p.dataset, out, 64, 1);
  EXPECT_TRUE(packed.hot.empty());
  EXPECT_TRUE(packed.cold.empty());
}

}  // namespace
}  // namespace fae
