#include "core/embedding_replicator.h"

#include <gtest/gtest.h>

#include "core/input_processor.h"
#include "data/synthetic.h"

namespace fae {
namespace {

struct Fixture {
  Fixture()
      : schema(MakeKaggleLikeSchema(DatasetScale::kTiny)),
        dataset(SyntheticGenerator(schema, {.seed = 51}).Generate(2000)) {
    Xoshiro256 rng(3);
    for (uint64_t rows : schema.table_rows) {
      masters.emplace_back(rows, schema.embedding_dim, rng);
    }
    AccessProfile profile = dataset.ProfileAllAccesses();
    hot = EmbeddingClassifier::Classify(profile, schema, 4, 1 << 12);
  }

  DatasetSchema schema;
  Dataset dataset;
  std::vector<EmbeddingTable> masters;
  HotSet hot;
};

TEST(ReplicatorTest, ReplicaSizesMatchHotCounts) {
  Fixture f;
  EmbeddingReplicator rep(f.masters, f.hot);
  auto replicas = rep.replica_tables();
  ASSERT_EQ(replicas.size(), f.schema.num_tables());
  uint64_t bytes = 0;
  for (size_t t = 0; t < replicas.size(); ++t) {
    EXPECT_EQ(replicas[t]->rows(), f.hot.HotCount(t));
    EXPECT_EQ(replicas[t]->dim(), f.schema.embedding_dim);
    bytes += replicas[t]->SizeBytes();
  }
  EXPECT_EQ(rep.hot_bytes(), bytes);
  EXPECT_EQ(bytes, f.hot.HotBytes(f.schema.embedding_dim));
}

TEST(ReplicatorTest, SlotMappingIsInverse) {
  Fixture f;
  EmbeddingReplicator rep(f.masters, f.hot);
  for (size_t t = 0; t < f.schema.num_tables(); ++t) {
    const uint64_t hot_count = f.hot.HotCount(t);
    for (uint64_t slot = 0; slot < std::min<uint64_t>(hot_count, 50);
         ++slot) {
      const uint64_t row = rep.RowOf(t, slot);
      EXPECT_EQ(rep.SlotOf(t, row), static_cast<int64_t>(slot));
      EXPECT_TRUE(f.hot.IsHot(t, row));
    }
  }
}

TEST(ReplicatorTest, ColdRowsHaveNoSlot) {
  Fixture f;
  EmbeddingReplicator rep(f.masters, f.hot);
  for (size_t t = 0; t < f.schema.num_tables(); ++t) {
    if (f.hot.table_all_hot(t)) continue;
    for (uint64_t row = 0; row < std::min<uint64_t>(f.masters[t].rows(), 200);
         ++row) {
      if (!f.hot.IsHot(t, row)) {
        EXPECT_EQ(rep.SlotOf(t, row), -1);
      }
    }
  }
}

TEST(ReplicatorTest, PullCopiesHotRowsExactly) {
  Fixture f;
  EmbeddingReplicator rep(f.masters, f.hot);
  rep.PullFromMasters(f.masters);
  auto replicas = rep.replica_tables();
  for (size_t t = 0; t < replicas.size(); ++t) {
    for (uint64_t slot = 0;
         slot < std::min<uint64_t>(replicas[t]->rows(), 20); ++slot) {
      const uint64_t row = rep.RowOf(t, slot);
      for (size_t k = 0; k < f.schema.embedding_dim; ++k) {
        EXPECT_EQ(replicas[t]->row(slot)[k], f.masters[t].row(row)[k]);
      }
    }
  }
}

TEST(ReplicatorTest, PushRoundTripsUpdates) {
  Fixture f;
  EmbeddingReplicator rep(f.masters, f.hot);
  rep.PullFromMasters(f.masters);
  auto replicas = rep.replica_tables();
  // Mutate replica rows (as a hot training phase would).
  for (size_t t = 0; t < replicas.size(); ++t) {
    for (uint64_t slot = 0; slot < std::min<uint64_t>(replicas[t]->rows(), 5);
         ++slot) {
      replicas[t]->row(slot)[0] = 123.0f + static_cast<float>(slot);
    }
  }
  rep.PushToMasters(f.masters);
  for (size_t t = 0; t < replicas.size(); ++t) {
    for (uint64_t slot = 0; slot < std::min<uint64_t>(replicas[t]->rows(), 5);
         ++slot) {
      EXPECT_EQ(f.masters[t].row(rep.RowOf(t, slot))[0],
                123.0f + static_cast<float>(slot));
    }
  }
}

TEST(ReplicatorTest, TranslateRewritesHotBatch) {
  Fixture f;
  EmbeddingReplicator rep(f.masters, f.hot);
  InputProcessor proc(1);
  std::vector<uint64_t> all_ids(f.dataset.size());
  for (size_t i = 0; i < all_ids.size(); ++i) all_ids[i] = i;
  ProcessedInputs inputs = proc.Classify(f.dataset, f.hot, all_ids);
  ASSERT_GT(inputs.hot_ids.size(), 0u);
  auto packed = InputProcessor::Pack(f.dataset, inputs, 32, 1);
  ASSERT_FALSE(packed.hot.empty());

  auto translated = rep.TranslateBatch(packed.hot[0]);
  ASSERT_TRUE(translated.ok()) << translated.status().ToString();
  for (size_t t = 0; t < translated->indices.size(); ++t) {
    ASSERT_EQ(translated->indices[t].size(), packed.hot[0].indices[t].size());
    for (size_t j = 0; j < translated->indices[t].size(); ++j) {
      EXPECT_EQ(rep.RowOf(t, translated->indices[t][j]),
                packed.hot[0].indices[t][j]);
    }
    EXPECT_EQ(translated->offsets[t], packed.hot[0].offsets[t]);
  }
  EXPECT_EQ(translated->labels, packed.hot[0].labels);
}

TEST(ReplicatorTest, TranslateRejectsColdLookup) {
  Fixture f;
  EmbeddingReplicator rep(f.masters, f.hot);
  // Build a fake batch pointing at a cold row of the largest table.
  uint32_t cold_row = 0;
  bool found = false;
  for (uint32_t r = 0; r < f.masters[0].rows() && !found; ++r) {
    if (!f.hot.IsHot(0, r)) {
      cold_row = r;
      found = true;
    }
  }
  ASSERT_TRUE(found);
  MiniBatch batch;
  batch.dense = Tensor(1, f.schema.num_dense);
  batch.indices.assign(f.schema.num_tables(), {0});
  batch.indices[0] = {cold_row};
  batch.offsets.assign(f.schema.num_tables(), {0, 1});
  batch.labels = {1.0f};
  auto translated = rep.TranslateBatch(batch);
  ASSERT_FALSE(translated.ok());
  EXPECT_EQ(translated.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace fae
