#include "core/fae_format.h"

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "core/fae_pipeline.h"
#include "data/synthetic.h"
#include "util/file_io.h"

namespace fae {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

struct Fixture {
  Fixture()
      : dataset(SyntheticGenerator(MakeKaggleLikeSchema(DatasetScale::kTiny),
                                   {.seed = 61})
                    .Generate(1500)) {}

  FaeConfig Config() const {
    FaeConfig cfg;
    cfg.sample_rate = 0.3;
    cfg.gpu_memory_budget = 8ULL << 20;
    cfg.large_table_bytes = 1ULL << 12;  // tiny scale: keep hot/cold real
    cfg.num_threads = 2;
    return cfg;
  }

  std::vector<uint64_t> AllIds() const {
    std::vector<uint64_t> ids(dataset.size());
    for (size_t i = 0; i < ids.size(); ++i) ids[i] = i;
    return ids;
  }

  Dataset dataset;
};

TEST(FaeFormatTest, FingerprintStableAndSensitive) {
  Fixture f;
  EXPECT_EQ(FaeFormat::Fingerprint(f.dataset),
            FaeFormat::Fingerprint(f.dataset));
  SyntheticGenerator other_gen(MakeTaobaoLikeSchema(DatasetScale::kTiny),
                               {.seed = 61});
  Dataset other = other_gen.Generate(1500);
  EXPECT_NE(FaeFormat::Fingerprint(f.dataset), FaeFormat::Fingerprint(other));
}

TEST(FaeFormatTest, SaveLoadRoundTrip) {
  Fixture f;
  FaePipeline pipeline(f.Config());
  auto plan = pipeline.Prepare(f.dataset, f.AllIds());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  FaePreprocessed out;
  out.fingerprint = FaeFormat::Fingerprint(f.dataset);
  out.threshold = plan->threshold;
  out.h_zt = plan->h_zt;
  out.hot_set = plan->hot_set;
  out.hot_ids = plan->inputs.hot_ids;
  out.cold_ids = plan->inputs.cold_ids;

  const std::string path = TempPath("fae_roundtrip.faef");
  ASSERT_TRUE(FaeFormat::Save(path, out).ok());
  auto loaded = FaeFormat::Load(path, f.dataset);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->threshold, out.threshold);
  EXPECT_EQ(loaded->h_zt, out.h_zt);
  EXPECT_EQ(loaded->hot_ids, out.hot_ids);
  EXPECT_EQ(loaded->cold_ids, out.cold_ids);
  for (size_t t = 0; t < f.dataset.schema().num_tables(); ++t) {
    EXPECT_EQ(loaded->hot_set.HotCount(t), out.hot_set.HotCount(t));
    EXPECT_EQ(loaded->hot_set.table_all_hot(t),
              out.hot_set.table_all_hot(t));
  }
  (void)RemoveFile(path);
}

TEST(FaeFormatTest, LoadRejectsWrongDataset) {
  Fixture f;
  FaePreprocessed out;
  out.fingerprint = FaeFormat::Fingerprint(f.dataset) + 1;  // wrong
  const std::string path = TempPath("fae_wrongfp.faef");
  ASSERT_TRUE(FaeFormat::Save(path, out).ok());
  auto loaded = FaeFormat::Load(path, f.dataset);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kFailedPrecondition);
  (void)RemoveFile(path);
}

TEST(FaeFormatTest, LoadRejectsGarbage) {
  Fixture f;
  const std::string path = TempPath("fae_garbage.faef");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a FAE file at all, not even close.....";
  }
  auto loaded = FaeFormat::Load(path, f.dataset);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  (void)RemoveFile(path);
}

TEST(FaeFormatTest, LoadRejectsTruncation) {
  Fixture f;
  FaePipeline pipeline(f.Config());
  auto plan = pipeline.Prepare(f.dataset, f.AllIds());
  ASSERT_TRUE(plan.ok());
  FaePreprocessed out;
  out.fingerprint = FaeFormat::Fingerprint(f.dataset);
  out.hot_set = plan->hot_set;
  out.hot_ids = plan->inputs.hot_ids;
  out.cold_ids = plan->inputs.cold_ids;
  const std::string path = TempPath("fae_trunc.faef");
  ASSERT_TRUE(FaeFormat::Save(path, out).ok());
  // Chop off the trailer.
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 3);
  auto loaded = FaeFormat::Load(path, f.dataset);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  (void)RemoveFile(path);
}

TEST(FaeFormatTest, LoadMissingFileIsNotFound) {
  Fixture f;
  auto loaded = FaeFormat::Load(TempPath("fae_missing.faef"), f.dataset);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(FaePipelineTest, PrepareProducesConsistentPlan) {
  Fixture f;
  FaePipeline pipeline(f.Config());
  auto plan = pipeline.Prepare(f.dataset, f.AllIds());
  ASSERT_TRUE(plan.ok());
  EXPECT_GT(plan->threshold, 0.0);
  EXPECT_GT(plan->hot_bytes, 0u);
  EXPECT_LE(plan->hot_bytes,
            static_cast<uint64_t>(f.Config().gpu_memory_budget * 1.3));
  EXPECT_GT(plan->hot_access_share, 0.3);
  EXPECT_EQ(plan->inputs.hot_ids.size() + plan->inputs.cold_ids.size(),
            f.dataset.size());
  EXPECT_FALSE(plan->from_cache);
}

TEST(FaePipelineTest, PrepareCachedWritesThenReads) {
  Fixture f;
  const std::string path = TempPath("fae_cache.faef");
  (void)RemoveFile(path);
  FaePipeline pipeline(f.Config());
  auto fresh = pipeline.PrepareCached(f.dataset, f.AllIds(), path);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  EXPECT_FALSE(fresh->from_cache);
  EXPECT_TRUE(FileExists(path));

  auto cached = pipeline.PrepareCached(f.dataset, f.AllIds(), path);
  ASSERT_TRUE(cached.ok());
  EXPECT_TRUE(cached->from_cache);
  EXPECT_EQ(cached->threshold, fresh->threshold);
  EXPECT_EQ(cached->inputs.hot_ids, fresh->inputs.hot_ids);
  EXPECT_EQ(cached->hot_bytes, fresh->hot_bytes);
  (void)RemoveFile(path);
}

}  // namespace
}  // namespace fae
