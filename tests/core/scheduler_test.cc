#include "core/shuffle_scheduler.h"

#include <gtest/gtest.h>

namespace fae {
namespace {

FaeConfig Config(double initial_rate = 50.0) {
  FaeConfig cfg;
  cfg.initial_rate = initial_rate;
  return cfg;
}

TEST(SchedulerTest, StartsWithCold) {
  ShuffleScheduler s(10, 10, Config());
  auto chunk = s.Next();
  ASSERT_TRUE(chunk.has_value());
  EXPECT_FALSE(chunk->hot);
}

TEST(SchedulerTest, AlternatesAtRate50) {
  ShuffleScheduler s(10, 10, Config(50.0));
  std::vector<bool> kinds;
  std::vector<size_t> counts;
  while (auto c = s.Next()) {
    kinds.push_back(c->hot);
    counts.push_back(c->count);
  }
  // 4 chunks of 5: cold, hot, cold, hot.
  ASSERT_EQ(kinds.size(), 4u);
  EXPECT_EQ(kinds, (std::vector<bool>{false, true, false, true}));
  for (size_t c : counts) EXPECT_EQ(c, 5u);
  EXPECT_EQ(s.transitions(), 3u);
}

TEST(SchedulerTest, Rate100RunsAllColdThenAllHot) {
  ShuffleScheduler s(7, 5, Config(100.0));
  auto c1 = s.Next();
  ASSERT_TRUE(c1.has_value());
  EXPECT_FALSE(c1->hot);
  EXPECT_EQ(c1->count, 7u);
  auto c2 = s.Next();
  ASSERT_TRUE(c2.has_value());
  EXPECT_TRUE(c2->hot);
  EXPECT_EQ(c2->count, 5u);
  EXPECT_FALSE(s.Next().has_value());
  EXPECT_EQ(s.transitions(), 1u);
}

TEST(SchedulerTest, EveryBatchIssuedExactlyOnce) {
  for (double rate : {1.0, 13.0, 50.0, 100.0}) {
    ShuffleScheduler s(23, 17, Config(rate));
    size_t cold = 0;
    size_t hot = 0;
    size_t prev_cold_end = 0;
    size_t prev_hot_end = 0;
    while (auto c = s.Next()) {
      if (c->hot) {
        EXPECT_EQ(c->begin, prev_hot_end);
        prev_hot_end = c->begin + c->count;
        hot += c->count;
      } else {
        EXPECT_EQ(c->begin, prev_cold_end);
        prev_cold_end = c->begin + c->count;
        cold += c->count;
      }
    }
    EXPECT_EQ(cold, 23u) << "rate " << rate;
    EXPECT_EQ(hot, 17u) << "rate " << rate;
  }
}

TEST(SchedulerTest, DrainsOtherClassWhenOneEmpty) {
  ShuffleScheduler s(0, 9, Config(50.0));
  size_t hot = 0;
  while (auto c = s.Next()) {
    EXPECT_TRUE(c->hot);
    hot += c->count;
  }
  EXPECT_EQ(hot, 9u);
  EXPECT_EQ(s.transitions(), 0u);

  ShuffleScheduler s2(9, 0, Config(50.0));
  size_t cold = 0;
  while (auto c = s2.Next()) {
    EXPECT_FALSE(c->hot);
    cold += c->count;
  }
  EXPECT_EQ(cold, 9u);
}

TEST(SchedulerTest, LossIncreaseHalvesRate) {
  ShuffleScheduler s(100, 100, Config(50.0));
  s.ReportTestLoss(1.0);  // first report: baseline only
  EXPECT_DOUBLE_EQ(s.rate(), 50.0);
  s.ReportTestLoss(1.5);  // increase -> halve
  EXPECT_DOUBLE_EQ(s.rate(), 25.0);
  s.ReportTestLoss(2.0);
  EXPECT_DOUBLE_EQ(s.rate(), 12.5);
}

TEST(SchedulerTest, RateFlooredAtMin) {
  ShuffleScheduler s(100, 100, Config(2.0));
  s.ReportTestLoss(1.0);
  for (int i = 0; i < 10; ++i) s.ReportTestLoss(10.0 + i);
  EXPECT_DOUBLE_EQ(s.rate(), 1.0);
}

TEST(SchedulerTest, FourConsecutiveDecreasesDoubleRate) {
  ShuffleScheduler s(100, 100, Config(25.0));
  s.ReportTestLoss(5.0);
  s.ReportTestLoss(4.0);
  s.ReportTestLoss(3.0);
  s.ReportTestLoss(2.0);
  EXPECT_DOUBLE_EQ(s.rate(), 25.0);  // only 3 decreases so far
  s.ReportTestLoss(1.0);  // 4th decrease
  EXPECT_DOUBLE_EQ(s.rate(), 50.0);
}

TEST(SchedulerTest, RateCappedAtMax) {
  ShuffleScheduler s(100, 100, Config(80.0));
  s.ReportTestLoss(10.0);
  for (int i = 1; i <= 8; ++i) s.ReportTestLoss(10.0 - i);
  EXPECT_DOUBLE_EQ(s.rate(), 100.0);
}

TEST(SchedulerTest, IncreaseResetsDecreaseStreak) {
  ShuffleScheduler s(100, 100, Config(20.0));
  s.ReportTestLoss(5.0);
  s.ReportTestLoss(4.0);
  s.ReportTestLoss(3.0);
  s.ReportTestLoss(3.5);  // increase: halve and reset streak
  EXPECT_DOUBLE_EQ(s.rate(), 10.0);
  s.ReportTestLoss(3.0);
  s.ReportTestLoss(2.5);
  s.ReportTestLoss(2.0);
  EXPECT_DOUBLE_EQ(s.rate(), 10.0);  // streak is 3, not yet 4
  s.ReportTestLoss(1.5);
  EXPECT_DOUBLE_EQ(s.rate(), 20.0);
}

TEST(SchedulerTest, EqualLossKeepsRate) {
  ShuffleScheduler s(10, 10, Config(50.0));
  s.ReportTestLoss(1.0);
  s.ReportTestLoss(1.0);
  EXPECT_DOUBLE_EQ(s.rate(), 50.0);
}

TEST(SchedulerTest, ResetEpochReissuesEverythingKeepsRate) {
  ShuffleScheduler s(8, 8, Config(50.0));
  while (s.Next()) {
  }
  s.ReportTestLoss(2.0);
  s.ReportTestLoss(3.0);  // halve to 25
  s.ResetEpoch();
  EXPECT_DOUBLE_EQ(s.rate(), 25.0);
  size_t total = 0;
  size_t chunks = 0;
  bool first_hot = true;
  while (auto c = s.Next()) {
    if (chunks == 0) first_hot = c->hot;
    total += c->count;
    ++chunks;
  }
  EXPECT_FALSE(first_hot);  // epochs restart with cold
  EXPECT_EQ(total, 16u);
  EXPECT_GT(chunks, 4u);  // finer rate -> more chunks
}

TEST(SchedulerTest, EmptySchedule) {
  ShuffleScheduler s(0, 0, Config());
  EXPECT_FALSE(s.Next().has_value());
}

}  // namespace
}  // namespace fae
