#include "stats/sampling.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "util/random.h"

namespace fae {
namespace {

TEST(SamplingTest, BernoulliRateZeroAndOne) {
  Xoshiro256 rng(1);
  EXPECT_TRUE(BernoulliSampleIndices(1000, 0.0, rng).empty());
  auto all = BernoulliSampleIndices(1000, 1.0, rng);
  EXPECT_EQ(all.size(), 1000u);
}

TEST(SamplingTest, BernoulliHitsApproximateRate) {
  Xoshiro256 rng(2);
  auto s = BernoulliSampleIndices(200000, 0.05, rng);
  EXPECT_NEAR(static_cast<double>(s.size()), 10000.0, 600.0);
}

TEST(SamplingTest, BernoulliIndicesSortedAndUnique) {
  Xoshiro256 rng(3);
  auto s = BernoulliSampleIndices(10000, 0.1, rng);
  EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
  EXPECT_EQ(std::set<uint64_t>(s.begin(), s.end()).size(), s.size());
  for (uint64_t i : s) EXPECT_LT(i, 10000u);
}

TEST(SamplingTest, FixedSampleExactSize) {
  Xoshiro256 rng(4);
  auto s = FixedSampleIndices(1000, 35, rng);
  EXPECT_EQ(s.size(), 35u);
  EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
  EXPECT_EQ(std::set<uint64_t>(s.begin(), s.end()).size(), 35u);
  for (uint64_t i : s) EXPECT_LT(i, 1000u);
}

TEST(SamplingTest, FixedSampleDegenerateCases) {
  Xoshiro256 rng(5);
  EXPECT_TRUE(FixedSampleIndices(10, 0, rng).empty());
  auto all = FixedSampleIndices(10, 10, rng);
  EXPECT_EQ(all.size(), 10u);
  EXPECT_EQ(all.front(), 0u);
  EXPECT_EQ(all.back(), 9u);
}

TEST(SamplingTest, FixedSampleIsRoughlyUniform) {
  constexpr int kTrials = 20000;
  constexpr uint64_t kN = 20;
  std::vector<int> hits(kN, 0);
  Xoshiro256 rng(6);
  for (int t = 0; t < kTrials; ++t) {
    for (uint64_t i : FixedSampleIndices(kN, 5, rng)) hits[i]++;
  }
  // Each index has probability 5/20 = 0.25 of selection.
  for (uint64_t i = 0; i < kN; ++i) {
    EXPECT_NEAR(hits[i], kTrials * 0.25, 300) << "index " << i;
  }
}

TEST(SamplingTest, ReservoirFillsThenStaysAtCapacity) {
  ReservoirSampler r(10, 1);
  for (uint64_t i = 0; i < 5; ++i) r.Add(i);
  EXPECT_EQ(r.sample().size(), 5u);
  for (uint64_t i = 5; i < 1000; ++i) r.Add(i);
  EXPECT_EQ(r.sample().size(), 10u);
  EXPECT_EQ(r.seen(), 1000u);
  for (uint64_t v : r.sample()) EXPECT_LT(v, 1000u);
}

TEST(SamplingTest, ReservoirShortStreamKeepsEverything) {
  ReservoirSampler r(100, 2);
  for (uint64_t i = 0; i < 7; ++i) r.Add(i * 3);
  EXPECT_EQ(r.sample(), (std::vector<uint64_t>{0, 3, 6, 9, 12, 15, 18}));
}

TEST(SamplingTest, ReservoirIsUniform) {
  // Each of 20 items should land in a 5-slot reservoir with p = 0.25.
  constexpr int kTrials = 20000;
  std::vector<int> hits(20, 0);
  for (int t = 0; t < kTrials; ++t) {
    ReservoirSampler r(5, 1000 + t);
    for (uint64_t i = 0; i < 20; ++i) r.Add(i);
    for (uint64_t v : r.sample()) hits[v]++;
  }
  for (int i = 0; i < 20; ++i) {
    EXPECT_NEAR(hits[i], kTrials * 0.25, 350) << "item " << i;
  }
}

TEST(SamplingTest, ChunkStartsRespectBounds) {
  Xoshiro256 rng(7);
  auto starts = RandomChunkStarts(100000, 1024, 35, rng);
  EXPECT_EQ(starts.size(), 35u);
  for (uint64_t s : starts) EXPECT_LE(s, 100000u - 1024u);
}

TEST(SamplingTest, ChunkStartsSmallTableReturnsSingleChunk) {
  Xoshiro256 rng(8);
  auto starts = RandomChunkStarts(512, 1024, 35, rng);
  ASSERT_EQ(starts.size(), 1u);
  EXPECT_EQ(starts[0], 0u);
}

TEST(SamplingTest, ChunkStartsTableEqualChunk) {
  Xoshiro256 rng(9);
  auto starts = RandomChunkStarts(1024, 1024, 35, rng);
  ASSERT_EQ(starts.size(), 1u);
  EXPECT_EQ(starts[0], 0u);
}

}  // namespace
}  // namespace fae
