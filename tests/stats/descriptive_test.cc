#include "stats/descriptive.h"

#include <gtest/gtest.h>

namespace fae {
namespace {

TEST(DescriptiveTest, MeanBasics) {
  EXPECT_EQ(Mean(std::vector<double>{}), 0.0);
  EXPECT_EQ(Mean(std::vector<double>{5.0}), 5.0);
  EXPECT_EQ(Mean(std::vector<int>{1, 2, 3, 4}), 2.5);
}

TEST(DescriptiveTest, StdDevBasics) {
  EXPECT_EQ(SampleStdDev(std::vector<double>{}), 0.0);
  EXPECT_EQ(SampleStdDev(std::vector<double>{42.0}), 0.0);
  // Sample stddev of {2,4,4,4,5,5,7,9} with n-1 is sqrt(32/7).
  std::vector<double> v = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_NEAR(SampleStdDev(v), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(DescriptiveTest, ConstantVectorHasZeroStdDev) {
  std::vector<uint64_t> v(100, 7);
  EXPECT_EQ(SampleStdDev(v), 0.0);
  EXPECT_EQ(Mean(v), 7.0);
}

TEST(DescriptiveTest, WorksOnIntegerTypes) {
  std::vector<uint64_t> v = {1, 3};
  EXPECT_EQ(Mean(v), 2.0);
  EXPECT_NEAR(SampleStdDev(v), std::sqrt(2.0), 1e-12);
}

}  // namespace
}  // namespace fae
