#include "stats/access_profile.h"

#include <gtest/gtest.h>

#include "stats/zipf.h"
#include "util/random.h"

namespace fae {
namespace {

TEST(AccessProfileTest, StartsEmpty) {
  AccessProfile p({10, 20});
  EXPECT_EQ(p.num_tables(), 2u);
  EXPECT_EQ(p.table_rows(0), 10u);
  EXPECT_EQ(p.table_rows(1), 20u);
  EXPECT_EQ(p.grand_total(), 0u);
  EXPECT_EQ(p.table_total(0), 0u);
}

TEST(AccessProfileTest, RecordAccumulates) {
  AccessProfile p({4});
  p.Record(0, 1);
  p.Record(0, 1);
  p.Record(0, 3);
  EXPECT_EQ(p.counts(0)[0], 0u);
  EXPECT_EQ(p.counts(0)[1], 2u);
  EXPECT_EQ(p.counts(0)[3], 1u);
  EXPECT_EQ(p.table_total(0), 3u);
  EXPECT_EQ(p.grand_total(), 3u);
}

TEST(AccessProfileTest, EntriesAtOrAbove) {
  AccessProfile p({5});
  for (int i = 0; i < 5; ++i) p.Record(0, 0);
  for (int i = 0; i < 3; ++i) p.Record(0, 1);
  p.Record(0, 2);
  EXPECT_EQ(p.EntriesAtOrAbove(0, 1), 3u);
  EXPECT_EQ(p.EntriesAtOrAbove(0, 3), 2u);
  EXPECT_EQ(p.EntriesAtOrAbove(0, 5), 1u);
  EXPECT_EQ(p.EntriesAtOrAbove(0, 6), 0u);
  EXPECT_EQ(p.EntriesAtOrAbove(0, 0), 5u);  // zero threshold counts all rows
}

TEST(AccessProfileTest, MergeRequiresSameShape) {
  AccessProfile a({4});
  AccessProfile b({4, 4});
  EXPECT_FALSE(a.Merge(b).ok());
  AccessProfile c({5});
  EXPECT_FALSE(a.Merge(c).ok());
}

TEST(AccessProfileTest, MergeAddsCounts) {
  AccessProfile a({3});
  AccessProfile b({3});
  a.Record(0, 0);
  b.Record(0, 0);
  b.Record(0, 2);
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_EQ(a.counts(0)[0], 2u);
  EXPECT_EQ(a.counts(0)[2], 1u);
  EXPECT_EQ(a.table_total(0), 3u);
}

TEST(AccessProfileTest, TopShareOfUniformIsProportional) {
  AccessProfile p({100});
  for (uint64_t r = 0; r < 100; ++r) p.Record(0, r);
  EXPECT_NEAR(p.TopShare(0, 0.10), 0.10, 1e-9);
  EXPECT_NEAR(p.TopShare(0, 1.0), 1.0, 1e-9);
}

TEST(AccessProfileTest, TopShareOfSkewedIsConcentrated) {
  Xoshiro256 rng(11);
  ZipfSampler zipf(1000, 1.2);
  AccessProfile p({1000});
  for (int i = 0; i < 100000; ++i) p.Record(0, zipf.Sample(rng));
  // Heavy skew: top 10% should capture the large majority of accesses.
  EXPECT_GT(p.TopShare(0, 0.10), 0.75);
}

TEST(AccessProfileTest, TopShareEmptyTableIsZero) {
  AccessProfile p({50});
  EXPECT_EQ(p.TopShare(0, 0.5), 0.0);
}

TEST(AccessProfileTest, GiniOfUniformIsZero) {
  AccessProfile p({100});
  for (uint64_t r = 0; r < 100; ++r) {
    p.Record(0, r);
    p.Record(0, r);
  }
  EXPECT_NEAR(p.Gini(0), 0.0, 1e-9);
}

TEST(AccessProfileTest, GiniOfSingleHotEntryNearOne) {
  AccessProfile p({1000});
  for (int i = 0; i < 5000; ++i) p.Record(0, 7);
  EXPECT_GT(p.Gini(0), 0.99);
}

TEST(AccessProfileTest, GiniOfZipfIsHigh) {
  Xoshiro256 rng(13);
  ZipfSampler zipf(2000, 1.15);
  AccessProfile p({2000});
  for (int i = 0; i < 100000; ++i) p.Record(0, zipf.Sample(rng));
  EXPECT_GT(p.Gini(0), 0.7);
  EXPECT_LT(p.Gini(0), 1.0);
}

TEST(AccessProfileTest, GiniOfEmptyIsZero) {
  AccessProfile p({64});
  EXPECT_EQ(p.Gini(0), 0.0);
}

TEST(AccessProfileTest, CountHistogramMatchesTotalRows) {
  AccessProfile p({64});
  p.Record(0, 0);
  p.Record(0, 0);
  Histogram h = p.CountHistogram(0);
  EXPECT_EQ(h.total_count(), 64u);  // one histogram entry per table row
}

}  // namespace
}  // namespace fae
