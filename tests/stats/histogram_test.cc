#include "stats/histogram.h"

#include <gtest/gtest.h>

namespace fae {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.total_count(), 0u);
  EXPECT_EQ(h.ApproximateQuantile(0.5), 0u);
}

TEST(HistogramTest, BucketBoundaries) {
  EXPECT_EQ(Histogram::BucketLowerBound(0), 0u);
  EXPECT_EQ(Histogram::BucketLowerBound(1), 1u);
  EXPECT_EQ(Histogram::BucketLowerBound(2), 2u);
  EXPECT_EQ(Histogram::BucketLowerBound(3), 4u);
  EXPECT_EQ(Histogram::BucketLowerBound(11), 1024u);
}

TEST(HistogramTest, AddPlacesValuesInCorrectBuckets) {
  Histogram h;
  h.Add(0);
  h.Add(1);
  h.Add(2);
  h.Add(3);
  h.Add(4);
  h.Add(1000000);
  EXPECT_EQ(h.total_count(), 6u);
  const auto& b = h.bucket_counts();
  EXPECT_EQ(b[0], 1u);  // 0
  EXPECT_EQ(b[1], 1u);  // 1
  EXPECT_EQ(b[2], 2u);  // 2,3
  EXPECT_EQ(b[3], 1u);  // 4..7
}

TEST(HistogramTest, MergeAddsCounts) {
  Histogram a;
  Histogram b;
  for (int i = 0; i < 10; ++i) a.Add(5);
  for (int i = 0; i < 7; ++i) b.Add(100);
  a.Merge(b);
  EXPECT_EQ(a.total_count(), 17u);
}

TEST(HistogramTest, QuantileWalksBuckets) {
  Histogram h;
  for (int i = 0; i < 90; ++i) h.Add(1);
  for (int i = 0; i < 10; ++i) h.Add(1024);
  EXPECT_EQ(h.ApproximateQuantile(0.5), 1u);
  EXPECT_EQ(h.ApproximateQuantile(0.99), 1024u);
}

TEST(HistogramTest, ShapeDistanceZeroForIdenticalShapes) {
  Histogram a;
  Histogram b;
  for (int i = 0; i < 100; ++i) a.Add(i);
  // b has the same *shape* at half the mass.
  for (int i = 0; i < 100; i += 2) b.Add(i);
  EXPECT_LT(Histogram::ShapeDistance(a, a), 1e-12);
  EXPECT_LT(Histogram::ShapeDistance(a, b), 0.25);
}

TEST(HistogramTest, ShapeDistanceLargeForDisjointShapes) {
  Histogram a;
  Histogram b;
  for (int i = 0; i < 100; ++i) a.Add(1);
  for (int i = 0; i < 100; ++i) b.Add(1 << 20);
  EXPECT_NEAR(Histogram::ShapeDistance(a, b), 2.0, 1e-12);
}

TEST(HistogramTest, ShapeDistanceOfEmptyIsMax) {
  Histogram a;
  Histogram b;
  b.Add(3);
  EXPECT_EQ(Histogram::ShapeDistance(a, b), 2.0);
}

TEST(HistogramTest, ToStringListsNonEmptyBuckets) {
  Histogram h;
  h.Add(0);
  h.Add(9);
  const std::string s = h.ToString();
  EXPECT_NE(s.find("[>=0] 1"), std::string::npos);
  EXPECT_NE(s.find("[>=8] 1"), std::string::npos);
}

}  // namespace
}  // namespace fae
