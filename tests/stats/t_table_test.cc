#include "stats/t_table.h"

#include <cmath>

#include <gtest/gtest.h>

namespace fae {
namespace {

TEST(TTableTest, CdfAtZeroIsHalf) {
  EXPECT_NEAR(StudentTCdf(0.0, 5), 0.5, 1e-12);
  EXPECT_NEAR(StudentTCdf(0.0, 34), 0.5, 1e-12);
}

TEST(TTableTest, CdfIsSymmetric) {
  for (double t : {0.5, 1.0, 2.0, 3.34}) {
    for (double df : {1.0, 10.0, 34.0}) {
      EXPECT_NEAR(StudentTCdf(t, df) + StudentTCdf(-t, df), 1.0, 1e-10);
    }
  }
}

TEST(TTableTest, CdfMonotoneInT) {
  double prev = 0.0;
  for (double t = -5.0; t <= 5.0; t += 0.25) {
    const double c = StudentTCdf(t, 12);
    EXPECT_GT(c, prev);
    prev = c;
  }
}

TEST(TTableTest, KnownCriticalValues) {
  // Standard tables: two-sided 95% with df=30 -> 2.042; df=10 -> 2.228.
  EXPECT_NEAR(TwoSidedTCritical(0.95, 30), 2.042, 0.002);
  EXPECT_NEAR(TwoSidedTCritical(0.95, 10), 2.228, 0.002);
  // 99% two-sided, df=20 -> 2.845.
  EXPECT_NEAR(TwoSidedTCritical(0.99, 20), 2.845, 0.002);
}

TEST(TTableTest, PaperValueForRandEmBox) {
  // Paper Eq 6 quotes 3.340 for "99.9% confidence and n=35". That number is
  // the one-sided 99.9% quantile at df = 35 (t-table row t_{0.001, 35}); the
  // two-sided df = 34 value would be 3.601.
  EXPECT_NEAR(OneSidedTCritical(0.999, 35), 3.340, 0.005);
  EXPECT_NEAR(TwoSidedTCritical(0.999, 34), 3.601, 0.005);
}

TEST(TTableTest, OneSidedMatchesTwoSidedRelationship) {
  // Two-sided confidence c equals one-sided confidence (1+c)/2.
  for (double conf : {0.90, 0.95, 0.99}) {
    EXPECT_NEAR(TwoSidedTCritical(conf, 25),
                OneSidedTCritical((1.0 + conf) / 2.0, 25), 1e-9);
  }
}

TEST(TTableTest, ApproachesNormalForLargeDf) {
  // z_{0.975} = 1.95996.
  EXPECT_NEAR(TwoSidedTCritical(0.95, 100000), 1.95996, 0.001);
}

TEST(TTableTest, CriticalValueRoundTripsThroughCdf) {
  for (double conf : {0.90, 0.95, 0.99, 0.999}) {
    for (double df : {5.0, 34.0, 60.0}) {
      const double c = TwoSidedTCritical(conf, df);
      const double mass = StudentTCdf(c, df) - StudentTCdf(-c, df);
      EXPECT_NEAR(mass, conf, 1e-6);
    }
  }
}

TEST(TTableTest, HeavierTailsForSmallDf) {
  EXPECT_GT(TwoSidedTCritical(0.95, 3), TwoSidedTCritical(0.95, 30));
  EXPECT_GT(TwoSidedTCritical(0.95, 30), TwoSidedTCritical(0.95, 300));
}

}  // namespace
}  // namespace fae
