#include "stats/zipf.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/random.h"

namespace fae {
namespace {

TEST(ZipfTest, SamplesStayInRange) {
  Xoshiro256 rng(1);
  ZipfSampler zipf(100, 1.1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(zipf.Sample(rng), 100u);
  }
}

TEST(ZipfTest, SingleElementSupport) {
  Xoshiro256 rng(2);
  ZipfSampler zipf(1, 0.9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.Sample(rng), 0u);
}

TEST(ZipfTest, PmfSumsToOne) {
  ZipfSampler zipf(50, 1.3);
  double sum = 0.0;
  for (uint64_t k = 0; k < 50; ++k) sum += zipf.Pmf(k);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(ZipfTest, PmfIsMonotoneDecreasing) {
  ZipfSampler zipf(20, 0.8);
  for (uint64_t k = 1; k < 20; ++k) {
    EXPECT_GT(zipf.Pmf(k - 1), zipf.Pmf(k));
  }
}

TEST(ZipfTest, EmpiricalFrequenciesMatchPmf) {
  Xoshiro256 rng(3);
  constexpr uint64_t kN = 30;
  constexpr int kDraws = 300000;
  ZipfSampler zipf(kN, 1.2);
  std::vector<int> counts(kN, 0);
  for (int i = 0; i < kDraws; ++i) counts[zipf.Sample(rng)]++;
  for (uint64_t k = 0; k < kN; ++k) {
    const double expected = zipf.Pmf(k) * kDraws;
    // 5-sigma binomial tolerance plus small floor for rare ranks.
    const double tol = 5.0 * std::sqrt(expected) + 10.0;
    EXPECT_NEAR(counts[k], expected, tol) << "rank " << k;
  }
}

TEST(ZipfTest, SkewMatchesPaperObservation) {
  // Paper §II-A: for Criteo Kaggle, the top 6.8% of entries get >= 76% of
  // accesses. Our synthetic skew must be able to reproduce that regime.
  Xoshiro256 rng(4);
  constexpr uint64_t kN = 100000;
  constexpr int kDraws = 500000;
  ZipfSampler zipf(kN, 1.05);
  std::vector<uint32_t> counts(kN, 0);
  for (int i = 0; i < kDraws; ++i) counts[zipf.Sample(rng)]++;
  const uint64_t top = static_cast<uint64_t>(0.068 * kN);
  uint64_t captured = 0;
  for (uint64_t k = 0; k < top; ++k) captured += counts[k];
  const double share = static_cast<double>(captured) / kDraws;
  EXPECT_GT(share, 0.70);
}

TEST(ZipfTest, LargeSupportIsFastAndInRange) {
  Xoshiro256 rng(5);
  // 73.1M rows mirrors the paper's Criteo Terabyte table size.
  ZipfSampler zipf(73100000ULL, 1.1);
  for (int i = 0; i < 20000; ++i) {
    EXPECT_LT(zipf.Sample(rng), 73100000ULL);
  }
}

TEST(ZipfTest, HigherExponentConcentratesMass) {
  Xoshiro256 rng(6);
  constexpr uint64_t kN = 10000;
  constexpr int kDraws = 100000;
  auto top_share = [&](double exponent) {
    ZipfSampler zipf(kN, exponent);
    Xoshiro256 local(7);
    uint64_t hits = 0;
    for (int i = 0; i < kDraws; ++i) {
      if (zipf.Sample(local) < kN / 100) ++hits;
    }
    return static_cast<double>(hits) / kDraws;
  };
  EXPECT_LT(top_share(0.6), top_share(1.0));
  EXPECT_LT(top_share(1.0), top_share(1.4));
}

TEST(ZipfDeathTest, RejectsInvalidParameters) {
  EXPECT_DEATH(ZipfSampler(0, 1.0), "support");
  EXPECT_DEATH(ZipfSampler(10, 0.0), "exponent");
  EXPECT_DEATH(ZipfSampler(10, -1.0), "exponent");
}

}  // namespace
}  // namespace fae
