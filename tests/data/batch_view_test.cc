#include "data/batch_view.h"

#include <vector>

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "data/minibatch.h"
#include "data/synthetic.h"

namespace fae {
namespace {

std::vector<uint64_t> Iota(size_t n) {
  std::vector<uint64_t> ids(n);
  for (size_t i = 0; i < n; ++i) ids[i] = i;
  return ids;
}

/// A batch view over a gathered flat dataset must describe exactly the
/// same batch as the copying AssembleBatches path, modulo the CSR offset
/// base (views carry dataset-absolute offsets; kernels rebase on
/// offsets.front(), so only the differences matter).
void ExpectSameBatch(const BatchView& view, const MiniBatch& batch) {
  ASSERT_EQ(view.batch_size(), batch.batch_size());
  ASSERT_EQ(view.num_tables(), batch.indices.size());
  EXPECT_EQ(view.TotalLookups(), batch.TotalLookups());
  for (size_t i = 0; i < view.batch_size(); ++i) {
    EXPECT_EQ(view.labels[i], batch.labels[i]);
    for (size_t d = 0; d < view.dense.cols; ++d) {
      EXPECT_EQ(view.dense(i, d), batch.dense(i, d));
    }
  }
  for (size_t t = 0; t < view.num_tables(); ++t) {
    const std::span<const uint32_t> vi = view.indices(t);
    ASSERT_EQ(vi.size(), batch.indices[t].size());
    for (size_t k = 0; k < vi.size(); ++k) {
      EXPECT_EQ(vi[k], batch.indices[t][k]);
    }
    const std::span<const uint32_t> vo = view.offsets(t);
    ASSERT_EQ(vo.size(), batch.offsets[t].size());
    const uint32_t base = vo.front();
    for (size_t k = 0; k < vo.size(); ++k) {
      EXPECT_EQ(vo[k] - base, batch.offsets[t][k]);
    }
  }
}

TEST(BatchViewTest, ViewsMatchAssembledBatches) {
  const DatasetSchema schema = MakeKaggleLikeSchema(DatasetScale::kTiny);
  const Dataset dataset =
      SyntheticGenerator(schema, {.seed = 11}).Generate(100);
  const std::vector<uint64_t> ids = Iota(100);

  const std::vector<MiniBatch> batches =
      AssembleBatches(dataset, ids, /*batch_size=*/32, /*hot=*/false);
  const FlatDataset gathered = dataset.flat().Gather(ids);
  const std::vector<BatchView> views =
      MakeBatchViews(gathered, /*batch_size=*/32, /*hot=*/false);

  ASSERT_EQ(views.size(), batches.size());
  ASSERT_EQ(views.size(), 4u);  // 32+32+32+4: the partial tail is kept
  EXPECT_EQ(views.back().batch_size(), 4u);
  for (size_t b = 0; b < views.size(); ++b) {
    ExpectSameBatch(views[b], batches[b]);
  }
}

TEST(BatchViewTest, ViewsMatchPermutedAssembly) {
  const DatasetSchema schema = MakeKaggleLikeSchema(DatasetScale::kTiny);
  const Dataset dataset =
      SyntheticGenerator(schema, {.seed = 13}).Generate(64);
  // A shuffled epoch order: gather once, then view.
  std::vector<uint64_t> ids = {5, 63, 0, 17, 17, 2, 40, 31};
  const std::vector<MiniBatch> batches =
      AssembleBatches(dataset, ids, /*batch_size=*/3, /*hot=*/true);
  const FlatDataset gathered = dataset.flat().Gather(ids);
  const std::vector<BatchView> views =
      MakeBatchViews(gathered, /*batch_size=*/3, /*hot=*/true);
  ASSERT_EQ(views.size(), batches.size());
  for (size_t b = 0; b < views.size(); ++b) {
    EXPECT_TRUE(views[b].hot);
    ExpectSameBatch(views[b], batches[b]);
  }
}

TEST(BatchViewTest, MiniBatchConversionIsZeroBased) {
  const DatasetSchema schema = MakeKaggleLikeSchema(DatasetScale::kTiny);
  const Dataset dataset =
      SyntheticGenerator(schema, {.seed = 17}).Generate(16);
  const MiniBatch batch = AssembleBatch(dataset, Iota(8));
  const BatchView view(batch);
  ExpectSameBatch(view, batch);
  for (size_t t = 0; t < view.num_tables(); ++t) {
    EXPECT_EQ(view.offsets(t).front(), 0u);
  }
}

TEST(BatchViewTest, ViewIsZeroCopy) {
  const DatasetSchema schema = MakeKaggleLikeSchema(DatasetScale::kTiny);
  const Dataset dataset =
      SyntheticGenerator(schema, {.seed = 19}).Generate(32);
  const FlatDataset& flat = dataset.flat();
  const BatchView view = MakeBatchView(flat, 8, 24, /*hot=*/false);
  EXPECT_EQ(view.dense.data, flat.dense_row(8));
  EXPECT_EQ(view.labels.data(), flat.labels().data() + 8);
  for (size_t t = 0; t < view.num_tables(); ++t) {
    EXPECT_EQ(view.offsets(t).data(), flat.offsets(t).data() + 8);
    EXPECT_EQ(view.indices(t).data(),
              flat.indices(t).data() + flat.offsets(t)[8]);
  }
}

}  // namespace
}  // namespace fae
