#include "data/dataset_io.h"

#include <filesystem>
#include <fstream>
#include <iterator>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "util/file_io.h"

namespace fae {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

Dataset MakeData(WorkloadKind kind = WorkloadKind::kKaggleDlrm,
                 size_t n = 300) {
  SyntheticGenerator gen(MakeSchema(kind, DatasetScale::kTiny), {.seed = 91});
  return gen.Generate(n);
}

TEST(DatasetIoTest, RoundTripPreservesEverything) {
  Dataset original = MakeData();
  const std::string path = TempPath("fae_ds_roundtrip.faed");
  ASSERT_TRUE(DatasetIo::Save(path, original).ok());
  auto loaded = DatasetIo::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  const DatasetSchema& a = original.schema();
  const DatasetSchema& b = loaded->schema();
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.num_dense, b.num_dense);
  EXPECT_EQ(a.table_rows, b.table_rows);
  EXPECT_EQ(a.embedding_dim, b.embedding_dim);
  EXPECT_EQ(a.sequential, b.sequential);
  EXPECT_EQ(a.max_history, b.max_history);

  ASSERT_EQ(original.size(), loaded->size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(original.sample(i).dense, loaded->sample(i).dense);
    EXPECT_EQ(original.sample(i).indices, loaded->sample(i).indices);
    EXPECT_EQ(original.sample(i).label, loaded->sample(i).label);
  }
  (void)RemoveFile(path);
}

TEST(DatasetIoTest, RoundTripSequentialWorkload) {
  Dataset original = MakeData(WorkloadKind::kTaobaoTbsm, 200);
  const std::string path = TempPath("fae_ds_seq.faed");
  ASSERT_TRUE(DatasetIo::Save(path, original).ok());
  auto loaded = DatasetIo::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->schema().sequential);
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(original.sample(i).indices[0], loaded->sample(i).indices[0]);
  }
  (void)RemoveFile(path);
}

TEST(DatasetIoTest, EmptyDatasetRoundTrips) {
  Dataset original(MakeSchema(WorkloadKind::kKaggleDlrm, DatasetScale::kTiny),
                   {});
  const std::string path = TempPath("fae_ds_empty.faed");
  ASSERT_TRUE(DatasetIo::Save(path, original).ok());
  auto loaded = DatasetIo::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 0u);
  (void)RemoveFile(path);
}

TEST(DatasetIoTest, RejectsGarbage) {
  const std::string path = TempPath("fae_ds_garbage.faed");
  {
    std::ofstream out(path, std::ios::binary);
    out << "nope, definitely not a dataset";
  }
  auto loaded = DatasetIo::Load(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  (void)RemoveFile(path);
}

TEST(DatasetIoTest, RejectsTruncation) {
  Dataset original = MakeData(WorkloadKind::kKaggleDlrm, 50);
  const std::string path = TempPath("fae_ds_trunc.faed");
  ASSERT_TRUE(DatasetIo::Save(path, original).ok());
  std::filesystem::resize_file(path,
                               std::filesystem::file_size(path) - 7);
  auto loaded = DatasetIo::Load(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  (void)RemoveFile(path);
}

TEST(DatasetIoTest, SingleBitFlipsAnywhereAreRejected) {
  // Fuzz-style corruption sweep: a flipped byte at any offset must surface
  // as DataLoss from the whole-file CRC, never a crash or a half-loaded
  // dataset.
  Dataset original = MakeData(WorkloadKind::kKaggleDlrm, 50);
  const std::string path = TempPath("fae_ds_bitflip.faed");
  ASSERT_TRUE(DatasetIo::Save(path, original).ok());
  const auto size = std::filesystem::file_size(path);
  ASSERT_GT(size, 16u);

  for (const double frac : {0.0, 0.1, 0.33, 0.5, 0.77, 0.999}) {
    const auto offset = static_cast<std::streamoff>(
        frac * static_cast<double>(size - 1));
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    char byte = 0;
    file.seekg(offset);
    file.read(&byte, 1);
    const char flipped = static_cast<char>(byte ^ 0x40);
    file.seekp(offset);
    file.write(&flipped, 1);
    file.close();

    auto loaded = DatasetIo::Load(path);
    ASSERT_FALSE(loaded.ok()) << "byte " << offset << " of " << size;
    EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss)
        << loaded.status().ToString();

    std::fstream undo(path, std::ios::in | std::ios::out | std::ios::binary);
    undo.seekp(offset);
    undo.write(&byte, 1);
  }
  ASSERT_TRUE(DatasetIo::Load(path).ok());  // pristine again
  (void)RemoveFile(path);
}

TEST(DatasetIoTest, MissingFileIsNotFound) {
  auto loaded = DatasetIo::Load(TempPath("fae_ds_missing.faed"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(DatasetIoTest, RejectsOutOfRangeLookup) {
  // Hand-corrupt a valid file by bumping one index beyond its table.
  DatasetSchema schema;
  schema.name = "corrupt-me";
  schema.num_dense = 1;
  schema.table_rows = {4};
  schema.embedding_dim = 2;
  SparseInput sample;
  sample.dense = {0.5f};
  sample.indices = {{3}};
  sample.label = 1.0f;
  Dataset original(schema, {sample});
  const std::string path = TempPath("fae_ds_range.faed");
  ASSERT_TRUE(DatasetIo::Save(path, original).ok());

  // The single index 3 is the last u32 before the label+trailer+crc; patch
  // it to 200 (> 4 rows), then refresh the CRC footer so the *semantic*
  // range check — not the checksum — is what rejects the file.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-16, std::ios::end);  // index(4) + label(4) + trailer(4) + crc(4)
    const uint32_t bad = 200;
    f.write(reinterpret_cast<const char*>(&bad), sizeof(bad));
  }
  {
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    in.close();
    const uint32_t crc = Crc32(bytes.data(), bytes.size() - 4);
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-4, std::ios::end);
    f.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
  }
  auto loaded = DatasetIo::Load(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  (void)RemoveFile(path);
}

}  // namespace
}  // namespace fae
