#include "data/dataset.h"

#include <gtest/gtest.h>

#include "data/minibatch.h"
#include "data/synthetic.h"

namespace fae {
namespace {

Dataset SmallDataset(size_t n = 200) {
  SyntheticGenerator gen(MakeTaobaoLikeSchema(DatasetScale::kTiny),
                         {.seed = 11});
  return gen.Generate(n);
}

TEST(DatasetTest, SplitFractions) {
  Dataset d = SmallDataset(100);
  Dataset::Split split = d.MakeSplit(0.2);
  EXPECT_EQ(split.train.size(), 80u);
  EXPECT_EQ(split.test.size(), 20u);
  EXPECT_EQ(split.train.front(), 0u);
  EXPECT_EQ(split.test.front(), 80u);
}

TEST(DatasetTest, SplitZeroTestFraction) {
  Dataset d = SmallDataset(50);
  Dataset::Split split = d.MakeSplit(0.0);
  EXPECT_EQ(split.train.size(), 50u);
  EXPECT_TRUE(split.test.empty());
}

TEST(DatasetTest, ProfileAllCountsEveryLookup) {
  Dataset d = SmallDataset(100);
  AccessProfile profile = d.ProfileAllAccesses();
  uint64_t lookups = 0;
  for (size_t i = 0; i < d.size(); ++i) lookups += d.sample(i).NumLookups();
  EXPECT_EQ(profile.grand_total(), lookups);
}

TEST(DatasetTest, PartialProfileMatchesSubset) {
  Dataset d = SmallDataset(100);
  std::vector<uint64_t> which = {0, 5, 10};
  AccessProfile profile = d.ProfileAccesses(which);
  uint64_t lookups = 0;
  for (uint64_t i : which) lookups += d.sample(i).NumLookups();
  EXPECT_EQ(profile.grand_total(), lookups);
}

TEST(MiniBatchTest, AssembleBatchLaysOutCsr) {
  Dataset d = SmallDataset(20);
  MiniBatch b = AssembleBatch(d, {0, 1, 2});
  EXPECT_EQ(b.batch_size(), 3u);
  EXPECT_EQ(b.dense.rows(), 3u);
  EXPECT_EQ(b.dense.cols(), d.schema().num_dense);
  for (size_t t = 0; t < d.schema().num_tables(); ++t) {
    ASSERT_EQ(b.offsets[t].size(), 4u);
    EXPECT_EQ(b.offsets[t].front(), 0u);
    EXPECT_EQ(b.offsets[t].back(), b.indices[t].size());
  }
  // Sample 1's lookups land between its offsets.
  const SparseInput& s1 = d.sample(1);
  for (size_t t = 0; t < d.schema().num_tables(); ++t) {
    const uint32_t begin = b.offsets[t][1];
    const uint32_t end = b.offsets[t][2];
    ASSERT_EQ(end - begin, s1.indices[t].size());
    for (uint32_t j = 0; j < end - begin; ++j) {
      EXPECT_EQ(b.indices[t][begin + j], s1.indices[t][j]);
    }
  }
}

TEST(MiniBatchTest, LabelsAndDenseCopied) {
  Dataset d = SmallDataset(5);
  MiniBatch b = AssembleBatch(d, {4, 2});
  EXPECT_EQ(b.labels[0], d.sample(4).label);
  EXPECT_EQ(b.labels[1], d.sample(2).label);
  EXPECT_EQ(b.dense(0, 0), d.sample(4).dense[0]);
  EXPECT_EQ(b.dense(1, 2), d.sample(2).dense[2]);
}

TEST(MiniBatchTest, AssembleBatchesChunksAndFlags) {
  Dataset d = SmallDataset(25);
  std::vector<uint64_t> ids;
  for (uint64_t i = 0; i < 25; ++i) ids.push_back(i);
  auto batches = AssembleBatches(d, ids, 10, /*hot=*/true);
  ASSERT_EQ(batches.size(), 3u);
  EXPECT_EQ(batches[0].batch_size(), 10u);
  EXPECT_EQ(batches[2].batch_size(), 5u);
  for (const auto& b : batches) EXPECT_TRUE(b.hot);
}

TEST(MiniBatchTest, TotalLookupsSumsTables) {
  Dataset d = SmallDataset(8);
  MiniBatch b = AssembleBatch(d, {0, 1, 2, 3});
  uint64_t expected = 0;
  for (uint64_t i = 0; i < 4; ++i) expected += d.sample(i).NumLookups();
  EXPECT_EQ(b.TotalLookups(), expected);
}

TEST(MiniBatchTest, EmptyBatch) {
  Dataset d = SmallDataset(5);
  MiniBatch b = AssembleBatch(d, {});
  EXPECT_EQ(b.batch_size(), 0u);
  EXPECT_EQ(b.TotalLookups(), 0u);
}

}  // namespace
}  // namespace fae
