#include "data/synthetic.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace fae {
namespace {

DatasetSchema TinyKaggle() {
  return MakeKaggleLikeSchema(DatasetScale::kTiny);
}

TEST(SyntheticTest, GeneratesRequestedCount) {
  SyntheticGenerator gen(TinyKaggle(), {});
  Dataset d = gen.Generate(500);
  EXPECT_EQ(d.size(), 500u);
}

TEST(SyntheticTest, SamplesMatchSchema) {
  DatasetSchema schema = TinyKaggle();
  SyntheticGenerator gen(schema, {});
  Dataset d = gen.Generate(100);
  for (size_t i = 0; i < d.size(); ++i) {
    const SparseInput& s = d.sample(i);
    EXPECT_EQ(s.dense.size(), schema.num_dense);
    ASSERT_EQ(s.indices.size(), schema.num_tables());
    for (size_t t = 0; t < schema.num_tables(); ++t) {
      ASSERT_EQ(s.indices[t].size(), 1u);  // DLRM: one lookup per table
      EXPECT_LT(s.indices[t][0], schema.table_rows[t]);
    }
    EXPECT_TRUE(s.label == 0.0f || s.label == 1.0f);
  }
}

TEST(SyntheticTest, SequentialSchemaGetsHistories) {
  DatasetSchema schema = MakeTaobaoLikeSchema(DatasetScale::kTiny);
  SyntheticGenerator gen(schema, {});
  Dataset d = gen.Generate(300);
  size_t max_len = 0;
  for (size_t i = 0; i < d.size(); ++i) {
    const SparseInput& s = d.sample(i);
    ASSERT_GE(s.indices[0].size(), 1u);
    ASSERT_LE(s.indices[0].size(), schema.max_history);
    max_len = std::max(max_len, s.indices[0].size());
    for (size_t t = 1; t < schema.num_tables(); ++t) {
      EXPECT_EQ(s.indices[t].size(), 1u);
    }
  }
  EXPECT_GT(max_len, 5u);  // histories actually vary
}

TEST(SyntheticTest, DeterministicForSeed) {
  SyntheticGenerator a(TinyKaggle(), {.seed = 9});
  SyntheticGenerator b(TinyKaggle(), {.seed = 9});
  Dataset da = a.Generate(50);
  Dataset db = b.Generate(50);
  for (size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(da.sample(i).indices, db.sample(i).indices);
    EXPECT_EQ(da.sample(i).label, db.sample(i).label);
  }
}

TEST(SyntheticTest, DifferentSeedsDiffer) {
  SyntheticGenerator a(TinyKaggle(), {.seed = 1});
  SyntheticGenerator b(TinyKaggle(), {.seed = 2});
  Dataset da = a.Generate(50);
  Dataset db = b.Generate(50);
  size_t differing = 0;
  for (size_t i = 0; i < 50; ++i) {
    if (da.sample(i).indices != db.sample(i).indices) ++differing;
  }
  EXPECT_GT(differing, 40u);
}

TEST(SyntheticTest, RankToRowIsBijective) {
  DatasetSchema schema = TinyKaggle();
  SyntheticGenerator gen(schema, {});
  for (size_t t : {size_t{0}, schema.num_tables() - 1}) {
    const uint64_t rows = schema.table_rows[t];
    std::set<uint64_t> seen;
    for (uint64_t rank = 0; rank < rows; ++rank) {
      const uint64_t row = gen.RankToRow(t, rank);
      EXPECT_LT(row, rows);
      seen.insert(row);
    }
    EXPECT_EQ(seen.size(), rows);
  }
}

TEST(SyntheticTest, HotRowsAreScatteredNotPrefix) {
  // The top-100 popularity ranks should not all map into the first 10% of
  // the table (the paper: hot entries are scattered).
  DatasetSchema schema = TinyKaggle();
  SyntheticGenerator gen(schema, {});
  const uint64_t rows = schema.table_rows[0];
  size_t in_prefix = 0;
  for (uint64_t rank = 0; rank < 100; ++rank) {
    if (gen.RankToRow(0, rank) < rows / 10) ++in_prefix;
  }
  EXPECT_LT(in_prefix, 50u);
}

TEST(SyntheticTest, AccessesAreSkewed) {
  DatasetSchema schema = TinyKaggle();
  SyntheticGenerator gen(schema, {.seed = 3, .zipf_exponent = 1.05});
  Dataset d = gen.Generate(5000);
  AccessProfile profile = d.ProfileAllAccesses();
  // Largest table: top 10% of entries should hold well over half the mass.
  EXPECT_GT(profile.TopShare(0, 0.10), 0.5);
}

TEST(SyntheticTest, LabelsCorrelateWithPlantedAffinity) {
  // Inputs whose lookups have high planted affinity should be labelled 1
  // more often than those with low affinity — i.e. the task is learnable.
  DatasetSchema schema = TinyKaggle();
  SyntheticGenerator gen(schema, {.seed = 4});
  Dataset d = gen.Generate(4000);
  double hi_sum = 0, hi_n = 0, lo_sum = 0, lo_n = 0;
  for (size_t i = 0; i < d.size(); ++i) {
    const SparseInput& s = d.sample(i);
    double aff = 0;
    size_t lookups = 0;
    for (size_t t = 0; t < s.indices.size(); ++t) {
      for (uint32_t row : s.indices[t]) {
        aff += gen.Affinity(t, row);
        ++lookups;
      }
    }
    aff /= std::sqrt(static_cast<double>(lookups));
    if (aff > 1.0) {
      hi_sum += s.label;
      hi_n += 1;
    } else if (aff < -1.0) {
      lo_sum += s.label;
      lo_n += 1;
    }
  }
  ASSERT_GT(hi_n, 50);
  ASSERT_GT(lo_n, 50);
  EXPECT_GT(hi_sum / hi_n, lo_sum / lo_n + 0.2);
}

TEST(SyntheticTest, ZeroDriftMatchesStaticMapping) {
  DatasetSchema schema = TinyKaggle();
  SyntheticGenerator gen(schema, {.seed = 6, .popularity_drift = 0.0});
  for (uint64_t rank : {0ull, 7ull, 123ull}) {
    EXPECT_EQ(gen.RankToRowAt(0, rank, 0.0), gen.RankToRowAt(0, rank, 1.0));
    EXPECT_EQ(gen.RankToRow(0, rank), gen.RankToRowAt(0, rank, 0.5));
  }
}

TEST(SyntheticTest, DriftRotatesHotSetOverDataset) {
  DatasetSchema schema = TinyKaggle();
  SyntheticGenerator gen(schema, {.seed = 6, .popularity_drift = 1.0});
  Dataset d = gen.Generate(8000);
  // Top rows of the largest table in the first vs last quarter of the
  // dataset should barely overlap under a full rotation.
  auto top_rows = [&](size_t begin, size_t end) {
    std::vector<uint64_t> ids;
    for (size_t i = begin; i < end; ++i) ids.push_back(i);
    AccessProfile p = d.ProfileAccesses(ids);
    std::vector<std::pair<uint64_t, uint64_t>> counted;
    const auto& counts = p.counts(0);
    for (uint64_t r = 0; r < counts.size(); ++r) {
      if (counts[r] > 0) counted.push_back({counts[r], r});
    }
    std::sort(counted.rbegin(), counted.rend());
    std::set<uint64_t> top;
    for (size_t i = 0; i < std::min<size_t>(50, counted.size()); ++i) {
      top.insert(counted[i].second);
    }
    return top;
  };
  std::set<uint64_t> early = top_rows(0, 2000);
  std::set<uint64_t> late = top_rows(6000, 8000);
  size_t overlap = 0;
  for (uint64_t r : early) overlap += late.count(r);
  EXPECT_LT(overlap, 15u);
}

TEST(SyntheticTest, DriftedLabelsRemainBalanced) {
  SyntheticGenerator gen(TinyKaggle(), {.seed = 7, .popularity_drift = 0.5});
  Dataset d = gen.Generate(2000);
  double positives = 0;
  for (size_t i = 0; i < d.size(); ++i) positives += d.sample(i).label;
  const double rate = positives / d.size();
  EXPECT_GT(rate, 0.2);
  EXPECT_LT(rate, 0.8);
}

TEST(SyntheticTest, LabelBalanceIsReasonable) {
  SyntheticGenerator gen(TinyKaggle(), {.seed = 5});
  Dataset d = gen.Generate(2000);
  double positives = 0;
  for (size_t i = 0; i < d.size(); ++i) positives += d.sample(i).label;
  const double rate = positives / d.size();
  EXPECT_GT(rate, 0.2);
  EXPECT_LT(rate, 0.8);
}

}  // namespace
}  // namespace fae
