#include "data/batch_loader.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace fae {
namespace {

struct Fixture {
  Fixture()
      : dataset(SyntheticGenerator(MakeTaobaoLikeSchema(DatasetScale::kTiny),
                                   {.seed = 37})
                    .Generate(200)) {}

  std::vector<uint64_t> Ids(size_t n) const {
    std::vector<uint64_t> ids(n);
    for (size_t i = 0; i < n; ++i) ids[i] = i;
    return ids;
  }

  Dataset dataset;
};

void ExpectBatchesEqual(const MiniBatch& a, const MiniBatch& b) {
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.indices, b.indices);
  EXPECT_EQ(a.offsets, b.offsets);
  EXPECT_EQ(MaxAbsDiff(a.dense, b.dense), 0.0f);
}

TEST(BatchLoaderTest, ProducesSameBatchesAsDirectAssembly) {
  Fixture f;
  const auto ids = f.Ids(100);
  auto expected = AssembleBatches(f.dataset, ids, 16, false);
  BatchLoader loader(&f.dataset, ids, 16);
  EXPECT_EQ(loader.num_batches(), expected.size());
  for (const MiniBatch& want : expected) {
    auto got = loader.Next();
    ASSERT_TRUE(got.has_value());
    ExpectBatchesEqual(*got, want);
  }
  EXPECT_FALSE(loader.Next().has_value());
  EXPECT_FALSE(loader.Next().has_value());  // stays exhausted
}

TEST(BatchLoaderTest, LastBatchIsShort) {
  Fixture f;
  BatchLoader loader(&f.dataset, f.Ids(50), 16);
  EXPECT_EQ(loader.num_batches(), 4u);
  size_t total = 0;
  size_t last = 0;
  while (auto b = loader.Next()) {
    total += b->batch_size();
    last = b->batch_size();
  }
  EXPECT_EQ(total, 50u);
  EXPECT_EQ(last, 2u);
}

TEST(BatchLoaderTest, ResetReplaysTheEpoch) {
  Fixture f;
  const auto ids = f.Ids(48);
  BatchLoader loader(&f.dataset, ids, 16);
  std::vector<MiniBatch> first_pass;
  while (auto b = loader.Next()) first_pass.push_back(std::move(*b));
  ASSERT_EQ(first_pass.size(), 3u);

  loader.Reset();
  size_t i = 0;
  while (auto b = loader.Next()) {
    ExpectBatchesEqual(*b, first_pass[i++]);
  }
  EXPECT_EQ(i, 3u);
}

TEST(BatchLoaderTest, ResetMidEpochStartsOver) {
  Fixture f;
  BatchLoader loader(&f.dataset, f.Ids(64), 16);
  auto first = loader.Next();
  ASSERT_TRUE(first.has_value());
  (void)loader.Next();
  loader.Reset();
  auto again = loader.Next();
  ASSERT_TRUE(again.has_value());
  ExpectBatchesEqual(*again, *first);
  size_t remaining = 1;
  while (loader.Next()) ++remaining;
  EXPECT_EQ(remaining, 4u);
}

TEST(BatchLoaderTest, DestructionMidEpochJoinsCleanly) {
  Fixture f;
  for (int trial = 0; trial < 5; ++trial) {
    BatchLoader loader(&f.dataset, f.Ids(200), 8, /*prefetch_depth=*/2);
    (void)loader.Next();  // leave most of the epoch unconsumed
  }
}

TEST(BatchLoaderTest, EmptyIdListYieldsNothing) {
  Fixture f;
  BatchLoader loader(&f.dataset, {}, 16);
  EXPECT_EQ(loader.num_batches(), 0u);
  EXPECT_FALSE(loader.Next().has_value());
}

TEST(BatchLoaderTest, PrefetchDepthOneStillCorrect) {
  Fixture f;
  const auto ids = f.Ids(40);
  auto expected = AssembleBatches(f.dataset, ids, 8, false);
  BatchLoader loader(&f.dataset, ids, 8, /*prefetch_depth=*/1);
  for (const MiniBatch& want : expected) {
    auto got = loader.Next();
    ASSERT_TRUE(got.has_value());
    ExpectBatchesEqual(*got, want);
  }
}

}  // namespace
}  // namespace fae
