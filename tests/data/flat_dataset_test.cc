#include "data/flat_dataset.h"

#include <vector>

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "data/synthetic.h"

namespace fae {
namespace {

DatasetSchema TinySchema() {
  DatasetSchema s;
  s.name = "tiny";
  s.num_dense = 2;
  s.embedding_dim = 4;
  s.table_rows = {10, 20};
  return s;
}

std::vector<SparseInput> TinySamples() {
  std::vector<SparseInput> samples(3);
  samples[0].dense = {0.1f, 0.2f};
  samples[0].indices = {{1, 2}, {3}};
  samples[0].label = 1.0f;
  samples[1].dense = {0.3f, 0.4f};
  samples[1].indices = {{}, {4, 5, 6}};
  samples[1].label = 0.0f;
  samples[2].dense = {0.5f, 0.6f};
  samples[2].indices = {{7}, {8}};
  samples[2].label = 1.0f;
  return samples;
}

TEST(FlatDatasetTest, BuilderMatchesFromSamples) {
  const DatasetSchema schema = TinySchema();
  const std::vector<SparseInput> samples = TinySamples();
  const FlatDataset from = FlatDataset::FromSamples(schema, samples);

  FlatDataset built(schema);
  for (const SparseInput& s : samples) {
    for (float v : s.dense) built.AppendDense(v);
    for (size_t t = 0; t < s.indices.size(); ++t) {
      for (uint32_t row : s.indices[t]) built.AppendLookup(t, row);
    }
    built.FinishSample(s.label);
  }

  ASSERT_EQ(built.size(), from.size());
  for (size_t t = 0; t < schema.num_tables(); ++t) {
    ASSERT_EQ(std::vector<uint32_t>(built.indices(t).begin(),
                                    built.indices(t).end()),
              std::vector<uint32_t>(from.indices(t).begin(),
                                    from.indices(t).end()));
    ASSERT_EQ(std::vector<uint32_t>(built.offsets(t).begin(),
                                    built.offsets(t).end()),
              std::vector<uint32_t>(from.offsets(t).begin(),
                                    from.offsets(t).end()));
  }
  for (size_t i = 0; i < built.size(); ++i) {
    EXPECT_EQ(built.label(i), from.label(i));
    for (size_t d = 0; d < schema.num_dense; ++d) {
      EXPECT_EQ(built.dense_row(i)[d], from.dense_row(i)[d]);
    }
  }
}

TEST(FlatDatasetTest, SampleRoundTripsToSparseInput) {
  const std::vector<SparseInput> samples = TinySamples();
  const FlatDataset flat = FlatDataset::FromSamples(TinySchema(), samples);
  for (size_t i = 0; i < samples.size(); ++i) {
    const SparseInput s = flat.Sample(i);
    EXPECT_EQ(s.dense, samples[i].dense);
    EXPECT_EQ(s.indices, samples[i].indices);
    EXPECT_EQ(s.label, samples[i].label);
  }
}

TEST(FlatDatasetTest, CsrOffsetsAreConsistent) {
  const FlatDataset flat =
      FlatDataset::FromSamples(TinySchema(), TinySamples());
  for (size_t t = 0; t < 2; ++t) {
    const std::span<const uint32_t> off = flat.offsets(t);
    ASSERT_EQ(off.size(), flat.size() + 1);
    EXPECT_EQ(off.front(), 0u);
    EXPECT_EQ(off.back(), flat.indices(t).size());
    for (size_t i = 0; i + 1 < off.size(); ++i) {
      EXPECT_LE(off[i], off[i + 1]);
    }
  }
}

TEST(FlatDatasetTest, LookupCountsAreCachedAndExact) {
  const FlatDataset flat =
      FlatDataset::FromSamples(TinySchema(), TinySamples());
  EXPECT_EQ(flat.NumLookups(0), 3u);
  EXPECT_EQ(flat.NumLookups(1), 3u);
  EXPECT_EQ(flat.NumLookups(2), 2u);
  EXPECT_EQ(flat.total_lookups(), 8u);
}

TEST(FlatDatasetTest, PendingLookupsSeesCurrentSampleOnly) {
  FlatDataset flat(TinySchema());
  flat.AppendDense(0.0f);
  flat.AppendDense(0.0f);
  flat.AppendLookup(0, 5);
  flat.AppendLookup(0, 6);
  ASSERT_EQ(flat.PendingLookups(0).size(), 2u);
  EXPECT_EQ(flat.PendingLookups(0)[0], 5u);
  EXPECT_EQ(flat.PendingLookups(1).size(), 0u);
  flat.FinishSample(1.0f);
  EXPECT_EQ(flat.PendingLookups(0).size(), 0u);
}

TEST(FlatDatasetTest, GatherPermutesAndDuplicates) {
  const std::vector<SparseInput> samples = TinySamples();
  const FlatDataset flat = FlatDataset::FromSamples(TinySchema(), samples);
  const std::vector<uint64_t> ids = {2, 0, 2};
  const FlatDataset g = flat.Gather(ids);
  ASSERT_EQ(g.size(), 3u);
  for (size_t i = 0; i < ids.size(); ++i) {
    const SparseInput got = g.Sample(i);
    const SparseInput want = samples[ids[i]];
    EXPECT_EQ(got.dense, want.dense);
    EXPECT_EQ(got.indices, want.indices);
    EXPECT_EQ(got.label, want.label);
  }
  EXPECT_EQ(g.total_lookups(), 2u + 3u + 2u);  // samples 2, 0, 2
}

TEST(FlatDatasetTest, SyntheticGeneratorBuildsFlatDirectly) {
  const DatasetSchema schema = MakeKaggleLikeSchema(DatasetScale::kTiny);
  const Dataset dataset = SyntheticGenerator(schema, {.seed = 7}).Generate(64);
  const FlatDataset& flat = dataset.flat();
  ASSERT_EQ(flat.size(), 64u);
  uint64_t lookups = 0;
  for (size_t i = 0; i < flat.size(); ++i) lookups += flat.NumLookups(i);
  EXPECT_EQ(lookups, flat.total_lookups());
  for (size_t t = 0; t < schema.num_tables(); ++t) {
    for (uint32_t row : flat.indices(t)) {
      EXPECT_LT(row, schema.table_rows[t]);
    }
  }
}

}  // namespace
}  // namespace fae
