#include "data/schema.h"

#include <gtest/gtest.h>

namespace fae {
namespace {

TEST(SchemaTest, KaggleStructureMatchesTableI) {
  DatasetSchema s = MakeKaggleLikeSchema(DatasetScale::kSmall);
  EXPECT_EQ(s.num_dense, 13u);
  EXPECT_EQ(s.num_tables(), 26u);
  EXPECT_EQ(s.embedding_dim, 16u);
  EXPECT_FALSE(s.sequential);
}

TEST(SchemaTest, TerabyteStructureMatchesTableI) {
  DatasetSchema s = MakeTerabyteLikeSchema(DatasetScale::kSmall);
  EXPECT_EQ(s.num_dense, 13u);
  EXPECT_EQ(s.num_tables(), 26u);
  EXPECT_EQ(s.embedding_dim, 64u);
}

TEST(SchemaTest, TaobaoStructureMatchesTableI) {
  DatasetSchema s = MakeTaobaoLikeSchema(DatasetScale::kSmall);
  EXPECT_EQ(s.num_dense, 3u);
  EXPECT_EQ(s.num_tables(), 3u);
  EXPECT_TRUE(s.sequential);
  EXPECT_EQ(s.max_history, 21u);
}

TEST(SchemaTest, PaperScaleRowCounts) {
  EXPECT_EQ(MakeKaggleLikeSchema(DatasetScale::kPaper).table_rows[0],
            10100000u);
  EXPECT_EQ(MakeTerabyteLikeSchema(DatasetScale::kPaper).table_rows[0],
            73100000u);
  EXPECT_EQ(MakeTaobaoLikeSchema(DatasetScale::kPaper).table_rows[0],
            4100000u);
}

TEST(SchemaTest, RowsDecaySoSomeTablesAreSmall) {
  DatasetSchema s = MakeKaggleLikeSchema(DatasetScale::kMedium);
  EXPECT_GT(s.table_rows.front(), s.table_rows.back() * 100);
  bool has_large = false;
  bool has_small = false;
  for (size_t t = 0; t < s.num_tables(); ++t) {
    (s.IsLargeTable(t) ? has_large : has_small) = true;
  }
  EXPECT_TRUE(has_large);
  EXPECT_TRUE(has_small);
}

TEST(SchemaTest, ScalesAreOrdered) {
  for (auto make : {MakeKaggleLikeSchema, MakeTerabyteLikeSchema,
                    MakeTaobaoLikeSchema}) {
    EXPECT_LT(make(DatasetScale::kTiny).table_rows[0],
              make(DatasetScale::kSmall).table_rows[0]);
    EXPECT_LT(make(DatasetScale::kSmall).table_rows[0],
              make(DatasetScale::kMedium).table_rows[0]);
    EXPECT_LT(make(DatasetScale::kMedium).table_rows[0],
              make(DatasetScale::kPaper).table_rows[0]);
  }
}

TEST(SchemaTest, TotalBytesSumsTables) {
  DatasetSchema s = MakeTaobaoLikeSchema(DatasetScale::kTiny);
  uint64_t total = 0;
  for (size_t t = 0; t < s.num_tables(); ++t) total += s.TableBytes(t);
  EXPECT_EQ(s.TotalEmbeddingBytes(), total);
}

TEST(SchemaTest, PaperTerabyteIsTensOfGigabytes) {
  DatasetSchema s = MakeTerabyteLikeSchema(DatasetScale::kPaper);
  // Paper: 61 GB total; our log-spread gives the same order of magnitude.
  EXPECT_GT(s.TotalEmbeddingBytes(), 20ULL << 30);
}

TEST(SchemaTest, MakeSchemaDispatches) {
  EXPECT_TRUE(MakeSchema(WorkloadKind::kTaobaoTbsm, DatasetScale::kTiny)
                  .sequential);
  EXPECT_EQ(MakeSchema(WorkloadKind::kKaggleDlrm, DatasetScale::kTiny)
                .embedding_dim,
            16u);
  EXPECT_EQ(MakeSchema(WorkloadKind::kTerabyteDlrm, DatasetScale::kTiny)
                .embedding_dim,
            64u);
}

TEST(SchemaTest, DefaultInputsScaleWithDataset) {
  EXPECT_LT(DefaultNumInputs(WorkloadKind::kKaggleDlrm, DatasetScale::kTiny),
            DefaultNumInputs(WorkloadKind::kKaggleDlrm, DatasetScale::kSmall));
  EXPECT_EQ(DefaultNumInputs(WorkloadKind::kKaggleDlrm, DatasetScale::kPaper),
            45000000u);
}

TEST(SchemaTest, NamesAreStable) {
  EXPECT_EQ(WorkloadName(WorkloadKind::kKaggleDlrm), "RMC2/DLRM/Kaggle");
  EXPECT_EQ(DatasetScaleName(DatasetScale::kPaper), "paper");
}

}  // namespace
}  // namespace fae
