// Property tests for the FlatDataset CSR invariants that the pipelined
// trainer leans on (DESIGN.md §11): offsets start at 0 and grow
// monotonically, every index is in-bounds for its table, batch views carry
// dataset-absolute offsets, and a GatherInto workspace recycled across
// differently shaped fills never leaks stale samples. Shapes are fuzzed
// with a fixed seed so failures replay deterministically.

#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "data/batch_view.h"
#include "data/flat_dataset.h"
#include "data/schema.h"

namespace fae {
namespace {

struct RandomCase {
  DatasetSchema schema;
  FlatDataset flat;
};

/// Random schema + dataset: 1-4 tables, 0-3 dense features, per-sample
/// lookup counts 0-5 (zero-lookup samples are the classic CSR edge case).
RandomCase MakeRandomCase(std::mt19937_64& rng, size_t max_samples = 40) {
  RandomCase c;
  c.schema.name = "prop";
  c.schema.num_dense = rng() % 4;
  c.schema.table_rows.resize(1 + rng() % 4);
  for (auto& rows : c.schema.table_rows) rows = 1 + rng() % 500;
  c.schema.embedding_dim = 4;
  c.flat = FlatDataset(c.schema);
  const size_t n = 1 + rng() % max_samples;
  for (size_t i = 0; i < n; ++i) {
    for (size_t d = 0; d < c.schema.num_dense; ++d) {
      c.flat.AppendDense(static_cast<float>(rng() % 1000) / 7.0f);
    }
    for (size_t t = 0; t < c.schema.num_tables(); ++t) {
      const size_t lookups = rng() % 6;
      for (size_t k = 0; k < lookups; ++k) {
        c.flat.AppendLookup(
            t, static_cast<uint32_t>(rng() % c.schema.table_rows[t]));
      }
    }
    c.flat.FinishSample(static_cast<float>(i % 2));
  }
  return c;
}

/// The CSR well-formedness property every FlatDataset must satisfy.
void ExpectWellFormed(const FlatDataset& flat) {
  uint64_t total = 0;
  for (size_t t = 0; t < flat.schema().num_tables(); ++t) {
    const auto offsets = flat.offsets(t);
    const auto indices = flat.indices(t);
    ASSERT_EQ(offsets.size(), flat.size() + 1) << "table " << t;
    EXPECT_EQ(offsets.front(), 0u) << "table " << t;
    for (size_t i = 0; i + 1 < offsets.size(); ++i) {
      EXPECT_LE(offsets[i], offsets[i + 1])
          << "table " << t << " offset " << i;
    }
    EXPECT_EQ(offsets.back(), indices.size()) << "table " << t;
    for (size_t i = 0; i < indices.size(); ++i) {
      EXPECT_LT(indices[i], flat.schema().table_rows[t])
          << "table " << t << " index " << i;
    }
    total += indices.size();
  }
  EXPECT_EQ(flat.total_lookups(), total);
}

/// Sample `gi` of `got` must equal sample `si` of `src` field for field.
void ExpectSampleEqual(const FlatDataset& src, size_t si,
                       const FlatDataset& got, size_t gi) {
  for (size_t d = 0; d < src.schema().num_dense; ++d) {
    EXPECT_EQ(got.dense_row(gi)[d], src.dense_row(si)[d])
        << "sample " << gi << " dense " << d;
  }
  EXPECT_EQ(got.label(gi), src.label(si)) << "sample " << gi;
  EXPECT_EQ(got.NumLookups(gi), src.NumLookups(si)) << "sample " << gi;
  for (size_t t = 0; t < src.schema().num_tables(); ++t) {
    const auto want = src.lookups(t, si);
    const auto have = got.lookups(t, gi);
    ASSERT_EQ(have.size(), want.size()) << "sample " << gi << " table " << t;
    for (size_t k = 0; k < want.size(); ++k) {
      EXPECT_EQ(have[k], want[k])
          << "sample " << gi << " table " << t << " lookup " << k;
    }
  }
}

TEST(FlatDatasetPropertyTest, RandomDatasetsAreWellFormed) {
  std::mt19937_64 rng(101);
  for (int iter = 0; iter < 50; ++iter) {
    RandomCase c = MakeRandomCase(rng);
    ExpectWellFormed(c.flat);
  }
}

TEST(FlatDatasetPropertyTest, GatherPreservesSamplesAndWellFormedness) {
  std::mt19937_64 rng(202);
  for (int iter = 0; iter < 30; ++iter) {
    RandomCase c = MakeRandomCase(rng);
    std::vector<uint64_t> ids(rng() % (2 * c.flat.size() + 1));
    for (auto& id : ids) id = rng() % c.flat.size();  // dups + any order
    const FlatDataset got = c.flat.Gather(ids);
    ASSERT_EQ(got.size(), ids.size());
    ExpectWellFormed(got);
    for (size_t i = 0; i < ids.size(); ++i) {
      ExpectSampleEqual(c.flat, ids[i], got, i);
    }
  }
}

TEST(FlatDatasetPropertyTest, GatherIntoMatchesGatherExactly) {
  std::mt19937_64 rng(303);
  RandomCase c = MakeRandomCase(rng);
  FlatDataset workspace;
  for (int iter = 0; iter < 20; ++iter) {
    std::vector<uint64_t> ids(1 + rng() % 30);
    for (auto& id : ids) id = rng() % c.flat.size();
    c.flat.GatherInto(ids, &workspace);
    const FlatDataset want = c.flat.Gather(ids);
    ASSERT_EQ(workspace.size(), want.size());
    ExpectWellFormed(workspace);
    for (size_t i = 0; i < want.size(); ++i) {
      ExpectSampleEqual(want, i, workspace, i);
    }
  }
}

TEST(FlatDatasetPropertyTest, WorkspaceReuseNeverLeaksStaleSamples) {
  // The staleness fuzz: cycle ONE workspace through fills from different
  // source datasets with different schemas and wildly varying sizes —
  // large fill, then small, then large again. Any buffer not exactly
  // resized/overwritten shows up as a stale sample or a fat tail.
  std::mt19937_64 rng(404);
  std::vector<RandomCase> sources;
  for (int s = 0; s < 4; ++s) sources.push_back(MakeRandomCase(rng, 60));
  FlatDataset workspace;
  for (int iter = 0; iter < 60; ++iter) {
    const RandomCase& c = sources[rng() % sources.size()];
    // Alternate big and tiny fills to maximize leftover capacity.
    const size_t n =
        (iter % 2 == 0) ? 1 + rng() % 3 : 1 + rng() % (2 * c.flat.size());
    std::vector<uint64_t> ids(n);
    for (auto& id : ids) id = rng() % c.flat.size();
    c.flat.GatherInto(ids, &workspace);
    ASSERT_EQ(workspace.size(), n);
    ASSERT_EQ(workspace.schema().num_tables(), c.schema.num_tables());
    ExpectWellFormed(workspace);
    for (size_t i = 0; i < n; ++i) {
      ExpectSampleEqual(c.flat, ids[i], workspace, i);
    }
  }
}

TEST(FlatDatasetPropertyTest, BatchViewsCarryDatasetAbsoluteOffsets) {
  // The rebase contract kernels rely on: a view over samples [begin, end)
  // exposes the dataset-level CSR offsets verbatim (front == the dataset
  // start, not 0), and indices are addressed relative to offsets.front().
  std::mt19937_64 rng(505);
  for (int iter = 0; iter < 20; ++iter) {
    RandomCase c = MakeRandomCase(rng);
    const size_t batch_size = 1 + rng() % (c.flat.size() + 2);
    const auto views = MakeBatchViews(c.flat, batch_size, iter % 2 == 0);
    ASSERT_EQ(views.size(), (c.flat.size() + batch_size - 1) / batch_size);
    size_t begin = 0;
    for (const BatchView& view : views) {
      const size_t b = view.batch_size();
      ASSERT_GT(b, 0u);
      ASSERT_LE(begin + b, c.flat.size());
      uint64_t view_lookups = 0;
      for (size_t t = 0; t < c.schema.num_tables(); ++t) {
        const auto offsets = view.offsets(t);
        const auto all = c.flat.offsets(t);
        ASSERT_EQ(offsets.size(), b + 1);
        EXPECT_EQ(offsets.front(), all[begin]) << "absolute-offset contract";
        EXPECT_EQ(offsets.back(), all[begin + b]);
        // Rebasing by front() yields each sample's lookups exactly.
        for (size_t i = 0; i < b; ++i) {
          const auto want = c.flat.lookups(t, begin + i);
          const auto have = view.indices(t).subspan(
              offsets[i] - offsets.front(), offsets[i + 1] - offsets[i]);
          ASSERT_EQ(have.size(), want.size());
          for (size_t k = 0; k < want.size(); ++k) {
            EXPECT_EQ(have[k], want[k]);
          }
        }
        view_lookups += offsets.back() - offsets.front();
      }
      EXPECT_EQ(view.TotalLookups(), view_lookups);
      for (size_t i = 0; i < b; ++i) {
        EXPECT_EQ(view.labels[i], c.flat.label(begin + i));
      }
      begin += b;
    }
    EXPECT_EQ(begin, c.flat.size());
  }
}

}  // namespace
}  // namespace fae
