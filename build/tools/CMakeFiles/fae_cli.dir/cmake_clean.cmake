file(REMOVE_RECURSE
  "CMakeFiles/fae_cli.dir/fae_cli.cc.o"
  "CMakeFiles/fae_cli.dir/fae_cli.cc.o.d"
  "fae"
  "fae.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fae_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
