# Empty compiler generated dependencies file for fae_cli.
# This may be replaced when dependencies are built.
