# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_smoke "/root/repo/build/bench/micro_kernels" "--smoke" "--out=/root/repo/build/bench/BENCH_kernels_smoke.json")
set_tests_properties(bench_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/targets.cmake;51;add_test;/root/repo/bench/targets.cmake;0;;/root/repo/CMakeLists.txt;42;include;/root/repo/CMakeLists.txt;0;")
subdirs("src")
subdirs("tests")
subdirs("examples")
subdirs("tools")
