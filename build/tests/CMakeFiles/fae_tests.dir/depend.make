# Empty dependencies file for fae_tests.
# This may be replaced when dependencies are built.
