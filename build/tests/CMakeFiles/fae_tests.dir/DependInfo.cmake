
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/calibrator_test.cc" "tests/CMakeFiles/fae_tests.dir/core/calibrator_test.cc.o" "gcc" "tests/CMakeFiles/fae_tests.dir/core/calibrator_test.cc.o.d"
  "/root/repo/tests/core/classifier_test.cc" "tests/CMakeFiles/fae_tests.dir/core/classifier_test.cc.o" "gcc" "tests/CMakeFiles/fae_tests.dir/core/classifier_test.cc.o.d"
  "/root/repo/tests/core/fae_format_test.cc" "tests/CMakeFiles/fae_tests.dir/core/fae_format_test.cc.o" "gcc" "tests/CMakeFiles/fae_tests.dir/core/fae_format_test.cc.o.d"
  "/root/repo/tests/core/input_processor_test.cc" "tests/CMakeFiles/fae_tests.dir/core/input_processor_test.cc.o" "gcc" "tests/CMakeFiles/fae_tests.dir/core/input_processor_test.cc.o.d"
  "/root/repo/tests/core/property_sweep_test.cc" "tests/CMakeFiles/fae_tests.dir/core/property_sweep_test.cc.o" "gcc" "tests/CMakeFiles/fae_tests.dir/core/property_sweep_test.cc.o.d"
  "/root/repo/tests/core/rand_em_box_test.cc" "tests/CMakeFiles/fae_tests.dir/core/rand_em_box_test.cc.o" "gcc" "tests/CMakeFiles/fae_tests.dir/core/rand_em_box_test.cc.o.d"
  "/root/repo/tests/core/replicator_test.cc" "tests/CMakeFiles/fae_tests.dir/core/replicator_test.cc.o" "gcc" "tests/CMakeFiles/fae_tests.dir/core/replicator_test.cc.o.d"
  "/root/repo/tests/core/scheduler_test.cc" "tests/CMakeFiles/fae_tests.dir/core/scheduler_test.cc.o" "gcc" "tests/CMakeFiles/fae_tests.dir/core/scheduler_test.cc.o.d"
  "/root/repo/tests/data/batch_loader_test.cc" "tests/CMakeFiles/fae_tests.dir/data/batch_loader_test.cc.o" "gcc" "tests/CMakeFiles/fae_tests.dir/data/batch_loader_test.cc.o.d"
  "/root/repo/tests/data/dataset_io_test.cc" "tests/CMakeFiles/fae_tests.dir/data/dataset_io_test.cc.o" "gcc" "tests/CMakeFiles/fae_tests.dir/data/dataset_io_test.cc.o.d"
  "/root/repo/tests/data/dataset_test.cc" "tests/CMakeFiles/fae_tests.dir/data/dataset_test.cc.o" "gcc" "tests/CMakeFiles/fae_tests.dir/data/dataset_test.cc.o.d"
  "/root/repo/tests/data/schema_test.cc" "tests/CMakeFiles/fae_tests.dir/data/schema_test.cc.o" "gcc" "tests/CMakeFiles/fae_tests.dir/data/schema_test.cc.o.d"
  "/root/repo/tests/data/synthetic_test.cc" "tests/CMakeFiles/fae_tests.dir/data/synthetic_test.cc.o" "gcc" "tests/CMakeFiles/fae_tests.dir/data/synthetic_test.cc.o.d"
  "/root/repo/tests/embedding/embedding_test.cc" "tests/CMakeFiles/fae_tests.dir/embedding/embedding_test.cc.o" "gcc" "tests/CMakeFiles/fae_tests.dir/embedding/embedding_test.cc.o.d"
  "/root/repo/tests/engine/accountant_test.cc" "tests/CMakeFiles/fae_tests.dir/engine/accountant_test.cc.o" "gcc" "tests/CMakeFiles/fae_tests.dir/engine/accountant_test.cc.o.d"
  "/root/repo/tests/engine/checkpoint_test.cc" "tests/CMakeFiles/fae_tests.dir/engine/checkpoint_test.cc.o" "gcc" "tests/CMakeFiles/fae_tests.dir/engine/checkpoint_test.cc.o.d"
  "/root/repo/tests/engine/determinism_test.cc" "tests/CMakeFiles/fae_tests.dir/engine/determinism_test.cc.o" "gcc" "tests/CMakeFiles/fae_tests.dir/engine/determinism_test.cc.o.d"
  "/root/repo/tests/engine/metrics_test.cc" "tests/CMakeFiles/fae_tests.dir/engine/metrics_test.cc.o" "gcc" "tests/CMakeFiles/fae_tests.dir/engine/metrics_test.cc.o.d"
  "/root/repo/tests/engine/multinode_test.cc" "tests/CMakeFiles/fae_tests.dir/engine/multinode_test.cc.o" "gcc" "tests/CMakeFiles/fae_tests.dir/engine/multinode_test.cc.o.d"
  "/root/repo/tests/engine/placements_test.cc" "tests/CMakeFiles/fae_tests.dir/engine/placements_test.cc.o" "gcc" "tests/CMakeFiles/fae_tests.dir/engine/placements_test.cc.o.d"
  "/root/repo/tests/engine/trainer_test.cc" "tests/CMakeFiles/fae_tests.dir/engine/trainer_test.cc.o" "gcc" "tests/CMakeFiles/fae_tests.dir/engine/trainer_test.cc.o.d"
  "/root/repo/tests/fuzz_formats_test.cc" "tests/CMakeFiles/fae_tests.dir/fuzz_formats_test.cc.o" "gcc" "tests/CMakeFiles/fae_tests.dir/fuzz_formats_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/fae_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/fae_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/models/dlrm_test.cc" "tests/CMakeFiles/fae_tests.dir/models/dlrm_test.cc.o" "gcc" "tests/CMakeFiles/fae_tests.dir/models/dlrm_test.cc.o.d"
  "/root/repo/tests/models/model_io_test.cc" "tests/CMakeFiles/fae_tests.dir/models/model_io_test.cc.o" "gcc" "tests/CMakeFiles/fae_tests.dir/models/model_io_test.cc.o.d"
  "/root/repo/tests/models/tbsm_test.cc" "tests/CMakeFiles/fae_tests.dir/models/tbsm_test.cc.o" "gcc" "tests/CMakeFiles/fae_tests.dir/models/tbsm_test.cc.o.d"
  "/root/repo/tests/sim/fault_injector_test.cc" "tests/CMakeFiles/fae_tests.dir/sim/fault_injector_test.cc.o" "gcc" "tests/CMakeFiles/fae_tests.dir/sim/fault_injector_test.cc.o.d"
  "/root/repo/tests/sim/partition_test.cc" "tests/CMakeFiles/fae_tests.dir/sim/partition_test.cc.o" "gcc" "tests/CMakeFiles/fae_tests.dir/sim/partition_test.cc.o.d"
  "/root/repo/tests/sim/sim_test.cc" "tests/CMakeFiles/fae_tests.dir/sim/sim_test.cc.o" "gcc" "tests/CMakeFiles/fae_tests.dir/sim/sim_test.cc.o.d"
  "/root/repo/tests/stats/access_profile_test.cc" "tests/CMakeFiles/fae_tests.dir/stats/access_profile_test.cc.o" "gcc" "tests/CMakeFiles/fae_tests.dir/stats/access_profile_test.cc.o.d"
  "/root/repo/tests/stats/descriptive_test.cc" "tests/CMakeFiles/fae_tests.dir/stats/descriptive_test.cc.o" "gcc" "tests/CMakeFiles/fae_tests.dir/stats/descriptive_test.cc.o.d"
  "/root/repo/tests/stats/histogram_test.cc" "tests/CMakeFiles/fae_tests.dir/stats/histogram_test.cc.o" "gcc" "tests/CMakeFiles/fae_tests.dir/stats/histogram_test.cc.o.d"
  "/root/repo/tests/stats/sampling_test.cc" "tests/CMakeFiles/fae_tests.dir/stats/sampling_test.cc.o" "gcc" "tests/CMakeFiles/fae_tests.dir/stats/sampling_test.cc.o.d"
  "/root/repo/tests/stats/t_table_test.cc" "tests/CMakeFiles/fae_tests.dir/stats/t_table_test.cc.o" "gcc" "tests/CMakeFiles/fae_tests.dir/stats/t_table_test.cc.o.d"
  "/root/repo/tests/stats/zipf_test.cc" "tests/CMakeFiles/fae_tests.dir/stats/zipf_test.cc.o" "gcc" "tests/CMakeFiles/fae_tests.dir/stats/zipf_test.cc.o.d"
  "/root/repo/tests/tensor/attention_test.cc" "tests/CMakeFiles/fae_tests.dir/tensor/attention_test.cc.o" "gcc" "tests/CMakeFiles/fae_tests.dir/tensor/attention_test.cc.o.d"
  "/root/repo/tests/tensor/loss_test.cc" "tests/CMakeFiles/fae_tests.dir/tensor/loss_test.cc.o" "gcc" "tests/CMakeFiles/fae_tests.dir/tensor/loss_test.cc.o.d"
  "/root/repo/tests/tensor/mlp_test.cc" "tests/CMakeFiles/fae_tests.dir/tensor/mlp_test.cc.o" "gcc" "tests/CMakeFiles/fae_tests.dir/tensor/mlp_test.cc.o.d"
  "/root/repo/tests/tensor/ops_test.cc" "tests/CMakeFiles/fae_tests.dir/tensor/ops_test.cc.o" "gcc" "tests/CMakeFiles/fae_tests.dir/tensor/ops_test.cc.o.d"
  "/root/repo/tests/tensor/optimizer_test.cc" "tests/CMakeFiles/fae_tests.dir/tensor/optimizer_test.cc.o" "gcc" "tests/CMakeFiles/fae_tests.dir/tensor/optimizer_test.cc.o.d"
  "/root/repo/tests/tensor/tensor_test.cc" "tests/CMakeFiles/fae_tests.dir/tensor/tensor_test.cc.o" "gcc" "tests/CMakeFiles/fae_tests.dir/tensor/tensor_test.cc.o.d"
  "/root/repo/tests/util/file_io_test.cc" "tests/CMakeFiles/fae_tests.dir/util/file_io_test.cc.o" "gcc" "tests/CMakeFiles/fae_tests.dir/util/file_io_test.cc.o.d"
  "/root/repo/tests/util/half_test.cc" "tests/CMakeFiles/fae_tests.dir/util/half_test.cc.o" "gcc" "tests/CMakeFiles/fae_tests.dir/util/half_test.cc.o.d"
  "/root/repo/tests/util/logging_test.cc" "tests/CMakeFiles/fae_tests.dir/util/logging_test.cc.o" "gcc" "tests/CMakeFiles/fae_tests.dir/util/logging_test.cc.o.d"
  "/root/repo/tests/util/random_test.cc" "tests/CMakeFiles/fae_tests.dir/util/random_test.cc.o" "gcc" "tests/CMakeFiles/fae_tests.dir/util/random_test.cc.o.d"
  "/root/repo/tests/util/status_test.cc" "tests/CMakeFiles/fae_tests.dir/util/status_test.cc.o" "gcc" "tests/CMakeFiles/fae_tests.dir/util/status_test.cc.o.d"
  "/root/repo/tests/util/string_util_test.cc" "tests/CMakeFiles/fae_tests.dir/util/string_util_test.cc.o" "gcc" "tests/CMakeFiles/fae_tests.dir/util/string_util_test.cc.o.d"
  "/root/repo/tests/util/thread_pool_test.cc" "tests/CMakeFiles/fae_tests.dir/util/thread_pool_test.cc.o" "gcc" "tests/CMakeFiles/fae_tests.dir/util/thread_pool_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/fae_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fae_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/fae_models.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fae_core.dir/DependInfo.cmake"
  "/root/repo/build/src/embedding/CMakeFiles/fae_embedding.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/fae_data.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/fae_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/fae_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fae_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
