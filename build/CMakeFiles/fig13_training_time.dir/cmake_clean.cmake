file(REMOVE_RECURSE
  "CMakeFiles/fig13_training_time.dir/bench/fig13_training_time.cc.o"
  "CMakeFiles/fig13_training_time.dir/bench/fig13_training_time.cc.o.d"
  "bench/fig13_training_time"
  "bench/fig13_training_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_training_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
