# Empty dependencies file for fig13_training_time.
# This may be replaced when dependencies are built.
