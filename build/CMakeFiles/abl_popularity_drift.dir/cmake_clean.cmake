file(REMOVE_RECURSE
  "CMakeFiles/abl_popularity_drift.dir/bench/abl_popularity_drift.cc.o"
  "CMakeFiles/abl_popularity_drift.dir/bench/abl_popularity_drift.cc.o.d"
  "bench/abl_popularity_drift"
  "bench/abl_popularity_drift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_popularity_drift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
