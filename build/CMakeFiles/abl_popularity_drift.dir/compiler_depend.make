# Empty compiler generated dependencies file for abl_popularity_drift.
# This may be replaced when dependencies are built.
