file(REMOVE_RECURSE
  "CMakeFiles/abl_scheduler_policy.dir/bench/abl_scheduler_policy.cc.o"
  "CMakeFiles/abl_scheduler_policy.dir/bench/abl_scheduler_policy.cc.o.d"
  "bench/abl_scheduler_policy"
  "bench/abl_scheduler_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_scheduler_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
