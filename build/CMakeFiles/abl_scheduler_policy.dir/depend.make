# Empty dependencies file for abl_scheduler_policy.
# This may be replaced when dependencies are built.
