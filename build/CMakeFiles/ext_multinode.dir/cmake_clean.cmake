file(REMOVE_RECURSE
  "CMakeFiles/ext_multinode.dir/bench/ext_multinode.cc.o"
  "CMakeFiles/ext_multinode.dir/bench/ext_multinode.cc.o.d"
  "bench/ext_multinode"
  "bench/ext_multinode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_multinode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
