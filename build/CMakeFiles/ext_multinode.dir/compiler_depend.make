# Empty compiler generated dependencies file for ext_multinode.
# This may be replaced when dependencies are built.
