# Empty dependencies file for fig11_input_processor_latency.
# This may be replaced when dependencies are built.
