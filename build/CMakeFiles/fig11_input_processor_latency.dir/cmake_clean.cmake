file(REMOVE_RECURSE
  "CMakeFiles/fig11_input_processor_latency.dir/bench/fig11_input_processor_latency.cc.o"
  "CMakeFiles/fig11_input_processor_latency.dir/bench/fig11_input_processor_latency.cc.o.d"
  "bench/fig11_input_processor_latency"
  "bench/fig11_input_processor_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_input_processor_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
