file(REMOVE_RECURSE
  "CMakeFiles/abl_randem_params.dir/bench/abl_randem_params.cc.o"
  "CMakeFiles/abl_randem_params.dir/bench/abl_randem_params.cc.o.d"
  "bench/abl_randem_params"
  "bench/abl_randem_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_randem_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
