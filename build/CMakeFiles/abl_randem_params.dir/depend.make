# Empty dependencies file for abl_randem_params.
# This may be replaced when dependencies are built.
