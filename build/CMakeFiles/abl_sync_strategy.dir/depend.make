# Empty dependencies file for abl_sync_strategy.
# This may be replaced when dependencies are built.
