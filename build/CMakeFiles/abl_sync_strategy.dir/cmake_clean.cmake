file(REMOVE_RECURSE
  "CMakeFiles/abl_sync_strategy.dir/bench/abl_sync_strategy.cc.o"
  "CMakeFiles/abl_sync_strategy.dir/bench/abl_sync_strategy.cc.o.d"
  "bench/abl_sync_strategy"
  "bench/abl_sync_strategy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_sync_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
