file(REMOVE_RECURSE
  "CMakeFiles/fig09_randem_accuracy.dir/bench/fig09_randem_accuracy.cc.o"
  "CMakeFiles/fig09_randem_accuracy.dir/bench/fig09_randem_accuracy.cc.o.d"
  "bench/fig09_randem_accuracy"
  "bench/fig09_randem_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_randem_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
