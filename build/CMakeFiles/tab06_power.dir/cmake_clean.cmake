file(REMOVE_RECURSE
  "CMakeFiles/tab06_power.dir/bench/tab06_power.cc.o"
  "CMakeFiles/tab06_power.dir/bench/tab06_power.cc.o.d"
  "bench/tab06_power"
  "bench/tab06_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab06_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
