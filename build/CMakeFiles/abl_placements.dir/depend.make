# Empty dependencies file for abl_placements.
# This may be replaced when dependencies are built.
