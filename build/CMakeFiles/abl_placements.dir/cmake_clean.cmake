file(REMOVE_RECURSE
  "CMakeFiles/abl_placements.dir/bench/abl_placements.cc.o"
  "CMakeFiles/abl_placements.dir/bench/abl_placements.cc.o.d"
  "bench/abl_placements"
  "bench/abl_placements.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_placements.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
