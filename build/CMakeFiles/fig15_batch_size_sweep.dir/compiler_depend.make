# Empty compiler generated dependencies file for fig15_batch_size_sweep.
# This may be replaced when dependencies are built.
