file(REMOVE_RECURSE
  "CMakeFiles/fig15_batch_size_sweep.dir/bench/fig15_batch_size_sweep.cc.o"
  "CMakeFiles/fig15_batch_size_sweep.dir/bench/fig15_batch_size_sweep.cc.o.d"
  "bench/fig15_batch_size_sweep"
  "bench/fig15_batch_size_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_batch_size_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
