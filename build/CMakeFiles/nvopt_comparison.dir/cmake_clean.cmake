file(REMOVE_RECURSE
  "CMakeFiles/nvopt_comparison.dir/bench/nvopt_comparison.cc.o"
  "CMakeFiles/nvopt_comparison.dir/bench/nvopt_comparison.cc.o.d"
  "bench/nvopt_comparison"
  "bench/nvopt_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvopt_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
