# Empty dependencies file for nvopt_comparison.
# This may be replaced when dependencies are built.
