file(REMOVE_RECURSE
  "CMakeFiles/fig06_threshold_sweep.dir/bench/fig06_threshold_sweep.cc.o"
  "CMakeFiles/fig06_threshold_sweep.dir/bench/fig06_threshold_sweep.cc.o.d"
  "bench/fig06_threshold_sweep"
  "bench/fig06_threshold_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_threshold_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
