file(REMOVE_RECURSE
  "CMakeFiles/abl_mixed_precision.dir/bench/abl_mixed_precision.cc.o"
  "CMakeFiles/abl_mixed_precision.dir/bench/abl_mixed_precision.cc.o.d"
  "bench/abl_mixed_precision"
  "bench/abl_mixed_precision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_mixed_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
