# Empty compiler generated dependencies file for abl_mixed_precision.
# This may be replaced when dependencies are built.
