file(REMOVE_RECURSE
  "CMakeFiles/fig08_sampling_latency.dir/bench/fig08_sampling_latency.cc.o"
  "CMakeFiles/fig08_sampling_latency.dir/bench/fig08_sampling_latency.cc.o.d"
  "bench/fig08_sampling_latency"
  "bench/fig08_sampling_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_sampling_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
