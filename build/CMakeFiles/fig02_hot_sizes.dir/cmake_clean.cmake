file(REMOVE_RECURSE
  "CMakeFiles/fig02_hot_sizes.dir/bench/fig02_hot_sizes.cc.o"
  "CMakeFiles/fig02_hot_sizes.dir/bench/fig02_hot_sizes.cc.o.d"
  "bench/fig02_hot_sizes"
  "bench/fig02_hot_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_hot_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
