# Empty compiler generated dependencies file for fig02_hot_sizes.
# This may be replaced when dependencies are built.
