file(REMOVE_RECURSE
  "CMakeFiles/fig10_randem_latency.dir/bench/fig10_randem_latency.cc.o"
  "CMakeFiles/fig10_randem_latency.dir/bench/fig10_randem_latency.cc.o.d"
  "bench/fig10_randem_latency"
  "bench/fig10_randem_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_randem_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
