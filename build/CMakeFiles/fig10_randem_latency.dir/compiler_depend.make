# Empty compiler generated dependencies file for fig10_randem_latency.
# This may be replaced when dependencies are built.
