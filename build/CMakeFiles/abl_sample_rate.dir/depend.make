# Empty dependencies file for abl_sample_rate.
# This may be replaced when dependencies are built.
