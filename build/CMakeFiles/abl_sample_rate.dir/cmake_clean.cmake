file(REMOVE_RECURSE
  "CMakeFiles/abl_sample_rate.dir/bench/abl_sample_rate.cc.o"
  "CMakeFiles/abl_sample_rate.dir/bench/abl_sample_rate.cc.o.d"
  "bench/abl_sample_rate"
  "bench/abl_sample_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_sample_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
