file(REMOVE_RECURSE
  "CMakeFiles/abl_pipelined.dir/bench/abl_pipelined.cc.o"
  "CMakeFiles/abl_pipelined.dir/bench/abl_pipelined.cc.o.d"
  "bench/abl_pipelined"
  "bench/abl_pipelined.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_pipelined.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
