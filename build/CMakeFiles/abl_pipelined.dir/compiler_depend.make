# Empty compiler generated dependencies file for abl_pipelined.
# This may be replaced when dependencies are built.
