# Empty dependencies file for fig04_minibatch_probability.
# This may be replaced when dependencies are built.
