file(REMOVE_RECURSE
  "CMakeFiles/fig04_minibatch_probability.dir/bench/fig04_minibatch_probability.cc.o"
  "CMakeFiles/fig04_minibatch_probability.dir/bench/fig04_minibatch_probability.cc.o.d"
  "bench/fig04_minibatch_probability"
  "bench/fig04_minibatch_probability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_minibatch_probability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
