# Empty compiler generated dependencies file for fig07_sampling_profile.
# This may be replaced when dependencies are built.
