file(REMOVE_RECURSE
  "CMakeFiles/fig07_sampling_profile.dir/bench/fig07_sampling_profile.cc.o"
  "CMakeFiles/fig07_sampling_profile.dir/bench/fig07_sampling_profile.cc.o.d"
  "bench/fig07_sampling_profile"
  "bench/fig07_sampling_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_sampling_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
