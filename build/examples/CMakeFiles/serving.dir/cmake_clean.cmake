file(REMOVE_RECURSE
  "CMakeFiles/serving.dir/serving.cpp.o"
  "CMakeFiles/serving.dir/serving.cpp.o.d"
  "serving"
  "serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
