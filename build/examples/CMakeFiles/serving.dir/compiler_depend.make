# Empty compiler generated dependencies file for serving.
# This may be replaced when dependencies are built.
