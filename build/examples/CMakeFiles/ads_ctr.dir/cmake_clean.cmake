file(REMOVE_RECURSE
  "CMakeFiles/ads_ctr.dir/ads_ctr.cpp.o"
  "CMakeFiles/ads_ctr.dir/ads_ctr.cpp.o.d"
  "ads_ctr"
  "ads_ctr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ads_ctr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
