# Empty compiler generated dependencies file for ads_ctr.
# This may be replaced when dependencies are built.
