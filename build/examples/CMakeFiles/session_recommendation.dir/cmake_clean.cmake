file(REMOVE_RECURSE
  "CMakeFiles/session_recommendation.dir/session_recommendation.cpp.o"
  "CMakeFiles/session_recommendation.dir/session_recommendation.cpp.o.d"
  "session_recommendation"
  "session_recommendation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/session_recommendation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
