# Empty dependencies file for session_recommendation.
# This may be replaced when dependencies are built.
