file(REMOVE_RECURSE
  "CMakeFiles/calibrator_tour.dir/calibrator_tour.cpp.o"
  "CMakeFiles/calibrator_tour.dir/calibrator_tour.cpp.o.d"
  "calibrator_tour"
  "calibrator_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibrator_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
