# Empty compiler generated dependencies file for calibrator_tour.
# This may be replaced when dependencies are built.
