file(REMOVE_RECURSE
  "CMakeFiles/fae_stats.dir/access_profile.cc.o"
  "CMakeFiles/fae_stats.dir/access_profile.cc.o.d"
  "CMakeFiles/fae_stats.dir/histogram.cc.o"
  "CMakeFiles/fae_stats.dir/histogram.cc.o.d"
  "CMakeFiles/fae_stats.dir/sampling.cc.o"
  "CMakeFiles/fae_stats.dir/sampling.cc.o.d"
  "CMakeFiles/fae_stats.dir/t_table.cc.o"
  "CMakeFiles/fae_stats.dir/t_table.cc.o.d"
  "CMakeFiles/fae_stats.dir/zipf.cc.o"
  "CMakeFiles/fae_stats.dir/zipf.cc.o.d"
  "libfae_stats.a"
  "libfae_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fae_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
