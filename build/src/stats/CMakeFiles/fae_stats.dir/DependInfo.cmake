
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/access_profile.cc" "src/stats/CMakeFiles/fae_stats.dir/access_profile.cc.o" "gcc" "src/stats/CMakeFiles/fae_stats.dir/access_profile.cc.o.d"
  "/root/repo/src/stats/histogram.cc" "src/stats/CMakeFiles/fae_stats.dir/histogram.cc.o" "gcc" "src/stats/CMakeFiles/fae_stats.dir/histogram.cc.o.d"
  "/root/repo/src/stats/sampling.cc" "src/stats/CMakeFiles/fae_stats.dir/sampling.cc.o" "gcc" "src/stats/CMakeFiles/fae_stats.dir/sampling.cc.o.d"
  "/root/repo/src/stats/t_table.cc" "src/stats/CMakeFiles/fae_stats.dir/t_table.cc.o" "gcc" "src/stats/CMakeFiles/fae_stats.dir/t_table.cc.o.d"
  "/root/repo/src/stats/zipf.cc" "src/stats/CMakeFiles/fae_stats.dir/zipf.cc.o" "gcc" "src/stats/CMakeFiles/fae_stats.dir/zipf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fae_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
