file(REMOVE_RECURSE
  "libfae_stats.a"
)
