# Empty compiler generated dependencies file for fae_stats.
# This may be replaced when dependencies are built.
