file(REMOVE_RECURSE
  "CMakeFiles/fae_models.dir/dlrm.cc.o"
  "CMakeFiles/fae_models.dir/dlrm.cc.o.d"
  "CMakeFiles/fae_models.dir/factory.cc.o"
  "CMakeFiles/fae_models.dir/factory.cc.o.d"
  "CMakeFiles/fae_models.dir/model_config.cc.o"
  "CMakeFiles/fae_models.dir/model_config.cc.o.d"
  "CMakeFiles/fae_models.dir/model_io.cc.o"
  "CMakeFiles/fae_models.dir/model_io.cc.o.d"
  "CMakeFiles/fae_models.dir/tbsm.cc.o"
  "CMakeFiles/fae_models.dir/tbsm.cc.o.d"
  "libfae_models.a"
  "libfae_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fae_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
