# Empty compiler generated dependencies file for fae_models.
# This may be replaced when dependencies are built.
