
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/dlrm.cc" "src/models/CMakeFiles/fae_models.dir/dlrm.cc.o" "gcc" "src/models/CMakeFiles/fae_models.dir/dlrm.cc.o.d"
  "/root/repo/src/models/factory.cc" "src/models/CMakeFiles/fae_models.dir/factory.cc.o" "gcc" "src/models/CMakeFiles/fae_models.dir/factory.cc.o.d"
  "/root/repo/src/models/model_config.cc" "src/models/CMakeFiles/fae_models.dir/model_config.cc.o" "gcc" "src/models/CMakeFiles/fae_models.dir/model_config.cc.o.d"
  "/root/repo/src/models/model_io.cc" "src/models/CMakeFiles/fae_models.dir/model_io.cc.o" "gcc" "src/models/CMakeFiles/fae_models.dir/model_io.cc.o.d"
  "/root/repo/src/models/tbsm.cc" "src/models/CMakeFiles/fae_models.dir/tbsm.cc.o" "gcc" "src/models/CMakeFiles/fae_models.dir/tbsm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fae_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/fae_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/embedding/CMakeFiles/fae_embedding.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/fae_data.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/fae_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
