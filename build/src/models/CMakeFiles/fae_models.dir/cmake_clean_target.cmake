file(REMOVE_RECURSE
  "libfae_models.a"
)
