file(REMOVE_RECURSE
  "CMakeFiles/fae_data.dir/batch_loader.cc.o"
  "CMakeFiles/fae_data.dir/batch_loader.cc.o.d"
  "CMakeFiles/fae_data.dir/dataset.cc.o"
  "CMakeFiles/fae_data.dir/dataset.cc.o.d"
  "CMakeFiles/fae_data.dir/dataset_io.cc.o"
  "CMakeFiles/fae_data.dir/dataset_io.cc.o.d"
  "CMakeFiles/fae_data.dir/minibatch.cc.o"
  "CMakeFiles/fae_data.dir/minibatch.cc.o.d"
  "CMakeFiles/fae_data.dir/schema.cc.o"
  "CMakeFiles/fae_data.dir/schema.cc.o.d"
  "CMakeFiles/fae_data.dir/synthetic.cc.o"
  "CMakeFiles/fae_data.dir/synthetic.cc.o.d"
  "libfae_data.a"
  "libfae_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fae_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
