# Empty dependencies file for fae_data.
# This may be replaced when dependencies are built.
