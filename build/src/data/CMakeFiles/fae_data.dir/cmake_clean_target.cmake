file(REMOVE_RECURSE
  "libfae_data.a"
)
