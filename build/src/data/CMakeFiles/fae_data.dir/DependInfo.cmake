
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/batch_loader.cc" "src/data/CMakeFiles/fae_data.dir/batch_loader.cc.o" "gcc" "src/data/CMakeFiles/fae_data.dir/batch_loader.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/data/CMakeFiles/fae_data.dir/dataset.cc.o" "gcc" "src/data/CMakeFiles/fae_data.dir/dataset.cc.o.d"
  "/root/repo/src/data/dataset_io.cc" "src/data/CMakeFiles/fae_data.dir/dataset_io.cc.o" "gcc" "src/data/CMakeFiles/fae_data.dir/dataset_io.cc.o.d"
  "/root/repo/src/data/minibatch.cc" "src/data/CMakeFiles/fae_data.dir/minibatch.cc.o" "gcc" "src/data/CMakeFiles/fae_data.dir/minibatch.cc.o.d"
  "/root/repo/src/data/schema.cc" "src/data/CMakeFiles/fae_data.dir/schema.cc.o" "gcc" "src/data/CMakeFiles/fae_data.dir/schema.cc.o.d"
  "/root/repo/src/data/synthetic.cc" "src/data/CMakeFiles/fae_data.dir/synthetic.cc.o" "gcc" "src/data/CMakeFiles/fae_data.dir/synthetic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fae_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/fae_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/fae_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
