file(REMOVE_RECURSE
  "libfae_sim.a"
)
