# Empty compiler generated dependencies file for fae_sim.
# This may be replaced when dependencies are built.
