file(REMOVE_RECURSE
  "CMakeFiles/fae_sim.dir/cost_model.cc.o"
  "CMakeFiles/fae_sim.dir/cost_model.cc.o.d"
  "CMakeFiles/fae_sim.dir/device.cc.o"
  "CMakeFiles/fae_sim.dir/device.cc.o.d"
  "CMakeFiles/fae_sim.dir/fault_injector.cc.o"
  "CMakeFiles/fae_sim.dir/fault_injector.cc.o.d"
  "CMakeFiles/fae_sim.dir/partition.cc.o"
  "CMakeFiles/fae_sim.dir/partition.cc.o.d"
  "CMakeFiles/fae_sim.dir/timeline.cc.o"
  "CMakeFiles/fae_sim.dir/timeline.cc.o.d"
  "libfae_sim.a"
  "libfae_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fae_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
