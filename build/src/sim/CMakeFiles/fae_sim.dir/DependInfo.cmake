
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cost_model.cc" "src/sim/CMakeFiles/fae_sim.dir/cost_model.cc.o" "gcc" "src/sim/CMakeFiles/fae_sim.dir/cost_model.cc.o.d"
  "/root/repo/src/sim/device.cc" "src/sim/CMakeFiles/fae_sim.dir/device.cc.o" "gcc" "src/sim/CMakeFiles/fae_sim.dir/device.cc.o.d"
  "/root/repo/src/sim/fault_injector.cc" "src/sim/CMakeFiles/fae_sim.dir/fault_injector.cc.o" "gcc" "src/sim/CMakeFiles/fae_sim.dir/fault_injector.cc.o.d"
  "/root/repo/src/sim/partition.cc" "src/sim/CMakeFiles/fae_sim.dir/partition.cc.o" "gcc" "src/sim/CMakeFiles/fae_sim.dir/partition.cc.o.d"
  "/root/repo/src/sim/timeline.cc" "src/sim/CMakeFiles/fae_sim.dir/timeline.cc.o" "gcc" "src/sim/CMakeFiles/fae_sim.dir/timeline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fae_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
