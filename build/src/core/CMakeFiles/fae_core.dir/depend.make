# Empty dependencies file for fae_core.
# This may be replaced when dependencies are built.
