file(REMOVE_RECURSE
  "CMakeFiles/fae_core.dir/calibrator.cc.o"
  "CMakeFiles/fae_core.dir/calibrator.cc.o.d"
  "CMakeFiles/fae_core.dir/embedding_classifier.cc.o"
  "CMakeFiles/fae_core.dir/embedding_classifier.cc.o.d"
  "CMakeFiles/fae_core.dir/embedding_logger.cc.o"
  "CMakeFiles/fae_core.dir/embedding_logger.cc.o.d"
  "CMakeFiles/fae_core.dir/embedding_replicator.cc.o"
  "CMakeFiles/fae_core.dir/embedding_replicator.cc.o.d"
  "CMakeFiles/fae_core.dir/fae_format.cc.o"
  "CMakeFiles/fae_core.dir/fae_format.cc.o.d"
  "CMakeFiles/fae_core.dir/fae_pipeline.cc.o"
  "CMakeFiles/fae_core.dir/fae_pipeline.cc.o.d"
  "CMakeFiles/fae_core.dir/input_processor.cc.o"
  "CMakeFiles/fae_core.dir/input_processor.cc.o.d"
  "CMakeFiles/fae_core.dir/rand_em_box.cc.o"
  "CMakeFiles/fae_core.dir/rand_em_box.cc.o.d"
  "CMakeFiles/fae_core.dir/shuffle_scheduler.cc.o"
  "CMakeFiles/fae_core.dir/shuffle_scheduler.cc.o.d"
  "libfae_core.a"
  "libfae_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fae_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
