
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/calibrator.cc" "src/core/CMakeFiles/fae_core.dir/calibrator.cc.o" "gcc" "src/core/CMakeFiles/fae_core.dir/calibrator.cc.o.d"
  "/root/repo/src/core/embedding_classifier.cc" "src/core/CMakeFiles/fae_core.dir/embedding_classifier.cc.o" "gcc" "src/core/CMakeFiles/fae_core.dir/embedding_classifier.cc.o.d"
  "/root/repo/src/core/embedding_logger.cc" "src/core/CMakeFiles/fae_core.dir/embedding_logger.cc.o" "gcc" "src/core/CMakeFiles/fae_core.dir/embedding_logger.cc.o.d"
  "/root/repo/src/core/embedding_replicator.cc" "src/core/CMakeFiles/fae_core.dir/embedding_replicator.cc.o" "gcc" "src/core/CMakeFiles/fae_core.dir/embedding_replicator.cc.o.d"
  "/root/repo/src/core/fae_format.cc" "src/core/CMakeFiles/fae_core.dir/fae_format.cc.o" "gcc" "src/core/CMakeFiles/fae_core.dir/fae_format.cc.o.d"
  "/root/repo/src/core/fae_pipeline.cc" "src/core/CMakeFiles/fae_core.dir/fae_pipeline.cc.o" "gcc" "src/core/CMakeFiles/fae_core.dir/fae_pipeline.cc.o.d"
  "/root/repo/src/core/input_processor.cc" "src/core/CMakeFiles/fae_core.dir/input_processor.cc.o" "gcc" "src/core/CMakeFiles/fae_core.dir/input_processor.cc.o.d"
  "/root/repo/src/core/rand_em_box.cc" "src/core/CMakeFiles/fae_core.dir/rand_em_box.cc.o" "gcc" "src/core/CMakeFiles/fae_core.dir/rand_em_box.cc.o.d"
  "/root/repo/src/core/shuffle_scheduler.cc" "src/core/CMakeFiles/fae_core.dir/shuffle_scheduler.cc.o" "gcc" "src/core/CMakeFiles/fae_core.dir/shuffle_scheduler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fae_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/fae_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/fae_data.dir/DependInfo.cmake"
  "/root/repo/build/src/embedding/CMakeFiles/fae_embedding.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/fae_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
