file(REMOVE_RECURSE
  "libfae_core.a"
)
