file(REMOVE_RECURSE
  "libfae_util.a"
)
