file(REMOVE_RECURSE
  "CMakeFiles/fae_util.dir/file_io.cc.o"
  "CMakeFiles/fae_util.dir/file_io.cc.o.d"
  "CMakeFiles/fae_util.dir/half.cc.o"
  "CMakeFiles/fae_util.dir/half.cc.o.d"
  "CMakeFiles/fae_util.dir/logging.cc.o"
  "CMakeFiles/fae_util.dir/logging.cc.o.d"
  "CMakeFiles/fae_util.dir/random.cc.o"
  "CMakeFiles/fae_util.dir/random.cc.o.d"
  "CMakeFiles/fae_util.dir/status.cc.o"
  "CMakeFiles/fae_util.dir/status.cc.o.d"
  "CMakeFiles/fae_util.dir/string_util.cc.o"
  "CMakeFiles/fae_util.dir/string_util.cc.o.d"
  "CMakeFiles/fae_util.dir/thread_pool.cc.o"
  "CMakeFiles/fae_util.dir/thread_pool.cc.o.d"
  "libfae_util.a"
  "libfae_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fae_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
