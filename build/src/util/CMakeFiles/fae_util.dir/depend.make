# Empty dependencies file for fae_util.
# This may be replaced when dependencies are built.
