file(REMOVE_RECURSE
  "libfae_tensor.a"
)
