# Empty compiler generated dependencies file for fae_tensor.
# This may be replaced when dependencies are built.
