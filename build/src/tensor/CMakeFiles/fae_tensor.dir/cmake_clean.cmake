file(REMOVE_RECURSE
  "CMakeFiles/fae_tensor.dir/attention.cc.o"
  "CMakeFiles/fae_tensor.dir/attention.cc.o.d"
  "CMakeFiles/fae_tensor.dir/linear.cc.o"
  "CMakeFiles/fae_tensor.dir/linear.cc.o.d"
  "CMakeFiles/fae_tensor.dir/loss.cc.o"
  "CMakeFiles/fae_tensor.dir/loss.cc.o.d"
  "CMakeFiles/fae_tensor.dir/mlp.cc.o"
  "CMakeFiles/fae_tensor.dir/mlp.cc.o.d"
  "CMakeFiles/fae_tensor.dir/momentum_sgd.cc.o"
  "CMakeFiles/fae_tensor.dir/momentum_sgd.cc.o.d"
  "CMakeFiles/fae_tensor.dir/ops.cc.o"
  "CMakeFiles/fae_tensor.dir/ops.cc.o.d"
  "CMakeFiles/fae_tensor.dir/sgd.cc.o"
  "CMakeFiles/fae_tensor.dir/sgd.cc.o.d"
  "CMakeFiles/fae_tensor.dir/tensor.cc.o"
  "CMakeFiles/fae_tensor.dir/tensor.cc.o.d"
  "libfae_tensor.a"
  "libfae_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fae_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
