
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/checkpoint.cc" "src/engine/CMakeFiles/fae_engine.dir/checkpoint.cc.o" "gcc" "src/engine/CMakeFiles/fae_engine.dir/checkpoint.cc.o.d"
  "/root/repo/src/engine/metrics.cc" "src/engine/CMakeFiles/fae_engine.dir/metrics.cc.o" "gcc" "src/engine/CMakeFiles/fae_engine.dir/metrics.cc.o.d"
  "/root/repo/src/engine/step_accountant.cc" "src/engine/CMakeFiles/fae_engine.dir/step_accountant.cc.o" "gcc" "src/engine/CMakeFiles/fae_engine.dir/step_accountant.cc.o.d"
  "/root/repo/src/engine/trainer.cc" "src/engine/CMakeFiles/fae_engine.dir/trainer.cc.o" "gcc" "src/engine/CMakeFiles/fae_engine.dir/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fae_util.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fae_core.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/fae_models.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fae_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/fae_data.dir/DependInfo.cmake"
  "/root/repo/build/src/embedding/CMakeFiles/fae_embedding.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/fae_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/fae_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
