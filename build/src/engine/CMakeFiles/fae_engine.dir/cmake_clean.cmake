file(REMOVE_RECURSE
  "CMakeFiles/fae_engine.dir/checkpoint.cc.o"
  "CMakeFiles/fae_engine.dir/checkpoint.cc.o.d"
  "CMakeFiles/fae_engine.dir/metrics.cc.o"
  "CMakeFiles/fae_engine.dir/metrics.cc.o.d"
  "CMakeFiles/fae_engine.dir/step_accountant.cc.o"
  "CMakeFiles/fae_engine.dir/step_accountant.cc.o.d"
  "CMakeFiles/fae_engine.dir/trainer.cc.o"
  "CMakeFiles/fae_engine.dir/trainer.cc.o.d"
  "libfae_engine.a"
  "libfae_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fae_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
