# Empty compiler generated dependencies file for fae_engine.
# This may be replaced when dependencies are built.
