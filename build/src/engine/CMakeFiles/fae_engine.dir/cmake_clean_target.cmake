file(REMOVE_RECURSE
  "libfae_engine.a"
)
