
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/embedding/embedding_bag.cc" "src/embedding/CMakeFiles/fae_embedding.dir/embedding_bag.cc.o" "gcc" "src/embedding/CMakeFiles/fae_embedding.dir/embedding_bag.cc.o.d"
  "/root/repo/src/embedding/embedding_table.cc" "src/embedding/CMakeFiles/fae_embedding.dir/embedding_table.cc.o" "gcc" "src/embedding/CMakeFiles/fae_embedding.dir/embedding_table.cc.o.d"
  "/root/repo/src/embedding/rowwise_adagrad.cc" "src/embedding/CMakeFiles/fae_embedding.dir/rowwise_adagrad.cc.o" "gcc" "src/embedding/CMakeFiles/fae_embedding.dir/rowwise_adagrad.cc.o.d"
  "/root/repo/src/embedding/sparse_sgd.cc" "src/embedding/CMakeFiles/fae_embedding.dir/sparse_sgd.cc.o" "gcc" "src/embedding/CMakeFiles/fae_embedding.dir/sparse_sgd.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fae_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/fae_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
