file(REMOVE_RECURSE
  "CMakeFiles/fae_embedding.dir/embedding_bag.cc.o"
  "CMakeFiles/fae_embedding.dir/embedding_bag.cc.o.d"
  "CMakeFiles/fae_embedding.dir/embedding_table.cc.o"
  "CMakeFiles/fae_embedding.dir/embedding_table.cc.o.d"
  "CMakeFiles/fae_embedding.dir/rowwise_adagrad.cc.o"
  "CMakeFiles/fae_embedding.dir/rowwise_adagrad.cc.o.d"
  "CMakeFiles/fae_embedding.dir/sparse_sgd.cc.o"
  "CMakeFiles/fae_embedding.dir/sparse_sgd.cc.o.d"
  "libfae_embedding.a"
  "libfae_embedding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fae_embedding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
