# Empty dependencies file for fae_embedding.
# This may be replaced when dependencies are built.
