file(REMOVE_RECURSE
  "libfae_embedding.a"
)
