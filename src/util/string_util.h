#ifndef FAE_UTIL_STRING_UTIL_H_
#define FAE_UTIL_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace fae {

/// "1.50 GB", "256.00 MB", "12 B" — for table-size reporting (Fig 2, 6, 9).
std::string HumanBytes(uint64_t bytes);

/// "12.3 s", "450 ms", "1.2 min".
std::string HumanSeconds(double seconds);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits on a single-character separator; keeps empty fields.
std::vector<std::string> Split(std::string_view text, char sep);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace fae

#endif  // FAE_UTIL_STRING_UTIL_H_
