#ifndef FAE_UTIL_FILE_IO_H_
#define FAE_UTIL_FILE_IO_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "util/status.h"
#include "util/statusor.h"

namespace fae {

/// Little-endian binary writer with Status-based error reporting. Used by
/// the FAE preprocessed-dataset format (paper §III-B: "store this in the
/// FAE format for any subsequent training runs").
class BinaryWriter {
 public:
  /// Opens (truncates) `path` for writing.
  static StatusOr<BinaryWriter> Open(const std::string& path);

  BinaryWriter(BinaryWriter&&) = default;
  BinaryWriter& operator=(BinaryWriter&&) = default;

  Status WriteU32(uint32_t v);
  Status WriteU64(uint64_t v);
  Status WriteF32(float v);
  Status WriteF64(double v);
  Status WriteBytes(const void* data, size_t n);
  Status WriteString(const std::string& s);

  template <typename T>
  Status WriteVector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    FAE_RETURN_IF_ERROR(WriteU64(v.size()));
    return WriteBytes(v.data(), v.size() * sizeof(T));
  }

  /// Flushes and closes; further writes are invalid.
  Status Close();

 private:
  explicit BinaryWriter(std::ofstream out) : out_(std::move(out)) {}
  std::ofstream out_;
};

/// Little-endian binary reader matching BinaryWriter.
class BinaryReader {
 public:
  /// Opens `path` for reading; NotFound if it does not exist.
  static StatusOr<BinaryReader> Open(const std::string& path);

  BinaryReader(BinaryReader&&) = default;
  BinaryReader& operator=(BinaryReader&&) = default;

  StatusOr<uint32_t> ReadU32();
  StatusOr<uint64_t> ReadU64();
  StatusOr<float> ReadF32();
  StatusOr<double> ReadF64();
  Status ReadBytes(void* data, size_t n);
  StatusOr<std::string> ReadString();

  template <typename T>
  StatusOr<std::vector<T>> ReadVector() {
    static_assert(std::is_trivially_copyable_v<T>);
    FAE_ASSIGN_OR_RETURN(uint64_t n, ReadU64());
    // A corrupted count cannot describe more payload than the file still
    // holds; checking against the remainder also bounds the allocation.
    if (n > RemainingBytes() / sizeof(T)) {
      return Status::DataLoss("vector length exceeds file remainder");
    }
    std::vector<T> v(n);
    FAE_RETURN_IF_ERROR(ReadBytes(v.data(), n * sizeof(T)));
    return v;
  }

  /// Bytes between the read cursor and the end of the file.
  uint64_t RemainingBytes();

 private:
  BinaryReader(std::ifstream in, uint64_t size)
      : in_(std::move(in)), size_(size) {}
  std::ifstream in_;
  uint64_t size_ = 0;
};

/// Returns true if `path` exists and is a regular file.
bool FileExists(const std::string& path);

/// Removes `path` if present; OK when absent.
Status RemoveFile(const std::string& path);

}  // namespace fae

#endif  // FAE_UTIL_FILE_IO_H_
