#ifndef FAE_UTIL_FILE_IO_H_
#define FAE_UTIL_FILE_IO_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "util/status.h"
#include "util/statusor.h"

namespace fae {

/// CRC-32 (IEEE, reflected polynomial 0xEDB88320) of `n` bytes. Streaming:
/// pass the previous return value as `seed` to continue a running checksum
/// (the seed of a fresh checksum is 0).
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);

/// Little-endian binary writer with Status-based error reporting. Used by
/// the FAE preprocessed-dataset format (paper §III-B: "store this in the
/// FAE format for any subsequent training runs").
///
/// Every write feeds a running CRC-32 (`crc()`); container formats append
/// it as their last word so readers can verify whole-file integrity.
class BinaryWriter {
 public:
  /// Opens (truncates) `path` for writing.
  static StatusOr<BinaryWriter> Open(const std::string& path);

  /// Crash-safe open: writes go to `path + ".tmp"` and only Commit()
  /// renames the temp file over `path`, so an interrupted save never
  /// clobbers a previous good file.
  static StatusOr<BinaryWriter> OpenAtomic(const std::string& path);

  BinaryWriter(BinaryWriter&&) = default;
  BinaryWriter& operator=(BinaryWriter&&) = default;

  Status WriteU32(uint32_t v);
  Status WriteU64(uint64_t v);
  Status WriteF32(float v);
  Status WriteF64(double v);
  Status WriteBytes(const void* data, size_t n);
  Status WriteString(const std::string& s);

  template <typename T>
  Status WriteVector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    FAE_RETURN_IF_ERROR(WriteU64(v.size()));
    return WriteBytes(v.data(), v.size() * sizeof(T));
  }

  /// CRC-32 of everything written so far.
  uint32_t crc() const { return crc_; }

  /// Flushes and closes; further writes are invalid. An atomic writer that
  /// is closed without Commit() leaves the target file untouched (the temp
  /// file is removed).
  Status Close();

  /// Close(), then for atomic writers atomically rename the temp file over
  /// the final path. Equivalent to Close() for plain Open() writers.
  Status Commit();

 private:
  explicit BinaryWriter(std::ofstream out) : out_(std::move(out)) {}
  std::ofstream out_;
  uint32_t crc_ = 0;
  std::string temp_path_;   // non-empty for atomic writers
  std::string final_path_;  // rename target of an atomic writer
};

/// Little-endian binary reader matching BinaryWriter.
class BinaryReader {
 public:
  /// Opens `path` for reading; NotFound if it does not exist.
  static StatusOr<BinaryReader> Open(const std::string& path);

  BinaryReader(BinaryReader&&) = default;
  BinaryReader& operator=(BinaryReader&&) = default;

  StatusOr<uint32_t> ReadU32();
  StatusOr<uint64_t> ReadU64();
  StatusOr<float> ReadF32();
  StatusOr<double> ReadF64();
  Status ReadBytes(void* data, size_t n);
  StatusOr<std::string> ReadString();

  template <typename T>
  StatusOr<std::vector<T>> ReadVector() {
    static_assert(std::is_trivially_copyable_v<T>);
    FAE_ASSIGN_OR_RETURN(uint64_t n, ReadU64());
    // A corrupted count cannot describe more payload than the file still
    // holds; checking against the remainder also bounds the allocation.
    if (n > RemainingBytes() / sizeof(T)) {
      return Status::DataLoss("vector length exceeds file remainder");
    }
    std::vector<T> v(n);
    FAE_RETURN_IF_ERROR(ReadBytes(v.data(), n * sizeof(T)));
    return v;
  }

  /// Bytes between the read cursor and the end of the file.
  uint64_t RemainingBytes();

 private:
  BinaryReader(std::ifstream in, uint64_t size)
      : in_(std::move(in)), size_(size) {}
  std::ifstream in_;
  uint64_t size_ = 0;
};

/// Whole-file integrity check for the FAE container formats: the last four
/// bytes store the CRC-32 of everything before them. Returns NotFound when
/// the file is absent and DataLoss on any mismatch (truncation, bit flips,
/// or a file that never carried a checksum). Formats call this *before*
/// parsing so a corrupted file can never be half-deserialized into live
/// state.
Status VerifyFileIntegrity(const std::string& path);

/// Returns true if `path` exists and is a regular file.
bool FileExists(const std::string& path);

/// Removes `path` if present; OK when absent.
Status RemoveFile(const std::string& path);

}  // namespace fae

#endif  // FAE_UTIL_FILE_IO_H_
