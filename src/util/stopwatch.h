#ifndef FAE_UTIL_STOPWATCH_H_
#define FAE_UTIL_STOPWATCH_H_

#include <chrono>

namespace fae {

/// Monotonic wall-clock stopwatch used by the calibrator latency figures
/// (Fig 8, Fig 10, Fig 11).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace fae

#endif  // FAE_UTIL_STOPWATCH_H_
