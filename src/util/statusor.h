#ifndef FAE_UTIL_STATUSOR_H_
#define FAE_UTIL_STATUSOR_H_

#include <cstdlib>
#include <optional>
#include <utility>

#include "util/logging.h"
#include "util/status.h"

namespace fae {

/// Holds either a value of type `T` or a non-OK Status explaining why the
/// value is absent. Mirrors absl::StatusOr / arrow::Result.
///
/// Accessing `value()` on an error StatusOr aborts the process; callers are
/// expected to test `ok()` first or use FAE_ASSIGN_OR_RETURN.
template <typename T>
class StatusOr {
 public:
  /// Constructs from an error status. Must not be OK (an OK status with no
  /// value is meaningless); that misuse degrades to an Internal error.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("StatusOr constructed from OK status");
    }
  }

  StatusOr(T value)  // NOLINT
      : status_(Status::OK()), value_(std::move(value)) {}

  StatusOr(const StatusOr&) = default;
  StatusOr& operator=(const StatusOr&) = default;
  StatusOr(StatusOr&&) noexcept = default;
  StatusOr& operator=(StatusOr&&) noexcept = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const& { return status_; }
  Status status() && { return std::move(status_); }

  const T& value() const& {
    CheckHasValue();
    return *value_;
  }
  T& value() & {
    CheckHasValue();
    return *value_;
  }
  T&& value() && {
    CheckHasValue();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when in the error state.
  T value_or(T fallback) const& {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  void CheckHasValue() const {
    if (!value_.has_value()) {
      // Accessing value() of an error StatusOr is a bug; crash diagnosably
      // by surfacing the carried error through the logging path before the
      // abort (FAE_LOG(Fatal) aborts in the LogMessage destructor).
      FAE_LOG(Fatal) << "StatusOr::value() called on an error status: "
                     << status_.ToString();
      std::abort();  // not reached; keeps value() paths obviously safe
    }
  }

  Status status_;
  std::optional<T> value_;
};

}  // namespace fae

#endif  // FAE_UTIL_STATUSOR_H_
