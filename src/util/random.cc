#include "util/random.h"

#include <cmath>
#include <numbers>

namespace fae {
namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Xoshiro256::Xoshiro256(uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.Next();
}

Xoshiro256::State Xoshiro256::state() const {
  State st;
  for (int i = 0; i < 4; ++i) st.s[i] = s_[i];
  st.has_cached_gaussian = has_cached_gaussian_;
  st.cached_gaussian = cached_gaussian_;
  return st;
}

void Xoshiro256::set_state(const State& state) {
  for (int i = 0; i < 4; ++i) s_[i] = state.s[i];
  has_cached_gaussian_ = state.has_cached_gaussian;
  cached_gaussian_ = state.cached_gaussian;
}

uint64_t Xoshiro256::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Xoshiro256::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

float Xoshiro256::NextFloat() {
  return static_cast<float>(Next() >> 40) * 0x1.0p-24f;
}

uint64_t Xoshiro256::NextBounded(uint64_t bound) {
  // Lemire's nearly-divisionless method.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t lo = static_cast<uint64_t>(m);
  if (lo < bound) {
    uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Xoshiro256::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller; u must be in (0, 1].
  double u = 1.0 - NextDouble();
  double v = NextDouble();
  double r = std::sqrt(-2.0 * std::log(u));
  double theta = 2.0 * std::numbers::pi * v;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

std::vector<uint64_t> RandomPermutation(uint64_t n, Xoshiro256& rng) {
  std::vector<uint64_t> perm(n);
  for (uint64_t i = 0; i < n; ++i) perm[i] = i;
  for (uint64_t i = n; i > 1; --i) {
    uint64_t j = rng.NextBounded(i);
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

}  // namespace fae
