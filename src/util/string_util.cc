#include "util/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace fae {

std::string HumanBytes(uint64_t bytes) {
  constexpr const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  if (unit == 0) return StrFormat("%llu B", static_cast<unsigned long long>(bytes));
  return StrFormat("%.2f %s", v, kUnits[unit]);
}

std::string HumanSeconds(double seconds) {
  if (seconds < 1e-3) return StrFormat("%.1f us", seconds * 1e6);
  if (seconds < 1.0) return StrFormat("%.1f ms", seconds * 1e3);
  if (seconds < 120.0) return StrFormat("%.2f s", seconds);
  return StrFormat("%.2f min", seconds / 60.0);
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace fae
