#include "util/half.h"

#include <cstring>

namespace fae {
namespace {

uint32_t FloatBits(float f) {
  uint32_t u;
  std::memcpy(&u, &f, sizeof(u));
  return u;
}

}  // namespace

uint16_t FloatToHalf(float value) {
  const uint32_t bits = FloatBits(value);
  const uint32_t sign = (bits >> 16) & 0x8000u;
  const uint32_t exp32 = (bits >> 23) & 0xffu;
  uint32_t mant = bits & 0x7fffffu;

  if (exp32 == 0xffu) {
    // Inf / NaN. Keep NaN quiet and non-zero.
    if (mant != 0) return static_cast<uint16_t>(sign | 0x7e00u);
    return static_cast<uint16_t>(sign | 0x7c00u);
  }

  // Unbiased exponent; half bias is 15, float bias 127.
  const int exp = static_cast<int>(exp32) - 127;
  if (exp > 15) {
    // Overflow -> infinity.
    return static_cast<uint16_t>(sign | 0x7c00u);
  }
  if (exp >= -14) {
    // Normal half. Round the 23-bit mantissa to 10 bits, nearest-even.
    const uint32_t half_exp = static_cast<uint32_t>(exp + 15) << 10;
    uint32_t half_mant = mant >> 13;
    const uint32_t rest = mant & 0x1fffu;
    if (rest > 0x1000u || (rest == 0x1000u && (half_mant & 1u))) {
      ++half_mant;  // may carry into the exponent, which is the correct
                    // rounding toward the next binade (or infinity)
    }
    return static_cast<uint16_t>(sign + half_exp + half_mant);
  }
  if (exp >= -24) {
    // Subnormal half: shift in the implicit leading 1, then round.
    mant |= 0x800000u;
    const int shift = -exp - 14 + 13;  // 14..23
    uint32_t half_mant = mant >> shift;
    const uint32_t rest = mant & ((1u << shift) - 1);
    const uint32_t halfway = 1u << (shift - 1);
    if (rest > halfway || (rest == halfway && (half_mant & 1u))) {
      ++half_mant;
    }
    return static_cast<uint16_t>(sign | half_mant);
  }
  // Underflow to signed zero.
  return static_cast<uint16_t>(sign);
}

}  // namespace fae
