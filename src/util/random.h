#ifndef FAE_UTIL_RANDOM_H_
#define FAE_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

namespace fae {

/// SplitMix64: used to expand a single 64-bit seed into the state of larger
/// generators, and fine as a standalone generator for non-critical use.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// xoshiro256**: the project's default fast PRNG. Deterministic for a given
/// seed across platforms; satisfies the C++ UniformRandomBitGenerator
/// concept so it plugs into <random> distributions.
class Xoshiro256 {
 public:
  using result_type = uint64_t;

  /// Complete generator state, capturable for checkpoint/resume: restoring
  /// it continues the stream exactly where it was captured.
  struct State {
    uint64_t s[4] = {0, 0, 0, 0};
    bool has_cached_gaussian = false;
    double cached_gaussian = 0.0;

    friend bool operator==(const State& a, const State& b) {
      return a.s[0] == b.s[0] && a.s[1] == b.s[1] && a.s[2] == b.s[2] &&
             a.s[3] == b.s[3] &&
             a.has_cached_gaussian == b.has_cached_gaussian &&
             (!a.has_cached_gaussian ||
              a.cached_gaussian == b.cached_gaussian);
    }
  };

  explicit Xoshiro256(uint64_t seed);

  State state() const;
  void set_state(const State& state);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return Next(); }

  uint64_t Next();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform float in [0, 1).
  float NextFloat();

  /// Uniform integer in [0, bound) via Lemire's multiply-shift rejection.
  /// `bound` must be non-zero.
  uint64_t NextBounded(uint64_t bound);

  /// Standard normal via Box-Muller.
  double NextGaussian();

  /// Bernoulli(p).
  bool NextBernoulli(double p) { return NextDouble() < p; }

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

/// Returns a uniformly random permutation of {0, .., n-1} (Fisher-Yates).
std::vector<uint64_t> RandomPermutation(uint64_t n, Xoshiro256& rng);

}  // namespace fae

#endif  // FAE_UTIL_RANDOM_H_
