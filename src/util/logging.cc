#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>

namespace fae {
namespace {

std::atomic<int> g_min_severity{static_cast<int>(LogSeverity::kInfo)};

const char* SeverityTag(LogSeverity s) {
  switch (s) {
    case LogSeverity::kDebug:
      return "D";
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarning:
      return "W";
    case LogSeverity::kError:
      return "E";
    case LogSeverity::kFatal:
      return "F";
  }
  return "?";
}

}  // namespace

void SetMinLogSeverity(LogSeverity severity) {
  g_min_severity.store(static_cast<int>(severity), std::memory_order_relaxed);
}

LogSeverity MinLogSeverity() {
  return static_cast<LogSeverity>(
      g_min_severity.load(std::memory_order_relaxed));
}

namespace internal_logging {

LogMessage::LogMessage(LogSeverity severity, const char* file, int line)
    : severity_(severity), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  // Strip the directory part for terser output.
  const char* base = file_;
  for (const char* p = file_; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  std::fprintf(stderr, "[%s %s:%d] %s\n", SeverityTag(severity_), base, line_,
               stream_.str().c_str());
  if (severity_ == LogSeverity::kFatal) {
    std::fflush(stderr);
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace fae
