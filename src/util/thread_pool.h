#ifndef FAE_UTIL_THREAD_POOL_H_
#define FAE_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace fae {

/// Fixed-size worker pool. Tasks are arbitrary std::function<void()>; the
/// pool is drained and joined on destruction.
///
/// The input-processor phase of FAE (paper §III-B, Fig 11) parallelizes the
/// hot/cold classification of sparse inputs across cores through this pool,
/// and the compute kernels (GEMM, embedding bag, sparse optimizers) share
/// one trainer-owned pool through ParallelFor.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution.
  void Schedule(std::function<void()> task);

  /// Blocks until every scheduled task has finished (pool-global; see
  /// ParallelFor for per-call completion).
  void Wait();

  size_t num_threads() const { return threads_.size(); }

  /// Splits [0, n) into roughly equal contiguous chunks, runs
  /// `fn(begin, end)` for each chunk, and waits for *this call's* chunks
  /// only — concurrent ParallelFor calls (e.g. trainer kernels and a
  /// BatchLoader producer) track completion independently and never block
  /// on each other's tasks. The calling thread executes the first chunk
  /// inline, so a single-thread pool degenerates to a plain loop and the
  /// caller can never deadlock waiting on a fully busy pool.
  ///
  /// Exception safety: if any chunk throws, the first exception is
  /// captured and rethrown on the calling thread after every chunk of this
  /// call has finished (remaining chunks still run; the range is always
  /// either fully attempted or the process state is unwound by the
  /// rethrow).
  void ParallelFor(size_t n, const std::function<void(size_t, size_t)>& fn);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::queue<std::function<void()>> queue_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace fae

#endif  // FAE_UTIL_THREAD_POOL_H_
