#include "util/thread_pool.h"

#include <algorithm>
#include <exception>
#include <memory>

namespace fae {
namespace {

/// Completion state for one ParallelFor invocation. Heap-allocated and
/// shared with the scheduled chunks so concurrent invocations (and the
/// pool's own lifetime machinery) never contend on a single global count.
struct ParallelCall {
  std::mutex mu;
  std::condition_variable done;
  size_t pending = 0;
  std::exception_ptr error;

  void Run(const std::function<void(size_t, size_t)>& fn, size_t begin,
           size_t end) {
    try {
      fn(begin, end);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu);
      if (!error) error = std::current_exception();
    }
  }

  void Finish() {
    std::lock_guard<std::mutex> lock(mu);
    if (--pending == 0) done.notify_all();
  }
};

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_available_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Schedule(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  const size_t workers = std::min(threads_.size(), n);
  if (workers <= 1 || n < 2) {
    fn(0, n);
    return;
  }
  const size_t chunk = (n + workers - 1) / workers;
  auto call = std::make_shared<ParallelCall>();
  {
    std::lock_guard<std::mutex> lock(call->mu);
    // Chunks past the first; the caller runs [0, chunk) itself.
    call->pending = (n - 1) / chunk;  // == ceil(n / chunk) - 1
  }
  for (size_t begin = chunk; begin < n; begin += chunk) {
    const size_t end = std::min(n, begin + chunk);
    Schedule([call, &fn, begin, end] {
      call->Run(fn, begin, end);
      call->Finish();
    });
  }
  call->Run(fn, 0, std::min(n, chunk));
  {
    std::unique_lock<std::mutex> lock(call->mu);
    call->done.wait(lock, [&call] { return call->pending == 0; });
    if (call->error) std::rethrow_exception(call->error);
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(lock,
                           [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace fae
