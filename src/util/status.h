#ifndef FAE_UTIL_STATUS_H_
#define FAE_UTIL_STATUS_H_

#include <cassert>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace fae {

/// Canonical error space, a small subset of the absl/gRPC codes that this
/// project actually needs.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kResourceExhausted = 6,
  kInternal = 7,
  kDataLoss = 8,
  kUnimplemented = 9,
  kIOError = 10,
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
std::string_view StatusCodeToString(StatusCode code);

/// Value-semantic success/error result, in the Arrow/RocksDB idiom.
///
/// An OK status carries no allocation; error statuses carry a code and a
/// message. The class is cheap to copy in the OK case and cheap to move
/// always.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : rep_(code == StatusCode::kOk
                 ? nullptr
                 : std::make_shared<Rep>(Rep{code, std::move(message)})) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  /// Error message; empty for OK statuses.
  std::string_view message() const {
    return rep_ ? std::string_view(rep_->message) : std::string_view();
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code() == b.code() && a.message() == b.message();
  }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  // shared_ptr keeps Status copyable without duplicating the message; null
  // means OK.
  std::shared_ptr<const Rep> rep_;
};

}  // namespace fae

/// Propagates a non-OK Status from the current function.
#define FAE_RETURN_IF_ERROR(expr)                 \
  do {                                            \
    ::fae::Status _fae_status = (expr);           \
    if (!_fae_status.ok()) return _fae_status;    \
  } while (false)

#define FAE_STATUS_CONCAT_IMPL(a, b) a##b
#define FAE_STATUS_CONCAT(a, b) FAE_STATUS_CONCAT_IMPL(a, b)

/// Evaluates a StatusOr expression; on success assigns its value to `lhs`,
/// otherwise returns the error from the current function.
#define FAE_ASSIGN_OR_RETURN(lhs, expr)                                  \
  FAE_ASSIGN_OR_RETURN_IMPL(FAE_STATUS_CONCAT(_fae_sor_, __LINE__), lhs, \
                            expr)

#define FAE_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).value();

#endif  // FAE_UTIL_STATUS_H_
