#ifndef FAE_UTIL_LOGGING_H_
#define FAE_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace fae {

enum class LogSeverity : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Process-wide minimum severity; messages below it are discarded.
void SetMinLogSeverity(LogSeverity severity);
LogSeverity MinLogSeverity();

namespace internal_logging {

/// Stream-style log message; emits on destruction. FATAL aborts.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogSeverity severity_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

/// glog-style helper: `&` binds looser than `<<` and tighter than `?:`,
/// letting the macros below turn a streamed LogMessage into a void
/// expression usable in a conditional.
struct Voidify {
  void operator&(LogMessage&) {}
};

}  // namespace internal_logging
}  // namespace fae

#define FAE_LOG(severity)                                             \
  (::fae::LogSeverity::k##severity < ::fae::MinLogSeverity())         \
      ? (void)0                                                       \
      : ::fae::internal_logging::Voidify() &                          \
            ::fae::internal_logging::LogMessage(                      \
                ::fae::LogSeverity::k##severity, __FILE__, __LINE__)

/// CHECK aborts with a message when `cond` is false — for programmer errors
/// (invariant violations), not for recoverable input validation.
#define FAE_CHECK(cond)                                       \
  (cond) ? (void)0                                            \
         : ::fae::internal_logging::Voidify() &               \
               ::fae::internal_logging::LogMessage(           \
                   ::fae::LogSeverity::kFatal, __FILE__,      \
                   __LINE__)                                  \
                   << "Check failed: " #cond " "

#define FAE_CHECK_EQ(a, b) FAE_CHECK((a) == (b))
#define FAE_CHECK_NE(a, b) FAE_CHECK((a) != (b))
#define FAE_CHECK_LT(a, b) FAE_CHECK((a) < (b))
#define FAE_CHECK_LE(a, b) FAE_CHECK((a) <= (b))
#define FAE_CHECK_GT(a, b) FAE_CHECK((a) > (b))
#define FAE_CHECK_GE(a, b) FAE_CHECK((a) >= (b))

#endif  // FAE_UTIL_LOGGING_H_
