#ifndef FAE_UTIL_HALF_H_
#define FAE_UTIL_HALF_H_

#include <cstdint>

namespace fae {

/// IEEE 754 binary16 conversions, implemented bit-level (no hardware
/// dependency). Used to emulate fp16 embedding storage: the NvOPT-style
/// comparator stores tables at half precision, and the paper argues such
/// representation changes "require accuracy revalidation" (§V) — which
/// bench/abl_mixed_precision.cc performs.

/// Round-to-nearest-even conversion. Overflow becomes infinity; NaN is
/// preserved (as a quiet NaN); subnormal halves are produced for tiny
/// inputs.
uint16_t FloatToHalf(float value);

/// Exact widening conversion (every binary16 value is representable in
/// binary32). Inline: this sits on the dequantizing-gather hot path
/// (tensor/kernels.h DequantAddF16), where a call per element would
/// dominate the loop.
inline float HalfToFloat(uint16_t half) {
  const auto bits_to_float = [](uint32_t u) {
    float f;
    __builtin_memcpy(&f, &u, sizeof(f));
    return f;
  };
  const uint32_t sign = static_cast<uint32_t>(half & 0x8000u) << 16;
  const uint32_t exp16 = (half >> 10) & 0x1fu;
  uint32_t mant = half & 0x3ffu;

  if (exp16 == 0x1fu) {  // inf / nan
    return bits_to_float(sign | 0x7f800000u | (mant << 13));
  }
  if (exp16 == 0) {
    if (mant == 0) return bits_to_float(sign);  // signed zero
    // Subnormal half: normalize.
    int exp = -14;
    while ((mant & 0x400u) == 0) {
      mant <<= 1;
      --exp;
    }
    mant &= 0x3ffu;
    const uint32_t exp32 = static_cast<uint32_t>(exp + 127) << 23;
    return bits_to_float(sign | exp32 | (mant << 13));
  }
  const uint32_t exp32 = (exp16 + 127 - 15) << 23;
  return bits_to_float(sign | exp32 | (mant << 13));
}

/// Convenience: the value after a float -> half -> float round trip, i.e.
/// what fp16 storage preserves of `value`.
inline float QuantizeToHalf(float value) {
  return HalfToFloat(FloatToHalf(value));
}

}  // namespace fae

#endif  // FAE_UTIL_HALF_H_
