#ifndef FAE_UTIL_HALF_H_
#define FAE_UTIL_HALF_H_

#include <cstdint>

namespace fae {

/// IEEE 754 binary16 conversions, implemented bit-level (no hardware
/// dependency). Used to emulate fp16 embedding storage: the NvOPT-style
/// comparator stores tables at half precision, and the paper argues such
/// representation changes "require accuracy revalidation" (§V) — which
/// bench/abl_mixed_precision.cc performs.

/// Round-to-nearest-even conversion. Overflow becomes infinity; NaN is
/// preserved (as a quiet NaN); subnormal halves are produced for tiny
/// inputs.
uint16_t FloatToHalf(float value);

/// Exact widening conversion (every binary16 value is representable in
/// binary32).
float HalfToFloat(uint16_t half);

/// Convenience: the value after a float -> half -> float round trip, i.e.
/// what fp16 storage preserves of `value`.
inline float QuantizeToHalf(float value) {
  return HalfToFloat(FloatToHalf(value));
}

}  // namespace fae

#endif  // FAE_UTIL_HALF_H_
