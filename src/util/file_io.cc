#include "util/file_io.h"

#include <cstdio>
#include <filesystem>

namespace fae {

StatusOr<BinaryWriter> BinaryWriter::Open(const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return Status::IOError("cannot open for writing: " + path);
  }
  return BinaryWriter(std::move(out));
}

Status BinaryWriter::WriteBytes(const void* data, size_t n) {
  out_.write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
  if (!out_.good()) return Status::IOError("write failed");
  return Status::OK();
}

Status BinaryWriter::WriteU32(uint32_t v) { return WriteBytes(&v, sizeof(v)); }
Status BinaryWriter::WriteU64(uint64_t v) { return WriteBytes(&v, sizeof(v)); }
Status BinaryWriter::WriteF32(float v) { return WriteBytes(&v, sizeof(v)); }
Status BinaryWriter::WriteF64(double v) { return WriteBytes(&v, sizeof(v)); }

Status BinaryWriter::WriteString(const std::string& s) {
  FAE_RETURN_IF_ERROR(WriteU64(s.size()));
  return WriteBytes(s.data(), s.size());
}

Status BinaryWriter::Close() {
  out_.flush();
  if (!out_.good()) return Status::IOError("flush failed");
  out_.close();
  return Status::OK();
}

StatusOr<BinaryReader> BinaryReader::Open(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in.is_open()) {
    return Status::NotFound("cannot open for reading: " + path);
  }
  const std::streamoff size = in.tellg();
  in.seekg(0, std::ios::beg);
  return BinaryReader(std::move(in), static_cast<uint64_t>(size));
}

uint64_t BinaryReader::RemainingBytes() {
  const std::streamoff pos = in_.tellg();
  if (pos < 0) return 0;
  const uint64_t upos = static_cast<uint64_t>(pos);
  return upos >= size_ ? 0 : size_ - upos;
}

Status BinaryReader::ReadBytes(void* data, size_t n) {
  in_.read(static_cast<char*>(data), static_cast<std::streamsize>(n));
  if (static_cast<size_t>(in_.gcount()) != n) {
    return Status::DataLoss("unexpected end of file");
  }
  return Status::OK();
}

StatusOr<uint32_t> BinaryReader::ReadU32() {
  uint32_t v = 0;
  FAE_RETURN_IF_ERROR(ReadBytes(&v, sizeof(v)));
  return v;
}

StatusOr<uint64_t> BinaryReader::ReadU64() {
  uint64_t v = 0;
  FAE_RETURN_IF_ERROR(ReadBytes(&v, sizeof(v)));
  return v;
}

StatusOr<float> BinaryReader::ReadF32() {
  float v = 0;
  FAE_RETURN_IF_ERROR(ReadBytes(&v, sizeof(v)));
  return v;
}

StatusOr<double> BinaryReader::ReadF64() {
  double v = 0;
  FAE_RETURN_IF_ERROR(ReadBytes(&v, sizeof(v)));
  return v;
}

StatusOr<std::string> BinaryReader::ReadString() {
  FAE_ASSIGN_OR_RETURN(uint64_t n, ReadU64());
  if (n > RemainingBytes()) {
    return Status::DataLoss("string length exceeds file remainder");
  }
  std::string s(n, '\0');
  FAE_RETURN_IF_ERROR(ReadBytes(s.data(), n));
  return s;
}

bool FileExists(const std::string& path) {
  std::error_code ec;
  return std::filesystem::is_regular_file(path, ec);
}

Status RemoveFile(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove(path, ec);
  if (ec) return Status::IOError("remove failed: " + path);
  return Status::OK();
}

}  // namespace fae
