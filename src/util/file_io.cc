#include "util/file_io.h"

#include <array>
#include <cstdio>
#include <filesystem>

namespace fae {
namespace {

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(const void* data, size_t n, uint32_t seed) {
  static const std::array<uint32_t, 256> table = BuildCrcTable();
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t c = seed ^ 0xffffffffu;
  for (size_t i = 0; i < n; ++i) {
    c = table[(c ^ p[i]) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

StatusOr<BinaryWriter> BinaryWriter::Open(const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return Status::IOError("cannot open for writing: " + path);
  }
  return BinaryWriter(std::move(out));
}

StatusOr<BinaryWriter> BinaryWriter::OpenAtomic(const std::string& path) {
  const std::string temp = path + ".tmp";
  std::ofstream out(temp, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return Status::IOError("cannot open for writing: " + temp);
  }
  BinaryWriter w(std::move(out));
  w.temp_path_ = temp;
  w.final_path_ = path;
  return w;
}

Status BinaryWriter::WriteBytes(const void* data, size_t n) {
  out_.write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
  if (!out_.good()) return Status::IOError("write failed");
  crc_ = Crc32(data, n, crc_);
  return Status::OK();
}

Status BinaryWriter::WriteU32(uint32_t v) { return WriteBytes(&v, sizeof(v)); }
Status BinaryWriter::WriteU64(uint64_t v) { return WriteBytes(&v, sizeof(v)); }
Status BinaryWriter::WriteF32(float v) { return WriteBytes(&v, sizeof(v)); }
Status BinaryWriter::WriteF64(double v) { return WriteBytes(&v, sizeof(v)); }

Status BinaryWriter::WriteString(const std::string& s) {
  FAE_RETURN_IF_ERROR(WriteU64(s.size()));
  return WriteBytes(s.data(), s.size());
}

Status BinaryWriter::Close() {
  out_.flush();
  if (!out_.good()) return Status::IOError("flush failed");
  out_.close();
  if (!temp_path_.empty()) {
    // Atomic writer closed without Commit: abandon the temp file so a
    // failed save leaves no debris next to the intact previous file.
    (void)RemoveFile(temp_path_);
    temp_path_.clear();
  }
  return Status::OK();
}

Status BinaryWriter::Commit() {
  out_.flush();
  if (!out_.good()) return Status::IOError("flush failed");
  out_.close();
  if (temp_path_.empty()) return Status::OK();
  std::error_code ec;
  std::filesystem::rename(temp_path_, final_path_, ec);
  if (ec) {
    (void)RemoveFile(temp_path_);
    return Status::IOError("rename failed: " + temp_path_ + " -> " +
                           final_path_);
  }
  temp_path_.clear();
  return Status::OK();
}

StatusOr<BinaryReader> BinaryReader::Open(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in.is_open()) {
    return Status::NotFound("cannot open for reading: " + path);
  }
  const std::streamoff size = in.tellg();
  in.seekg(0, std::ios::beg);
  return BinaryReader(std::move(in), static_cast<uint64_t>(size));
}

uint64_t BinaryReader::RemainingBytes() {
  const std::streamoff pos = in_.tellg();
  if (pos < 0) return 0;
  const uint64_t upos = static_cast<uint64_t>(pos);
  return upos >= size_ ? 0 : size_ - upos;
}

Status BinaryReader::ReadBytes(void* data, size_t n) {
  in_.read(static_cast<char*>(data), static_cast<std::streamsize>(n));
  if (static_cast<size_t>(in_.gcount()) != n) {
    return Status::DataLoss("unexpected end of file");
  }
  return Status::OK();
}

StatusOr<uint32_t> BinaryReader::ReadU32() {
  uint32_t v = 0;
  FAE_RETURN_IF_ERROR(ReadBytes(&v, sizeof(v)));
  return v;
}

StatusOr<uint64_t> BinaryReader::ReadU64() {
  uint64_t v = 0;
  FAE_RETURN_IF_ERROR(ReadBytes(&v, sizeof(v)));
  return v;
}

StatusOr<float> BinaryReader::ReadF32() {
  float v = 0;
  FAE_RETURN_IF_ERROR(ReadBytes(&v, sizeof(v)));
  return v;
}

StatusOr<double> BinaryReader::ReadF64() {
  double v = 0;
  FAE_RETURN_IF_ERROR(ReadBytes(&v, sizeof(v)));
  return v;
}

StatusOr<std::string> BinaryReader::ReadString() {
  FAE_ASSIGN_OR_RETURN(uint64_t n, ReadU64());
  if (n > RemainingBytes()) {
    return Status::DataLoss("string length exceeds file remainder");
  }
  std::string s(n, '\0');
  FAE_RETURN_IF_ERROR(ReadBytes(s.data(), n));
  return s;
}

Status VerifyFileIntegrity(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in.is_open()) {
    return Status::NotFound("cannot open for reading: " + path);
  }
  const std::streamoff size = in.tellg();
  // Smallest well-formed container: magic + version + trailer + crc.
  if (size < 16) {
    return Status::DataLoss("file too short for an integrity footer: " +
                            path);
  }
  in.seekg(0, std::ios::beg);
  uint64_t remaining = static_cast<uint64_t>(size) - sizeof(uint32_t);
  uint32_t crc = 0;
  char buf[1 << 16];
  while (remaining > 0) {
    const size_t chunk =
        remaining < sizeof(buf) ? static_cast<size_t>(remaining) : sizeof(buf);
    in.read(buf, static_cast<std::streamsize>(chunk));
    if (static_cast<size_t>(in.gcount()) != chunk) {
      return Status::IOError("read failed during integrity check: " + path);
    }
    crc = Crc32(buf, chunk, crc);
    remaining -= chunk;
  }
  uint32_t stored = 0;
  in.read(reinterpret_cast<char*>(&stored), sizeof(stored));
  if (static_cast<size_t>(in.gcount()) != sizeof(stored)) {
    return Status::IOError("read failed during integrity check: " + path);
  }
  if (crc != stored) {
    return Status::DataLoss(
        "checksum mismatch (file is corrupted or truncated): " + path);
  }
  return Status::OK();
}

bool FileExists(const std::string& path) {
  std::error_code ec;
  return std::filesystem::is_regular_file(path, ec);
}

Status RemoveFile(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove(path, ec);
  if (ec) return Status::IOError("remove failed: " + path);
  return Status::OK();
}

}  // namespace fae
