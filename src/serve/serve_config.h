#ifndef FAE_SERVE_SERVE_CONFIG_H_
#define FAE_SERVE_SERVE_CONFIG_H_

#include <cstdint>
#include <string>

#include "embedding/cold_precision.h"
#include "engine/lookahead_cache.h"
#include "sim/fault_injector.h"
#include "util/statusor.h"

namespace fae {

/// Knobs of the online serving + continuous-recalibration loop
/// (serve/serving_loop.h), defaulted for the synthetic workloads.
///
/// The numeric fields round-trip through a versioned text format
/// (Parse/Serialize) so deployments can ship a serving config next to the
/// preprocessed FAE artifact; `fault_injector` and `swap_path` are runtime
/// wiring and stay out of the serialized form.
struct ServeOptions {
  /// Requests served per serving batch (also the continuous-training
  /// mini-batch when `continuous_training` is on).
  size_t batch_size = 256;
  /// Serving batches to run; 0 means one pass over the request stream's
  /// dataset.
  size_t num_batches = 0;

  // --- SLO guardrails / drift detection ---------------------------------
  /// The hit-rate SLO: when the EMA of the hot-slice coverage drops below
  /// this, the drift detector triggers an incremental recalibration.
  double slo_hit_rate = 0.75;
  /// EMA coefficient of the per-batch hot-coverage signal (higher = more
  /// reactive, noisier).
  double ema_alpha = 0.05;

  // --- Continuous recalibration -----------------------------------------
  /// Sliding window of the most recent requests the sampler/Rand-Em
  /// pipeline re-runs over when recalibrating.
  size_t recal_window = 8192;
  /// Minimum serving batches between recalibration attempts, so a slice
  /// that cannot meet the SLO does not thrash the sampler.
  size_t recal_cooldown = 32;

  // --- Watchdog ----------------------------------------------------------
  /// Modeled deadline for one recalibration pass; a pass exceeding it is
  /// aborted by the watchdog and retried with backoff.
  double watchdog_deadline_seconds = 0.25;
  /// Retry budget for deadline-missed recalibrations; exhausting it leaves
  /// serving in degraded (stale hot set) mode until the next cooldown
  /// window opens.
  uint32_t max_recal_retries = 3;
  /// Backoff charged (Phase::kFaultRecovery) before each recal retry.
  double retry_backoff_seconds = 0.01;

  // --- Continuous training -----------------------------------------------
  /// Run one training step per served batch against the CPU master tables
  /// (training never pauses during recalibration or degraded service).
  bool continuous_training = true;
  float dense_lr = 0.1f;
  float sparse_lr = 0.1f;

  size_t num_threads = 1;
  uint64_t seed = 7;

  // --- Runtime wiring (not serialized) -----------------------------------
  /// Path for the atomic hot-swap artifact (FaeFormat container); empty
  /// disables recalibration entirely (serve the initial plan forever).
  std::string swap_path;
  /// Optional fault schedule (sim/fault_injector.h); not owned. Steps are
  /// serving-batch indices.
  FaultInjector* fault_injector = nullptr;

  // --- Lookahead oracle cache (runtime wiring, not serialized) ------------
  /// Oracle cache for *cold* lookups: the hot slice is the pinned tier and
  /// the cache prefetches upcoming cold rows by peeking the request
  /// stream. Like swap_path, a deployment decision rather than a workload
  /// parameter, so it stays out of the serialized form.
  CacheMode cache = CacheMode::kOff;
  size_t cache_budget_rows = 4096;
  size_t cache_lookahead = 8;

  /// Storage precision of cold master rows (embedding/cold_precision.h):
  /// the CPU-master fallback path answers storage-cold lookups out of the
  /// quantized store, so misses stream quantized bytes. The storage
  /// partition is the *offline plan's* and stays fixed across hot-swaps
  /// (requantizing on every swap would re-round; a swap only changes which
  /// rows are served from the GPU). Like the cache knobs, a deployment
  /// decision — runtime wiring, not serialized. Mutually exclusive with
  /// the oracle cache, whose accounting assumes fp32 cold rows.
  ColdPrecision cold_precision = ColdPrecision::kFp32;

  /// Range-checks every field (batch_size >= 1, rates in (0, 1], positive
  /// deadlines, ...). Parse calls this; the CLI calls it on flag-built
  /// configs so both construction paths reject the same garbage.
  Status Validate() const;

  /// Versioned `key=value` text form of the serializable fields.
  std::string Serialize() const;

  /// Inverse of Serialize. InvalidArgument on a bad header, unknown or
  /// duplicate keys, malformed numbers, or values failing Validate —
  /// never a crash, whatever the bytes (tests/fuzz_formats_test.cc).
  static StatusOr<ServeOptions> Parse(const std::string& text);
};

}  // namespace fae

#endif  // FAE_SERVE_SERVE_CONFIG_H_
