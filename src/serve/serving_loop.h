#ifndef FAE_SERVE_SERVING_LOOP_H_
#define FAE_SERVE_SERVING_LOOP_H_

#include <cstdint>
#include <vector>

#include "core/fae_config.h"
#include "core/fae_pipeline.h"
#include "data/dataset.h"
#include "engine/metrics.h"
#include "engine/step_accountant.h"
#include "engine/step_executor.h"
#include "models/rec_model.h"
#include "serve/serve_config.h"
#include "sim/cost_model.h"
#include "sim/fault_injector.h"
#include "stats/histogram.h"
#include "util/statusor.h"

namespace fae {

/// Everything one serving run reports: request/latency accounting, the
/// drift-recalibration history, degraded-mode bookkeeping, and the
/// continuous-training metrics.
struct ServeReport {
  size_t batches = 0;
  uint64_t requests = 0;
  uint64_t lookups = 0;

  // --- Lookup accounting (honest: the serving qualities are kept apart;
  // they sum with `cache_hits` and `misses` to `lookups`) -----------------
  /// Answered by a *fresh* (SLO-healthy) hot slice on the GPU.
  uint64_t hot_hits = 0;
  /// Answered by the hot slice while serving was degraded (a recalibration
  /// failed or a swap was rejected, so the slice is known-stale).
  uint64_t stale_hits = 0;
  /// Hot-slice lookups answered from the CPU master while the lookup-path
  /// GPU was lost (slower, never dropped).
  uint64_t master_fallbacks = 0;
  /// Cold lookups answered by the lookahead oracle cache's GPU replica
  /// (ServeOptions::cache) instead of the CPU master.
  uint64_t cache_hits = 0;
  /// Cold lookups on the CPU master + PCIe round trip, every mode.
  uint64_t misses = 0;

  /// hot_hits / lookups — the fresh-service hit rate the drift bench gates.
  double hit_rate = 0.0;
  /// Final EMA of per-batch hot-slice coverage (the drift detector's
  /// signal); recovery returns it to ~its drift-free level.
  double coverage_ema = 0.0;

  // --- Tail latency (modeled nanoseconds per request) --------------------
  Histogram latency_ns;
  uint64_t p50_latency_ns = 0;
  uint64_t p99_latency_ns = 0;

  // --- Recalibration / hot-swap history ----------------------------------
  size_t recal_attempts = 0;
  /// Watchdog deadline misses (each one charged a retry backoff).
  size_t deadline_misses = 0;
  /// Attempts that exhausted the retry budget or failed the pipeline/swap.
  size_t recal_failures = 0;
  size_t swaps = 0;
  /// All-or-nothing container loads that rejected a torn swap artifact.
  size_t swap_rejects = 0;

  // --- Degraded mode ------------------------------------------------------
  size_t degraded_batches = 0;
  bool degraded_at_exit = false;
  /// An injected crash stopped serving early; the report covers the
  /// batches served before it.
  bool interrupted = false;

  // --- Lookahead oracle cache ---------------------------------------------
  /// cache_hits / (cache_hits + misses): how much of the *cold* traffic
  /// the oracle cache absorbed (the hot slice's coverage is `hit_rate`).
  double cache_hit_rate = 0.0;
  /// Modeled request-path seconds the cache removed, net of its own
  /// prefetch/refresh DMA (negative means the cache cost more than it
  /// saved — small budgets under heavy drift).
  double cache_saved_seconds = 0.0;
  uint64_t cache_stale_refreshes = 0;
  uint64_t cache_prefetch_bytes = 0;

  double modeled_seconds = 0.0;
  Timeline timeline;
  FaultStats faults;

  // --- Continuous training ------------------------------------------------
  size_t train_steps = 0;
  double train_loss = 0.0;
  double train_acc = 0.0;
};

/// Online serving with continuous recalibration (DESIGN.md §12): answers
/// embedding-lookup request batches from the hot slice, watches the
/// hit-rate EMA against the SLO, and when drift drags it under, re-runs the
/// sampler/Rand-Em pipeline over a sliding window of recent traffic and
/// atomically hot-swaps the refreshed hot set through the FaeFormat
/// container (all-or-nothing: a torn artifact is rejected and the previous
/// set stays active). A watchdog bounds recalibration with deadline +
/// retry/backoff; when it gives up, serving degrades to the stale hot set —
/// requests are answered (honestly counted as stale) and training continues.
///
/// Like the Trainer, math is real and time is modeled: every request is
/// charged through the CostModel and per-request latency lands in a
/// log-scale histogram (p50/p99). Fully deterministic — no wall clock.
class ServingLoop {
 public:
  ServingLoop(RecModel* model, SystemSpec system, FaeConfig fae_config,
              ServeOptions options);

  /// Serves `dataset`'s request stream against `plan`'s hot set.
  /// InvalidArgument on a config that fails Validate(); otherwise faults
  /// degrade service but never fail the run (an injected crash returns a
  /// partial report with `interrupted` set).
  StatusOr<ServeReport> Serve(const Dataset& dataset, const FaePlan& plan);

 private:
  RecModel* model_;
  SystemSpec system_;
  CostModel cost_;
  StepAccountant accountant_;
  FaeConfig fae_config_;
  ServeOptions options_;
  StepExecutor exec_;
};

}  // namespace fae

#endif  // FAE_SERVE_SERVING_LOOP_H_
