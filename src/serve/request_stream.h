#ifndef FAE_SERVE_REQUEST_STREAM_H_
#define FAE_SERVE_REQUEST_STREAM_H_

#include <cstdint>
#include <span>
#include <vector>

#include "data/dataset.h"

namespace fae {

/// Streaming request generator: replays a dataset's samples in temporal
/// order as embedding-lookup request batches. Dataset position doubles as
/// time, so a dataset generated with SyntheticOptions::popularity_drift > 0
/// produces request traffic whose hot set rotates as the stream advances —
/// the drift regime the serving loop's continuous recalibration exists for.
/// The stream wraps at the end of the dataset (drift phase restarts with
/// it), so long soak runs just keep cycling.
class RequestStream {
 public:
  /// `dataset` must outlive the stream.
  RequestStream(const Dataset* dataset, size_t batch_size);

  /// Sample ids of the next request batch (valid until the next call). The
  /// final batch before a wrap may be short; batches never straddle the
  /// wrap, so every id window is a contiguous time range.
  std::span<const uint64_t> Next();

  /// Sample ids of the batch `ahead` calls of Next() in the future —
  /// Peek(0) is exactly what the next Next() will return (valid until the
  /// next Peek). Replay is sequential, so this is pure cursor arithmetic
  /// with wrap and serves nothing: the oracle visibility the lookahead
  /// embedding cache feeds on.
  std::span<const uint64_t> Peek(size_t ahead);

  /// The most recent `count` served sample ids, oldest first — the sliding
  /// window the recalibration pipeline re-samples. Capped at what has been
  /// served (and at one dataset length after a wrap). Because replay is
  /// sequential, this is pure cursor arithmetic: no per-request history.
  std::vector<uint64_t> RecentWindow(size_t count) const;

  /// Total requests served so far.
  uint64_t served() const { return served_; }
  /// Request batches served so far.
  uint64_t batches() const { return batches_; }
  /// Drift phase in [0, 1): position of the cursor within the dataset.
  double phase() const;

 private:
  const Dataset* dataset_;
  size_t batch_size_;
  uint64_t cursor_ = 0;  // next sample id to serve
  uint64_t served_ = 0;
  uint64_t batches_ = 0;
  std::vector<uint64_t> batch_ids_;
  std::vector<uint64_t> peek_ids_;
};

}  // namespace fae

#endif  // FAE_SERVE_REQUEST_STREAM_H_
