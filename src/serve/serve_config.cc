#include "serve/serve_config.h"

#include <cstdlib>
#include <limits>
#include <set>

#include "engine/ring_limits.h"
#include "util/string_util.h"

namespace fae {
namespace {

constexpr std::string_view kHeader = "FAESERVE v1";

bool ParseU64Text(std::string_view text, uint64_t* out) {
  if (text.empty()) return false;
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (std::numeric_limits<uint64_t>::max() - digit) / 10) {
      return false;  // overflow
    }
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

bool ParseF64Text(std::string_view text, double* out) {
  if (text.empty()) return false;
  const std::string copy(text);
  char* end = nullptr;
  const double value = std::strtod(copy.c_str(), &end);
  if (end != copy.c_str() + copy.size()) return false;
  *out = value;
  return true;
}

}  // namespace

Status ServeOptions::Validate() const {
  if (batch_size == 0) {
    return Status::InvalidArgument("serve config: batch_size must be >= 1");
  }
  if (!(slo_hit_rate > 0.0) || slo_hit_rate > 1.0) {
    return Status::InvalidArgument(
        "serve config: slo_hit_rate must be in (0, 1]");
  }
  if (!(ema_alpha > 0.0) || ema_alpha > 1.0) {
    return Status::InvalidArgument(
        "serve config: ema_alpha must be in (0, 1]");
  }
  if (recal_window == 0) {
    return Status::InvalidArgument("serve config: recal_window must be >= 1");
  }
  if (recal_cooldown == 0) {
    return Status::InvalidArgument(
        "serve config: recal_cooldown must be >= 1 (back-to-back "
        "recalibrations would starve serving)");
  }
  if (!(watchdog_deadline_seconds > 0.0)) {
    return Status::InvalidArgument(
        "serve config: watchdog_deadline_seconds must be > 0");
  }
  if (max_recal_retries == 0) {
    return Status::InvalidArgument(
        "serve config: max_recal_retries must be >= 1");
  }
  if (!(retry_backoff_seconds >= 0.0)) {
    return Status::InvalidArgument(
        "serve config: retry_backoff_seconds must be >= 0");
  }
  if (!(dense_lr > 0.0f) || !(sparse_lr > 0.0f)) {
    return Status::InvalidArgument(
        "serve config: learning rates must be > 0");
  }
  if (num_threads == 0) {
    return Status::InvalidArgument("serve config: num_threads must be >= 1");
  }
  if (cache == CacheMode::kOracle) {
    if (cache_budget_rows == 0) {
      return Status::InvalidArgument(
          "serve config: cache_budget_rows must be >= 1");
    }
    const StatusOr<size_t> depth = ValidateRingDepth(
        static_cast<long long>(cache_lookahead), "cache_lookahead");
    if (!depth.ok()) return depth.status();
  }
  return Status::OK();
}

std::string ServeOptions::Serialize() const {
  std::string out(kHeader);
  out += '\n';
  out += StrFormat("batch_size=%llu\n",
                   static_cast<unsigned long long>(batch_size));
  out += StrFormat("num_batches=%llu\n",
                   static_cast<unsigned long long>(num_batches));
  out += StrFormat("slo_hit_rate=%.17g\n", slo_hit_rate);
  out += StrFormat("ema_alpha=%.17g\n", ema_alpha);
  out += StrFormat("recal_window=%llu\n",
                   static_cast<unsigned long long>(recal_window));
  out += StrFormat("recal_cooldown=%llu\n",
                   static_cast<unsigned long long>(recal_cooldown));
  out += StrFormat("watchdog_deadline_seconds=%.17g\n",
                   watchdog_deadline_seconds);
  out += StrFormat("max_recal_retries=%u\n", max_recal_retries);
  out += StrFormat("retry_backoff_seconds=%.17g\n", retry_backoff_seconds);
  out += StrFormat("continuous_training=%d\n", continuous_training ? 1 : 0);
  out += StrFormat("dense_lr=%.9g\n", static_cast<double>(dense_lr));
  out += StrFormat("sparse_lr=%.9g\n", static_cast<double>(sparse_lr));
  out += StrFormat("num_threads=%llu\n",
                   static_cast<unsigned long long>(num_threads));
  out += StrFormat("seed=%llu\n", static_cast<unsigned long long>(seed));
  return out;
}

StatusOr<ServeOptions> ServeOptions::Parse(const std::string& text) {
  std::vector<std::string> lines = Split(text, '\n');
  if (lines.empty() || lines[0] != kHeader) {
    return Status::InvalidArgument(
        StrFormat("serve config: missing '%s' header",
                  std::string(kHeader).c_str()));
  }
  ServeOptions opts;
  std::set<std::string> seen;
  for (size_t i = 1; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    if (line.empty()) continue;  // blank lines (incl. the trailing one)
    const size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument(StrFormat(
          "serve config line %zu: '%s' is not key=value", i + 1,
          line.c_str()));
    }
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    if (!seen.insert(key).second) {
      return Status::InvalidArgument(
          StrFormat("serve config: duplicate key '%s'", key.c_str()));
    }
    auto bad_value = [&]() {
      return Status::InvalidArgument(StrFormat(
          "serve config: bad value '%s' for key '%s'", value.c_str(),
          key.c_str()));
    };
    uint64_t u = 0;
    double f = 0.0;
    if (key == "batch_size") {
      if (!ParseU64Text(value, &u)) return bad_value();
      opts.batch_size = u;
    } else if (key == "num_batches") {
      if (!ParseU64Text(value, &u)) return bad_value();
      opts.num_batches = u;
    } else if (key == "slo_hit_rate") {
      if (!ParseF64Text(value, &f)) return bad_value();
      opts.slo_hit_rate = f;
    } else if (key == "ema_alpha") {
      if (!ParseF64Text(value, &f)) return bad_value();
      opts.ema_alpha = f;
    } else if (key == "recal_window") {
      if (!ParseU64Text(value, &u)) return bad_value();
      opts.recal_window = u;
    } else if (key == "recal_cooldown") {
      if (!ParseU64Text(value, &u)) return bad_value();
      opts.recal_cooldown = u;
    } else if (key == "watchdog_deadline_seconds") {
      if (!ParseF64Text(value, &f)) return bad_value();
      opts.watchdog_deadline_seconds = f;
    } else if (key == "max_recal_retries") {
      if (!ParseU64Text(value, &u) ||
          u > std::numeric_limits<uint32_t>::max()) {
        return bad_value();
      }
      opts.max_recal_retries = static_cast<uint32_t>(u);
    } else if (key == "retry_backoff_seconds") {
      if (!ParseF64Text(value, &f)) return bad_value();
      opts.retry_backoff_seconds = f;
    } else if (key == "continuous_training") {
      if (value == "0") {
        opts.continuous_training = false;
      } else if (value == "1") {
        opts.continuous_training = true;
      } else {
        return bad_value();
      }
    } else if (key == "dense_lr") {
      if (!ParseF64Text(value, &f)) return bad_value();
      opts.dense_lr = static_cast<float>(f);
    } else if (key == "sparse_lr") {
      if (!ParseF64Text(value, &f)) return bad_value();
      opts.sparse_lr = static_cast<float>(f);
    } else if (key == "num_threads") {
      if (!ParseU64Text(value, &u)) return bad_value();
      opts.num_threads = u;
    } else if (key == "seed") {
      if (!ParseU64Text(value, &u)) return bad_value();
      opts.seed = u;
    } else {
      return Status::InvalidArgument(
          StrFormat("serve config: unknown key '%s'", key.c_str()));
    }
  }
  FAE_RETURN_IF_ERROR(opts.Validate());
  return opts;
}

}  // namespace fae
