#include "serve/serving_loop.h"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <numeric>
#include <utility>
#include <vector>

#include "core/fae_format.h"
#include "data/batch_view.h"
#include "engine/lookahead_cache.h"
#include "serve/request_stream.h"
#include "util/logging.h"

namespace fae {
namespace {

/// Serving-side retry cap for transient lookup-device faults; a device
/// failing more consecutive attempts is treated as lost on the lookup path
/// (lookup-loss semantics: master fallback, never an outage) — unlike the
/// batch trainer, serving has no "fail the run" escalation.
constexpr uint32_t kMaxServeRetries = 5;
constexpr double kServeRetryBackoffSeconds = 0.001;

/// Oracle-cache hits read a replica sharded across the GPUs; the peer-link
/// hop folds into one indirection factor, matching the trainer's cache
/// steps (engine/step_accountant.cc).
constexpr double kCacheIndirection = 1.5;

StepExecutor::Options ExecOptions(const ServeOptions& options) {
  StepExecutor::Options exec;
  exec.dense_lr = options.dense_lr;
  exec.sparse_lr = options.sparse_lr;
  exec.run_math = options.continuous_training;
  exec.num_threads = options.num_threads;
  return exec;
}

/// Tears the swap artifact the way a worker dying mid-write would: the
/// file exists but its tail (and with it the CRC trailer) is gone. Save's
/// temp+rename makes this impossible in the real flow; the injected fault
/// bypasses it deliberately so the test proves Load rejects torn bytes.
void TearSwapArtifact(const std::string& path) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (ec) return;
  std::filesystem::resize_file(path, size / 2, ec);
}

}  // namespace

ServingLoop::ServingLoop(RecModel* model, SystemSpec system,
                         FaeConfig fae_config, ServeOptions options)
    : model_(model),
      system_(std::move(system)),
      cost_(system_),
      accountant_(&cost_),
      fae_config_(std::move(fae_config)),
      options_(std::move(options)),
      exec_(model, ExecOptions(options_)) {}

StatusOr<ServeReport> ServingLoop::Serve(const Dataset& dataset,
                                         const FaePlan& plan) {
  FAE_RETURN_IF_ERROR(options_.Validate());
  const bool quantized = options_.cold_precision != ColdPrecision::kFp32;
  if (quantized && options_.cache != CacheMode::kOff) {
    return Status::InvalidArgument(
        "--cold-precision cannot be combined with --cache=oracle: the "
        "cache's budget and transfer accounting assume fp32 cold rows");
  }

  const size_t dim = dataset.schema().embedding_dim;
  const uint64_t row_bytes = dim * sizeof(float);
  const FlatDataset& flat = dataset.flat();

  ServeReport report;
  Timeline& tl = report.timeline;

  FaultStats local_stats;
  FaultStats* stats = options_.fault_injector
                          ? &options_.fault_injector->stats()
                          : &local_stats;

  // The active hot set starts as the offline plan's and is replaced only by
  // a successful all-or-nothing swap.
  HotSet active = plan.hot_set;
  uint64_t active_hot_bytes = active.HotBytes(dim);
  accountant_.ChargeSyncToGpus(active_hot_bytes, tl);  // initial replication

  // Quantized cold store: compress the masters against the *offline*
  // plan's partition. This storage partition stays fixed for the whole
  // serving run — hot-swaps change which rows the GPU answers, not how the
  // master stores them (requantizing per swap would re-round the codes).
  // A model restored from a v3 container may arrive compressed already; it
  // must then match the requested precision and the plan's partition.
  if (quantized ||
      (!model_->tables().empty() && model_->tables().front().compressed())) {
    std::vector<EmbeddingTable>& ts = model_->tables();
    for (size_t t = 0; t < ts.size(); ++t) {
      EmbeddingTable& tab = ts[t];
      const std::span<const uint8_t> mask = plan.hot_set.mask(t);
      if (tab.compressed()) {
        if (!quantized) {
          tab.Decompress();
        } else if (tab.cold_precision() != options_.cold_precision ||
                   mask.empty() || !tab.PartitionMatches(mask)) {
          return Status::FailedPrecondition(
              "model's compressed cold store does not match the requested "
              "cold precision and the serving plan's hot/cold partition");
        }
      } else if (quantized && !mask.empty()) {
        tab.CompressCold(mask, options_.cold_precision);
      }
    }
  }

  RequestStream stream(&dataset, options_.batch_size);
  const size_t total_batches =
      options_.num_batches > 0
          ? options_.num_batches
          : (dataset.size() + options_.batch_size - 1) / options_.batch_size;

  // Per-lookup modeled costs are loop invariants of the cost model. A
  // storage-cold miss streams the quantized row out of the CPU master
  // (fewer bytes gathered); the dequantized fp32 row crosses PCIe either
  // way. Rows hot in the *storage* partition keep the fp32 gather even
  // when a lost lookup device sends them to the master.
  const double hit_seconds = cost_.GatherSeconds(row_bytes, system_.gpu);
  const double miss_gather = cost_.GatherSeconds(row_bytes, system_.cpu);
  const double miss_pcie = cost_.PcieTransferSeconds(row_bytes);
  const double miss_seconds = miss_gather + miss_pcie;
  const double miss_gather_q = cost_.GatherSeconds(
      ColdRowBytes(dim, options_.cold_precision), system_.cpu);
  const double miss_seconds_q = miss_gather_q + miss_pcie;

  // Lookahead oracle cache over the *cold* traffic, with the hot slice as
  // the pinned tier (engine/lookahead_cache.h). The request stream replays
  // deterministically, so peeking `cache_lookahead` batches ahead gives
  // the cache the same exact-future visibility the trainer's staging ring
  // does. Unlike training there is no checkpoint-identity constraint, so
  // cache traffic is charged into the timeline directly.
  const bool cache_on = options_.cache == CacheMode::kOracle;
  const double cache_hit_seconds = kCacheIndirection * hit_seconds;
  LookaheadCache cache;
  double cache_saved = 0.0;
  if (cache_on) {
    LookaheadCache::Options copt;
    copt.budget_rows = options_.cache_budget_rows;
    copt.lookahead = options_.cache_lookahead;
    copt.row_bytes = row_bytes;
    copt.track_dirty = false;  // read-only replica of the CPU master
    cache.Init(dataset.schema().table_rows, copt);
    cache.SetPinned(&active);
    cache.BeginSegment();
    for (size_t i = 0; i < std::min(total_batches, options_.cache_lookahead);
         ++i) {
      cache.PushBatch(flat, stream.Peek(i));
    }
  }
  // Prefetch/refresh DMA targets idle PCIe, never the request path: it is
  // wall time and bytes on the timeline, and a debit against the cache's
  // reported saving.
  auto charge_cache_dma = [&](uint64_t bytes) {
    if (bytes == 0) return;
    const double seconds = cost_.PcieTransferSeconds(bytes);
    tl.Charge(Phase::kCpuGpuTransfer, seconds);
    tl.AddPcieBytes(bytes);
    cache_saved -= seconds;
  };

  // Continuous-training machinery (training never pauses during
  // recalibration or degraded service).
  std::vector<EmbeddingTable*> master_tables;
  for (EmbeddingTable& t : model_->tables()) master_tables.push_back(&t);
  RunningMetric metric;
  RunningMetric window_metric;
  FlatDataset train_ws;

  // Drift/fault state.
  double ema = 1.0;  // optimistic: the offline plan starts fresh
  bool degraded = false;
  size_t cooldown = 0;            // batches until the next recal may fire
  double armed_recal_stall = 0.0; // consumed by the next recalibration
  bool has_armed_recal_stall = false;
  bool armed_swap_crash = false;  // consumed by the next hot-swap
  uint32_t lookup_loss_remaining = 0;

  for (size_t b = 0; b < total_batches; ++b) {
    // --- Faults scheduled before this batch -----------------------------
    if (options_.fault_injector != nullptr) {
      for (const FaultEvent& event : options_.fault_injector->Drain(b)) {
        switch (event.kind) {
          case FaultKind::kRecalStall:
            ++stats->recal_stalls;
            armed_recal_stall += event.stall_seconds;
            has_armed_recal_stall = true;
            break;
          case FaultKind::kSwapCrash:
            ++stats->swap_crashes;
            armed_swap_crash = true;
            break;
          case FaultKind::kLookupLoss:
            ++stats->lookup_losses;
            lookup_loss_remaining =
                std::max(lookup_loss_remaining, event.times);
            break;
          case FaultKind::kCrash:
            ++stats->crashes;
            report.interrupted = true;
            break;
          case FaultKind::kDeviceTransient: {
            // Bounded retry with backoff; a device out past the cap is a
            // lookup-path loss (master fallback), never an outage.
            ++stats->device_faults;
            const uint32_t attempts = std::min(event.times, kMaxServeRetries);
            stats->retries += attempts;
            tl.Charge(Phase::kFaultRecovery,
                      attempts * kServeRetryBackoffSeconds);
            if (event.times > kMaxServeRetries) {
              lookup_loss_remaining = std::max(
                  lookup_loss_remaining, event.times - kMaxServeRetries);
            }
            break;
          }
          case FaultKind::kLinkStall:
            ++stats->link_stalls;
            tl.Charge(Phase::kCpuGpuTransfer, event.stall_seconds);
            break;
          case FaultKind::kCorruptSync:
            // The replicated hot slice is garbage: re-pull from the CPU
            // master, which is always authoritative.
            ++stats->corrupt_syncs;
            tl.Charge(Phase::kFaultRecovery,
                      cost_.PcieTransferSeconds(active_hot_bytes));
            tl.AddPcieBytes(active_hot_bytes);
            break;
        }
      }
    }
    if (report.interrupted) break;

    const bool lookup_lost = lookup_loss_remaining > 0;
    if (degraded) ++report.degraded_batches;

    // --- Serve one request batch ----------------------------------------
    const std::span<const uint64_t> ids = stream.Next();
    if (cache_on) {
      // Advance the oracle: fetch/refresh this batch's still-missing cold
      // rows, slide the window, run the prefetch cursor ahead, and extend
      // the window by the next peeked batch. Residency is settled before
      // any request below is priced.
      const LookaheadCache::StepCharge sc = cache.OnStep();
      charge_cache_dma(sc.timely_prefetch_bytes + sc.late_prefetch_bytes);
      if (b + options_.cache_lookahead < total_batches) {
        cache.PushBatch(flat, stream.Peek(options_.cache_lookahead - 1));
      }
    }
    uint64_t batch_hot = 0;
    uint64_t batch_miss = 0;
    uint64_t batch_cache = 0;
    double gpu_seconds = 0.0;
    double cpu_seconds = 0.0;
    double pcie_seconds = 0.0;
    uint64_t pcie_bytes = 0;
    for (uint64_t id : ids) {
      double latency = 0.0;
      for (size_t t = 0; t < flat.schema().num_tables(); ++t) {
        for (uint32_t row : flat.lookups(t, id)) {
          const bool hot = active.IsHot(t, row);
          if (hot) ++batch_hot;
          else ++batch_miss;
          if (hot && !lookup_lost) {
            latency += hit_seconds;
            gpu_seconds += hit_seconds;
          } else if (!hot && !lookup_lost && cache_on &&
                     cache.IsResident(t, row)) {
            // Cold lookup answered by the oracle cache's GPU replica (the
            // replica rides the same lookup-path GPU as the hot slice, so
            // a lost device takes both to the master).
            ++batch_cache;
            latency += cache_hit_seconds;
            gpu_seconds += cache_hit_seconds;
          } else {
            // Cold lookup — or a hot one answered by the CPU master while
            // the lookup-path GPU is out. Slower, never dropped. The
            // *storage* partition (the offline plan's, fixed across swaps)
            // decides whether the master read is quantized.
            const bool storage_cold =
                quantized && !plan.hot_set.IsHot(t, row);
            latency += storage_cold ? miss_seconds_q : miss_seconds;
            cpu_seconds += storage_cold ? miss_gather_q : miss_gather;
            pcie_seconds += miss_pcie;
            pcie_bytes += row_bytes;
          }
        }
      }
      report.latency_ns.Add(
          static_cast<uint64_t>(std::llround(latency * 1e9)));
    }
    tl.ChargeGpu(Phase::kEmbeddingForward, gpu_seconds);
    tl.ChargeCpu(Phase::kEmbeddingForward, cpu_seconds);
    tl.Charge(Phase::kCpuGpuTransfer, pcie_seconds);
    tl.AddPcieBytes(pcie_bytes);

    ++report.batches;
    report.requests += ids.size();
    report.lookups += batch_hot + batch_miss;
    report.misses += batch_miss - batch_cache;
    report.cache_hits += batch_cache;
    cache_saved += static_cast<double>(batch_cache) *
                   (miss_seconds - cache_hit_seconds);
    if (lookup_lost) {
      report.master_fallbacks += batch_hot;
    } else if (degraded) {
      report.stale_hits += batch_hot;
    } else {
      report.hot_hits += batch_hot;
    }

    if (lookup_lost && --lookup_loss_remaining == 0) {
      // Device back: re-replicate the hot slice and restore fresh service.
      accountant_.ChargeSyncToGpus(active_hot_bytes, tl);
      ++stats->recoveries;
    }

    // --- Continuous training (one step per served batch) ----------------
    if (options_.continuous_training) {
      flat.GatherInto(ids, &train_ws);
      const BatchView view = MakeBatchView(train_ws, 0, ids.size(), false);
      exec_.MathStep(view, master_tables, metric, window_metric);
      accountant_.ChargeBaselineStep(model_->Work(view), tl);
      ++report.train_steps;
      if (quantized) {
        // Serving has no chunk boundaries, so the sync point is every
        // continuous-training step: requantize the rows the step staged
        // before the next request batch reads them. The staging buffer
        // keeps its capacity, so steady state stays allocation-free.
        for (EmbeddingTable* t : master_tables) {
          if (t->compressed()) t->FlushStaged();
        }
      }
      if (cache_on) {
        // The step just rewrote this batch's master rows: refresh the
        // resident copies eagerly so the replica never answers a request
        // from a superseded row.
        charge_cache_dma(cache.RefreshUpdated(flat, ids));
      }
    }

    // --- Drift detection -------------------------------------------------
    // Coverage measures the active set against current traffic regardless
    // of serving health — a stale set under drift must keep pulling the
    // EMA down so recalibration retriggers once the cooldown reopens.
    const uint64_t batch_lookups = batch_hot + batch_miss;
    if (batch_lookups > 0) {
      const double coverage =
          static_cast<double>(batch_hot) / static_cast<double>(batch_lookups);
      ema = (1.0 - options_.ema_alpha) * ema + options_.ema_alpha * coverage;
    }
    if (cooldown > 0) --cooldown;

    if (options_.swap_path.empty() || ema >= options_.slo_hit_rate ||
        cooldown > 0) {
      continue;
    }

    // --- Incremental recalibration over the recent-traffic window --------
    ++report.recal_attempts;
    cooldown = options_.recal_cooldown;
    const std::vector<uint64_t> window_ids =
        stream.RecentWindow(options_.recal_window);
    Dataset window_ds(flat.Gather(window_ids));
    const uint64_t window_bytes =
        window_ds.flat().total_lookups() * sizeof(uint32_t) +
        window_ds.size() * window_ds.schema().num_dense * sizeof(float);
    // Re-running the sampler + classifier streams the window twice (profile
    // pass + classification pass).
    const double base_seconds =
        2.0 * cost_.StreamSeconds(window_bytes, system_.cpu);

    // Watchdog: each pass is charged in full; a pass over the deadline is
    // aborted and retried after a backoff, up to the retry budget.
    bool recal_ok = false;
    for (uint32_t attempt = 0; attempt < options_.max_recal_retries;
         ++attempt) {
      double pass_seconds = base_seconds;
      if (has_armed_recal_stall) {
        pass_seconds += armed_recal_stall;
        has_armed_recal_stall = false;
        armed_recal_stall = 0.0;
      }
      tl.ChargeCpu(Phase::kInputPrep, pass_seconds);
      if (pass_seconds > options_.watchdog_deadline_seconds) {
        ++report.deadline_misses;
        tl.Charge(Phase::kFaultRecovery, options_.retry_backoff_seconds);
        continue;
      }
      recal_ok = true;
      break;
    }
    if (!recal_ok) {
      ++report.recal_failures;
      degraded = true;  // serve the stale set; training continues
      continue;
    }

    std::vector<uint64_t> window_train(window_ds.size());
    std::iota(window_train.begin(), window_train.end(), 0);
    // The sliding window is already a small sample of live traffic;
    // sub-sampling it again (the offline pass's sample_rate) starves the
    // profile, so the incremental pass profiles the whole window.
    FaeConfig recal_config = fae_config_;
    recal_config.sample_rate = 1.0;
    StatusOr<FaePlan> fresh =
        FaePipeline(recal_config).Prepare(window_ds, window_train);
    if (!fresh.ok()) {
      ++report.recal_failures;
      degraded = true;
      continue;
    }

    // --- Atomic hot-swap through the FaeFormat container ------------------
    // Fingerprinted against the *serving* dataset so the loader applies the
    // same compatibility check an offline artifact would face.
    FaePreprocessed pre;
    pre.fingerprint = FaeFormat::Fingerprint(dataset);
    pre.threshold = fresh->threshold;
    pre.h_zt = fresh->h_zt;
    pre.hot_set = std::move(fresh->hot_set);
    const Status saved = FaeFormat::Save(options_.swap_path, pre);
    if (!saved.ok()) {
      ++report.recal_failures;
      degraded = true;
      continue;
    }
    if (armed_swap_crash) {
      armed_swap_crash = false;
      TearSwapArtifact(options_.swap_path);
    }
    StatusOr<FaePreprocessed> loaded =
        FaeFormat::Load(options_.swap_path, dataset);
    if (!loaded.ok()) {
      // Torn or incompatible artifact: the container's all-or-nothing load
      // rejects it and the previous hot set stays active.
      ++report.swap_rejects;
      degraded = true;
      continue;
    }
    active = std::move(loaded->hot_set);
    active_hot_bytes = active.HotBytes(dim);
    accountant_.ChargeSyncToGpus(active_hot_bytes, tl);
    if (cache_on) {
      // Rows the swap promoted now live in the replicated hot slice:
      // cached copies are dropped, freeing budget for the new cold tail.
      // (The cache pins through `active`, which already holds the new
      // set; demoted rows simply become cacheable again.)
      cache.DropPinned(active);
    }
    ++report.swaps;
    if (degraded) {
      degraded = false;
      ++stats->recoveries;
    }
  }

  // --- Finalize ----------------------------------------------------------
  report.degraded_at_exit = degraded;
  if (report.lookups > 0) {
    report.hit_rate = static_cast<double>(report.hot_hits) /
                      static_cast<double>(report.lookups);
  }
  report.coverage_ema = ema;
  if (cache_on) {
    const uint64_t cold_lookups = report.cache_hits + report.misses;
    if (cold_lookups > 0) {
      report.cache_hit_rate = static_cast<double>(report.cache_hits) /
                              static_cast<double>(cold_lookups);
    }
    report.cache_saved_seconds = cache_saved;
    report.cache_stale_refreshes = cache.stats().stale_refreshes;
    report.cache_prefetch_bytes = cache.stats().prefetch_bytes;
  }
  report.p50_latency_ns = report.latency_ns.ApproximateQuantile(0.50);
  report.p99_latency_ns = report.latency_ns.ApproximateQuantile(0.99);
  report.modeled_seconds = tl.TotalSeconds();
  report.faults = *stats;
  if (options_.continuous_training) {
    report.train_loss = metric.mean_loss();
    report.train_acc = metric.accuracy();
  }
  return report;
}

}  // namespace fae
