#include "serve/request_stream.h"

#include <algorithm>

#include "util/logging.h"

namespace fae {

RequestStream::RequestStream(const Dataset* dataset, size_t batch_size)
    : dataset_(dataset), batch_size_(batch_size) {
  FAE_CHECK(dataset != nullptr);
  FAE_CHECK_GE(dataset->size(), 1u);
  FAE_CHECK_GE(batch_size, 1u);
  batch_ids_.reserve(batch_size);
}

std::span<const uint64_t> RequestStream::Next() {
  const uint64_t n = dataset_->size();
  const uint64_t count = std::min<uint64_t>(batch_size_, n - cursor_);
  batch_ids_.resize(count);
  for (uint64_t i = 0; i < count; ++i) batch_ids_[i] = cursor_ + i;
  cursor_ += count;
  if (cursor_ >= n) cursor_ = 0;  // wrap: drift phase restarts
  served_ += count;
  ++batches_;
  return batch_ids_;
}

std::span<const uint64_t> RequestStream::Peek(size_t ahead) {
  const uint64_t n = dataset_->size();
  uint64_t cur = cursor_;
  // Mirror Next's advance (batches never straddle the wrap) without
  // serving anything.
  for (size_t i = 0; i < ahead; ++i) {
    cur += std::min<uint64_t>(batch_size_, n - cur);
    if (cur >= n) cur = 0;
  }
  const uint64_t count = std::min<uint64_t>(batch_size_, n - cur);
  peek_ids_.resize(count);
  for (uint64_t i = 0; i < count; ++i) peek_ids_[i] = cur + i;
  return peek_ids_;
}

std::vector<uint64_t> RequestStream::RecentWindow(size_t count) const {
  const uint64_t n = dataset_->size();
  const uint64_t cap = std::min<uint64_t>({count, served_, n});
  std::vector<uint64_t> out(cap);
  // The window ends at the cursor and reaches back `cap` ids, wrapping.
  for (uint64_t i = 0; i < cap; ++i) {
    out[cap - 1 - i] = (cursor_ + n - 1 - i) % n;
  }
  return out;
}

double RequestStream::phase() const {
  return static_cast<double>(cursor_) / static_cast<double>(dataset_->size());
}

}  // namespace fae
