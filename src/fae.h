#ifndef FAE_FAE_H_
#define FAE_FAE_H_

/// Umbrella header: the whole public API of the FAE library.
///
/// Typical flow (see README.md / examples/quickstart.cpp):
///   1. data/       — build or load a dataset
///   2. core/       — FaePipeline::Prepare: calibrate, classify, pack
///   3. models/     — MakeModel (DLRM / TBSM per Table I)
///   4. engine/     — Trainer::TrainFaeWithPlan vs TrainBaseline
///   5. sim/        — the simulated hardware the engine charges time to

#include "core/calibrator.h"
#include "core/embedding_classifier.h"
#include "core/embedding_logger.h"
#include "core/embedding_replicator.h"
#include "core/fae_config.h"
#include "core/fae_format.h"
#include "core/fae_pipeline.h"
#include "core/input_processor.h"
#include "core/rand_em_box.h"
#include "core/shuffle_scheduler.h"
#include "data/batch_loader.h"
#include "data/dataset.h"
#include "data/dataset_io.h"
#include "data/minibatch.h"
#include "data/sample.h"
#include "data/schema.h"
#include "data/synthetic.h"
#include "embedding/embedding_bag.h"
#include "embedding/embedding_table.h"
#include "embedding/rowwise_adagrad.h"
#include "embedding/sparse_sgd.h"
#include "engine/metrics.h"
#include "engine/step_accountant.h"
#include "engine/trainer.h"
#include "models/dlrm.h"
#include "models/factory.h"
#include "models/model_config.h"
#include "models/model_io.h"
#include "models/rec_model.h"
#include "models/tbsm.h"
#include "sim/cost_model.h"
#include "sim/device.h"
#include "sim/partition.h"
#include "sim/timeline.h"
#include "stats/access_profile.h"
#include "stats/descriptive.h"
#include "stats/histogram.h"
#include "stats/sampling.h"
#include "stats/t_table.h"
#include "stats/zipf.h"
#include "tensor/attention.h"
#include "tensor/linear.h"
#include "tensor/loss.h"
#include "tensor/mlp.h"
#include "tensor/momentum_sgd.h"
#include "tensor/ops.h"
#include "tensor/sgd.h"
#include "tensor/tensor.h"
#include "util/file_io.h"
#include "util/half.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/status.h"
#include "util/statusor.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

#endif  // FAE_FAE_H_
