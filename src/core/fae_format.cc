#include "core/fae_format.h"

#include "util/file_io.h"
#include "util/string_util.h"

namespace fae {
namespace {

constexpr uint32_t kMagic = 0x46414546;  // "FAEF"
// v2 added the crash-safety envelope: atomic temp+rename writes and the
// whole-file CRC-32 footer.
constexpr uint32_t kVersion = 2;
constexpr uint32_t kTrailer = 0x444e4546;  // "FEND"

uint64_t Fnv1a(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

uint64_t FaeFormat::Fingerprint(const Dataset& dataset) {
  const DatasetSchema& s = dataset.schema();
  uint64_t h = 0xcbf29ce484222325ULL;
  h = Fnv1a(h, dataset.size());
  h = Fnv1a(h, s.num_dense);
  h = Fnv1a(h, s.embedding_dim);
  h = Fnv1a(h, s.sequential ? 1 : 0);
  h = Fnv1a(h, s.max_history);
  for (uint64_t rows : s.table_rows) h = Fnv1a(h, rows);
  return h;
}

Status FaeFormat::Save(const std::string& path, const FaePreprocessed& data) {
  FAE_ASSIGN_OR_RETURN(BinaryWriter w, BinaryWriter::OpenAtomic(path));
  FAE_RETURN_IF_ERROR(w.WriteU32(kMagic));
  FAE_RETURN_IF_ERROR(w.WriteU32(kVersion));
  FAE_RETURN_IF_ERROR(w.WriteU64(data.fingerprint));
  FAE_RETURN_IF_ERROR(w.WriteF64(data.threshold));
  FAE_RETURN_IF_ERROR(w.WriteU64(data.h_zt));

  const HotSet& hs = data.hot_set;
  FAE_RETURN_IF_ERROR(w.WriteU64(hs.num_tables()));
  for (size_t t = 0; t < hs.num_tables(); ++t) {
    FAE_RETURN_IF_ERROR(w.WriteU32(hs.all_hot_[t]));
    FAE_RETURN_IF_ERROR(w.WriteU64(hs.table_rows_[t]));
    FAE_RETURN_IF_ERROR(w.WriteU64(hs.hot_counts_[t]));
    FAE_RETURN_IF_ERROR(w.WriteVector(hs.mask_[t]));
  }
  FAE_RETURN_IF_ERROR(w.WriteVector(data.hot_ids));
  FAE_RETURN_IF_ERROR(w.WriteVector(data.cold_ids));
  FAE_RETURN_IF_ERROR(w.WriteU32(kTrailer));
  const uint32_t crc = w.crc();
  FAE_RETURN_IF_ERROR(w.WriteU32(crc));
  return w.Commit();
}

StatusOr<FaePreprocessed> FaeFormat::Load(const std::string& path,
                                          const Dataset& dataset) {
  FAE_RETURN_IF_ERROR(VerifyFileIntegrity(path));
  FAE_ASSIGN_OR_RETURN(BinaryReader r, BinaryReader::Open(path));
  FAE_ASSIGN_OR_RETURN(uint32_t magic, r.ReadU32());
  if (magic != kMagic) {
    return Status::DataLoss("not a FAE preprocessed file: " + path);
  }
  FAE_ASSIGN_OR_RETURN(uint32_t version, r.ReadU32());
  if (version != kVersion) {
    return Status::DataLoss(
        StrFormat("unsupported FAE format version %u", version));
  }
  FaePreprocessed data;
  FAE_ASSIGN_OR_RETURN(data.fingerprint, r.ReadU64());
  if (data.fingerprint != Fingerprint(dataset)) {
    return Status::FailedPrecondition(
        "FAE preprocessed data was built from a different dataset");
  }
  FAE_ASSIGN_OR_RETURN(data.threshold, r.ReadF64());
  FAE_ASSIGN_OR_RETURN(data.h_zt, r.ReadU64());

  FAE_ASSIGN_OR_RETURN(uint64_t num_tables, r.ReadU64());
  if (num_tables != dataset.schema().num_tables()) {
    return Status::DataLoss("table count mismatch in FAE file");
  }
  HotSet& hs = data.hot_set;
  hs.mask_.resize(num_tables);
  hs.all_hot_.resize(num_tables);
  hs.hot_counts_.resize(num_tables);
  hs.table_rows_.resize(num_tables);
  for (size_t t = 0; t < num_tables; ++t) {
    FAE_ASSIGN_OR_RETURN(uint32_t all_hot, r.ReadU32());
    hs.all_hot_[t] = static_cast<uint8_t>(all_hot);
    FAE_ASSIGN_OR_RETURN(hs.table_rows_[t], r.ReadU64());
    FAE_ASSIGN_OR_RETURN(hs.hot_counts_[t], r.ReadU64());
    FAE_ASSIGN_OR_RETURN(hs.mask_[t], r.ReadVector<uint8_t>());
    if (hs.table_rows_[t] != dataset.schema().table_rows[t]) {
      return Status::DataLoss("table rows mismatch in FAE file");
    }
    if (!hs.all_hot_[t]) {
      if (hs.mask_[t].size() != hs.table_rows_[t]) {
        return Status::DataLoss("hot mask size mismatch in FAE file");
      }
      uint64_t recount = 0;
      for (uint8_t m : hs.mask_[t]) recount += m != 0;
      if (recount != hs.hot_counts_[t]) {
        return Status::DataLoss("hot count does not match mask in FAE file");
      }
    }
  }
  FAE_ASSIGN_OR_RETURN(data.hot_ids, r.ReadVector<uint64_t>());
  FAE_ASSIGN_OR_RETURN(data.cold_ids, r.ReadVector<uint64_t>());
  FAE_ASSIGN_OR_RETURN(uint32_t trailer, r.ReadU32());
  if (trailer != kTrailer) {
    return Status::DataLoss("FAE file trailer missing (truncated?)");
  }
  return data;
}

}  // namespace fae
