#ifndef FAE_CORE_FAE_FORMAT_H_
#define FAE_CORE_FAE_FORMAT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/embedding_classifier.h"
#include "data/dataset.h"
#include "util/statusor.h"

namespace fae {

/// Everything the static FAE passes produce, stored "in the FAE format for
/// any subsequent training runs" (paper §III-B) so calibration and
/// classification run once per dataset.
struct FaePreprocessed {
  /// Hash of the source dataset's schema and size; Load refuses data whose
  /// fingerprint does not match the dataset it is applied to.
  uint64_t fingerprint = 0;
  double threshold = 0.0;
  uint64_t h_zt = 0;
  HotSet hot_set;
  std::vector<uint64_t> hot_ids;
  std::vector<uint64_t> cold_ids;
};

/// Binary (de)serialization of FaePreprocessed with corruption checks.
class FaeFormat {
 public:
  static Status Save(const std::string& path, const FaePreprocessed& data);

  /// Load + fingerprint check against `dataset`.
  static StatusOr<FaePreprocessed> Load(const std::string& path,
                                        const Dataset& dataset);

  /// FNV-1a over the schema's structural fields and the sample count.
  static uint64_t Fingerprint(const Dataset& dataset);
};

}  // namespace fae

#endif  // FAE_CORE_FAE_FORMAT_H_
