#ifndef FAE_CORE_CALIBRATOR_H_
#define FAE_CORE_CALIBRATOR_H_

#include <cstdint>
#include <vector>

#include "core/fae_config.h"
#include "data/dataset.h"
#include "stats/access_profile.h"
#include "util/statusor.h"

namespace fae {

/// One threshold the Statistical Optimizer evaluated, for Fig 6/9-style
/// sweeps.
struct ThresholdPoint {
  double threshold = 0.0;          // t, fraction of sampled inputs
  uint64_t h_zt = 0;               // absolute access cutoff (Eq 1)
  uint64_t estimated_hot_bytes = 0;  // CI upper bound incl. small tables
  uint64_t scanned_entries = 0;    // Rand-Em Box work for this iteration
  /// Bytes the quantized cold store gives back at this threshold (zero at
  /// fp32): cold rows shrink from dim*4 to ColdRowBytes, and the savings
  /// are credited to the hot budget below.
  uint64_t reclaimed_bytes = 0;
  uint64_t effective_budget = 0;   // L + reclaimed_bytes
  bool fits = false;               // estimated_hot_bytes <= effective_budget
};

/// Calibrate() output: the chosen knob plus everything downstream
/// components need (sampled profile, sizes, timing).
struct CalibrationResult {
  double threshold = 0.0;
  uint64_t h_zt = 0;
  uint64_t estimated_hot_bytes = 0;
  /// Budget the chosen threshold was admitted against: L plus the bytes the
  /// quantized cold store reclaims at that threshold (equals L at fp32).
  uint64_t effective_budget = 0;
  uint64_t reclaimed_bytes = 0;
  size_t sampled_inputs = 0;
  /// Sampled access profile (Embedding Logger output), reused by the
  /// Embedding Classifier so the dataset is not re-scanned.
  AccessProfile profile{std::vector<uint64_t>{}};
  /// Every threshold iteration, in sweep order.
  std::vector<ThresholdPoint> sweep;
  double sampling_seconds = 0.0;
  double estimation_seconds = 0.0;
};

/// The paper's Calibrator (§III-A): picks the access threshold that makes
/// the hot embedding slice as large as possible while fitting the per-GPU
/// budget L, using input sampling + the Rand-Em Box so neither the full
/// dataset nor the full tables are scanned.
class Calibrator {
 public:
  explicit Calibrator(FaeConfig config);

  /// Runs sampler -> logger -> statistical optimizer. Fails with
  /// ResourceExhausted when even the coarsest threshold's hot slice
  /// exceeds L (the caller should raise the budget or add thresholds).
  StatusOr<CalibrationResult> Calibrate(const Dataset& dataset) const;

  const FaeConfig& config() const { return config_; }

 private:
  FaeConfig config_;
};

/// Bytes of all de-facto-hot small tables (< large_table_bytes) of
/// `schema` — they ride along with every threshold's hot slice.
uint64_t SmallTableBytes(const DatasetSchema& schema,
                         uint64_t large_table_bytes);

}  // namespace fae

#endif  // FAE_CORE_CALIBRATOR_H_
