#ifndef FAE_CORE_EMBEDDING_LOGGER_H_
#define FAE_CORE_EMBEDDING_LOGGER_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "stats/access_profile.h"

namespace fae {

/// The paper's Embedding Logger (§III-A2): replays the sampled sparse
/// inputs against the embedding tables and records per-entry access
/// counts, producing the sampled access profile the Rand-Em Box and the
/// Embedding Classifier consume.
class EmbeddingLogger {
 public:
  struct Result {
    AccessProfile profile;
    /// Inputs profiled (|sampled S_I|).
    size_t num_inputs = 0;
    /// Total embedding lookups replayed.
    uint64_t num_lookups = 0;
    /// Wall time of the profiling pass (Fig 8's metric).
    double seconds = 0.0;
  };

  /// Profiles the samples at `sample_ids`.
  static Result Profile(const Dataset& dataset,
                        const std::vector<uint64_t>& sample_ids);
};

}  // namespace fae

#endif  // FAE_CORE_EMBEDDING_LOGGER_H_
