#include "core/fae_pipeline.h"

#include "core/fae_format.h"
#include "util/logging.h"

namespace fae {

StatusOr<FaePlan> FaePipeline::Prepare(
    const Dataset& dataset, const std::vector<uint64_t>& train_ids) const {
  Calibrator calibrator(config_);
  FAE_ASSIGN_OR_RETURN(CalibrationResult calibration,
                       calibrator.Calibrate(dataset));

  FaePlan plan;
  plan.threshold = calibration.threshold;
  plan.h_zt = calibration.h_zt;
  plan.hot_set =
      EmbeddingClassifier::Classify(calibration.profile, dataset.schema(),
                                    calibration.h_zt,
                                    config_.large_table_bytes);
  plan.hot_bytes = plan.hot_set.HotBytes(dataset.schema().embedding_dim);
  plan.hot_access_share = plan.hot_set.HotAccessShare(calibration.profile);

  InputProcessor processor(config_.num_threads);
  plan.inputs = processor.Classify(dataset, plan.hot_set, train_ids);
  plan.calibration = std::move(calibration);
  return plan;
}

StatusOr<FaePlan> FaePipeline::PrepareCached(
    const Dataset& dataset, const std::vector<uint64_t>& train_ids,
    const std::string& cache_path) const {
  StatusOr<FaePreprocessed> cached = FaeFormat::Load(cache_path, dataset);
  if (cached.ok()) {
    FaePlan plan;
    plan.threshold = cached->threshold;
    plan.h_zt = cached->h_zt;
    plan.hot_set = std::move(cached->hot_set);
    plan.hot_bytes = plan.hot_set.HotBytes(dataset.schema().embedding_dim);
    plan.inputs.hot_ids = std::move(cached->hot_ids);
    plan.inputs.cold_ids = std::move(cached->cold_ids);
    plan.from_cache = true;
    return plan;
  }
  if (cached.status().code() != StatusCode::kNotFound) {
    FAE_LOG(Warning) << "ignoring unusable FAE cache " << cache_path << ": "
                     << cached.status().ToString();
  }

  FAE_ASSIGN_OR_RETURN(FaePlan plan, Prepare(dataset, train_ids));

  FaePreprocessed out;
  out.fingerprint = FaeFormat::Fingerprint(dataset);
  out.threshold = plan.threshold;
  out.h_zt = plan.h_zt;
  out.hot_set = plan.hot_set;
  out.hot_ids = plan.inputs.hot_ids;
  out.cold_ids = plan.inputs.cold_ids;
  const Status save_status = FaeFormat::Save(cache_path, out);
  if (!save_status.ok()) {
    FAE_LOG(Warning) << "could not write FAE cache " << cache_path << ": "
                     << save_status.ToString();
  }
  return plan;
}

FaePlan DegradePlanToBudget(const Dataset& dataset, const FaePlan& plan,
                            uint64_t budget_bytes, size_t num_threads) {
  FaePlan out = plan;
  const size_t dim = dataset.schema().embedding_dim;
  out.demoted_rows = out.hot_set.DemoteToBudget(dim, budget_bytes);
  out.hot_bytes = out.hot_set.HotBytes(dim);
  out.degraded = true;
  if (out.demoted_rows == 0) return out;

  // Inputs classified hot against the original set may now touch a demoted
  // row; re-run the classification over just those inputs and move the
  // casualties to the cold list (relative order within each class is
  // preserved, keeping the run deterministic).
  InputProcessor processor(num_threads);
  ProcessedInputs reclassified =
      processor.Classify(dataset, out.hot_set, plan.inputs.hot_ids);
  out.fallback_inputs = reclassified.cold_ids.size();
  out.inputs.hot_ids = std::move(reclassified.hot_ids);
  out.inputs.cold_ids = plan.inputs.cold_ids;
  out.inputs.cold_ids.insert(out.inputs.cold_ids.end(),
                             reclassified.cold_ids.begin(),
                             reclassified.cold_ids.end());
  FAE_LOG(Warning) << "hot slice exceeded the GPU budget; demoted "
                   << out.demoted_rows << " rows and moved "
                   << out.fallback_inputs
                   << " inputs to the cold path (degraded mode)";
  return out;
}

}  // namespace fae
