#ifndef FAE_CORE_SHUFFLE_SCHEDULER_H_
#define FAE_CORE_SHUFFLE_SCHEDULER_H_

#include <cstddef>
#include <optional>

#include "core/fae_config.h"

namespace fae {

/// The paper's Shuffle Scheduler (§III-C, Eq 7): decides the runtime
/// interleaving of cold and hot mini-batches.
///
/// The rate r is the percentage of each class issued per schedule chunk:
/// R(100) runs all cold batches then all hot; R(1) alternates after every
/// ~1% slice. Scheduling always *starts with cold* inputs ("the scheduler
/// always begins with training on cold inputs"). After each chunk the
/// caller reports the test loss:
///   - loss increased            -> r halves (more shuffling), floor R(1);
///   - loss decreased u=4 times  -> r doubles (less sync), cap R(100);
///   - otherwise                 -> r unchanged.
class ShuffleScheduler {
 public:
  struct Chunk {
    bool hot = false;
    /// Index of the first batch of this chunk within its class's list.
    size_t begin = 0;
    size_t count = 0;
  };

  /// Complete adaptive + positional state, capturable at chunk boundaries
  /// for crash-safe checkpoint/resume: restoring it continues the schedule
  /// (including Eq 7's loss history and the adapted rate) exactly where it
  /// was captured — a naive restart would silently reset `r`.
  struct State {
    double rate = 0.0;
    uint64_t issued_cold = 0;
    uint64_t issued_hot = 0;
    bool next_is_hot = false;
    bool any_issued = false;
    bool last_was_hot = false;
    uint64_t transitions = 0;
    bool has_prev_loss = false;
    double prev_loss = 0.0;
    int32_t consecutive_decreases = 0;
  };

  ShuffleScheduler(size_t num_cold, size_t num_hot, const FaeConfig& config);

  State state() const;
  void Restore(const State& state);

  /// Next chunk to execute, or nullopt when every batch was issued.
  std::optional<Chunk> Next();

  /// Feedback after finishing a chunk (Eq 7's Tst_L(i)).
  void ReportTestLoss(double loss);

  /// Starts a fresh epoch over the same batch counts; the adapted rate is
  /// retained across epochs.
  void ResetEpoch();

  double rate() const { return rate_; }
  /// Completed hot<->cold switches so far (each costs one embedding sync).
  size_t transitions() const { return transitions_; }

 private:
  size_t ChunkSize(size_t total) const;

  size_t num_cold_;
  size_t num_hot_;
  double min_rate_;
  double max_rate_;
  int patience_;

  double rate_;
  size_t issued_cold_ = 0;
  size_t issued_hot_ = 0;
  bool next_is_hot_ = false;  // start with cold
  bool any_issued_ = false;
  bool last_was_hot_ = false;
  size_t transitions_ = 0;

  bool has_prev_loss_ = false;
  double prev_loss_ = 0.0;
  int consecutive_decreases_ = 0;
};

}  // namespace fae

#endif  // FAE_CORE_SHUFFLE_SCHEDULER_H_
