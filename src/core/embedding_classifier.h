#ifndef FAE_CORE_EMBEDDING_CLASSIFIER_H_
#define FAE_CORE_EMBEDDING_CLASSIFIER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "data/schema.h"
#include "stats/access_profile.h"

namespace fae {

/// The hot/cold partition of every embedding table — the "Hot-Embedding
/// Bag" the paper ships to each GPU (§III-B).
///
/// Small tables (< large_table_bytes) are entirely hot. For large tables a
/// byte-mask gives O(1) membership tests during input classification.
class HotSet {
 public:
  HotSet() = default;

  bool IsHot(size_t table, uint64_t row) const {
    return all_hot_[table] != 0 || mask_[table][row] != 0;
  }

  /// Number of hot rows of `table`.
  uint64_t HotCount(size_t table) const { return hot_counts_[table]; }

  /// Sorted hot row ids of `table` (materialized; for small all-hot tables
  /// this is every row).
  std::vector<uint32_t> HotRows(size_t table) const;

  size_t num_tables() const { return mask_.size(); }
  bool table_all_hot(size_t table) const { return all_hot_[table] != 0; }

  /// The table's byte-mask (empty for all-hot tables). Streaming passes
  /// hoist this once per table instead of paying IsHot's per-lookup
  /// double indirection.
  std::span<const uint8_t> mask(size_t table) const { return mask_[table]; }

  /// Bytes of the hot slice given the embedding dim (what the replicator
  /// will allocate per GPU).
  uint64_t HotBytes(size_t embedding_dim) const;

  /// Fraction of `profile`'s accesses that fall on hot entries — the
  /// paper's "hot indices account for 75% to 92% of the total accesses".
  double HotAccessShare(const AccessProfile& profile) const;

  /// Graceful degradation: demotes hot rows until the slice fits
  /// `budget_bytes`, starting with the table holding the most hot rows and
  /// clearing from the highest row id downward (the synthetic and Criteo
  /// popularity orders put rare entries at high ids, so the least-popular
  /// hot rows go first). All-hot small tables are converted to masked
  /// tables when they must shed rows. Returns the number of rows demoted.
  uint64_t DemoteToBudget(size_t embedding_dim, uint64_t budget_bytes);

 private:
  friend class EmbeddingClassifier;
  friend class FaeFormat;

  std::vector<std::vector<uint8_t>> mask_;  // empty for all-hot tables
  std::vector<uint8_t> all_hot_;
  std::vector<uint64_t> hot_counts_;
  std::vector<uint64_t> table_rows_;
};

/// The paper's Embedding Classifier (§III-B): one pass over each table's
/// (sampled) access counts tagging entries with count >= H_zt as hot.
class EmbeddingClassifier {
 public:
  /// `h_zt` is the Calibrator's absolute cutoff (Eq 1). Tables smaller
  /// than `large_table_bytes` are marked entirely hot.
  static HotSet Classify(const AccessProfile& profile,
                         const DatasetSchema& schema, uint64_t h_zt,
                         uint64_t large_table_bytes);
};

}  // namespace fae

#endif  // FAE_CORE_EMBEDDING_CLASSIFIER_H_
