#include "core/embedding_logger.h"

#include "util/stopwatch.h"

namespace fae {

EmbeddingLogger::Result EmbeddingLogger::Profile(
    const Dataset& dataset, const std::vector<uint64_t>& sample_ids) {
  Stopwatch watch;
  Result result{AccessProfile(dataset.schema().table_rows)};
  // Stream the flat index buffers columnar: one pass per table over its
  // contiguous CSR arrays, instead of hopping every table's buffers per
  // sample. Record() only increments counters, so the per-table order
  // produces exactly the per-sample-order profile.
  const FlatDataset& flat = dataset.flat();
  const size_t num_tables = flat.schema().num_tables();
  const size_t n = sample_ids.size();
  const bool full_range = [&] {
    if (n != flat.size()) return false;
    for (size_t i = 0; i < n; ++i) {
      if (sample_ids[i] != i) return false;
    }
    return true;
  }();
  for (size_t t = 0; t < num_tables; ++t) {
    if (full_range) {
      // Whole-dataset profile: the table's index buffer is scanned start
      // to end — pure sequential streaming.
      const std::span<const uint32_t> rows = flat.indices(t);
      for (uint32_t row : rows) {
        result.profile.Record(t, row);
      }
      result.num_lookups += rows.size();
    } else {
      for (uint64_t id : sample_ids) {
        const std::span<const uint32_t> rows = flat.lookups(t, id);
        for (uint32_t row : rows) {
          result.profile.Record(t, row);
        }
        result.num_lookups += rows.size();
      }
    }
  }
  result.num_inputs = sample_ids.size();
  result.seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace fae
