#include "core/embedding_logger.h"

#include "util/stopwatch.h"

namespace fae {

EmbeddingLogger::Result EmbeddingLogger::Profile(
    const Dataset& dataset, const std::vector<uint64_t>& sample_ids) {
  Stopwatch watch;
  Result result{AccessProfile(dataset.schema().table_rows)};
  for (uint64_t id : sample_ids) {
    const SparseInput& s = dataset.sample(id);
    for (size_t t = 0; t < s.indices.size(); ++t) {
      for (uint32_t row : s.indices[t]) {
        result.profile.Record(t, row);
        ++result.num_lookups;
      }
    }
  }
  result.num_inputs = sample_ids.size();
  result.seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace fae
