#include "core/embedding_replicator.h"

#include "util/logging.h"
#include "util/string_util.h"

namespace fae {

EmbeddingReplicator::EmbeddingReplicator(
    const std::vector<EmbeddingTable>& masters, const HotSet& hot_set) {
  FAE_CHECK_EQ(masters.size(), hot_set.num_tables());
  const size_t n = masters.size();
  hot_rows_.resize(n);
  slot_of_.resize(n);
  replicas_.reserve(n);
  for (size_t t = 0; t < n; ++t) {
    hot_rows_[t] = hot_set.HotRows(t);
    slot_of_[t].assign(masters[t].rows(), -1);
    for (size_t slot = 0; slot < hot_rows_[t].size(); ++slot) {
      slot_of_[t][hot_rows_[t][slot]] = static_cast<int64_t>(slot);
    }
    replicas_.emplace_back(hot_rows_[t].size(), masters[t].dim());
    hot_bytes_ += replicas_.back().SizeBytes();
  }
}

std::vector<EmbeddingTable*> EmbeddingReplicator::replica_tables() {
  std::vector<EmbeddingTable*> out;
  out.reserve(replicas_.size());
  for (EmbeddingTable& t : replicas_) out.push_back(&t);
  return out;
}

int64_t EmbeddingReplicator::SlotOf(size_t table, uint64_t row) const {
  FAE_CHECK_LT(table, slot_of_.size());
  FAE_CHECK_LT(row, slot_of_[table].size());
  return slot_of_[table][row];
}

StatusOr<MiniBatch> EmbeddingReplicator::TranslateBatch(
    const MiniBatch& batch) const {
  MiniBatch out = batch;
  for (size_t t = 0; t < out.indices.size(); ++t) {
    for (uint32_t& idx : out.indices[t]) {
      const int64_t slot = SlotOf(t, idx);
      if (slot < 0) {
        return Status::InvalidArgument(StrFormat(
            "cold lookup (table %zu, row %u) in a batch marked hot", t,
            idx));
      }
      idx = static_cast<uint32_t>(slot);
    }
  }
  return out;
}

StatusOr<FlatDataset> EmbeddingReplicator::TranslateFlat(
    const FlatDataset& flat) const {
  FlatDataset out = flat;
  for (size_t t = 0; t < slot_of_.size(); ++t) {
    for (uint32_t& idx : out.mutable_indices(t)) {
      const int64_t slot = SlotOf(t, idx);
      if (slot < 0) {
        return Status::InvalidArgument(StrFormat(
            "cold lookup (table %zu, row %u) in a dataset marked hot", t,
            idx));
      }
      idx = static_cast<uint32_t>(slot);
    }
  }
  return out;
}

void EmbeddingReplicator::PullFromMasters(
    const std::vector<EmbeddingTable>& masters) {
  for (size_t t = 0; t < replicas_.size(); ++t) {
    for (size_t slot = 0; slot < hot_rows_[t].size(); ++slot) {
      replicas_[t].CopyRowFrom(masters[t], hot_rows_[t][slot], slot);
    }
  }
}

void EmbeddingReplicator::PushToMasters(
    std::vector<EmbeddingTable>& masters) const {
  for (size_t t = 0; t < replicas_.size(); ++t) {
    for (size_t slot = 0; slot < hot_rows_[t].size(); ++slot) {
      masters[t].CopyRowFrom(replicas_[t], slot, hot_rows_[t][slot]);
    }
  }
}

void EmbeddingReplicator::ScrambleReplicas(uint64_t seed) {
  SplitMix64 noise(seed);
  for (EmbeddingTable& replica : replicas_) {
    for (float& v : replica.raw()) {
      // Arbitrary garbage in roughly the weights' magnitude, so a missed
      // detection would visibly wreck training rather than hide.
      v = static_cast<float>(static_cast<int64_t>(noise.Next() % 2001) -
                             1000) /
          1000.0f;
    }
  }
}

void EmbeddingReplicator::PullRowsFromMasters(
    const std::vector<EmbeddingTable>& masters,
    const std::vector<std::vector<uint32_t>>& rows) {
  FAE_CHECK_EQ(rows.size(), replicas_.size());
  for (size_t t = 0; t < replicas_.size(); ++t) {
    for (uint32_t row : rows[t]) {
      const int64_t slot = SlotOf(t, row);
      FAE_CHECK_GE(slot, 0) << "delta sync of a cold row";
      replicas_[t].CopyRowFrom(masters[t], row,
                               static_cast<uint64_t>(slot));
    }
  }
}

void EmbeddingReplicator::PushRowsToMasters(
    std::vector<EmbeddingTable>& masters,
    const std::vector<std::vector<uint32_t>>& rows) const {
  FAE_CHECK_EQ(rows.size(), replicas_.size());
  for (size_t t = 0; t < replicas_.size(); ++t) {
    for (uint32_t row : rows[t]) {
      const int64_t slot = SlotOf(t, row);
      FAE_CHECK_GE(slot, 0) << "delta sync of a cold row";
      masters[t].CopyRowFrom(replicas_[t], static_cast<uint64_t>(slot), row);
    }
  }
}

}  // namespace fae
