#ifndef FAE_CORE_INPUT_PROCESSOR_H_
#define FAE_CORE_INPUT_PROCESSOR_H_

#include <cstdint>
#include <vector>

#include "core/embedding_classifier.h"
#include "data/dataset.h"
#include "data/minibatch.h"

namespace fae {

/// Hot/cold split of a dataset's training inputs.
struct ProcessedInputs {
  /// Sample ids whose *every* embedding lookup hits a hot entry.
  std::vector<uint64_t> hot_ids;
  /// Everything else.
  std::vector<uint64_t> cold_ids;
  /// Wall time of the classification pass (Fig 11's metric).
  double seconds = 0.0;

  double HotFraction() const {
    const size_t n = hot_ids.size() + cold_ids.size();
    return n == 0 ? 0.0
                  : static_cast<double>(hot_ids.size()) /
                        static_cast<double>(n);
  }
};

/// The paper's Input Processor (§III-B): classifies each sparse input as
/// hot iff all of its lookups are hot (one parallelized pass over S_I), and
/// packs the two classes into *pure* hot/cold mini-batches so a hot batch
/// never stalls on a CPU-resident embedding (§II-B(1), Fig 4).
class InputProcessor {
 public:
  explicit InputProcessor(size_t num_threads) : num_threads_(num_threads) {}

  /// Classifies the samples at `which` (typically the training split).
  /// Relative order within each class is preserved.
  ProcessedInputs Classify(const Dataset& dataset, const HotSet& hot_set,
                           const std::vector<uint64_t>& which) const;

  /// Shuffles each class (seeded) and packs pure mini-batches.
  struct PackedBatches {
    std::vector<MiniBatch> hot;
    std::vector<MiniBatch> cold;
  };
  static PackedBatches Pack(const Dataset& dataset,
                            const ProcessedInputs& inputs, size_t batch_size,
                            uint64_t seed);

  /// Flat-layout Pack: identical class shuffles (same seed, same RNG call
  /// sequence), but each class becomes one gathered FlatDataset that pure
  /// batches can view zero-copy (see MakeBatchViews) instead of a vector
  /// of copied MiniBatches.
  struct PackedFlat {
    FlatDataset hot;
    FlatDataset cold;
  };
  static PackedFlat PackFlat(const Dataset& dataset,
                             const ProcessedInputs& inputs, uint64_t seed);

 private:
  size_t num_threads_;
};

}  // namespace fae

#endif  // FAE_CORE_INPUT_PROCESSOR_H_
