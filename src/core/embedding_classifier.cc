#include "core/embedding_classifier.h"

#include <algorithm>

#include "util/logging.h"

namespace fae {

std::vector<uint32_t> HotSet::HotRows(size_t table) const {
  std::vector<uint32_t> rows;
  rows.reserve(hot_counts_[table]);
  if (all_hot_[table]) {
    for (uint64_t r = 0; r < table_rows_[table]; ++r) {
      rows.push_back(static_cast<uint32_t>(r));
    }
    return rows;
  }
  const auto& mask = mask_[table];
  for (uint64_t r = 0; r < mask.size(); ++r) {
    if (mask[r]) rows.push_back(static_cast<uint32_t>(r));
  }
  return rows;
}

uint64_t HotSet::HotBytes(size_t embedding_dim) const {
  uint64_t rows = 0;
  for (uint64_t c : hot_counts_) rows += c;
  return rows * embedding_dim * sizeof(float);
}

double HotSet::HotAccessShare(const AccessProfile& profile) const {
  FAE_CHECK_EQ(profile.num_tables(), num_tables());
  uint64_t hot = 0;
  uint64_t total = 0;
  for (size_t t = 0; t < num_tables(); ++t) {
    const auto& counts = profile.counts(t);
    for (uint64_t r = 0; r < counts.size(); ++r) {
      total += counts[r];
      if (IsHot(t, r)) hot += counts[r];
    }
  }
  return total == 0 ? 0.0
                    : static_cast<double>(hot) / static_cast<double>(total);
}

uint64_t HotSet::DemoteToBudget(size_t embedding_dim, uint64_t budget_bytes) {
  const uint64_t row_bytes = embedding_dim * sizeof(float);
  FAE_CHECK_GT(row_bytes, 0u);
  uint64_t demoted = 0;
  while (HotBytes(embedding_dim) > budget_bytes) {
    // Shed from the table with the most hot rows; ties resolve to the
    // lowest table index, keeping the demotion order deterministic.
    size_t victim = 0;
    for (size_t t = 1; t < num_tables(); ++t) {
      if (hot_counts_[t] > hot_counts_[victim]) victim = t;
    }
    if (hot_counts_[victim] == 0) break;  // nothing left to demote
    if (all_hot_[victim]) {
      mask_[victim].assign(table_rows_[victim], 1);
      all_hot_[victim] = 0;
    }
    const uint64_t excess =
        HotBytes(embedding_dim) - budget_bytes;
    uint64_t take = std::min<uint64_t>(hot_counts_[victim],
                                       (excess + row_bytes - 1) / row_bytes);
    auto& mask = mask_[victim];
    for (uint64_t r = mask.size(); r > 0 && take > 0; --r) {
      if (mask[r - 1]) {
        mask[r - 1] = 0;
        --take;
        --hot_counts_[victim];
        ++demoted;
      }
    }
  }
  return demoted;
}

HotSet EmbeddingClassifier::Classify(const AccessProfile& profile,
                                     const DatasetSchema& schema,
                                     uint64_t h_zt,
                                     uint64_t large_table_bytes) {
  FAE_CHECK_EQ(profile.num_tables(), schema.num_tables());
  HotSet hot;
  const size_t n = schema.num_tables();
  hot.mask_.resize(n);
  hot.all_hot_.assign(n, 0);
  hot.hot_counts_.assign(n, 0);
  hot.table_rows_ = schema.table_rows;
  for (size_t t = 0; t < n; ++t) {
    if (schema.TableBytes(t) < large_table_bytes) {
      hot.all_hot_[t] = 1;
      hot.hot_counts_[t] = schema.table_rows[t];
      continue;
    }
    const auto& counts = profile.counts(t);
    auto& mask = hot.mask_[t];
    mask.assign(counts.size(), 0);
    uint64_t hot_count = 0;
    for (uint64_t r = 0; r < counts.size(); ++r) {
      if (counts[r] >= h_zt) {
        mask[r] = 1;
        ++hot_count;
      }
    }
    hot.hot_counts_[t] = hot_count;
  }
  return hot;
}

}  // namespace fae
