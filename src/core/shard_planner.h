#ifndef FAE_CORE_SHARD_PLANNER_H_
#define FAE_CORE_SHARD_PLANNER_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/embedding_classifier.h"
#include "sim/partition.h"
#include "stats/access_profile.h"
#include "util/status.h"
#include "util/statusor.h"

namespace fae {

/// Statistical multi-GPU placement of the hot embedding slice, in the
/// RecShard mold: the same per-row access-frequency CDFs Rand-Em consumes
/// decide which rows every device should hold (replicate the head, shard
/// the warm body by expected traffic) instead of hashing or whole-table
/// LPT. Cold rows are not placed — they stay CPU-resident behind the cold
/// store, exactly as in replicate mode.
struct ShardPlannerOptions {
  int num_devices = 1;
  /// Fraction of the masked tables' hot access mass to replicate on every
  /// device. Replicated lookups are always local (no all-to-all); the cost
  /// is their gradient rows riding the all-reduce, so most of the head is
  /// worth replicating but the tail is not.
  double replicate_mass_fraction = 0.75;
  /// Hard cap on replicated rows' bytes per device (0 = no cap). The hot
  /// slice already fits the calibrated GPU budget fully replicated, so the
  /// cap only matters for callers planning against a tighter budget.
  uint64_t replicate_byte_cap = 0;
  size_t embedding_dim = 0;
};

class ShardPlanner {
 public:
  /// CDF-driven plan: small all-hot tables and the globally hottest masked
  /// rows (by access count, deterministic (table, row) tie-break) are
  /// replicated until `replicate_mass_fraction` of the masked hot mass is
  /// covered; each table's remaining warm rows are cut into num_devices
  /// contiguous id-order ranges of equal access mass. Requires a profile
  /// with per-row counts (a fresh calibration; cached plans carry none).
  static StatusOr<ShardedPlacement> PlanStatistical(
      const AccessProfile& profile, const HotSet& hot_set,
      const ShardPlannerOptions& options);

  /// Whole-table comparator: tables LPT-partitioned by expected hot lookup
  /// mass, nothing replicated. What a placement-unaware trainer would do,
  /// and what the statistical plan is benched against.
  static StatusOr<ShardedPlacement> PlanLpt(const AccessProfile& profile,
                                            const HotSet& hot_set,
                                            int num_devices);

  /// FaeFormat-style container (magic/version/CRC-32/trailer, atomic
  /// temp+rename write, integrity verified before parsing).
  static Status Save(const std::string& path, const ShardedPlacement& p);
  static StatusOr<ShardedPlacement> Load(const std::string& path);
};

}  // namespace fae

#endif  // FAE_CORE_SHARD_PLANNER_H_
