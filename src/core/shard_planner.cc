#include "core/shard_planner.h"

#include <algorithm>
#include <numeric>
#include <tuple>

#include "util/file_io.h"
#include "util/string_util.h"

namespace fae {
namespace {

constexpr uint32_t kMagic = 0x53454146;  // "FAES"
constexpr uint32_t kVersion = 1;
constexpr uint32_t kTrailer = 0x444e4546;  // "FEND"

Status CheckShapes(const AccessProfile& profile, const HotSet& hot_set,
                   int num_devices) {
  if (num_devices < 1) {
    return Status::InvalidArgument("sharding needs num_devices >= 1");
  }
  if (profile.num_tables() == 0) {
    return Status::InvalidArgument(
        "sharding needs a calibration access profile with per-row counts "
        "(cached plans carry none — re-run calibration)");
  }
  if (profile.num_tables() != hot_set.num_tables()) {
    return Status::InvalidArgument(
        StrFormat("profile has %zu tables but the hot set has %zu",
                  profile.num_tables(), hot_set.num_tables()));
  }
  return Status::OK();
}

/// Cuts `table`'s warm rows (hot, not replicated) into num_devices
/// contiguous id-order ranges of ~equal mass, appending each range's mass
/// and row count to the device accumulators. Zero-mass warm sets fall back
/// to equal row-count cuts so every warm row still gets exactly one owner.
void CutWarmRows(const std::vector<uint64_t>& counts,
                 const std::vector<uint8_t>& warm, ShardedPlacement* p,
                 size_t table) {
  const int n = p->num_devices;
  uint64_t warm_mass = 0;
  uint64_t warm_rows = 0;
  for (size_t r = 0; r < warm.size(); ++r) {
    if (!warm[r]) continue;
    warm_mass += counts[r];
    ++warm_rows;
  }
  if (warm_rows == 0) return;

  std::vector<uint32_t>& c = p->cuts[table];
  c.assign(n + 1, 0);
  c[n] = static_cast<uint32_t>(warm.size());
  const bool by_rows = warm_mass == 0;
  const uint64_t total = by_rows ? warm_rows : warm_mass;
  uint64_t cum = 0;
  int d = 0;
  uint64_t dev_mass = 0;
  uint64_t dev_rows = 0;
  for (size_t r = 0; r < warm.size(); ++r) {
    if (warm[r]) {
      cum += by_rows ? 1 : counts[r];
      dev_mass += counts[r];
      ++dev_rows;
    }
    // Close device d once its cumulative target is met; remaining devices
    // cover later (rarer) id ranges. 128-bit to dodge overflow on huge
    // profiles.
    while (d < n - 1 &&
           static_cast<unsigned __int128>(cum) * n >=
               static_cast<unsigned __int128>(total) * (d + 1)) {
      c[d + 1] = static_cast<uint32_t>(r + 1);
      p->device_mass[d] += dev_mass;
      p->device_rows[d] += dev_rows;
      dev_mass = 0;
      dev_rows = 0;
      ++d;
    }
  }
  for (int rest = d + 1; rest < n; ++rest) {
    c[rest] = static_cast<uint32_t>(warm.size());
  }
  p->device_mass[d] += dev_mass;
  p->device_rows[d] += dev_rows;
}

}  // namespace

StatusOr<ShardedPlacement> ShardPlanner::PlanStatistical(
    const AccessProfile& profile, const HotSet& hot_set,
    const ShardPlannerOptions& options) {
  FAE_RETURN_IF_ERROR(CheckShapes(profile, hot_set, options.num_devices));
  const size_t num_tables = profile.num_tables();
  ShardedPlacement p;
  p.mode = ShardingMode::kStatistical;
  p.num_devices = options.num_devices;
  p.cuts.resize(num_tables);
  p.replicated.resize(num_tables);
  p.all_replicated.assign(num_tables, 0);
  p.device_mass.assign(options.num_devices, 0);
  p.device_rows.assign(options.num_devices, 0);

  // Small all-hot tables are replicated outright (they are de-facto hot,
  // §III-A1); masked tables contribute their hot rows as candidates.
  struct Candidate {
    uint64_t count;
    uint32_t table;
    uint32_t row;
  };
  std::vector<Candidate> candidates;
  uint64_t masked_hot_mass = 0;
  for (size_t t = 0; t < num_tables; ++t) {
    if (hot_set.table_all_hot(t)) {
      p.all_replicated[t] = 1;
      p.replicated_rows += profile.table_rows(t);
      p.replicated_mass += profile.table_total(t);
      continue;
    }
    const std::vector<uint64_t>& counts = profile.counts(t);
    const std::span<const uint8_t> mask = hot_set.mask(t);
    for (size_t r = 0; r < mask.size(); ++r) {
      if (!mask[r]) continue;
      candidates.push_back({counts[r], static_cast<uint32_t>(t),
                            static_cast<uint32_t>(r)});
      masked_hot_mass += counts[r];
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.count != b.count) return a.count > b.count;
              return std::tie(a.table, a.row) < std::tie(b.table, b.row);
            });

  const uint64_t row_bytes = options.embedding_dim * sizeof(float);
  const double target =
      std::clamp(options.replicate_mass_fraction, 0.0, 1.0) *
      static_cast<double>(masked_hot_mass);
  uint64_t replicated_masked_mass = 0;
  for (const Candidate& cand : candidates) {
    if (static_cast<double>(replicated_masked_mass) >= target) break;
    if (options.replicate_byte_cap > 0 &&
        (p.replicated_rows + 1) * row_bytes > options.replicate_byte_cap) {
      break;
    }
    std::vector<uint8_t>& mask = p.replicated[cand.table];
    if (mask.empty()) mask.assign(profile.table_rows(cand.table), 0);
    mask[cand.row] = 1;
    replicated_masked_mass += cand.count;
    p.replicated_mass += cand.count;
    ++p.replicated_rows;
  }

  for (size_t t = 0; t < num_tables; ++t) {
    if (p.all_replicated[t]) continue;
    const std::span<const uint8_t> hot = hot_set.mask(t);
    const std::vector<uint8_t>& rep = p.replicated[t];
    std::vector<uint8_t> warm(hot.begin(), hot.end());
    if (!rep.empty()) {
      for (size_t r = 0; r < warm.size(); ++r) {
        if (rep[r]) warm[r] = 0;
      }
    }
    CutWarmRows(profile.counts(t), warm, &p, t);
  }
  return p;
}

StatusOr<ShardedPlacement> ShardPlanner::PlanLpt(const AccessProfile& profile,
                                                 const HotSet& hot_set,
                                                 int num_devices) {
  FAE_RETURN_IF_ERROR(CheckShapes(profile, hot_set, num_devices));
  const size_t num_tables = profile.num_tables();
  ShardedPlacement p;
  p.mode = ShardingMode::kLpt;
  p.num_devices = num_devices;
  p.cuts.resize(num_tables);
  p.replicated.resize(num_tables);
  p.all_replicated.assign(num_tables, 0);
  p.device_mass.assign(num_devices, 0);
  p.device_rows.assign(num_devices, 0);

  // Weight = expected lookup mass on the table's hot rows; sharding by
  // bytes would balance capacity but leave traffic wherever the skew put
  // it (the exact failure mode the statistical planner exists to fix).
  std::vector<uint64_t> weights(num_tables, 0);
  std::vector<uint64_t> hot_rows(num_tables, 0);
  for (size_t t = 0; t < num_tables; ++t) {
    if (hot_set.table_all_hot(t)) {
      weights[t] = profile.table_total(t);
      hot_rows[t] = profile.table_rows(t);
      continue;
    }
    const std::vector<uint64_t>& counts = profile.counts(t);
    const std::span<const uint8_t> mask = hot_set.mask(t);
    for (size_t r = 0; r < mask.size(); ++r) {
      if (!mask[r]) continue;
      weights[t] += counts[r];
      ++hot_rows[t];
    }
  }
  const Partition part = PartitionLpt(weights, num_devices);
  for (size_t t = 0; t < num_tables; ++t) {
    if (hot_rows[t] == 0) continue;  // fully cold: nothing to place
    const int d = part.bin_of[t];
    std::vector<uint32_t>& c = p.cuts[t];
    c.assign(num_devices + 1, 0);
    const uint32_t rows = static_cast<uint32_t>(profile.table_rows(t));
    for (int i = d + 1; i <= num_devices; ++i) c[i] = rows;
    p.device_mass[d] += weights[t];
    p.device_rows[d] += hot_rows[t];
  }
  return p;
}

Status ShardPlanner::Save(const std::string& path,
                          const ShardedPlacement& p) {
  FAE_ASSIGN_OR_RETURN(BinaryWriter w, BinaryWriter::OpenAtomic(path));
  FAE_RETURN_IF_ERROR(w.WriteU32(kMagic));
  FAE_RETURN_IF_ERROR(w.WriteU32(kVersion));
  FAE_RETURN_IF_ERROR(w.WriteU32(static_cast<uint32_t>(p.mode)));
  FAE_RETURN_IF_ERROR(w.WriteU32(static_cast<uint32_t>(p.num_devices)));
  FAE_RETURN_IF_ERROR(w.WriteU64(p.num_tables()));
  for (size_t t = 0; t < p.num_tables(); ++t) {
    FAE_RETURN_IF_ERROR(w.WriteU32(p.all_replicated[t]));
    FAE_RETURN_IF_ERROR(w.WriteVector(p.cuts[t]));
    FAE_RETURN_IF_ERROR(w.WriteVector(p.replicated[t]));
  }
  FAE_RETURN_IF_ERROR(w.WriteVector(p.device_mass));
  FAE_RETURN_IF_ERROR(w.WriteVector(p.device_rows));
  FAE_RETURN_IF_ERROR(w.WriteU64(p.replicated_mass));
  FAE_RETURN_IF_ERROR(w.WriteU64(p.replicated_rows));
  FAE_RETURN_IF_ERROR(w.WriteU32(kTrailer));
  FAE_RETURN_IF_ERROR(w.WriteU32(w.crc()));
  return w.Commit();
}

StatusOr<ShardedPlacement> ShardPlanner::Load(const std::string& path) {
  FAE_RETURN_IF_ERROR(VerifyFileIntegrity(path));
  FAE_ASSIGN_OR_RETURN(BinaryReader r, BinaryReader::Open(path));
  FAE_ASSIGN_OR_RETURN(uint32_t magic, r.ReadU32());
  if (magic != kMagic) {
    return Status::DataLoss("not a sharded placement file: " + path);
  }
  FAE_ASSIGN_OR_RETURN(uint32_t version, r.ReadU32());
  if (version != kVersion) {
    return Status::DataLoss(
        StrFormat("unsupported placement version %u", version));
  }
  ShardedPlacement p;
  FAE_ASSIGN_OR_RETURN(uint32_t mode, r.ReadU32());
  if (mode > static_cast<uint32_t>(ShardingMode::kStatistical)) {
    return Status::DataLoss("unknown sharding mode in placement file");
  }
  p.mode = static_cast<ShardingMode>(mode);
  FAE_ASSIGN_OR_RETURN(uint32_t devices, r.ReadU32());
  if (devices < 1) {
    return Status::DataLoss("placement file has no devices");
  }
  p.num_devices = static_cast<int>(devices);
  FAE_ASSIGN_OR_RETURN(uint64_t num_tables, r.ReadU64());
  p.cuts.resize(num_tables);
  p.replicated.resize(num_tables);
  p.all_replicated.resize(num_tables);
  for (size_t t = 0; t < num_tables; ++t) {
    FAE_ASSIGN_OR_RETURN(uint32_t all_rep, r.ReadU32());
    p.all_replicated[t] = static_cast<uint8_t>(all_rep);
    FAE_ASSIGN_OR_RETURN(p.cuts[t], r.ReadVector<uint32_t>());
    FAE_ASSIGN_OR_RETURN(p.replicated[t], r.ReadVector<uint8_t>());
    if (!p.cuts[t].empty()) {
      if (p.cuts[t].size() != static_cast<size_t>(p.num_devices) + 1 ||
          !std::is_sorted(p.cuts[t].begin(), p.cuts[t].end())) {
        return Status::DataLoss("malformed shard cuts in placement file");
      }
    }
  }
  FAE_ASSIGN_OR_RETURN(p.device_mass, r.ReadVector<uint64_t>());
  FAE_ASSIGN_OR_RETURN(p.device_rows, r.ReadVector<uint64_t>());
  if (p.device_mass.size() != static_cast<size_t>(p.num_devices) ||
      p.device_rows.size() != static_cast<size_t>(p.num_devices)) {
    return Status::DataLoss("device accounting mismatch in placement file");
  }
  FAE_ASSIGN_OR_RETURN(p.replicated_mass, r.ReadU64());
  FAE_ASSIGN_OR_RETURN(p.replicated_rows, r.ReadU64());
  FAE_ASSIGN_OR_RETURN(uint32_t trailer, r.ReadU32());
  if (trailer != kTrailer) {
    return Status::DataLoss("placement file trailer missing (truncated?)");
  }
  return p;
}

}  // namespace fae
