#ifndef FAE_CORE_EMBEDDING_REPLICATOR_H_
#define FAE_CORE_EMBEDDING_REPLICATOR_H_

#include <cstdint>
#include <vector>

#include "core/embedding_classifier.h"
#include "data/flat_dataset.h"
#include "data/minibatch.h"
#include "embedding/embedding_table.h"
#include "util/statusor.h"

namespace fae {

/// The paper's Embedding Replicator (§III): extracts the hot rows of every
/// table into compact replica tables that live on each GPU, and keeps them
/// coherent with the CPU master copy across hot/cold phase switches.
///
/// Synchronous data parallelism keeps all GPU replicas bit-identical, so
/// the simulation stores one replica standing for all of them; the cost
/// model charges the per-GPU broadcast separately.
class EmbeddingReplicator {
 public:
  /// Builds zero-filled replicas laid out as [hot rows of table t, in row
  /// order]; call PullFromMasters before training on them.
  EmbeddingReplicator(const std::vector<EmbeddingTable>& masters,
                      const HotSet& hot_set);

  /// Replica tables, one per master table (all-hot small tables replicate
  /// wholesale).
  std::vector<EmbeddingTable*> replica_tables();

  /// Rewrites a *hot* batch's indices from master coordinates to replica
  /// slots. InvalidArgument if any lookup is not hot (the input processor
  /// guarantees this never happens for batches it labeled hot).
  StatusOr<MiniBatch> TranslateBatch(const MiniBatch& batch) const;

  /// Flat-layout equivalent: one translated clone of an all-hot gathered
  /// dataset, produced once per hot phase so every hot batch view is
  /// already in replica coordinates (no per-batch translation copies).
  StatusOr<FlatDataset> TranslateFlat(const FlatDataset& flat) const;

  /// Replica slot of master row `row` in table `t`, or -1 when cold.
  int64_t SlotOf(size_t table, uint64_t row) const;

  /// Master row backing replica slot `slot` of table `t`.
  uint64_t RowOf(size_t table, uint64_t slot) const {
    return hot_rows_[table][slot];
  }

  /// Copies hot rows master -> replica (entering a hot phase, and the
  /// initial replication onto GPUs).
  void PullFromMasters(const std::vector<EmbeddingTable>& masters);

  /// Copies hot rows replica -> master (leaving a hot phase, so cold
  /// batches and evaluation see the hot updates).
  void PushToMasters(std::vector<EmbeddingTable>& masters) const;

  /// Delta sync: copies only the listed master rows (per table) from
  /// master to replica. Rows must be hot. Used by the dirty-row sync
  /// strategy, which ships just the entries updated since the last sync
  /// instead of the whole hot slice (an optimization over the paper's
  /// wholesale sync; see bench/abl_sync_strategy.cc).
  void PullRowsFromMasters(const std::vector<EmbeddingTable>& masters,
                           const std::vector<std::vector<uint32_t>>& rows);

  /// Delta sync in the other direction: replica -> master for the listed
  /// master rows.
  void PushRowsToMasters(std::vector<EmbeddingTable>& masters,
                         const std::vector<std::vector<uint32_t>>& rows) const;

  /// Simulates a corrupted hot-slice sync (fault injection): overwrites
  /// every replica entry with seed-derived noise. Recovery is a full
  /// PullFromMasters — the CPU master copy is always authoritative.
  void ScrambleReplicas(uint64_t seed);

  /// Bytes of one replica copy (the per-transition sync payload and the
  /// per-GPU memory footprint).
  uint64_t hot_bytes() const { return hot_bytes_; }

 private:
  std::vector<std::vector<uint32_t>> hot_rows_;   // slot -> master row
  std::vector<std::vector<int64_t>> slot_of_;     // master row -> slot / -1
  std::vector<EmbeddingTable> replicas_;
  uint64_t hot_bytes_ = 0;
};

}  // namespace fae

#endif  // FAE_CORE_EMBEDDING_REPLICATOR_H_
