#ifndef FAE_CORE_FAE_CONFIG_H_
#define FAE_CORE_FAE_CONFIG_H_

#include <cstdint>
#include <thread>
#include <vector>

#include "embedding/cold_precision.h"

namespace fae {

/// Knobs of the FAE framework's static (preprocessing) components,
/// defaulted to the paper's choices.
struct FaeConfig {
  /// Sparse Input Sampler rate x (§III-A1: "we iterate through x=5% of the
  /// entire dataset").
  double sample_rate = 0.05;

  /// GPU memory allocated to hot embeddings, L (§III-A3: "our experiments
  /// show that L=256MB suffices").
  uint64_t gpu_memory_budget = 256ULL << 20;

  /// Rand-Em Box parameters (§III-A3): n samples of m entries each with a
  /// t-interval at this confidence.
  size_t num_chunks = 35;        // n
  size_t chunk_len = 1024;       // m
  double confidence = 0.999;

  /// Tables below this size are de-facto hot (§III-A1: "any embedding
  /// table that is greater than or equal to 1MB to be large").
  uint64_t large_table_bytes = 1ULL << 20;

  /// Candidate access thresholds t (fractions of the sampled input count),
  /// swept from coarse to fine by the Statistical Optimizer. Must be
  /// strictly descending.
  std::vector<double> thresholds = {3e-2, 1e-2, 3e-3, 1e-3, 3e-4,
                                    1e-4, 3e-5, 1e-5, 3e-6, 1e-6};

  /// Shuffle Scheduler (§III-C / Eq 7).
  double initial_rate = 50.0;  // R(50): alternate cold and hot
  double min_rate = 1.0;       // R(1)
  double max_rate = 100.0;     // R(100)
  int loss_patience = 4;       // u

  /// Storage precision of cold rows on the CPU master. Anything narrower
  /// than fp32 shrinks the cold store, and the reclaimed host bytes are fed
  /// back into the threshold sweep as extra effective budget — the hot
  /// slice can grow beyond L by what the cold side gave up.
  ColdPrecision cold_precision = ColdPrecision::kFp32;

  uint64_t seed = 0x5eed;

  /// Worker threads for the Input Processor's parallel classification
  /// (§III-B; the paper uses a 16-core machine).
  size_t num_threads = std::thread::hardware_concurrency();
};

}  // namespace fae

#endif  // FAE_CORE_FAE_CONFIG_H_
