#include "core/input_processor.h"

#include <algorithm>

#include "util/random.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace fae {

ProcessedInputs InputProcessor::Classify(
    const Dataset& dataset, const HotSet& hot_set,
    const std::vector<uint64_t>& which) const {
  Stopwatch watch;
  ProcessedInputs out;
  std::vector<uint8_t> is_hot(which.size(), 0);

  // Streams the flat CSR buffers columnar: one pass per table over its
  // contiguous arrays (all-hot tables skipped outright — every lookup
  // passes), demoting a sample on its first cold lookup. The final
  // hot/cold verdict is an AND across tables, so the per-table order
  // produces exactly the per-sample-order classification.
  const FlatDataset& flat = dataset.flat();
  const size_t num_tables = flat.schema().num_tables();
  auto classify_range = [&](size_t begin, size_t end) {
    // Survivor-list sweep: each table pass walks only the samples every
    // earlier table kept fully hot, so a sample stops costing anything
    // after the pass that demotes it (the columnar analogue of the AoS
    // loop's early exit).
    std::vector<uint32_t> survivors;
    survivors.reserve(end - begin);
    for (size_t i = begin; i < end; ++i) {
      survivors.push_back(static_cast<uint32_t>(i));
    }
    std::vector<uint32_t> next;
    next.reserve(survivors.size());
    for (size_t t = 0; t < num_tables && !survivors.empty(); ++t) {
      if (hot_set.table_all_hot(t)) continue;
      const std::span<const uint8_t> mask = hot_set.mask(t);
      next.clear();
      for (uint32_t i : survivors) {
        bool hot = true;
        for (uint32_t row : flat.lookups(t, which[i])) {
          if (mask[row] == 0) {
            hot = false;
            break;
          }
        }
        if (hot) next.push_back(i);
      }
      survivors.swap(next);
    }
    for (uint32_t i : survivors) is_hot[i] = 1;
  };

  if (num_threads_ > 1 && which.size() > 1024) {
    ThreadPool pool(num_threads_);
    pool.ParallelFor(which.size(), classify_range);
  } else {
    classify_range(0, which.size());
  }

  for (size_t i = 0; i < which.size(); ++i) {
    (is_hot[i] ? out.hot_ids : out.cold_ids).push_back(which[i]);
  }
  out.seconds = watch.ElapsedSeconds();
  return out;
}

InputProcessor::PackedBatches InputProcessor::Pack(
    const Dataset& dataset, const ProcessedInputs& inputs, size_t batch_size,
    uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<uint64_t> hot = inputs.hot_ids;
  std::vector<uint64_t> cold = inputs.cold_ids;
  // Fisher-Yates within each class keeps batches pure but random.
  for (size_t i = hot.size(); i > 1; --i) {
    std::swap(hot[i - 1], hot[rng.NextBounded(i)]);
  }
  for (size_t i = cold.size(); i > 1; --i) {
    std::swap(cold[i - 1], cold[rng.NextBounded(i)]);
  }
  PackedBatches packed;
  packed.hot = AssembleBatches(dataset, hot, batch_size, /*hot=*/true);
  packed.cold = AssembleBatches(dataset, cold, batch_size, /*hot=*/false);
  return packed;
}

InputProcessor::PackedFlat InputProcessor::PackFlat(
    const Dataset& dataset, const ProcessedInputs& inputs, uint64_t seed) {
  // Same RNG call sequence as Pack: hot shuffle first, then cold.
  Xoshiro256 rng(seed);
  std::vector<uint64_t> hot = inputs.hot_ids;
  std::vector<uint64_t> cold = inputs.cold_ids;
  for (size_t i = hot.size(); i > 1; --i) {
    std::swap(hot[i - 1], hot[rng.NextBounded(i)]);
  }
  for (size_t i = cold.size(); i > 1; --i) {
    std::swap(cold[i - 1], cold[rng.NextBounded(i)]);
  }
  PackedFlat packed{dataset.flat().Gather(hot), dataset.flat().Gather(cold)};
  return packed;
}

}  // namespace fae
