#include "core/input_processor.h"

#include <algorithm>

#include "util/random.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace fae {

ProcessedInputs InputProcessor::Classify(
    const Dataset& dataset, const HotSet& hot_set,
    const std::vector<uint64_t>& which) const {
  Stopwatch watch;
  ProcessedInputs out;
  std::vector<uint8_t> is_hot(which.size(), 0);

  auto classify_range = [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      const SparseInput& s = dataset.sample(which[i]);
      bool hot = true;
      for (size_t t = 0; t < s.indices.size() && hot; ++t) {
        for (uint32_t row : s.indices[t]) {
          if (!hot_set.IsHot(t, row)) {
            hot = false;
            break;
          }
        }
      }
      is_hot[i] = hot ? 1 : 0;
    }
  };

  if (num_threads_ > 1 && which.size() > 1024) {
    ThreadPool pool(num_threads_);
    pool.ParallelFor(which.size(), classify_range);
  } else {
    classify_range(0, which.size());
  }

  for (size_t i = 0; i < which.size(); ++i) {
    (is_hot[i] ? out.hot_ids : out.cold_ids).push_back(which[i]);
  }
  out.seconds = watch.ElapsedSeconds();
  return out;
}

InputProcessor::PackedBatches InputProcessor::Pack(
    const Dataset& dataset, const ProcessedInputs& inputs, size_t batch_size,
    uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<uint64_t> hot = inputs.hot_ids;
  std::vector<uint64_t> cold = inputs.cold_ids;
  // Fisher-Yates within each class keeps batches pure but random.
  for (size_t i = hot.size(); i > 1; --i) {
    std::swap(hot[i - 1], hot[rng.NextBounded(i)]);
  }
  for (size_t i = cold.size(); i > 1; --i) {
    std::swap(cold[i - 1], cold[rng.NextBounded(i)]);
  }
  PackedBatches packed;
  packed.hot = AssembleBatches(dataset, hot, batch_size, /*hot=*/true);
  packed.cold = AssembleBatches(dataset, cold, batch_size, /*hot=*/false);
  return packed;
}

}  // namespace fae
