#include "core/calibrator.h"

#include <algorithm>
#include <cmath>

#include "core/embedding_logger.h"
#include "core/rand_em_box.h"
#include "stats/sampling.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace fae {

uint64_t SmallTableBytes(const DatasetSchema& schema,
                         uint64_t large_table_bytes) {
  uint64_t bytes = 0;
  for (size_t t = 0; t < schema.num_tables(); ++t) {
    if (schema.TableBytes(t) < large_table_bytes) {
      bytes += schema.TableBytes(t);
    }
  }
  return bytes;
}

Calibrator::Calibrator(FaeConfig config) : config_(std::move(config)) {}

StatusOr<CalibrationResult> Calibrator::Calibrate(
    const Dataset& dataset) const {
  if (config_.sample_rate <= 0.0 || config_.sample_rate > 1.0) {
    return Status::InvalidArgument("sample_rate must be in (0, 1]");
  }
  if (config_.thresholds.empty()) {
    return Status::InvalidArgument("no candidate thresholds");
  }
  for (size_t i = 1; i < config_.thresholds.size(); ++i) {
    if (config_.thresholds[i] >= config_.thresholds[i - 1]) {
      return Status::InvalidArgument("thresholds must be strictly descending");
    }
  }
  if (dataset.size() == 0) {
    return Status::InvalidArgument("empty dataset");
  }

  CalibrationResult result;

  // 1) Sparse Input Sampler + Embedding Logger (x% of the inputs).
  Stopwatch sample_watch;
  Xoshiro256 rng(config_.seed);
  std::vector<uint64_t> sample_ids =
      BernoulliSampleIndices(dataset.size(), config_.sample_rate, rng);
  if (sample_ids.empty()) {
    // Degenerate tiny dataset: profile everything.
    sample_ids.resize(dataset.size());
    for (size_t i = 0; i < sample_ids.size(); ++i) sample_ids[i] = i;
  }
  EmbeddingLogger::Result logged = EmbeddingLogger::Profile(dataset, sample_ids);
  result.sampling_seconds = sample_watch.ElapsedSeconds();
  result.sampled_inputs = logged.num_inputs;

  // 2) Statistical Optimizer: sweep thresholds coarse-to-fine with the
  // Rand-Em Box; keep the finest threshold whose CI-upper hot size fits L.
  Stopwatch estimate_watch;
  const DatasetSchema& schema = dataset.schema();
  const uint64_t small_bytes =
      SmallTableBytes(schema, config_.large_table_bytes);
  const RandEmBox box(config_.num_chunks, config_.chunk_len,
                      config_.confidence, config_.seed + 1);
  const size_t dim_bytes = schema.embedding_dim * sizeof(float);

  // Bytes a cold row gives back under the configured storage precision;
  // zero at fp32, so the sweep below degenerates to the plain L check.
  const uint64_t saved_per_cold_row =
      static_cast<uint64_t>(dim_bytes) -
      ColdRowBytes(schema.embedding_dim, config_.cold_precision);

  bool found = false;
  for (double t : config_.thresholds) {
    ThresholdPoint point;
    point.threshold = t;
    point.h_zt = std::max<uint64_t>(
        1, static_cast<uint64_t>(std::llround(
               t * static_cast<double>(result.sampled_inputs))));  // Eq 1
    double hot_bytes = static_cast<double>(small_bytes);
    double reclaimed = 0.0;
    for (size_t z = 0; z < schema.num_tables(); ++z) {
      // Partition by the *configured* cutoff — the same one the Embedding
      // Classifier will use — or the estimate and the realized hot slice
      // diverge.
      if (schema.TableBytes(z) < config_.large_table_bytes) continue;
      RandEmBox::Estimate est =
          box.EstimateTable(logged.profile.counts(z), point.h_zt);
      hot_bytes += est.upper_hot_entries * static_cast<double>(dim_bytes);
      point.scanned_entries += est.scanned_entries;
      // Cold-count lower bound (upper_hot is an upper bound), so the
      // reclaimed credit is conservative.
      const double rows = static_cast<double>(schema.table_rows[z]);
      const double cold =
          std::max(0.0, rows - static_cast<double>(est.upper_hot_entries));
      reclaimed += cold * static_cast<double>(saved_per_cold_row);
    }
    point.estimated_hot_bytes = static_cast<uint64_t>(hot_bytes);
    point.reclaimed_bytes = static_cast<uint64_t>(reclaimed);
    point.effective_budget = config_.gpu_memory_budget + point.reclaimed_bytes;
    // Quantized cold storage stretches the budget: bytes the cold store no
    // longer needs are credited to the hot slice. Both sides stay monotone
    // in t (hot grows, reclaimed shrinks as t decreases), so the
    // coarse-to-fine early stop below still holds.
    point.fits = point.estimated_hot_bytes <= point.effective_budget;
    result.sweep.push_back(point);
    if (point.fits) {
      result.threshold = point.threshold;
      result.h_zt = point.h_zt;
      result.estimated_hot_bytes = point.estimated_hot_bytes;
      result.effective_budget = point.effective_budget;
      result.reclaimed_bytes = point.reclaimed_bytes;
      found = true;
    } else if (found) {
      // Sizes grow monotonically as t decreases; once we have a fit and
      // the next candidate overflows, stop refining.
      break;
    }
  }
  result.estimation_seconds = estimate_watch.ElapsedSeconds();

  if (!found) {
    return Status::ResourceExhausted(StrFormat(
        "no threshold fits hot-embedding budget %s (smallest estimate %s); "
        "raise the budget L or add coarser thresholds",
        HumanBytes(config_.gpu_memory_budget).c_str(),
        HumanBytes(result.sweep.front().estimated_hot_bytes).c_str()));
  }
  result.profile = std::move(logged.profile);
  return result;
}

}  // namespace fae
