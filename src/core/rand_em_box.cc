#include "core/rand_em_box.h"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.h"
#include "stats/sampling.h"
#include "stats/t_table.h"
#include "util/logging.h"
#include "util/random.h"

namespace fae {

RandEmBox::RandEmBox(size_t num_chunks, size_t chunk_len, double confidence,
                     uint64_t seed)
    : num_chunks_(num_chunks), chunk_len_(chunk_len), seed_(seed) {
  FAE_CHECK_GE(num_chunks, 2u);
  FAE_CHECK_GE(chunk_len, 1u);
  // Paper convention: 3.340 at 99.9% / n=35 is the one-sided quantile with
  // df = n (see stats/t_table.h).
  t_critical_ =
      OneSidedTCritical(confidence, static_cast<double>(num_chunks));
}

uint64_t RandEmBox::ExactCount(const std::vector<uint64_t>& counts,
                               uint64_t h_zt) {
  uint64_t n = 0;
  for (uint64_t c : counts) {
    if (c >= h_zt) ++n;
  }
  return n;
}

RandEmBox::Estimate RandEmBox::EstimateTable(
    const std::vector<uint64_t>& counts, uint64_t h_zt) const {
  Estimate est;
  const uint64_t rows = counts.size();
  // Small tables: sampling would cover most rows anyway; scan exactly.
  if (rows <= num_chunks_ * chunk_len_) {
    const uint64_t exact = ExactCount(counts, h_zt);
    est.mean_hot_entries = static_cast<double>(exact);
    est.upper_hot_entries = static_cast<double>(exact);
    est.scanned_entries = rows;
    est.exact = true;
    return est;
  }

  Xoshiro256 rng(seed_ ^ (rows * 0x9e3779b97f4a7c15ULL));
  const std::vector<uint64_t> starts =
      RandomChunkStarts(rows, chunk_len_, num_chunks_, rng);
  std::vector<double> y(starts.size(), 0.0);
  for (size_t i = 0; i < starts.size(); ++i) {
    uint64_t hits = 0;
    for (uint64_t r = starts[i]; r < starts[i] + chunk_len_; ++r) {
      if (counts[r] >= h_zt) ++hits;  // Eq 2/3
    }
    y[i] = static_cast<double>(hits);
    est.scanned_entries += chunk_len_;
  }
  const double ybar = Mean(y);                  // Eq 4
  const double s = SampleStdDev(y);
  const double margin =
      t_critical_ * s / std::sqrt(static_cast<double>(y.size()));  // Eq 6
  const double scale = static_cast<double>(rows) /
                       static_cast<double>(chunk_len_);
  est.mean_hot_entries = ybar * scale;
  est.upper_hot_entries =
      std::min(static_cast<double>(rows), (ybar + margin) * scale);
  return est;
}

}  // namespace fae
