#include "core/shuffle_scheduler.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace fae {

ShuffleScheduler::ShuffleScheduler(size_t num_cold, size_t num_hot,
                                   const FaeConfig& config)
    : num_cold_(num_cold),
      num_hot_(num_hot),
      min_rate_(config.min_rate),
      max_rate_(config.max_rate),
      patience_(config.loss_patience),
      rate_(config.initial_rate) {
  FAE_CHECK_GT(min_rate_, 0.0);
  FAE_CHECK_GE(max_rate_, min_rate_);
  rate_ = std::clamp(rate_, min_rate_, max_rate_);
}

size_t ShuffleScheduler::ChunkSize(size_t total) const {
  if (total == 0) return 0;
  return std::max<size_t>(
      1, static_cast<size_t>(
             std::ceil(rate_ / 100.0 * static_cast<double>(total))));
}

std::optional<ShuffleScheduler::Chunk> ShuffleScheduler::Next() {
  const size_t cold_left = num_cold_ - issued_cold_;
  const size_t hot_left = num_hot_ - issued_hot_;
  if (cold_left == 0 && hot_left == 0) return std::nullopt;

  bool hot = next_is_hot_;
  if (hot && hot_left == 0) hot = false;
  if (!hot && cold_left == 0) hot = true;

  Chunk chunk;
  chunk.hot = hot;
  if (hot) {
    chunk.begin = issued_hot_;
    chunk.count = std::min(hot_left, ChunkSize(num_hot_));
    issued_hot_ += chunk.count;
  } else {
    chunk.begin = issued_cold_;
    chunk.count = std::min(cold_left, ChunkSize(num_cold_));
    issued_cold_ += chunk.count;
  }
  if (any_issued_ && hot != last_was_hot_) ++transitions_;
  any_issued_ = true;
  last_was_hot_ = hot;
  next_is_hot_ = !hot;
  return chunk;
}

void ShuffleScheduler::ReportTestLoss(double loss) {
  if (!has_prev_loss_) {
    has_prev_loss_ = true;
    prev_loss_ = loss;
    return;
  }
  if (loss > prev_loss_) {
    // Test loss regressed: shuffle harder (Eq 7 first case).
    rate_ = std::max(rate_ / 2.0, min_rate_);
    consecutive_decreases_ = 0;
  } else if (loss < prev_loss_) {
    if (++consecutive_decreases_ >= patience_) {
      // Converging steadily: coarsen chunks to amortize sync (second case).
      rate_ = std::min(rate_ * 2.0, max_rate_);
      consecutive_decreases_ = 0;
    }
  } else {
    consecutive_decreases_ = 0;
  }
  prev_loss_ = loss;
}

ShuffleScheduler::State ShuffleScheduler::state() const {
  State st;
  st.rate = rate_;
  st.issued_cold = issued_cold_;
  st.issued_hot = issued_hot_;
  st.next_is_hot = next_is_hot_;
  st.any_issued = any_issued_;
  st.last_was_hot = last_was_hot_;
  st.transitions = transitions_;
  st.has_prev_loss = has_prev_loss_;
  st.prev_loss = prev_loss_;
  st.consecutive_decreases = consecutive_decreases_;
  return st;
}

void ShuffleScheduler::Restore(const State& state) {
  rate_ = std::clamp(state.rate, min_rate_, max_rate_);
  issued_cold_ = std::min<size_t>(state.issued_cold, num_cold_);
  issued_hot_ = std::min<size_t>(state.issued_hot, num_hot_);
  next_is_hot_ = state.next_is_hot;
  any_issued_ = state.any_issued;
  last_was_hot_ = state.last_was_hot;
  transitions_ = state.transitions;
  has_prev_loss_ = state.has_prev_loss;
  prev_loss_ = state.prev_loss;
  consecutive_decreases_ = state.consecutive_decreases;
}

void ShuffleScheduler::ResetEpoch() {
  issued_cold_ = 0;
  issued_hot_ = 0;
  next_is_hot_ = false;
  any_issued_ = false;
}

}  // namespace fae
