#ifndef FAE_CORE_RAND_EM_BOX_H_
#define FAE_CORE_RAND_EM_BOX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fae {

/// The paper's Rand-Em Box (§III-A3, Eq 1-6): estimates how many entries of
/// an embedding table exceed an access threshold — hence the hot-slice size
/// — from n random chunks of m consecutive entries instead of a full scan.
///
/// Statistics: per chunk i, y_i counts entries with access count >= H_zt
/// (Eq 2/3). The chunk means follow ~normal behaviour by the CLT for
/// n >= 30 (Eq 4), and a t-interval (Eq 5/6) upper-bounds the estimate at
/// the requested confidence so the Calibrator never under-provisions L.
class RandEmBox {
 public:
  struct Estimate {
    /// Point estimate of hot entries in the table (N * ybar / m).
    double mean_hot_entries = 0.0;
    /// Confidence-interval upper bound on the same quantity.
    double upper_hot_entries = 0.0;
    /// Entries actually inspected (n*m, or N for small tables).
    uint64_t scanned_entries = 0;
    /// True when the whole table was scanned (estimate is exact).
    bool exact = false;
  };

  /// `num_chunks` = n (>= 2 for a defined stddev), `chunk_len` = m.
  RandEmBox(size_t num_chunks, size_t chunk_len, double confidence,
            uint64_t seed);

  /// Estimates the hot-entry count of a table whose per-entry access counts
  /// are `counts`, for an absolute access cutoff `h_zt` (Eq 1's t * S_I).
  /// Tables not much larger than one chunk are scanned exactly.
  Estimate EstimateTable(const std::vector<uint64_t>& counts,
                         uint64_t h_zt) const;

  /// Exact hot-entry count by full scan (the naive baseline the paper's
  /// Fig 10 compares against).
  static uint64_t ExactCount(const std::vector<uint64_t>& counts,
                             uint64_t h_zt);

 private:
  size_t num_chunks_;
  size_t chunk_len_;
  double t_critical_;
  uint64_t seed_;
};

}  // namespace fae

#endif  // FAE_CORE_RAND_EM_BOX_H_
