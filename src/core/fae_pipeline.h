#ifndef FAE_CORE_FAE_PIPELINE_H_
#define FAE_CORE_FAE_PIPELINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/calibrator.h"
#include "core/embedding_classifier.h"
#include "core/fae_config.h"
#include "core/input_processor.h"
#include "data/dataset.h"
#include "util/statusor.h"

namespace fae {

/// Output of FAE's static preprocessing: everything the runtime needs to
/// schedule hot/cold training.
struct FaePlan {
  double threshold = 0.0;
  uint64_t h_zt = 0;
  HotSet hot_set;
  ProcessedInputs inputs;
  /// Actual bytes of the hot slice (hot rows x dim x 4).
  uint64_t hot_bytes = 0;
  /// Share of sampled accesses landing on hot entries (paper: 75-92%);
  /// zero when the plan was loaded from cache (no profile retained).
  double hot_access_share = 0.0;
  /// Fresh runs carry the full calibration record (sweep, timings).
  CalibrationResult calibration;
  bool from_cache = false;

  /// Set by DegradePlanToBudget: the plan was shrunk to fit a tighter
  /// budget than it was calibrated for (popularity drift, a smaller GPU).
  bool degraded = false;
  /// Hot rows demoted to cold by the degradation pass.
  uint64_t demoted_rows = 0;
  /// Formerly-hot inputs that now touch a demoted row and fell back to the
  /// cold (hybrid CPU-GPU) execution path.
  uint64_t fallback_inputs = 0;
};

/// Ties the static components together: Calibrator -> Embedding Classifier
/// -> Input Processor, with optional FAE-format caching so the work runs
/// "only once per training dataset" (paper §II-B(1)).
class FaePipeline {
 public:
  explicit FaePipeline(FaeConfig config) : config_(std::move(config)) {}

  /// Full static pass over `dataset`, classifying the samples listed in
  /// `train_ids`.
  StatusOr<FaePlan> Prepare(const Dataset& dataset,
                            const std::vector<uint64_t>& train_ids) const;

  /// Like Prepare, but loads `cache_path` when it holds a valid plan for
  /// this dataset and writes it after a fresh run otherwise.
  StatusOr<FaePlan> PrepareCached(const Dataset& dataset,
                                  const std::vector<uint64_t>& train_ids,
                                  const std::string& cache_path) const;

  const FaeConfig& config() const { return config_; }

 private:
  FaeConfig config_;
};

/// Graceful degradation when a plan's hot slice no longer fits the per-GPU
/// budget (popularity drift after calibration, or a smaller deployment GPU):
/// demotes overflow entries from the hot set and reclassifies the affected
/// hot inputs as cold, so execution falls back toward the cold path instead
/// of aborting. The demotion itself is deterministic; see
/// HotSet::DemoteToBudget for the victim order.
FaePlan DegradePlanToBudget(const Dataset& dataset, const FaePlan& plan,
                            uint64_t budget_bytes, size_t num_threads);

}  // namespace fae

#endif  // FAE_CORE_FAE_PIPELINE_H_
