#include "embedding/sparse_sgd.h"

#include <algorithm>

#include "tensor/kernels.h"
#include "util/logging.h"

namespace fae {
namespace {

constexpr size_t kMinRowsToParallelize = 64;

void RowRangeParallel(ThreadPool* pool, size_t rows,
                      const std::function<void(size_t, size_t)>& fn) {
  if (pool != nullptr && rows >= kMinRowsToParallelize) {
    pool->ParallelFor(rows, fn);
  } else {
    fn(0, rows);
  }
}

}  // namespace

void SparseSgd::Step(EmbeddingTable& table, const SparseGrad& grad,
                     ThreadPool* pool) const {
  FAE_CHECK_EQ(grad.dim, table.dim());
  const size_t dim = grad.dim;
  const float neg_lr = -lr_;
  // Compressed tables: stage every touched cold row to fp32 up front
  // (serial — EnsureResidentRow mutates the staging buffer), so the
  // parallel update below works on stable, write-disjoint fp32 rows.
  if (table.compressed()) {
    for (size_t s = 0; s < grad.num_rows(); ++s) {
      table.EnsureResidentRow(grad.row_id(s));
    }
  }
  RowRangeParallel(pool, grad.num_rows(), [&](size_t s0, size_t s1) {
    for (size_t s = s0; s < s1; ++s) {
      kernels::Axpy(dim, neg_lr, grad.row(s), table.row(grad.row_id(s)));
    }
  });
}

void SparseSgd::FusedBackwardStep(EmbeddingTable& table,
                                  const Tensor& grad_out,
                                  std::span<const uint32_t> indices,
                                  std::span<const uint32_t> offsets,
                                  ThreadPool* pool,
                                  RowUpdateFilter* filter) {
  FAE_CHECK_EQ(grad_out.cols(), table.dim());
  FAE_CHECK_EQ(grad_out.rows() + 1, offsets.size());
  if (indices.empty()) return;
  const size_t dim = table.dim();
  const float neg_lr = -lr_;
  rg_.Rebuild(indices, offsets);
  const RowGroups& rg = rg_;
  // Filter verdicts first, serially: BeginVisit mutates per-row tracker
  // state, and a vetoed row must not even be staged below (skipping keeps
  // it frozen verbatim, compressed storage included). The member scratch
  // keeps the steady state allocation-free.
  if (filter != nullptr) {
    skip_.resize(rg.num_rows());
    for (size_t s = 0; s < rg.num_rows(); ++s) {
      const uint32_t lookups = rg.group_start[s + 1] - rg.group_start[s];
      skip_[s] = filter->BeginVisit(rg.row_ids[s], lookups) ? 1 : 0;
    }
  }
  // Same staging pre-pass as Step: touched cold rows become fp32 before
  // the (possibly pooled) update loop takes row pointers.
  if (table.compressed()) {
    for (size_t s = 0; s < rg.num_rows(); ++s) {
      if (filter != nullptr && skip_[s] != 0) continue;
      table.EnsureResidentRow(rg.row_ids[s]);
    }
  }
  // One row's accumulate + update + (with a filter) EMA measurement. The
  // arithmetic applied to the table row is identical with and without a
  // filter — the Dot measurements read, never write.
  auto update_row = [&](size_t s, float* acc) {
    std::fill(acc, acc + dim, 0.0f);
    for (uint32_t g = rg.group_start[s]; g < rg.group_start[s + 1]; ++g) {
      kernels::Add(dim, grad_out.row(rg.sample_of[rg.positions[g]]), acc);
    }
    float* row = table.row(rg.row_ids[s]);
    if (filter != nullptr) {
      const double row_sq = kernels::Dot(dim, row, row);
      const double acc_sq = kernels::Dot(dim, acc, acc);
      kernels::Axpy(dim, neg_lr, acc, row);
      filter->RecordUpdate(rg.row_ids[s],
                           rg.group_start[s + 1] - rg.group_start[s],
                           static_cast<double>(lr_) * lr_ * acc_sq, row_sq);
    } else {
      kernels::Axpy(dim, neg_lr, acc, row);
    }
  };
  if (pool != nullptr && rg.num_rows() >= kMinRowsToParallelize) {
    pool->ParallelFor(rg.num_rows(), [&](size_t s0, size_t s1) {
      // Pooled path: per-task accumulator (threads must not share one).
      std::vector<float> acc(dim);
      for (size_t s = s0; s < s1; ++s) {
        if (filter != nullptr && skip_[s] != 0) continue;
        update_row(s, acc.data());
      }
    });
    return;
  }
  // Serial path: member accumulator — no allocation once warmed up.
  acc_.resize(dim);
  for (size_t s = 0; s < rg.num_rows(); ++s) {
    if (filter != nullptr && skip_[s] != 0) continue;
    update_row(s, acc_.data());
  }
}

void AccumulateSparseGrad(SparseGrad& dst, const SparseGrad& src) {
  if (dst.dim == 0) dst.dim = src.dim;
  FAE_CHECK_EQ(dst.dim, src.dim);
  if (src.empty()) return;
  const size_t dim = dst.dim;
  if (dst.empty()) {
    dst.row_ids = src.row_ids;
    dst.values = src.values;
    return;
  }
  // Merge two sorted id lists; overlapping rows accumulate src into the
  // existing dst value (same order of additions as the historical
  // map-based merge).
  std::vector<uint64_t> ids;
  std::vector<float> values;
  ids.reserve(dst.row_ids.size() + src.row_ids.size());
  values.reserve(ids.capacity() * dim);
  size_t a = 0;
  size_t b = 0;
  auto append = [&](const SparseGrad& from, size_t slot) {
    const float* r = from.row(slot);
    values.insert(values.end(), r, r + dim);
  };
  while (a < dst.row_ids.size() || b < src.row_ids.size()) {
    if (b >= src.row_ids.size() ||
        (a < dst.row_ids.size() && dst.row_ids[a] < src.row_ids[b])) {
      ids.push_back(dst.row_ids[a]);
      append(dst, a);
      ++a;
    } else if (a >= dst.row_ids.size() || src.row_ids[b] < dst.row_ids[a]) {
      ids.push_back(src.row_ids[b]);
      append(src, b);
      ++b;
    } else {
      ids.push_back(dst.row_ids[a]);
      append(dst, a);
      kernels::Add(dim, src.row(b), values.data() + values.size() - dim);
      ++a;
      ++b;
    }
  }
  dst.row_ids = std::move(ids);
  dst.values = std::move(values);
}

}  // namespace fae
