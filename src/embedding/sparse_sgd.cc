#include "embedding/sparse_sgd.h"

#include "util/logging.h"

namespace fae {

void SparseSgd::Step(EmbeddingTable& table, const SparseGrad& grad) const {
  FAE_CHECK_EQ(grad.dim, table.dim());
  for (const auto& [row_id, g] : grad.rows) {
    float* row = table.row(row_id);
    for (size_t k = 0; k < grad.dim; ++k) row[k] -= lr_ * g[k];
  }
}

void AccumulateSparseGrad(SparseGrad& dst, const SparseGrad& src) {
  if (dst.dim == 0) dst.dim = src.dim;
  FAE_CHECK_EQ(dst.dim, src.dim);
  for (const auto& [row_id, g] : src.rows) {
    auto [it, inserted] =
        dst.rows.try_emplace(row_id, std::vector<float>(dst.dim, 0.0f));
    std::vector<float>& acc = it->second;
    for (size_t k = 0; k < dst.dim; ++k) acc[k] += g[k];
  }
}

}  // namespace fae
