#ifndef FAE_EMBEDDING_ROWWISE_ADAGRAD_H_
#define FAE_EMBEDDING_ROWWISE_ADAGRAD_H_

#include <cstdint>
#include <vector>

#include "embedding/embedding_bag.h"
#include "embedding/embedding_table.h"
#include "tensor/tensor.h"
#include "util/thread_pool.h"

namespace fae {

/// Row-wise Adagrad over an embedding table — the optimizer production
/// DLRM deployments use for embeddings (one accumulator scalar per row,
/// not per element, to keep optimizer state at 1/dim of the table):
///
///   a_r <- a_r + mean(g_r^2)
///   w_r <- w_r - lr / (sqrt(a_r) + eps) * g_r
///
/// State is per-table and addressed by row id, so it survives FAE-style
/// replication as long as updates are applied in one row space.
class RowwiseAdagrad {
 public:
  /// Sizes the accumulator for a table of `rows` rows.
  RowwiseAdagrad(uint64_t rows, float lr, float eps = 1e-8f);

  /// Applies `grad` to `table`; both must match the accumulator's rows.
  /// With a pool, disjoint slot ranges of the flat gradient are applied in
  /// parallel (each table row and accumulator entry is written by exactly
  /// one thread — bit-exact at any thread count).
  void Step(EmbeddingTable& table, const SparseGrad& grad,
            ThreadPool* pool = nullptr);

  /// Fused scatter + optimizer: accumulates dL/dout per touched row and
  /// applies the Adagrad update in one pass over the grouped index list,
  /// without materializing a SparseGrad. Bit-identical to
  /// EmbeddingBag::Backward followed by Step.
  void FusedBackwardStep(EmbeddingTable& table, const Tensor& grad_out,
                         const std::vector<uint32_t>& indices,
                         const std::vector<uint32_t>& offsets,
                         ThreadPool* pool = nullptr);

  float accumulator(uint64_t row) const { return accum_[row]; }
  uint64_t rows() const { return accum_.size(); }
  float lr() const { return lr_; }

  /// Optimizer-state bytes (the cost model charges these alongside the
  /// row payload when this optimizer is modeled).
  uint64_t StateBytes() const { return accum_.size() * sizeof(float); }

 private:
  /// Adagrad update for one row from its accumulated gradient `g`.
  void ApplyRow(EmbeddingTable& table, uint64_t row_id, const float* g);

  std::vector<float> accum_;
  float lr_;
  float eps_;
};

}  // namespace fae

#endif  // FAE_EMBEDDING_ROWWISE_ADAGRAD_H_
