#include "embedding/embedding_bag.h"

#include <algorithm>

#include "tensor/kernels.h"
#include "util/logging.h"

namespace fae {
namespace {

/// Below this many touched rows the pool dispatch costs more than the
/// scatter itself.
constexpr size_t kMinRowsToParallelize = 64;

}  // namespace

const float* SparseGrad::Find(uint64_t id) const {
  auto it = std::lower_bound(row_ids.begin(), row_ids.end(), id);
  if (it == row_ids.end() || *it != id) return nullptr;
  return row(static_cast<size_t>(it - row_ids.begin()));
}

float* SparseGrad::Find(uint64_t id) {
  return const_cast<float*>(
      static_cast<const SparseGrad*>(this)->Find(id));
}

float* SparseGrad::Upsert(uint64_t id) {
  auto it = std::lower_bound(row_ids.begin(), row_ids.end(), id);
  const size_t slot = static_cast<size_t>(it - row_ids.begin());
  if (it == row_ids.end() || *it != id) {
    row_ids.insert(it, id);
    values.insert(values.begin() + slot * dim, dim, 0.0f);
  }
  return row(slot);
}

void RowGroups::Rebuild(std::span<const uint32_t> indices,
                        std::span<const uint32_t> offsets) {
  FAE_CHECK_GE(offsets.size(), 1u);
  const uint32_t base = offsets.front();
  FAE_CHECK_EQ(offsets.back() - base, indices.size());
  const size_t nnz = indices.size();
  row_ids.clear();
  if (nnz == 0) {
    group_start.assign(1, 0);
    positions.clear();
    sample_of.clear();
    return;
  }
  group_start.clear();

  sample_of.resize(nnz);
  for (size_t i = 0; i + 1 < offsets.size(); ++i) {
    for (uint32_t p = offsets[i] - base; p < offsets[i + 1] - base; ++p) {
      sample_of[p] = static_cast<uint32_t>(i);
    }
  }

  // Stable LSD radix sort of lookup positions keyed by destination row,
  // 8 bits per pass, skipping passes above the largest id. Stability keeps
  // positions with equal row ids in traversal order, which fixes each
  // row's accumulation order independently of how consumers partition the
  // slots. This replaces a comparison sort plus one binary search per
  // lookup; at training batch sizes the grouping was the dominant serial
  // cost of the fused backward+optimizer pass.
  uint32_t max_id = 0;
  for (uint32_t id : indices) max_id = std::max(max_id, id);
  positions.resize(nnz);
  for (size_t p = 0; p < nnz; ++p) {
    positions[p] = static_cast<uint32_t>(p);
  }
  scratch_.resize(nnz);
  for (int shift = 0; shift == 0 || (max_id >> shift) != 0; shift += 8) {
    uint32_t count[256] = {0};
    for (size_t p = 0; p < nnz; ++p) {
      ++count[(indices[positions[p]] >> shift) & 0xFF];
    }
    uint32_t start = 0;
    uint32_t bucket_start[256];
    for (size_t d = 0; d < 256; ++d) {
      bucket_start[d] = start;
      start += count[d];
    }
    for (size_t p = 0; p < nnz; ++p) {
      const uint32_t pos = positions[p];
      scratch_[bucket_start[(indices[pos] >> shift) & 0xFF]++] = pos;
    }
    positions.swap(scratch_);
  }

  // One scan over the sorted positions emits the unique row ids and their
  // group boundaries.
  row_ids.reserve(nnz);
  group_start.reserve(nnz + 1);
  for (size_t g = 0; g < nnz; ++g) {
    const uint32_t id = indices[positions[g]];
    if (row_ids.empty() || row_ids.back() != id) {
      row_ids.push_back(id);
      group_start.push_back(static_cast<uint32_t>(g));
    }
  }
  group_start.push_back(static_cast<uint32_t>(nnz));
}

RowGroups RowGroups::Build(std::span<const uint32_t> indices,
                           std::span<const uint32_t> offsets) {
  RowGroups rg;
  rg.Rebuild(indices, offsets);
  return rg;
}

Tensor EmbeddingBag::Forward(const EmbeddingTable& table,
                             std::span<const uint32_t> indices,
                             std::span<const uint32_t> offsets,
                             ThreadPool* pool) {
  Tensor out;
  ForwardInto(out, table, indices, offsets, pool);
  return out;
}

void EmbeddingBag::ForwardInto(Tensor& out, const EmbeddingTable& table,
                               std::span<const uint32_t> indices,
                               std::span<const uint32_t> offsets,
                               ThreadPool* pool) {
  FAE_CHECK_GE(offsets.size(), 1u);
  const uint32_t base = offsets.front();
  FAE_CHECK_EQ(offsets.back() - base, indices.size());
  const size_t b = offsets.size() - 1;
  const size_t dim = table.dim();
  out.Resize(b, dim);
  out.SetZero();
  auto pool_range = [&](size_t b0, size_t b1) {
    for (size_t i = b0; i < b1; ++i) {
      float* orow = out.row(i);
      for (uint32_t p = offsets[i] - base; p < offsets[i + 1] - base; ++p) {
        // Plain tables take the fp32 Add fast path; compressed tables
        // dequantize cold rows on the fly (read-only, pool-safe).
        table.AddRowTo(indices[p], orow);
      }
    }
  };
  if (pool != nullptr && b >= kMinRowsToParallelize) {
    pool->ParallelFor(b, pool_range);
  } else {
    pool_range(0, b);
  }
}

SparseGrad EmbeddingBag::Backward(const Tensor& grad_out,
                                  std::span<const uint32_t> indices,
                                  std::span<const uint32_t> offsets,
                                  size_t dim, ThreadPool* pool) {
  FAE_CHECK_EQ(grad_out.cols(), dim);
  FAE_CHECK_EQ(grad_out.rows() + 1, offsets.size());
  SparseGrad grad;
  grad.dim = dim;
  if (indices.empty()) return grad;

  RowGroups rg = RowGroups::Build(indices, offsets);
  const size_t rows = rg.num_rows();
  grad.row_ids = std::move(rg.row_ids);
  grad.values.assign(rows * dim, 0.0f);

  auto scatter = [&](size_t s0, size_t s1) {
    for (size_t s = s0; s < s1; ++s) {
      float* acc = grad.row(s);
      for (uint32_t g = rg.group_start[s]; g < rg.group_start[s + 1]; ++g) {
        kernels::Add(dim, grad_out.row(rg.sample_of[rg.positions[g]]), acc);
      }
    }
  };
  if (pool != nullptr && rows >= kMinRowsToParallelize) {
    pool->ParallelFor(rows, scatter);
  } else {
    scatter(0, rows);
  }
  return grad;
}

}  // namespace fae
