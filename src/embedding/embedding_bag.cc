#include "embedding/embedding_bag.h"

#include "util/logging.h"

namespace fae {

Tensor EmbeddingBag::Forward(const EmbeddingTable& table,
                             const std::vector<uint32_t>& indices,
                             const std::vector<uint32_t>& offsets) {
  FAE_CHECK_GE(offsets.size(), 1u);
  FAE_CHECK_EQ(offsets.front(), 0u);
  FAE_CHECK_EQ(offsets.back(), indices.size());
  const size_t b = offsets.size() - 1;
  const size_t dim = table.dim();
  Tensor out(b, dim);
  for (size_t i = 0; i < b; ++i) {
    float* orow = out.row(i);
    for (uint32_t p = offsets[i]; p < offsets[i + 1]; ++p) {
      const float* erow = table.row(indices[p]);
      for (size_t k = 0; k < dim; ++k) orow[k] += erow[k];
    }
  }
  return out;
}

SparseGrad EmbeddingBag::Backward(const Tensor& grad_out,
                                  const std::vector<uint32_t>& indices,
                                  const std::vector<uint32_t>& offsets,
                                  size_t dim) {
  FAE_CHECK_EQ(grad_out.cols(), dim);
  FAE_CHECK_EQ(grad_out.rows() + 1, offsets.size());
  SparseGrad grad;
  grad.dim = dim;
  for (size_t i = 0; i + 1 < offsets.size(); ++i) {
    const float* grow = grad_out.row(i);
    for (uint32_t p = offsets[i]; p < offsets[i + 1]; ++p) {
      auto [it, inserted] =
          grad.rows.try_emplace(indices[p], std::vector<float>(dim, 0.0f));
      std::vector<float>& acc = it->second;
      for (size_t k = 0; k < dim; ++k) acc[k] += grow[k];
    }
  }
  return grad;
}

}  // namespace fae
