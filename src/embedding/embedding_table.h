#ifndef FAE_EMBEDDING_EMBEDDING_TABLE_H_
#define FAE_EMBEDDING_EMBEDDING_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/logging.h"
#include "util/random.h"

namespace fae {

/// One embedding table: `rows` learned vectors of `dim` float32 entries.
/// This is the memory-bound structure the paper is about — tables reach
/// 61 GB for Criteo Terabyte (Table I) and therefore live on the CPU in
/// the baseline system.
class EmbeddingTable {
 public:
  /// Uniform(-1/sqrt(rows), 1/sqrt(rows)) initialization (DLRM default).
  EmbeddingTable(uint64_t rows, size_t dim, Xoshiro256& rng);

  /// Zero-initialized table (for replicas that will be filled by sync).
  EmbeddingTable(uint64_t rows, size_t dim);

  uint64_t rows() const { return rows_; }
  size_t dim() const { return dim_; }

  /// Size of the table's parameters in bytes (float32).
  uint64_t SizeBytes() const { return rows_ * dim_ * sizeof(float); }

  float* row(uint64_t r) {
    FAE_CHECK_LT(r, rows_);
    return data_.data() + r * dim_;
  }
  const float* row(uint64_t r) const {
    FAE_CHECK_LT(r, rows_);
    return data_.data() + r * dim_;
  }

  /// Copies row `src_row` of `src` into row `dst_row` of this table.
  void CopyRowFrom(const EmbeddingTable& src, uint64_t src_row,
                   uint64_t dst_row);

  const std::vector<float>& raw() const { return data_; }
  std::vector<float>& raw() { return data_; }

 private:
  uint64_t rows_;
  size_t dim_;
  std::vector<float> data_;
};

}  // namespace fae

#endif  // FAE_EMBEDDING_EMBEDDING_TABLE_H_
