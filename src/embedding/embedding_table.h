#ifndef FAE_EMBEDDING_EMBEDDING_TABLE_H_
#define FAE_EMBEDDING_EMBEDDING_TABLE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "embedding/cold_precision.h"
#include "tensor/kernels.h"
#include "util/logging.h"
#include "util/random.h"

namespace fae {

/// One embedding table: `rows` learned vectors of `dim` entries. This is
/// the memory-bound structure the paper is about — tables reach 61 GB for
/// Criteo Terabyte (Table I) and therefore live on the CPU in the baseline
/// system.
///
/// Storage has two modes:
///
///  - Plain (the default): one contiguous fp32 buffer, `row(r)` at
///    `data + r * dim`.
///  - Compressed (after CompressCold, ROADMAP item 4): hot rows stay fp32
///    in a compacted buffer, cold rows are stored row-wise quantized
///    (binary16, or int8 codes + per-row fp32 scale/zero_point), and a
///    per-row slot map routes each id to its store. Reads of cold rows
///    dequantize on the fly (AddRowTo / ReadRowInto); writes first stage
///    the row back to fp32 (EnsureResidentRow), and FlushStaged
///    requantizes every staged row at the next hot/cold sync boundary.
///    Hot rows and all optimizer state stay fp32, so the hot path is
///    bit-identical to the plain layout.
///
/// Concurrency: all read paths (AddRowTo, ReadRowInto, const row()) are
/// const and safe to share across the kernel thread pool. EnsureResidentRow
/// and FlushStaged mutate the staging area and must run serially — the
/// sparse optimizers stage every touched row up front, then update in
/// parallel over stable fp32 pointers.
class EmbeddingTable {
 public:
  /// Uniform(-1/sqrt(rows), 1/sqrt(rows)) initialization (DLRM default).
  EmbeddingTable(uint64_t rows, size_t dim, Xoshiro256& rng);

  /// Zero-initialized table (for replicas that will be filled by sync).
  EmbeddingTable(uint64_t rows, size_t dim);

  uint64_t rows() const { return rows_; }
  size_t dim() const { return dim_; }

  /// Logical size of the table's parameters in bytes (float32) — the
  /// planning metric (large-table cutoff, hot-slice budget), independent
  /// of the physical storage mode. See ResidentBytes for actual footprint.
  uint64_t SizeBytes() const { return rows_ * dim_ * sizeof(float); }

  /// fp32 storage of row `r`. On a compressed table this is valid only for
  /// resident (hot or staged) rows — cold rows have no fp32 image; stage
  /// them first with EnsureResidentRow. Pointers into a compressed table
  /// are invalidated by EnsureResidentRow and FlushStaged.
  float* row(uint64_t r) {
    FAE_CHECK_LT(r, rows_);
    if (precision_ == ColdPrecision::kFp32) return data_.data() + r * dim_;
    const uint32_t s = slot_[r];
    FAE_CHECK_EQ(s & kColdTag, 0u)
        << "cold row needs EnsureResidentRow before fp32 access";
    return data_.data() + static_cast<size_t>(s) * dim_;
  }
  const float* row(uint64_t r) const {
    FAE_CHECK_LT(r, rows_);
    if (precision_ == ColdPrecision::kFp32) return data_.data() + r * dim_;
    const uint32_t s = slot_[r];
    FAE_CHECK_EQ(s & kColdTag, 0u)
        << "cold row needs EnsureResidentRow before fp32 access";
    return data_.data() + static_cast<size_t>(s) * dim_;
  }

  /// acc[i] += row(r)[i], dequantizing in place when `r` is cold — the
  /// EmbeddingBag pooling gather. Allocation-free.
  void AddRowTo(uint64_t r, float* FAE_RESTRICT acc) const {
    FAE_CHECK_LT(r, rows_);
    if (precision_ == ColdPrecision::kFp32) {
      kernels::Add(dim_, data_.data() + r * dim_, acc);
      return;
    }
    const uint32_t s = slot_[r];
    if ((s & kColdTag) == 0) {
      kernels::Add(dim_, data_.data() + static_cast<size_t>(s) * dim_, acc);
    } else if (precision_ == ColdPrecision::kInt8) {
      const size_t c = s & ~kColdTag;
      kernels::DequantAddI8(dim_, q8_.data() + c * dim_, scale_[c], zero_[c],
                            acc);
    } else {
      const size_t c = s & ~kColdTag;
      kernels::DequantAddF16(dim_, q16_.data() + c * dim_, acc);
    }
  }

  /// dst[i] = row(r)[i], dequantizing when `r` is cold. Works in every
  /// storage mode; allocation-free.
  void ReadRowInto(uint64_t r, float* FAE_RESTRICT dst) const;

  /// Copies row `src_row` of `src` into row `dst_row` of this table
  /// (dequantizing a cold source row; the destination must be resident).
  void CopyRowFrom(const EmbeddingTable& src, uint64_t src_row,
                   uint64_t dst_row);

  /// Whole-buffer fp32 access. Only meaningful for plain storage — the
  /// serializers and the fp16-emulation path that use it are validated to
  /// never meet a compressed table.
  const std::vector<float>& raw() const {
    FAE_CHECK(!compressed()) << "raw() on a compressed table";
    return data_;
  }
  std::vector<float>& raw() {
    FAE_CHECK(!compressed()) << "raw() on a compressed table";
    return data_;
  }

  // -- Compressed cold storage ----------------------------------------------

  bool compressed() const { return precision_ != ColdPrecision::kFp32; }
  ColdPrecision cold_precision() const { return precision_; }

  /// Switches to compressed storage: rows with `hot_mask[r] != 0` keep
  /// their exact fp32 values in a compacted buffer; the rest are quantized
  /// to `precision` and their fp32 storage is released. `hot_mask` must
  /// have one byte per row; `precision` must not be kFp32; the table must
  /// be plain.
  void CompressCold(std::span<const uint8_t> hot_mask,
                    ColdPrecision precision);

  /// Back to plain fp32 storage: hot and staged rows keep their exact
  /// values, cold rows are dequantized (the legal "widening" direction of
  /// a cross-precision checkpoint resume).
  void Decompress();

  /// True when row `r` has an fp32 image (always true for plain tables).
  bool RowResident(uint64_t r) const {
    FAE_CHECK_LT(r, rows_);
    return precision_ == ColdPrecision::kFp32 || (slot_[r] & kColdTag) == 0;
  }

  /// Stages cold row `r` as fp32 for an in-place update and returns its
  /// fp32 storage (a no-op returning row(r) when already resident).
  /// Serial only; invalidates previously returned row pointers. Steady
  /// state is allocation-free once the staging buffers have grown to the
  /// largest per-sync-interval staged set.
  float* EnsureResidentRow(uint64_t r);

  /// Requantizes every staged row back into cold storage and drops its
  /// fp32 image — the cold-row writeback at hot/cold sync boundaries.
  /// Buffer capacity is kept, so the next interval stages without
  /// allocating. Serial only.
  void FlushStaged();

  size_t staged_count() const { return staged_.size(); }

  uint64_t hot_rows() const {
    return compressed() ? hot_slots_ : rows_;
  }
  uint64_t cold_rows() const { return compressed() ? cold_rows_ : 0; }

  /// Bytes of the cold store: quantized payload plus per-row scale/zero
  /// metadata (0 for plain tables). The numerator of the bench's
  /// compression gate is the same rows at fp32: cold_rows * dim * 4.
  uint64_t ColdStoreBytes() const;

  /// Actual bytes resident for this table across both stores, slot map
  /// included — what the RSS accounting sees.
  uint64_t ResidentBytes() const;

  /// True when the resident/cold split matches `hot_mask` exactly (staged
  /// rows count as mismatches). Used at checkpoint resume to reject a
  /// compressed model state whose hot/cold partition no longer matches the
  /// run's plan.
  bool PartitionMatches(std::span<const uint8_t> hot_mask) const;

  // Verbatim compressed-state access for the checkpoint serializer
  // (models/model_io.cc). Requantizing a dequantized row is not bit-stable
  // (the scale recomputation re-rounds), so same-precision resume must
  // restore these buffers exactly as written.
  const std::vector<uint32_t>& slot_map() const { return slot_; }
  const std::vector<float>& resident_data() const { return data_; }
  const std::vector<uint8_t>& cold_codes_i8() const { return q8_; }
  const std::vector<uint16_t>& cold_half() const { return q16_; }
  const std::vector<float>& cold_scale() const { return scale_; }
  const std::vector<float>& cold_zero() const { return zero_; }

  /// Restores a compressed state captured by the accessors above. The
  /// caller (ModelIo) has already validated section sizes against
  /// rows/dim; this checks internal consistency and adopts the buffers.
  /// The table must be plain and no rows staged (checkpoints are taken at
  /// flushed sync boundaries).
  void RestoreCompressed(ColdPrecision precision, std::vector<uint32_t> slot,
                         std::vector<float> resident,
                         std::vector<uint8_t> codes_i8,
                         std::vector<uint16_t> half, std::vector<float> scale,
                         std::vector<float> zero);

 private:
  static constexpr uint32_t kColdTag = 0x80000000u;

  struct StagedRow {
    uint64_t row;        // table row id
    uint32_t cold_slot;  // where FlushStaged requantizes it back to
  };

  uint64_t rows_;
  size_t dim_;
  /// Plain mode: all rows. Compressed: hot_slots_ + staged_.size() rows.
  std::vector<float> data_;

  ColdPrecision precision_ = ColdPrecision::kFp32;
  uint64_t hot_slots_ = 0;
  uint64_t cold_rows_ = 0;
  /// Per row: fp32 slot index, or kColdTag | cold slot index. Empty in
  /// plain mode.
  std::vector<uint32_t> slot_;
  std::vector<uint8_t> q8_;     // int8: cold_rows_ x dim codes
  std::vector<float> scale_;    // int8: per cold row
  std::vector<float> zero_;     // int8: per cold row
  std::vector<uint16_t> q16_;   // fp16: cold_rows_ x dim
  std::vector<StagedRow> staged_;
};

}  // namespace fae

#endif  // FAE_EMBEDDING_EMBEDDING_TABLE_H_
