#include "embedding/rowwise_adagrad.h"

#include <cmath>

#include "util/logging.h"

namespace fae {

RowwiseAdagrad::RowwiseAdagrad(uint64_t rows, float lr, float eps)
    : accum_(rows, 0.0f), lr_(lr), eps_(eps) {
  FAE_CHECK_GT(lr, 0.0f);
  FAE_CHECK_GE(eps, 0.0f);
}

void RowwiseAdagrad::Step(EmbeddingTable& table, const SparseGrad& grad) {
  FAE_CHECK_EQ(table.rows(), accum_.size());
  FAE_CHECK_EQ(grad.dim, table.dim());
  const size_t dim = grad.dim;
  for (const auto& [row_id, g] : grad.rows) {
    FAE_CHECK_LT(row_id, accum_.size());
    double sq = 0.0;
    for (size_t k = 0; k < dim; ++k) {
      sq += static_cast<double>(g[k]) * g[k];
    }
    accum_[row_id] += static_cast<float>(sq / static_cast<double>(dim));
    const float scale = lr_ / (std::sqrt(accum_[row_id]) + eps_);
    float* row = table.row(row_id);
    for (size_t k = 0; k < dim; ++k) row[k] -= scale * g[k];
  }
}

}  // namespace fae
