#include "embedding/rowwise_adagrad.h"

#include <algorithm>
#include <cmath>

#include "tensor/kernels.h"
#include "util/logging.h"

namespace fae {
namespace {

constexpr size_t kMinRowsToParallelize = 64;

}  // namespace

RowwiseAdagrad::RowwiseAdagrad(uint64_t rows, float lr, float eps)
    : accum_(rows, 0.0f), lr_(lr), eps_(eps) {
  FAE_CHECK_GT(lr, 0.0f);
  FAE_CHECK_GE(eps, 0.0f);
}

void RowwiseAdagrad::ApplyRow(EmbeddingTable& table, uint64_t row_id,
                              const float* g) {
  FAE_CHECK_LT(row_id, accum_.size());
  const size_t dim = table.dim();
  // The mean-square is accumulated in double, ascending k — the exact
  // association the scalar implementation used, so optimizer state stays
  // bit-identical.
  const double sq = kernels::SumSquaresOrdered(dim, g);
  accum_[row_id] += static_cast<float>(sq / static_cast<double>(dim));
  const float scale = lr_ / (std::sqrt(accum_[row_id]) + eps_);
  kernels::Axpy(dim, -scale, g, table.row(row_id));
}

void RowwiseAdagrad::Step(EmbeddingTable& table, const SparseGrad& grad,
                          ThreadPool* pool) {
  FAE_CHECK_EQ(table.rows(), accum_.size());
  FAE_CHECK_EQ(grad.dim, table.dim());
  auto apply = [&](size_t s0, size_t s1) {
    for (size_t s = s0; s < s1; ++s) {
      ApplyRow(table, grad.row_id(s), grad.row(s));
    }
  };
  if (pool != nullptr && grad.num_rows() >= kMinRowsToParallelize) {
    pool->ParallelFor(grad.num_rows(), apply);
  } else {
    apply(0, grad.num_rows());
  }
}

void RowwiseAdagrad::FusedBackwardStep(EmbeddingTable& table,
                                       const Tensor& grad_out,
                                       const std::vector<uint32_t>& indices,
                                       const std::vector<uint32_t>& offsets,
                                       ThreadPool* pool) {
  FAE_CHECK_EQ(table.rows(), accum_.size());
  FAE_CHECK_EQ(grad_out.cols(), table.dim());
  FAE_CHECK_EQ(grad_out.rows() + 1, offsets.size());
  if (indices.empty()) return;
  const size_t dim = table.dim();
  const RowGroups rg = RowGroups::Build(indices, offsets);
  auto apply = [&](size_t s0, size_t s1) {
    std::vector<float> acc(dim);
    for (size_t s = s0; s < s1; ++s) {
      std::fill(acc.begin(), acc.end(), 0.0f);
      for (uint32_t g = rg.group_start[s]; g < rg.group_start[s + 1]; ++g) {
        kernels::Add(dim, grad_out.row(rg.sample_of[rg.positions[g]]),
                     acc.data());
      }
      ApplyRow(table, rg.row_ids[s], acc.data());
    }
  };
  if (pool != nullptr && rg.num_rows() >= kMinRowsToParallelize) {
    pool->ParallelFor(rg.num_rows(), apply);
  } else {
    apply(0, rg.num_rows());
  }
}

}  // namespace fae
