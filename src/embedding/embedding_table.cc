#include "embedding/embedding_table.h"

#include <algorithm>
#include <cmath>

namespace fae {

EmbeddingTable::EmbeddingTable(uint64_t rows, size_t dim, Xoshiro256& rng)
    : rows_(rows), dim_(dim), data_(rows * dim) {
  const float bound = 1.0f / std::sqrt(static_cast<float>(std::max<uint64_t>(rows, 1)));
  for (float& v : data_) {
    v = (rng.NextFloat() * 2.0f - 1.0f) * bound;
  }
}

EmbeddingTable::EmbeddingTable(uint64_t rows, size_t dim)
    : rows_(rows), dim_(dim), data_(rows * dim, 0.0f) {}

void EmbeddingTable::ReadRowInto(uint64_t r, float* FAE_RESTRICT dst) const {
  FAE_CHECK_LT(r, rows_);
  if (precision_ == ColdPrecision::kFp32) {
    const float* src = data_.data() + r * dim_;
    std::copy(src, src + dim_, dst);
    return;
  }
  const uint32_t s = slot_[r];
  if ((s & kColdTag) == 0) {
    const float* src = data_.data() + static_cast<size_t>(s) * dim_;
    std::copy(src, src + dim_, dst);
  } else if (precision_ == ColdPrecision::kInt8) {
    const size_t c = s & ~kColdTag;
    kernels::DequantRowI8(dim_, q8_.data() + c * dim_, scale_[c], zero_[c],
                          dst);
  } else {
    const size_t c = s & ~kColdTag;
    kernels::DequantRowF16(dim_, q16_.data() + c * dim_, dst);
  }
}

void EmbeddingTable::CopyRowFrom(const EmbeddingTable& src, uint64_t src_row,
                                 uint64_t dst_row) {
  FAE_CHECK_EQ(src.dim_, dim_);
  src.ReadRowInto(src_row, row(dst_row));
}

void EmbeddingTable::CompressCold(std::span<const uint8_t> hot_mask,
                                  ColdPrecision precision) {
  FAE_CHECK(!compressed()) << "table is already compressed";
  FAE_CHECK(precision != ColdPrecision::kFp32);
  FAE_CHECK_EQ(hot_mask.size(), rows_);
  FAE_CHECK_LT(rows_, static_cast<uint64_t>(kColdTag));

  uint64_t cold = 0;
  for (uint64_t r = 0; r < rows_; ++r) cold += hot_mask[r] == 0;
  slot_.resize(rows_);
  if (precision == ColdPrecision::kInt8) {
    q8_.resize(cold * dim_);
    scale_.resize(cold);
    zero_.resize(cold);
  } else {
    q16_.resize(cold * dim_);
  }

  // One ascending pass: hot rows compact in place (the destination slot is
  // never past the read cursor), cold rows quantize out of the fp32 buffer
  // before it shrinks.
  uint32_t next_hot = 0;
  uint32_t next_cold = 0;
  for (uint64_t r = 0; r < rows_; ++r) {
    const float* src = data_.data() + r * dim_;
    if (hot_mask[r] != 0) {
      float* dst = data_.data() + static_cast<size_t>(next_hot) * dim_;
      if (dst != src) std::copy(src, src + dim_, dst);
      slot_[r] = next_hot++;
    } else if (precision == ColdPrecision::kInt8) {
      kernels::QuantizeRowI8(dim_, src,
                             q8_.data() + static_cast<size_t>(next_cold) * dim_,
                             &scale_[next_cold], &zero_[next_cold]);
      slot_[r] = kColdTag | next_cold++;
    } else {
      kernels::QuantizeRowF16(
          dim_, src, q16_.data() + static_cast<size_t>(next_cold) * dim_);
      slot_[r] = kColdTag | next_cold++;
    }
  }
  hot_slots_ = next_hot;
  cold_rows_ = cold;
  data_.resize(static_cast<size_t>(next_hot) * dim_);
  data_.shrink_to_fit();  // the RSS reclaim the compression is for
  precision_ = precision;
}

void EmbeddingTable::Decompress() {
  if (!compressed()) return;
  std::vector<float> full(static_cast<size_t>(rows_) * dim_);
  for (uint64_t r = 0; r < rows_; ++r) {
    ReadRowInto(r, full.data() + r * dim_);
  }
  data_ = std::move(full);
  precision_ = ColdPrecision::kFp32;
  hot_slots_ = 0;
  cold_rows_ = 0;
  slot_.clear();
  slot_.shrink_to_fit();
  q8_.clear();
  q8_.shrink_to_fit();
  scale_.clear();
  scale_.shrink_to_fit();
  zero_.clear();
  zero_.shrink_to_fit();
  q16_.clear();
  q16_.shrink_to_fit();
  staged_.clear();
  staged_.shrink_to_fit();
}

float* EmbeddingTable::EnsureResidentRow(uint64_t r) {
  FAE_CHECK_LT(r, rows_);
  if (precision_ == ColdPrecision::kFp32) return data_.data() + r * dim_;
  const uint32_t s = slot_[r];
  if ((s & kColdTag) == 0) {
    return data_.data() + static_cast<size_t>(s) * dim_;
  }
  const uint32_t cold_slot = s & ~kColdTag;
  const uint32_t fp32_slot =
      static_cast<uint32_t>(hot_slots_ + staged_.size());
  data_.resize((static_cast<size_t>(fp32_slot) + 1) * dim_);
  float* dst = data_.data() + static_cast<size_t>(fp32_slot) * dim_;
  if (precision_ == ColdPrecision::kInt8) {
    kernels::DequantRowI8(dim_,
                          q8_.data() + static_cast<size_t>(cold_slot) * dim_,
                          scale_[cold_slot], zero_[cold_slot], dst);
  } else {
    kernels::DequantRowF16(
        dim_, q16_.data() + static_cast<size_t>(cold_slot) * dim_, dst);
  }
  staged_.push_back({r, cold_slot});
  slot_[r] = fp32_slot;
  return dst;
}

void EmbeddingTable::FlushStaged() {
  if (!compressed() || staged_.empty()) return;
  for (size_t i = 0; i < staged_.size(); ++i) {
    const StagedRow& st = staged_[i];
    const float* src = data_.data() + (hot_slots_ + i) * dim_;
    if (precision_ == ColdPrecision::kInt8) {
      kernels::QuantizeRowI8(
          dim_, src, q8_.data() + static_cast<size_t>(st.cold_slot) * dim_,
          &scale_[st.cold_slot], &zero_[st.cold_slot]);
    } else {
      kernels::QuantizeRowF16(
          dim_, src, q16_.data() + static_cast<size_t>(st.cold_slot) * dim_);
    }
    slot_[st.row] = kColdTag | st.cold_slot;
  }
  // resize (not shrink_to_fit): capacity stays at the staging high-water
  // mark, so the steady state never reallocates.
  data_.resize(static_cast<size_t>(hot_slots_) * dim_);
  staged_.clear();
}

uint64_t EmbeddingTable::ColdStoreBytes() const {
  if (!compressed()) return 0;
  if (precision_ == ColdPrecision::kInt8) {
    return q8_.size() + (scale_.size() + zero_.size()) * sizeof(float);
  }
  return q16_.size() * sizeof(uint16_t);
}

uint64_t EmbeddingTable::ResidentBytes() const {
  return data_.size() * sizeof(float) + ColdStoreBytes() +
         slot_.size() * sizeof(uint32_t);
}

bool EmbeddingTable::PartitionMatches(
    std::span<const uint8_t> hot_mask) const {
  if (!compressed()) return false;
  if (hot_mask.size() != rows_ || !staged_.empty()) return false;
  for (uint64_t r = 0; r < rows_; ++r) {
    if (((slot_[r] & kColdTag) == 0) != (hot_mask[r] != 0)) return false;
  }
  return true;
}

void EmbeddingTable::RestoreCompressed(
    ColdPrecision precision, std::vector<uint32_t> slot,
    std::vector<float> resident, std::vector<uint8_t> codes_i8,
    std::vector<uint16_t> half, std::vector<float> scale,
    std::vector<float> zero) {
  FAE_CHECK(!compressed()) << "restore into a compressed table";
  FAE_CHECK(precision != ColdPrecision::kFp32);
  FAE_CHECK_EQ(slot.size(), rows_);

  uint64_t hot = 0;
  uint64_t cold = 0;
  for (uint32_t s : slot) {
    if ((s & kColdTag) == 0) {
      FAE_CHECK_LT(s, rows_);
      ++hot;
    } else {
      ++cold;
    }
  }
  FAE_CHECK_EQ(resident.size(), static_cast<size_t>(hot) * dim_);
  if (precision == ColdPrecision::kInt8) {
    FAE_CHECK_EQ(codes_i8.size(), static_cast<size_t>(cold) * dim_);
    FAE_CHECK_EQ(scale.size(), cold);
    FAE_CHECK_EQ(zero.size(), cold);
    FAE_CHECK(half.empty());
  } else {
    FAE_CHECK_EQ(half.size(), static_cast<size_t>(cold) * dim_);
    FAE_CHECK(codes_i8.empty());
    FAE_CHECK(scale.empty());
    FAE_CHECK(zero.empty());
  }

  data_ = std::move(resident);
  slot_ = std::move(slot);
  q8_ = std::move(codes_i8);
  q16_ = std::move(half);
  scale_ = std::move(scale);
  zero_ = std::move(zero);
  staged_.clear();
  hot_slots_ = hot;
  cold_rows_ = cold;
  precision_ = precision;
}

}  // namespace fae
