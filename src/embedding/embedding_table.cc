#include "embedding/embedding_table.h"

#include <algorithm>
#include <cmath>

namespace fae {

EmbeddingTable::EmbeddingTable(uint64_t rows, size_t dim, Xoshiro256& rng)
    : rows_(rows), dim_(dim), data_(rows * dim) {
  const float bound = 1.0f / std::sqrt(static_cast<float>(std::max<uint64_t>(rows, 1)));
  for (float& v : data_) {
    v = (rng.NextFloat() * 2.0f - 1.0f) * bound;
  }
}

EmbeddingTable::EmbeddingTable(uint64_t rows, size_t dim)
    : rows_(rows), dim_(dim), data_(rows * dim, 0.0f) {}

void EmbeddingTable::CopyRowFrom(const EmbeddingTable& src, uint64_t src_row,
                                 uint64_t dst_row) {
  FAE_CHECK_EQ(src.dim_, dim_);
  const float* from = src.row(src_row);
  std::copy(from, from + dim_, row(dst_row));
}

}  // namespace fae
