#ifndef FAE_EMBEDDING_SPARSE_SGD_H_
#define FAE_EMBEDDING_SPARSE_SGD_H_

#include "embedding/embedding_bag.h"
#include "embedding/embedding_table.h"

namespace fae {

/// SGD over the sparse rows of an embedding table. The paper's latency
/// breakdown (Fig 14) shows this optimizer dominating baseline time when
/// it runs on the CPU; FAE moves it onto the GPUs for hot mini-batches.
class SparseSgd {
 public:
  explicit SparseSgd(float lr) : lr_(lr) {}

  /// row -= lr * grad for every row in `grad`.
  void Step(EmbeddingTable& table, const SparseGrad& grad) const;

  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }

 private:
  float lr_;
};

/// Merges `src` into `dst` (same dim), accumulating overlapping rows —
/// used to combine per-GPU sparse gradients before the optimizer step,
/// mirroring the all-reduce of embedding gradients (paper §II-B(3)).
void AccumulateSparseGrad(SparseGrad& dst, const SparseGrad& src);

}  // namespace fae

#endif  // FAE_EMBEDDING_SPARSE_SGD_H_
