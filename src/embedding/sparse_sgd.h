#ifndef FAE_EMBEDDING_SPARSE_SGD_H_
#define FAE_EMBEDDING_SPARSE_SGD_H_

#include <span>
#include <vector>

#include "embedding/embedding_bag.h"
#include "embedding/embedding_table.h"
#include "tensor/tensor.h"
#include "util/thread_pool.h"

namespace fae {

/// SGD over the sparse rows of an embedding table. The paper's latency
/// breakdown (Fig 14) shows this optimizer dominating baseline time when
/// it runs on the CPU; FAE moves it onto the GPUs for hot mini-batches.
class SparseSgd {
 public:
  explicit SparseSgd(float lr) : lr_(lr) {}

  /// row -= lr * grad for every row in `grad`. With a pool, disjoint slot
  /// ranges of the flat gradient are updated in parallel (bit-exact at any
  /// thread count — each table row is written by exactly one thread).
  void Step(EmbeddingTable& table, const SparseGrad& grad,
            ThreadPool* pool = nullptr) const;

  /// Fused scatter + optimizer (the paper's CPU-side sparse-optimizer
  /// bottleneck, §II-C): accumulates dL/dout per touched row and applies
  /// the update in one pass over the grouped index list, without
  /// materializing a SparseGrad. Bit-identical to
  /// EmbeddingBag::Backward followed by Step. Offsets follow the
  /// RowGroups relative-offset contract (rebased by offsets.front()).
  ///
  /// Non-const: the row grouping and the serial accumulator are instance
  /// scratch, rebuilt in place each call so the steady state allocates
  /// nothing. One SparseSgd therefore serves one training thread; the
  /// intra-step pool parallelism is unaffected (pooled paths keep
  /// per-task accumulators).
  void FusedBackwardStep(EmbeddingTable& table, const Tensor& grad_out,
                         std::span<const uint32_t> indices,
                         std::span<const uint32_t> offsets,
                         ThreadPool* pool = nullptr);

  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }

 private:
  float lr_;
  RowGroups rg_;            // reused across FusedBackwardStep calls
  std::vector<float> acc_;  // serial-path accumulation scratch
};

/// Merges `src` into `dst` (same dim), accumulating overlapping rows —
/// used to combine per-GPU sparse gradients before the optimizer step,
/// mirroring the all-reduce of embedding gradients (paper §II-B(3)).
void AccumulateSparseGrad(SparseGrad& dst, const SparseGrad& src);

}  // namespace fae

#endif  // FAE_EMBEDDING_SPARSE_SGD_H_
