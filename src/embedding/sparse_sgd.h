#ifndef FAE_EMBEDDING_SPARSE_SGD_H_
#define FAE_EMBEDDING_SPARSE_SGD_H_

#include <span>
#include <vector>

#include "embedding/embedding_bag.h"
#include "embedding/embedding_table.h"
#include "tensor/tensor.h"
#include "util/thread_pool.h"

namespace fae {

/// Per-row veto hook for the fused backward+step: lets the engine's
/// staleness tracker (engine/staleness_tracker.h) elide individual row
/// updates without the embedding layer depending on engine types.
/// BeginVisit runs once per touched row, serially, before any cold-row
/// staging — a vetoed row is neither staged nor written, so it stays
/// bit-identical to a frozen row. RecordUpdate runs once per applied
/// update, possibly from pool workers: implementations must be
/// thread-safe under the fused step's one-thread-per-row partition.
class RowUpdateFilter {
 public:
  virtual ~RowUpdateFilter() = default;
  /// True to skip this row's update. `lookups` is the number of gradient
  /// rows pooled into it this step (its scatter share).
  virtual bool BeginVisit(uint64_t row, uint32_t lookups) = 0;
  /// Reports one applied update: `update_sq` is ‖lr·Δrow‖², `row_sq` is
  /// ‖row‖² before the update.
  virtual void RecordUpdate(uint64_t row, uint32_t lookups,
                            double update_sq, double row_sq) = 0;
};

/// SGD over the sparse rows of an embedding table. The paper's latency
/// breakdown (Fig 14) shows this optimizer dominating baseline time when
/// it runs on the CPU; FAE moves it onto the GPUs for hot mini-batches.
class SparseSgd {
 public:
  explicit SparseSgd(float lr) : lr_(lr) {}

  /// row -= lr * grad for every row in `grad`. With a pool, disjoint slot
  /// ranges of the flat gradient are updated in parallel (bit-exact at any
  /// thread count — each table row is written by exactly one thread).
  void Step(EmbeddingTable& table, const SparseGrad& grad,
            ThreadPool* pool = nullptr) const;

  /// Fused scatter + optimizer (the paper's CPU-side sparse-optimizer
  /// bottleneck, §II-C): accumulates dL/dout per touched row and applies
  /// the update in one pass over the grouped index list, without
  /// materializing a SparseGrad. Bit-identical to
  /// EmbeddingBag::Backward followed by Step. Offsets follow the
  /// RowGroups relative-offset contract (rebased by offsets.front()).
  ///
  /// Non-const: the row grouping and the serial accumulator are instance
  /// scratch, rebuilt in place each call so the steady state allocates
  /// nothing. One SparseSgd therefore serves one training thread; the
  /// intra-step pool parallelism is unaffected (pooled paths keep
  /// per-task accumulators).
  /// With a filter, rows it vetoes are skipped entirely (no staging, no
  /// scatter, no write — the row freezes verbatim) and every applied
  /// update is measured and reported back; the arithmetic for non-vetoed
  /// rows is bit-identical to the filterless call.
  void FusedBackwardStep(EmbeddingTable& table, const Tensor& grad_out,
                         std::span<const uint32_t> indices,
                         std::span<const uint32_t> offsets,
                         ThreadPool* pool = nullptr,
                         RowUpdateFilter* filter = nullptr);

  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }

 private:
  float lr_;
  RowGroups rg_;              // reused across FusedBackwardStep calls
  std::vector<float> acc_;    // serial-path accumulation scratch
  std::vector<uint8_t> skip_;  // per-row filter verdicts, reused per call
};

/// Merges `src` into `dst` (same dim), accumulating overlapping rows —
/// used to combine per-GPU sparse gradients before the optimizer step,
/// mirroring the all-reduce of embedding gradients (paper §II-B(3)).
void AccumulateSparseGrad(SparseGrad& dst, const SparseGrad& src);

}  // namespace fae

#endif  // FAE_EMBEDDING_SPARSE_SGD_H_
