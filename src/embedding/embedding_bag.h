#ifndef FAE_EMBEDDING_EMBEDDING_BAG_H_
#define FAE_EMBEDDING_EMBEDDING_BAG_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "embedding/embedding_table.h"
#include "tensor/tensor.h"

namespace fae {

/// Sparse gradient against one embedding table: the rows a mini-batch
/// touched and their gradient vectors. Only these rows pay optimizer and
/// synchronization costs, which is what makes the paper's hot/cold
/// bookkeeping worthwhile.
struct SparseGrad {
  size_t dim = 0;
  /// row id -> accumulated gradient (length `dim`).
  std::unordered_map<uint64_t, std::vector<float>> rows;

  uint64_t num_rows() const { return rows.size(); }
  uint64_t Bytes() const { return rows.size() * dim * sizeof(float); }
};

/// Sum-pooled embedding lookup (PyTorch's EmbeddingBag with mode="sum").
///
/// A batch is expressed in CSR form: `indices` concatenates every lookup,
/// `offsets[i]..offsets[i+1]` delimit sample i's lookups. Forward produces
/// [B, dim]; BagBackward scatters the output gradient into a SparseGrad.
class EmbeddingBag {
 public:
  /// Pools rows of `table` per sample. `offsets` has B+1 entries with
  /// offsets.front() == 0 and offsets.back() == indices.size().
  static Tensor Forward(const EmbeddingTable& table,
                        const std::vector<uint32_t>& indices,
                        const std::vector<uint32_t>& offsets);

  /// Scatters dL/dout [B, dim] back onto the looked-up rows.
  static SparseGrad Backward(const Tensor& grad_out,
                             const std::vector<uint32_t>& indices,
                             const std::vector<uint32_t>& offsets,
                             size_t dim);
};

}  // namespace fae

#endif  // FAE_EMBEDDING_EMBEDDING_BAG_H_
