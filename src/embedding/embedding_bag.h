#ifndef FAE_EMBEDDING_EMBEDDING_BAG_H_
#define FAE_EMBEDDING_EMBEDDING_BAG_H_

#include <cstdint>
#include <span>
#include <vector>

#include "embedding/embedding_table.h"
#include "tensor/tensor.h"
#include "util/thread_pool.h"

namespace fae {

/// Sparse gradient against one embedding table: the rows a mini-batch
/// touched and their gradient vectors. Only these rows pay optimizer and
/// synchronization costs, which is what makes the paper's hot/cold
/// bookkeeping worthwhile.
///
/// Flat layout: `row_ids` holds the touched rows sorted ascending (unique),
/// and `values` holds one contiguous dim-strided gradient vector per entry
/// of `row_ids`, in the same order. Compared to the historical
/// unordered_map<row, vector<float>>, this costs zero heap allocations per
/// touched row, iterates in a deterministic order, and exposes disjoint
/// slot ranges the optimizers can partition across threads with no write
/// conflicts (bit-exact results at any thread count).
struct SparseGrad {
  size_t dim = 0;
  /// Touched row ids, sorted ascending, no duplicates.
  std::vector<uint64_t> row_ids;
  /// row_ids.size() x dim gradient payload, row-major, parallel to
  /// `row_ids`.
  std::vector<float> values;

  uint64_t num_rows() const { return row_ids.size(); }
  bool empty() const { return row_ids.empty(); }

  uint64_t row_id(size_t slot) const { return row_ids[slot]; }
  float* row(size_t slot) { return values.data() + slot * dim; }
  const float* row(size_t slot) const { return values.data() + slot * dim; }

  /// Payload plus index bytes (the historical accounting omitted the
  /// index array).
  uint64_t Bytes() const {
    return values.size() * sizeof(float) +
           row_ids.size() * sizeof(uint64_t);
  }

  /// Gradient vector of `id`, or nullptr when the row was not touched.
  /// O(log rows) binary search.
  const float* Find(uint64_t id) const;
  float* Find(uint64_t id);

  /// Gradient vector of `id`, inserting a zero-filled row at its sorted
  /// position if absent. O(rows x dim) on insert — meant for tests and
  /// small hand-built gradients; bulk construction goes through
  /// EmbeddingBag::Backward / RowGroups.
  float* Upsert(uint64_t id);
};

/// Position-grouping of a CSR lookup list by destination row: the sorted
/// unique row ids plus, per row, the lookup positions that touch it in
/// traversal order. This is the shared index structure behind the flat
/// scatter (EmbeddingBag::Backward) and the fused backward+optimizer
/// paths: group g owns positions
///   positions[group_start[g] .. group_start[g+1])
/// all referring to row_ids[g], and `sample_of[p]` maps a position back to
/// the mini-batch sample whose output gradient it scatters.
///
/// Per-row accumulation order equals lookup-traversal order — exactly what
/// the scalar unordered_map implementation produced — so every consumer is
/// bit-exact with the historical kernels and across thread counts.
///
/// CSR contract (shared by every kernel below): `offsets` has B+1
/// monotone entries and `offsets.back() - offsets.front() ==
/// indices.size()`. Offsets need not start at zero — batch views into a
/// flat dataset carry the dataset-absolute offsets and kernels rebase by
/// `offsets.front()`; legacy zero-based buffers satisfy the contract
/// unchanged.
struct RowGroups {
  std::vector<uint64_t> row_ids;      // sorted ascending, unique
  std::vector<uint32_t> group_start;  // row_ids.size() + 1 entries
  std::vector<uint32_t> positions;    // lookup positions grouped by row
  std::vector<uint32_t> sample_of;    // sample index per lookup position

  size_t num_rows() const { return row_ids.size(); }

  /// Rebuilds the grouping in place, reusing all previously grown buffers
  /// (including the radix-sort scratch) — zero heap allocations once the
  /// instance has seen a batch of each size. This is what keeps the fused
  /// optimizer's steady state allocation-free.
  void Rebuild(std::span<const uint32_t> indices,
               std::span<const uint32_t> offsets);

  /// Builds the grouping for `indices`/`offsets` on a fresh instance.
  static RowGroups Build(std::span<const uint32_t> indices,
                         std::span<const uint32_t> offsets);

 private:
  std::vector<uint32_t> scratch_;  // radix-sort ping-pong buffer
};

/// Sum-pooled embedding lookup (PyTorch's EmbeddingBag with mode="sum").
///
/// A batch is expressed in CSR form: `indices` concatenates every lookup,
/// `offsets[i]..offsets[i+1]` delimit sample i's lookups (rebased by
/// `offsets.front()` — see the RowGroups contract). Forward produces
/// [B, dim]; Backward scatters the output gradient into a SparseGrad.
class EmbeddingBag {
 public:
  /// Pools rows of `table` per sample. With a pool, samples are
  /// partitioned across threads (each output row is written by one
  /// thread; bit-exact at any thread count).
  static Tensor Forward(const EmbeddingTable& table,
                        std::span<const uint32_t> indices,
                        std::span<const uint32_t> offsets,
                        ThreadPool* pool = nullptr);

  /// Forward into a caller-owned workspace (Resize'd to [B, dim]) — the
  /// allocation-free variant the training loop uses.
  static void ForwardInto(Tensor& out, const EmbeddingTable& table,
                          std::span<const uint32_t> indices,
                          std::span<const uint32_t> offsets,
                          ThreadPool* pool = nullptr);

  /// Scatters dL/dout [B, dim] back onto the looked-up rows. With a pool,
  /// the scatter is partitioned over disjoint destination-row ranges.
  static SparseGrad Backward(const Tensor& grad_out,
                             std::span<const uint32_t> indices,
                             std::span<const uint32_t> offsets,
                             size_t dim, ThreadPool* pool = nullptr);
};

}  // namespace fae

#endif  // FAE_EMBEDDING_EMBEDDING_BAG_H_
