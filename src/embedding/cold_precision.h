#ifndef FAE_EMBEDDING_COLD_PRECISION_H_
#define FAE_EMBEDDING_COLD_PRECISION_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace fae {

/// Storage precision of the *cold* embedding rows (ROADMAP item 4). Hot
/// rows, gradients, and all optimizer state stay fp32 regardless, so the
/// hot path is bit-identical across modes; only the rarely-touched cold
/// majority pays the representation change.
///
///  - kFp32: plain float storage (the historical layout, no compression).
///  - kFp16: IEEE binary16 per element (util/half.h), exact widening on
///    read — 2x smaller, no per-row metadata.
///  - kInt8: row-wise affine quantization — uint8 codes plus a per-row
///    fp32 (scale, zero_point) pair, dequantized as zero + scale * q.
///    ~4x smaller payload; reconstruction error is bounded by scale / 2
///    per element, and a constant row reconstructs exactly (scale = 0,
///    zero = the value).
enum class ColdPrecision : uint8_t { kFp32 = 0, kFp16 = 1, kInt8 = 2 };

inline std::string_view ColdPrecisionName(ColdPrecision p) {
  switch (p) {
    case ColdPrecision::kFp32:
      return "fp32";
    case ColdPrecision::kFp16:
      return "fp16";
    case ColdPrecision::kInt8:
      return "int8";
  }
  return "?";
}

/// Strict parse: returns false on anything but "fp32" / "fp16" / "int8"
/// (the CLI turns that into a usage error rather than defaulting).
inline bool ParseColdPrecision(std::string_view name, ColdPrecision* out) {
  if (name == "fp32") {
    *out = ColdPrecision::kFp32;
  } else if (name == "fp16") {
    *out = ColdPrecision::kFp16;
  } else if (name == "int8") {
    *out = ColdPrecision::kInt8;
  } else {
    return false;
  }
  return true;
}

/// Payload bytes per element in cold storage.
inline size_t ColdElemBytes(ColdPrecision p) {
  switch (p) {
    case ColdPrecision::kFp32:
      return 4;
    case ColdPrecision::kFp16:
      return 2;
    case ColdPrecision::kInt8:
      return 1;
  }
  return 4;
}

/// Bytes one cold row occupies, metadata included (int8 carries a per-row
/// fp32 scale + zero_point pair). This is the number the calibrator's
/// budget feedback, the cost model's cold-lookup charges, and the bench's
/// compression gate all share.
inline uint64_t ColdRowBytes(size_t dim, ColdPrecision p) {
  uint64_t bytes = static_cast<uint64_t>(dim) * ColdElemBytes(p);
  if (p == ColdPrecision::kInt8) bytes += 2 * sizeof(float);
  return bytes;
}

}  // namespace fae

#endif  // FAE_EMBEDDING_COLD_PRECISION_H_
