#include "engine/step_accountant.h"

#include <algorithm>

#include "util/logging.h"

namespace fae {

/// Gathers through a GPU-side cache index (hash/indirection) run ~1.5x a
/// direct gather. Shared by the transparent-cache baseline and the
/// lookahead oracle cache so the two models stay comparable.
constexpr double kCacheIndirection = 1.5;

StepAccountant::BaselineParts StepAccountant::ChargeBaselineParts(
    const BatchWork& w, Timeline& tl) const {
  BaselineParts parts;
  const SystemSpec& sys = cost_->system();
  const int g = std::max(1, sys.num_gpus);
  const int nodes = std::max(1, sys.num_nodes);
  const int world = g * nodes;

  // Embedding forward: random gathers on the CPUs. With one node the CPU
  // handles the full global batch (the baseline's bottleneck); multi-node
  // clusters shard the tables parameter-server style across the per-node
  // CPUs, so each CPU gathers 1/nodes of the traffic but (nodes-1)/nodes
  // of the pooled activations must cross the network each way.
  const double emb_fwd =
      cost_->GatherSeconds(w.embedding_read_bytes / nodes, sys.cpu);
  tl.ChargeCpu(Phase::kEmbeddingForward, emb_fwd);
  parts.cpu += emb_fwd;
  if (nodes > 1) {
    const uint64_t remote =
        w.embedding_activation_bytes * (nodes - 1) / nodes;
    const double hop = cost_->NetworkTransferSeconds(remote / nodes);
    tl.Charge(Phase::kNetwork, hop);
    tl.Charge(Phase::kNetwork, hop);
    parts.serial += 2 * hop;
    tl.AddNetworkBytes(2 * remote);
  }

  // Pooled embedding activations to the GPUs (each GPU pulls its shard in
  // parallel over its own PCIe link).
  const double xfer =
      cost_->PcieTransferSeconds(w.embedding_activation_bytes / world);
  tl.Charge(Phase::kCpuGpuTransfer, xfer);
  parts.serial += xfer;
  tl.AddPcieBytes(w.embedding_activation_bytes);

  // Dense network on the GPUs, data-parallel over the batch shards.
  const uint64_t shard = w.batch_size / world;
  const double mlp_fwd = cost_->DenseComputeSeconds(w.forward_flops / world,
                                                    shard, sys.gpu);
  tl.ChargeGpu(Phase::kMlpForward, mlp_fwd);
  const double mlp_bwd = cost_->DenseComputeSeconds(
      2 * w.forward_flops / world, shard, sys.gpu);
  tl.ChargeGpu(Phase::kMlpBackward, mlp_bwd);
  parts.gpu += mlp_fwd + mlp_bwd;

  // Embedding gradients back to the CPU.
  tl.Charge(Phase::kCpuGpuTransfer, xfer);
  parts.serial += xfer;
  tl.AddPcieBytes(w.embedding_activation_bytes);

  // Scatter gradients into the tables, then the sparse optimizer — both on
  // the CPUs (paper Fig 14: the optimizer dominates baseline time).
  const double emb_bwd =
      cost_->GatherSeconds(w.embedding_read_bytes / nodes, sys.cpu);
  tl.ChargeCpu(Phase::kEmbeddingBackward, emb_bwd);
  const double sparse_opt =
      sys.cpu.sparse_update_overhead *
      cost_->GatherSeconds(3 * w.touched_bytes / nodes, sys.cpu);
  tl.ChargeCpu(Phase::kOptimizerSparse, sparse_opt);
  parts.cpu += emb_bwd + sparse_opt;

  // Dense parameters: all-reduce across the cluster, optimizer on GPUs.
  const uint64_t dense_bytes = w.dense_param_count * sizeof(float);
  const double allreduce = cost_->AllReduceSeconds(dense_bytes);
  tl.Charge(Phase::kAllReduce, allreduce);
  parts.serial += allreduce;
  if (g > 1) tl.AddNvlinkBytes(2 * (g - 1) * dense_bytes / g * g);
  if (nodes > 1) tl.AddNetworkBytes(2 * (nodes - 1) * dense_bytes / nodes);
  const double dense_opt = cost_->StreamSeconds(3 * dense_bytes, sys.gpu);
  tl.ChargeGpu(Phase::kOptimizerDense, dense_opt);
  parts.gpu += dense_opt;
  return parts;
}

void StepAccountant::ChargeBaselineStep(const BatchWork& w,
                                        Timeline& tl) const {
  (void)ChargeBaselineParts(w, tl);
}

StepAccountant::BaselineParts StepAccountant::ChargeBaselineStepParts(
    const BatchWork& w, Timeline& tl) const {
  return ChargeBaselineParts(w, tl);
}

double StepAccountant::ChargeInputPrep(uint64_t batch_bytes,
                                       Timeline& tl) const {
  // Staging a mini-batch is a CPU gather (random sample rows) into a
  // contiguous workspace; model it as random-access traffic at the CPU's
  // gather efficiency. Derived from batch contents alone, so cost-only and
  // math runs charge identically.
  const double seconds =
      cost_->GatherSeconds(batch_bytes, cost_->system().cpu);
  tl.ChargeCpu(Phase::kInputPrep, seconds);
  return seconds;
}

void StepAccountant::ChargeBaselineStepPipelined(const BatchWork& w,
                                                 Timeline& tl) const {
  const BaselineParts parts = ChargeBaselineParts(w, tl);
  tl.AddWallSeconds(std::max(parts.cpu, parts.gpu) + parts.serial);
}

void StepAccountant::ChargeHotStep(const BatchWork& w, Timeline& tl) const {
  const SystemSpec& sys = cost_->system();
  const int g = std::max(1, sys.num_gpus);
  const int nodes = std::max(1, sys.num_nodes);
  const int world = g * nodes;

  // Embedding lookups on each GPU's replica, sharded over the batch.
  tl.ChargeGpu(Phase::kEmbeddingForward,
               cost_->GatherSeconds(w.embedding_read_bytes / world, sys.gpu));

  const uint64_t shard = w.batch_size / world;
  tl.ChargeGpu(Phase::kMlpForward,
               cost_->DenseComputeSeconds(w.forward_flops / world, shard,
                                          sys.gpu));
  tl.ChargeGpu(Phase::kMlpBackward,
               cost_->DenseComputeSeconds(2 * w.forward_flops / world, shard,
                                          sys.gpu));

  tl.ChargeGpu(Phase::kEmbeddingBackward,
               cost_->GatherSeconds(w.embedding_read_bytes / world, sys.gpu));

  // One all-reduce covering dense *and* hot-embedding gradients (§II-B(3):
  // "all-reduce on all the gradients including both embedding and neural
  // network layers over the fast NVLink").
  const uint64_t grad_bytes =
      w.dense_param_count * sizeof(float) + w.touched_bytes;
  tl.Charge(Phase::kAllReduce, cost_->AllReduceSeconds(grad_bytes));
  if (g > 1) tl.AddNvlinkBytes(2 * (g - 1) * grad_bytes / g * g);
  if (nodes > 1) tl.AddNetworkBytes(2 * (nodes - 1) * grad_bytes / nodes);

  // Optimizers run on every GPU against its own replica (full update each,
  // concurrently) — the "massively parallel" step the baseline wastes on
  // the CPU.
  tl.ChargeGpu(Phase::kOptimizerSparse,
               sys.gpu.sparse_update_overhead *
                   cost_->GatherSeconds(3 * w.touched_bytes, sys.gpu));
  tl.ChargeGpu(
      Phase::kOptimizerDense,
      cost_->StreamSeconds(3 * w.dense_param_count * sizeof(float), sys.gpu));
}

void StepAccountant::ChargeSyncToGpus(uint64_t hot_bytes,
                                      Timeline& tl) const {
  const SystemSpec& sys = cost_->system();
  const int g = std::max(1, sys.num_gpus);
  const int nodes = std::max(1, sys.num_nodes);
  // Broadcast over per-GPU PCIe links proceeds in parallel; remote nodes
  // first receive the slice over the network (sends fan out in parallel).
  tl.Charge(Phase::kEmbeddingSync, cost_->PcieTransferSeconds(hot_bytes));
  tl.AddPcieBytes(hot_bytes * static_cast<uint64_t>(g * nodes));
  if (nodes > 1) {
    tl.Charge(Phase::kEmbeddingSync,
              cost_->NetworkTransferSeconds(hot_bytes));
    tl.AddNetworkBytes(hot_bytes * static_cast<uint64_t>(nodes - 1));
  }
}

void StepAccountant::ChargeSyncToCpu(uint64_t hot_bytes, Timeline& tl) const {
  const SystemSpec& sys = cost_->system();
  const int nodes = std::max(1, sys.num_nodes);
  // All replicas are identical; the GPU nearest each CPU shard ships the
  // rows back, and with sharded masters each node's share crosses PCIe
  // locally (no inter-node hop needed).
  tl.Charge(Phase::kEmbeddingSync,
            cost_->PcieTransferSeconds(hot_bytes / nodes));
  tl.AddPcieBytes(hot_bytes);
}

void StepAccountant::ChargeShardedHotStep(const BatchWork& w,
                                          const ShardedStepTraffic& t,
                                          Timeline& tl) const {
  const SystemSpec& sys = cost_->system();
  const int g = std::max(1, sys.num_gpus);
  const int nodes = std::max(1, sys.num_nodes);
  const int world = g * nodes;
  const uint64_t shard = w.batch_size / world;

  // Forward gathers: replicated rows serve each GPU's 1/world batch shard
  // locally (the ChargeHotStep pattern); sharded rows are gathered by
  // their owners for the whole global batch, so the step waits on the most
  // loaded owner.
  tl.ChargeGpu(
      Phase::kEmbeddingForward,
      cost_->GatherSeconds(t.replicated_lookup_bytes / world, sys.gpu) +
          cost_->GatherSeconds(t.max_device_lookup_bytes, sys.gpu));

  // All-to-all of the sharded share's pooled activations (forward), and of
  // their gradients (backward). Scaling the batch's activation bytes by
  // the sharded share of lookup traffic prices replicated hits at zero
  // exchange — the entire point of replicating the head. Each device
  // exchanges with (world - 1) peers: (g - 1) of them over NVLink, the
  // other g * (nodes - 1) over the network, links of all devices (nodes)
  // running in parallel.
  const uint64_t lookup_total =
      t.replicated_lookup_bytes + t.sharded_lookup_bytes;
  if (world > 1 && t.sharded_lookup_bytes > 0 && lookup_total > 0) {
    const uint64_t shard_activation =
        w.embedding_activation_bytes * t.sharded_lookup_bytes / lookup_total;
    const uint64_t exchanged = shard_activation * (world - 1) / world;
    const uint64_t intra = exchanged * (g - 1) / (world - 1);
    const uint64_t inter = exchanged - intra;
    if (intra > 0) {
      const double a2a_nv =
          2.0 * sys.nvlink.latency + static_cast<double>(intra) /
                                         static_cast<double>(world) /
                                         sys.nvlink.bandwidth;
      tl.Charge(Phase::kAllReduce, a2a_nv);
      tl.Charge(Phase::kAllReduce, a2a_nv);
      tl.AddNvlinkBytes(2 * intra);
    }
    if (inter > 0) {
      const double a2a_net =
          2.0 * sys.network.latency + static_cast<double>(inter) /
                                          static_cast<double>(nodes) /
                                          sys.network.bandwidth;
      tl.Charge(Phase::kNetwork, a2a_net);
      tl.Charge(Phase::kNetwork, a2a_net);
      tl.AddNetworkBytes(2 * inter);
    }
  }

  // Dense network: identical to every other placement.
  tl.ChargeGpu(Phase::kMlpForward,
               cost_->DenseComputeSeconds(w.forward_flops / world, shard,
                                          sys.gpu));
  tl.ChargeGpu(Phase::kMlpBackward,
               cost_->DenseComputeSeconds(2 * w.forward_flops / world, shard,
                                          sys.gpu));

  // Scatter mirrors the forward gathers.
  tl.ChargeGpu(
      Phase::kEmbeddingBackward,
      cost_->GatherSeconds(t.replicated_lookup_bytes / world, sys.gpu) +
          cost_->GatherSeconds(t.max_device_lookup_bytes, sys.gpu));

  // Replicated rows' gradients ride the dense all-reduce (every device
  // needs them, as in ChargeHotStep); sharded rows' gradients already
  // arrived at their owner through the all-to-all above.
  const uint64_t grad_bytes =
      w.dense_param_count * sizeof(float) + t.replicated_touched_bytes;
  tl.Charge(Phase::kAllReduce, cost_->AllReduceSeconds(grad_bytes));
  if (g > 1) tl.AddNvlinkBytes(2 * (g - 1) * grad_bytes / g * g);
  if (nodes > 1) tl.AddNetworkBytes(2 * (nodes - 1) * grad_bytes / nodes);

  // Sparse optimizer: every device updates its replicated copy in full
  // (concurrently, as in the hot step); each shard is updated only by its
  // owner, so the step waits on the most touched one.
  tl.ChargeGpu(
      Phase::kOptimizerSparse,
      sys.gpu.sparse_update_overhead *
          (cost_->GatherSeconds(3 * t.replicated_touched_bytes, sys.gpu) +
           cost_->GatherSeconds(3 * t.max_device_touched_bytes, sys.gpu)));
  tl.ChargeGpu(
      Phase::kOptimizerDense,
      cost_->StreamSeconds(3 * w.dense_param_count * sizeof(float), sys.gpu));
}

void StepAccountant::ChargeShardedSyncToGpus(uint64_t replicated_bytes,
                                             uint64_t shard_bytes_total,
                                             uint64_t max_shard_bytes,
                                             Timeline& tl) const {
  const SystemSpec& sys = cost_->system();
  const int g = std::max(1, sys.num_gpus);
  const int nodes = std::max(1, sys.num_nodes);
  // Replicated subset: ChargeSyncToGpus semantics (parallel per-GPU
  // broadcast, remote nodes fed over the network first). Shards: each
  // owner pulls its own rows over its own PCIe link concurrently, so the
  // wall only grows by the largest shard; remote owners' shards cross the
  // network, per-node links in parallel.
  tl.Charge(Phase::kEmbeddingSync,
            cost_->PcieTransferSeconds(replicated_bytes) +
                cost_->PcieTransferSeconds(max_shard_bytes));
  tl.AddPcieBytes(replicated_bytes * static_cast<uint64_t>(g * nodes) +
                  shard_bytes_total);
  if (nodes > 1) {
    const uint64_t remote_shards = shard_bytes_total * (nodes - 1) / nodes;
    tl.Charge(Phase::kEmbeddingSync,
              cost_->NetworkTransferSeconds(replicated_bytes) +
                  cost_->NetworkTransferSeconds(remote_shards / nodes));
    tl.AddNetworkBytes(replicated_bytes * static_cast<uint64_t>(nodes - 1) +
                       remote_shards);
  }
}

void StepAccountant::ChargeShardedSyncToCpu(uint64_t replicated_bytes,
                                            uint64_t shard_bytes_total,
                                            uint64_t max_shard_bytes,
                                            Timeline& tl) const {
  const SystemSpec& sys = cost_->system();
  const int nodes = std::max(1, sys.num_nodes);
  // One replica per node returns that node's share of the replicated
  // subset (ChargeSyncToCpu semantics); shard owners return their rows
  // concurrently. Shards of remote owners hop the network to reach their
  // node's CPU master shard.
  tl.Charge(Phase::kEmbeddingSync,
            cost_->PcieTransferSeconds(replicated_bytes / nodes) +
                cost_->PcieTransferSeconds(max_shard_bytes));
  tl.AddPcieBytes(replicated_bytes + shard_bytes_total);
  if (nodes > 1) {
    const uint64_t remote_shards = shard_bytes_total * (nodes - 1) / nodes;
    tl.Charge(Phase::kEmbeddingSync,
              cost_->NetworkTransferSeconds(remote_shards / nodes));
    tl.AddNetworkBytes(remote_shards);
  }
}

void StepAccountant::ChargeNvOptStep(const BatchWork& w,
                                     const std::vector<bool>& table_on_gpu,
                                     size_t dim, size_t batch_size,
                                     Timeline& tl) const {
  const SystemSpec& sys = cost_->system();
  const int g = std::max(1, sys.num_gpus);
  FAE_CHECK_EQ(table_on_gpu.size(), w.per_table_lookups.size());

  uint64_t gpu_lookup_bytes = 0;
  uint64_t gpu_touched_bytes = 0;
  uint64_t cpu_lookup_bytes = 0;
  uint64_t cpu_touched_bytes = 0;
  uint64_t cpu_activation_bytes = 0;
  const uint64_t row_bytes = dim * sizeof(float);
  for (size_t t = 0; t < table_on_gpu.size(); ++t) {
    const uint64_t lb = w.per_table_lookups[t] * row_bytes;
    const uint64_t tb = w.per_table_touched[t] * row_bytes;
    if (table_on_gpu[t]) {
      gpu_lookup_bytes += lb;
      gpu_touched_bytes += tb;
    } else {
      cpu_lookup_bytes += lb;
      cpu_touched_bytes += tb;
      cpu_activation_bytes += batch_size * row_bytes;  // pooled output
    }
  }

  // GPU-resident tables: fp16 storage halves the traffic but pays a
  // convert step folded into the gather efficiency here as +50% time.
  tl.ChargeGpu(Phase::kEmbeddingForward,
               1.5 * cost_->GatherSeconds(gpu_lookup_bytes / 2 / g, sys.gpu));
  tl.ChargeGpu(Phase::kEmbeddingBackward,
               1.5 * cost_->GatherSeconds(gpu_lookup_bytes / 2 / g, sys.gpu));
  tl.ChargeGpu(Phase::kOptimizerSparse,
               cost_->GatherSeconds(3 * gpu_touched_bytes / 2, sys.gpu));

  // CPU-resident tables follow the baseline path.
  if (cpu_lookup_bytes > 0) {
    tl.ChargeCpu(Phase::kEmbeddingForward,
                 cost_->GatherSeconds(cpu_lookup_bytes, sys.cpu));
    tl.Charge(Phase::kCpuGpuTransfer,
              cost_->PcieTransferSeconds(cpu_activation_bytes / g));
    tl.Charge(Phase::kCpuGpuTransfer,
              cost_->PcieTransferSeconds(cpu_activation_bytes / g));
    tl.AddPcieBytes(2 * cpu_activation_bytes);
    tl.ChargeCpu(Phase::kEmbeddingBackward,
                 cost_->GatherSeconds(cpu_lookup_bytes, sys.cpu));
    tl.ChargeCpu(Phase::kOptimizerSparse,
                 sys.cpu.sparse_update_overhead *
                     cost_->GatherSeconds(3 * cpu_touched_bytes, sys.cpu));
  }

  // Dense network identical to the other placements.
  const uint64_t shard = w.batch_size / g;
  tl.ChargeGpu(Phase::kMlpForward,
               cost_->DenseComputeSeconds(w.forward_flops / g, shard,
                                          sys.gpu));
  tl.ChargeGpu(Phase::kMlpBackward,
               cost_->DenseComputeSeconds(2 * w.forward_flops / g, shard,
                                          sys.gpu));
  const uint64_t grad_bytes =
      w.dense_param_count * sizeof(float) + gpu_touched_bytes / 2;
  tl.Charge(Phase::kAllReduce, cost_->AllReduceSeconds(grad_bytes));
  if (g > 1) tl.AddNvlinkBytes(2 * (g - 1) * grad_bytes / g * g);
  tl.ChargeGpu(
      Phase::kOptimizerDense,
      cost_->StreamSeconds(3 * w.dense_param_count * sizeof(float), sys.gpu));
}

void StepAccountant::ChargeModelParallelStep(const BatchWork& w,
                                             Timeline& tl) const {
  const SystemSpec& sys = cost_->system();
  const int g = std::max(1, sys.num_gpus);
  const uint64_t shard = w.batch_size / g;

  // Each GPU gathers the lookups landing in its table shard (balanced
  // partition assumed).
  tl.ChargeGpu(Phase::kEmbeddingForward,
               cost_->GatherSeconds(w.embedding_read_bytes / g, sys.gpu));

  // All-to-all of pooled activations: every GPU owns 1/g of the features
  // for the whole batch but needs all features for its 1/g batch shard.
  if (g > 1) {
    const uint64_t exchanged =
        w.embedding_activation_bytes * (g - 1) / g;
    const double a2a = 2.0 * sys.nvlink.latency +
                       static_cast<double>(exchanged) /
                           static_cast<double>(g) / sys.nvlink.bandwidth;
    tl.Charge(Phase::kAllReduce, a2a);
    tl.AddNvlinkBytes(exchanged);
    // Gradients of the pooled activations flow back the same way.
    tl.Charge(Phase::kAllReduce, a2a);
    tl.AddNvlinkBytes(exchanged);
  }

  tl.ChargeGpu(Phase::kMlpForward,
               cost_->DenseComputeSeconds(w.forward_flops / g, shard,
                                          sys.gpu));
  tl.ChargeGpu(Phase::kMlpBackward,
               cost_->DenseComputeSeconds(2 * w.forward_flops / g, shard,
                                          sys.gpu));

  tl.ChargeGpu(Phase::kEmbeddingBackward,
               cost_->GatherSeconds(w.embedding_read_bytes / g, sys.gpu));
  // Sharded sparse optimizer: each GPU updates only its tables.
  tl.ChargeGpu(Phase::kOptimizerSparse,
               sys.gpu.sparse_update_overhead *
                   cost_->GatherSeconds(3 * w.touched_bytes / g, sys.gpu));

  const uint64_t dense_bytes = w.dense_param_count * sizeof(float);
  tl.Charge(Phase::kAllReduce, cost_->AllReduceSeconds(dense_bytes));
  if (g > 1) tl.AddNvlinkBytes(2 * (g - 1) * dense_bytes / g * g);
  tl.ChargeGpu(Phase::kOptimizerDense,
               cost_->StreamSeconds(3 * dense_bytes, sys.gpu));
}

void StepAccountant::ChargeCacheStep(const BatchWork& w,
                                     uint64_t hit_lookup_bytes,
                                     uint64_t miss_lookup_bytes,
                                     uint64_t miss_touched_bytes,
                                     Timeline& tl) const {
  const SystemSpec& sys = cost_->system();
  const int g = std::max(1, sys.num_gpus);
  const uint64_t shard = w.batch_size / g;

  // Cache hits: local HBM gathers on each GPU's shard, through the cache
  // index (see kCacheIndirection above).
  tl.ChargeGpu(Phase::kEmbeddingForward,
               kCacheIndirection *
                   cost_->GatherSeconds(hit_lookup_bytes / g, sys.gpu));
  // Misses stall the batch: the CPU gathers them and ships the rows over
  // PCIe, then takes the gradient rows back after the backward pass.
  if (miss_lookup_bytes > 0) {
    tl.ChargeCpu(Phase::kEmbeddingForward,
                 cost_->GatherSeconds(miss_lookup_bytes, sys.cpu));
    tl.Charge(Phase::kCpuGpuTransfer,
              cost_->PcieTransferSeconds(miss_lookup_bytes / g));
    tl.Charge(Phase::kCpuGpuTransfer,
              cost_->PcieTransferSeconds(miss_lookup_bytes / g));
    tl.AddPcieBytes(2 * miss_lookup_bytes);
    tl.ChargeCpu(Phase::kEmbeddingBackward,
                 cost_->GatherSeconds(miss_lookup_bytes, sys.cpu));
    tl.ChargeCpu(Phase::kOptimizerSparse,
                 sys.cpu.sparse_update_overhead *
                     cost_->GatherSeconds(3 * miss_touched_bytes, sys.cpu));
  }

  tl.ChargeGpu(Phase::kMlpForward,
               cost_->DenseComputeSeconds(w.forward_flops / g, shard,
                                          sys.gpu));
  tl.ChargeGpu(Phase::kMlpBackward,
               cost_->DenseComputeSeconds(2 * w.forward_flops / g, shard,
                                          sys.gpu));

  // Cached rows: scatter + optimizer on the GPUs, gradients all-reduced
  // with the dense parameters (replicated cache, as in FAE's hot path).
  tl.ChargeGpu(Phase::kEmbeddingBackward,
               kCacheIndirection *
                   cost_->GatherSeconds(hit_lookup_bytes / g, sys.gpu));
  const uint64_t hit_touched_bytes =
      w.touched_bytes > miss_touched_bytes
          ? w.touched_bytes - miss_touched_bytes
          : 0;
  tl.ChargeGpu(Phase::kOptimizerSparse,
               sys.gpu.sparse_update_overhead *
                   cost_->GatherSeconds(3 * hit_touched_bytes, sys.gpu));
  const uint64_t grad_bytes =
      w.dense_param_count * sizeof(float) + hit_touched_bytes;
  tl.Charge(Phase::kAllReduce, cost_->AllReduceSeconds(grad_bytes));
  if (g > 1) tl.AddNvlinkBytes(2 * (g - 1) * grad_bytes / g * g);
  tl.ChargeGpu(
      Phase::kOptimizerDense,
      cost_->StreamSeconds(3 * w.dense_param_count * sizeof(float), sys.gpu));
}

StepAccountant::BaselineParts StepAccountant::ChargeStaleSkipStep(
    const BatchWork& w, const StaleSkipTraffic& t, Timeline& tl) const {
  BaselineParts parts;
  const SystemSpec& sys = cost_->system();
  const int g = std::max(1, sys.num_gpus);
  const int nodes = std::max(1, sys.num_nodes);
  const int world = g * nodes;

  // Forward path: identical to ChargeBaselineParts. Frozen rows are still
  // read — skipping only elides their *update*.
  const double emb_fwd =
      cost_->GatherSeconds(w.embedding_read_bytes / nodes, sys.cpu);
  tl.ChargeCpu(Phase::kEmbeddingForward, emb_fwd);
  parts.cpu += emb_fwd;
  if (nodes > 1) {
    const uint64_t remote =
        w.embedding_activation_bytes * (nodes - 1) / nodes;
    const double hop = cost_->NetworkTransferSeconds(remote / nodes);
    tl.Charge(Phase::kNetwork, hop);
    tl.Charge(Phase::kNetwork, hop);
    parts.serial += 2 * hop;
    tl.AddNetworkBytes(2 * remote);
  }

  const double xfer =
      cost_->PcieTransferSeconds(w.embedding_activation_bytes / world);
  tl.Charge(Phase::kCpuGpuTransfer, xfer);
  parts.serial += xfer;
  tl.AddPcieBytes(w.embedding_activation_bytes);

  const uint64_t shard = w.batch_size / world;
  const double mlp_fwd = cost_->DenseComputeSeconds(w.forward_flops / world,
                                                    shard, sys.gpu);
  tl.ChargeGpu(Phase::kMlpForward, mlp_fwd);
  const double mlp_bwd = cost_->DenseComputeSeconds(
      2 * w.forward_flops / world, shard, sys.gpu);
  tl.ChargeGpu(Phase::kMlpBackward, mlp_bwd);
  parts.gpu += mlp_fwd + mlp_bwd;

  // Gradients still cross back in full: the pooled gradient tensor is
  // batch-shaped, not row-count-shaped, and the skip decision is made on
  // the CPU after it arrives.
  tl.Charge(Phase::kCpuGpuTransfer, xfer);
  parts.serial += xfer;
  tl.AddPcieBytes(w.embedding_activation_bytes);

  // The win: scatter only the live rows' gradients, then run the sparse
  // optimizer over only the live touched bytes.
  const double emb_bwd =
      cost_->GatherSeconds(t.live_lookup_bytes / nodes, sys.cpu);
  tl.ChargeCpu(Phase::kEmbeddingBackward, emb_bwd);
  const double sparse_opt =
      sys.cpu.sparse_update_overhead *
      cost_->GatherSeconds(3 * t.live_touched_bytes / nodes, sys.cpu);
  tl.ChargeCpu(Phase::kOptimizerSparse, sparse_opt);
  parts.cpu += emb_bwd + sparse_opt;

  const uint64_t dense_bytes = w.dense_param_count * sizeof(float);
  const double allreduce = cost_->AllReduceSeconds(dense_bytes);
  tl.Charge(Phase::kAllReduce, allreduce);
  parts.serial += allreduce;
  if (g > 1) tl.AddNvlinkBytes(2 * (g - 1) * dense_bytes / g * g);
  if (nodes > 1) tl.AddNetworkBytes(2 * (nodes - 1) * dense_bytes / nodes);
  const double dense_opt = cost_->StreamSeconds(3 * dense_bytes, sys.gpu);
  tl.ChargeGpu(Phase::kOptimizerDense, dense_opt);
  parts.gpu += dense_opt;
  return parts;
}

StepAccountant::OracleCacheParts StepAccountant::ChargeOracleCacheStep(
    const BatchWork& w, const OracleCacheTraffic& t, Timeline& tl) const {
  OracleCacheParts parts;
  const SystemSpec& sys = cost_->system();
  const int g = std::max(1, sys.num_gpus);
  const int nodes = std::max(1, sys.num_nodes);
  const int world = g * nodes;
  const uint64_t shard = w.batch_size / world;

  // Hit lookups: HBM gathers through the cache index, sharded over GPUs.
  const double hit_fwd =
      kCacheIndirection *
      cost_->GatherSeconds(t.hit_lookup_bytes / world, sys.gpu);
  tl.ChargeGpu(Phase::kEmbeddingForward, hit_fwd);
  parts.gpu += hit_fwd;

  // Miss lookups follow the plain hybrid path: CPU gathers, pooled
  // activations over PCIe both ways scaled by the miss share of the
  // batch's lookup traffic, CPU scatter + sparse optimizer on the way
  // back. With a hit rate of 1 this whole block (the baseline's critical
  // path) vanishes — that is the cache's entire win.
  const uint64_t lookup_total = t.hit_lookup_bytes + t.miss_lookup_bytes;
  if (t.miss_lookup_bytes > 0) {
    const uint64_t miss_activation_bytes =
        w.embedding_activation_bytes * t.miss_lookup_bytes / lookup_total;
    const double miss_fwd =
        cost_->GatherSeconds(t.miss_lookup_bytes / nodes, sys.cpu);
    tl.ChargeCpu(Phase::kEmbeddingForward, miss_fwd);
    const double xfer =
        cost_->PcieTransferSeconds(miss_activation_bytes / world);
    tl.Charge(Phase::kCpuGpuTransfer, xfer);
    tl.Charge(Phase::kCpuGpuTransfer, xfer);
    tl.AddPcieBytes(2 * miss_activation_bytes);
    parts.serial += 2 * xfer;
    parts.transfer_bytes += 2 * miss_activation_bytes;
    const double miss_bwd =
        cost_->GatherSeconds(t.miss_lookup_bytes / nodes, sys.cpu);
    tl.ChargeCpu(Phase::kEmbeddingBackward, miss_bwd);
    const double miss_opt =
        sys.cpu.sparse_update_overhead *
        cost_->GatherSeconds(3 * t.miss_touched_bytes / nodes, sys.cpu);
    tl.ChargeCpu(Phase::kOptimizerSparse, miss_opt);
    parts.cpu += miss_fwd + miss_bwd + miss_opt;
  }

  // Dense network: identical to every other placement.
  const double mlp_fwd =
      cost_->DenseComputeSeconds(w.forward_flops / world, shard, sys.gpu);
  tl.ChargeGpu(Phase::kMlpForward, mlp_fwd);
  const double mlp_bwd = cost_->DenseComputeSeconds(
      2 * w.forward_flops / world, shard, sys.gpu);
  tl.ChargeGpu(Phase::kMlpBackward, mlp_bwd);
  parts.gpu += mlp_fwd + mlp_bwd;

  // Hit rows: scatter + sparse optimizer on the GPUs; their gradients ride
  // the dense all-reduce over NVLink (as in the FAE hot path).
  const double hit_bwd =
      kCacheIndirection *
      cost_->GatherSeconds(t.hit_lookup_bytes / world, sys.gpu);
  tl.ChargeGpu(Phase::kEmbeddingBackward, hit_bwd);
  const double hit_opt =
      sys.gpu.sparse_update_overhead *
      cost_->GatherSeconds(3 * t.hit_touched_bytes, sys.gpu);
  tl.ChargeGpu(Phase::kOptimizerSparse, hit_opt);
  parts.gpu += hit_bwd + hit_opt;

  const uint64_t grad_bytes =
      w.dense_param_count * sizeof(float) + t.hit_touched_bytes;
  const double allreduce = cost_->AllReduceSeconds(grad_bytes);
  tl.Charge(Phase::kAllReduce, allreduce);
  parts.serial += allreduce;
  if (g > 1) tl.AddNvlinkBytes(2 * (g - 1) * grad_bytes / g * g);
  if (nodes > 1) tl.AddNetworkBytes(2 * (nodes - 1) * grad_bytes / nodes);
  const double dense_opt = cost_->StreamSeconds(
      3 * w.dense_param_count * sizeof(float), sys.gpu);
  tl.ChargeGpu(Phase::kOptimizerDense, dense_opt);
  parts.gpu += dense_opt;

  // Cache DMA, each GPU's shard over its own PCIe link in parallel. Late
  // fetches and writebacks sit on the critical path (the batch waits);
  // timely prefetch targets otherwise-idle PCIe and is returned in its own
  // lane so the caller only pays what compute cannot hide.
  if (t.late_prefetch_bytes + t.writeback_bytes > 0) {
    const double sync = cost_->PcieTransferSeconds(
        (t.late_prefetch_bytes + t.writeback_bytes) / world);
    tl.Charge(Phase::kEmbeddingSync, sync);
    tl.AddPcieBytes(t.late_prefetch_bytes + t.writeback_bytes);
    parts.serial += sync;
    parts.transfer_bytes += t.late_prefetch_bytes + t.writeback_bytes;
  }
  if (t.timely_prefetch_bytes > 0) {
    const double dma =
        cost_->PcieTransferSeconds(t.timely_prefetch_bytes / world);
    tl.Charge(Phase::kEmbeddingSync, dma);
    tl.AddPcieBytes(t.timely_prefetch_bytes);
    parts.timely_dma = dma;
    parts.transfer_bytes += t.timely_prefetch_bytes;
  }
  return parts;
}

}  // namespace fae
