#ifndef FAE_ENGINE_METRICS_H_
#define FAE_ENGINE_METRICS_H_

#include <cstddef>
#include <vector>

#include "data/minibatch.h"
#include "models/rec_model.h"

namespace fae {

/// One point of a training curve (Fig 12's axes).
struct CurvePoint {
  size_t iteration = 0;     // training batches completed
  double train_loss = 0.0;  // mean loss since the previous point
  double train_acc = 0.0;
  double test_loss = 0.0;
  double test_acc = 0.0;
};

/// Accumulates per-batch training statistics between curve points.
class RunningMetric {
 public:
  /// Accumulator snapshot for checkpoint/resume: restoring it makes the
  /// next Flush/mean identical to an uninterrupted run's.
  struct State {
    double loss_sum = 0.0;
    uint64_t correct = 0;
    uint64_t samples = 0;
    uint64_t batches = 0;
  };

  void Observe(double loss, size_t correct, size_t batch_size);
  /// Mean loss/accuracy since the last Flush; zeros when nothing observed.
  CurvePoint Flush(size_t iteration);

  State state() const {
    return State{loss_sum_, correct_, samples_, batches_};
  }
  void Restore(const State& state) {
    loss_sum_ = state.loss_sum;
    correct_ = state.correct;
    samples_ = state.samples;
    batches_ = state.batches;
  }

  double mean_loss() const;
  double accuracy() const;
  size_t samples() const { return samples_; }

 private:
  double loss_sum_ = 0.0;
  size_t correct_ = 0;
  size_t samples_ = 0;
  size_t batches_ = 0;
};

/// Loss, accuracy, and ROC-AUC of `model` on `batches` (inference only).
struct EvalResult {
  double loss = 0.0;
  double accuracy = 0.0;
  /// Area under the ROC curve — the metric CTR systems actually track;
  /// 0.5 = chance, 1.0 = perfect ranking. 0 when a class is absent.
  double auc = 0.0;
  size_t samples = 0;
};
EvalResult Evaluate(const RecModel& model,
                    const std::vector<BatchView>& batches);
/// Legacy overload; each MiniBatch is viewed in place.
EvalResult Evaluate(const RecModel& model,
                    const std::vector<MiniBatch>& batches);

/// ROC-AUC of `scores` against binary `labels` (>= 0.5 is positive),
/// computed via the rank statistic with midrank tie handling. Returns 0
/// when either class is empty.
double RocAuc(const std::vector<float>& scores,
              const std::vector<float>& labels);

}  // namespace fae

#endif  // FAE_ENGINE_METRICS_H_
