#ifndef FAE_ENGINE_LOOKAHEAD_CACHE_H_
#define FAE_ENGINE_LOOKAHEAD_CACHE_H_

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "core/embedding_classifier.h"
#include "data/batch_view.h"
#include "data/flat_dataset.h"
#include "engine/dirty_rows.h"

namespace fae {

/// Embedding-cache modes for TrainOptions::cache. Like the pipeline knobs,
/// the mode changes only the modeled schedule, never the math: losses,
/// tables, and checkpoint bytes are bit-identical with the cache on or off
/// (tests/engine/pipeline_determinism_test.cc).
enum class CacheMode {
  kOff,
  /// Lookahead oracle cache (BagPipe-style): the staging ring's upcoming
  /// batch specs reveal the exact rows the next k batches touch, so the
  /// cache prefetches them into a budgeted simulated GPU cache ahead of
  /// use and evicts only rows with no reference left in the window —
  /// furthest-in-future (Belady) eviction made exact by the oracle.
  kOracle,
};

std::string_view CacheModeName(CacheMode mode);

/// The lookahead oracle cache fused into the batch pipeline.
///
/// The pipeline already stages future batches in a depth-N ring, which
/// means the trainer can see the future: the union of embedding rows the
/// next `lookahead` batches reference. This class turns that visibility
/// into a cache policy:
///
///   - a per-table residency bitmap plus window reference counts track
///     which rows are in the simulated GPU cache and how many upcoming
///     lookups still need them (DirtyRows-style flat bitmaps + reused
///     lists — the steady-state step allocates nothing once warmed up,
///     per the PR-3 contract);
///   - rows missing from the cache are prefetched in window order by a
///     persistent cursor, at most once per window entry. Rows fetched one
///     or more steps before their batch trains count as *timely* (their
///     DMA hides under compute, like the input prefetcher hides gather);
///     rows first seen at their own step (segment starts, budget stalls)
///     count as *late* and pay serial transfer time;
///   - eviction only ever selects a resident row with zero references in
///     the window (any such row is Belady-optimal: its next use is beyond
///     every windowed row's). When capacity is full and every resident
///     row is still referenced, new rows simply miss — the budget is a
///     hard cap, never exceeded;
///   - rows updated on the GPU while cached are dirty; evicting one (or
///     flushing at a hot-chunk boundary) writes it back over PCIe through
///     the same sync cost path the trainer already charges;
///   - a master-side write to a cached row (FAE's hot chunks pushing to
///     the masters, serving's continuous training) marks it stale: the
///     next reference refetches the row (counted, and charged) before
///     serving it from the GPU.
///
/// The cache is a *cost-model overlay*: it observes the exact reference
/// stream and prices an alternative schedule, but the numeric path never
/// reads or writes it, which is what keeps training bit-identical cache
/// on/off. Per-step savings are computed against the real StepAccountant
/// and credited through Timeline::AddCacheSavedSeconds — outside
/// Timeline::State, exactly like the pipeline's overlap savings, so
/// checkpoints stay byte-equal across cache modes.
///
/// In the serving loop the hot slice acts as the cache's *pinned tier*:
/// always GPU-resident, never counted against the budget, never evicted.
/// The cache proper manages only cold rows there (SetPinned + DropPinned
/// on hot swaps).
class LookaheadCache {
 public:
  struct Options {
    /// Hard capacity in rows, across all tables. Never exceeded.
    size_t budget_rows = 0;
    /// Oracle window in batches (>= 1; bounds shared with the pipeline
    /// ring — engine/ring_limits.h). 1 means only the current batch is
    /// visible: every first fetch is late, but cross-batch reuse still
    /// hits.
    size_t lookahead = 1;
    /// Modeled bytes to move one row over PCIe (embedding payload plus
    /// optimizer state — the sync machinery's row size).
    uint64_t row_bytes = 0;
    /// Training caches update resident rows on the GPU (hits dirty the
    /// row; evictions write back). Serving caches are read-only replicas
    /// refreshed from the master, never dirty.
    bool track_dirty = true;
  };

  /// What one step's batch cost looks like under the cache; the trainer
  /// prices this against the plain hybrid step through the accountant.
  struct StepCharge {
    uint64_t hit_lookups = 0;   // lookups served from the GPU cache
    uint64_t miss_lookups = 0;  // lookups on the CPU fallback path
    uint64_t hit_rows = 0;      // unique batch rows resident (or fetched)
    uint64_t miss_rows = 0;     // unique batch rows that could not fit
    uint64_t timely_prefetch_bytes = 0;  // shipped >= 1 step ahead
    uint64_t late_prefetch_bytes = 0;    // shipped at the step itself
    uint64_t stale_refreshes = 0;        // invalidated rows refetched
    uint64_t writeback_bytes = 0;        // dirty evictions this step
  };

  /// Lifetime totals (across segments and boundary flushes).
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t stale_refreshes = 0;
    uint64_t prefetch_bytes = 0;
    uint64_t writeback_bytes = 0;
    uint64_t evictions = 0;
    uint64_t peak_resident_rows = 0;
  };

  LookaheadCache() = default;

  /// Sizes every per-table structure. Steady-state operation allocates
  /// nothing beyond what warms up here (vectors only ever reuse capacity).
  void Init(const std::vector<uint64_t>& table_rows, const Options& options);

  /// Serving's pinned tier: rows hot in `pinned` are served from the
  /// replicated hot slice, so the cache skips them entirely. Pass nullptr
  /// (the default) for training, where the cache may hold any row.
  void SetPinned(const HotSet* pinned) { pinned_ = pinned; }

  /// Starts a new oracle segment (baseline epoch / FAE schedule chunk /
  /// serving session). The window resets — prefetch never crosses a
  /// segment boundary, mirroring the staging ring — but cache *contents*
  /// persist.
  void BeginSegment();

  /// Appends the next batch (in training order) to the oracle window.
  /// At most `lookahead` batches may be in flight.
  void PushBatch(const BatchView& view);
  void PushBatch(const FlatDataset& flat, std::span<const uint64_t> ids);

  /// Processes the oldest pushed batch — the one about to train: fetches
  /// its still-missing rows (late), classifies every lookup, slides the
  /// window, then runs the prefetch cursor over the remaining window
  /// (timely). Returns the step's traffic for the accountant.
  StepCharge OnStep();

  /// Cold->hot boundary (training): writes dirty rows of `hot` back to
  /// the master so the upcoming hot-slice sync is coherent. Returns the
  /// bytes written back (also tallied in stats).
  uint64_t FlushDirty(const HotSet& hot);

  /// Hot->cold boundary (training): the hot chunk just pushed replica
  /// updates to the masters, so cached copies of hot rows are stale; the
  /// next reference refetches them.
  void InvalidateHot(const HotSet& hot);

  /// End of run / crash unwind: writes every remaining dirty row back.
  uint64_t FlushAllDirty();

  /// Serving's continuous training just updated the master rows that
  /// `ids`'s lookups reference: resident cached copies refresh eagerly (a
  /// serving cache is a read-only replica — the next request must not be
  /// answered from the superseded copy). Returns the refreshed bytes for
  /// the caller to charge; also tallied as stale refreshes.
  uint64_t RefreshUpdated(const FlatDataset& flat,
                          std::span<const uint64_t> ids);

  /// Serving hot swap: rows of `pinned` now live in the replicated hot
  /// slice, so cached copies are dropped (freeing budget). Serving caches
  /// are clean, but dirty copies would be written back honestly. Returns
  /// bytes written back.
  uint64_t DropPinned(const HotSet& pinned);

  // Introspection (tests and the eviction-invariant fuzzer).
  bool IsResident(size_t table, uint32_t row) const {
    return TestBit(resident_[table], row);
  }
  bool IsDirty(size_t table, uint32_t row) const {
    return TestBit(dirty_[table], row);
  }
  bool IsStale(size_t table, uint32_t row) const {
    return TestBit(stale_[table], row);
  }
  uint32_t WindowRefs(size_t table, uint32_t row) const {
    return refs_[table][row];
  }
  size_t resident_rows() const { return resident_count_; }
  size_t window_batches() const { return tail_seq_ - head_seq_; }
  const Options& options() const { return options_; }
  const Stats& stats() const { return stats_; }

 private:
  using Bitmap = std::vector<uint64_t>;

  static bool TestBit(const Bitmap& b, uint32_t row) {
    return (b[row >> 6] >> (row & 63)) & 1;
  }
  static void SetBit(Bitmap& b, uint32_t row) {
    b[row >> 6] |= uint64_t{1} << (row & 63);
  }
  static void ClearBit(Bitmap& b, uint32_t row) {
    b[row >> 6] &= ~(uint64_t{1} << (row & 63));
  }
  static uint64_t Key(size_t table, uint32_t row) {
    return (static_cast<uint64_t>(table) << 32) | row;
  }

  bool IsPinned(size_t table, uint32_t row) const {
    return pinned_ != nullptr && pinned_->IsHot(table, row);
  }

  void PushKey(size_t table, uint32_t row, std::vector<uint64_t>& slot);
  /// Pops a Belady-evictable victim (resident, zero window refs, not
  /// pinned); false when every resident row is still referenced.
  bool PopEvictable(uint64_t* victim);
  void Evict(uint64_t key, uint64_t* writeback_bytes);
  /// Inserts `key`, evicting one victim if at capacity. False when full
  /// with nothing evictable (the row becomes a miss).
  bool TryInsert(size_t table, uint32_t row, bool timely, StepCharge& c);
  /// Walks every resident (table, row); `fn` may clear bits but must not
  /// insert.
  template <typename Fn>
  void ForEachResident(Fn&& fn);

  Options options_;
  const HotSet* pinned_ = nullptr;

  // Per-table state, sized once in Init.
  std::vector<Bitmap> resident_;
  std::vector<Bitmap> dirty_;
  std::vector<Bitmap> stale_;
  std::vector<Bitmap> evict_flag_;  // row has a live evictable_ entry
  std::vector<std::vector<uint32_t>> refs_;  // upcoming window references

  size_t resident_count_ = 0;
  /// LIFO of candidate victims, lazily validated at pop (a row may have
  /// been re-referenced or dropped since it was flagged). Any validated
  /// entry is Belady-optimal, so order among them is free.
  std::vector<uint64_t> evictable_;

  /// The window ring: lookahead reusable per-batch key lists, plus the
  /// absolute batch sequence numbers delimiting the live span and the
  /// persistent prefetch cursor (batch seq + index into its key list).
  std::vector<std::vector<uint64_t>> window_;
  size_t head_seq_ = 0;
  size_t tail_seq_ = 0;
  size_t cursor_seq_ = 0;
  size_t cursor_idx_ = 0;

  /// Per-batch first-occurrence tracker (reused; cleared each step).
  DirtyRows batch_seen_;

  Stats stats_;
};

}  // namespace fae

#endif  // FAE_ENGINE_LOOKAHEAD_CACHE_H_
