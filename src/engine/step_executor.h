#ifndef FAE_ENGINE_STEP_EXECUTOR_H_
#define FAE_ENGINE_STEP_EXECUTOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "data/batch_view.h"
#include "data/dataset.h"
#include "embedding/sparse_sgd.h"
#include "engine/metrics.h"
#include "models/rec_model.h"
#include "sim/timeline.h"
#include "tensor/sgd.h"
#include "util/thread_pool.h"

namespace fae {

class StalenessTracker;

/// Pipelined execution for the baseline and FAE drivers (comparator
/// placements ignore it). Every mode runs the identical math in the
/// identical order — pipelining changes only how input staging and device
/// phases are scheduled (and modeled), never what is computed, so results
/// are bit-exact across modes (tests/engine/pipeline_determinism_test.cc).
enum class PipelineMode {
  /// Fully serial: stage a batch, then step on it.
  kOff,
  /// Double-buffered staging (engine/batch_pipeline.h): a background
  /// thread gathers/packs batch b+1 while batch b trains, hiding input
  /// prep under compute. Prefetch never crosses an epoch or schedule-chunk
  /// boundary (the pipeline's explicit sync points).
  kPrefetch,
  /// kPrefetch plus overlapped phases: the hybrid step's CPU and GPU lanes
  /// run concurrently, and FAE's cold-CPU chunks overlap the subsequent
  /// hot-GPU chunk (including the hot-slice DMA syncs).
  kOverlap,
};

std::string_view PipelineModeName(PipelineMode mode);

/// Input payload of one mini-batch — dense features, labels, CSR offsets
/// and lookup indices: what the staging gather streams into a workspace.
/// Derived from the batch's shape only, so a zero-copy view and its staged
/// copy yield the same value and every pipeline mode charges the same prep
/// time.
uint64_t BatchInputBytes(const BatchView& v);

/// Per-step overlap bookkeeping shared by the serial and pipelined drivers
/// (DESIGN.md §11). Phase charges are identical in every mode; modes
/// differ only in the seconds credited back through
/// Timeline::AddOverlapSavedSeconds:
///   - kPrefetch (depth >= 2): batch b's staging gather runs on the
///     prefetch thread while step b-1 computes, so up to the previous
///     step's unhidden seconds of b's prep are hidden;
///   - kOverlap: additionally the hybrid step's CPU and GPU lanes overlap,
///     hiding min(cpu, gpu) per step.
/// Prefetch cannot reach across a segment boundary (epoch / schedule
/// chunk): the first batch of a segment pays its prep in full.
class OverlapTracker {
 public:
  OverlapTracker(PipelineMode mode, size_t depth, Timeline* tl)
      : mode_(mode), depth_(depth), tl_(tl) {}

  void BeginSegment() { has_prev_ = false; }

  /// One training step: `prep` staging seconds, `total` compute seconds
  /// charged, `overlapped` the step's wall with its CPU/GPU lanes
  /// overlapped (== `total` for single-lane steps).
  void OnStep(double prep, double total, double overlapped);

  /// Chunk-window marks for FAE's hot/cold overlap (kOverlap only): a cold
  /// chunk's unhidden CPU seconds later overlap the next hot chunk's
  /// unhidden GPU+DMA seconds. "Unhidden" subtracts savings already
  /// recorded inside the window, so nothing is credited twice.
  void MarkChunkStart();
  double ChunkUnhiddenSeconds() const;

  PipelineMode mode() const { return mode_; }

 private:
  PipelineMode mode_;
  size_t depth_;
  Timeline* tl_;
  bool has_prev_ = false;
  double prev_unhidden_ = 0.0;
  double chunk_phase0_ = 0.0;
  double chunk_saved0_ = 0.0;
};

/// The reusable execution core shared by the batch Trainer and the online
/// ServingLoop: it owns the optimizers, the kernel thread pool, the
/// prebuilt fused-apply functor, and the eval/batch-staging helpers, so a
/// driver only sequences *which* batches step against *which* tables.
/// Everything here preserves the batch trainer's numeric contract: the
/// fused path runs zero heap allocations at steady state and is
/// bit-identical at any thread count.
class StepExecutor {
 public:
  /// The subset of TrainOptions the execution core needs; both TrainOptions
  /// and ServeOptions can produce one.
  struct Options {
    float dense_lr = 0.1f;
    float sparse_lr = 0.1f;
    /// When false, drivers only run the hardware cost model; MathStep is
    /// never called, but eval-set construction is also skipped.
    bool run_math = true;
    /// Emulate fp16 embedding storage (see TrainOptions::fp16_embeddings).
    bool fp16_embeddings = false;
    size_t num_threads = 1;
    size_t eval_samples = 2048;
    size_t eval_batch = 512;
  };

  /// Held-out eval data gathered once into a flat buffer; `views` are
  /// zero-copy batches into `flat` (so the struct must stay alive while
  /// they are in use; moves are safe — views point at heap buffers).
  struct EvalSet {
    FlatDataset flat;
    std::vector<BatchView> views;
  };

  /// A training batch with its cost-model work units, computed once —
  /// Work() is pure per batch, so the per-epoch loops only shuffle and
  /// charge, never re-derive.
  struct TrainBatch {
    BatchView view;
    BatchWork work;
  };

  StepExecutor(RecModel* model, const Options& options);

  /// Quantizes every table through binary16 when fp16 storage is emulated
  /// (no-op otherwise); drivers call it once before their first step.
  void MaybeQuantizeTables();

  /// One training step into the model's workspaces. The fused (non-fp16)
  /// path performs zero heap allocations once warmed up: the apply functor
  /// is a prebuilt member (single-pointer capture, so std::function's SBO
  /// holds it), dense params are gathered once, and scatter + optimizer
  /// run in SparseSgd's reusable scratch.
  /// With a tracker, each table's fused apply consults it per row
  /// (stale-update skipping; engine/staleness_tracker.h). Only the drivers
  /// that own a tracker pass one — the FAE hot replicas and the
  /// ServingLoop never do, so their steps are untouched.
  void MathStep(const BatchView& batch,
                const std::vector<EmbeddingTable*>& tables,
                RunningMetric& metric, RunningMetric& window,
                StalenessTracker* tracker = nullptr);

  EvalSet MakeEvalSet(const Dataset& dataset,
                      const Dataset::Split& split) const;

  std::vector<TrainBatch> MakeTrainBatches(const FlatDataset& flat,
                                           size_t batch_size, bool hot) const;

  RecModel* model() const { return model_; }
  ThreadPool* pool() const { return pool_.get(); }
  const Options& options() const { return options_; }

 private:
  /// Context behind the prebuilt fused-apply functor: MathStep repoints
  /// `tables` and `tracker` per call (master vs. replica), nothing is
  /// reallocated.
  struct ApplyCtx {
    SparseSgd* sgd = nullptr;
    const std::vector<EmbeddingTable*>* tables = nullptr;
    ThreadPool* pool = nullptr;
    StalenessTracker* tracker = nullptr;
  };

  RecModel* model_;
  Options options_;
  Sgd dense_sgd_;
  SparseSgd sparse_sgd_;
  /// Kernel worker pool, shared with the model; null when num_threads <= 1.
  std::unique_ptr<ThreadPool> pool_;
  ApplyCtx apply_ctx_;
  SparseApplyFn fused_apply_;
  /// model_->DenseParams(), gathered on the first MathStep.
  std::vector<Parameter*> dense_params_;
};

}  // namespace fae

#endif  // FAE_ENGINE_STEP_EXECUTOR_H_
