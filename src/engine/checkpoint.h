#ifndef FAE_ENGINE_CHECKPOINT_H_
#define FAE_ENGINE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/shuffle_scheduler.h"
#include "engine/metrics.h"
#include "engine/staleness_tracker.h"
#include "models/rec_model.h"
#include "sim/timeline.h"
#include "util/random.h"
#include "util/statusor.h"

namespace fae {

/// Checkpoint/resume policy, part of TrainOptions.
struct CheckpointOptions {
  /// Checkpoint file. Empty disables both saving and resuming.
  std::string path;
  /// Save whenever the completed-iteration count crosses a multiple of
  /// this (at batch boundaries for the baseline, at schedule-chunk
  /// boundaries for FAE, where the CPU master copy is authoritative).
  /// 0 disables periodic saves.
  uint64_t every_steps = 0;
  /// Resume from `path` before training. The checkpoint must match the
  /// run (same mode, options, and dataset) or training fails with
  /// FailedPrecondition rather than silently diverging.
  bool resume = false;
};

/// Everything beyond the model weights that a resumed run needs to
/// reproduce an uninterrupted run's loss curve exactly: positional
/// counters, the RNG stream, metric accumulators, the FAE scheduler's
/// adaptive state, and the modeled timeline.
///
/// `mode` is the TrainMode as an integer (this header is included by
/// trainer.h, so it cannot name the enum).
struct TrainerCheckpoint {
  uint32_t mode = 0;
  /// FaeFormat::Fingerprint of the training dataset; a checkpoint taken
  /// on different data is rejected at resume.
  uint64_t dataset_fingerprint = 0;
  /// Hash of every TrainOptions field that affects numerics; ditto.
  uint64_t options_fingerprint = 0;

  uint64_t epoch = 0;            // epoch in progress when saved
  uint64_t iteration = 0;        // completed training batches, global
  uint64_t batch_in_epoch = 0;   // completed batches within `epoch`
  uint64_t hot_batches = 0;      // FAE-only counters
  uint64_t cold_batches = 0;
  uint64_t sync_bytes = 0;

  Xoshiro256::State rng;
  RunningMetric::State metric;   // since-start accumulator
  RunningMetric::State window;   // since-last-curve-point accumulator
  ShuffleScheduler::State scheduler;  // FAE-only
  Timeline::State timeline;
  std::vector<CurvePoint> curve;
  /// Staleness-tracker state when stale-update skipping was active at save
  /// time (TrainOptions::stale_skip != off), empty tables otherwise. The
  /// knob itself is fingerprint-exempt: a resume that keeps skipping on
  /// restores this verbatim (bit-exact continuation), a resume that turns
  /// it off ignores it, and a resume that turns it on starts a fresh
  /// tracker — all three reconcile explicitly in the trainer.
  bool has_staleness = false;
  StalenessTracker::State staleness;
};

/// Serializes a TrainerCheckpoint plus the full model state (dense
/// parameters and embedding tables) into one crash-safe container:
/// atomic temp+rename writes, and a whole-file CRC-32 footer verified
/// before Load parses a single field — a checkpoint corrupted or
/// truncated by a crash is reported as a Status and never half-restored
/// into a live model.
class CheckpointIo {
 public:
  /// What a resuming run requires of the checkpoint. Checked after the
  /// header but *before* any model weights are restored, so a checkpoint
  /// from a different run can never partially overwrite a live model.
  struct Expectation {
    uint32_t mode = 0;
    uint64_t dataset_fingerprint = 0;
    uint64_t options_fingerprint = 0;
  };

  static Status Save(const std::string& path, const TrainerCheckpoint& ck,
                     RecModel& model);
  /// Restores model weights in place and returns the trainer state.
  /// A non-null `expect` mismatch returns FailedPrecondition.
  static StatusOr<TrainerCheckpoint> Load(const std::string& path,
                                          RecModel& model,
                                          const Expectation* expect = nullptr);
};

}  // namespace fae

#endif  // FAE_ENGINE_CHECKPOINT_H_
