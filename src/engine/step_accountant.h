#ifndef FAE_ENGINE_STEP_ACCOUNTANT_H_
#define FAE_ENGINE_STEP_ACCOUNTANT_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "models/rec_model.h"
#include "sim/cost_model.h"
#include "sim/timeline.h"

namespace fae {

/// Charges one training step's work to the simulated hardware, per the
/// execution placements the paper compares:
///   - baseline (Fig 3): embeddings + sparse optimizer on CPU, MLPs on
///     GPUs, pooled activations/gradients over PCIe every batch;
///   - FAE hot batch: everything on the GPUs, gradients all-reduced once
///     over NVLink (§II-A);
///   - NvOPT: fp16 embeddings on the GPU for the tables that fit, the
///     remainder on the CPU baseline path (§V "Mixed-precision training").
class StepAccountant {
 public:
  explicit StepAccountant(const CostModel* cost_model)
      : cost_(cost_model) {}

  /// Per-step time split into the CPU path, the GPU path, and the serial
  /// synchronization segment that neither device can hide. The pipelined
  /// trainer (--pipeline=overlap) uses the split to model intra-step
  /// CPU/GPU overlap through Timeline::AddOverlapSavedSeconds.
  struct BaselineParts {
    double cpu = 0.0;
    double gpu = 0.0;
    double serial = 0.0;
    double Total() const { return cpu + gpu + serial; }
    /// Steady-state wall with the CPU and GPU paths overlapped.
    double Overlapped() const { return std::max(cpu, gpu) + serial; }
  };

  /// Hybrid CPU-GPU step (the paper's baseline). Fully synchronous: the
  /// modeled wall time is the sum of all phases.
  void ChargeBaselineStep(const BatchWork& w, Timeline& tl) const;

  /// ChargeBaselineStep with the lane split returned. Phase charges are
  /// identical to ChargeBaselineStep — only the caller's overlap
  /// bookkeeping differs, which keeps checkpointed timelines byte-equal
  /// across pipeline modes.
  BaselineParts ChargeBaselineStepParts(const BatchWork& w,
                                        Timeline& tl) const;

  /// Gather/pack of one mini-batch into a staging workspace on the CPU
  /// (the BatchPipeline's per-batch work). Charged in every pipeline mode;
  /// prefetching modes hide it under the previous step via
  /// Timeline::AddOverlapSavedSeconds. Returns the charged seconds.
  double ChargeInputPrep(uint64_t batch_bytes, Timeline& tl) const;

  /// Pipelined hybrid step: the CPU's embedding work for the next batch
  /// overlaps the GPUs' dense work for the current one (software
  /// prefetching), so the steady-state wall time per batch is
  /// max(cpu path, gpu path) + synchronization (transfers, all-reduce).
  /// Phase and busy-time bookkeeping records the full device work; the
  /// overlap is reflected through Timeline::AddWallSeconds. This is the
  /// strongest baseline a reviewer would ask for — bench/abl_pipelined.cc
  /// shows FAE's win shrinking but surviving it (the CPU path stays on
  /// the critical path).
  void ChargeBaselineStepPipelined(const BatchWork& w, Timeline& tl) const;

  /// Pure-GPU data-parallel step for a hot mini-batch.
  void ChargeHotStep(const BatchWork& w, Timeline& tl) const;

  /// Hot-slice broadcast CPU -> every GPU (entering a hot phase / initial
  /// replication).
  void ChargeSyncToGpus(uint64_t hot_bytes, Timeline& tl) const;

  /// Hot-slice copy-back GPU -> CPU (leaving a hot phase).
  void ChargeSyncToCpu(uint64_t hot_bytes, Timeline& tl) const;

  /// One hot step's byte traffic under a sharded placement
  /// (sim/partition.h ShardedPlacement), derived by the trainer from the
  /// batch's actual lookups: replicated rows are served locally on every
  /// GPU; sharded rows are gathered by their owner and their pooled
  /// activations exchanged all-to-all. The max_device_* fields carry the
  /// bottleneck owner's share — the modeled step waits on the most loaded
  /// device, which is exactly what ShardedPlacement::Imbalance predicts.
  struct ShardedStepTraffic {
    uint64_t replicated_lookup_bytes = 0;
    uint64_t sharded_lookup_bytes = 0;
    uint64_t max_device_lookup_bytes = 0;
    uint64_t replicated_touched_bytes = 0;  // ride the gradient all-reduce
    uint64_t sharded_touched_bytes = 0;     // owner-side sparse optimizer
    uint64_t max_device_touched_bytes = 0;
  };

  /// Hot step under --sharding=lpt|statistical. Replicated lookups follow
  /// the ChargeHotStep pattern (local gathers, gradients all-reduced);
  /// sharded lookups follow ChargeModelParallelStep generalized to
  /// multi-node: the all-to-all's activation share is split between NVLink
  /// (intra-node peers) and the network (inter-node peers) by peer count,
  /// and the sharded rows' scatter + sparse optimizer run only on the
  /// owning device. The trainer charges this into a *scratch* timeline and
  /// prices it against the plain ChargeHotStep — the real timeline's
  /// charges never change with sharding, keeping checkpoints byte-equal
  /// across modes.
  void ChargeShardedHotStep(const BatchWork& w, const ShardedStepTraffic& t,
                            Timeline& tl) const;

  /// Hot-slice distribution under a sharded placement: the replicated
  /// subset broadcasts exactly like ChargeSyncToGpus; each shard ships
  /// once to its owner, per-GPU PCIe links in parallel, so the modeled
  /// time adds only the largest single-device shard.
  void ChargeShardedSyncToGpus(uint64_t replicated_bytes,
                               uint64_t shard_bytes_total,
                               uint64_t max_shard_bytes, Timeline& tl) const;

  /// Copy-back inverse of ChargeShardedSyncToGpus: one replica returns the
  /// replicated subset (ChargeSyncToCpu semantics) and each owner returns
  /// its shard in parallel.
  void ChargeShardedSyncToCpu(uint64_t replicated_bytes,
                              uint64_t shard_bytes_total,
                              uint64_t max_shard_bytes, Timeline& tl) const;

  /// NvOPT step: `table_on_gpu[t]` marks tables resident on the GPU in
  /// fp16; `dim` is the embedding dim; `batch_size` the global batch.
  void ChargeNvOptStep(const BatchWork& w,
                       const std::vector<bool>& table_on_gpu, size_t dim,
                       size_t batch_size, Timeline& tl) const;

  /// Model-parallel step: embedding tables sharded across the GPUs (no
  /// CPU), pooled activations/gradients exchanged all-to-all over NVLink
  /// every batch — the placement the paper calls suboptimal (§I: "using
  /// multiple GPUs simply for memory capacity is not optimal", GPU-GPU
  /// communication up to 60%).
  void ChargeModelParallelStep(const BatchWork& w, Timeline& tl) const;

  /// Transparent-GPU-cache step (UVM / HugeCTR-style): the hottest rows
  /// live in a per-GPU cache of the same budget L as FAE's hot slice, but
  /// mini-batches are *not* reorganized, so nearly every batch carries
  /// misses that stall on the CPU (the paper's Fig 4 argument).
  /// `hit_lookup_bytes`/`miss_lookup_bytes` partition the batch's gather
  /// traffic; `miss_touched_bytes` is the missed rows' optimizer payload.
  void ChargeCacheStep(const BatchWork& w, uint64_t hit_lookup_bytes,
                       uint64_t miss_lookup_bytes,
                       uint64_t miss_touched_bytes, Timeline& tl) const;

  /// One cold step's byte traffic under the lookahead oracle cache
  /// (engine/lookahead_cache.h), derived by the trainer from the cache's
  /// StepCharge: lookup/touched bytes split by residency, plus the cache's
  /// own DMA. Stale-refresh bytes ride inside the prefetch fields.
  struct OracleCacheTraffic {
    uint64_t hit_lookup_bytes = 0;
    uint64_t miss_lookup_bytes = 0;
    uint64_t miss_touched_bytes = 0;
    uint64_t hit_touched_bytes = 0;
    uint64_t timely_prefetch_bytes = 0;  // shipped >= 1 step ahead
    uint64_t late_prefetch_bytes = 0;    // fetched at the step itself
    uint64_t writeback_bytes = 0;        // dirty evictions
  };

  /// Lane split of an oracle-cached cold step. Unlike BaselineParts,
  /// timely prefetch DMA is its own lane: it targets idle PCIe while both
  /// devices compute, so the wall only sees whatever part of it compute
  /// cannot cover.
  struct OracleCacheParts {
    double cpu = 0.0;     // miss-path embedding work
    double gpu = 0.0;     // hit-path embedding work + dense network
    double serial = 0.0;  // activation/late/writeback DMA + all-reduce
    double timely_dma = 0.0;
    /// Effective CPU<->GPU bytes this step (miss activations + cache DMA)
    /// — the bench's transfer-reduction gate compares this against the
    /// plain step's 2x pooled-activation round trip.
    uint64_t transfer_bytes = 0;
    double Total() const { return cpu + gpu + serial + timely_dma; }
    /// Modeled wall: compute lanes (overlapped or not, matching the plain
    /// step it replaces), plus serial DMA, plus timely DMA not hidden
    /// under compute.
    double EffectiveSeconds(bool overlap_lanes) const {
      const double compute =
          overlap_lanes ? std::max(cpu, gpu) : cpu + gpu;
      const double unhidden =
          timely_dma > compute ? timely_dma - compute : 0.0;
      return compute + serial + unhidden;
    }
  };

  /// One CPU step's row traffic under stale-embedding update skipping
  /// (engine/staleness_tracker.h), derived by the trainer from the
  /// tracker's per-step decisions: the batch's gather/optimizer traffic
  /// split between rows that still update and rows frozen by the tracker.
  /// Forward gathers always read every row (frozen rows keep serving
  /// lookups); only the backward scatter and the sparse optimizer shrink.
  struct StaleSkipTraffic {
    uint64_t live_lookup_bytes = 0;      // gradient scatter still performed
    uint64_t skipped_lookup_bytes = 0;   // scatter elided (row frozen)
    uint64_t live_touched_bytes = 0;     // rows the optimizer still visits
    uint64_t skipped_touched_bytes = 0;  // rows whose update was skipped
  };

  /// Baseline step with the frozen rows' backward scatter and sparse
  /// optimizer work removed (--stale-skip). Phase structure mirrors
  /// ChargeBaselineParts: the forward gathers, activation transfers, dense
  /// network, and all-reduce are untouched — skipping a row's update never
  /// changes what the forward pass reads or ships. The trainer charges
  /// this into a *scratch* timeline and prices it against the plain step;
  /// the real timeline's charges never change with the knob, keeping
  /// checkpoints byte-equal across stale-skip modes.
  BaselineParts ChargeStaleSkipStep(const BatchWork& w,
                                    const StaleSkipTraffic& t,
                                    Timeline& tl) const;

  /// Oracle-cached cold step (lookahead cache resident rows on the GPUs,
  /// sharded like model-parallel tables; peer reads fold into the cache
  /// indirection factor). Misses fall back to the plain hybrid path with
  /// activation traffic scaled by the miss share. The trainer charges this
  /// into a *scratch* timeline and prices it against the plain step —
  /// the real timeline's phase charges never change with the cache, which
  /// is what keeps checkpoints byte-identical cache on/off.
  OracleCacheParts ChargeOracleCacheStep(const BatchWork& w,
                                         const OracleCacheTraffic& t,
                                         Timeline& tl) const;

  const CostModel& cost_model() const { return *cost_; }

 private:
  BaselineParts ChargeBaselineParts(const BatchWork& w, Timeline& tl) const;

  const CostModel* cost_;
};

}  // namespace fae

#endif  // FAE_ENGINE_STEP_ACCOUNTANT_H_
