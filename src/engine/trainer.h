#ifndef FAE_ENGINE_TRAINER_H_
#define FAE_ENGINE_TRAINER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/fae_config.h"
#include "core/fae_pipeline.h"
#include "data/batch_view.h"
#include "data/dataset.h"
#include "engine/checkpoint.h"
#include "engine/lookahead_cache.h"
#include "engine/metrics.h"
#include "engine/staleness_tracker.h"
#include "engine/step_accountant.h"
#include "engine/step_executor.h"
#include "models/rec_model.h"
#include "sim/cost_model.h"
#include "sim/fault_injector.h"
#include "sim/partition.h"
#include "util/statusor.h"

namespace fae {

/// Execution placements compared in the paper's evaluation, plus the two
/// alternatives its related-work section argues against (model-parallel
/// embedding sharding and transparent GPU caching).
enum class TrainMode { kBaseline, kFae, kNvOpt, kModelParallel, kGpuCache };

std::string_view TrainModeName(TrainMode mode);

/// How FAE keeps the CPU master and the GPU replicas coherent at hot/cold
/// transitions.
enum class SyncStrategy {
  /// Ship the whole hot slice each way (the paper's scheme; its Fig 14
  /// "embedding sync" overhead grows with the hot-slice size).
  kFull,
  /// Ship only rows actually updated since the last sync (dirty tracking
  /// is index-based, so it works in cost-only mode too). Numerically
  /// identical to kFull; see bench/abl_sync_strategy.cc.
  kDirty,
};

struct TrainOptions {
  /// Per-GPU mini-batch; the global batch is this times num_gpus (the
  /// paper's weak scaling, §IV-B2).
  size_t per_gpu_batch = 1024;
  size_t epochs = 1;
  float dense_lr = 0.1f;
  float sparse_lr = 0.1f;
  /// When false, the trainer only runs the hardware cost model (no
  /// numerics) — used by the performance sweeps, where accuracy is not
  /// measured and batch order cannot affect the modeled time. The FAE
  /// scheduler then keeps its initial rate (no test-loss feedback).
  bool run_math = true;
  /// Test samples evaluated per curve point (capped).
  size_t eval_samples = 2048;
  size_t eval_batch = 512;
  /// Baseline evaluation cadence; FAE evaluates at every schedule chunk
  /// boundary, which is also where Eq 7 reads the test loss.
  size_t evals_per_epoch = 10;
  /// Hot-slice coherence scheme (FAE only).
  SyncStrategy sync_strategy = SyncStrategy::kFull;
  /// Model the hybrid baseline with CPU/GPU overlap (prefetching): the
  /// strongest baseline variant. Applies to TrainBaseline and to FAE's
  /// cold batches, so comparisons stay apples-to-apples.
  bool pipelined_baseline = false;
  /// Emulate fp16 embedding *storage* (the NvOPT representation): after
  /// every sparse update, touched rows are rounded through binary16, so
  /// the tables never hold more precision than fp16 would. Gradients and
  /// the optimizer stay fp32 (standard mixed precision). Lets the paper's
  /// §V "requires accuracy revalidation" claim be tested directly
  /// (bench/abl_mixed_precision.cc).
  bool fp16_embeddings = false;
  uint64_t seed = 7;
  /// Crash-safe checkpoint/resume (engine/checkpoint.h). Applies to
  /// TrainBaselineResumable and the FAE paths.
  CheckpointOptions checkpoint;
  /// Optional fault-injection schedule (sim/fault_injector.h); not owned,
  /// must outlive the trainer. Faults scheduled for step k fire before the
  /// (k+1)-th training batch.
  FaultInjector* fault_injector = nullptr;
  /// When the plan's hot slice exceeds the per-GPU budget, demote overflow
  /// entries and fall back toward the cold path (with a logged warning)
  /// instead of failing with ResourceExhausted. See DegradePlanToBudget.
  bool degrade_on_overflow = true;
  /// Worker threads for the compute kernels (GEMM, embedding bag, sparse
  /// optimizer). All kernels partition work write-disjointly and keep
  /// per-element summation order fixed, so results are bit-identical at
  /// any thread count — which is why this field is deliberately excluded
  /// from OptionsFingerprint (a resume may change it freely).
  size_t num_threads = 1;
  /// Pipelined execution (see PipelineMode). Like num_threads, excluded
  /// from OptionsFingerprint: results, phase charges, and checkpoint bytes
  /// are identical in every mode, so a resume may switch modes freely.
  /// Mutually exclusive with the legacy pipelined_baseline cost model.
  PipelineMode pipeline = PipelineMode::kOff;
  /// Staging-ring depth for kPrefetch/kOverlap (>= 1). Depth 1 keeps the
  /// background producer but allows no lookahead (no prep is hidden);
  /// depth 2 is classic double buffering. Also fingerprint-exempt.
  size_t pipeline_depth = 2;
  /// Lookahead oracle embedding cache fused into the batch pipeline
  /// (engine/lookahead_cache.h). Requires pipeline != kOff: the oracle
  /// window is the staging pipeline's forward visibility into upcoming
  /// batches. Pure cost-model overlay — losses, tables, and checkpoint
  /// bytes are bit-identical cache on/off, so all three knobs are
  /// fingerprint-exempt like the pipeline's.
  CacheMode cache = CacheMode::kOff;
  /// Hard cache capacity in embedding rows (>= 1), across all tables.
  size_t cache_budget_rows = 4096;
  /// Oracle window depth in batches; bounds shared with the staging ring
  /// (engine/ring_limits.h). 1 = no lead time (every first fetch is late).
  size_t cache_lookahead = 8;
  /// Storage precision of cold master rows (FAE only; see
  /// embedding/cold_precision.h). Narrower than fp32 shrinks the cold
  /// store's RSS, prices cold-row reads at the quantized width, and — via
  /// FaeConfig::cold_precision in the calibrator — stretches the effective
  /// hot budget by the reclaimed bytes. Hot rows, staged cold rows, and
  /// all optimizer math stay fp32, so the hot path is bit-identical across
  /// modes. Mutually exclusive with fp16_embeddings and the oracle cache
  /// (their budget accounting assumes fp32 cold rows).
  ColdPrecision cold_precision = ColdPrecision::kFp32;
  /// Multi-GPU layout of the hot embedding slice (FAE only; see
  /// core/shard_planner.h). kReplicate is the paper's scheme; kLpt and
  /// kStatistical shard the slice across the cluster's GPUs and reprice
  /// every hot step and sync against the placement. Pure cost-model
  /// overlay like the cache knobs — math always reads the CPU master, so
  /// losses, tables, and checkpoint bytes are bit-identical across modes
  /// and the knob is fingerprint-exempt. Non-replicate modes need a fresh
  /// plan (the planner consumes the calibration access profile, which
  /// cached plans do not carry).
  ShardingMode sharding = ShardingMode::kReplicate;
  /// Stale-embedding update skipping (engine/staleness_tracker.h,
  /// ROADMAP item 1 / arXiv 2404.04270): rows whose relative-update EMA
  /// settles below stale_threshold freeze — their scatter + optimizer
  /// visit is elided and the skipped CPU work credited as a cost-overlay
  /// saving, with an Eq-7-style guard adapting the threshold to the loss
  /// trend. kCold freezes only cold rows (requires the FAE placement —
  /// the baseline has no hot set); kAll may freeze any row. Requires
  /// run_math (skip decisions read real update magnitudes) and the fused
  /// fp32 path (mutually exclusive with fp16_embeddings). Like the
  /// cache/sharding knobs, the real timeline's charges never change with
  /// the knob and tracker state travels inside the checkpoint, so all
  /// three fields are fingerprint-exempt: a resume may switch modes, and
  /// same-mode resume is bit-exact.
  StaleSkipMode stale_skip = StaleSkipMode::kOff;
  /// EMA freeze threshold (>= 0). 0 never skips — the guard only scales
  /// the threshold, so a zero stays zero and the run is bit-identical to
  /// stale_skip=off.
  double stale_threshold = 0.0;
  /// Measured updates a row needs before it may freeze (>= 1).
  size_t stale_min_visits = 8;
};

/// Everything a training run reports: the modeled timeline, the measured
/// learning curve, and the FAE-specific counters.
struct TrainReport {
  TrainMode mode = TrainMode::kBaseline;
  Timeline timeline;
  std::vector<CurvePoint> curve;
  double final_train_loss = 0.0;
  double final_train_acc = 0.0;
  double final_test_loss = 0.0;
  double final_test_acc = 0.0;
  double final_test_auc = 0.0;
  /// Modeled wall-clock (timeline total minus pipelined-overlap savings).
  double modeled_seconds = 0.0;
  /// Mini-batch staging time charged to Phase::kInputPrep (identical in
  /// every pipeline mode; pipelined modes hide part of it).
  double prep_seconds = 0.0;
  /// Seconds hidden by pipelined overlap (Timeline overlap accounting) and
  /// the fraction of the serial wall they represent. Zero when
  /// pipeline == kOff. Not checkpointed (see Timeline::State): a resumed
  /// run only counts overlap saved since the restore point, so its
  /// modeled_seconds is higher than the uninterrupted run's.
  double overlap_saved_seconds = 0.0;
  double overlap_fraction = 0.0;
  /// Lookahead-oracle-cache results (TrainOptions::cache; all zero when
  /// off). Net seconds the cache removed from the modeled wall — may be
  /// negative for a pathological budget (writeback-dominated). Like the
  /// overlap savings, none of this is checkpointed.
  double cache_saved_seconds = 0.0;
  double cache_hit_rate = 0.0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_stale_refreshes = 0;
  uint64_t cache_prefetch_bytes = 0;
  uint64_t cache_writeback_bytes = 0;
  /// Cold-step CPU<->GPU transfer, plain vs effective under the cache
  /// (the bench's transfer-reduction gate).
  uint64_t cache_plain_transfer_bytes = 0;
  uint64_t cache_effective_transfer_bytes = 0;
  double avg_gpu_watts = 0.0;
  size_t num_batches = 0;

  // FAE-only:
  size_t hot_batches = 0;
  size_t cold_batches = 0;
  double hot_fraction = 0.0;
  uint64_t hot_bytes = 0;
  size_t transitions = 0;
  double final_rate = 0.0;
  double threshold = 0.0;
  double preprocess_seconds = 0.0;
  /// Total hot-slice payload shipped over PCIe for coherence (per
  /// direction-event, not multiplied by GPU count).
  uint64_t sync_bytes = 0;
  /// Quantized cold-row storage (TrainOptions::cold_precision; all zero at
  /// fp32 and in cost-only runs, where the masters hold no numerics).
  uint64_t cold_rows = 0;
  /// Bytes the compressed cold store occupies (codes + scale/zero-point).
  uint64_t cold_store_bytes = 0;
  /// fp32 bytes the cold store gave back — the calibrator's budget credit.
  uint64_t cold_reclaimed_bytes = 0;
  /// Budget the hot slice was admitted against: hot_embedding_budget plus
  /// the realized plan's reclaimed bytes (equals the plain budget at fp32).
  uint64_t effective_hot_budget = 0;
  /// Sharded hot-slice placement (TrainOptions::sharding; all zero and
  /// imbalance 0 when kReplicate). Net seconds the placement removed from
  /// the modeled wall vs full replication — negative when it lost (LPT
  /// usually does). Like the overlap/cache savings, not checkpointed.
  double sharding_saved_seconds = 0.0;
  /// Expected per-device lookup-mass imbalance of the placement (max/mean,
  /// >= 1.0; ShardedPlacement::Imbalance).
  double sharding_imbalance = 0.0;
  uint64_t sharding_replicated_rows = 0;
  uint64_t sharding_replicated_bytes = 0;
  /// Largest single-device shard (rows the bottleneck owner holds).
  uint64_t sharding_max_shard_bytes = 0;
  /// Stale-update skipping (TrainOptions::stale_skip; all zero when off).
  /// Net seconds the elided scatter/optimizer work removed from the
  /// modeled wall. Like the overlap/cache/sharding savings, not
  /// checkpointed — a resumed run counts savings from the restore point.
  double stale_skip_saved_seconds = 0.0;
  uint64_t stale_skipped_rows = 0;
  uint64_t stale_updated_rows = 0;
  uint64_t stale_reactivated_rows = 0;
  /// Guard state at the end of the run (threshold after adaptation).
  double stale_final_threshold = 0.0;
  uint64_t stale_guard_tightens = 0;
  uint64_t stale_guard_widens = 0;

  // Robustness (graceful degradation, fault injection, resume):
  /// The hot slice was demoted to fit the budget (see DegradePlanToBudget).
  bool degraded = false;
  uint64_t demoted_rows = 0;
  uint64_t fallback_inputs = 0;
  /// An injected crash stopped the run early; the report is partial and
  /// recovery is resuming from the last periodic checkpoint.
  bool interrupted = false;
  bool resumed = false;
  uint64_t resumed_at = 0;  // iteration the run resumed from
  FaultStats faults;
};

/// Drives training of a RecModel in one of the three placements. Math is
/// executed for real (accuracy results are measured); time and energy are
/// charged to the SystemSpec through the StepAccountant.
class Trainer {
 public:
  Trainer(RecModel* model, SystemSpec system, TrainOptions options);

  /// Hybrid CPU-GPU baseline (paper Fig 3). Crashes on checkpoint or
  /// fault-handling errors; callers that need those surfaced as Status use
  /// TrainBaselineResumable.
  TrainReport TrainBaseline(const Dataset& dataset,
                            const Dataset::Split& split);

  /// TrainBaseline with Status-based error reporting, honoring
  /// options.checkpoint (resume produces a loss curve identical to an
  /// uninterrupted run) and options.fault_injector.
  StatusOr<TrainReport> TrainBaselineResumable(const Dataset& dataset,
                                               const Dataset::Split& split);

  /// FAE: runs the static pipeline then the hot/cold schedule.
  StatusOr<TrainReport> TrainFae(const Dataset& dataset,
                                 const Dataset::Split& split,
                                 const FaeConfig& config);

  /// FAE with a pre-computed plan (lets benchmarks reuse preprocessing).
  StatusOr<TrainReport> TrainFaeWithPlan(const Dataset& dataset,
                                         const Dataset::Split& split,
                                         const FaeConfig& config,
                                         const FaePlan& plan);

  /// NvOPT-style comparator: fp16 embeddings on GPU where they fit.
  TrainReport TrainNvOpt(const Dataset& dataset, const Dataset::Split& split);

  /// Model-parallel comparator: tables sharded across GPUs, all-to-all
  /// per batch. Fails with ResourceExhausted when the per-GPU table shard
  /// (plus headroom) exceeds GPU memory — the capacity argument the paper
  /// opens with.
  StatusOr<TrainReport> TrainModelParallel(const Dataset& dataset,
                                           const Dataset::Split& split);

  /// Transparent-GPU-cache comparator: the same hot rows FAE would
  /// replicate live in a per-GPU cache (same budget), but batches are not
  /// reorganized, so misses stall each batch on the CPU. `plan` supplies
  /// the hot set (cache contents) for an apples-to-apples comparison.
  TrainReport TrainGpuCache(const Dataset& dataset,
                            const Dataset::Split& split,
                            const FaePlan& plan);

  size_t GlobalBatchSize() const {
    return options_.per_gpu_batch *
           static_cast<size_t>(std::max(1, system_.WorldSize()));
  }

 private:
  /// Hash of every TrainOptions field that affects the run's numerics or
  /// timeline, stored in checkpoints so a resume with different options is
  /// rejected instead of silently diverging.
  uint64_t OptionsFingerprint() const;
  /// Delivers the faults scheduled for `iteration`. Returns true when a
  /// crash fired (the caller must stop and return a partial report), an
  /// error Status when a device fault outlived the retry budget.
  /// `on_corrupt_sync` recovers from a corrupted hot-slice sync (empty in
  /// modes without GPU replicas).
  StatusOr<bool> DrainFaults(
      uint64_t iteration, TrainReport& report,
      const std::function<void(uint64_t)>& on_corrupt_sync);
  /// The shared execution core (engine/step_executor.h) owns the math:
  /// optimizers, thread pool, fused apply, eval/batch staging. The Trainer
  /// keeps only the sequencing, cost accounting, and robustness logic.
  using EvalSet = StepExecutor::EvalSet;
  using TrainBatch = StepExecutor::TrainBatch;
  void FinishReport(TrainReport& report,
                    const std::vector<BatchView>& eval_batches,
                    RunningMetric& metric) const;

  RecModel* model_;
  SystemSpec system_;
  CostModel cost_;
  StepAccountant accountant_;
  TrainOptions options_;
  StepExecutor exec_;
};

}  // namespace fae

#endif  // FAE_ENGINE_TRAINER_H_
