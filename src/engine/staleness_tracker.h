#ifndef FAE_ENGINE_STALENESS_TRACKER_H_
#define FAE_ENGINE_STALENESS_TRACKER_H_

#include <atomic>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "embedding/sparse_sgd.h"

namespace fae {

/// Which rows stale-update skipping may freeze (TrainOptions::stale_skip).
enum class StaleSkipMode {
  kOff,   // every touched row updates (the default)
  kCold,  // only cold rows may freeze; the hot set always updates (FAE)
  kAll,   // any row may freeze once its EMA settles
};

std::string_view StaleSkipModeName(StaleSkipMode mode);

/// Per-row staleness tracking for optimizer-update skipping (ROADMAP item 1,
/// the Slipstream follow-up: "Accelerating Recommender Model Training by
/// Dynamically Skipping Stale Embeddings", arXiv 2404.04270).
///
/// Each row carries an EMA of its relative update magnitude
/// ‖lr·Δrow‖ / ‖row‖, maintained inside the fused sparse backward+step by
/// whichever thread owns the row there — one writer per row, so the EMA
/// stream is bit-identical for any thread count and pipeline mode. Rows
/// whose EMA falls below the live threshold after `min_visits` measured
/// updates are *frozen*: their gradient scatter and optimizer visit are
/// elided and the row serves lookups verbatim. Every `revisit_period`-th
/// consecutive skip the row is force-updated to re-measure — a row whose
/// gradients resume moving thaws by itself (counted as a reactivation).
///
/// An accuracy guard mirrors the Shuffle Scheduler's Eq-7 loss-trend
/// adaptation: a rising test loss halves the threshold (skip less) and
/// un-freezes every frozen row; `patience` consecutive decreases double it
/// (skip more), capped at 8x the configured value. A threshold of exactly 0
/// never skips — the guard multiplies it, so 0 is a fixed point and the run
/// stays bit-identical to stale_skip=off (the bench's identity gate).
///
/// All per-row state is preallocated in Init; BeginVisit/RecordUpdate are
/// allocation-free (enforced by fae_zero_alloc_test).
class StalenessTracker {
 public:
  struct Options {
    double threshold = 0.0;      // EMA floor below which a row may freeze
    uint32_t min_visits = 8;     // measured updates before skipping starts
    double ema_alpha = 0.125;    // EMA smoothing factor
    uint32_t revisit_period = 16;  // every Nth consecutive skip re-measures
    int patience = 4;            // Eq-7 u: decreases before widening
  };

  /// Complete per-row + guard state, capturable at checkpoint boundaries:
  /// restoring it continues skip decisions (including the adapted
  /// threshold and every row's EMA/visit/streak history) exactly where
  /// they were captured, which is what makes same-mode resume bit-exact.
  /// Run counters (skipped/updated/reactivated) are deliberately NOT part
  /// of it — like the Timeline overlay accumulators, they are reporting
  /// only and restart from zero on resume.
  struct TableState {
    std::vector<float> ema;
    std::vector<uint32_t> visits;
    std::vector<uint32_t> streak;
  };
  struct State {
    double threshold = 0.0;
    bool has_prev_loss = false;
    double prev_loss = 0.0;
    int32_t consecutive_decreases = 0;
    std::vector<TableState> tables;
  };

  /// Adapter binding one table's index into the embedding layer's
  /// RowUpdateFilter hook (the fused step only sees its own table).
  class TableFilter : public RowUpdateFilter {
   public:
    TableFilter() = default;
    TableFilter(StalenessTracker* tracker, size_t table)
        : tracker_(tracker), table_(table) {}
    bool BeginVisit(uint64_t row, uint32_t lookups) override {
      return tracker_->BeginVisit(table_, row, lookups);
    }
    void RecordUpdate(uint64_t row, uint32_t lookups, double update_sq,
                      double row_sq) override {
      tracker_->RecordUpdate(table_, row, lookups, update_sq, row_sq);
    }

   private:
    StalenessTracker* tracker_ = nullptr;
    size_t table_ = 0;
  };

  StalenessTracker() = default;
  StalenessTracker(const StalenessTracker&) = delete;
  StalenessTracker& operator=(const StalenessTracker&) = delete;

  /// Sizes the per-row arrays; `table_rows[t]` is table t's row count.
  void Init(const std::vector<uint64_t>& table_rows, const Options& options);

  /// The filter to pass into table t's fused backward+step. Valid after
  /// Init, stable until the next Init.
  RowUpdateFilter* filter(size_t table) { return &filters_[table]; }

  /// Marks rows that must always update (the hot set, in stale_skip=cold):
  /// BeginVisit never skips them. Call after Init, once per table.
  void SetAlwaysUpdate(size_t table, std::span<const uint32_t> rows);

  /// Skip decision for one row at the top of its fused backward+step
  /// visit. Returns true when the update should be elided, bumping the
  /// row's skip streak and the step's skip counters; on false the caller
  /// applies the update and reports it through RecordUpdate. `lookups` is
  /// the number of gradient rows pooled into this row this step (its
  /// scatter share, for the cost split). Thread-safe under the fused
  /// step's one-thread-per-row partition.
  bool BeginVisit(size_t table, uint64_t row, uint32_t lookups);

  /// Folds one applied update into the row's EMA. `update_sq` is
  /// ‖lr·Δrow‖², `row_sq` is ‖row‖² before the update.
  void RecordUpdate(size_t table, uint64_t row, uint32_t lookups,
                    double update_sq, double row_sq);

  /// Eq-7-style accuracy guard, fed the chunk/eval test loss:
  ///   - loss increased            -> threshold halves (skip less) and every
  ///                                  frozen row is re-activated;
  ///   - `patience` decreases      -> threshold doubles (skip more), capped;
  ///   - otherwise                 -> unchanged.
  void OnTestLoss(double loss);

  /// Zeroes the per-step traffic split (call at the top of each step).
  void BeginStep();

  /// This step's traffic split for StepAccountant::ChargeStaleSkipStep.
  uint64_t step_skipped_rows() const {
    return step_skipped_rows_.load(std::memory_order_relaxed);
  }
  uint64_t step_updated_rows() const {
    return step_updated_rows_.load(std::memory_order_relaxed);
  }
  uint64_t step_skipped_lookups() const {
    return step_skipped_lookups_.load(std::memory_order_relaxed);
  }
  uint64_t step_live_lookups() const {
    return step_live_lookups_.load(std::memory_order_relaxed);
  }

  /// Run totals (reporting only; reset by Init and Restore).
  uint64_t total_skipped_rows() const {
    return total_skipped_rows_.load(std::memory_order_relaxed);
  }
  uint64_t total_updated_rows() const {
    return total_updated_rows_.load(std::memory_order_relaxed);
  }
  uint64_t total_reactivated_rows() const {
    return total_reactivated_rows_.load(std::memory_order_relaxed);
  }
  uint64_t guard_tightens() const { return guard_tightens_; }
  uint64_t guard_widens() const { return guard_widens_; }

  double threshold() const { return threshold_; }
  size_t num_tables() const { return tables_.size(); }

  /// True when `row` is currently frozen (would skip a non-revisit visit).
  bool IsFrozen(size_t table, uint64_t row) const;

  State state() const;
  void Restore(const State& state);

 private:
  struct PerTable {
    std::vector<float> ema;
    std::vector<uint32_t> visits;
    std::vector<uint32_t> streak;
    std::vector<uint8_t> always_update;  // empty unless SetAlwaysUpdate ran
  };

  Options options_;
  double threshold_ = 0.0;
  double max_threshold_ = 0.0;

  bool has_prev_loss_ = false;
  double prev_loss_ = 0.0;
  int consecutive_decreases_ = 0;

  std::vector<PerTable> tables_;
  std::vector<TableFilter> filters_;

  // Per-step split: rows are visited by concurrent pool workers, so the
  // counters are atomic; sums are order-independent, hence deterministic.
  std::atomic<uint64_t> step_skipped_rows_{0};
  std::atomic<uint64_t> step_updated_rows_{0};
  std::atomic<uint64_t> step_skipped_lookups_{0};
  std::atomic<uint64_t> step_live_lookups_{0};

  // Run totals: skipped/updated/reactivated are bumped from pool workers
  // alongside the step counters, so they are atomic too; the guard
  // counters only move on the (single-threaded) OnTestLoss path.
  std::atomic<uint64_t> total_skipped_rows_{0};
  std::atomic<uint64_t> total_updated_rows_{0};
  std::atomic<uint64_t> total_reactivated_rows_{0};
  uint64_t guard_tightens_ = 0;
  uint64_t guard_widens_ = 0;
};

}  // namespace fae

#endif  // FAE_ENGINE_STALENESS_TRACKER_H_
