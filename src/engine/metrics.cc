#include "engine/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "tensor/loss.h"

namespace fae {

void RunningMetric::Observe(double loss, size_t correct, size_t batch_size) {
  loss_sum_ += loss * static_cast<double>(batch_size);
  correct_ += correct;
  samples_ += batch_size;
  ++batches_;
}

double RunningMetric::mean_loss() const {
  return samples_ == 0 ? 0.0 : loss_sum_ / static_cast<double>(samples_);
}

double RunningMetric::accuracy() const {
  return samples_ == 0
             ? 0.0
             : static_cast<double>(correct_) / static_cast<double>(samples_);
}

CurvePoint RunningMetric::Flush(size_t iteration) {
  CurvePoint p;
  p.iteration = iteration;
  p.train_loss = mean_loss();
  p.train_acc = accuracy();
  loss_sum_ = 0.0;
  correct_ = 0;
  samples_ = 0;
  batches_ = 0;
  return p;
}

double RocAuc(const std::vector<float>& scores,
              const std::vector<float>& labels) {
  const size_t n = scores.size();
  if (n == 0 || labels.size() != n) return 0.0;
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return scores[a] < scores[b]; });
  // Midranks over tied scores, then the Mann-Whitney U statistic.
  double positive_rank_sum = 0.0;
  size_t positives = 0;
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && scores[order[j + 1]] == scores[order[i]]) ++j;
    const double midrank = 0.5 * static_cast<double>(i + j) + 1.0;
    for (size_t k = i; k <= j; ++k) {
      if (labels[order[k]] >= 0.5f) {
        positive_rank_sum += midrank;
        ++positives;
      }
    }
    i = j + 1;
  }
  const size_t negatives = n - positives;
  if (positives == 0 || negatives == 0) return 0.0;
  const double u = positive_rank_sum -
                   static_cast<double>(positives) * (positives + 1) / 2.0;
  return u / (static_cast<double>(positives) * static_cast<double>(negatives));
}

EvalResult Evaluate(const RecModel& model,
                    const std::vector<BatchView>& batches) {
  EvalResult r;
  double loss_sum = 0.0;
  size_t correct = 0;
  std::vector<float> scores;
  std::vector<float> labels;
  for (const BatchView& batch : batches) {
    Tensor logits = model.EvalLogits(batch);
    loss_sum += BceLossOnly(logits, batch.labels) *
                static_cast<double>(batch.batch_size());
    for (size_t i = 0; i < batch.batch_size(); ++i) {
      const bool pred = logits(i, 0) >= 0.0f;  // sigmoid(z) >= 0.5
      const bool truth = batch.labels[i] >= 0.5f;
      if (pred == truth) ++correct;
      scores.push_back(logits(i, 0));
      labels.push_back(batch.labels[i]);
    }
    r.samples += batch.batch_size();
  }
  if (r.samples > 0) {
    r.loss = loss_sum / static_cast<double>(r.samples);
    r.accuracy = static_cast<double>(correct) / static_cast<double>(r.samples);
    r.auc = RocAuc(scores, labels);
  }
  return r;
}

EvalResult Evaluate(const RecModel& model,
                    const std::vector<MiniBatch>& batches) {
  std::vector<BatchView> views(batches.begin(), batches.end());
  return Evaluate(model, views);
}

}  // namespace fae
