#include "engine/lookahead_cache.h"

#include <algorithm>
#include <bit>

#include "engine/ring_limits.h"
#include "util/logging.h"

namespace fae {

std::string_view CacheModeName(CacheMode mode) {
  switch (mode) {
    case CacheMode::kOff:
      return "off";
    case CacheMode::kOracle:
      return "oracle";
  }
  return "unknown";
}

void LookaheadCache::Init(const std::vector<uint64_t>& table_rows,
                          const Options& options) {
  FAE_CHECK_GE(options.budget_rows, 1u);
  FAE_CHECK_GE(options.lookahead, kMinRingDepth);
  FAE_CHECK_LE(options.lookahead, kMaxRingDepth);
  FAE_CHECK_GE(options.row_bytes, 1u);
  options_ = options;

  const size_t num_tables = table_rows.size();
  resident_.resize(num_tables);
  dirty_.resize(num_tables);
  stale_.resize(num_tables);
  evict_flag_.resize(num_tables);
  refs_.resize(num_tables);
  for (size_t t = 0; t < num_tables; ++t) {
    const size_t words = (table_rows[t] + 63) / 64;
    resident_[t].assign(words, 0);
    dirty_[t].assign(words, 0);
    stale_[t].assign(words, 0);
    evict_flag_[t].assign(words, 0);
    refs_[t].assign(table_rows[t], 0);
  }
  resident_count_ = 0;
  evictable_.clear();
  evictable_.reserve(options_.budget_rows);
  window_.resize(options_.lookahead);
  head_seq_ = tail_seq_ = cursor_seq_ = 0;
  cursor_idx_ = 0;
  batch_seen_.Init(table_rows);
  stats_ = Stats{};
}

void LookaheadCache::BeginSegment() {
  // Drain whatever a previous segment left in flight (an abandoned chunk
  // on a crash unwind): reference counts must return to the quiescent
  // state before a new oracle window opens. Cache contents persist.
  while (head_seq_ < tail_seq_) {
    std::vector<uint64_t>& slot = window_[head_seq_ % window_.size()];
    for (uint64_t key : slot) {
      const size_t t = key >> 32;
      const uint32_t row = static_cast<uint32_t>(key);
      uint32_t& r = refs_[t][row];
      FAE_CHECK_GE(r, 1u);
      --r;
      if (r == 0 && TestBit(resident_[t], row) &&
          !TestBit(evict_flag_[t], row)) {
        SetBit(evict_flag_[t], row);
        evictable_.push_back(key);
      }
    }
    slot.clear();
    ++head_seq_;
  }
  head_seq_ = tail_seq_ = cursor_seq_ = 0;
  cursor_idx_ = 0;
}

void LookaheadCache::PushKey(size_t table, uint32_t row,
                             std::vector<uint64_t>& slot) {
  if (IsPinned(table, row)) return;  // the pinned tier serves it
  slot.push_back(Key(table, row));
  ++refs_[table][row];
}

void LookaheadCache::PushBatch(const BatchView& view) {
  FAE_CHECK_LT(tail_seq_ - head_seq_, window_.size())
      << "PushBatch past the oracle window (lookahead batches in flight)";
  std::vector<uint64_t>& slot = window_[tail_seq_ % window_.size()];
  slot.clear();
  for (size_t t = 0; t < view.num_tables(); ++t) {
    for (uint32_t row : view.indices(t)) PushKey(t, row, slot);
  }
  ++tail_seq_;
}

void LookaheadCache::PushBatch(const FlatDataset& flat,
                               std::span<const uint64_t> ids) {
  FAE_CHECK_LT(tail_seq_ - head_seq_, window_.size())
      << "PushBatch past the oracle window (lookahead batches in flight)";
  std::vector<uint64_t>& slot = window_[tail_seq_ % window_.size()];
  slot.clear();
  const size_t num_tables = flat.schema().num_tables();
  for (size_t t = 0; t < num_tables; ++t) {
    for (uint64_t id : ids) {
      for (uint32_t row : flat.lookups(t, id)) PushKey(t, row, slot);
    }
  }
  ++tail_seq_;
}

bool LookaheadCache::PopEvictable(uint64_t* victim) {
  while (!evictable_.empty()) {
    const uint64_t key = evictable_.back();
    evictable_.pop_back();
    const size_t t = key >> 32;
    const uint32_t row = static_cast<uint32_t>(key);
    ClearBit(evict_flag_[t], row);
    // Lazy validation: the row may have been re-referenced (a window push
    // after it was flagged) or dropped since. Only a still-resident row
    // with no upcoming reference may be evicted — the Belady guarantee.
    if (TestBit(resident_[t], row) && refs_[t][row] == 0 &&
        !IsPinned(t, row)) {
      *victim = key;
      return true;
    }
  }
  return false;
}

void LookaheadCache::Evict(uint64_t key, uint64_t* writeback_bytes) {
  const size_t t = key >> 32;
  const uint32_t row = static_cast<uint32_t>(key);
  ClearBit(resident_[t], row);
  if (TestBit(dirty_[t], row)) {
    ClearBit(dirty_[t], row);
    *writeback_bytes += options_.row_bytes;
    stats_.writeback_bytes += options_.row_bytes;
  }
  ClearBit(stale_[t], row);
  --resident_count_;
  ++stats_.evictions;
}

bool LookaheadCache::TryInsert(size_t table, uint32_t row, bool timely,
                               StepCharge& c) {
  if (resident_count_ >= options_.budget_rows) {
    uint64_t victim = 0;
    if (!PopEvictable(&victim)) return false;  // everything still referenced
    Evict(victim, &c.writeback_bytes);
  }
  SetBit(resident_[table], row);
  ClearBit(dirty_[table], row);
  ClearBit(stale_[table], row);
  ++resident_count_;
  stats_.peak_resident_rows =
      std::max<uint64_t>(stats_.peak_resident_rows, resident_count_);
  (timely ? c.timely_prefetch_bytes : c.late_prefetch_bytes) +=
      options_.row_bytes;
  stats_.prefetch_bytes += options_.row_bytes;
  return true;
}

LookaheadCache::StepCharge LookaheadCache::OnStep() {
  FAE_CHECK_LT(head_seq_, tail_seq_) << "OnStep with no batch in the window";
  StepCharge c;
  std::vector<uint64_t>& slot = window_[head_seq_ % window_.size()];

  // Late pass over the batch about to train: any row the cursor did not
  // reach in time (segment starts, budget stalls) is fetched now, paying
  // serial DMA; resident-but-stale rows refresh the same way. Unique rows
  // are classified once; repeat occurrences follow their row's class.
  batch_seen_.Clear();
  for (uint64_t key : slot) {
    const size_t t = key >> 32;
    const uint32_t row = static_cast<uint32_t>(key);
    if (IsPinned(t, row)) continue;  // a swap re-tiered it mid-window
    if (!batch_seen_.IsDirty(t, row)) {
      batch_seen_.Mark(t, row);
      if (TestBit(resident_[t], row)) {
        if (TestBit(stale_[t], row)) {
          ClearBit(stale_[t], row);
          c.late_prefetch_bytes += options_.row_bytes;
          ++c.stale_refreshes;
          ++stats_.stale_refreshes;
          stats_.prefetch_bytes += options_.row_bytes;
        }
        ++c.hit_rows;
        if (options_.track_dirty) SetBit(dirty_[t], row);
      } else if (TryInsert(t, row, /*timely=*/false, c)) {
        ++c.hit_rows;
        if (options_.track_dirty) SetBit(dirty_[t], row);
      } else {
        ++c.miss_rows;
      }
    }
    if (TestBit(resident_[t], row)) {
      ++c.hit_lookups;
    } else {
      ++c.miss_lookups;
    }
  }

  // Slide the window: this batch's references are spent. Rows dropping to
  // zero upcoming references become eviction candidates.
  for (uint64_t key : slot) {
    const size_t t = key >> 32;
    const uint32_t row = static_cast<uint32_t>(key);
    uint32_t& r = refs_[t][row];
    FAE_CHECK_GE(r, 1u);
    --r;
    if (r == 0 && TestBit(resident_[t], row) &&
        !TestBit(evict_flag_[t], row)) {
      SetBit(evict_flag_[t], row);
      evictable_.push_back(key);
    }
  }
  slot.clear();
  ++head_seq_;

  // Prefetch cursor: walk the remaining window in training order, at most
  // once per window entry, fetching missing rows and refreshing stale
  // ones ahead of their batch (timely — the DMA hides under this step's
  // compute). A budget stall parks the cursor; it retries next step as
  // pops free capacity, and anything it never reaches is caught by that
  // batch's late pass.
  if (cursor_seq_ < head_seq_) {
    cursor_seq_ = head_seq_;
    cursor_idx_ = 0;
  }
  while (cursor_seq_ < tail_seq_) {
    const std::vector<uint64_t>& ahead = window_[cursor_seq_ % window_.size()];
    while (cursor_idx_ < ahead.size()) {
      const uint64_t key = ahead[cursor_idx_];
      const size_t t = key >> 32;
      const uint32_t row = static_cast<uint32_t>(key);
      if (IsPinned(t, row)) {
        ++cursor_idx_;
        continue;
      }
      if (TestBit(resident_[t], row)) {
        if (TestBit(stale_[t], row)) {
          ClearBit(stale_[t], row);
          c.timely_prefetch_bytes += options_.row_bytes;
          ++c.stale_refreshes;
          ++stats_.stale_refreshes;
          stats_.prefetch_bytes += options_.row_bytes;
        }
        ++cursor_idx_;
        continue;
      }
      if (!TryInsert(t, row, /*timely=*/true, c)) {
        stats_.hits += c.hit_lookups;
        stats_.misses += c.miss_lookups;
        return c;  // capacity full of still-referenced rows: stall here
      }
      ++cursor_idx_;
    }
    cursor_idx_ = 0;
    ++cursor_seq_;
  }

  stats_.hits += c.hit_lookups;
  stats_.misses += c.miss_lookups;
  return c;
}

template <typename Fn>
void LookaheadCache::ForEachResident(Fn&& fn) {
  for (size_t t = 0; t < resident_.size(); ++t) {
    for (size_t w = 0; w < resident_[t].size(); ++w) {
      uint64_t word = resident_[t][w];  // snapshot: fn may clear bits
      while (word != 0) {
        const int bit = std::countr_zero(word);
        word &= word - 1;
        fn(t, static_cast<uint32_t>((w << 6) + bit));
      }
    }
  }
}

uint64_t LookaheadCache::FlushDirty(const HotSet& hot) {
  uint64_t bytes = 0;
  ForEachResident([&](size_t t, uint32_t row) {
    if (hot.IsHot(t, row) && TestBit(dirty_[t], row)) {
      ClearBit(dirty_[t], row);
      bytes += options_.row_bytes;
    }
  });
  stats_.writeback_bytes += bytes;
  return bytes;
}

void LookaheadCache::InvalidateHot(const HotSet& hot) {
  ForEachResident([&](size_t t, uint32_t row) {
    // Dirty rows keep authority (the preceding FlushDirty already pushed
    // them; a dirty row here holds updates newer than the master's).
    if (hot.IsHot(t, row) && !TestBit(dirty_[t], row)) {
      SetBit(stale_[t], row);
    }
  });
}

uint64_t LookaheadCache::FlushAllDirty() {
  uint64_t bytes = 0;
  ForEachResident([&](size_t t, uint32_t row) {
    if (TestBit(dirty_[t], row)) {
      ClearBit(dirty_[t], row);
      bytes += options_.row_bytes;
    }
  });
  stats_.writeback_bytes += bytes;
  return bytes;
}

uint64_t LookaheadCache::RefreshUpdated(const FlatDataset& flat,
                                        std::span<const uint64_t> ids) {
  uint64_t bytes = 0;
  batch_seen_.Clear();
  const size_t num_tables = flat.schema().num_tables();
  for (size_t t = 0; t < num_tables; ++t) {
    for (uint64_t id : ids) {
      for (uint32_t row : flat.lookups(t, id)) {
        if (IsPinned(t, row)) continue;  // the hot slice refreshes via sync
        if (batch_seen_.IsDirty(t, row)) continue;
        batch_seen_.Mark(t, row);
        if (!TestBit(resident_[t], row)) continue;
        bytes += options_.row_bytes;
        ++stats_.stale_refreshes;
        stats_.prefetch_bytes += options_.row_bytes;
      }
    }
  }
  return bytes;
}

uint64_t LookaheadCache::DropPinned(const HotSet& pinned) {
  uint64_t bytes = 0;
  ForEachResident([&](size_t t, uint32_t row) {
    if (!pinned.IsHot(t, row)) return;
    if (TestBit(dirty_[t], row)) {
      ClearBit(dirty_[t], row);
      bytes += options_.row_bytes;
    }
    ClearBit(resident_[t], row);
    ClearBit(stale_[t], row);
    --resident_count_;
    ++stats_.evictions;
  });
  stats_.writeback_bytes += bytes;
  return bytes;
}

}  // namespace fae
