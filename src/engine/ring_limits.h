#ifndef FAE_ENGINE_RING_LIMITS_H_
#define FAE_ENGINE_RING_LIMITS_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "util/statusor.h"
#include "util/string_util.h"

namespace fae {

/// Shared bounds for every batch-granular ring or window in the engine:
/// the BatchPipeline's staging ring (--pipeline-depth) and the
/// LookaheadCache's oracle window (--cache-lookahead). One definition so
/// the CLI, the Trainer, and the components themselves agree on what a
/// sane depth is — PR 5 fixed a negative --pipeline-depth wrapping through
/// size_t into a huge allocation; that validation now lives here for every
/// such knob instead of being re-derived per flag.
inline constexpr size_t kMinRingDepth = 1;
/// Backstop against absurd allocations: every pipeline slot owns a
/// FlatDataset workspace and every window slot a per-batch row-id list, so
/// a depth beyond this is a typo, not a configuration.
inline constexpr size_t kMaxRingDepth = size_t{1} << 20;

/// Validates a possibly-signed user- or caller-supplied depth. Values < 1
/// error instead of wrapping through size_t; values beyond kMaxRingDepth
/// error instead of allocating.
inline StatusOr<size_t> ValidateRingDepth(long long value,
                                          std::string_view what) {
  const std::string name(what);
  if (value < static_cast<long long>(kMinRingDepth)) {
    return Status::InvalidArgument(
        StrFormat("%s must be >= 1 (got %lld)", name.c_str(), value));
  }
  if (static_cast<unsigned long long>(value) > kMaxRingDepth) {
    return Status::InvalidArgument(StrFormat(
        "%s must be <= %llu (got %lld)", name.c_str(),
        static_cast<unsigned long long>(kMaxRingDepth), value));
  }
  return static_cast<size_t>(value);
}

/// Clamp for internal construction sites that promise a usable ring no
/// matter what (the BatchPipeline's documented "clamped to >= 1").
inline size_t ClampRingDepth(size_t depth) {
  if (depth < kMinRingDepth) return kMinRingDepth;
  if (depth > kMaxRingDepth) return kMaxRingDepth;
  return depth;
}

}  // namespace fae

#endif  // FAE_ENGINE_RING_LIMITS_H_
