#ifndef FAE_ENGINE_DIRTY_ROWS_H_
#define FAE_ENGINE_DIRTY_ROWS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/logging.h"

namespace fae {

/// Reusable per-table dirty-row tracker for the delta sync strategy: a bit
/// per master row plus an insertion-ordered list of the rows actually
/// touched. Replaces the per-sync `unordered_set` churn — Mark is a
/// test-and-set on a flat bitmap, Clear only resets the bits that were set
/// (O(touched), not O(rows)), and the touched lists are reused buffers that
/// plug straight into EmbeddingReplicator::{Pull,Push}RowsToMasters.
class DirtyRows {
 public:
  DirtyRows() = default;

  explicit DirtyRows(const std::vector<uint64_t>& table_rows) {
    Init(table_rows);
  }

  void Init(const std::vector<uint64_t>& table_rows) {
    bits_.resize(table_rows.size());
    touched_.resize(table_rows.size());
    for (size_t t = 0; t < table_rows.size(); ++t) {
      bits_[t].assign((table_rows[t] + 63) / 64, 0);
      touched_[t].clear();
    }
  }

  void Mark(size_t table, uint32_t row) {
    std::vector<uint64_t>& bits = bits_[table];
    const uint64_t mask = uint64_t{1} << (row & 63);
    uint64_t& word = bits[row >> 6];
    if ((word & mask) == 0) {
      word |= mask;
      touched_[table].push_back(row);
    }
  }

  void MarkAll(size_t table, std::span<const uint32_t> rows) {
    for (uint32_t row : rows) Mark(table, row);
  }

  bool IsDirty(size_t table, uint32_t row) const {
    return (bits_[table][row >> 6] >> (row & 63)) & 1;
  }

  /// Per-table touched rows in first-touch order; directly consumable by
  /// the replicator's delta-sync calls.
  const std::vector<std::vector<uint32_t>>& touched() const {
    return touched_;
  }

  size_t num_tables() const { return bits_.size(); }

  uint64_t TotalTouched() const {
    uint64_t n = 0;
    for (const std::vector<uint32_t>& rows : touched_) n += rows.size();
    return n;
  }

  /// Sparse reset: clears only the set bits (via the touched lists) and
  /// empties the lists, keeping every buffer's capacity for reuse.
  void Clear() {
    for (size_t t = 0; t < touched_.size(); ++t) {
      for (uint32_t row : touched_[t]) {
        bits_[t][row >> 6] = 0;  // coarse word clear; neighbors also reset
      }
      touched_[t].clear();
    }
  }

 private:
  std::vector<std::vector<uint64_t>> bits_;     // per table, 1 bit per row
  std::vector<std::vector<uint32_t>> touched_;  // per table, set rows
};

}  // namespace fae

#endif  // FAE_ENGINE_DIRTY_ROWS_H_
