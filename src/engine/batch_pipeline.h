#ifndef FAE_ENGINE_BATCH_PIPELINE_H_
#define FAE_ENGINE_BATCH_PIPELINE_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "data/batch_view.h"
#include "data/flat_dataset.h"

namespace fae {

/// Double-buffered mini-batch prefetcher: a dedicated producer thread
/// gathers/packs upcoming batches into a ring of reusable FlatDataset
/// workspaces while the trainer computes on the current one, so input
/// staging overlaps training (the --pipeline flag; DESIGN.md §11).
///
/// Work arrives in *segments* (one per baseline epoch / FAE schedule
/// chunk): Begin() hands the producer an ordered list of batch specs, and
/// the consumer then alternates Acquire()/Release() exactly once per spec,
/// in order. Segments are the pipeline's sync boundaries — the producer
/// never runs ahead into the next segment, which is what keeps the
/// pipelined trainer's math bit-identical to the serial one (the scheduler
/// may change the upcoming batch mix at a boundary, so nothing beyond it
/// may be staged speculatively).
///
/// Determinism contract: Acquire() returns batches in exactly Begin()
/// order, and each staged batch is a sample-for-sample copy of what the
/// serial trainer would have viewed zero-copy (GatherInto produces
/// zero-based CSR offsets; kernels rebase via offsets.front(), so the
/// results are bit-identical). The producer thread touches only its own
/// slot buffers — it never reads or writes model state.
///
/// Shutdown: the destructor works with any number of unconsumed specs in
/// flight (e.g. an injected crash abandoning a segment) — it signals stop,
/// wakes the producer out of any wait, and joins.
class BatchPipeline {
 public:
  /// One batch to stage: gather `ids` (in order) from `source`. The span
  /// and the source must stay valid until the batch is Release()d or the
  /// pipeline is destroyed.
  struct Spec {
    const FlatDataset* source = nullptr;
    std::span<const uint64_t> ids;
    bool hot = false;
  };

  /// `depth` is the staging-ring size (clamped to >= 1): how many batches
  /// the producer may run ahead of the consumer. 1 means stage-then-train
  /// with no lookahead; 2 is classic double buffering.
  explicit BatchPipeline(size_t depth);
  ~BatchPipeline();

  BatchPipeline(const BatchPipeline&) = delete;
  BatchPipeline& operator=(const BatchPipeline&) = delete;

  /// Starts a new segment. The previous segment must be fully consumed
  /// (every Acquire matched by a Release, all specs drained).
  void Begin(std::vector<Spec> specs);

  /// Blocks until the next batch (in Begin order) is staged and returns a
  /// view into its slot workspace, valid until the matching Release().
  const BatchView& Acquire();

  /// Returns the slot just acquired to the producer for reuse.
  void Release();

  size_t depth() const { return slots_.size(); }

 private:
  struct Slot {
    FlatDataset workspace;
    BatchView view;
    /// Written by the producer under the lock after the (unlocked) gather;
    /// the consumer only touches workspace/view after observing it true,
    /// and the producer only refills after the consumer resets it — the
    /// flag's lock acquire/release orders the unlocked buffer accesses.
    bool filled = false;
  };

  void ProducerLoop();

  std::vector<Slot> slots_;

  std::mutex mu_;
  std::condition_variable producer_cv_;
  std::condition_variable consumer_cv_;
  std::vector<Spec> specs_;   // current segment
  size_t next_fill_ = 0;      // next spec index the producer stages
  size_t next_consume_ = 0;   // next spec index the consumer acquires
  bool holding_ = false;      // consumer is between Acquire and Release
  bool stop_ = false;

  std::thread producer_;
};

}  // namespace fae

#endif  // FAE_ENGINE_BATCH_PIPELINE_H_
