#include "engine/trainer.h"

#include <algorithm>
#include <bit>
#include <numeric>
#include <functional>

#include "core/embedding_replicator.h"
#include "core/fae_format.h"
#include "engine/batch_pipeline.h"
#include "core/input_processor.h"
#include "core/shard_planner.h"
#include "core/shuffle_scheduler.h"
#include "engine/dirty_rows.h"
#include "engine/ring_limits.h"
#include "sim/partition.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace fae {
namespace {

/// Bounded retry policy for transient device faults: exponential backoff
/// starting at 1 ms; a fault outliving the budget is a permanent device
/// loss and fails the run.
constexpr uint32_t kMaxFaultRetries = 5;
constexpr double kRetryBackoffSeconds = 0.001;

uint64_t FnvMix(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Builds the execution-core options from the trainer's richer set.
StepExecutor::Options ExecOptions(const TrainOptions& options) {
  StepExecutor::Options exec;
  exec.dense_lr = options.dense_lr;
  exec.sparse_lr = options.sparse_lr;
  exec.run_math = options.run_math;
  exec.fp16_embeddings = options.fp16_embeddings;
  exec.num_threads = options.num_threads;
  exec.eval_samples = options.eval_samples;
  exec.eval_batch = options.eval_batch;
  return exec;
}

/// The oracle cache's demands on the run configuration, shared by the
/// baseline and FAE paths (and mirrored by the CLI's early rejection).
Status ValidateCacheOptions(const TrainOptions& options) {
  if (options.cache == CacheMode::kOff) return Status::OK();
  if (options.pipeline == PipelineMode::kOff) {
    return Status::InvalidArgument(
        "--cache=oracle requires a pipelined run (--pipeline=prefetch or "
        "overlap): the oracle window is the batch pipeline's forward "
        "visibility into staged batches");
  }
  if (options.cache_budget_rows < 1) {
    return Status::InvalidArgument(
        "--cache-budget-rows must be at least 1");
  }
  if (options.cache_lookahead < kMinRingDepth ||
      options.cache_lookahead > kMaxRingDepth) {
    return Status::InvalidArgument(StrFormat(
        "--cache-lookahead must be in [%zu, %zu]", kMinRingDepth,
        kMaxRingDepth));
  }
  return Status::OK();
}

/// Demands of the quantized cold store (TrainOptions::cold_precision),
/// mirrored by the CLI's early rejection. Combinations whose budget or
/// traffic accounting assumes fp32 cold rows are errors, not silent
/// fallbacks.
Status ValidateColdOptions(const TrainOptions& options) {
  if (options.cold_precision == ColdPrecision::kFp32) return Status::OK();
  if (options.fp16_embeddings) {
    return Status::InvalidArgument(
        "--cold-precision and --fp16-embeddings are mutually exclusive: "
        "fp16 emulation rounds rows through the fp32 tables that the "
        "quantized cold store no longer holds");
  }
  if (options.cache != CacheMode::kOff) {
    return Status::InvalidArgument(
        "--cold-precision cannot be combined with --cache=oracle: the "
        "cache's budget and transfer accounting assume fp32 cold rows, so "
        "the two would double-count the reclaimed bytes");
  }
  return Status::OK();
}

/// Demands of stale-update skipping (TrainOptions::stale_skip), mirrored
/// by the CLI's early rejection. The mode restriction (kCold needs the FAE
/// placement) is checked per driver — it depends on which trainer runs.
Status ValidateStaleOptions(const TrainOptions& options) {
  if (options.stale_skip == StaleSkipMode::kOff) return Status::OK();
  if (!options.run_math) {
    return Status::InvalidArgument(
        "--stale-skip requires real math: skip decisions read measured "
        "per-row update magnitudes, which cost-only runs never produce");
  }
  if (options.fp16_embeddings) {
    return Status::InvalidArgument(
        "--stale-skip and --fp16-embeddings are mutually exclusive: fp16 "
        "emulation materializes gradients outside the fused path that "
        "measures per-row update magnitudes");
  }
  if (options.pipelined_baseline) {
    return Status::InvalidArgument(
        "--stale-skip cannot be combined with the legacy "
        "pipelined_baseline cost model: the overlay prices against the "
        "per-step part charges its wall accumulator does not produce");
  }
  if (options.cache != CacheMode::kOff) {
    return Status::InvalidArgument(
        "--stale-skip cannot be combined with --cache=oracle: both "
        "reprice the same cold-step charges against the plain step, so "
        "their savings would double-count");
  }
  if (options.stale_threshold < 0.0) {
    return Status::InvalidArgument("--stale-threshold must be >= 0");
  }
  if (options.stale_min_visits < 1) {
    return Status::InvalidArgument("--stale-min-visits must be at least 1");
  }
  return Status::OK();
}

/// Drives a LookaheadCache as a cost-model overlay: prices each cold step
/// under the cache against the plain hybrid step (both through the real
/// StepAccountant, the cached variant into a scratch timeline) and credits
/// the difference via Timeline::AddCacheSavedSeconds. The real timeline's
/// phase charges never change — that is the bit-identical contract.
struct OracleCacheRig {
  LookaheadCache cache;
  const StepAccountant* accountant = nullptr;
  /// Whether the plain step the cache replaces runs its CPU/GPU lanes
  /// overlapped (--pipeline=overlap) or serially (prefetch).
  bool overlap_lanes = false;
  /// Positive per-step savings accumulated in the current schedule chunk;
  /// the FAE kOverlap pairing logic subtracts this from a cold chunk's
  /// unhidden span so the same seconds are never credited twice.
  double chunk_saved = 0.0;

  double PriceStep(const BatchWork& w,
                   const StepAccountant::BaselineParts& plain,
                   const LookaheadCache::StepCharge& sc, Timeline& tl) {
    StepAccountant::OracleCacheTraffic t;
    const uint64_t lookups = sc.hit_lookups + sc.miss_lookups;
    if (lookups > 0) {
      t.hit_lookup_bytes =
          w.embedding_read_bytes * sc.hit_lookups / lookups;
      t.miss_lookup_bytes = w.embedding_read_bytes - t.hit_lookup_bytes;
    }
    const uint64_t rows = sc.hit_rows + sc.miss_rows;
    if (rows > 0) {
      t.hit_touched_bytes = w.touched_bytes * sc.hit_rows / rows;
      t.miss_touched_bytes = w.touched_bytes - t.hit_touched_bytes;
    }
    t.timely_prefetch_bytes = sc.timely_prefetch_bytes;
    t.late_prefetch_bytes = sc.late_prefetch_bytes;
    t.writeback_bytes = sc.writeback_bytes;
    Timeline scratch;
    const StepAccountant::OracleCacheParts parts =
        accountant->ChargeOracleCacheStep(w, t, scratch);
    const double plain_eff =
        overlap_lanes ? plain.Overlapped() : plain.Total();
    const double saved = plain_eff - parts.EffectiveSeconds(overlap_lanes);
    tl.AddCacheSavedSeconds(saved);
    if (saved > 0.0) chunk_saved += saved;
    Timeline::CacheCounters& cc = tl.cache_counters();
    cc.hits += sc.hit_lookups;
    cc.misses += sc.miss_lookups;
    cc.stale_refreshes += sc.stale_refreshes;
    cc.prefetch_bytes += sc.timely_prefetch_bytes + sc.late_prefetch_bytes;
    cc.writeback_bytes += sc.writeback_bytes;
    cc.plain_transfer_bytes += 2 * w.embedding_activation_bytes;
    cc.effective_transfer_bytes += parts.transfer_bytes;
    return saved;
  }

  /// Boundary writebacks (hot-chunk entry flush, end-of-run drain): real
  /// DMA the plain run never pays, priced through the same sync path the
  /// trainer charges and debited from the savings.
  void ChargeWriteback(uint64_t bytes, Timeline& tl) {
    if (bytes == 0) return;
    Timeline scratch;
    accountant->ChargeSyncToCpu(bytes, scratch);
    tl.AddCacheSavedSeconds(-scratch.PhaseSumSeconds());
    Timeline::CacheCounters& cc = tl.cache_counters();
    cc.writeback_bytes += bytes;
    cc.effective_transfer_bytes += bytes;
  }
};

/// Prices hot steps and hot-slice syncs under a sharded placement
/// (TrainOptions::sharding) against the replicate-mode charges the real
/// timeline always carries, crediting the difference through
/// Timeline::AddShardingSavedSeconds — the OracleCacheRig overlay contract
/// applied to the hot side. The credit is signed: whole-table LPT usually
/// *loses* to replication and the modeled wall must show it.
struct ShardingRig {
  ShardedPlacement placement;
  const StepAccountant* accountant = nullptr;
  /// Per-hot-batch traffic splits, precomputed once from each batch's
  /// actual lookups against the placement (indexed like hot_batches).
  std::vector<StepAccountant::ShardedStepTraffic> traffic;
  /// Placement byte totals for scaling sync events that ship fewer bytes
  /// than the whole slice (dirty sync assumes uniform dirtiness).
  uint64_t hot_bytes = 0;
  uint64_t replicated_bytes = 0;
  uint64_t shard_bytes_total = 0;
  uint64_t max_shard_bytes = 0;
  /// Positive savings accumulated in the current schedule chunk; the
  /// kOverlap pairing subtracts this from a hot chunk's unhidden span,
  /// mirroring OracleCacheRig::chunk_saved on the cold side.
  double chunk_saved = 0.0;

  void Credit(double plain_seconds, double sharded_seconds, Timeline& tl) {
    const double saved = plain_seconds - sharded_seconds;
    tl.AddShardingSavedSeconds(saved);
    if (saved > 0.0) chunk_saved += saved;
  }

  void PriceHotStep(const BatchWork& w, size_t batch, double plain_seconds,
                    Timeline& tl) {
    Timeline scratch;
    accountant->ChargeShardedHotStep(w, traffic[batch], scratch);
    Credit(plain_seconds, scratch.PhaseSumSeconds(), tl);
  }

  void PriceSyncToGpus(uint64_t shipped_bytes, Timeline& tl) {
    const double frac =
        hot_bytes > 0
            ? static_cast<double>(shipped_bytes) / static_cast<double>(
                                                       hot_bytes)
            : 0.0;
    Timeline plain;
    accountant->ChargeSyncToGpus(shipped_bytes, plain);
    Timeline scratch;
    accountant->ChargeShardedSyncToGpus(
        static_cast<uint64_t>(static_cast<double>(replicated_bytes) * frac),
        static_cast<uint64_t>(static_cast<double>(shard_bytes_total) * frac),
        static_cast<uint64_t>(static_cast<double>(max_shard_bytes) * frac),
        scratch);
    Credit(plain.PhaseSumSeconds(), scratch.PhaseSumSeconds(), tl);
  }

  void PriceSyncToCpu(uint64_t shipped_bytes, Timeline& tl) {
    const double frac =
        hot_bytes > 0
            ? static_cast<double>(shipped_bytes) / static_cast<double>(
                                                       hot_bytes)
            : 0.0;
    Timeline plain;
    accountant->ChargeSyncToCpu(shipped_bytes, plain);
    Timeline scratch;
    accountant->ChargeShardedSyncToCpu(
        static_cast<uint64_t>(static_cast<double>(replicated_bytes) * frac),
        static_cast<uint64_t>(static_cast<double>(shard_bytes_total) * frac),
        static_cast<uint64_t>(static_cast<double>(max_shard_bytes) * frac),
        scratch);
    Credit(plain.PhaseSumSeconds(), scratch.PhaseSumSeconds(), tl);
  }
};

/// Prices each CPU step under stale-update skipping against the plain
/// hybrid step the real timeline always carries, crediting the elided
/// backward-gather and optimizer work through
/// Timeline::AddStaleSkipSavedSeconds — the OracleCacheRig overlay
/// contract applied to the fused sparse step. Reads the traffic split the
/// StalenessTracker counted during MathStep, so it must run *after* the
/// math (the real charges already landed before it, which is fine: the
/// overlay only moves the savings accumulator).
struct StaleSkipRig {
  const StepAccountant* accountant = nullptr;
  /// Whether the plain step runs its CPU/GPU lanes overlapped
  /// (--pipeline=overlap) or serially.
  bool overlap_lanes = false;
  /// Positive per-step savings accumulated in the current schedule chunk;
  /// the FAE kOverlap pairing subtracts this from a cold chunk's unhidden
  /// span, mirroring OracleCacheRig::chunk_saved.
  double chunk_saved = 0.0;

  void PriceStep(const BatchWork& w,
                 const StepAccountant::BaselineParts& plain,
                 const StalenessTracker& tracker, Timeline& tl) {
    const uint64_t skipped_rows = tracker.step_skipped_rows();
    const uint64_t updated_rows = tracker.step_updated_rows();
    Timeline::StaleSkipCounters& sc = tl.stale_skip_counters();
    sc.skipped_rows += skipped_rows;
    sc.updated_rows += updated_rows;
    // Nothing elided: the skipped step is the plain step (no scratch
    // pricing, and crediting an exact 0.0 would only accumulate noise).
    if (skipped_rows == 0) return;
    StepAccountant::StaleSkipTraffic t;
    const uint64_t lookups =
        tracker.step_skipped_lookups() + tracker.step_live_lookups();
    if (lookups > 0) {
      t.live_lookup_bytes =
          w.embedding_read_bytes * tracker.step_live_lookups() / lookups;
      t.skipped_lookup_bytes = w.embedding_read_bytes - t.live_lookup_bytes;
    } else {
      t.live_lookup_bytes = w.embedding_read_bytes;
    }
    const uint64_t rows = skipped_rows + updated_rows;
    t.live_touched_bytes = w.touched_bytes * updated_rows / rows;
    t.skipped_touched_bytes = w.touched_bytes - t.live_touched_bytes;
    Timeline scratch;
    const StepAccountant::BaselineParts skipped =
        accountant->ChargeStaleSkipStep(w, t, scratch);
    const double plain_eff =
        overlap_lanes ? plain.Overlapped() : plain.Total();
    const double skip_eff =
        overlap_lanes ? skipped.Overlapped() : skipped.Total();
    const double saved = plain_eff - skip_eff;
    tl.AddStaleSkipSavedSeconds(saved);
    if (saved > 0.0) chunk_saved += saved;
  }
};

}  // namespace

std::string_view TrainModeName(TrainMode mode) {
  switch (mode) {
    case TrainMode::kBaseline:
      return "baseline";
    case TrainMode::kFae:
      return "fae";
    case TrainMode::kNvOpt:
      return "nvopt";
    case TrainMode::kModelParallel:
      return "model-parallel";
    case TrainMode::kGpuCache:
      return "gpu-cache";
  }
  return "unknown";
}

Trainer::Trainer(RecModel* model, SystemSpec system, TrainOptions options)
    : model_(model),
      system_(std::move(system)),
      cost_(system_),
      accountant_(&cost_),
      options_(options),
      exec_(model, ExecOptions(options)) {
  FAE_CHECK_GE(options_.per_gpu_batch, 1u);
  FAE_CHECK_GE(options_.epochs, 1u);
}

uint64_t Trainer::OptionsFingerprint() const {
  uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  h = FnvMix(h, options_.per_gpu_batch);
  h = FnvMix(h, GlobalBatchSize());  // covers the world size too
  h = FnvMix(h, options_.epochs);
  h = FnvMix(h, std::bit_cast<uint32_t>(options_.dense_lr));
  h = FnvMix(h, std::bit_cast<uint32_t>(options_.sparse_lr));
  h = FnvMix(h, options_.run_math ? 1 : 0);
  h = FnvMix(h, options_.eval_samples);
  h = FnvMix(h, options_.eval_batch);
  h = FnvMix(h, options_.evals_per_epoch);
  h = FnvMix(h, static_cast<uint64_t>(options_.sync_strategy));
  h = FnvMix(h, options_.pipelined_baseline ? 1 : 0);
  h = FnvMix(h, options_.fp16_embeddings ? 1 : 0);
  h = FnvMix(h, options_.seed);
  // num_threads is deliberately absent: the kernels are bit-identical at
  // any thread count, so a resume may change it freely. pipeline and
  // pipeline_depth are absent for the same reason — every pipeline mode
  // produces identical math, phase charges, and checkpoint bytes (the
  // overlap savings live outside Timeline::State), so a run may resume
  // under a different pipeline configuration. The cache knobs (cache,
  // cache_budget_rows, cache_lookahead) are absent on the same contract:
  // the oracle cache is a cost-model overlay whose savings and counters
  // also live outside Timeline::State, so a resume may turn it on, off,
  // or resize it freely. cold_precision is absent for a different reason:
  // the storage mode travels *inside* the model state (ModelIo v3 tags
  // every table), and the resume path reconciles it explicitly — same
  // precision resumes verbatim, fp32 widens exactly, anything else is
  // rejected — so the fingerprint would only forbid the legal directions.
  // sharding is absent on the cache contract: a sharded placement is a
  // pure cost-model overlay (math always reads the CPU master and the
  // savings live outside Timeline::State), so a resume may switch
  // --sharding freely. The stale-skip triple (stale_skip, stale_threshold,
  // stale_min_visits) is absent on the cold_precision contract: the
  // tracker's per-row state travels *inside* the checkpoint (v3's
  // staleness section) and the resume path reconciles it explicitly —
  // same-mode resume restores it verbatim (bit-exact), turning skipping
  // off ignores it, turning it on starts a fresh tracker — so the
  // fingerprint would only forbid the legal directions.
  return h;
}

StatusOr<bool> Trainer::DrainFaults(
    uint64_t iteration, TrainReport& report,
    const std::function<void(uint64_t)>& on_corrupt_sync) {
  FaultInjector* injector = options_.fault_injector;
  if (injector == nullptr || injector->empty()) return false;
  FaultStats& stats = injector->stats();
  // Recovery time must reach the wall accumulator too when the run models
  // overlapped execution (Timeline::TotalSeconds then ignores phase sums).
  auto charge_recovery = [&](double seconds) {
    report.timeline.Charge(Phase::kFaultRecovery, seconds);
    if (options_.pipelined_baseline) report.timeline.AddWallSeconds(seconds);
  };
  for (const FaultEvent& event : injector->Drain(iteration)) {
    switch (event.kind) {
      case FaultKind::kDeviceTransient: {
        ++stats.device_faults;
        if (event.times > kMaxFaultRetries) {
          return Status::ResourceExhausted(StrFormat(
              "device failed %u consecutive attempts at step %llu, "
              "exhausting the retry budget (%u); treating the device as "
              "permanently lost",
              event.times, static_cast<unsigned long long>(event.step),
              kMaxFaultRetries));
        }
        double backoff = kRetryBackoffSeconds;
        for (uint32_t attempt = 0; attempt < event.times; ++attempt) {
          ++stats.retries;
          charge_recovery(backoff);
          backoff *= 2.0;
        }
        FAE_LOG(Warning) << "transient device fault at step " << iteration
                         << ": recovered after " << event.times
                         << " retry attempt(s)";
        break;
      }
      case FaultKind::kLinkStall:
        ++stats.link_stalls;
        charge_recovery(event.stall_seconds);
        FAE_LOG(Warning) << "link stall at step " << iteration << " ("
                         << event.stall_seconds << " s)";
        break;
      case FaultKind::kCorruptSync:
        ++stats.corrupt_syncs;
        if (on_corrupt_sync) {
          on_corrupt_sync(iteration);
        } else {
          FAE_LOG(Warning)
              << "corrupt-sync fault at step " << iteration
              << " ignored: this mode keeps no GPU embedding replicas";
        }
        break;
      case FaultKind::kCrash:
        ++stats.crashes;
        report.interrupted = true;
        FAE_LOG(Warning)
            << "injected crash at step " << iteration
            << ": returning a partial report (resume from the last "
               "checkpoint to continue)";
        return true;
      case FaultKind::kRecalStall:
      case FaultKind::kSwapCrash:
      case FaultKind::kLookupLoss:
        // Serving-side faults (ServingLoop); batch training has no
        // recalibration or lookup path for them to hit.
        FAE_LOG(Warning) << FaultKindName(event.kind) << " fault at step "
                         << iteration
                         << " ignored: batch training has no serving path";
        break;
    }
  }
  return false;
}

void Trainer::FinishReport(TrainReport& report,
                           const std::vector<BatchView>& eval_batches,
                           RunningMetric& metric) const {
  if (options_.fault_injector != nullptr) {
    report.faults = options_.fault_injector->stats();
  }
  // The pipelined wall: phase totals minus what overlap hid (equal to the
  // plain total when nothing overlapped).
  report.modeled_seconds = report.timeline.OverlappedTotalSeconds();
  report.prep_seconds = report.timeline.seconds(Phase::kInputPrep);
  report.overlap_saved_seconds = report.timeline.overlap_saved_seconds();
  report.overlap_fraction = report.timeline.OverlapFraction();
  report.cache_saved_seconds = report.timeline.cache_saved_seconds();
  report.sharding_saved_seconds = report.timeline.sharding_saved_seconds();
  const Timeline::CacheCounters& cc = report.timeline.cache_counters();
  report.cache_hits = cc.hits;
  report.cache_misses = cc.misses;
  report.cache_hit_rate =
      cc.hits + cc.misses > 0
          ? static_cast<double>(cc.hits) /
                static_cast<double>(cc.hits + cc.misses)
          : 0.0;
  report.cache_stale_refreshes = cc.stale_refreshes;
  report.cache_prefetch_bytes = cc.prefetch_bytes;
  report.cache_writeback_bytes = cc.writeback_bytes;
  report.cache_plain_transfer_bytes = cc.plain_transfer_bytes;
  report.cache_effective_transfer_bytes = cc.effective_transfer_bytes;
  // The guard counters reach the timeline in the drivers' finalize step
  // (the tracker lives there); stale_final_threshold is set there too.
  report.stale_skip_saved_seconds =
      report.timeline.stale_skip_saved_seconds();
  const Timeline::StaleSkipCounters& ssc =
      report.timeline.stale_skip_counters();
  report.stale_skipped_rows = ssc.skipped_rows;
  report.stale_updated_rows = ssc.updated_rows;
  report.stale_reactivated_rows = ssc.reactivated_rows;
  report.stale_guard_tightens = ssc.guard_tightens;
  report.stale_guard_widens = ssc.guard_widens;
  report.avg_gpu_watts = cost_.AverageGpuWatts(
      report.modeled_seconds, report.timeline.gpu_busy_seconds(),
      report.timeline.seconds(Phase::kCpuGpuTransfer) +
          report.timeline.seconds(Phase::kEmbeddingSync));
  if (options_.run_math) {
    report.final_train_loss = metric.mean_loss();
    report.final_train_acc = metric.accuracy();
    const EvalResult eval = Evaluate(*model_, eval_batches);
    report.final_test_loss = eval.loss;
    report.final_test_acc = eval.accuracy;
    report.final_test_auc = eval.auc;
  }
}

TrainReport Trainer::TrainBaseline(const Dataset& dataset,
                                   const Dataset::Split& split) {
  StatusOr<TrainReport> report = TrainBaselineResumable(dataset, split);
  FAE_CHECK(report.ok()) << report.status().ToString();
  return std::move(report).value();
}

StatusOr<TrainReport> Trainer::TrainBaselineResumable(
    const Dataset& dataset, const Dataset::Split& split) {
  if (options_.pipeline != PipelineMode::kOff && options_.pipelined_baseline) {
    return Status::InvalidArgument(
        "--pipeline and the legacy pipelined_baseline cost model are "
        "mutually exclusive (both model overlapped execution)");
  }
  FAE_RETURN_IF_ERROR(ValidateCacheOptions(options_));
  if (options_.cold_precision != ColdPrecision::kFp32) {
    return Status::InvalidArgument(
        "--cold-precision applies to the FAE placement only: the baseline "
        "has no hot/cold partition, so there is no cold store to quantize");
  }
  if (options_.sharding != ShardingMode::kReplicate) {
    return Status::InvalidArgument(
        "--sharding applies to the FAE placement only: the baseline keeps "
        "every embedding on the CPU, so there is no hot slice to shard");
  }
  FAE_RETURN_IF_ERROR(ValidateStaleOptions(options_));
  if (options_.stale_skip == StaleSkipMode::kCold) {
    return Status::InvalidArgument(
        "--stale-skip=cold applies to the FAE placement only: the baseline "
        "has no hot/cold partition, so there is no hot set to pin live");
  }
  exec_.MaybeQuantizeTables();
  TrainReport report;
  report.mode = TrainMode::kBaseline;
  const bool pipelined = options_.pipeline != PipelineMode::kOff;
  const bool cache_on = options_.cache == CacheMode::kOracle;

  std::vector<uint64_t> ids = split.train;
  Xoshiro256 rng(options_.seed);
  for (size_t i = ids.size(); i > 1; --i) {
    std::swap(ids[i - 1], ids[rng.NextBounded(i)]);
  }
  // Serial data path: one gather into epoch order; batches are views into
  // the gathered buffers (consecutive sample ranges), with cost-model work
  // units computed once. Per-epoch reshuffles permute the view list — the
  // underlying data is never copied again.
  //
  // Pipelined data path: no epoch-wide materialization at all. Each batch
  // is a descriptor — a fixed subspan of the shuffled ids — that the
  // BatchPipeline stages into a ring workspace just in time, overlapping
  // the gather with the previous step's compute. Work units are computed
  // at a descriptor's first staging and cached (Work is pure per batch
  // contents). Both paths reshuffle per epoch with the identical
  // NextBounded call sequence, so the RNG stream — and with it the batch
  // order and checkpoint bytes — match exactly.
  struct BatchDesc {
    std::span<const uint64_t> ids;
    BatchWork work;
    bool work_valid = false;
  };
  FlatDataset train_flat;
  std::vector<TrainBatch> batches;
  std::vector<BatchDesc> descs;
  const size_t global_batch = GlobalBatchSize();
  if (pipelined) {
    for (size_t begin = 0; begin < ids.size(); begin += global_batch) {
      BatchDesc d;
      d.ids = std::span<const uint64_t>(ids).subspan(
          begin, std::min(global_batch, ids.size() - begin));
      descs.push_back(std::move(d));
    }
  } else {
    train_flat = dataset.flat().Gather(ids);
    batches = exec_.MakeTrainBatches(train_flat, global_batch, /*hot=*/false);
  }
  const size_t num_batches = pipelined ? descs.size() : batches.size();
  // One NextBounded sequence regardless of data path (checkpoints verify
  // the RNG stream, so the paths must consume identically).
  auto reshuffle_batches = [&] {
    for (size_t i = num_batches; i > 1; --i) {
      const size_t j = rng.NextBounded(i);
      if (pipelined) {
        std::swap(descs[i - 1], descs[j]);
      } else {
        std::swap(batches[i - 1], batches[j]);
      }
    }
  };
  const EvalSet eval_set =
      options_.run_math ? exec_.MakeEvalSet(dataset, split) : EvalSet{};

  std::vector<EmbeddingTable*> tables;
  for (EmbeddingTable& t : model_->tables()) tables.push_back(&t);

  // Stale-update skipping (kAll only here; kCold was rejected above). The
  // tracker rides inside every fused step; the rig prices what it elided.
  const bool stale_on = options_.stale_skip != StaleSkipMode::kOff;
  StalenessTracker staleness;
  StaleSkipRig stale_rig;
  if (stale_on) {
    StalenessTracker::Options sopt;
    sopt.threshold = options_.stale_threshold;
    sopt.min_visits = static_cast<uint32_t>(options_.stale_min_visits);
    staleness.Init(dataset.schema().table_rows, sopt);
    stale_rig.accountant = &accountant_;
    stale_rig.overlap_lanes = options_.pipeline == PipelineMode::kOverlap;
  }
  // Guard counters live in the tracker until a report is finished; the
  // per-step skip/update counts reach the timeline in PriceStep.
  auto stale_finalize = [&] {
    if (!stale_on) return;
    Timeline::StaleSkipCounters& sc = report.timeline.stale_skip_counters();
    sc.reactivated_rows += staleness.total_reactivated_rows();
    sc.guard_tightens += staleness.guard_tightens();
    sc.guard_widens += staleness.guard_widens();
    report.stale_final_threshold = staleness.threshold();
  };

  RunningMetric metric;
  RunningMetric window;
  const size_t eval_every =
      std::max<size_t>(1, num_batches / std::max<size_t>(
                                            1, options_.evals_per_epoch));
  size_t iteration = 0;
  size_t start_epoch = 0;
  size_t start_batch = 0;

  const CheckpointOptions& ckpt = options_.checkpoint;
  const uint64_t dataset_fp = FaeFormat::Fingerprint(dataset);
  const uint64_t options_fp = OptionsFingerprint();

  if (ckpt.resume) {
    if (ckpt.path.empty()) {
      return Status::InvalidArgument(
          "resume requested but no checkpoint path was given");
    }
    const CheckpointIo::Expectation expect{
        static_cast<uint32_t>(TrainMode::kBaseline), dataset_fp, options_fp};
    FAE_ASSIGN_OR_RETURN(TrainerCheckpoint ck,
                         CheckpointIo::Load(ckpt.path, *model_, &expect));
    // Replay the shuffles consumed up to the save point — the initial id
    // shuffle above plus one batch reshuffle per started epoch — so the
    // resumed batch order matches the uninterrupted run's.
    for (uint64_t e = 0; e <= ck.epoch; ++e) reshuffle_batches();
    if (!(rng.state() == ck.rng)) {
      return Status::FailedPrecondition(
          "checkpoint RNG stream does not match the replayed shuffles "
          "(was the checkpoint taken on a different dataset or split?)");
    }
    metric.Restore(ck.metric);
    window.Restore(ck.window);
    report.timeline.set_state(ck.timeline);
    report.curve = ck.curve;
    // Stale-skip reconciliation (the knob is fingerprint-exempt): resuming
    // with skipping on restores the tracker verbatim when the checkpoint
    // carries one (bit-exact continuation) and starts fresh otherwise;
    // resuming with it off ignores any stored section.
    if (stale_on && ck.has_staleness) staleness.Restore(ck.staleness);
    iteration = ck.iteration;
    report.num_batches = ck.iteration;
    start_epoch = ck.epoch;
    start_batch = ck.batch_in_epoch;
    report.resumed = true;
    report.resumed_at = ck.iteration;
    if (options_.fault_injector != nullptr) {
      options_.fault_injector->SkipUntil(ck.iteration);
    }
    FAE_LOG(Info) << "resumed baseline training from " << ckpt.path
                  << " at iteration " << ck.iteration;
  }

  uint64_t next_save = 0;
  if (!ckpt.path.empty() && ckpt.every_steps > 0) {
    next_save = (iteration / ckpt.every_steps + 1) * ckpt.every_steps;
  }
  auto save_checkpoint = [&](size_t epoch, size_t batch_in_epoch) -> Status {
    TrainerCheckpoint ck;
    ck.mode = static_cast<uint32_t>(TrainMode::kBaseline);
    ck.dataset_fingerprint = dataset_fp;
    ck.options_fingerprint = options_fp;
    ck.epoch = epoch;
    ck.iteration = iteration;
    ck.batch_in_epoch = batch_in_epoch;
    ck.rng = rng.state();
    ck.metric = metric.state();
    ck.window = window.state();
    ck.timeline = report.timeline.state();
    ck.curve = report.curve;
    if (stale_on) {
      ck.has_staleness = true;
      ck.staleness = staleness.state();
    }
    return CheckpointIo::Save(ckpt.path, ck, *model_);
  };

  std::unique_ptr<BatchPipeline> prefetcher;
  if (pipelined) {
    prefetcher = std::make_unique<BatchPipeline>(options_.pipeline_depth);
  }
  OverlapTracker tracker(options_.pipeline, options_.pipeline_depth,
                         &report.timeline);
  OracleCacheRig rig;
  if (cache_on) {
    LookaheadCache::Options copt;
    copt.budget_rows = options_.cache_budget_rows;
    copt.lookahead = options_.cache_lookahead;
    // Same per-row payload the FAE sync machinery ships: the embedding
    // vector plus the optimizer's row index word.
    copt.row_bytes =
        dataset.schema().embedding_dim * sizeof(float) + sizeof(uint32_t);
    rig.cache.Init(dataset.schema().table_rows, copt);
    rig.accountant = &accountant_;
    rig.overlap_lanes = options_.pipeline == PipelineMode::kOverlap;
  }
  // The batch descriptors double as the cache's oracle feed: at a segment
  // start the first `cache_lookahead` batches enter the window, and each
  // step hands the next one over as it retires — the window stays exactly
  // as far ahead as the configured lookahead permits.
  auto cache_push = [&](size_t b) {
    rig.cache.PushBatch(dataset.flat(), descs[b].ids);
  };
  auto cache_drain = [&] {
    if (cache_on) {
      rig.ChargeWriteback(rig.cache.FlushAllDirty(), report.timeline);
    }
  };

  for (size_t epoch = start_epoch; epoch < options_.epochs; ++epoch) {
    // Reshuffle batch order each epoch (already replayed for the epoch a
    // resume landed in).
    if (!(report.resumed && epoch == start_epoch)) reshuffle_batches();
    const size_t first = epoch == start_epoch ? start_batch : 0;
    if (pipelined) {
      // One pipeline segment per epoch: the epoch boundary is a sync
      // point the prefetcher never crosses.
      std::vector<BatchPipeline::Spec> specs;
      specs.reserve(num_batches - first);
      for (size_t b = first; b < num_batches; ++b) {
        specs.push_back(
            BatchPipeline::Spec{&dataset.flat(), descs[b].ids, false});
      }
      prefetcher->Begin(std::move(specs));
    }
    tracker.BeginSegment();
    if (cache_on) {
      rig.cache.BeginSegment();
      const size_t ahead =
          std::min(num_batches, first + options_.cache_lookahead);
      for (size_t b = first; b < ahead; ++b) cache_push(b);
    }
    for (size_t b = first; b < num_batches; ++b) {
      FAE_ASSIGN_OR_RETURN(const bool crashed,
                           DrainFaults(iteration, report, nullptr));
      if (crashed) {
        // ~BatchPipeline cancels the abandoned segment.
        cache_drain();
        stale_finalize();
        FinishReport(report, eval_set.views, metric);
        return report;
      }
      const BatchView* view = nullptr;
      const BatchWork* work = nullptr;
      if (pipelined) {
        const BatchView& staged = prefetcher->Acquire();
        BatchDesc& d = descs[b];
        if (!d.work_valid) {
          d.work = model_->Work(staged);
          d.work_valid = true;
        }
        view = &staged;
        work = &d.work;
      } else {
        view = &batches[b].view;
        work = &batches[b].work;
      }
      // Identical charges in every pipeline mode — staging cost plus the
      // hybrid step; pipelined modes then credit back what overlap hid.
      const double prep = accountant_.ChargeInputPrep(BatchInputBytes(*view),
                                                      report.timeline);
      StepAccountant::BaselineParts parts{};
      if (options_.pipelined_baseline) {
        report.timeline.AddWallSeconds(prep);
        accountant_.ChargeBaselineStepPipelined(*work, report.timeline);
      } else {
        parts = accountant_.ChargeBaselineStepParts(*work, report.timeline);
        tracker.OnStep(prep, parts.Total(), parts.Overlapped());
        if (cache_on) {
          const LookaheadCache::StepCharge sc = rig.cache.OnStep();
          rig.PriceStep(*work, parts, sc, report.timeline);
          const size_t ahead = b + options_.cache_lookahead;
          if (ahead < num_batches) cache_push(ahead);
        }
      }
      if (options_.run_math) {
        exec_.MathStep(*view, tables, metric, window,
                       stale_on ? &staleness : nullptr);
        // After the math: the tracker's step counters now hold this step's
        // skip/update split (stale_on implies !pipelined_baseline, so
        // `parts` carries the plain charges to price against).
        if (stale_on) {
          stale_rig.PriceStep(*work, parts, staleness, report.timeline);
        }
      }
      if (pipelined) prefetcher->Release();
      ++iteration;
      ++report.num_batches;
      if (options_.run_math && iteration % eval_every == 0) {
        CurvePoint point = window.Flush(iteration);
        const EvalResult eval = Evaluate(*model_, eval_set.views);
        point.test_loss = eval.loss;
        point.test_acc = eval.accuracy;
        report.curve.push_back(point);
        if (stale_on) staleness.OnTestLoss(eval.loss);
      }
      if (next_save != 0 && iteration >= next_save) {
        FAE_RETURN_IF_ERROR(save_checkpoint(epoch, b + 1));
        next_save = (iteration / ckpt.every_steps + 1) * ckpt.every_steps;
      }
    }
  }
  cache_drain();
  stale_finalize();
  FinishReport(report, eval_set.views, metric);
  return report;
}

StatusOr<TrainReport> Trainer::TrainFae(const Dataset& dataset,
                                        const Dataset::Split& split,
                                        const FaeConfig& config) {
  Stopwatch prep_watch;
  FaePipeline pipeline(config);
  FAE_ASSIGN_OR_RETURN(FaePlan plan, pipeline.Prepare(dataset, split.train));
  FAE_ASSIGN_OR_RETURN(TrainReport report,
                       TrainFaeWithPlan(dataset, split, config, plan));
  report.preprocess_seconds = prep_watch.ElapsedSeconds();
  return report;
}

StatusOr<TrainReport> Trainer::TrainFaeWithPlan(const Dataset& dataset,
                                                const Dataset::Split& split,
                                                const FaeConfig& config,
                                                const FaePlan& plan) {
  if (options_.pipeline != PipelineMode::kOff && options_.pipelined_baseline) {
    return Status::InvalidArgument(
        "--pipeline and the legacy pipelined_baseline cost model are "
        "mutually exclusive (both model overlapped execution)");
  }
  FAE_RETURN_IF_ERROR(ValidateCacheOptions(options_));
  FAE_RETURN_IF_ERROR(ValidateColdOptions(options_));
  FAE_RETURN_IF_ERROR(ValidateStaleOptions(options_));
  if (config.cold_precision != options_.cold_precision) {
    return Status::InvalidArgument(
        "FaeConfig::cold_precision and TrainOptions::cold_precision "
        "disagree: the calibrator's budget credit must match the storage "
        "mode the trainer realizes");
  }
  exec_.MaybeQuantizeTables();
  TrainReport report;
  report.mode = TrainMode::kFae;

  // Bytes a quantized cold store gives back under `pl` — credited to the
  // hot budget below with the same ColdRowBytes arithmetic the calibrator
  // used, or degradation would undo the calibrator's budget feedback.
  const DatasetSchema& schema = dataset.schema();
  auto reclaimed_for = [&](const FaePlan& pl) -> uint64_t {
    if (options_.cold_precision == ColdPrecision::kFp32) return 0;
    const uint64_t saved_per_row =
        schema.embedding_dim * sizeof(float) -
        ColdRowBytes(schema.embedding_dim, options_.cold_precision);
    uint64_t cold = 0;
    for (size_t t = 0; t < schema.num_tables(); ++t) {
      if (pl.hot_set.mask(t).empty()) continue;  // all-hot: nothing cold
      cold += schema.table_rows[t] - pl.hot_set.HotCount(t);
    }
    return cold * saved_per_row;
  };

  // Graceful degradation: when the hot slice no longer fits the per-GPU
  // budget (popularity drift after calibration, a smaller deployment GPU),
  // demote overflow entries and fall back toward the cold path instead of
  // aborting — unless the caller opted into hard failure. The budget is
  // the *effective* one: L plus what the quantized cold store reclaims
  // (demotions only grow the cold side, so the credit never shrinks under
  // degradation and the recheck below is conservative).
  FaePlan shrunk;
  const FaePlan* active = &plan;
  uint64_t effective_budget =
      system_.hot_embedding_budget + reclaimed_for(plan);
  if (plan.hot_bytes > effective_budget) {
    if (!options_.degrade_on_overflow) {
      return Status::ResourceExhausted(
          "plan's hot slice exceeds the per-GPU hot-embedding budget");
    }
    shrunk = DegradePlanToBudget(dataset, plan, effective_budget,
                                 config.num_threads);
    effective_budget = system_.hot_embedding_budget + reclaimed_for(shrunk);
    if (shrunk.hot_bytes > effective_budget) {
      return Status::ResourceExhausted(
          "hot slice still exceeds the per-GPU budget after demoting every "
          "demotable row");
    }
    active = &shrunk;
  }
  const FaePlan& p = *active;
  report.effective_hot_budget = effective_budget;
  report.cold_reclaimed_bytes = reclaimed_for(p);
  report.threshold = p.threshold;
  report.hot_bytes = p.hot_bytes;
  report.hot_fraction = p.inputs.HotFraction();
  report.degraded = p.degraded;
  report.demoted_rows = p.demoted_rows;
  report.fallback_inputs = p.fallback_inputs;

  // Each class is gathered once into a flat buffer (same seeded shuffles
  // the MiniBatch packer used); pure hot/cold batches are views into it.
  InputProcessor::PackedFlat packed =
      InputProcessor::PackFlat(dataset, p.inputs, options_.seed);
  std::vector<TrainBatch> hot_batches =
      exec_.MakeTrainBatches(packed.hot, GlobalBatchSize(), /*hot=*/true);
  std::vector<TrainBatch> cold_batches =
      exec_.MakeTrainBatches(packed.cold, GlobalBatchSize(), /*hot=*/false);
  report.hot_batches = hot_batches.size();
  report.cold_batches = cold_batches.size();

  // Sharded hot-slice placement (TrainOptions::sharding): plan it from the
  // calibration access profile against the *post-degrade* hot set, then
  // precompute each hot batch's traffic split once — the overlay prices
  // every hot step against it below. Pure cost model: the replicas keep
  // holding the full slice and math never changes.
  const bool sharded = options_.sharding != ShardingMode::kReplicate;
  ShardingRig shard_rig;
  if (sharded) {
    const AccessProfile& profile = p.calibration.profile;
    if (profile.num_tables() != schema.num_tables()) {
      return Status::InvalidArgument(
          "--sharding=lpt|statistical needs a fresh plan: plans loaded "
          "from the FAE-format cache carry no per-row access profile for "
          "the planner to consume (re-run calibration without --plan)");
    }
    const int world = std::max(1, system_.WorldSize());
    StatusOr<ShardedPlacement> placement =
        options_.sharding == ShardingMode::kLpt
            ? ShardPlanner::PlanLpt(profile, p.hot_set, world)
            : ShardPlanner::PlanStatistical(
                  profile, p.hot_set,
                  ShardPlannerOptions{world, /*replicate_mass_fraction=*/0.85,
                                      /*replicate_byte_cap=*/0,
                                      schema.embedding_dim});
    FAE_RETURN_IF_ERROR(placement.status());
    shard_rig.placement = std::move(placement).value();
    shard_rig.accountant = &accountant_;
    shard_rig.hot_bytes = p.hot_bytes;
    shard_rig.replicated_bytes =
        shard_rig.placement.ReplicatedBytes(schema.embedding_dim);
    uint64_t shard_rows_total = 0;
    for (uint64_t r : shard_rig.placement.device_rows) shard_rows_total += r;
    shard_rig.shard_bytes_total =
        shard_rows_total * schema.embedding_dim * sizeof(float);
    shard_rig.max_shard_bytes =
        shard_rig.placement.MaxShardBytes(schema.embedding_dim);
    report.sharding_imbalance = shard_rig.placement.Imbalance();
    report.sharding_replicated_rows = shard_rig.placement.replicated_rows;
    report.sharding_replicated_bytes = shard_rig.replicated_bytes;
    report.sharding_max_shard_bytes = shard_rig.max_shard_bytes;

    // Per-batch traffic splits. Lookups count every reference; the touched
    // splits count unique rows (the sparse-optimizer payload), mirroring
    // BatchWork's lookup/touched distinction.
    const uint64_t row_b = schema.embedding_dim * sizeof(float);
    std::vector<uint64_t> dev_lookups(world);
    std::vector<uint64_t> dev_touched(world);
    std::vector<uint32_t> uniq;
    shard_rig.traffic.reserve(hot_batches.size());
    for (const TrainBatch& batch : hot_batches) {
      std::fill(dev_lookups.begin(), dev_lookups.end(), 0);
      std::fill(dev_touched.begin(), dev_touched.end(), 0);
      uint64_t rep_lookups = 0;
      uint64_t rep_touched = 0;
      for (size_t t = 0; t < schema.num_tables(); ++t) {
        const std::span<const uint32_t> rows = batch.view.indices(t);
        for (uint32_t row : rows) {
          if (shard_rig.placement.IsReplicated(t, row)) {
            ++rep_lookups;
          } else {
            const int d = shard_rig.placement.DeviceOf(t, row);
            ++dev_lookups[d < 0 ? 0 : d];
          }
        }
        uniq.assign(rows.begin(), rows.end());
        std::sort(uniq.begin(), uniq.end());
        uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
        for (uint32_t row : uniq) {
          if (shard_rig.placement.IsReplicated(t, row)) {
            ++rep_touched;
          } else {
            const int d = shard_rig.placement.DeviceOf(t, row);
            ++dev_touched[d < 0 ? 0 : d];
          }
        }
      }
      StepAccountant::ShardedStepTraffic traffic;
      traffic.replicated_lookup_bytes = rep_lookups * row_b;
      traffic.replicated_touched_bytes = rep_touched * row_b;
      for (int d = 0; d < world; ++d) {
        traffic.sharded_lookup_bytes += dev_lookups[d] * row_b;
        traffic.sharded_touched_bytes += dev_touched[d] * row_b;
        traffic.max_device_lookup_bytes = std::max(
            traffic.max_device_lookup_bytes, dev_lookups[d] * row_b);
        traffic.max_device_touched_bytes = std::max(
            traffic.max_device_touched_bytes, dev_touched[d] * row_b);
      }
      shard_rig.traffic.push_back(traffic);
    }
  }

  const EvalSet eval_set =
      options_.run_math ? exec_.MakeEvalSet(dataset, split) : EvalSet{};

  std::vector<EmbeddingTable*> master_tables;
  for (EmbeddingTable& t : model_->tables()) master_tables.push_back(&t);

  // Stale-update skipping rides the CPU master path only (cold batches);
  // the GPU replicas' hot steps never consult the tracker. kCold pins the
  // hot set live — cold batches touch hot rows on the master, and those
  // must keep updating or the next pull sync would ship frozen rows as if
  // they were fresh. The always-update set comes from the *post-degrade*
  // hot set, matching what the replicas actually hold.
  const bool stale_on = options_.stale_skip != StaleSkipMode::kOff;
  StalenessTracker staleness;
  StaleSkipRig stale_rig;
  if (stale_on) {
    StalenessTracker::Options sopt;
    sopt.threshold = options_.stale_threshold;
    sopt.min_visits = static_cast<uint32_t>(options_.stale_min_visits);
    staleness.Init(schema.table_rows, sopt);
    if (options_.stale_skip == StaleSkipMode::kCold) {
      for (size_t t = 0; t < schema.num_tables(); ++t) {
        staleness.SetAlwaysUpdate(t, p.hot_set.HotRows(t));
      }
    }
    stale_rig.accountant = &accountant_;
    stale_rig.overlap_lanes = options_.pipeline == PipelineMode::kOverlap;
  }

  // The replica stands for every GPU's copy (they stay bit-identical under
  // synchronous data parallelism).
  EmbeddingReplicator replicator(model_->tables(), p.hot_set);
  std::vector<EmbeddingTable*> replica_tables = replicator.replica_tables();

  // Pre-translate the hot class into replica coordinates (one translated
  // clone of the gathered buffer; the paper stores preprocessed data in
  // the FAE format for reuse). Hot training batches view this clone.
  FlatDataset hot_translated;
  std::vector<BatchView> hot_translated_views;
  if (options_.run_math) {
    FAE_ASSIGN_OR_RETURN(hot_translated, replicator.TranslateFlat(packed.hot));
    hot_translated_views =
        MakeBatchViews(hot_translated, GlobalBatchSize(), /*hot=*/true);
  }

  // Pipelined staging: each schedule chunk is one BatchPipeline segment
  // (the chunk boundary is FAE's sync point — the scheduler's rate
  // feedback can change the upcoming mix there, so nothing is staged
  // across it). Batches of the packed classes are contiguous sample
  // ranges, so staging specs index through one shared iota pool. Hot
  // batches stage from the replica-coordinate clone when math runs (the
  // staged copy feeds MathStep directly); the untranslated views keep
  // serving work units and dirty tracking in every mode.
  const bool pipelined = options_.pipeline != PipelineMode::kOff;
  // stage_ids must outlive the prefetcher: the producer thread reads
  // Spec::ids spans into it until ~BatchPipeline joins, including on early
  // returns that abandon a segment mid-chunk (injected crashes).
  std::vector<uint64_t> stage_ids;
  std::unique_ptr<BatchPipeline> prefetcher;
  const FlatDataset* hot_stage_src = nullptr;
  if (pipelined) {
    prefetcher = std::make_unique<BatchPipeline>(options_.pipeline_depth);
    stage_ids.resize(std::max(packed.hot.size(), packed.cold.size()));
    std::iota(stage_ids.begin(), stage_ids.end(), 0);
    hot_stage_src = options_.run_math ? &hot_translated : &packed.hot;
  }
  OverlapTracker tracker(options_.pipeline, options_.pipeline_depth,
                         &report.timeline);
  // Cold-chunk CPU seconds awaiting a hot chunk to hide under (kOverlap).
  double pending_cold_unhidden = 0.0;

  ShuffleScheduler scheduler(cold_batches.size(), hot_batches.size(), config);
  RunningMetric metric;
  RunningMetric window;
  size_t iteration = 0;
  size_t start_epoch = 0;

  // Dirty-row tracking for SyncStrategy::kDirty: a reusable bitmap plus
  // touched list per table (see DirtyRows) holding *master* row ids;
  // tracking is index-based so it works in cost-only mode too.
  const bool dirty_sync = options_.sync_strategy == SyncStrategy::kDirty;
  const size_t num_tables = dataset.schema().num_tables();
  const uint64_t row_bytes =
      dataset.schema().embedding_dim * sizeof(float) + sizeof(uint32_t);
  DirtyRows master_dirty;
  DirtyRows replica_dirty;
  if (dirty_sync) {
    master_dirty.Init(dataset.schema().table_rows);
    replica_dirty.Init(dataset.schema().table_rows);
  }
  bool replica_initialized = false;

  // The oracle cache accelerates FAE's cold chunks (hot chunks already run
  // entirely on the GPUs). It may cache hot rows too — cold batches touch
  // them — so the chunk boundaries keep it coherent: dirty cached hot rows
  // flush to the master before a hot chunk's pull sync, and a hot chunk's
  // push sync marks cached copies stale on the way out.
  const bool cache_on = options_.cache == CacheMode::kOracle;
  OracleCacheRig rig;
  if (cache_on) {
    LookaheadCache::Options copt;
    copt.budget_rows = options_.cache_budget_rows;
    copt.lookahead = options_.cache_lookahead;
    copt.row_bytes = row_bytes;
    rig.cache.Init(dataset.schema().table_rows, copt);
    rig.accountant = &accountant_;
    rig.overlap_lanes = options_.pipeline == PipelineMode::kOverlap;
  }
  auto cold_cache_push = [&](size_t i) {
    const size_t begin = i * GlobalBatchSize();
    const size_t count =
        std::min(GlobalBatchSize(), packed.cold.size() - begin);
    rig.cache.PushBatch(
        packed.cold,
        std::span<const uint64_t>(stage_ids).subspan(begin, count));
  };

  const CheckpointOptions& ckpt = options_.checkpoint;
  const uint64_t dataset_fp = FaeFormat::Fingerprint(dataset);
  const uint64_t options_fp = OptionsFingerprint();

  if (ckpt.resume) {
    if (ckpt.path.empty()) {
      return Status::InvalidArgument(
          "resume requested but no checkpoint path was given");
    }
    const CheckpointIo::Expectation expect{
        static_cast<uint32_t>(TrainMode::kFae), dataset_fp, options_fp};
    FAE_ASSIGN_OR_RETURN(TrainerCheckpoint ck,
                         CheckpointIo::Load(ckpt.path, *model_, &expect));
    // FAE checkpoints are taken at schedule-chunk boundaries, where the
    // CPU master copy (restored just now) is authoritative; the replicas
    // are rebuilt by a full pull on the next hot chunk, which is
    // numerically identical to the uninterrupted run (the modeled sync
    // traffic may differ by at most one full-slice sync under kDirty).
    scheduler.Restore(ck.scheduler);
    metric.Restore(ck.metric);
    window.Restore(ck.window);
    report.timeline.set_state(ck.timeline);
    report.curve = ck.curve;
    // Stale-skip reconciliation (the knob is fingerprint-exempt): keep-on
    // restores the tracker verbatim, turn-on starts fresh, turn-off
    // ignores the stored section. See TrainBaselineResumable.
    if (stale_on && ck.has_staleness) staleness.Restore(ck.staleness);
    iteration = ck.iteration;
    report.num_batches = ck.iteration;
    report.sync_bytes = ck.sync_bytes;
    start_epoch = ck.epoch;
    report.resumed = true;
    report.resumed_at = ck.iteration;
    if (options_.fault_injector != nullptr) {
      options_.fault_injector->SkipUntil(ck.iteration);
    }
    FAE_LOG(Info) << "resumed FAE training from " << ckpt.path
                  << " at iteration " << ck.iteration << " (rate "
                  << scheduler.rate() << ")";
  }

  // Cold-store reconciliation, after any resume restored the masters:
  //  - fresh quantized run: compress each partitioned table's cold rows;
  //  - resume at the same precision: keep the restored store *verbatim*
  //    (requantizing would re-round; see model_io.h) after checking the
  //    hot/cold partition still matches the plan;
  //  - resume at fp32 from a quantized checkpoint: widen exactly;
  //  - any other precision change: reject.
  // Cost-only runs skip compression (the masters hold no numerics); the
  // byte accounting below does not depend on it.
  const ColdPrecision target = options_.cold_precision;
  {
    std::vector<EmbeddingTable>& ts = model_->tables();
    for (size_t t = 0; t < ts.size(); ++t) {
      EmbeddingTable& tab = ts[t];
      const std::span<const uint8_t> mask = p.hot_set.mask(t);
      if (tab.compressed()) {
        if (tab.cold_precision() == target) {
          if (mask.empty() || !tab.PartitionMatches(mask)) {
            return Status::FailedPrecondition(StrFormat(
                "checkpoint table %zu's hot/cold partition does not match "
                "the current plan (popularity drift since the checkpoint?); "
                "resume with --cold-precision=fp32 to widen and repartition",
                t));
          }
        } else if (target == ColdPrecision::kFp32) {
          tab.Decompress();
        } else {
          return Status::FailedPrecondition(StrFormat(
              "checkpoint stores table %zu's cold rows as %s but the run "
              "requests %s; resume at the same cold precision or at fp32",
              t, std::string(ColdPrecisionName(tab.cold_precision())).c_str(),
              std::string(ColdPrecisionName(target)).c_str()));
        }
      } else if (target != ColdPrecision::kFp32 && options_.run_math &&
                 !mask.empty()) {
        tab.CompressCold(mask, target);
      }
      report.cold_rows += tab.cold_rows();
      report.cold_store_bytes += tab.ColdStoreBytes();
    }
  }

  // Cold batches stream cold rows out of the quantized store, so their
  // modeled read traffic shrinks to the quantized row width (hot rows a
  // cold batch touches stay fp32, and updates write fp32 staging rows, so
  // only the read side scales). One hot-mask pass per batch, computed once
  // — chunks index cold_batches stably.
  std::vector<BatchWork> cold_work_narrow;
  const bool quantized_cost = target != ColdPrecision::kFp32;
  if (quantized_cost) {
    const uint64_t fp32_row = schema.embedding_dim * sizeof(float);
    const uint64_t cold_row =
        ColdRowBytes(schema.embedding_dim, target);
    cold_work_narrow.reserve(cold_batches.size());
    for (const TrainBatch& batch : cold_batches) {
      uint64_t hot_lookups = 0;
      uint64_t cold_lookups = 0;
      for (size_t t = 0; t < schema.num_tables(); ++t) {
        for (uint32_t row : batch.view.indices(t)) {
          if (p.hot_set.IsHot(t, row)) {
            ++hot_lookups;
          } else {
            ++cold_lookups;
          }
        }
      }
      BatchWork w = batch.work;
      w.embedding_read_bytes =
          hot_lookups * fp32_row + cold_lookups * cold_row;
      cold_work_narrow.push_back(w);
    }
  }
  auto cold_work = [&](size_t i) -> const BatchWork& {
    return quantized_cost ? cold_work_narrow[i] : cold_batches[i].work;
  };

  uint64_t next_save = 0;
  if (!ckpt.path.empty() && ckpt.every_steps > 0) {
    next_save = (iteration / ckpt.every_steps + 1) * ckpt.every_steps;
  }
  auto save_checkpoint = [&](size_t epoch) -> Status {
    TrainerCheckpoint ck;
    ck.mode = static_cast<uint32_t>(TrainMode::kFae);
    ck.dataset_fingerprint = dataset_fp;
    ck.options_fingerprint = options_fp;
    ck.epoch = epoch;
    ck.iteration = iteration;
    ck.sync_bytes = report.sync_bytes;
    ck.metric = metric.state();
    ck.window = window.state();
    ck.scheduler = scheduler.state();
    ck.timeline = report.timeline.state();
    ck.curve = report.curve;
    if (stale_on) {
      ck.has_staleness = true;
      ck.staleness = staleness.state();
    }
    return CheckpointIo::Save(ckpt.path, ck, *model_);
  };

  // When the baseline is pipelined, every non-pipelined charge must also
  // contribute wall time explicitly (Timeline::TotalSeconds switches to
  // the wall accumulator as soon as any overlap is recorded).
  auto charge_serial = [&](const std::function<void()>& charge) {
    if (!options_.pipelined_baseline) {
      charge();
      return;
    }
    const double before = report.timeline.PhaseSumSeconds();
    charge();
    report.timeline.AddWallSeconds(report.timeline.PhaseSumSeconds() -
                                   before);
  };

  // Recovery from a corrupted hot-slice sync: every replica is garbage, so
  // discard them all and re-pull from the CPU master copy, which is always
  // authoritative. GPU updates not yet pushed when the fault hit are lost
  // (honest degradation — training continues from the master's state).
  auto recover_corrupt_sync = [&](uint64_t at) {
    FAE_LOG(Warning) << "corrupted hot-slice sync at step " << at
                     << ": discarding GPU replicas and re-pulling "
                     << HumanBytes(p.hot_bytes) << " from the CPU master";
    if (options_.run_math) {
      replicator.ScrambleReplicas(options_.seed ^ at);
      replicator.PullFromMasters(model_->tables());
    }
    Timeline scratch;
    accountant_.ChargeSyncToGpus(p.hot_bytes, scratch);
    const double seconds = scratch.PhaseSumSeconds();
    report.timeline.Charge(Phase::kFaultRecovery, seconds);
    report.timeline.AddPcieBytes(p.hot_bytes);
    if (options_.pipelined_baseline) {
      report.timeline.AddWallSeconds(seconds);
    }
    report.sync_bytes += p.hot_bytes;
    // Replicas now mirror the masters exactly.
    master_dirty.Clear();
    replica_dirty.Clear();
    replica_initialized = true;
  };

  auto finalize = [&] {
    if (cache_on) {
      rig.ChargeWriteback(rig.cache.FlushAllDirty(), report.timeline);
    }
    if (stale_on) {
      Timeline::StaleSkipCounters& sc =
          report.timeline.stale_skip_counters();
      sc.reactivated_rows += staleness.total_reactivated_rows();
      sc.guard_tightens += staleness.guard_tightens();
      sc.guard_widens += staleness.guard_widens();
      report.stale_final_threshold = staleness.threshold();
    }
    report.transitions = scheduler.transitions();
    report.final_rate = scheduler.rate();
    FinishReport(report, eval_set.views, metric);
  };

  for (size_t epoch = start_epoch; epoch < options_.epochs; ++epoch) {
    // A resume lands mid-epoch: the restored scheduler state already
    // encodes the position, so only later epochs reset it.
    if (!(report.resumed && epoch == start_epoch)) scheduler.ResetEpoch();
    while (auto chunk = scheduler.Next()) {
      if (pipelined) {
        const FlatDataset* src = chunk->hot ? hot_stage_src : &packed.cold;
        std::vector<BatchPipeline::Spec> specs;
        specs.reserve(chunk->count);
        for (size_t i = chunk->begin; i < chunk->begin + chunk->count; ++i) {
          const size_t begin = i * GlobalBatchSize();
          const size_t count =
              std::min(GlobalBatchSize(), src->size() - begin);
          specs.push_back(BatchPipeline::Spec{
              src, std::span<const uint64_t>(stage_ids).subspan(begin, count),
              chunk->hot});
        }
        prefetcher->Begin(std::move(specs));
      }
      tracker.BeginSegment();
      rig.chunk_saved = 0.0;
      shard_rig.chunk_saved = 0.0;
      stale_rig.chunk_saved = 0.0;
      // The chunk window spans everything charged for this chunk —
      // including the hot-slice syncs — so kOverlap can pair a cold
      // chunk's CPU time against the next hot chunk's GPU+DMA time.
      if (tracker.mode() == PipelineMode::kOverlap) tracker.MarkChunkStart();
      if (chunk->hot) {
        // Cold->hot boundary: dirty cached hot rows reach the master
        // *before* the replicas pull, so the pull sees every cold-chunk
        // update — the same coherence order the dirty-sync path enforces.
        if (cache_on) {
          rig.ChargeWriteback(rig.cache.FlushDirty(p.hot_set),
                              report.timeline);
        }
        // Hot phase: replicas pull the latest rows (cold batches may have
        // updated hot entries on the CPU master). The very first hot
        // phase replicates the whole slice regardless of strategy.
        if (!dirty_sync || !replica_initialized) {
          charge_serial([&] {
            accountant_.ChargeSyncToGpus(p.hot_bytes, report.timeline);
          });
          if (sharded) {
            shard_rig.PriceSyncToGpus(p.hot_bytes, report.timeline);
          }
          report.sync_bytes += p.hot_bytes;
          if (options_.run_math) replicator.PullFromMasters(model_->tables());
          if (dirty_sync) master_dirty.Clear();
          replica_initialized = true;
        } else {
          uint64_t bytes = master_dirty.TotalTouched() * row_bytes;
          if (bytes >= p.hot_bytes) {
            // Nearly everything is dirty (hot rows are frequently touched
            // by construction): a wholesale copy avoids the per-row index
            // overhead.
            bytes = p.hot_bytes;
            charge_serial([&] {
              accountant_.ChargeSyncToGpus(bytes, report.timeline);
            });
            if (sharded) shard_rig.PriceSyncToGpus(bytes, report.timeline);
            report.sync_bytes += bytes;
            if (options_.run_math) {
              replicator.PullFromMasters(model_->tables());
            }
          } else {
            charge_serial([&] {
              accountant_.ChargeSyncToGpus(bytes, report.timeline);
            });
            if (sharded) shard_rig.PriceSyncToGpus(bytes, report.timeline);
            report.sync_bytes += bytes;
            if (options_.run_math) {
              replicator.PullRowsFromMasters(model_->tables(),
                                             master_dirty.touched());
            }
          }
          master_dirty.Clear();
        }
        for (size_t i = chunk->begin; i < chunk->begin + chunk->count; ++i) {
          FAE_ASSIGN_OR_RETURN(
              const bool crashed,
              DrainFaults(iteration, report, recover_corrupt_sync));
          if (crashed) {
            finalize();
            return report;
          }
          const BatchView* math_view =
              options_.run_math ? &hot_translated_views[i] : nullptr;
          if (pipelined) {
            const BatchView& staged = prefetcher->Acquire();
            if (options_.run_math) math_view = &staged;
          }
          double prep = 0.0;
          charge_serial([&] {
            prep = accountant_.ChargeInputPrep(
                BatchInputBytes(hot_batches[i].view), report.timeline);
          });
          const double before = report.timeline.PhaseSumSeconds();
          charge_serial([&] {
            accountant_.ChargeHotStep(hot_batches[i].work, report.timeline);
          });
          const double step_seconds =
              report.timeline.PhaseSumSeconds() - before;
          tracker.OnStep(prep, step_seconds, step_seconds);
          if (sharded) {
            shard_rig.PriceHotStep(hot_batches[i].work, i, step_seconds,
                                   report.timeline);
          }
          if (options_.run_math) {
            exec_.MathStep(*math_view, replica_tables, metric, window);
          }
          if (pipelined) prefetcher->Release();
          if (dirty_sync) {
            // Untranslated indices — dirty tracking speaks master ids.
            for (size_t t = 0; t < num_tables; ++t) {
              replica_dirty.MarkAll(t, hot_batches[i].view.indices(t));
            }
          }
          ++iteration;
          ++report.num_batches;
        }
        // Leaving the hot phase: masters absorb the GPU updates.
        if (!dirty_sync) {
          charge_serial([&] {
            accountant_.ChargeSyncToCpu(p.hot_bytes, report.timeline);
          });
          if (sharded) {
            shard_rig.PriceSyncToCpu(p.hot_bytes, report.timeline);
          }
          report.sync_bytes += p.hot_bytes;
          if (options_.run_math) replicator.PushToMasters(model_->tables());
        } else {
          uint64_t bytes = replica_dirty.TotalTouched() * row_bytes;
          if (bytes >= p.hot_bytes) {
            bytes = p.hot_bytes;
            charge_serial([&] {
              accountant_.ChargeSyncToCpu(bytes, report.timeline);
            });
            if (sharded) shard_rig.PriceSyncToCpu(bytes, report.timeline);
            report.sync_bytes += bytes;
            if (options_.run_math) {
              replicator.PushToMasters(model_->tables());
            }
          } else {
            charge_serial([&] {
              accountant_.ChargeSyncToCpu(bytes, report.timeline);
            });
            if (sharded) shard_rig.PriceSyncToCpu(bytes, report.timeline);
            report.sync_bytes += bytes;
            if (options_.run_math) {
              replicator.PushRowsToMasters(model_->tables(),
                                           replica_dirty.touched());
            }
          }
          replica_dirty.Clear();
        }
        // Hot->cold boundary: the push-to-masters just made every cached
        // copy of a hot row stale; the next cold reference refetches it.
        if (cache_on) rig.cache.InvalidateHot(p.hot_set);
      } else {
        if (cache_on) {
          rig.cache.BeginSegment();
          const size_t ahead = std::min<size_t>(
              chunk->begin + chunk->count,
              chunk->begin + options_.cache_lookahead);
          for (size_t i = chunk->begin; i < ahead; ++i) cold_cache_push(i);
        }
        for (size_t i = chunk->begin; i < chunk->begin + chunk->count; ++i) {
          FAE_ASSIGN_OR_RETURN(
              const bool crashed,
              DrainFaults(iteration, report, recover_corrupt_sync));
          if (crashed) {
            finalize();
            return report;
          }
          const BatchView* math_view = &cold_batches[i].view;
          if (pipelined) {
            const BatchView& staged = prefetcher->Acquire();
            math_view = &staged;
          }
          const double prep = accountant_.ChargeInputPrep(
              BatchInputBytes(cold_batches[i].view), report.timeline);
          StepAccountant::BaselineParts parts{};
          if (options_.pipelined_baseline) {
            report.timeline.AddWallSeconds(prep);
            accountant_.ChargeBaselineStepPipelined(cold_work(i),
                                                    report.timeline);
          } else {
            parts = accountant_.ChargeBaselineStepParts(cold_work(i),
                                                        report.timeline);
            tracker.OnStep(prep, parts.Total(), parts.Overlapped());
            if (cache_on) {
              const LookaheadCache::StepCharge sc = rig.cache.OnStep();
              rig.PriceStep(cold_batches[i].work, parts, sc,
                            report.timeline);
              const size_t ahead = i + options_.cache_lookahead;
              if (ahead < chunk->begin + chunk->count) cold_cache_push(ahead);
            }
          }
          if (options_.run_math) {
            exec_.MathStep(*math_view, master_tables, metric, window,
                           stale_on ? &staleness : nullptr);
            // After the math: the tracker counted this step's skip/update
            // split (stale_on implies !pipelined_baseline, so `parts`
            // carries the plain charges to price against).
            if (stale_on) {
              stale_rig.PriceStep(cold_work(i), parts, staleness,
                                  report.timeline);
            }
          }
          if (pipelined) prefetcher->Release();
          if (dirty_sync) {
            // Cold inputs may update hot rows on the master; those rows
            // must reach the replicas before the next hot phase.
            for (size_t t = 0; t < num_tables; ++t) {
              for (uint32_t row : cold_batches[i].view.indices(t)) {
                if (p.hot_set.IsHot(t, row)) master_dirty.Mark(t, row);
              }
            }
          }
          ++iteration;
          ++report.num_batches;
        }
        // End of the cold chunk: requantize every staged cold row back
        // into the store. Flushing *here* — before the boundary eval and
        // any checkpoint — keeps the schedule deterministic (an eval or a
        // resume always sees requantized cold rows, never a mix that
        // depends on the checkpoint cadence) and restores the alloc-free
        // steady state (the staging buffer keeps its capacity).
        if (options_.run_math && target != ColdPrecision::kFp32) {
          for (EmbeddingTable* t : master_tables) {
            if (t->compressed()) t->FlushStaged();
          }
        }
      }
      if (tracker.mode() == PipelineMode::kOverlap) {
        // Pair the interleaved phases: a cold chunk banks its unhidden
        // CPU seconds, and the next hot chunk hides them under its own
        // unhidden GPU+DMA span (capped by the shorter of the two) — the
        // overlapped hot/cold schedule the pipelined trainer models.
        const double unhidden = tracker.ChunkUnhiddenSeconds();
        if (chunk->hot) {
          // Mirror of the cold-side cache guard below: seconds the sharded
          // placement already removed from this hot chunk cannot also hide
          // banked cold seconds.
          const double hid = std::min(
              pending_cold_unhidden,
              std::max(0.0, unhidden - shard_rig.chunk_saved));
          if (hid > 0.0) report.timeline.AddOverlapSavedSeconds(hid);
          pending_cold_unhidden = 0.0;
        } else {
          // Seconds the cache or the stale-skip overlay already removed
          // from this chunk no longer exist to hide under the next hot
          // chunk — banking them too would credit the same time twice.
          pending_cold_unhidden = std::max(
              0.0, unhidden - rig.chunk_saved - stale_rig.chunk_saved);
        }
      }
      if (options_.run_math) {
        CurvePoint point = window.Flush(iteration);
        const EvalResult eval = Evaluate(*model_, eval_set.views);
        point.test_loss = eval.loss;
        point.test_acc = eval.accuracy;
        report.curve.push_back(point);
        scheduler.ReportTestLoss(eval.loss);
        if (stale_on) staleness.OnTestLoss(eval.loss);
      }
      // Chunk boundaries are the FAE save points: the masters have just
      // absorbed every GPU update, so the checkpoint needs no replica
      // state — a resume re-pulls the slice from the masters.
      if (next_save != 0 && iteration >= next_save) {
        FAE_RETURN_IF_ERROR(save_checkpoint(epoch));
        next_save = (iteration / ckpt.every_steps + 1) * ckpt.every_steps;
      }
    }
  }
  finalize();
  return report;
}

TrainReport Trainer::TrainNvOpt(const Dataset& dataset,
                                const Dataset::Split& split) {
  FAE_CHECK_EQ(system_.num_nodes, 1)
      << "the NvOPT comparator models a single node";
  FAE_CHECK(options_.cold_precision == ColdPrecision::kFp32)
      << "--cold-precision applies to the FAE placement only";
  exec_.MaybeQuantizeTables();
  TrainReport report;
  report.mode = TrainMode::kNvOpt;

  // Greedy fp16 placement, largest tables first, into 80% of GPU memory —
  // access-oblivious, per the paper's characterization of NvOPT.
  const DatasetSchema& schema = dataset.schema();
  std::vector<size_t> order(schema.num_tables());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return schema.TableBytes(a) > schema.TableBytes(b);
  });
  std::vector<bool> on_gpu(schema.num_tables(), false);
  uint64_t budget = static_cast<uint64_t>(0.8 * system_.gpu.mem_capacity);
  for (size_t t : order) {
    const uint64_t fp16_bytes = schema.TableBytes(t) / 2;
    if (fp16_bytes <= budget) {
      on_gpu[t] = true;
      budget -= fp16_bytes;
    }
  }

  std::vector<uint64_t> ids = split.train;
  Xoshiro256 rng(options_.seed);
  for (size_t i = ids.size(); i > 1; --i) {
    std::swap(ids[i - 1], ids[rng.NextBounded(i)]);
  }
  const FlatDataset train_flat = dataset.flat().Gather(ids);
  std::vector<TrainBatch> batches =
      exec_.MakeTrainBatches(train_flat, GlobalBatchSize(), /*hot=*/false);
  const EvalSet eval_set =
      options_.run_math ? exec_.MakeEvalSet(dataset, split) : EvalSet{};
  std::vector<EmbeddingTable*> tables;
  for (EmbeddingTable& t : model_->tables()) tables.push_back(&t);

  RunningMetric metric;
  RunningMetric metric2;
  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    // Same per-epoch reshuffle as the baseline (see TrainModelParallel).
    for (size_t i = batches.size(); i > 1; --i) {
      std::swap(batches[i - 1], batches[rng.NextBounded(i)]);
    }
    for (const TrainBatch& batch : batches) {
      accountant_.ChargeNvOptStep(batch.work, on_gpu, schema.embedding_dim,
                                  batch.view.batch_size(), report.timeline);
      if (options_.run_math) exec_.MathStep(batch.view, tables, metric, metric2);
      ++report.num_batches;
    }
  }
  FinishReport(report, eval_set.views, metric);
  return report;
}

StatusOr<TrainReport> Trainer::TrainModelParallel(
    const Dataset& dataset, const Dataset::Split& split) {
  FAE_CHECK_EQ(system_.num_nodes, 1)
      << "the model-parallel comparator models a single node";
  if (options_.cold_precision != ColdPrecision::kFp32) {
    return Status::InvalidArgument(
        "--cold-precision applies to the FAE placement only");
  }
  const DatasetSchema& schema = dataset.schema();
  const int g = std::max(1, system_.num_gpus);
  // Shard tables with the LPT heuristic; the *largest realized shard*
  // (not the balanced ideal) must fit, with 20% headroom for activations
  // and the dense model. A single table larger than a GPU can make this
  // impossible regardless of g — the paper's capacity argument.
  std::vector<uint64_t> table_bytes(schema.num_tables());
  for (size_t t = 0; t < schema.num_tables(); ++t) {
    table_bytes[t] = schema.TableBytes(t);
  }
  const Partition partition = PartitionLpt(table_bytes, g);
  if (partition.MaxWeight() >
      static_cast<uint64_t>(0.8 * system_.gpu.mem_capacity)) {
    return Status::ResourceExhausted(StrFormat(
        "model-parallel shard (%s on the fullest GPU) exceeds GPU memory "
        "(%s)",
        HumanBytes(partition.MaxWeight()).c_str(),
        HumanBytes(system_.gpu.mem_capacity).c_str()));
  }

  TrainReport report;
  report.mode = TrainMode::kModelParallel;
  std::vector<uint64_t> ids = split.train;
  Xoshiro256 rng(options_.seed);
  for (size_t i = ids.size(); i > 1; --i) {
    std::swap(ids[i - 1], ids[rng.NextBounded(i)]);
  }
  const FlatDataset train_flat = dataset.flat().Gather(ids);
  std::vector<TrainBatch> batches =
      exec_.MakeTrainBatches(train_flat, GlobalBatchSize(), /*hot=*/false);
  const EvalSet eval_set =
      options_.run_math ? exec_.MakeEvalSet(dataset, split) : EvalSet{};
  std::vector<EmbeddingTable*> tables;
  for (EmbeddingTable& t : model_->tables()) tables.push_back(&t);

  RunningMetric metric;
  RunningMetric window;
  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    // Same per-epoch reshuffle as the baseline, so identical seeds give
    // identical batch orders (and identical math) across placements.
    for (size_t i = batches.size(); i > 1; --i) {
      std::swap(batches[i - 1], batches[rng.NextBounded(i)]);
    }
    for (const TrainBatch& batch : batches) {
      accountant_.ChargeModelParallelStep(batch.work, report.timeline);
      if (options_.run_math) exec_.MathStep(batch.view, tables, metric, window);
      ++report.num_batches;
    }
  }
  FinishReport(report, eval_set.views, metric);
  return report;
}

TrainReport Trainer::TrainGpuCache(const Dataset& dataset,
                                   const Dataset::Split& split,
                                   const FaePlan& plan) {
  FAE_CHECK_EQ(system_.num_nodes, 1)
      << "the GPU-cache comparator models a single node";
  FAE_CHECK(options_.cold_precision == ColdPrecision::kFp32)
      << "--cold-precision applies to the FAE placement only";
  TrainReport report;
  report.mode = TrainMode::kGpuCache;
  report.hot_bytes = plan.hot_bytes;
  report.threshold = plan.threshold;

  const DatasetSchema& schema = dataset.schema();
  const uint64_t row_bytes = schema.embedding_dim * sizeof(float);

  std::vector<uint64_t> ids = split.train;
  Xoshiro256 rng(options_.seed);
  for (size_t i = ids.size(); i > 1; --i) {
    std::swap(ids[i - 1], ids[rng.NextBounded(i)]);
  }
  const FlatDataset train_flat = dataset.flat().Gather(ids);
  std::vector<TrainBatch> batches =
      exec_.MakeTrainBatches(train_flat, GlobalBatchSize(), /*hot=*/false);
  const EvalSet eval_set =
      options_.run_math ? exec_.MakeEvalSet(dataset, split) : EvalSet{};
  std::vector<EmbeddingTable*> tables;
  for (EmbeddingTable& t : model_->tables()) tables.push_back(&t);

  // Partition each batch's lookups into cache hits and misses once — the
  // split depends only on the batch and the (fixed) cache contents.
  struct CacheCost {
    uint64_t hit_lookups = 0;
    uint64_t miss_lookups = 0;
    uint64_t miss_touched = 0;
  };
  std::vector<CacheCost> cache_costs(batches.size());
  std::vector<uint32_t> miss_scratch;
  for (size_t b = 0; b < batches.size(); ++b) {
    CacheCost& cc = cache_costs[b];
    for (size_t t = 0; t < schema.num_tables(); ++t) {
      miss_scratch.clear();
      for (uint32_t row : batches[b].view.indices(t)) {
        if (plan.hot_set.IsHot(t, row)) {
          ++cc.hit_lookups;
        } else {
          ++cc.miss_lookups;
          miss_scratch.push_back(row);
        }
      }
      std::sort(miss_scratch.begin(), miss_scratch.end());
      cc.miss_touched += static_cast<uint64_t>(
          std::unique(miss_scratch.begin(), miss_scratch.end()) -
          miss_scratch.begin());
    }
  }

  RunningMetric metric;
  RunningMetric window;
  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    // Same per-epoch reshuffle as the baseline (see TrainModelParallel).
    // Costs travel with their batches.
    for (size_t i = batches.size(); i > 1; --i) {
      const size_t j = rng.NextBounded(i);
      std::swap(batches[i - 1], batches[j]);
      std::swap(cache_costs[i - 1], cache_costs[j]);
    }
    for (size_t b = 0; b < batches.size(); ++b) {
      const TrainBatch& batch = batches[b];
      const CacheCost& cc = cache_costs[b];
      accountant_.ChargeCacheStep(batch.work, cc.hit_lookups * row_bytes,
                                  cc.miss_lookups * row_bytes,
                                  cc.miss_touched * row_bytes,
                                  report.timeline);
      if (options_.run_math) exec_.MathStep(batch.view, tables, metric, window);
      ++report.num_batches;
    }
  }
  FinishReport(report, eval_set.views, metric);
  return report;
}

}  // namespace fae
