#include "engine/staleness_tracker.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace fae {

std::string_view StaleSkipModeName(StaleSkipMode mode) {
  switch (mode) {
    case StaleSkipMode::kOff:
      return "off";
    case StaleSkipMode::kCold:
      return "cold";
    case StaleSkipMode::kAll:
      return "all";
  }
  return "unknown";
}

/// Guard cap: the threshold may widen to at most 8x its configured value
/// before further decreases stop helping (mirrors the scheduler's R(100)
/// ceiling). A configured threshold of 0 makes the cap 0 too, so the guard
/// can never turn skipping on by itself.
constexpr double kMaxThresholdFactor = 8.0;

/// Avoids division blow-ups on near-zero rows (a freshly zero-initialized
/// row must still measure as "moving" when its gradients are non-zero).
constexpr double kNormEpsilon = 1e-12;

void StalenessTracker::Init(const std::vector<uint64_t>& table_rows,
                            const Options& options) {
  options_ = options;
  FAE_CHECK_GE(options_.threshold, 0.0);
  FAE_CHECK_GT(options_.revisit_period, 1u);
  threshold_ = options_.threshold;
  max_threshold_ = options_.threshold * kMaxThresholdFactor;
  has_prev_loss_ = false;
  prev_loss_ = 0.0;
  consecutive_decreases_ = 0;
  tables_.assign(table_rows.size(), PerTable{});
  filters_.clear();
  filters_.reserve(table_rows.size());
  for (size_t t = 0; t < table_rows.size(); ++t) {
    tables_[t].ema.assign(table_rows[t], 0.0f);
    tables_[t].visits.assign(table_rows[t], 0u);
    tables_[t].streak.assign(table_rows[t], 0u);
    filters_.emplace_back(this, t);
  }
  BeginStep();
  total_skipped_rows_.store(0, std::memory_order_relaxed);
  total_updated_rows_.store(0, std::memory_order_relaxed);
  total_reactivated_rows_.store(0, std::memory_order_relaxed);
  guard_tightens_ = 0;
  guard_widens_ = 0;
}

void StalenessTracker::SetAlwaysUpdate(size_t table,
                                       std::span<const uint32_t> rows) {
  FAE_CHECK_LT(table, tables_.size());
  PerTable& pt = tables_[table];
  pt.always_update.assign(pt.ema.size(), 0u);
  for (uint32_t r : rows) {
    FAE_CHECK_LT(r, pt.ema.size());
    pt.always_update[r] = 1u;
  }
}

bool StalenessTracker::BeginVisit(size_t table, uint64_t row,
                                  uint32_t lookups) {
  PerTable& pt = tables_[table];
  if (!pt.always_update.empty() && pt.always_update[row] != 0) return false;
  if (pt.visits[row] < options_.min_visits) return false;
  if (!(static_cast<double>(pt.ema[row]) < threshold_)) return false;
  if (pt.streak[row] + 1 >= options_.revisit_period) return false;
  pt.streak[row] += 1;
  step_skipped_rows_.fetch_add(1, std::memory_order_relaxed);
  step_skipped_lookups_.fetch_add(lookups, std::memory_order_relaxed);
  total_skipped_rows_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void StalenessTracker::RecordUpdate(size_t table, uint64_t row,
                                    uint32_t lookups, double update_sq,
                                    double row_sq) {
  PerTable& pt = tables_[table];
  const double rel =
      std::sqrt(update_sq) / (std::sqrt(row_sq) + kNormEpsilon);
  const float prev = pt.ema[row];
  const float next =
      pt.visits[row] == 0
          ? static_cast<float>(rel)
          : static_cast<float>(prev + options_.ema_alpha * (rel - prev));
  pt.ema[row] = next;
  if (pt.visits[row] < UINT32_MAX) pt.visits[row] += 1;
  // A row re-measured out of a skip streak whose EMA climbed back above the
  // threshold has thawed on its own — its access pattern resumed.
  if (pt.streak[row] > 0 &&
      !(static_cast<double>(next) < threshold_)) {
    total_reactivated_rows_.fetch_add(1, std::memory_order_relaxed);
  }
  pt.streak[row] = 0;
  step_updated_rows_.fetch_add(1, std::memory_order_relaxed);
  step_live_lookups_.fetch_add(lookups, std::memory_order_relaxed);
  total_updated_rows_.fetch_add(1, std::memory_order_relaxed);
}

void StalenessTracker::OnTestLoss(double loss) {
  if (has_prev_loss_) {
    if (loss > prev_loss_) {
      // Loss degraded: skip less, and give every frozen row a clean slate —
      // it must re-earn min_visits measured updates before freezing again.
      threshold_ /= 2.0;
      ++guard_tightens_;
      consecutive_decreases_ = 0;
      uint64_t reactivated = 0;
      for (PerTable& pt : tables_) {
        for (size_t r = 0; r < pt.ema.size(); ++r) {
          if (pt.visits[r] >= options_.min_visits &&
              static_cast<double>(pt.ema[r]) < threshold_ * 2.0 &&
              (pt.always_update.empty() || pt.always_update[r] == 0)) {
            pt.visits[r] = 0;
            pt.streak[r] = 0;
            ++reactivated;
          }
        }
      }
      total_reactivated_rows_.fetch_add(reactivated,
                                        std::memory_order_relaxed);
    } else if (loss < prev_loss_) {
      if (++consecutive_decreases_ >= options_.patience) {
        threshold_ = std::min(max_threshold_, threshold_ * 2.0);
        ++guard_widens_;
        consecutive_decreases_ = 0;
      }
    } else {
      consecutive_decreases_ = 0;
    }
  }
  has_prev_loss_ = true;
  prev_loss_ = loss;
}

void StalenessTracker::BeginStep() {
  step_skipped_rows_.store(0, std::memory_order_relaxed);
  step_updated_rows_.store(0, std::memory_order_relaxed);
  step_skipped_lookups_.store(0, std::memory_order_relaxed);
  step_live_lookups_.store(0, std::memory_order_relaxed);
}

bool StalenessTracker::IsFrozen(size_t table, uint64_t row) const {
  const PerTable& pt = tables_[table];
  if (!pt.always_update.empty() && pt.always_update[row] != 0) return false;
  return pt.visits[row] >= options_.min_visits &&
         static_cast<double>(pt.ema[row]) < threshold_;
}

StalenessTracker::State StalenessTracker::state() const {
  State s;
  s.threshold = threshold_;
  s.has_prev_loss = has_prev_loss_;
  s.prev_loss = prev_loss_;
  s.consecutive_decreases = static_cast<int32_t>(consecutive_decreases_);
  s.tables.resize(tables_.size());
  for (size_t t = 0; t < tables_.size(); ++t) {
    s.tables[t].ema = tables_[t].ema;
    s.tables[t].visits = tables_[t].visits;
    s.tables[t].streak = tables_[t].streak;
  }
  return s;
}

void StalenessTracker::Restore(const State& s) {
  FAE_CHECK_EQ(s.tables.size(), tables_.size());
  threshold_ = s.threshold;
  has_prev_loss_ = s.has_prev_loss;
  prev_loss_ = s.prev_loss;
  consecutive_decreases_ = s.consecutive_decreases;
  for (size_t t = 0; t < tables_.size(); ++t) {
    FAE_CHECK_EQ(s.tables[t].ema.size(), tables_[t].ema.size());
    tables_[t].ema = s.tables[t].ema;
    tables_[t].visits = s.tables[t].visits;
    tables_[t].streak = s.tables[t].streak;
  }
  BeginStep();
  total_skipped_rows_.store(0, std::memory_order_relaxed);
  total_updated_rows_.store(0, std::memory_order_relaxed);
  total_reactivated_rows_.store(0, std::memory_order_relaxed);
  guard_tightens_ = 0;
  guard_widens_ = 0;
}

}  // namespace fae
