#include "engine/step_executor.h"

#include <algorithm>

#include "engine/staleness_tracker.h"
#include "util/half.h"
#include "util/logging.h"

namespace fae {

std::string_view PipelineModeName(PipelineMode mode) {
  switch (mode) {
    case PipelineMode::kOff:
      return "off";
    case PipelineMode::kPrefetch:
      return "prefetch";
    case PipelineMode::kOverlap:
      return "overlap";
  }
  return "unknown";
}

uint64_t BatchInputBytes(const BatchView& v) {
  uint64_t elems = static_cast<uint64_t>(v.dense.rows) * v.dense.cols  //
                   + v.batch_size()      // labels
                   + v.TotalLookups();   // lookup indices
  for (size_t t = 0; t < v.num_tables(); ++t) {
    elems += v.offsets(t).size();  // CSR offsets
  }
  return elems * 4;  // every stream is 4-byte elements
}

void OverlapTracker::OnStep(double prep, double total, double overlapped) {
  if (mode_ == PipelineMode::kOff) return;
  double saved = 0.0;
  double unhidden = total;
  if (mode_ == PipelineMode::kOverlap) {
    saved += total - overlapped;
    unhidden = overlapped;
  }
  if (depth_ >= 2 && has_prev_) {
    saved += std::min(prep, prev_unhidden_);
  }
  prev_unhidden_ = unhidden;
  has_prev_ = true;
  if (saved > 0.0) tl_->AddOverlapSavedSeconds(saved);
}

void OverlapTracker::MarkChunkStart() {
  chunk_phase0_ = tl_->PhaseSumSeconds();
  chunk_saved0_ = tl_->overlap_saved_seconds();
}

double OverlapTracker::ChunkUnhiddenSeconds() const {
  return (tl_->PhaseSumSeconds() - chunk_phase0_) -
         (tl_->overlap_saved_seconds() - chunk_saved0_);
}

StepExecutor::StepExecutor(RecModel* model, const Options& options)
    : model_(model),
      options_(options),
      dense_sgd_(options.dense_lr),
      sparse_sgd_(options.sparse_lr) {
  FAE_CHECK(model != nullptr);
  if (options_.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
    model_->SetThreadPool(pool_.get());
  }
  // The fused-apply functor is built once with a single-pointer capture, so
  // std::function's small-buffer optimization holds it — the training loop
  // never allocates a closure. MathStep repoints ctx->tables per call.
  apply_ctx_.sgd = &sparse_sgd_;
  apply_ctx_.pool = pool_.get();
  fused_apply_ = [ctx = &apply_ctx_](size_t t, const Tensor& grad_out,
                                     std::span<const uint32_t> indices,
                                     std::span<const uint32_t> offsets) {
    ctx->sgd->FusedBackwardStep(
        *(*ctx->tables)[t], grad_out, indices, offsets, ctx->pool,
        ctx->tracker != nullptr ? ctx->tracker->filter(t) : nullptr);
  };
}

void StepExecutor::MaybeQuantizeTables() {
  if (!options_.fp16_embeddings || !options_.run_math) return;
  // fp16 storage holds the *initialization* at half precision too, not
  // just the updates.
  for (EmbeddingTable& table : model_->tables()) {
    for (float& v : table.raw()) v = QuantizeToHalf(v);
  }
}

void StepExecutor::MathStep(const BatchView& batch,
                            const std::vector<EmbeddingTable*>& tables,
                            RunningMetric& metric, RunningMetric& window,
                            StalenessTracker* tracker) {
  ThreadPool* pool = pool_.get();
  if (dense_params_.empty()) dense_params_ = model_->DenseParams();
  if (tracker != nullptr) tracker->BeginStep();
  if (!options_.fp16_embeddings) {
    // Fast path: each table's backward scatter and optimizer update run as
    // one fused pass over the batch's lookup list — the SparseGrad is
    // never materialized. Bit-identical to the materialized path (same
    // per-row accumulation order, same update arithmetic). Everything here
    // runs in reused buffers: the model's workspaces, the optimizer's
    // scratch, the prebuilt apply functor — zero heap allocations at
    // steady state.
    apply_ctx_.tables = &tables;
    apply_ctx_.tracker = tracker;
    StepResult step =
        model_->ForwardBackwardFusedOn(batch, tables, fused_apply_);
    dense_sgd_.Step(dense_params_);
    // Gradients a model chose not to fuse (base-class fallback) still take
    // the materialized optimizer step.
    for (size_t t = 0; t < step.table_grads.size(); ++t) {
      if (step.table_grads[t].empty()) continue;
      sparse_sgd_.Step(*tables[t], step.table_grads[t], pool);
    }
    metric.Observe(step.loss, step.correct, step.batch_size);
    window.Observe(step.loss, step.correct, step.batch_size);
    return;
  }
  // fp16 storage needs the materialized gradient: its touched-row list
  // tells us which rows to round back through binary16.
  StepResult step = model_->ForwardBackwardOn(batch, tables);
  dense_sgd_.Step(dense_params_);
  for (size_t t = 0; t < step.table_grads.size(); ++t) {
    const SparseGrad& grad = step.table_grads[t];
    if (grad.empty()) continue;
    sparse_sgd_.Step(*tables[t], grad, pool);
    // fp16 storage: the updated rows lose everything binary16 cannot
    // represent.
    for (size_t s = 0; s < grad.num_rows(); ++s) {
      float* row = tables[t]->row(grad.row_id(s));
      for (size_t k = 0; k < grad.dim; ++k) {
        row[k] = QuantizeToHalf(row[k]);
      }
    }
  }
  metric.Observe(step.loss, step.correct, step.batch_size);
  window.Observe(step.loss, step.correct, step.batch_size);
}

StepExecutor::EvalSet StepExecutor::MakeEvalSet(
    const Dataset& dataset, const Dataset::Split& split) const {
  EvalSet set;
  std::vector<uint64_t> ids = split.test;
  if (ids.size() > options_.eval_samples) ids.resize(options_.eval_samples);
  // One gather, then every eval pass streams the flat copy zero-copy.
  set.flat = dataset.flat().Gather(ids);
  set.views = MakeBatchViews(set.flat, options_.eval_batch, /*hot=*/false);
  return set;
}

std::vector<StepExecutor::TrainBatch> StepExecutor::MakeTrainBatches(
    const FlatDataset& flat, size_t batch_size, bool hot) const {
  std::vector<BatchView> views = MakeBatchViews(flat, batch_size, hot);
  std::vector<TrainBatch> out;
  out.reserve(views.size());
  for (BatchView& v : views) {
    BatchWork work = model_->Work(v);
    out.push_back(TrainBatch{std::move(v), std::move(work)});
  }
  return out;
}

}  // namespace fae
