#include "engine/checkpoint.h"

#include "models/model_io.h"
#include "util/file_io.h"
#include "util/string_util.h"

namespace fae {
namespace {

constexpr uint32_t kMagic = 0x43454146;  // "FAEC"
// v2: the embedded model section gained the per-table storage-mode tag
// (ModelIo v3) so quantized cold stores resume verbatim.
// v3: a staleness-tracker section (per-row EMA/visit/streak arrays plus
// the accuracy guard's adapted threshold) so stale-skip runs resume
// bit-exact. Always present; an empty section costs one word.
constexpr uint32_t kVersion = 3;
constexpr uint32_t kTrailer = 0x444e454b;  // "KEND"

Status WriteMetricState(BinaryWriter& w, const RunningMetric::State& m) {
  FAE_RETURN_IF_ERROR(w.WriteF64(m.loss_sum));
  FAE_RETURN_IF_ERROR(w.WriteU64(m.correct));
  FAE_RETURN_IF_ERROR(w.WriteU64(m.samples));
  return w.WriteU64(m.batches);
}

Status ReadMetricState(BinaryReader& r, RunningMetric::State& m) {
  FAE_ASSIGN_OR_RETURN(m.loss_sum, r.ReadF64());
  FAE_ASSIGN_OR_RETURN(m.correct, r.ReadU64());
  FAE_ASSIGN_OR_RETURN(m.samples, r.ReadU64());
  FAE_ASSIGN_OR_RETURN(m.batches, r.ReadU64());
  return Status::OK();
}

}  // namespace

Status CheckpointIo::Save(const std::string& path,
                          const TrainerCheckpoint& ck, RecModel& model) {
  FAE_ASSIGN_OR_RETURN(BinaryWriter w, BinaryWriter::OpenAtomic(path));
  FAE_RETURN_IF_ERROR(w.WriteU32(kMagic));
  FAE_RETURN_IF_ERROR(w.WriteU32(kVersion));

  FAE_RETURN_IF_ERROR(w.WriteU32(ck.mode));
  FAE_RETURN_IF_ERROR(w.WriteU64(ck.dataset_fingerprint));
  FAE_RETURN_IF_ERROR(w.WriteU64(ck.options_fingerprint));
  FAE_RETURN_IF_ERROR(w.WriteU64(ck.epoch));
  FAE_RETURN_IF_ERROR(w.WriteU64(ck.iteration));
  FAE_RETURN_IF_ERROR(w.WriteU64(ck.batch_in_epoch));
  FAE_RETURN_IF_ERROR(w.WriteU64(ck.hot_batches));
  FAE_RETURN_IF_ERROR(w.WriteU64(ck.cold_batches));
  FAE_RETURN_IF_ERROR(w.WriteU64(ck.sync_bytes));

  for (uint64_t word : ck.rng.s) FAE_RETURN_IF_ERROR(w.WriteU64(word));
  FAE_RETURN_IF_ERROR(w.WriteU32(ck.rng.has_cached_gaussian ? 1 : 0));
  FAE_RETURN_IF_ERROR(w.WriteF64(ck.rng.cached_gaussian));

  FAE_RETURN_IF_ERROR(WriteMetricState(w, ck.metric));
  FAE_RETURN_IF_ERROR(WriteMetricState(w, ck.window));

  FAE_RETURN_IF_ERROR(w.WriteF64(ck.scheduler.rate));
  FAE_RETURN_IF_ERROR(w.WriteU64(ck.scheduler.issued_cold));
  FAE_RETURN_IF_ERROR(w.WriteU64(ck.scheduler.issued_hot));
  FAE_RETURN_IF_ERROR(w.WriteU32(ck.scheduler.next_is_hot ? 1 : 0));
  FAE_RETURN_IF_ERROR(w.WriteU32(ck.scheduler.any_issued ? 1 : 0));
  FAE_RETURN_IF_ERROR(w.WriteU32(ck.scheduler.last_was_hot ? 1 : 0));
  FAE_RETURN_IF_ERROR(w.WriteU64(ck.scheduler.transitions));
  FAE_RETURN_IF_ERROR(w.WriteU32(ck.scheduler.has_prev_loss ? 1 : 0));
  FAE_RETURN_IF_ERROR(w.WriteF64(ck.scheduler.prev_loss));
  FAE_RETURN_IF_ERROR(w.WriteU32(
      static_cast<uint32_t>(ck.scheduler.consecutive_decreases)));

  for (double s : ck.timeline.seconds) FAE_RETURN_IF_ERROR(w.WriteF64(s));
  FAE_RETURN_IF_ERROR(w.WriteF64(ck.timeline.wall_seconds));
  FAE_RETURN_IF_ERROR(w.WriteF64(ck.timeline.cpu_busy));
  FAE_RETURN_IF_ERROR(w.WriteF64(ck.timeline.gpu_busy));
  FAE_RETURN_IF_ERROR(w.WriteU64(ck.timeline.pcie_bytes));
  FAE_RETURN_IF_ERROR(w.WriteU64(ck.timeline.nvlink_bytes));
  FAE_RETURN_IF_ERROR(w.WriteU64(ck.timeline.network_bytes));

  FAE_RETURN_IF_ERROR(w.WriteU64(ck.curve.size()));
  for (const CurvePoint& p : ck.curve) {
    FAE_RETURN_IF_ERROR(w.WriteU64(p.iteration));
    FAE_RETURN_IF_ERROR(w.WriteF64(p.train_loss));
    FAE_RETURN_IF_ERROR(w.WriteF64(p.train_acc));
    FAE_RETURN_IF_ERROR(w.WriteF64(p.test_loss));
    FAE_RETURN_IF_ERROR(w.WriteF64(p.test_acc));
  }

  FAE_RETURN_IF_ERROR(w.WriteU32(ck.has_staleness ? 1 : 0));
  if (ck.has_staleness) {
    FAE_RETURN_IF_ERROR(w.WriteF64(ck.staleness.threshold));
    FAE_RETURN_IF_ERROR(w.WriteU32(ck.staleness.has_prev_loss ? 1 : 0));
    FAE_RETURN_IF_ERROR(w.WriteF64(ck.staleness.prev_loss));
    FAE_RETURN_IF_ERROR(w.WriteU32(
        static_cast<uint32_t>(ck.staleness.consecutive_decreases)));
    FAE_RETURN_IF_ERROR(w.WriteU64(ck.staleness.tables.size()));
    for (const StalenessTracker::TableState& t : ck.staleness.tables) {
      FAE_RETURN_IF_ERROR(w.WriteVector(t.ema));
      FAE_RETURN_IF_ERROR(w.WriteVector(t.visits));
      FAE_RETURN_IF_ERROR(w.WriteVector(t.streak));
    }
  }

  FAE_RETURN_IF_ERROR(ModelIo::WriteModelState(w, model));

  FAE_RETURN_IF_ERROR(w.WriteU32(kTrailer));
  const uint32_t crc = w.crc();
  FAE_RETURN_IF_ERROR(w.WriteU32(crc));
  return w.Commit();
}

StatusOr<TrainerCheckpoint> CheckpointIo::Load(const std::string& path,
                                               RecModel& model,
                                               const Expectation* expect) {
  // Whole-file checksum first: a crash-corrupted checkpoint is rejected
  // before any state — model weights included — is touched.
  FAE_RETURN_IF_ERROR(VerifyFileIntegrity(path));
  FAE_ASSIGN_OR_RETURN(BinaryReader r, BinaryReader::Open(path));
  FAE_ASSIGN_OR_RETURN(uint32_t magic, r.ReadU32());
  if (magic != kMagic) {
    return Status::DataLoss("not a FAE training checkpoint: " + path);
  }
  FAE_ASSIGN_OR_RETURN(uint32_t version, r.ReadU32());
  if (version != kVersion) {
    return Status::DataLoss(
        StrFormat("unsupported training-checkpoint version %u", version));
  }

  TrainerCheckpoint ck;
  FAE_ASSIGN_OR_RETURN(ck.mode, r.ReadU32());
  FAE_ASSIGN_OR_RETURN(ck.dataset_fingerprint, r.ReadU64());
  FAE_ASSIGN_OR_RETURN(ck.options_fingerprint, r.ReadU64());
  if (expect != nullptr) {
    // Rejecting here — before any model weights are read — means a
    // checkpoint from a different run never partially overwrites `model`.
    if (ck.mode != expect->mode) {
      return Status::FailedPrecondition(StrFormat(
          "checkpoint was taken in a different train mode (%u, want %u)",
          ck.mode, expect->mode));
    }
    if (ck.dataset_fingerprint != expect->dataset_fingerprint) {
      return Status::FailedPrecondition(
          "checkpoint was taken on a different dataset");
    }
    if (ck.options_fingerprint != expect->options_fingerprint) {
      return Status::FailedPrecondition(
          "checkpoint was taken with different training options");
    }
  }
  FAE_ASSIGN_OR_RETURN(ck.epoch, r.ReadU64());
  FAE_ASSIGN_OR_RETURN(ck.iteration, r.ReadU64());
  FAE_ASSIGN_OR_RETURN(ck.batch_in_epoch, r.ReadU64());
  FAE_ASSIGN_OR_RETURN(ck.hot_batches, r.ReadU64());
  FAE_ASSIGN_OR_RETURN(ck.cold_batches, r.ReadU64());
  FAE_ASSIGN_OR_RETURN(ck.sync_bytes, r.ReadU64());

  for (uint64_t& word : ck.rng.s) {
    FAE_ASSIGN_OR_RETURN(word, r.ReadU64());
  }
  FAE_ASSIGN_OR_RETURN(uint32_t cached, r.ReadU32());
  ck.rng.has_cached_gaussian = cached != 0;
  FAE_ASSIGN_OR_RETURN(ck.rng.cached_gaussian, r.ReadF64());

  FAE_RETURN_IF_ERROR(ReadMetricState(r, ck.metric));
  FAE_RETURN_IF_ERROR(ReadMetricState(r, ck.window));

  FAE_ASSIGN_OR_RETURN(ck.scheduler.rate, r.ReadF64());
  FAE_ASSIGN_OR_RETURN(ck.scheduler.issued_cold, r.ReadU64());
  FAE_ASSIGN_OR_RETURN(ck.scheduler.issued_hot, r.ReadU64());
  FAE_ASSIGN_OR_RETURN(uint32_t next_is_hot, r.ReadU32());
  ck.scheduler.next_is_hot = next_is_hot != 0;
  FAE_ASSIGN_OR_RETURN(uint32_t any_issued, r.ReadU32());
  ck.scheduler.any_issued = any_issued != 0;
  FAE_ASSIGN_OR_RETURN(uint32_t last_was_hot, r.ReadU32());
  ck.scheduler.last_was_hot = last_was_hot != 0;
  FAE_ASSIGN_OR_RETURN(ck.scheduler.transitions, r.ReadU64());
  FAE_ASSIGN_OR_RETURN(uint32_t has_prev_loss, r.ReadU32());
  ck.scheduler.has_prev_loss = has_prev_loss != 0;
  FAE_ASSIGN_OR_RETURN(ck.scheduler.prev_loss, r.ReadF64());
  FAE_ASSIGN_OR_RETURN(uint32_t decreases, r.ReadU32());
  ck.scheduler.consecutive_decreases = static_cast<int32_t>(decreases);

  for (double& s : ck.timeline.seconds) {
    FAE_ASSIGN_OR_RETURN(s, r.ReadF64());
  }
  FAE_ASSIGN_OR_RETURN(ck.timeline.wall_seconds, r.ReadF64());
  FAE_ASSIGN_OR_RETURN(ck.timeline.cpu_busy, r.ReadF64());
  FAE_ASSIGN_OR_RETURN(ck.timeline.gpu_busy, r.ReadF64());
  FAE_ASSIGN_OR_RETURN(ck.timeline.pcie_bytes, r.ReadU64());
  FAE_ASSIGN_OR_RETURN(ck.timeline.nvlink_bytes, r.ReadU64());
  FAE_ASSIGN_OR_RETURN(ck.timeline.network_bytes, r.ReadU64());

  FAE_ASSIGN_OR_RETURN(uint64_t curve_size, r.ReadU64());
  if (curve_size > r.RemainingBytes() / (5 * sizeof(double))) {
    return Status::DataLoss("curve length exceeds file remainder");
  }
  ck.curve.resize(curve_size);
  for (CurvePoint& p : ck.curve) {
    FAE_ASSIGN_OR_RETURN(uint64_t iteration, r.ReadU64());
    p.iteration = static_cast<size_t>(iteration);
    FAE_ASSIGN_OR_RETURN(p.train_loss, r.ReadF64());
    FAE_ASSIGN_OR_RETURN(p.train_acc, r.ReadF64());
    FAE_ASSIGN_OR_RETURN(p.test_loss, r.ReadF64());
    FAE_ASSIGN_OR_RETURN(p.test_acc, r.ReadF64());
  }

  FAE_ASSIGN_OR_RETURN(uint32_t has_staleness, r.ReadU32());
  ck.has_staleness = has_staleness != 0;
  if (ck.has_staleness) {
    FAE_ASSIGN_OR_RETURN(ck.staleness.threshold, r.ReadF64());
    FAE_ASSIGN_OR_RETURN(uint32_t st_prev, r.ReadU32());
    ck.staleness.has_prev_loss = st_prev != 0;
    FAE_ASSIGN_OR_RETURN(ck.staleness.prev_loss, r.ReadF64());
    FAE_ASSIGN_OR_RETURN(uint32_t st_dec, r.ReadU32());
    ck.staleness.consecutive_decreases = static_cast<int32_t>(st_dec);
    FAE_ASSIGN_OR_RETURN(uint64_t st_tables, r.ReadU64());
    // Each table serializes at least three length words; bounding the
    // count against the remainder caps the allocation like the curve's.
    if (st_tables > r.RemainingBytes() / (3 * sizeof(uint64_t))) {
      return Status::DataLoss("staleness table count exceeds file remainder");
    }
    ck.staleness.tables.resize(st_tables);
    for (StalenessTracker::TableState& t : ck.staleness.tables) {
      FAE_ASSIGN_OR_RETURN(t.ema, r.ReadVector<float>());
      FAE_ASSIGN_OR_RETURN(t.visits, r.ReadVector<uint32_t>());
      FAE_ASSIGN_OR_RETURN(t.streak, r.ReadVector<uint32_t>());
    }
  }

  FAE_RETURN_IF_ERROR(ModelIo::ReadModelState(r, model));

  FAE_ASSIGN_OR_RETURN(uint32_t trailer, r.ReadU32());
  if (trailer != kTrailer) {
    return Status::DataLoss("training-checkpoint trailer missing");
  }
  return ck;
}

}  // namespace fae
