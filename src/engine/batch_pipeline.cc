#include "engine/batch_pipeline.h"

#include <algorithm>
#include <utility>

#include "engine/ring_limits.h"
#include "util/logging.h"

namespace fae {

BatchPipeline::BatchPipeline(size_t depth) {
  slots_.resize(ClampRingDepth(depth));
  producer_ = std::thread([this] { ProducerLoop(); });
}

BatchPipeline::~BatchPipeline() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  producer_cv_.notify_all();
  consumer_cv_.notify_all();
  producer_.join();
}

void BatchPipeline::Begin(std::vector<Spec> specs) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    FAE_CHECK(!holding_) << "Begin called with a batch still acquired";
    FAE_CHECK_EQ(next_consume_, specs_.size())
        << "Begin called before the previous segment was drained";
    specs_ = std::move(specs);
    next_fill_ = 0;
    next_consume_ = 0;
    for (Slot& slot : slots_) slot.filled = false;
  }
  producer_cv_.notify_one();
}

const BatchView& BatchPipeline::Acquire() {
  std::unique_lock<std::mutex> lock(mu_);
  FAE_CHECK(!holding_) << "Acquire called twice without a Release";
  FAE_CHECK_LT(next_consume_, specs_.size())
      << "Acquire called past the end of the segment";
  Slot& slot = slots_[next_consume_ % slots_.size()];
  consumer_cv_.wait(lock, [&] { return slot.filled || stop_; });
  FAE_CHECK(!stop_);
  holding_ = true;
  return slot.view;
}

void BatchPipeline::Release() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    FAE_CHECK(holding_) << "Release without a matching Acquire";
    slots_[next_consume_ % slots_.size()].filled = false;
    ++next_consume_;
    holding_ = false;
  }
  producer_cv_.notify_one();
}

void BatchPipeline::ProducerLoop() {
  const size_t depth = slots_.size();
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    // Stage the next spec once its ring slot is free — at most `depth`
    // ahead of the consumer, and never past the segment's end.
    producer_cv_.wait(lock, [&] {
      return stop_ ||
             (next_fill_ < specs_.size() && next_fill_ < next_consume_ + depth);
    });
    if (stop_) return;
    const Spec spec = specs_[next_fill_];
    Slot& slot = slots_[next_fill_ % depth];
    ++next_fill_;
    lock.unlock();
    // The expensive gather runs unlocked: this slot is owned by the
    // producer until `filled` flips (see the Slot doc for the ordering
    // argument).
    spec.source->GatherInto(spec.ids, &slot.workspace);
    slot.view =
        MakeBatchView(slot.workspace, 0, slot.workspace.size(), spec.hot);
    lock.lock();
    slot.filled = true;
    consumer_cv_.notify_one();
  }
}

}  // namespace fae
