#ifndef FAE_TENSOR_ATTENTION_H_
#define FAE_TENSOR_ATTENTION_H_

#include <vector>

#include "tensor/tensor.h"

namespace fae {

/// Scaled dot-product attention of a per-sample query against that sample's
/// history sequence — the TBSM "attention layer" (paper Table I, RMC1).
///
/// For sample i with history embeddings Z_i [T_i, d] and query q_i [d]:
///   scores = Z_i q_i / sqrt(d);  a = softmax(scores);  c_i = Z_i^T a.
/// Sequences may have different lengths across the batch.
class DotAttention {
 public:
  struct BackwardResult {
    /// dL/dZ_i for each sample, shaped like the forward inputs.
    std::vector<Tensor> grad_history;
    /// dL/dq, [B, d].
    Tensor grad_query;
  };

  /// Computes contexts [B, d]; caches inputs and attention weights.
  Tensor Forward(const std::vector<Tensor>& history, const Tensor& query);

  /// Backward from dL/dcontext [B, d]. Must follow a Forward.
  BackwardResult Backward(const Tensor& grad_context);

  /// Attention weights of the last Forward, one [T_i]-vector per sample
  /// (exposed for tests and introspection).
  const std::vector<std::vector<float>>& last_weights() const {
    return weights_;
  }

 private:
  std::vector<Tensor> history_;
  Tensor query_;
  std::vector<std::vector<float>> weights_;
};

}  // namespace fae

#endif  // FAE_TENSOR_ATTENTION_H_
