#include "tensor/linear.h"

#include <cmath>

#include "tensor/ops.h"

namespace fae {

Linear::Linear(size_t in, size_t out, Xoshiro256& rng, std::string name) {
  const float stddev = std::sqrt(2.0f / static_cast<float>(in));
  weight_.name = name + ".weight";
  weight_.value = Tensor::Randn(in, out, stddev, rng);
  weight_.grad = Tensor::Zeros(in, out);
  bias_.name = name + ".bias";
  bias_.value = Tensor::Zeros(1, out);
  bias_.grad = Tensor::Zeros(1, out);
}

const Tensor& Linear::Forward(MatView x) {
  cached_input_ = x;
  MatMulInto(out_, x, weight_.value, pool_);
  AddBiasRowwise(out_, bias_.value);
  return out_;
}

Tensor Linear::ForwardInference(MatView x) const {
  Tensor y;
  MatMulInto(y, x, weight_.value, pool_);
  AddBiasRowwise(y, bias_.value);
  return y;
}

Tensor& Linear::Backward(const Tensor& grad_out) {
  FAE_CHECK_EQ(grad_out.rows(), cached_input_.rows);
  FAE_CHECK_EQ(grad_out.cols(), weight_.value.cols());
  MatMulTransAInto(wgrad_ws_, cached_input_, grad_out, pool_);
  weight_.grad.Add(wgrad_ws_);
  ColumnSumsInto(bgrad_ws_, grad_out);
  bias_.grad.Add(bgrad_ws_);
  MatMulTransBInto(grad_in_, grad_out, weight_.value, pool_);
  return grad_in_;
}

std::vector<Parameter*> Linear::Params() { return {&weight_, &bias_}; }

}  // namespace fae
