#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "tensor/kernels.h"
#include "util/logging.h"

namespace fae {
namespace {

/// Work below this many multiply-adds is not worth a trip through the
/// pool's queue (lock + wakeup costs more than the loop).
constexpr size_t kMinFlopsToParallelize = 1u << 16;

/// Runs `fn` over [0, n) — through the pool when the total work justifies
/// the dispatch, inline otherwise. All kernels below partition work by
/// *output row*, so chunks never write the same memory and results are
/// bit-identical at any thread count. Templated so the serial path never
/// materializes a std::function (which would heap-allocate per call).
template <typename Fn>
void RowParallel(ThreadPool* pool, size_t n, size_t flops, Fn&& fn) {
  if (pool != nullptr && flops >= kMinFlopsToParallelize) {
    pool->ParallelFor(n, fn);
  } else {
    fn(0, n);
  }
}

void MatMulNaiveInto(Tensor& c, MatView a, const Tensor& b,
                     ThreadPool* pool) {
  FAE_CHECK_EQ(a.cols, b.rows());
  c.Resize(a.rows, b.cols());
  c.SetZero();
  const size_t k = a.cols;
  const size_t n = b.cols();
  // i-k-j loop order keeps the inner loop streaming over contiguous rows.
  RowParallel(pool, a.rows, a.rows * k * n, [&](size_t i0, size_t i1) {
    for (size_t i = i0; i < i1; ++i) {
      const float* arow = a.row(i);
      float* crow = c.row(i);
      for (size_t kk = 0; kk < k; ++kk) {
        const float av = arow[kk];
        if (av == 0.0f) continue;
        kernels::Axpy(n, av, b.row(kk), crow);
      }
    }
  });
}

void MatMulBlockedInto(Tensor& c, MatView a, const Tensor& b,
                       ThreadPool* pool) {
  FAE_CHECK_EQ(a.cols, b.rows());
  c.Resize(a.rows, b.cols());
  c.SetZero();
  // Tile sizes chosen so a kc x jc panel of B (~64 KB) stays L1/L2
  // resident while the i loop streams over A.
  constexpr size_t kKc = 128;
  constexpr size_t kJc = 128;
  const size_t m = a.rows;
  const size_t k = a.cols;
  const size_t n = b.cols();
  // Each thread runs the full k0/j0 tiling over its own slice of output
  // rows: per-element summation stays in ascending-k order (identical to
  // the naive kernel) regardless of the partition.
  RowParallel(pool, m, m * k * n, [&](size_t i0, size_t i1) {
    for (size_t k0 = 0; k0 < k; k0 += kKc) {
      const size_t k1 = std::min(k, k0 + kKc);
      for (size_t j0 = 0; j0 < n; j0 += kJc) {
        const size_t j1 = std::min(n, j0 + kJc);
        for (size_t i = i0; i < i1; ++i) {
          const float* arow = a.row(i);
          float* crow = c.row(i) + j0;
          for (size_t kk = k0; kk < k1; ++kk) {
            const float av = arow[kk];
            if (av == 0.0f) continue;
            kernels::Axpy(j1 - j0, av, b.row(kk) + j0, crow);
          }
        }
      }
    }
  });
}

}  // namespace

Tensor MatMulNaive(const Tensor& a, const Tensor& b, ThreadPool* pool) {
  Tensor c;
  MatMulNaiveInto(c, a, b, pool);
  return c;
}

Tensor MatMulBlocked(const Tensor& a, const Tensor& b, ThreadPool* pool) {
  Tensor c;
  MatMulBlockedInto(c, a, b, pool);
  return c;
}

void MatMulInto(Tensor& c, MatView a, const Tensor& b, ThreadPool* pool) {
  // Blocking only pays once B's rows stop fitting in cache together.
  const bool large = a.rows * a.cols > (64u << 10) &&
                     b.rows() * b.cols() > (64u << 10);
  if (large) {
    MatMulBlockedInto(c, a, b, pool);
  } else {
    MatMulNaiveInto(c, a, b, pool);
  }
}

Tensor MatMul(const Tensor& a, const Tensor& b, ThreadPool* pool) {
  Tensor c;
  MatMulInto(c, a, b, pool);
  return c;
}

void MatMulTransAInto(Tensor& c, MatView a, const Tensor& b,
                      ThreadPool* pool) {
  FAE_CHECK_EQ(a.rows, b.rows());
  c.Resize(a.cols, b.cols());
  c.SetZero();
  const size_t k = a.rows;
  const size_t m = a.cols;
  const size_t n = b.cols();
  // Output rows are columns of A; per element the k sum stays ascending,
  // so the serial and parallel results are identical.
  RowParallel(pool, m, m * k * n, [&](size_t i0, size_t i1) {
    for (size_t kk = 0; kk < k; ++kk) {
      const float* arow = a.row(kk);
      const float* brow = b.row(kk);
      for (size_t i = i0; i < i1; ++i) {
        const float av = arow[i];
        if (av == 0.0f) continue;
        kernels::Axpy(n, av, brow, c.row(i));
      }
    }
  });
}

Tensor MatMulTransA(const Tensor& a, const Tensor& b, ThreadPool* pool) {
  Tensor c;
  MatMulTransAInto(c, a, b, pool);
  return c;
}

void MatMulTransBInto(Tensor& c, const Tensor& a, const Tensor& b,
                      ThreadPool* pool) {
  FAE_CHECK_EQ(a.cols(), b.cols());
  c.Resize(a.rows(), b.rows());
  const size_t k = a.cols();
  const size_t n = b.rows();
  RowParallel(pool, a.rows(), a.rows() * k * n, [&](size_t i0, size_t i1) {
    for (size_t i = i0; i < i1; ++i) {
      const float* arow = a.row(i);
      float* crow = c.row(i);
      for (size_t j = 0; j < n; ++j) {
        crow[j] = kernels::Dot(k, arow, b.row(j));
      }
    }
  });
}

Tensor MatMulTransB(const Tensor& a, const Tensor& b, ThreadPool* pool) {
  Tensor c;
  MatMulTransBInto(c, a, b, pool);
  return c;
}

void AddBiasRowwise(Tensor& x, const Tensor& bias) {
  FAE_CHECK_EQ(bias.rows(), 1u);
  FAE_CHECK_EQ(bias.cols(), x.cols());
  const float* brow = bias.row(0);
  for (size_t r = 0; r < x.rows(); ++r) {
    kernels::Add(x.cols(), brow, x.row(r));
  }
}

void ColumnSumsInto(Tensor& out, const Tensor& x) {
  out.Resize(1, x.cols());
  out.SetZero();
  float* orow = out.row(0);
  for (size_t r = 0; r < x.rows(); ++r) {
    kernels::Add(x.cols(), x.row(r), orow);
  }
}

Tensor ColumnSums(const Tensor& x) {
  Tensor out;
  ColumnSumsInto(out, x);
  return out;
}

void ReluForwardInto(Tensor& y, const Tensor& x) {
  y.Resize(x.rows(), x.cols());
  const float* src = x.data();
  float* dst = y.data();
  for (size_t i = 0; i < x.numel(); ++i) {
    dst[i] = std::max(0.0f, src[i]);
  }
}

Tensor ReluForward(const Tensor& x) {
  Tensor y;
  ReluForwardInto(y, x);
  return y;
}

void ReluBackwardInPlace(Tensor& grad, const Tensor& x) {
  FAE_CHECK(grad.SameShape(x));
  for (size_t i = 0; i < grad.numel(); ++i) {
    if (x.data()[i] <= 0.0f) grad.data()[i] = 0.0f;
  }
}

Tensor ReluBackward(const Tensor& grad_out, const Tensor& x) {
  Tensor g = grad_out;
  ReluBackwardInPlace(g, x);
  return g;
}

Tensor SigmoidForward(const Tensor& x) {
  Tensor y = x;
  for (size_t i = 0; i < y.numel(); ++i) {
    y.data()[i] = 1.0f / (1.0f + std::exp(-y.data()[i]));
  }
  return y;
}

void ConcatColsInto(Tensor& out, const std::vector<const Tensor*>& blocks) {
  FAE_CHECK(!blocks.empty());
  const size_t rows = blocks[0]->rows();
  size_t total_cols = 0;
  for (const Tensor* b : blocks) {
    FAE_CHECK_EQ(b->rows(), rows);
    total_cols += b->cols();
  }
  out.Resize(rows, total_cols);
  for (size_t r = 0; r < rows; ++r) {
    float* orow = out.row(r);
    size_t offset = 0;
    for (const Tensor* b : blocks) {
      const float* brow = b->row(r);
      std::copy(brow, brow + b->cols(), orow + offset);
      offset += b->cols();
    }
  }
}

Tensor ConcatCols(const std::vector<const Tensor*>& blocks) {
  Tensor out;
  ConcatColsInto(out, blocks);
  return out;
}

void SplitColsInto(const std::vector<Tensor*>& outs, const Tensor& grad,
                   const std::vector<size_t>& widths) {
  FAE_CHECK_EQ(outs.size(), widths.size());
  size_t total = 0;
  for (size_t w : widths) total += w;
  FAE_CHECK_EQ(total, grad.cols());
  size_t offset = 0;
  for (size_t bi = 0; bi < widths.size(); ++bi) {
    const size_t w = widths[bi];
    Tensor& block = *outs[bi];
    block.Resize(grad.rows(), w);
    for (size_t r = 0; r < grad.rows(); ++r) {
      const float* grow = grad.row(r) + offset;
      std::copy(grow, grow + w, block.row(r));
    }
    offset += w;
  }
}

std::vector<Tensor> SplitCols(const Tensor& grad,
                              const std::vector<size_t>& widths) {
  std::vector<Tensor> out(widths.size());
  std::vector<Tensor*> ptrs;
  ptrs.reserve(widths.size());
  for (Tensor& t : out) ptrs.push_back(&t);
  SplitColsInto(ptrs, grad, widths);
  return out;
}

Tensor SoftmaxRows(const Tensor& x) {
  Tensor y = x;
  for (size_t r = 0; r < y.rows(); ++r) {
    float* row = y.row(r);
    float mx = row[0];
    for (size_t c = 1; c < y.cols(); ++c) mx = std::max(mx, row[c]);
    float sum = 0.0f;
    for (size_t c = 0; c < y.cols(); ++c) {
      row[c] = std::exp(row[c] - mx);
      sum += row[c];
    }
    for (size_t c = 0; c < y.cols(); ++c) row[c] /= sum;
  }
  return y;
}

void PairwiseDotInteractionInto(Tensor& out,
                                const std::vector<const Tensor*>& features,
                                ThreadPool* pool) {
  FAE_CHECK_GE(features.size(), 2u);
  const size_t f = features.size();
  const size_t rows = features[0]->rows();
  const size_t d = features[0]->cols();
  for (const Tensor* t : features) {
    FAE_CHECK_EQ(t->rows(), rows);
    FAE_CHECK_EQ(t->cols(), d);
  }
  out.Resize(rows, f * (f - 1) / 2);
  RowParallel(pool, rows, rows * f * f * d / 2, [&](size_t r0, size_t r1) {
    for (size_t r = r0; r < r1; ++r) {
      float* orow = out.row(r);
      size_t col = 0;
      for (size_t i = 0; i < f; ++i) {
        const float* fi = features[i]->row(r);
        for (size_t j = i + 1; j < f; ++j) {
          orow[col++] = kernels::Dot(d, fi, features[j]->row(r));
        }
      }
    }
  });
}

Tensor PairwiseDotInteraction(const std::vector<const Tensor*>& features,
                              ThreadPool* pool) {
  Tensor out;
  PairwiseDotInteractionInto(out, features, pool);
  return out;
}

void PairwiseDotInteractionBackwardInto(
    std::vector<Tensor>& grads, const Tensor& grad_out,
    const std::vector<const Tensor*>& features, ThreadPool* pool) {
  const size_t f = features.size();
  const size_t rows = features[0]->rows();
  const size_t d = features[0]->cols();
  FAE_CHECK_EQ(grad_out.rows(), rows);
  FAE_CHECK_EQ(grad_out.cols(), f * (f - 1) / 2);
  FAE_CHECK_EQ(grads.size(), f);
  for (Tensor& g : grads) {
    g.Resize(rows, d);
    g.SetZero();
  }
  // Sample rows are independent, so partitioning over r is write-disjoint
  // in every grads[i].
  RowParallel(pool, rows, rows * f * f * d, [&](size_t r0, size_t r1) {
    for (size_t r = r0; r < r1; ++r) {
      const float* grow = grad_out.row(r);
      size_t col = 0;
      for (size_t i = 0; i < f; ++i) {
        for (size_t j = i + 1; j < f; ++j) {
          const float g = grow[col++];
          if (g == 0.0f) continue;
          kernels::Axpy(d, g, features[j]->row(r), grads[i].row(r));
          kernels::Axpy(d, g, features[i]->row(r), grads[j].row(r));
        }
      }
    }
  });
}

std::vector<Tensor> PairwiseDotInteractionBackward(
    const Tensor& grad_out, const std::vector<const Tensor*>& features,
    ThreadPool* pool) {
  std::vector<Tensor> grads(features.size());
  PairwiseDotInteractionBackwardInto(grads, grad_out, features, pool);
  return grads;
}

}  // namespace fae
