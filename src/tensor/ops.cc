#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace fae {

Tensor MatMulNaive(const Tensor& a, const Tensor& b) {
  FAE_CHECK_EQ(a.cols(), b.rows());
  Tensor c(a.rows(), b.cols());
  // i-k-j loop order keeps the inner loop streaming over contiguous rows.
  for (size_t i = 0; i < a.rows(); ++i) {
    const float* arow = a.row(i);
    float* crow = c.row(i);
    for (size_t k = 0; k < a.cols(); ++k) {
      const float av = arow[k];
      if (av == 0.0f) continue;
      const float* brow = b.row(k);
      for (size_t j = 0; j < b.cols(); ++j) {
        crow[j] += av * brow[j];
      }
    }
  }
  return c;
}

Tensor MatMulBlocked(const Tensor& a, const Tensor& b) {
  FAE_CHECK_EQ(a.cols(), b.rows());
  Tensor c(a.rows(), b.cols());
  // Tile sizes chosen so a kc x jc panel of B (~64 KB) stays L1/L2
  // resident while the i loop streams over A.
  constexpr size_t kKc = 128;
  constexpr size_t kJc = 128;
  const size_t m = a.rows();
  const size_t k = a.cols();
  const size_t n = b.cols();
  for (size_t k0 = 0; k0 < k; k0 += kKc) {
    const size_t k1 = std::min(k, k0 + kKc);
    for (size_t j0 = 0; j0 < n; j0 += kJc) {
      const size_t j1 = std::min(n, j0 + kJc);
      for (size_t i = 0; i < m; ++i) {
        const float* arow = a.row(i);
        float* crow = c.row(i);
        for (size_t kk = k0; kk < k1; ++kk) {
          const float av = arow[kk];
          if (av == 0.0f) continue;
          const float* brow = b.row(kk);
          for (size_t j = j0; j < j1; ++j) {
            crow[j] += av * brow[j];
          }
        }
      }
    }
  }
  return c;
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  // Blocking only pays once B's rows stop fitting in cache together.
  const bool large = a.rows() * a.cols() > (64u << 10) &&
                     b.rows() * b.cols() > (64u << 10);
  return large ? MatMulBlocked(a, b) : MatMulNaive(a, b);
}

Tensor MatMulTransA(const Tensor& a, const Tensor& b) {
  FAE_CHECK_EQ(a.rows(), b.rows());
  Tensor c(a.cols(), b.cols());
  for (size_t k = 0; k < a.rows(); ++k) {
    const float* arow = a.row(k);
    const float* brow = b.row(k);
    for (size_t i = 0; i < a.cols(); ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c.row(i);
      for (size_t j = 0; j < b.cols(); ++j) {
        crow[j] += av * brow[j];
      }
    }
  }
  return c;
}

Tensor MatMulTransB(const Tensor& a, const Tensor& b) {
  FAE_CHECK_EQ(a.cols(), b.cols());
  Tensor c(a.rows(), b.rows());
  for (size_t i = 0; i < a.rows(); ++i) {
    const float* arow = a.row(i);
    float* crow = c.row(i);
    for (size_t j = 0; j < b.rows(); ++j) {
      const float* brow = b.row(j);
      float dot = 0.0f;
      for (size_t k = 0; k < a.cols(); ++k) {
        dot += arow[k] * brow[k];
      }
      crow[j] = dot;
    }
  }
  return c;
}

void AddBiasRowwise(Tensor& x, const Tensor& bias) {
  FAE_CHECK_EQ(bias.rows(), 1u);
  FAE_CHECK_EQ(bias.cols(), x.cols());
  for (size_t r = 0; r < x.rows(); ++r) {
    float* row = x.row(r);
    for (size_t c = 0; c < x.cols(); ++c) row[c] += bias(0, c);
  }
}

Tensor ColumnSums(const Tensor& x) {
  Tensor out(1, x.cols());
  for (size_t r = 0; r < x.rows(); ++r) {
    const float* row = x.row(r);
    for (size_t c = 0; c < x.cols(); ++c) out(0, c) += row[c];
  }
  return out;
}

Tensor ReluForward(const Tensor& x) {
  Tensor y = x;
  for (size_t i = 0; i < y.numel(); ++i) {
    y.data()[i] = std::max(0.0f, y.data()[i]);
  }
  return y;
}

Tensor ReluBackward(const Tensor& grad_out, const Tensor& x) {
  FAE_CHECK(grad_out.SameShape(x));
  Tensor g = grad_out;
  for (size_t i = 0; i < g.numel(); ++i) {
    if (x.data()[i] <= 0.0f) g.data()[i] = 0.0f;
  }
  return g;
}

Tensor SigmoidForward(const Tensor& x) {
  Tensor y = x;
  for (size_t i = 0; i < y.numel(); ++i) {
    y.data()[i] = 1.0f / (1.0f + std::exp(-y.data()[i]));
  }
  return y;
}

Tensor ConcatCols(const std::vector<const Tensor*>& blocks) {
  FAE_CHECK(!blocks.empty());
  const size_t rows = blocks[0]->rows();
  size_t total_cols = 0;
  for (const Tensor* b : blocks) {
    FAE_CHECK_EQ(b->rows(), rows);
    total_cols += b->cols();
  }
  Tensor out(rows, total_cols);
  for (size_t r = 0; r < rows; ++r) {
    float* orow = out.row(r);
    size_t offset = 0;
    for (const Tensor* b : blocks) {
      const float* brow = b->row(r);
      std::copy(brow, brow + b->cols(), orow + offset);
      offset += b->cols();
    }
  }
  return out;
}

std::vector<Tensor> SplitCols(const Tensor& grad,
                              const std::vector<size_t>& widths) {
  size_t total = 0;
  for (size_t w : widths) total += w;
  FAE_CHECK_EQ(total, grad.cols());
  std::vector<Tensor> out;
  out.reserve(widths.size());
  size_t offset = 0;
  for (size_t w : widths) {
    Tensor block(grad.rows(), w);
    for (size_t r = 0; r < grad.rows(); ++r) {
      const float* grow = grad.row(r) + offset;
      std::copy(grow, grow + w, block.row(r));
    }
    out.push_back(std::move(block));
    offset += w;
  }
  return out;
}

Tensor SoftmaxRows(const Tensor& x) {
  Tensor y = x;
  for (size_t r = 0; r < y.rows(); ++r) {
    float* row = y.row(r);
    float mx = row[0];
    for (size_t c = 1; c < y.cols(); ++c) mx = std::max(mx, row[c]);
    float sum = 0.0f;
    for (size_t c = 0; c < y.cols(); ++c) {
      row[c] = std::exp(row[c] - mx);
      sum += row[c];
    }
    for (size_t c = 0; c < y.cols(); ++c) row[c] /= sum;
  }
  return y;
}

Tensor PairwiseDotInteraction(const std::vector<const Tensor*>& features) {
  FAE_CHECK_GE(features.size(), 2u);
  const size_t f = features.size();
  const size_t rows = features[0]->rows();
  const size_t d = features[0]->cols();
  for (const Tensor* t : features) {
    FAE_CHECK_EQ(t->rows(), rows);
    FAE_CHECK_EQ(t->cols(), d);
  }
  Tensor out(rows, f * (f - 1) / 2);
  for (size_t r = 0; r < rows; ++r) {
    float* orow = out.row(r);
    size_t col = 0;
    for (size_t i = 0; i < f; ++i) {
      const float* fi = features[i]->row(r);
      for (size_t j = i + 1; j < f; ++j) {
        const float* fj = features[j]->row(r);
        float dot = 0.0f;
        for (size_t k = 0; k < d; ++k) dot += fi[k] * fj[k];
        orow[col++] = dot;
      }
    }
  }
  return out;
}

std::vector<Tensor> PairwiseDotInteractionBackward(
    const Tensor& grad_out, const std::vector<const Tensor*>& features) {
  const size_t f = features.size();
  const size_t rows = features[0]->rows();
  const size_t d = features[0]->cols();
  FAE_CHECK_EQ(grad_out.rows(), rows);
  FAE_CHECK_EQ(grad_out.cols(), f * (f - 1) / 2);
  std::vector<Tensor> grads(f, Tensor(rows, d));
  for (size_t r = 0; r < rows; ++r) {
    const float* grow = grad_out.row(r);
    size_t col = 0;
    for (size_t i = 0; i < f; ++i) {
      for (size_t j = i + 1; j < f; ++j) {
        const float g = grow[col++];
        if (g == 0.0f) continue;
        const float* fi = features[i]->row(r);
        const float* fj = features[j]->row(r);
        float* gi = grads[i].row(r);
        float* gj = grads[j].row(r);
        for (size_t k = 0; k < d; ++k) {
          gi[k] += g * fj[k];
          gj[k] += g * fi[k];
        }
      }
    }
  }
  return grads;
}

}  // namespace fae
