#ifndef FAE_TENSOR_SGD_H_
#define FAE_TENSOR_SGD_H_

#include <vector>

#include "tensor/linear.h"

namespace fae {

/// Plain stochastic gradient descent over dense parameters.
///
/// The paper's training optimizer for the neural layers; the embedding
/// tables use SparseSgd (embedding/sparse_sgd.h) so only touched rows pay
/// an update — the skew FAE exploits makes that set small for hot batches.
class Sgd {
 public:
  explicit Sgd(float lr) : lr_(lr) {}

  /// value -= lr * grad, then clears the gradient.
  void Step(const std::vector<Parameter*>& params);

  /// Clears gradients without applying them.
  void ZeroGrad(const std::vector<Parameter*>& params);

  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }

 private:
  float lr_;
};

}  // namespace fae

#endif  // FAE_TENSOR_SGD_H_
