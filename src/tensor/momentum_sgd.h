#ifndef FAE_TENSOR_MOMENTUM_SGD_H_
#define FAE_TENSOR_MOMENTUM_SGD_H_

#include <vector>

#include "tensor/linear.h"

namespace fae {

/// SGD with classical (heavy-ball) momentum over dense parameters:
///   v <- mu * v + g;  w <- w - lr * v.
///
/// The parameter set is fixed at construction (velocity buffers are shaped
/// then); passing a different set to Step is a programming error.
class MomentumSgd {
 public:
  MomentumSgd(std::vector<Parameter*> params, float lr, float momentum);

  /// Applies one update and clears the gradients.
  void Step();

  /// Resets the velocity buffers to zero.
  void ResetVelocity();

  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }
  float momentum() const { return momentum_; }

 private:
  std::vector<Parameter*> params_;
  std::vector<Tensor> velocity_;
  float lr_;
  float momentum_;
};

}  // namespace fae

#endif  // FAE_TENSOR_MOMENTUM_SGD_H_
