#ifndef FAE_TENSOR_LOSS_H_
#define FAE_TENSOR_LOSS_H_

#include <cstddef>
#include <span>
#include <vector>

#include "tensor/tensor.h"

namespace fae {

/// Result of a binary-cross-entropy evaluation over a batch.
struct BceResult {
  double mean_loss = 0.0;
  /// dL/dlogits, already divided by the batch size, shaped like the input.
  Tensor grad_logits;
  /// Number of samples whose rounded prediction matches the label.
  size_t correct = 0;
};

/// Numerically-stable binary cross entropy on logits [B, 1] against labels
/// (0/1), returning the mean loss, the gradient, and the hit count used for
/// the paper's accuracy metric (Fig 12, Table III).
BceResult BceWithLogits(const Tensor& logits, std::span<const float> labels);

/// Into variant reusing `result.grad_logits` as a workspace (scalar fields
/// are reset) — the allocation-free training-loop path.
void BceWithLogitsInto(BceResult& result, const Tensor& logits,
                       std::span<const float> labels);

/// Loss only, for evaluation passes.
double BceLossOnly(const Tensor& logits, std::span<const float> labels);

}  // namespace fae

#endif  // FAE_TENSOR_LOSS_H_
