#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/string_util.h"

namespace fae {

Tensor Tensor::Full(size_t rows, size_t cols, float value) {
  Tensor t(rows, cols);
  std::fill(t.data_.begin(), t.data_.end(), value);
  return t;
}

Tensor Tensor::Randn(size_t rows, size_t cols, float stddev, Xoshiro256& rng) {
  Tensor t(rows, cols);
  for (float& v : t.data_) {
    v = static_cast<float>(rng.NextGaussian()) * stddev;
  }
  return t;
}

Tensor Tensor::RandUniform(size_t rows, size_t cols, float bound,
                           Xoshiro256& rng) {
  Tensor t(rows, cols);
  for (float& v : t.data_) {
    v = (rng.NextFloat() * 2.0f - 1.0f) * bound;
  }
  return t;
}

void Tensor::SetZero() { std::fill(data_.begin(), data_.end(), 0.0f); }

void Tensor::Add(const Tensor& other) {
  FAE_CHECK(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Tensor::Axpy(float alpha, const Tensor& other) {
  FAE_CHECK(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) {
    data_[i] += alpha * other.data_[i];
  }
}

void Tensor::Scale(float alpha) {
  for (float& v : data_) v *= alpha;
}

double Tensor::Sum() const {
  double s = 0.0;
  for (float v : data_) s += v;
  return s;
}

double Tensor::Norm() const {
  double s = 0.0;
  for (float v : data_) s += static_cast<double>(v) * v;
  return std::sqrt(s);
}

std::string Tensor::DebugString() const {
  std::string out = StrFormat("Tensor[%zux%zu]", rows_, cols_);
  const size_t show = std::min<size_t>(numel(), 8);
  if (show > 0) {
    out += " {";
    for (size_t i = 0; i < show; ++i) {
      out += StrFormat(i == 0 ? "%.4g" : ", %.4g",
                       static_cast<double>(data_[i]));
    }
    if (numel() > show) out += ", ...";
    out += "}";
  }
  return out;
}

float MaxAbsDiff(const Tensor& a, const Tensor& b) {
  if (!a.SameShape(b)) return std::numeric_limits<float>::infinity();
  float m = 0.0f;
  for (size_t i = 0; i < a.numel(); ++i) {
    m = std::max(m, std::fabs(a.data()[i] - b.data()[i]));
  }
  return m;
}

}  // namespace fae
