#ifndef FAE_TENSOR_OPS_H_
#define FAE_TENSOR_OPS_H_

#include <vector>

#include "tensor/tensor.h"
#include "util/thread_pool.h"

namespace fae {

// Every kernel exists in two forms: the historical allocating form
// returning a fresh Tensor, and an `*Into` form writing a caller-owned
// workspace (Tensor::Resize reuses the allocation once grown). The
// allocating forms are thin wrappers over the Into forms — one
// implementation, so both are bit-identical. A-operands are MatViews so
// activations can be consumed straight out of flat dataset buffers.

/// C = A[m,k] * B[k,n]. Dispatches to the blocked kernel for shapes where
/// tiling pays; the reference kernel otherwise. When `pool` is non-null
/// the work is split over A's rows; output rows are written by exactly one
/// thread each and per-element summation order is fixed, so the result is
/// bit-identical at any thread count.
Tensor MatMul(const Tensor& a, const Tensor& b, ThreadPool* pool = nullptr);
void MatMulInto(Tensor& c, MatView a, const Tensor& b,
                ThreadPool* pool = nullptr);

/// Reference triple-loop GEMM (used by tests as the ground truth).
Tensor MatMulNaive(const Tensor& a, const Tensor& b,
                   ThreadPool* pool = nullptr);

/// Cache-blocked GEMM: tiles the k and j loops so the working set of B
/// stays in cache across the i loop. Identical results to MatMulNaive
/// (same summation order per element) at any thread count.
Tensor MatMulBlocked(const Tensor& a, const Tensor& b,
                     ThreadPool* pool = nullptr);

/// C = A^T[k,m] * B[k,n] — i.e. MatMul(transpose(a), b) without
/// materializing the transpose. Used for weight gradients.
Tensor MatMulTransA(const Tensor& a, const Tensor& b,
                    ThreadPool* pool = nullptr);
void MatMulTransAInto(Tensor& c, MatView a, const Tensor& b,
                      ThreadPool* pool = nullptr);

/// C = A[m,k] * B^T[n,k] — used for input gradients.
Tensor MatMulTransB(const Tensor& a, const Tensor& b,
                    ThreadPool* pool = nullptr);
void MatMulTransBInto(Tensor& c, const Tensor& a, const Tensor& b,
                      ThreadPool* pool = nullptr);

/// y(r, c) = x(r, c) + bias(0, c); bias is [1, cols].
void AddBiasRowwise(Tensor& x, const Tensor& bias);

/// Column-wise sum of grad rows into a [1, cols] tensor (bias gradient).
Tensor ColumnSums(const Tensor& x);
void ColumnSumsInto(Tensor& out, const Tensor& x);

/// Elementwise max(x, 0).
Tensor ReluForward(const Tensor& x);
void ReluForwardInto(Tensor& y, const Tensor& x);

/// dL/dx given dL/dy and the forward *input* x: grad where x > 0 else 0.
Tensor ReluBackward(const Tensor& grad_out, const Tensor& x);
/// In-place variant: zeroes grad entries where x <= 0.
void ReluBackwardInPlace(Tensor& grad, const Tensor& x);

/// Elementwise logistic sigmoid.
Tensor SigmoidForward(const Tensor& x);

/// Horizontal concatenation of equally-tall blocks.
Tensor ConcatCols(const std::vector<const Tensor*>& blocks);
void ConcatColsInto(Tensor& out, const std::vector<const Tensor*>& blocks);

/// Splits `grad` (the gradient of a ConcatCols output) back into per-block
/// gradients with the given widths.
std::vector<Tensor> SplitCols(const Tensor& grad,
                              const std::vector<size_t>& widths);
/// Into variant: `outs` supplies one workspace per width.
void SplitColsInto(const std::vector<Tensor*>& outs, const Tensor& grad,
                   const std::vector<size_t>& widths);

/// Row-wise softmax.
Tensor SoftmaxRows(const Tensor& x);

/// DLRM-style pairwise-dot feature interaction.
///
/// Inputs: F feature blocks, each [B, d]. Output: [B, F*(F-1)/2] whose
/// columns are the dot products <f_i, f_j> for i < j, per sample.
Tensor PairwiseDotInteraction(const std::vector<const Tensor*>& features,
                              ThreadPool* pool = nullptr);
void PairwiseDotInteractionInto(Tensor& out,
                                const std::vector<const Tensor*>& features,
                                ThreadPool* pool = nullptr);

/// Backward of PairwiseDotInteraction: given dL/dout [B, F*(F-1)/2] and the
/// forward feature blocks, returns dL/df for each block.
std::vector<Tensor> PairwiseDotInteractionBackward(
    const Tensor& grad_out, const std::vector<const Tensor*>& features,
    ThreadPool* pool = nullptr);
/// Into variant: `grads` must already hold features.size() workspaces.
void PairwiseDotInteractionBackwardInto(
    std::vector<Tensor>& grads, const Tensor& grad_out,
    const std::vector<const Tensor*>& features, ThreadPool* pool = nullptr);

}  // namespace fae

#endif  // FAE_TENSOR_OPS_H_
