#include "tensor/loss.h"

#include <cmath>

#include "util/logging.h"

namespace fae {
namespace {

// log(1 + exp(z)) without overflow.
inline double Softplus(double z) {
  if (z > 0) return z + std::log1p(std::exp(-z));
  return std::log1p(std::exp(z));
}

}  // namespace

void BceWithLogitsInto(BceResult& result, const Tensor& logits,
                       std::span<const float> labels) {
  FAE_CHECK_EQ(logits.cols(), 1u);
  FAE_CHECK_EQ(logits.rows(), labels.size());
  const size_t b = labels.size();
  result.grad_logits.Resize(b, 1);
  result.correct = 0;
  double total = 0.0;
  for (size_t i = 0; i < b; ++i) {
    const double z = logits(i, 0);
    const double y = labels[i];
    // loss = softplus(z) - y*z  (stable form of -y log p - (1-y) log(1-p)).
    total += Softplus(z) - y * z;
    const double p = 1.0 / (1.0 + std::exp(-z));
    result.grad_logits(i, 0) =
        static_cast<float>((p - y) / static_cast<double>(b));
    if ((p >= 0.5 && y >= 0.5) || (p < 0.5 && y < 0.5)) ++result.correct;
  }
  result.mean_loss = b > 0 ? total / static_cast<double>(b) : 0.0;
}

BceResult BceWithLogits(const Tensor& logits, std::span<const float> labels) {
  BceResult result;
  BceWithLogitsInto(result, logits, labels);
  return result;
}

double BceLossOnly(const Tensor& logits, std::span<const float> labels) {
  FAE_CHECK_EQ(logits.cols(), 1u);
  FAE_CHECK_EQ(logits.rows(), labels.size());
  double total = 0.0;
  for (size_t i = 0; i < labels.size(); ++i) {
    const double z = logits(i, 0);
    total += Softplus(z) - labels[i] * z;
  }
  return labels.empty() ? 0.0 : total / static_cast<double>(labels.size());
}

}  // namespace fae
