#ifndef FAE_TENSOR_KERNELS_H_
#define FAE_TENSOR_KERNELS_H_

#include <cstddef>

// The shared inner loops of every hot-path kernel: GEMM panels, embedding
// bag gather/scatter, and the sparse optimizers. Each primitive takes
// restrict-qualified pointers and is written in an unrolled form the
// compiler can auto-vectorize at -O2 without changing the floating-point
// result: per-output-element summation order is fixed (ascending index,
// one accumulator) wherever callers rely on bit-exact reproducibility,
// and only Dot — whose callers tolerate a fixed but different association
// — uses multiple accumulators.
//
// Build with -DFAE_NATIVE_ARCH=ON to compile these (and everything else)
// with -march=native for full-width SIMD.

#if defined(__GNUC__) || defined(__clang__)
#define FAE_RESTRICT __restrict__
#else
#define FAE_RESTRICT
#endif

namespace fae {
namespace kernels {

/// y[i] += a * x[i]. The GEMM update and sparse-SGD apply (a = -lr).
/// Summation order per element is unchanged from the scalar loop, so
/// callers stay bit-exact.
inline void Axpy(size_t n, float a, const float* FAE_RESTRICT x,
                 float* FAE_RESTRICT y) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    y[i + 0] += a * x[i + 0];
    y[i + 1] += a * x[i + 1];
    y[i + 2] += a * x[i + 2];
    y[i + 3] += a * x[i + 3];
    y[i + 4] += a * x[i + 4];
    y[i + 5] += a * x[i + 5];
    y[i + 6] += a * x[i + 6];
    y[i + 7] += a * x[i + 7];
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

/// y[i] += x[i]. Embedding-bag pooling and sparse-gradient accumulation.
inline void Add(size_t n, const float* FAE_RESTRICT x,
                float* FAE_RESTRICT y) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    y[i + 0] += x[i + 0];
    y[i + 1] += x[i + 1];
    y[i + 2] += x[i + 2];
    y[i + 3] += x[i + 3];
    y[i + 4] += x[i + 4];
    y[i + 5] += x[i + 5];
    y[i + 6] += x[i + 6];
    y[i + 7] += x[i + 7];
  }
  for (; i < n; ++i) y[i] += x[i];
}

/// <x, y> with four independent accumulators (deterministic, but a
/// different association than a single-accumulator loop — callers that
/// need the legacy association must not use this).
inline float Dot(size_t n, const float* FAE_RESTRICT x,
                 const float* FAE_RESTRICT y) {
  float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += x[i + 0] * y[i + 0];
    s1 += x[i + 1] * y[i + 1];
    s2 += x[i + 2] * y[i + 2];
    s3 += x[i + 3] * y[i + 3];
  }
  float tail = 0.0f;
  for (; i < n; ++i) tail += x[i] * y[i];
  return ((s0 + s1) + (s2 + s3)) + tail;
}

/// sum(x[i]^2) accumulated in double, strictly ascending — the exact
/// association the row-wise Adagrad accumulator has always used, kept so
/// optimizer state stays bit-identical to the scalar implementation.
inline double SumSquaresOrdered(size_t n, const float* FAE_RESTRICT x) {
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) {
    s += static_cast<double>(x[i]) * x[i];
  }
  return s;
}

}  // namespace kernels
}  // namespace fae

#endif  // FAE_TENSOR_KERNELS_H_
