#ifndef FAE_TENSOR_KERNELS_H_
#define FAE_TENSOR_KERNELS_H_

#include <cstddef>
#include <cstdint>

#include "util/half.h"

// The shared inner loops of every hot-path kernel: GEMM panels, embedding
// bag gather/scatter, and the sparse optimizers. Each primitive takes
// restrict-qualified pointers and is written in an unrolled form the
// compiler can auto-vectorize at -O2 without changing the floating-point
// result: per-output-element summation order is fixed (ascending index,
// one accumulator) wherever callers rely on bit-exact reproducibility,
// and only Dot — whose callers tolerate a fixed but different association
// — uses multiple accumulators.
//
// Build with -DFAE_NATIVE_ARCH=ON to compile these (and everything else)
// with -march=native for full-width SIMD.

#if defined(__GNUC__) || defined(__clang__)
#define FAE_RESTRICT __restrict__
#else
#define FAE_RESTRICT
#endif

namespace fae {
namespace kernels {

/// y[i] += a * x[i]. The GEMM update and sparse-SGD apply (a = -lr).
/// Summation order per element is unchanged from the scalar loop, so
/// callers stay bit-exact.
inline void Axpy(size_t n, float a, const float* FAE_RESTRICT x,
                 float* FAE_RESTRICT y) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    y[i + 0] += a * x[i + 0];
    y[i + 1] += a * x[i + 1];
    y[i + 2] += a * x[i + 2];
    y[i + 3] += a * x[i + 3];
    y[i + 4] += a * x[i + 4];
    y[i + 5] += a * x[i + 5];
    y[i + 6] += a * x[i + 6];
    y[i + 7] += a * x[i + 7];
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

/// y[i] += x[i]. Embedding-bag pooling and sparse-gradient accumulation.
inline void Add(size_t n, const float* FAE_RESTRICT x,
                float* FAE_RESTRICT y) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    y[i + 0] += x[i + 0];
    y[i + 1] += x[i + 1];
    y[i + 2] += x[i + 2];
    y[i + 3] += x[i + 3];
    y[i + 4] += x[i + 4];
    y[i + 5] += x[i + 5];
    y[i + 6] += x[i + 6];
    y[i + 7] += x[i + 7];
  }
  for (; i < n; ++i) y[i] += x[i];
}

/// <x, y> with four independent accumulators (deterministic, but a
/// different association than a single-accumulator loop — callers that
/// need the legacy association must not use this).
inline float Dot(size_t n, const float* FAE_RESTRICT x,
                 const float* FAE_RESTRICT y) {
  float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += x[i + 0] * y[i + 0];
    s1 += x[i + 1] * y[i + 1];
    s2 += x[i + 2] * y[i + 2];
    s3 += x[i + 3] * y[i + 3];
  }
  float tail = 0.0f;
  for (; i < n; ++i) tail += x[i] * y[i];
  return ((s0 + s1) + (s2 + s3)) + tail;
}

/// sum(x[i]^2) accumulated in double, strictly ascending — the exact
/// association the row-wise Adagrad accumulator has always used, kept so
/// optimizer state stays bit-identical to the scalar implementation.
inline double SumSquaresOrdered(size_t n, const float* FAE_RESTRICT x) {
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) {
    s += static_cast<double>(x[i]) * x[i];
  }
  return s;
}

// -- Cold-row quantization (ROADMAP item 4) ---------------------------------
//
// Cold embedding rows are stored row-wise quantized — int8 with a per-row
// affine (scale, zero_point), or plain binary16 — and dequantized on the
// fly by the gather. The int8 loops below are branch-free fused
// multiply-adds over uint8 codes, the same unroll-by-8 shape as Add/Axpy,
// so the compiler vectorizes them at -O2; fp16 widening is an inline
// bit-level conversion (util/half.h). Per-element evaluation order is
// fixed, so results are deterministic at any thread count.

/// y[i] += zero + scale * q[i] — the pooling gather over an int8 cold row.
inline void DequantAddI8(size_t n, const uint8_t* FAE_RESTRICT q, float scale,
                         float zero, float* FAE_RESTRICT y) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    y[i + 0] += zero + scale * static_cast<float>(q[i + 0]);
    y[i + 1] += zero + scale * static_cast<float>(q[i + 1]);
    y[i + 2] += zero + scale * static_cast<float>(q[i + 2]);
    y[i + 3] += zero + scale * static_cast<float>(q[i + 3]);
    y[i + 4] += zero + scale * static_cast<float>(q[i + 4]);
    y[i + 5] += zero + scale * static_cast<float>(q[i + 5]);
    y[i + 6] += zero + scale * static_cast<float>(q[i + 6]);
    y[i + 7] += zero + scale * static_cast<float>(q[i + 7]);
  }
  for (; i < n; ++i) y[i] += zero + scale * static_cast<float>(q[i]);
}

/// y[i] = zero + scale * q[i] — materializes an int8 cold row as fp32
/// (staging a row for an optimizer update, checkpoint widening, eval).
inline void DequantRowI8(size_t n, const uint8_t* FAE_RESTRICT q, float scale,
                         float zero, float* FAE_RESTRICT y) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    y[i + 0] = zero + scale * static_cast<float>(q[i + 0]);
    y[i + 1] = zero + scale * static_cast<float>(q[i + 1]);
    y[i + 2] = zero + scale * static_cast<float>(q[i + 2]);
    y[i + 3] = zero + scale * static_cast<float>(q[i + 3]);
    y[i + 4] = zero + scale * static_cast<float>(q[i + 4]);
    y[i + 5] = zero + scale * static_cast<float>(q[i + 5]);
    y[i + 6] = zero + scale * static_cast<float>(q[i + 6]);
    y[i + 7] = zero + scale * static_cast<float>(q[i + 7]);
  }
  for (; i < n; ++i) y[i] = zero + scale * static_cast<float>(q[i]);
}

/// Row-wise affine int8 quantization: zero_point = min(x), scale =
/// (max - min) / 255, codes rounded to nearest. A constant row gets
/// scale = 0 and all-zero codes, so it dequantizes exactly; otherwise the
/// min maps to code 0 and the max to code 255, and the per-element
/// reconstruction error is bounded by scale / 2 (plus rounding slop).
/// Requires n >= 1.
inline void QuantizeRowI8(size_t n, const float* FAE_RESTRICT x,
                          uint8_t* FAE_RESTRICT q, float* FAE_RESTRICT scale,
                          float* FAE_RESTRICT zero) {
  float lo = x[0];
  float hi = x[0];
  for (size_t i = 1; i < n; ++i) {
    lo = x[i] < lo ? x[i] : lo;
    hi = x[i] > hi ? x[i] : hi;
  }
  *zero = lo;
  if (hi <= lo) {
    *scale = 0.0f;
    for (size_t i = 0; i < n; ++i) q[i] = 0;
    return;
  }
  *scale = (hi - lo) / 255.0f;
  const float inv = 255.0f / (hi - lo);
  for (size_t i = 0; i < n; ++i) {
    // (x - lo) * inv is in [0, 255] up to rounding; clamp for the slop.
    int code = static_cast<int>((x[i] - lo) * inv + 0.5f);
    code = code < 0 ? 0 : (code > 255 ? 255 : code);
    q[i] = static_cast<uint8_t>(code);
  }
}

/// y[i] += widen(q[i]) — the pooling gather over a binary16 cold row.
inline void DequantAddF16(size_t n, const uint16_t* FAE_RESTRICT q,
                          float* FAE_RESTRICT y) {
  for (size_t i = 0; i < n; ++i) y[i] += HalfToFloat(q[i]);
}

/// y[i] = widen(q[i]) — materializes a binary16 cold row as fp32.
inline void DequantRowF16(size_t n, const uint16_t* FAE_RESTRICT q,
                          float* FAE_RESTRICT y) {
  for (size_t i = 0; i < n; ++i) y[i] = HalfToFloat(q[i]);
}

/// Rounds a row through binary16 storage (round-to-nearest-even).
inline void QuantizeRowF16(size_t n, const float* FAE_RESTRICT x,
                           uint16_t* FAE_RESTRICT q) {
  for (size_t i = 0; i < n; ++i) q[i] = FloatToHalf(x[i]);
}

}  // namespace kernels
}  // namespace fae

#endif  // FAE_TENSOR_KERNELS_H_
