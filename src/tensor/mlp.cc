#include "tensor/mlp.h"

#include "tensor/ops.h"
#include "util/string_util.h"

namespace fae {

Mlp::Mlp(const std::vector<size_t>& dims, Xoshiro256& rng, std::string name) {
  FAE_CHECK_GE(dims.size(), 2u) << "MLP needs at least one layer";
  layers_.reserve(dims.size() - 1);
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.emplace_back(dims[i], dims[i + 1], rng,
                         StrFormat("%s.%zu", name.c_str(), i));
  }
  pre_relu_.resize(layers_.size());
}

Tensor Mlp::Forward(const Tensor& x) {
  Tensor h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i].Forward(h);
    if (i + 1 < layers_.size()) {
      pre_relu_[i] = h;
      h = ReluForward(h);
    }
  }
  return h;
}

Tensor Mlp::ForwardInference(const Tensor& x) const {
  Tensor h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i].ForwardInference(h);
    if (i + 1 < layers_.size()) h = ReluForward(h);
  }
  return h;
}

Tensor Mlp::Backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (size_t i = layers_.size(); i-- > 0;) {
    g = layers_[i].Backward(g);
    if (i > 0) {
      g = ReluBackward(g, pre_relu_[i - 1]);
    }
  }
  return g;
}

std::vector<Parameter*> Mlp::Params() {
  std::vector<Parameter*> out;
  for (Linear& l : layers_) {
    for (Parameter* p : l.Params()) out.push_back(p);
  }
  return out;
}

size_t Mlp::in_features() const { return layers_.front().in_features(); }
size_t Mlp::out_features() const { return layers_.back().out_features(); }

size_t Mlp::NumParams() const {
  size_t n = 0;
  for (const Linear& l : layers_) {
    n += l.in_features() * l.out_features() + l.out_features();
  }
  return n;
}

uint64_t Mlp::ForwardFlops(size_t b) const {
  uint64_t flops = 0;
  for (const Linear& l : layers_) {
    flops += 2ULL * b * l.in_features() * l.out_features();
  }
  return flops;
}

}  // namespace fae
