#include "tensor/mlp.h"

#include <algorithm>

#include "tensor/ops.h"
#include "util/string_util.h"

namespace fae {

Mlp::Mlp(const std::vector<size_t>& dims, Xoshiro256& rng, std::string name) {
  FAE_CHECK_GE(dims.size(), 2u) << "MLP needs at least one layer";
  layers_.reserve(dims.size() - 1);
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.emplace_back(dims[i], dims[i + 1], rng,
                         StrFormat("%s.%zu", name.c_str(), i));
  }
  if (layers_.size() > 1) post_.resize(layers_.size() - 1);
}

const Tensor& Mlp::Forward(MatView x) {
  MatView h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    const Tensor& pre = layers_[i].Forward(h);
    if (i + 1 < layers_.size()) {
      ReluForwardInto(post_[i], pre);
      h = post_[i];
    }
  }
  return layers_.back().out();
}

Tensor Mlp::ForwardInference(MatView x) const {
  Tensor h = layers_.front().ForwardInference(x);
  for (size_t i = 1; i < layers_.size(); ++i) {
    for (size_t j = 0; j < h.numel(); ++j) {
      h.data()[j] = std::max(0.0f, h.data()[j]);
    }
    h = layers_[i].ForwardInference(h);
  }
  return h;
}

const Tensor& Mlp::Backward(const Tensor& grad_out) {
  const Tensor* g = &grad_out;
  for (size_t i = layers_.size(); i-- > 0;) {
    // Backward returns the layer's grad_in workspace; masking it in place
    // by the previous layer's pre-ReLU output reproduces ReluBackward.
    Tensor& gi = layers_[i].Backward(*g);
    if (i > 0) {
      ReluBackwardInPlace(gi, layers_[i - 1].out());
    }
    g = &gi;
  }
  return *g;
}

std::vector<Parameter*> Mlp::Params() {
  std::vector<Parameter*> out;
  for (Linear& l : layers_) {
    for (Parameter* p : l.Params()) out.push_back(p);
  }
  return out;
}

size_t Mlp::in_features() const { return layers_.front().in_features(); }
size_t Mlp::out_features() const { return layers_.back().out_features(); }

size_t Mlp::NumParams() const {
  size_t n = 0;
  for (const Linear& l : layers_) {
    n += l.in_features() * l.out_features() + l.out_features();
  }
  return n;
}

uint64_t Mlp::ForwardFlops(size_t b) const {
  uint64_t flops = 0;
  for (const Linear& l : layers_) {
    flops += 2ULL * b * l.in_features() * l.out_features();
  }
  return flops;
}

}  // namespace fae
