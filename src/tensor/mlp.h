#ifndef FAE_TENSOR_MLP_H_
#define FAE_TENSOR_MLP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/linear.h"
#include "tensor/tensor.h"

namespace fae {

/// Multi-layer perceptron with ReLU activations between layers.
///
/// `dims` lists the layer widths, e.g. {13, 512, 256, 64} builds three
/// Linear layers (the paper's Table I "Bottom MLP 13-512-256-64" notation).
/// The final layer's output is linear (no activation) — recommender heads
/// feed it into a sigmoid/BCE loss.
///
/// Forward takes a non-owning view and every activation lives in a member
/// workspace (each Linear keeps its own pre-ReLU output; post-ReLU copies
/// live here), so a warmed-up train step allocates nothing. The caller
/// must keep the forward input alive until Backward.
class Mlp {
 public:
  Mlp(const std::vector<size_t>& dims, Xoshiro256& rng,
      std::string name = "mlp");

  /// Caches activations for Backward; returns the head layer's output
  /// workspace (valid until the next Forward).
  const Tensor& Forward(MatView x);

  /// Returns dL/dx (a workspace, valid until the next Backward);
  /// accumulates layer parameter gradients.
  const Tensor& Backward(const Tensor& grad_out);

  /// Stateless evaluation path; allocates.
  Tensor ForwardInference(MatView x) const;

  std::vector<Parameter*> Params();

  size_t in_features() const;
  size_t out_features() const;

  /// Total trainable scalars — used by the cost model for all-reduce and
  /// optimizer accounting.
  size_t NumParams() const;

  /// FLOPs of one forward pass at batch size `b` (2*m*k*n per layer).
  uint64_t ForwardFlops(size_t b) const;

  /// Installs a shared worker pool on every layer (nullptr = serial).
  void set_thread_pool(ThreadPool* pool) {
    for (Linear& l : layers_) l.set_thread_pool(pool);
  }

 private:
  std::vector<Linear> layers_;
  // post_[i] holds ReLU(layers_[i].out()) — the input view layer i+1
  // caches, so it must stay alive (and unmodified) until Backward. The
  // pre-ReLU activation that gates the backward pass is each layer's own
  // out() workspace.
  std::vector<Tensor> post_;
};

}  // namespace fae

#endif  // FAE_TENSOR_MLP_H_
