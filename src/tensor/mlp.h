#ifndef FAE_TENSOR_MLP_H_
#define FAE_TENSOR_MLP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/linear.h"
#include "tensor/tensor.h"

namespace fae {

/// Multi-layer perceptron with ReLU activations between layers.
///
/// `dims` lists the layer widths, e.g. {13, 512, 256, 64} builds three
/// Linear layers (the paper's Table I "Bottom MLP 13-512-256-64" notation).
/// The final layer's output is linear (no activation) — recommender heads
/// feed it into a sigmoid/BCE loss.
class Mlp {
 public:
  Mlp(const std::vector<size_t>& dims, Xoshiro256& rng,
      std::string name = "mlp");

  /// Caches activations for Backward.
  Tensor Forward(const Tensor& x);

  /// Returns dL/dx; accumulates layer parameter gradients.
  Tensor Backward(const Tensor& grad_out);

  /// Stateless evaluation path.
  Tensor ForwardInference(const Tensor& x) const;

  std::vector<Parameter*> Params();

  size_t in_features() const;
  size_t out_features() const;

  /// Total trainable scalars — used by the cost model for all-reduce and
  /// optimizer accounting.
  size_t NumParams() const;

  /// FLOPs of one forward pass at batch size `b` (2*m*k*n per layer).
  uint64_t ForwardFlops(size_t b) const;

  /// Installs a shared worker pool on every layer (nullptr = serial).
  void set_thread_pool(ThreadPool* pool) {
    for (Linear& l : layers_) l.set_thread_pool(pool);
  }

 private:
  std::vector<Linear> layers_;
  // pre_relu_[i] holds layer i's linear output (backward needs it to gate
  // the ReLU); set by Forward.
  std::vector<Tensor> pre_relu_;
};

}  // namespace fae

#endif  // FAE_TENSOR_MLP_H_
