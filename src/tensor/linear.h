#ifndef FAE_TENSOR_LINEAR_H_
#define FAE_TENSOR_LINEAR_H_

#include <string>
#include <vector>

#include "tensor/tensor.h"
#include "util/thread_pool.h"

namespace fae {

/// A trainable tensor and its accumulated gradient.
struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;

  size_t numel() const { return value.numel(); }
};

/// Fully-connected layer y = x W + b with manual backward.
///
/// W is [in, out], b is [1, out]. Forward takes a non-owning MatView and
/// caches the *view* (not a copy) so Backward can form weight gradients:
/// the caller must keep the forward input alive and unmodified until
/// Backward returns. All activations and gradients are computed into
/// member workspaces, so a warmed-up train step allocates nothing.
class Linear {
 public:
  /// He-style initialization scaled for fan-in.
  Linear(size_t in, size_t out, Xoshiro256& rng, std::string name = "linear");

  /// y = x W + b into the layer's output workspace; caches the view of x.
  const Tensor& Forward(MatView x);

  /// Accumulates dW, db and returns dL/dx (a member workspace, valid until
  /// the next Backward; non-const so chained consumers can mask it in
  /// place).
  Tensor& Backward(const Tensor& grad_out);

  /// Forward without caching (inference / evaluation path); allocates.
  Tensor ForwardInference(MatView x) const;

  /// Layer output of the last Forward.
  const Tensor& out() const { return out_; }

  size_t in_features() const { return weight_.value.rows(); }
  size_t out_features() const { return weight_.value.cols(); }

  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }

  /// Pointers to this layer's parameters, for optimizers and all-reduce.
  std::vector<Parameter*> Params();

  /// Installs a shared worker pool for the layer's GEMMs (nullptr runs
  /// them serially). Results are bit-identical at any thread count.
  void set_thread_pool(ThreadPool* pool) { pool_ = pool; }

 private:
  Parameter weight_;
  Parameter bias_;
  MatView cached_input_;
  ThreadPool* pool_ = nullptr;  // not owned

  // Reused across steps (workspace semantics — see Tensor::Resize).
  Tensor out_;
  Tensor grad_in_;
  Tensor wgrad_ws_;
  Tensor bgrad_ws_;
};

}  // namespace fae

#endif  // FAE_TENSOR_LINEAR_H_
